// Multi-process sweep driver (DESIGN.md §4g): fans a replication sweep
// across N forked worker processes via exp::run_replicated_mp and reports
// reps/s. `--check` also runs the identical sweep single-process in this
// process and asserts the merged aggregate is bit-identical — the merge
// invariant the bench-smoke ctest entry pins.
//
// Usage:
//   sweep_shard [--spec CELL] [--reps N] [--procs N] [--seed HEX] [--check]
//
// Defaults to the benchmark headline cell (8Ki ranks, 2 % failed, checked
// synchronized correction). The spec must be exec=sim — process sharding
// shards *replications*, which only the simulator substrate has.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "experiment/mp.hpp"
#include "experiment/run_spec.hpp"
#include "experiment/runner.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kDefaultSpec =
    "bcast:binomial:checked:sync@P=8192,f=0.02,reps=1000,exec=sim";

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool samples_equal(const ct::support::Samples& a, const ct::support::Samples& b,
                   const char* name) {
  if (a.values() == b.values()) return true;  // element-wise, bit-exact doubles
  std::fprintf(stderr, "sweep_shard: MISMATCH in %s (%zu vs %zu samples)\n", name,
               a.count(), b.count());
  return false;
}

bool aggregates_equal(const ct::exp::Aggregate& a, const ct::exp::Aggregate& b) {
  bool ok = a.runs == b.runs && a.not_fully_colored == b.not_fully_colored &&
            a.uncolored_total == b.uncolored_total;
  if (!ok) std::fprintf(stderr, "sweep_shard: MISMATCH in counters\n");
  ok &= samples_equal(a.coloring_latency, b.coloring_latency, "coloring_latency");
  ok &= samples_equal(a.quiescence_latency, b.quiescence_latency, "quiescence_latency");
  ok &= samples_equal(a.messages_per_process, b.messages_per_process,
                      "messages_per_process");
  ok &= samples_equal(a.max_gap, b.max_gap, "max_gap");
  ok &= samples_equal(a.gap_count, b.gap_count, "gap_count");
  ok &= samples_equal(a.correction_time, b.correction_time, "correction_time");
  return ok;
}

int usage() {
  std::fprintf(stderr,
               "usage: sweep_shard [--spec CELL] [--reps N] [--procs N] "
               "[--seed HEX] [--check]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_text = kDefaultSpec;
  long long reps_override = -1;
  int procs = 2;
  unsigned long long seed_override = 0;
  bool have_seed_override = false;
  bool check = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--spec") {
      const char* v = value();
      if (!v) return usage();
      spec_text = v;
    } else if (arg == "--reps") {
      const char* v = value();
      if (!v) return usage();
      reps_override = std::atoll(v);
    } else if (arg == "--procs") {
      const char* v = value();
      if (!v) return usage();
      procs = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return usage();
      seed_override = std::strtoull(v, nullptr, 0);
      have_seed_override = true;
    } else if (arg == "--check") {
      check = true;
    } else {
      return usage();
    }
  }

  ct::exp::RunSpec spec;
  try {
    spec = ct::exp::parse_run_spec(spec_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_shard: bad spec: %s\n", e.what());
    return 2;
  }
  if (spec.executor != ct::exp::Executor::kSim) {
    std::fprintf(stderr, "sweep_shard: spec must use exec=sim (got %s)\n",
                 spec_text.c_str());
    return 2;
  }
  const std::size_t reps = reps_override >= 0 ? static_cast<std::size_t>(reps_override)
                                              : static_cast<std::size_t>(spec.reps);
  const std::uint64_t seed = have_seed_override ? seed_override : spec.seed;
  const ct::exp::Scenario scenario = spec.to_scenario();

  // Fork first, measure, and only then (under --check) run in-process work:
  // no threads may exist before the fork (see exp::run_replicated_mp).
  const Clock::time_point mp_start = Clock::now();
  const ct::exp::MpSweepResult sharded =
      ct::exp::run_replicated_mp(scenario, reps, seed, procs);
  const double mp_seconds = seconds_since(mp_start);
  if (!sharded.error.empty()) {
    std::fprintf(stderr, "sweep_shard: %s\n", sharded.error.c_str());
    return 1;
  }

  std::printf("spec                %s\n", spec.to_string().c_str());
  std::printf("reps                %zu\n", reps);
  std::printf("procs               %d%s\n", sharded.procs_used,
              sharded.forked ? "" : " (in-process fallback)");
  std::printf("wall_seconds        %.3f\n", mp_seconds);
  std::printf("reps_per_sec        %.1f\n",
              mp_seconds > 0.0 ? static_cast<double>(reps) / mp_seconds : 0.0);
  std::printf("mean_quiescence     %.4f\n", sharded.aggregate.quiescence_latency.mean());

  if (check) {
    const Clock::time_point sp_start = Clock::now();
    const ct::exp::Aggregate single =
        ct::exp::run_replicated(scenario, reps, seed, /*pool=*/nullptr);
    const double sp_seconds = seconds_since(sp_start);
    std::printf("single_wall_seconds %.3f\n", sp_seconds);
    std::printf("single_reps_per_sec %.1f\n",
                sp_seconds > 0.0 ? static_cast<double>(reps) / sp_seconds : 0.0);
    if (!aggregates_equal(sharded.aggregate, single)) {
      std::fprintf(stderr,
                   "sweep_shard: merged multi-process aggregate differs from the "
                   "single-process sweep\n");
      return 1;
    }
    std::printf("check               ok (merged aggregate bit-identical)\n");
  }
  return 0;
}

#!/usr/bin/env bash
# Interleaved A/B benchmarking against a baseline git ref (EXPERIMENTS.md,
# "Regenerating BENCH_PR7.json"). Builds the baseline in a throwaway git
# worktree, then alternates baseline/head runs of each cell A B A B ... so
# slow drift of the host (thermal state, background load) hits both sides
# equally, and reports per-cell median throughput and the head/baseline
# ratio of medians.
#
# Usage:
#   tools/ab_bench.sh BASELINE_REF [-r ROUNDS] [-c CELL]...
#
# CELL syntax (repeatable; defaults cover the PR7 acceptance cells):
#   micro:REGEX    bench/micro_simulator --benchmark_filter=REGEX; metric is
#                  the events/s counter (falling back to items_per_second).
#   report:FILTER  tools/bench_report --filter=FILTER; metric is
#                  messages_per_sec of the matched record (rt cells) or
#                  runs/wall_seconds (sim cells). FILTER must match exactly
#                  one registered cell on both refs.
#
# Requires: git worktree, cmake, python3. Head binaries are taken from
# ./build (build it first); the baseline is configured Release into
# .ab-bench/<ref>/build.

set -euo pipefail

usage() { sed -n '2,20p' "$0" >&2; exit 2; }

[ $# -ge 1 ] || usage
BASE_REF=$1
shift
ROUNDS=5
CELLS=()
while [ $# -gt 0 ]; do
  case $1 in
    -r) ROUNDS=$2; shift 2 ;;
    -c) CELLS+=("$2"); shift 2 ;;
    *) usage ;;
  esac
done
if [ ${#CELLS[@]} -eq 0 ]; then
  CELLS=(
    # 64Ki sim broadcast: raw discrete-event core events/s (SoA lanes).
    'micro:BM_SimulateBroadcast/65536$'
    # w=1 rt ladder cell: sharded executor messages/s (copy-free step).
    'report:rt bcast:binomial:opportunistic:4:overlapped@P=1024,reps=9'
  )
fi

REPO_ROOT=$(git rev-parse --show-toplevel)
cd "$REPO_ROOT"
HEAD_BUILD=$REPO_ROOT/build
[ -x "$HEAD_BUILD/tools/bench_report" ] || {
  echo "ab_bench: build ./build first (missing $HEAD_BUILD/tools/bench_report)" >&2
  exit 1
}

BASE_SHA=$(git rev-parse --short "$BASE_REF")
BASE_TREE=$REPO_ROOT/.ab-bench/$BASE_SHA
BASE_BUILD=$BASE_TREE/build
if [ ! -d "$BASE_TREE" ]; then
  git worktree add --detach "$BASE_TREE" "$BASE_SHA"
fi
if [ ! -x "$BASE_BUILD/tools/bench_report" ]; then
  cmake -S "$BASE_TREE" -B "$BASE_BUILD" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BASE_BUILD" -j --target bench_report micro_simulator >/dev/null
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# measure BUILD_DIR CELL -> prints one throughput number
measure() {
  local build=$1 cell=$2 out=$TMP/out.json
  case $cell in
    micro:*)
      "$build/bench/micro_simulator" \
        --benchmark_filter="${cell#micro:}" \
        --benchmark_out="$out" --benchmark_out_format=json >/dev/null 2>&1
      python3 - "$out" <<'EOF'
import json, sys
bm = json.load(open(sys.argv[1]))["benchmarks"][0]
print(bm.get("events/s") or bm.get("items_per_second"))
EOF
      ;;
    report:*)
      "$build/tools/bench_report" --filter="${cell#report:}" --out "$out" >/dev/null
      python3 - "$out" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
for section in ("sweep_matrix", "rt", "rt_chaos"):
    for rec in report.get(section) or []:
        if rec.get("messages_per_sec"):
            print(rec["messages_per_sec"])
        else:
            print(rec["runs"] / rec["wall_seconds"])
        sys.exit(0)
sys.exit("ab_bench: filter matched no cell")
EOF
      ;;
    *) echo "ab_bench: bad cell '$cell'" >&2; exit 2 ;;
  esac
}

echo "ab_bench: baseline $BASE_SHA vs HEAD ($(git rev-parse --short HEAD)), $ROUNDS rounds"
for cell in "${CELLS[@]}"; do
  base_vals=()
  head_vals=()
  for ((i = 0; i < ROUNDS; ++i)); do
    base_vals+=("$(measure "$BASE_BUILD" "$cell")")
    head_vals+=("$(measure "$HEAD_BUILD" "$cell")")
  done
  python3 - "$cell" "${base_vals[*]}" "${head_vals[*]}" <<'EOF'
import statistics, sys
cell, base, head = sys.argv[1], *(list(map(float, a.split())) for a in sys.argv[2:4])
mb, mh = statistics.median(base), statistics.median(head)
print(f"{cell}\n  baseline median {mb:14.1f}   head median {mh:14.1f}   ratio {mh / mb:.3f}x")
EOF
done

// Perf-trajectory reporter: measures the simulator and runtime hot paths
// end to end and emits a machine-readable BENCH_*.json (events/sec,
// reps/sec, epoch latency, peak RSS) so successive PRs can be compared
// number against number. See EXPERIMENTS.md ("Engine throughput reports").
//
// Every sweep / rt / rt_chaos cell is one exp::RunSpec (DESIGN.md §4e): a
// registry of spec strings is built up front, each cell runs through the
// one exp::run dispatcher, and its RunRecord is emitted verbatim — the
// "spec" key of any JSON row reproduces that exact cell via
// `ct_sim --spec` (on either substrate, by editing exec=). Only the
// broadcast section drives the simulator directly: it measures raw
// events/sec of the discrete-event core, which no RunSpec metric captures.
//
// Usage:
//   bench_report [--out FILE] [--smoke] [--list]
//
//   --out FILE   write the JSON report to FILE (default BENCH_report.json)
//   --smoke      one short iteration of everything — wired into ctest
//                (label bench-smoke) so the reporter cannot rot
//   --list       print `section<space>spec` for every registered RunSpec
//                (canonical form) without running anything; golden-file
//                tested so the measured matrix is reviewable in diffs
//
// CT_PROCS / CT_REPS / CT_SEED env overrides apply to the sweep section.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "experiment/mp.hpp"
#include "experiment/run_spec.hpp"
#include "protocol/tree_broadcast.hpp"
#include "sim/simulator.hpp"
#include "support/json.hpp"
#include "topology/factory.hpp"

namespace {

using namespace ct;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct BroadcastResult {
  topo::Rank procs = 0;
  const char* queue = "calendar";
  int iterations = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double messages_per_sec = 0.0;
  std::int64_t events_per_run = 0;
  std::int64_t messages_per_run = 0;
};

/// Fault-free corrected-tree broadcast, the BM_SimulateBroadcast workload:
/// repeat until `min_seconds` of wall clock (at least `min_iters` runs).
/// Deliberately not a RunSpec cell — this times the raw discrete-event core
/// (events/sec), below the replication layer exp::run measures.
BroadcastResult measure_broadcast(topo::Rank procs, sim::QueueKind queue,
                                  double min_seconds, int min_iters) {
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kChecked;
  config.start = proto::CorrectionStart::kSynchronized;
  config.sync_time = proto::fault_free_dissemination_time(tree, params);
  sim::RunOptions options;
  options.queue = queue;
  sim::Workspace workspace;

  BroadcastResult out;
  out.procs = procs;
  out.queue = queue == sim::QueueKind::kCalendar ? "calendar" : "binary-heap";
  std::int64_t events = 0;
  std::int64_t messages = 0;
  const auto start = Clock::now();
  while (out.iterations < min_iters || seconds_since(start) < min_seconds) {
    proto::CorrectedTreeBroadcast protocol(tree, config);
    sim::Simulator simulator(params, sim::FaultSet::none(procs));
    const sim::RunResult result = simulator.run(protocol, options, workspace);
    events += result.events_processed;
    messages += result.total_messages;
    ++out.iterations;
  }
  out.wall_seconds = seconds_since(start);
  out.events_per_sec = static_cast<double>(events) / out.wall_seconds;
  out.messages_per_sec = static_cast<double>(messages) / out.wall_seconds;
  out.events_per_run = events / out.iterations;
  out.messages_per_run = messages / out.iterations;
  return out;
}

/// One named report section: an ordered list of RunSpec cells.
struct SpecSection {
  const char* name;
  std::vector<std::string> specs;
};

/// The data-driven measurement registry. Everything the report runs through
/// exp::run is declared here as spec strings — `--list` prints exactly this.
std::vector<SpecSection> spec_sections(bool smoke) {
  const auto n = [](auto v) { return std::to_string(v); };

  // Sweep throughput matrix: the Monte-Carlo path behind every figure
  // (run_replicated over corrected-tree scenarios, per-worker ReplicaPlans
  // engaged), {base P, 8x P} x {fault-free, 2% faults}. The large size runs
  // an eighth of the replications (events scale ~linearly in P, so every
  // cell costs about the same wall clock). Smoke keeps only the base size.
  const exp::Scale scale = exp::default_scale(smoke ? 256 : 8192, smoke ? 4 : 1000);
  SpecSection sweep{"sweep_matrix", {}};
  const std::vector<topo::Rank> sweep_sizes =
      smoke ? std::vector<topo::Rank>{scale.procs}
            : std::vector<topo::Rank>{scale.procs, scale.procs * 8};
  for (topo::Rank procs : sweep_sizes) {
    const std::size_t reps =
        procs == scale.procs ? scale.reps : std::max<std::size_t>(1, scale.reps / 8);
    for (const char* f : {"", ",f=0.02"}) {
      sweep.specs.push_back("bcast:binomial:checked:sync@P=" + n(procs) + f +
                            ",reps=" + n(reps) + ",seed=" + n(scale.seed) +
                            ",exec=sim");
    }
  }

  // Runtime scaling table (DESIGN.md §4c): the sharded M:N executor across
  // the §4.4 rank ladder up to the paper's 36 864 ranks (optimized
  // overlapped opportunistic, d = 4 — the prototype setup), the 2 % failed
  // variant (gap-safe placement: both directions, d = 4 → gaps up to 8),
  // and a thread-per-rank A/B at a size the legacy executor still handles.
  // Smoke shrinks the ladder to one small A/B pair.
  const char* rt_head = "bcast:binomial:opportunistic:4:overlapped@P=";
  SpecSection rt{"rt", {}};
  if (smoke) {
    rt.specs.push_back(std::string(rt_head) +
                       "256,reps=3,warmup=1,deadline-ms=10000,exec=rt-sharded");
    rt.specs.push_back(std::string(rt_head) +
                       "256,reps=2,warmup=1,deadline-ms=30000,exec=rt-tpr");
  } else {
    for (topo::Rank procs : {1024, 4096, 16384, 36864}) {
      rt.specs.push_back(rt_head + n(procs) +
                         ",reps=9,deadline-ms=30000,exec=rt-sharded");
    }
    rt.specs.push_back(std::string(rt_head) +
                       "36864,f=0.02,gap=8,reps=5,warmup=1,deadline-ms=30000,"
                       "exec=rt-sharded");
    // Oversubscribed rows (DESIGN.md §4f): the worker count forced past the
    // host's cores, so cross-shard delivery and scheduler idle cost — not
    // protocol work — dominate. These are the cells where the SPSC mesh +
    // active-set scheduler has to beat the locked-inbox slice sweep; the
    // spec parses under older binaries too, so they interleave for A/B
    // (recipe in EXPERIMENTS.md).
    for (topo::Rank procs : {16384, 36864}) {
      rt.specs.push_back(rt_head + n(procs) +
                         ",reps=7,warmup=1,deadline-ms=30000,exec=rt-sharded:w=8");
    }
    // Timer-driven oversubscribed row: delayed correction under 2 % static
    // faults. Between timer firings only a handful of ranks are runnable,
    // so this cell isolates scheduler idle cost — full-slice sweeps versus
    // the active set + doorbell park. It is also where executor timing
    // fidelity shows: a sluggish scheduler fires the probe timers late and
    // silently skips probe rounds (see the messages/process caveat in
    // EXPERIMENTS.md, BENCH_PR6).
    rt.specs.push_back(
        "bcast:binomial:delayed:overlapped@P=36864,f=0.02,gap=8,reps=5,"
        "warmup=1,deadline-ms=30000,exec=rt-sharded:w=8");
    rt.specs.push_back(std::string(rt_head) +
                       "1024,reps=5,warmup=1,deadline-ms=120000,exec=rt-tpr");
  }

  // Chaos matrix (DESIGN.md §4d): {1 Ki, 16 Ki} ranks x {no chaos, 2 %
  // mid-epoch crashes, 2 % crashes + 1 % drops}, checked correction (the
  // recovery-guaranteed algorithm). All live-rank loss is mid-epoch — no
  // statically failed ranks — so the no-chaos cell doubles as the
  // injection-hooks-compile-to-no-ops regression guard. Smoke keeps a
  // single small crash+drop cell.
  SpecSection chaos{"rt_chaos", {}};
  const std::string chaos_seed = ",chaos-seed=" + n(std::uint64_t{0x5eed5eed});
  if (smoke) {
    chaos.specs.push_back("bcast:binomial:checked:overlapped@P=256" + chaos_seed +
                          ",crash-frac=0.02,drop-prob=0.01,reps=2,warmup=1,"
                          "deadline-ms=2000,exec=rt-sharded");
  } else {
    for (topo::Rank procs : {1024, 16384}) {
      // Checked correction's probe rate is wall-clock-paced in the runtime,
      // so its epochs are far heavier than the opportunistic rt rows
      // (~4 s at 16 Ki); the deadline and iteration count scale with P.
      const bool big = procs > 4096;
      const std::string run_scale = ",reps=" + n(big ? 3 : 9) +
                                    ",warmup=" + n(big ? 1 : 2) +
                                    ",deadline-ms=" + n(big ? 30000 : 2000) +
                                    ",exec=rt-sharded";
      const std::string head = "bcast:binomial:checked:overlapped@P=" + n(procs);
      chaos.specs.push_back(head + run_scale);
      chaos.specs.push_back(head + chaos_seed + ",crash-frac=0.02" + run_scale);
      chaos.specs.push_back(head + chaos_seed +
                            ",crash-frac=0.02,drop-prob=0.01" + run_scale);
    }
  }

  // Streaming ladder (PR8 tentpole): pipelined epochs through the sharded
  // executor's window slots. The open-loop pair offers the same saturating
  // arrival rate at W = 1 and W = 8 — the pipelining A/B (deliveries/s,
  // p99 sojourn) — and the headline cell streams a 64 KiB payload in 4 KiB
  // chunks (16 pipelined chunks per epoch) through a W = 8 closed loop.
  // Smoke keeps one small open-loop cell (also the stream_smoke ctest).
  SpecSection stream{"rt_stream", {}};
  if (smoke) {
    stream.specs.push_back(std::string(rt_head) +
                           "256,reps=8,window=4,rate=200,deadline-ms=10000,"
                           "exec=rt-sharded");
  } else {
    for (const char* window : {"1", "8"}) {
      stream.specs.push_back(rt_head + n(16384) + ",reps=24,deadline-ms=30000,window=" +
                             window + ",rate=1000,exec=rt-sharded");
    }
    stream.specs.push_back(rt_head + n(16384) +
                           ",bytes=65536,reps=24,deadline-ms=30000,window=8,"
                           "chunk=4096,exec=rt-sharded");
  }

  // Simulator twin of the streaming ladder (proto::StreamMux): a closed-loop
  // window, the chunked cell with a real per-byte gap G (the LogGP axis that
  // only matters once payloads are chunked), and an open-loop cell at a
  // model-time rate (1 tick ≙ 1 µs). Latencies are per-epoch sojourn ticks.
  const char* sim_head = "bcast:binomial:opportunistic:4:overlapped@P=";
  SpecSection sim_stream{"sim_stream", {}};
  if (smoke) {
    sim_stream.specs.push_back(std::string(sim_head) + "256,reps=8,window=4,exec=sim");
  } else {
    sim_stream.specs.push_back(std::string(sim_head) + "8192,reps=64,window=8,exec=sim");
    sim_stream.specs.push_back(std::string(sim_head) +
                               "8192,G=1,bytes=65536,reps=32,window=8,chunk=4096,"
                               "exec=sim");
    sim_stream.specs.push_back(std::string(sim_head) +
                               "8192,reps=64,window=8,rate=5000,exec=sim");
  }

  // Recovery matrix (PR9 tentpole): persistent 2 % crashes under repair=1 —
  // every epoch boundary rebuilds the tree over the survivors — alone and
  // with an immediate-revive schedule (revive-frac=1), checked correction.
  // The headline number per cell is epochs_to_converge (the k of the
  // "k epochs after the last fault" acceptance bound) in the appended
  // recovery keys of each JSON row; see EXPERIMENTS.md, BENCH_PR9.
  SpecSection recovery{"rt_recovery", {}};
  if (smoke) {
    recovery.specs.push_back("bcast:binomial:checked:overlapped@P=256" + chaos_seed +
                             ",crash-frac=0.02,repair=1,revive-frac=1,reps=2,"
                             "warmup=1,deadline-ms=2000,exec=rt-sharded");
  } else {
    for (topo::Rank procs : {1024, 16384}) {
      const bool big = procs > 4096;
      const std::string run_scale = ",reps=" + n(big ? 3 : 9) +
                                    ",warmup=" + n(big ? 1 : 2) +
                                    ",deadline-ms=" + n(big ? 30000 : 2000) +
                                    ",exec=rt-sharded";
      const std::string head = "bcast:binomial:checked:overlapped@P=" + n(procs) +
                               chaos_seed + ",crash-frac=0.02,repair=1";
      recovery.specs.push_back(head + run_scale);
      recovery.specs.push_back(head + ",revive-frac=1" + run_scale);
    }
  }

  return {sweep, rt, chaos, stream, sim_stream, recovery};
}

/// The process-sharded sweep cell (DESIGN.md §4g): the headline sweep cell
/// (base P, 2% faults), run through exp::run_replicated_mp at 1 and 2
/// worker processes. Registered here so --list covers it.
std::string mp_sweep_spec(bool smoke) {
  const exp::Scale scale = exp::default_scale(smoke ? 256 : 8192, smoke ? 4 : 1000);
  return "bcast:binomial:checked:sync@P=" + std::to_string(scale.procs) +
         ",f=0.02,reps=" + std::to_string(scale.reps) +
         ",seed=" + std::to_string(scale.seed) + ",exec=sim";
}

/// One sweep_mp measurement row.
struct MpRow {
  int procs = 1;
  bool forked = false;
  std::int64_t runs = 0;
  double wall_seconds = 0.0;
  double reps_per_sec = 0.0;
  double mean_quiescence = 0.0;
};

double peak_rss_mb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // linux: KiB
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_report.json";
  std::string filter;
  bool smoke = false;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--filter=", 9) == 0) {
      filter = argv[i] + 9;
    } else {
      std::fprintf(stderr,
                   "usage: bench_report [--out FILE] [--smoke] [--list] "
                   "[--filter=SUBSTRING]\n");
      return 2;
    }
  }

  const std::vector<SpecSection> sections = spec_sections(smoke);

  if (list) {
    // Canonical form (parse -> to_string): validates every registered spec
    // and keeps the golden file stable against cosmetic registry edits.
    for (const SpecSection& section : sections) {
      for (const std::string& text : section.specs) {
        std::printf("%s %s\n", section.name,
                    exp::parse_run_spec(text).to_string().c_str());
      }
    }
    std::printf("sweep_mp %s\n",
                exp::parse_run_spec(mp_sweep_spec(smoke)).to_string().c_str());
    return 0;
  }

  // --filter=SUBSTRING runs the subset of registered cells whose --list
  // line ("<section> <canonical spec>") contains the substring — the knob
  // that makes interleaved A/B against an older binary practical (run one
  // cell, alternate binaries, repeat; see EXPERIMENTS.md). The list output
  // and the full-run JSON layout are unchanged; compat objects whose source
  // cell is filtered away are simply omitted.
  const auto matches = [&](const char* section, const exp::RunSpec& spec) {
    if (filter.empty()) return true;
    return (std::string(section) + " " + spec.to_string()).find(filter) !=
           std::string::npos;
  };

  const double min_seconds = smoke ? 0.0 : 2.0;
  const int min_iters = smoke ? 1 : 3;
  std::vector<BroadcastResult> broadcasts;
  if (filter.empty()) {
    const std::vector<topo::Rank> sizes =
        smoke ? std::vector<topo::Rank>{256}
              : std::vector<topo::Rank>{1024, 8192, 65536};
    for (topo::Rank procs : sizes) {
      broadcasts.push_back(
          measure_broadcast(procs, sim::QueueKind::kCalendar, min_seconds, min_iters));
    }
    // Fallback-queue comparison at the largest size (A/B on identical runs).
    broadcasts.push_back(measure_broadcast(sizes.back(), sim::QueueKind::kBinaryHeap,
                                           min_seconds, min_iters));
  }

  // Process-sharded sweep (DESIGN.md §4g): the headline sweep cell through
  // exp::run_replicated_mp at 1 and 2 worker processes. Measured FIRST —
  // fork requires that no thread exist yet, and the shared ThreadPool below
  // spawns hardware_concurrency() of them. The procs=1 row is the in-process
  // serial baseline the 2-proc row's speedup is quoted against.
  const exp::RunSpec mp_spec = exp::parse_run_spec(mp_sweep_spec(smoke));
  std::vector<MpRow> mp_rows;
  bool mp_identical = true;
  if (matches("sweep_mp", mp_spec)) {
    const exp::Scenario mp_scenario = mp_spec.to_scenario();
    const auto mp_reps = static_cast<std::size_t>(mp_spec.reps);
    std::vector<double> mp_baseline;
    for (const int procs : {1, 2}) {
      const auto start = Clock::now();
      const exp::MpSweepResult sharded =
          exp::run_replicated_mp(mp_scenario, mp_reps, mp_spec.seed, procs);
      const double secs = seconds_since(start);
      if (!sharded.error.empty()) {
        std::fprintf(stderr, "bench_report: sweep_mp procs=%d: %s\n", procs,
                     sharded.error.c_str());
        return 1;
      }
      MpRow row;
      row.procs = sharded.procs_used;
      row.forked = sharded.forked;
      row.runs = sharded.aggregate.runs;
      row.wall_seconds = secs;
      row.reps_per_sec = secs > 0.0 ? static_cast<double>(mp_reps) / secs : 0.0;
      row.mean_quiescence = sharded.aggregate.quiescence_latency.mean();
      mp_rows.push_back(row);
      // The merge invariant: every procs value yields byte-identical samples.
      if (mp_baseline.empty()) {
        mp_baseline = sharded.aggregate.quiescence_latency.values();
      } else if (sharded.aggregate.quiescence_latency.values() != mp_baseline) {
        mp_identical = false;
      }
    }
  }

  // Run every registered cell through the one dispatcher, keeping the
  // parsed spec next to its record (the compat objects below need axes like
  // fault_fraction that the JSON row only carries inside the spec string).
  struct Cell {
    exp::RunSpec spec;
    exp::RunRecord record;
  };
  const support::ThreadPool pool;  // hardware concurrency, shared by sim cells
  std::vector<std::vector<Cell>> results(sections.size());
  for (std::size_t s = 0; s < sections.size(); ++s) {
    for (const std::string& text : sections[s].specs) {
      const exp::RunSpec spec = exp::parse_run_spec(text);
      if (!matches(sections[s].name, spec)) continue;
      results[s].push_back(Cell{spec, exp::run(spec, &pool)});
    }
  }
  const std::vector<Cell>& sweeps = results[0];
  const std::vector<Cell>& rt_rows = results[1];

  // Legacy headline cell (base P, 2% faults): kept as the top-level "sweep"
  // object so cross-PR comparisons and the bench-smoke check keep working.
  // Under --filter the cell may not have run; the object is then omitted.
  const Cell* sweep = sweeps.size() > 1 ? &sweeps[1] : nullptr;
  const double sweep_reps_per_sec =
      sweep && sweep->record.wall_seconds > 0.0
          ? static_cast<double>(sweep->record.runs) / sweep->record.wall_seconds
          : 0.0;

  // A/B pair: the thread-per-rank row vs the fault-free sharded row at the
  // same rank count.
  const Cell* ab_sharded = nullptr;
  const Cell* ab_legacy = nullptr;
  for (const Cell& legacy : rt_rows) {
    if (legacy.spec.executor != exp::Executor::kRtThreadPerRank) continue;
    for (const Cell& row : rt_rows) {
      if (row.spec.executor == exp::Executor::kRtSharded &&
          row.spec.params.P == legacy.spec.params.P &&
          row.spec.faults.fraction == 0.0) {
        ab_sharded = &row;
        ab_legacy = &legacy;
      }
    }
  }
  const double ab_speedup =
      ab_legacy && ab_legacy->record.messages_per_sec > 0.0
          ? ab_sharded->record.messages_per_sec / ab_legacy->record.messages_per_sec
          : 0.0;

  // Streaming A/B: the open-loop rt_stream pair (same offered rate, same
  // rank count, unchunked) at W = 1 vs W = 8.
  const std::vector<Cell>& stream_rows = results[3];
  const Cell* stream_w1 = nullptr;
  const Cell* stream_w8 = nullptr;
  for (const Cell& row : stream_rows) {
    if (row.spec.rate <= 0.0 || row.spec.chunk > 0) continue;
    if (row.spec.window == 1) stream_w1 = &row;
    if (row.spec.window == 8) stream_w8 = &row;
  }
  const double stream_speedup =
      stream_w1 && stream_w8 && stream_w1->record.deliveries_per_sec > 0.0
          ? stream_w8->record.deliveries_per_sec / stream_w1->record.deliveries_per_sec
          : 0.0;

  support::JsonWriter w;
  w.begin_object()
      .field("generated_by", "tools/bench_report")
      .field("smoke", smoke);
  w.key("broadcast").begin_array();
  for (const BroadcastResult& b : broadcasts) {
    w.begin_object()
        .field("procs", static_cast<std::int64_t>(b.procs))
        .field("queue", b.queue)
        .field("iterations", b.iterations)
        .field("wall_seconds", b.wall_seconds, 3)
        .field("events_per_sec", b.events_per_sec, 0)
        .field("messages_per_sec", b.messages_per_sec, 0)
        .field("events_per_run", b.events_per_run)
        .field("messages_per_run", b.messages_per_run)
        .end_object();
  }
  w.end_array();
  for (std::size_t s = 0; s < sections.size(); ++s) {
    w.key(sections[s].name).begin_array();
    for (const Cell& cell : results[s]) cell.record.write_json(w);
    w.end_array();
  }
  if (!mp_rows.empty()) {
    const double mp_speedup =
        mp_rows.size() > 1 && mp_rows.front().reps_per_sec > 0.0
            ? mp_rows.back().reps_per_sec / mp_rows.front().reps_per_sec
            : 0.0;
    w.key("sweep_mp")
        .begin_object()
        .field("spec", mp_spec.to_string().c_str())
        .field("merge_bit_identical", mp_identical);
    w.key("rows").begin_array();
    for (const MpRow& row : mp_rows) {
      w.begin_object()
          .field("procs", static_cast<std::int64_t>(row.procs))
          .field("forked", row.forked)
          .field("runs", row.runs)
          .field("wall_seconds", row.wall_seconds, 3)
          .field("reps_per_sec", row.reps_per_sec, 3)
          .field("mean_quiescence", row.mean_quiescence, 4)
          .end_object();
    }
    w.end_array();
    w.field("speedup_2proc", mp_speedup, 2).end_object();
  }
  if (sweep) {
    w.key("sweep")
        .begin_object()
        .field("procs", static_cast<std::int64_t>(sweep->record.procs))
        .field("reps", sweep->record.runs)
        .field("seed", sweep->spec.seed)
        .field("fault_fraction", sweep->spec.faults.fraction, 3)
        .field("pool_workers", sweep->record.workers)
        .field("wall_seconds", sweep->record.wall_seconds, 3)
        .field("reps_per_sec", sweep_reps_per_sec, 3)
        .field("mean_quiescence", sweep->record.aggregate.quiescence_latency.mean(), 4)
        .end_object();
  }
  if (stream_w1 && stream_w8) {
    w.key("rt_stream_ab")
        .begin_object()
        .field("procs", static_cast<std::int64_t>(stream_w8->record.procs))
        .field("offered_rate", stream_w8->record.offered_rate, 1)
        .field("w1_deliveries_per_sec", stream_w1->record.deliveries_per_sec, 0)
        .field("w8_deliveries_per_sec", stream_w8->record.deliveries_per_sec, 0)
        .field("w1_p99_sojourn_us", stream_w1->record.latency_p99, 1)
        .field("w8_p99_sojourn_us", stream_w8->record.latency_p99, 1)
        .field("speedup", stream_speedup, 2)
        .end_object();
  }
  if (ab_sharded) {
    w.key("rt_ab")
        .begin_object()
        .field("procs", static_cast<std::int64_t>(ab_sharded->record.procs))
        .field("sharded_messages_per_sec", ab_sharded->record.messages_per_sec, 0)
        .field("thread_per_rank_messages_per_sec",
               ab_legacy ? ab_legacy->record.messages_per_sec : 0.0, 0)
        .field("speedup", ab_speedup, 2)
        .end_object();
  }
  w.field("peak_rss_mb", peak_rss_mb(), 1).end_object();

  if (!w.write_file(out_path)) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", out_path.c_str());
    return 1;
  }

  std::printf(
      "bench_report: wrote %s (sweep %.1f reps/s, rt A/B at P=%d: %.1fx, "
      "stream W8/W1: %.2fx, peak RSS %.1f MB)\n",
      out_path.c_str(), sweep_reps_per_sec,
      ab_sharded ? ab_sharded->record.procs : 0, ab_speedup, stream_speedup,
      peak_rss_mb());
  if (!filter.empty()) {
    std::size_t cells = 0;
    for (const std::vector<Cell>& section : results) cells += section.size();
    std::printf("bench_report: --filter=%s matched %zu cell(s)\n", filter.c_str(),
                cells);
  }
  return 0;
}

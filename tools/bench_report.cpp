// Perf-trajectory reporter: measures the simulator hot paths end to end and
// emits a machine-readable BENCH_*.json (events/sec, reps/sec, peak RSS) so
// successive PRs can be compared number against number. See EXPERIMENTS.md
// ("Engine throughput reports").
//
// Usage:
//   bench_report [--out FILE] [--smoke]
//
//   --out FILE   write the JSON report to FILE (default BENCH_report.json)
//   --smoke      one short iteration of everything — wired into ctest
//                (label bench-smoke) so the reporter cannot rot
//
// CT_PROCS / CT_REPS / CT_SEED env overrides apply to the sweep section.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "protocol/tree_broadcast.hpp"
#include "rt/harness.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "topology/factory.hpp"
#include "topology/gaps.hpp"

namespace {

using namespace ct;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct BroadcastResult {
  topo::Rank procs = 0;
  const char* queue = "calendar";
  int iterations = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double messages_per_sec = 0.0;
  std::int64_t events_per_run = 0;
  std::int64_t messages_per_run = 0;
};

/// Fault-free corrected-tree broadcast, the BM_SimulateBroadcast workload:
/// repeat until `min_seconds` of wall clock (at least `min_iters` runs).
BroadcastResult measure_broadcast(topo::Rank procs, sim::QueueKind queue,
                                  double min_seconds, int min_iters) {
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kChecked;
  config.start = proto::CorrectionStart::kSynchronized;
  config.sync_time = proto::fault_free_dissemination_time(tree, params);
  sim::RunOptions options;
  options.queue = queue;
  sim::Workspace workspace;

  BroadcastResult out;
  out.procs = procs;
  out.queue = queue == sim::QueueKind::kCalendar ? "calendar" : "binary-heap";
  std::int64_t events = 0;
  std::int64_t messages = 0;
  const auto start = Clock::now();
  while (out.iterations < min_iters || seconds_since(start) < min_seconds) {
    proto::CorrectedTreeBroadcast protocol(tree, config);
    sim::Simulator simulator(params, sim::FaultSet::none(procs));
    const sim::RunResult result = simulator.run(protocol, options, workspace);
    events += result.events_processed;
    messages += result.total_messages;
    ++out.iterations;
  }
  out.wall_seconds = seconds_since(start);
  out.events_per_sec = static_cast<double>(events) / out.wall_seconds;
  out.messages_per_sec = static_cast<double>(messages) / out.wall_seconds;
  out.events_per_run = events / out.iterations;
  out.messages_per_run = messages / out.iterations;
  return out;
}

struct SweepResult {
  topo::Rank procs = 0;
  std::size_t reps = 0;
  std::uint64_t seed = 0;
  std::size_t pool_workers = 0;
  double fault_fraction = 0.0;
  double wall_seconds = 0.0;
  double reps_per_sec = 0.0;
  double mean_quiescence = 0.0;
};

/// The Monte-Carlo path behind every figure: run_replicated over a
/// corrected-tree scenario (per-worker ReplicaPlans engaged), one cell of
/// the procs x fault-fraction throughput matrix.
SweepResult measure_sweep(topo::Rank procs, double fault_fraction, std::size_t reps,
                          std::uint64_t seed, const support::ThreadPool& pool) {
  exp::Scenario scenario;
  scenario.params = sim::LogP{2, 1, 1, procs};
  scenario.protocol = exp::ProtocolKind::kCorrectedTree;
  scenario.tree.kind = topo::TreeKind::kBinomialInterleaved;
  scenario.correction.kind = proto::CorrectionKind::kChecked;
  scenario.correction.start = proto::CorrectionStart::kSynchronized;
  scenario.fault_fraction = fault_fraction;

  SweepResult out;
  out.procs = procs;
  out.reps = reps;
  out.seed = seed;
  out.pool_workers = pool.size();
  out.fault_fraction = scenario.fault_fraction;
  const auto start = Clock::now();
  const exp::Aggregate aggregate = exp::run_replicated(scenario, reps, seed, &pool);
  out.wall_seconds = seconds_since(start);
  out.reps_per_sec = static_cast<double>(reps) / out.wall_seconds;
  out.mean_quiescence = aggregate.quiescence_latency.mean();
  return out;
}

struct RtResult {
  topo::Rank procs = 0;
  const char* threading = "sharded";
  std::size_t workers = 0;
  double fault_fraction = 0.0;
  long long iterations = 0;
  double wall_seconds = 0.0;
  double median_latency_us = 0.0;
  double messages_per_sec = 0.0;
  long long timeouts = 0;
  long long incomplete = 0;
};

/// Fig12-style fault placement: sample until the statically-uncolored set's
/// largest ring gap is coverable by the prototype's correction (both
/// directions, distance 4 → gaps up to 8), so every epoch can complete.
std::vector<char> gap_safe_faults(topo::Rank procs, double fraction,
                                  const topo::Tree& tree, std::uint64_t seed) {
  std::vector<char> failed(static_cast<std::size_t>(procs), 0);
  if (fraction <= 0.0) return failed;
  support::Xoshiro256ss rng(seed);
  for (int attempt = 0;; ++attempt) {
    const sim::FaultSet faults = sim::FaultSet::random_fraction(procs, fraction, rng);
    std::vector<char> colored(static_cast<std::size_t>(procs), 1);
    for (topo::Rank r = 1; r < procs; ++r) {
      for (topo::Rank cur = r; cur != 0; cur = tree.parent(cur)) {
        if (faults.failed_from_start(cur)) {
          colored[static_cast<std::size_t>(r)] = 0;
          break;
        }
      }
    }
    if (topo::analyze_gaps(colored).max_gap <= 8 || attempt > 1000) {
      for (topo::Rank r : faults.initially_failed()) {
        failed[static_cast<std::size_t>(r)] = 1;
      }
      return failed;
    }
  }
}

/// One row of the rt scaling table: OSU-style corrected-tree broadcast
/// (optimized overlapped opportunistic, d = 4 — the §4.4 prototype setup)
/// on the chosen executor backend.
RtResult measure_rt(topo::Rank procs, rt::Threading threading, double fault_fraction,
                    std::int64_t iterations, std::int64_t warmup,
                    std::chrono::nanoseconds timeout, std::uint64_t seed) {
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const std::vector<char> failed = gap_safe_faults(procs, fault_fraction, tree, seed);
  rt::EngineOptions engine_options;
  engine_options.threading = threading;
  rt::Engine engine(procs, failed, engine_options);

  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kOptimizedOpportunistic;
  config.start = proto::CorrectionStart::kOverlapped;
  config.distance = 4;

  rt::HarnessOptions harness;
  harness.warmup = warmup;
  harness.iterations = iterations;
  harness.epoch_timeout = timeout;
  const rt::HarnessResult result = rt::measure_broadcast(
      engine,
      [&]() -> std::unique_ptr<sim::Protocol> {
        return std::make_unique<proto::CorrectedTreeBroadcast>(tree, config);
      },
      harness);

  RtResult out;
  out.procs = procs;
  out.threading = threading == rt::Threading::kSharded ? "sharded" : "thread-per-rank";
  out.workers = engine.worker_threads();
  out.fault_fraction = fault_fraction;
  out.iterations = result.iterations;
  out.wall_seconds = result.wall_seconds;
  out.median_latency_us = result.median_us();
  out.messages_per_sec = result.messages_per_sec();
  out.timeouts = result.timeouts;
  out.incomplete = result.incomplete;
  return out;
}

struct RtChaosResult {
  topo::Rank procs = 0;
  double crash_fraction = 0.0;
  double drop_prob = 0.0;
  long long iterations = 0;
  double wall_seconds = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double messages_per_sec = 0.0;
  long long epochs_degraded = 0;
  long long ranks_crashed = 0;
  long long messages_dropped = 0;
  long long messages_delayed = 0;
  long long messages_duplicated = 0;
};

/// One cell of the chaos matrix (DESIGN.md §4d): checked correction (the
/// recovery-guaranteed algorithm) under mid-epoch crashes and drops from a
/// deterministic ChaosPlan. All live-rank loss is mid-epoch here — no
/// statically failed ranks — so the no-chaos cell doubles as the
/// injection-hooks-compile-to-no-ops regression guard.
RtChaosResult measure_rt_chaos(topo::Rank procs, double crash_fraction,
                               double drop_prob, std::int64_t iterations,
                               std::int64_t warmup, std::uint64_t seed,
                               std::chrono::seconds deadline) {
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  rt::EngineOptions engine_options;
  engine_options.epoch_deadline = deadline;
  rt::Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0),
                    engine_options);
  rt::ChaosOptions chaos;
  chaos.seed = seed;
  chaos.crash_fraction = crash_fraction;
  chaos.drop_prob = drop_prob;
  engine.set_chaos(rt::ChaosPlan(chaos));

  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kChecked;
  config.start = proto::CorrectionStart::kOverlapped;

  rt::HarnessOptions harness;
  harness.warmup = warmup;
  harness.iterations = iterations;
  harness.epoch_timeout = engine_options.epoch_deadline;
  const rt::HarnessResult result = rt::measure_broadcast(
      engine,
      [&]() -> std::unique_ptr<sim::Protocol> {
        return std::make_unique<proto::CorrectedTreeBroadcast>(tree, config);
      },
      harness);

  RtChaosResult out;
  out.procs = procs;
  out.crash_fraction = crash_fraction;
  out.drop_prob = drop_prob;
  out.iterations = result.iterations;
  out.wall_seconds = result.wall_seconds;
  out.p50_latency_us = result.p50_us();
  out.p99_latency_us = result.p99_us();
  out.messages_per_sec = result.messages_per_sec();
  out.epochs_degraded = result.epochs_degraded;
  out.ranks_crashed = result.ranks_crashed;
  out.messages_dropped = result.messages_dropped;
  out.messages_delayed = result.messages_delayed;
  out.messages_duplicated = result.messages_duplicated;
  return out;
}

double peak_rss_mb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // linux: KiB
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_report.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_report [--out FILE] [--smoke]\n");
      return 2;
    }
  }

  const double min_seconds = smoke ? 0.0 : 2.0;
  const int min_iters = smoke ? 1 : 3;
  std::vector<BroadcastResult> broadcasts;
  const std::vector<topo::Rank> sizes =
      smoke ? std::vector<topo::Rank>{256} : std::vector<topo::Rank>{1024, 8192, 65536};
  for (topo::Rank procs : sizes) {
    broadcasts.push_back(
        measure_broadcast(procs, sim::QueueKind::kCalendar, min_seconds, min_iters));
  }
  // Fallback-queue comparison at the largest size (A/B on identical runs).
  broadcasts.push_back(measure_broadcast(sizes.back(), sim::QueueKind::kBinaryHeap,
                                         min_seconds, min_iters));

  // Sweep throughput matrix: {base P, 8x P} x {fault-free, 2% faults}. The
  // large size runs an eighth of the replications (events scale ~linearly
  // in P, so every cell costs about the same wall clock). Smoke keeps only
  // the base size to stay ctest-fast.
  const exp::Scale scale = exp::default_scale(smoke ? 256 : 8192, smoke ? 4 : 1000);
  const support::ThreadPool pool;  // hardware concurrency, shared by all cells
  std::vector<SweepResult> sweeps;
  const std::vector<topo::Rank> sweep_sizes =
      smoke ? std::vector<topo::Rank>{scale.procs}
            : std::vector<topo::Rank>{scale.procs, scale.procs * 8};
  for (topo::Rank procs : sweep_sizes) {
    const std::size_t reps =
        procs == scale.procs ? scale.reps : std::max<std::size_t>(1, scale.reps / 8);
    for (double fault_fraction : {0.0, 0.02}) {
      sweeps.push_back(measure_sweep(procs, fault_fraction, reps, scale.seed, pool));
    }
  }
  // Legacy headline cell (base P, 2% faults): kept as the top-level "sweep"
  // object so cross-PR comparisons and the bench-smoke check keep working.
  const SweepResult& sweep = sweeps[1];

  // Runtime scaling table (DESIGN.md §4c): the sharded M:N executor across
  // the §4.4 rank ladder up to the paper's 36 864 ranks, the 2 % failed
  // variant, and a thread-per-rank A/B at a size the legacy executor still
  // handles. Smoke shrinks the ladder to one small A/B pair.
  const std::uint64_t rt_seed = 0x5eed5eed;
  std::vector<RtResult> rt_rows;
  if (smoke) {
    rt_rows.push_back(measure_rt(256, rt::Threading::kSharded, 0.0, 3, 1,
                                 std::chrono::seconds(10), rt_seed));
    rt_rows.push_back(measure_rt(256, rt::Threading::kThreadPerRank, 0.0, 2, 1,
                                 std::chrono::seconds(30), rt_seed));
  } else {
    for (topo::Rank procs : {1024, 4096, 16384, 36864}) {
      rt_rows.push_back(measure_rt(procs, rt::Threading::kSharded, 0.0, 9, 2,
                                   std::chrono::seconds(30), rt_seed));
    }
    rt_rows.push_back(measure_rt(36864, rt::Threading::kSharded, 0.02, 5, 1,
                                 std::chrono::seconds(30), rt_seed));
    rt_rows.push_back(measure_rt(1024, rt::Threading::kThreadPerRank, 0.0, 5, 1,
                                 std::chrono::minutes(2), rt_seed));
  }
  // Chaos matrix (DESIGN.md §4d): {1 Ki, 16 Ki} ranks x {no chaos, 2 %
  // mid-epoch crashes, 2 % crashes + 1 % drops}, checked correction. Smoke
  // keeps a single small crash+drop cell.
  std::vector<RtChaosResult> chaos_rows;
  if (smoke) {
    chaos_rows.push_back(
        measure_rt_chaos(256, 0.02, 0.01, 2, 1, rt_seed, std::chrono::seconds(2)));
  } else {
    for (topo::Rank procs : {1024, 16384}) {
      // Checked correction's probe rate is wall-clock-paced in the runtime,
      // so its epochs are far heavier than the opportunistic rt rows
      // (~4 s at 16 Ki); the deadline and iteration count scale with P.
      const auto deadline = std::chrono::seconds(procs > 4096 ? 30 : 2);
      const std::int64_t iters = procs > 4096 ? 3 : 9;
      const std::int64_t warm = procs > 4096 ? 1 : 2;
      chaos_rows.push_back(
          measure_rt_chaos(procs, 0.0, 0.0, iters, warm, rt_seed, deadline));
      chaos_rows.push_back(
          measure_rt_chaos(procs, 0.02, 0.0, iters, warm, rt_seed, deadline));
      chaos_rows.push_back(
          measure_rt_chaos(procs, 0.02, 0.01, iters, warm, rt_seed, deadline));
    }
  }

  // A/B pair: the thread-per-rank row vs the fault-free sharded row at the
  // same rank count.
  RtResult ab_sharded, ab_legacy;
  for (const RtResult& legacy : rt_rows) {
    if (std::strcmp(legacy.threading, "thread-per-rank") != 0) continue;
    for (const RtResult& row : rt_rows) {
      if (row.procs == legacy.procs && row.fault_fraction == 0.0 &&
          std::strcmp(row.threading, "sharded") == 0) {
        ab_sharded = row;
        ab_legacy = legacy;
      }
    }
  }
  const double ab_speedup = ab_legacy.messages_per_sec > 0.0
                                ? ab_sharded.messages_per_sec / ab_legacy.messages_per_sec
                                : 0.0;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"generated_by\": \"tools/bench_report\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"broadcast\": [\n");
  for (std::size_t i = 0; i < broadcasts.size(); ++i) {
    const BroadcastResult& b = broadcasts[i];
    std::fprintf(out,
                 "    {\"procs\": %d, \"queue\": \"%s\", \"iterations\": %d, "
                 "\"wall_seconds\": %.3f, \"events_per_sec\": %.0f, "
                 "\"messages_per_sec\": %.0f, \"events_per_run\": %lld, "
                 "\"messages_per_run\": %lld}%s\n",
                 b.procs, b.queue, b.iterations, b.wall_seconds, b.events_per_sec,
                 b.messages_per_sec, static_cast<long long>(b.events_per_run),
                 static_cast<long long>(b.messages_per_run),
                 i + 1 < broadcasts.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  const auto print_sweep = [out](const SweepResult& s) {
    std::fprintf(out,
                 "{\"procs\": %d, \"reps\": %zu, \"seed\": %llu, "
                 "\"fault_fraction\": %.3f, \"pool_workers\": %zu, "
                 "\"wall_seconds\": %.3f, \"reps_per_sec\": %.3f, "
                 "\"mean_quiescence\": %.4f}",
                 s.procs, s.reps, static_cast<unsigned long long>(s.seed),
                 s.fault_fraction, s.pool_workers, s.wall_seconds, s.reps_per_sec,
                 s.mean_quiescence);
  };
  std::fprintf(out, "  \"sweep_matrix\": [\n");
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    std::fprintf(out, "    ");
    print_sweep(sweeps[i]);
    std::fprintf(out, "%s\n", i + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"sweep\": ");
  print_sweep(sweep);
  std::fprintf(out, ",\n");
  std::fprintf(out, "  \"rt\": [\n");
  for (std::size_t i = 0; i < rt_rows.size(); ++i) {
    const RtResult& r = rt_rows[i];
    std::fprintf(out,
                 "    {\"procs\": %d, \"threading\": \"%s\", \"workers\": %zu, "
                 "\"fault_fraction\": %.3f, \"iterations\": %lld, "
                 "\"wall_seconds\": %.3f, \"median_latency_us\": %.1f, "
                 "\"messages_per_sec\": %.0f, \"timeouts\": %lld, "
                 "\"incomplete\": %lld}%s\n",
                 r.procs, r.threading, r.workers, r.fault_fraction, r.iterations,
                 r.wall_seconds, r.median_latency_us, r.messages_per_sec, r.timeouts,
                 r.incomplete, i + 1 < rt_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"rt_chaos\": [\n");
  for (std::size_t i = 0; i < chaos_rows.size(); ++i) {
    const RtChaosResult& c = chaos_rows[i];
    std::fprintf(out,
                 "    {\"procs\": %d, \"crash_fraction\": %.3f, \"drop_prob\": "
                 "%.3f, \"iterations\": %lld, \"wall_seconds\": %.3f, "
                 "\"p50_latency_us\": %.1f, \"p99_latency_us\": %.1f, "
                 "\"messages_per_sec\": %.0f, \"epochs_degraded\": %lld, "
                 "\"ranks_crashed\": %lld, \"messages_dropped\": %lld, "
                 "\"messages_delayed\": %lld, \"messages_duplicated\": %lld}%s\n",
                 c.procs, c.crash_fraction, c.drop_prob, c.iterations,
                 c.wall_seconds, c.p50_latency_us, c.p99_latency_us,
                 c.messages_per_sec, c.epochs_degraded, c.ranks_crashed,
                 c.messages_dropped, c.messages_delayed, c.messages_duplicated,
                 i + 1 < chaos_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"rt_ab\": {\"procs\": %d, \"sharded_messages_per_sec\": %.0f, "
               "\"thread_per_rank_messages_per_sec\": %.0f, \"speedup\": %.2f},\n",
               ab_sharded.procs, ab_sharded.messages_per_sec,
               ab_legacy.messages_per_sec, ab_speedup);
  std::fprintf(out, "  \"peak_rss_mb\": %.1f\n}\n", peak_rss_mb());
  std::fclose(out);

  std::printf(
      "bench_report: wrote %s (sweep %.1f reps/s, rt A/B at P=%d: %.1fx, "
      "peak RSS %.1f MB)\n",
      out_path.c_str(), sweep.reps_per_sec, ab_sharded.procs, ab_speedup,
      peak_rss_mb());
  return 0;
}

// Perf-trajectory reporter: measures the simulator hot paths end to end and
// emits a machine-readable BENCH_*.json (events/sec, reps/sec, peak RSS) so
// successive PRs can be compared number against number. See EXPERIMENTS.md
// ("Engine throughput reports").
//
// Usage:
//   bench_report [--out FILE] [--smoke]
//
//   --out FILE   write the JSON report to FILE (default BENCH_report.json)
//   --smoke      one short iteration of everything — wired into ctest
//                (label bench-smoke) so the reporter cannot rot
//
// CT_PROCS / CT_REPS / CT_SEED env overrides apply to the sweep section.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "protocol/tree_broadcast.hpp"
#include "sim/simulator.hpp"
#include "topology/factory.hpp"

namespace {

using namespace ct;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct BroadcastResult {
  topo::Rank procs = 0;
  const char* queue = "calendar";
  int iterations = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double messages_per_sec = 0.0;
  std::int64_t events_per_run = 0;
  std::int64_t messages_per_run = 0;
};

/// Fault-free corrected-tree broadcast, the BM_SimulateBroadcast workload:
/// repeat until `min_seconds` of wall clock (at least `min_iters` runs).
BroadcastResult measure_broadcast(topo::Rank procs, sim::QueueKind queue,
                                  double min_seconds, int min_iters) {
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kChecked;
  config.start = proto::CorrectionStart::kSynchronized;
  config.sync_time = proto::fault_free_dissemination_time(tree, params);
  sim::RunOptions options;
  options.queue = queue;
  sim::Workspace workspace;

  BroadcastResult out;
  out.procs = procs;
  out.queue = queue == sim::QueueKind::kCalendar ? "calendar" : "binary-heap";
  std::int64_t events = 0;
  std::int64_t messages = 0;
  const auto start = Clock::now();
  while (out.iterations < min_iters || seconds_since(start) < min_seconds) {
    proto::CorrectedTreeBroadcast protocol(tree, config);
    sim::Simulator simulator(params, sim::FaultSet::none(procs));
    const sim::RunResult result = simulator.run(protocol, options, workspace);
    events += result.events_processed;
    messages += result.total_messages;
    ++out.iterations;
  }
  out.wall_seconds = seconds_since(start);
  out.events_per_sec = static_cast<double>(events) / out.wall_seconds;
  out.messages_per_sec = static_cast<double>(messages) / out.wall_seconds;
  out.events_per_run = events / out.iterations;
  out.messages_per_run = messages / out.iterations;
  return out;
}

struct SweepResult {
  topo::Rank procs = 0;
  std::size_t reps = 0;
  std::uint64_t seed = 0;
  std::size_t pool_workers = 0;
  double fault_fraction = 0.0;
  double wall_seconds = 0.0;
  double reps_per_sec = 0.0;
  double mean_quiescence = 0.0;
};

/// The Monte-Carlo path behind every figure: run_replicated over a
/// corrected-tree scenario (per-worker ReplicaPlans engaged), one cell of
/// the procs x fault-fraction throughput matrix.
SweepResult measure_sweep(topo::Rank procs, double fault_fraction, std::size_t reps,
                          std::uint64_t seed, const support::ThreadPool& pool) {
  exp::Scenario scenario;
  scenario.params = sim::LogP{2, 1, 1, procs};
  scenario.protocol = exp::ProtocolKind::kCorrectedTree;
  scenario.tree.kind = topo::TreeKind::kBinomialInterleaved;
  scenario.correction.kind = proto::CorrectionKind::kChecked;
  scenario.correction.start = proto::CorrectionStart::kSynchronized;
  scenario.fault_fraction = fault_fraction;

  SweepResult out;
  out.procs = procs;
  out.reps = reps;
  out.seed = seed;
  out.pool_workers = pool.size();
  out.fault_fraction = scenario.fault_fraction;
  const auto start = Clock::now();
  const exp::Aggregate aggregate = exp::run_replicated(scenario, reps, seed, &pool);
  out.wall_seconds = seconds_since(start);
  out.reps_per_sec = static_cast<double>(reps) / out.wall_seconds;
  out.mean_quiescence = aggregate.quiescence_latency.mean();
  return out;
}

double peak_rss_mb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // linux: KiB
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_report.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_report [--out FILE] [--smoke]\n");
      return 2;
    }
  }

  const double min_seconds = smoke ? 0.0 : 2.0;
  const int min_iters = smoke ? 1 : 3;
  std::vector<BroadcastResult> broadcasts;
  const std::vector<topo::Rank> sizes =
      smoke ? std::vector<topo::Rank>{256} : std::vector<topo::Rank>{1024, 8192, 65536};
  for (topo::Rank procs : sizes) {
    broadcasts.push_back(
        measure_broadcast(procs, sim::QueueKind::kCalendar, min_seconds, min_iters));
  }
  // Fallback-queue comparison at the largest size (A/B on identical runs).
  broadcasts.push_back(measure_broadcast(sizes.back(), sim::QueueKind::kBinaryHeap,
                                         min_seconds, min_iters));

  // Sweep throughput matrix: {base P, 8x P} x {fault-free, 2% faults}. The
  // large size runs an eighth of the replications (events scale ~linearly
  // in P, so every cell costs about the same wall clock). Smoke keeps only
  // the base size to stay ctest-fast.
  const exp::Scale scale = exp::default_scale(smoke ? 256 : 8192, smoke ? 4 : 1000);
  const support::ThreadPool pool;  // hardware concurrency, shared by all cells
  std::vector<SweepResult> sweeps;
  const std::vector<topo::Rank> sweep_sizes =
      smoke ? std::vector<topo::Rank>{scale.procs}
            : std::vector<topo::Rank>{scale.procs, scale.procs * 8};
  for (topo::Rank procs : sweep_sizes) {
    const std::size_t reps =
        procs == scale.procs ? scale.reps : std::max<std::size_t>(1, scale.reps / 8);
    for (double fault_fraction : {0.0, 0.02}) {
      sweeps.push_back(measure_sweep(procs, fault_fraction, reps, scale.seed, pool));
    }
  }
  // Legacy headline cell (base P, 2% faults): kept as the top-level "sweep"
  // object so cross-PR comparisons and the bench-smoke check keep working.
  const SweepResult& sweep = sweeps[1];

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"generated_by\": \"tools/bench_report\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"broadcast\": [\n");
  for (std::size_t i = 0; i < broadcasts.size(); ++i) {
    const BroadcastResult& b = broadcasts[i];
    std::fprintf(out,
                 "    {\"procs\": %d, \"queue\": \"%s\", \"iterations\": %d, "
                 "\"wall_seconds\": %.3f, \"events_per_sec\": %.0f, "
                 "\"messages_per_sec\": %.0f, \"events_per_run\": %lld, "
                 "\"messages_per_run\": %lld}%s\n",
                 b.procs, b.queue, b.iterations, b.wall_seconds, b.events_per_sec,
                 b.messages_per_sec, static_cast<long long>(b.events_per_run),
                 static_cast<long long>(b.messages_per_run),
                 i + 1 < broadcasts.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  const auto print_sweep = [out](const SweepResult& s) {
    std::fprintf(out,
                 "{\"procs\": %d, \"reps\": %zu, \"seed\": %llu, "
                 "\"fault_fraction\": %.3f, \"pool_workers\": %zu, "
                 "\"wall_seconds\": %.3f, \"reps_per_sec\": %.3f, "
                 "\"mean_quiescence\": %.4f}",
                 s.procs, s.reps, static_cast<unsigned long long>(s.seed),
                 s.fault_fraction, s.pool_workers, s.wall_seconds, s.reps_per_sec,
                 s.mean_quiescence);
  };
  std::fprintf(out, "  \"sweep_matrix\": [\n");
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    std::fprintf(out, "    ");
    print_sweep(sweeps[i]);
    std::fprintf(out, "%s\n", i + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"sweep\": ");
  print_sweep(sweep);
  std::fprintf(out, ",\n");
  std::fprintf(out, "  \"peak_rss_mb\": %.1f\n}\n", peak_rss_mb());
  std::fclose(out);

  std::printf("bench_report: wrote %s (sweep %.1f reps/s, peak RSS %.1f MB)\n",
              out_path.c_str(), sweep.reps_per_sec, peak_rss_mb());
  return 0;
}

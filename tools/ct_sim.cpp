// ct_sim — general-purpose scenario runner: every protocol, tree, correction
// algorithm, LogP/LogGP parameter and fault model in this library from one
// command line. The Swiss-army knife behind ad-hoc experiments that the
// figure benches don't cover.
//
// Examples:
//   ct_sim --tree=lame:3 --correction=checked --start=sync --procs 65536 \
//          --fault-rate 0.01 --reps 1000
//   ct_sim --protocol=gossip --gossip-time 40 --procs 16384 --reps 50
//   ct_sim --protocol=ack --tree=binomial --procs 8192
//   ct_sim --tree=binomial --correction=opportunistic --distance 2 \
//          --L 4 --o 2 --bytes 16 --G 1 --csv

#include <iostream>

#include "experiment/runner.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      R"(ct_sim — corrected-trees scenario runner

  --protocol=tree|ack|gossip     protocol family            [tree]
  --tree=SPEC                    binomial, binomial-inorder, kary:K,
                                 kary-inorder:K, lame:K, optimal [binomial]
  --correction=KIND              none, opportunistic, opportunistic-plain,
                                 checked, failure-proof, delayed [opportunistic]
  --distance N                   correction distance d        [4]
  --start=sync|overlapped        correction start mode        [overlapped]
  --left-only                    single-direction correction
  --gossip-time N                gossip budget (time-based)   [40]
  --procs N  --reps N  --seed N  scale                        [4096/100/..]
  --faults N | --fault-rate F    failures per run             [0]
  --L --o --g --bytes --G --O    LogP / LogGP parameters      [2/1/1/1/0/0]
  --csv                          machine-readable output
)";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ct;
  const support::Options options(argc, argv);
  if (options.get_flag("help")) {
    print_usage();
    return 0;
  }

  exp::Scenario scenario;
  scenario.params.L = options.get_int("L", 2);
  scenario.params.o = options.get_int("o", 1);
  scenario.params.g = options.get_int("g", scenario.params.o);
  scenario.params.G = options.get_int("G", 0);
  scenario.params.O = options.get_int("O", 0);
  scenario.params.bytes = options.get_int("bytes", 1);
  scenario.params.P = static_cast<topo::Rank>(options.get_int("procs", 4096));

  const std::string protocol = options.get_string("protocol", "tree");
  scenario.tree = topo::parse_tree_spec(options.get_string("tree", "binomial"));
  scenario.correction.kind =
      proto::parse_correction_kind(options.get_string("correction", "opportunistic"));
  scenario.correction.distance = static_cast<int>(options.get_int("distance", 4));
  scenario.correction.start = options.get_string("start", "overlapped") == "sync"
                                  ? proto::CorrectionStart::kSynchronized
                                  : proto::CorrectionStart::kOverlapped;
  if (options.get_flag("left-only")) {
    scenario.correction.directions = proto::CorrectionDirections::kLeftOnly;
  }
  scenario.correction.delay =
      options.get_int("delay", 2 * scenario.params.message_cost());

  if (protocol == "tree") {
    scenario.protocol = exp::ProtocolKind::kCorrectedTree;
  } else if (protocol == "ack") {
    scenario.protocol = exp::ProtocolKind::kAckTree;
  } else if (protocol == "gossip") {
    scenario.protocol = exp::ProtocolKind::kGossip;
    scenario.gossip.budget = proto::GossipConfig::Budget::kTime;
    scenario.gossip.gossip_time = options.get_int("gossip-time", 40);
    scenario.gossip.correction = scenario.correction;
    scenario.gossip.correction.start = proto::CorrectionStart::kSynchronized;
    scenario.gossip.correction.sync_time = scenario.gossip.gossip_time;
  } else {
    std::cerr << "unknown --protocol '" << protocol << "'\n";
    print_usage();
    return 2;
  }

  scenario.fault_count = static_cast<topo::Rank>(options.get_int("faults", 0));
  scenario.fault_fraction = options.get_double("fault-rate", 0.0);

  const auto reps = static_cast<std::size_t>(options.get_int("reps", 100));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 0x5eed5eed));

  const support::ThreadPool pool;
  const exp::Aggregate agg = exp::run_replicated(scenario, reps, seed, &pool);

  support::Table table({"metric", "mean", "p5", "p50", "p95", "max"});
  auto row = [&](const char* name, const support::Samples& samples, int precision) {
    if (samples.empty()) {
      table.add_row({name, "-", "-", "-", "-", "-"});
      return;
    }
    table.add_row({name, support::fmt(samples.mean(), precision),
                   support::fmt(samples.percentile(0.05), precision),
                   support::fmt(samples.median(), precision),
                   support::fmt(samples.percentile(0.95), precision),
                   support::fmt(samples.max(), precision)});
  };
  row("coloring latency", agg.coloring_latency, 1);
  row("quiescence latency", agg.quiescence_latency, 1);
  row("messages/process", agg.messages_per_process, 2);
  row("max gap", agg.max_gap, 1);
  row("correction time", agg.correction_time, 1);

  if (options.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    std::cout << "protocol=" << protocol << " tree=" << scenario.tree.to_string()
              << " correction=" << scenario.correction.to_string()
              << " P=" << scenario.params.P << " reps=" << reps << " seed=" << seed
              << "\n\n";
    table.print(std::cout);
    std::cout << "\nruns leaving live processes uncolored: " << agg.not_fully_colored
              << " / " << agg.runs << "\n";
  }
  return 0;
}

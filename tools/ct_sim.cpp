// ct_sim — general-purpose scenario runner: every collective, protocol,
// tree, correction algorithm, LogP/LogGP parameter, fault model and
// executor in this library from one command line. The Swiss-army knife
// behind ad-hoc experiments that the figure benches don't cover.
//
// Every run is one exp::RunSpec cell (DESIGN.md §4e); pass the spec string
// directly, or build one from flags. The canonical spec is echoed so any
// run can be reproduced — including on the other substrate by just editing
// its exec= parameter.
//
// Examples:
//   ct_sim "bcast:binomial:checked:overlapped@P=1024,f=2%,exec=sim"
//   ct_sim --tree=lame:3 --correction=checked --start=sync --procs 65536 \
//          --fault-rate 0.01 --reps 1000
//   ct_sim --protocol=gossip --gossip-time 40 --procs 16384 --reps 50
//   ct_sim --tree=binomial --correction=opportunistic --distance 2 \
//          --L 4 --o 2 --bytes 16 --G 1 --csv

#include <iostream>

#include "experiment/run_spec.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      R"(ct_sim — corrected-trees scenario runner

  --spec "STRING"                full RunSpec cell; overrides all flags below
  --collective=bcast|reduce|allreduce                          [bcast]
  --protocol=tree|ack|gossip     protocol family               [tree]
  --tree=SPEC                    binomial, binomial-inorder, kary:K,
                                 kary-inorder:K, lame:K, optimal [binomial]
  --correction=KIND              none, opportunistic, opportunistic-plain,
                                 checked, failure-proof, delayed [opportunistic]
  --distance N                   correction distance d        [4]
  --start=sync|overlapped        correction start mode        [overlapped]
  --left-only                    single-direction correction
  --gossip-time N                gossip budget (time-based)   [40]
  --procs N  --reps N  --seed N  scale                        [4096/100/..]
  --faults N | --fault-rate F    failures per run             [0]
  --L --o --g --bytes --G --O    LogP / LogGP parameters      [2/1/1/1/0/0]
  --exec=sim|rt-sharded|rt-tpr   executor substrate           [sim]
  --csv                          machine-readable output (sim executor)
)";
}

ct::exp::RunSpec spec_from_flags(const ct::support::Options& options) {
  using namespace ct;
  exp::RunSpec spec;
  spec.collective = exp::parse_collective(options.get_string("collective", "bcast"));
  spec.params.L = options.get_int("L", 2);
  spec.params.o = options.get_int("o", 1);
  spec.params.g = options.get_int("g", spec.params.o);
  spec.params.G = options.get_int("G", 0);
  spec.params.O = options.get_int("O", 0);
  spec.params.bytes = options.get_int("bytes", 1);
  spec.params.P = static_cast<topo::Rank>(options.get_int("procs", 4096));

  spec.tree = topo::parse_tree_spec(options.get_string("tree", "binomial"));
  spec.correction.kind =
      proto::parse_correction_kind(options.get_string("correction", "opportunistic"));
  spec.correction.distance = static_cast<int>(options.get_int("distance", 4));
  spec.correction.start =
      proto::parse_correction_start(options.get_string("start", "overlapped"));
  if (options.get_flag("left-only")) {
    spec.correction.directions = proto::CorrectionDirections::kLeftOnly;
  }
  spec.correction.delay = options.get_int("delay", 0);  // 0 = substrate default

  const std::string protocol = options.get_string("protocol", "tree");
  if (protocol == "tree") {
    spec.protocol = exp::ProtocolKind::kCorrectedTree;
  } else if (protocol == "ack") {
    spec.protocol = exp::ProtocolKind::kAckTree;
  } else if (protocol == "gossip") {
    spec.protocol = exp::ProtocolKind::kGossip;
    spec.gossip_time = options.get_int("gossip-time", 40);
  } else {
    throw std::invalid_argument("unknown --protocol '" + protocol + "'");
  }

  spec.faults.count = static_cast<topo::Rank>(options.get_int("faults", 0));
  spec.faults.fraction = options.get_double("fault-rate", 0.0);

  spec.reps = options.get_int("reps", 100);
  spec.seed = static_cast<std::uint64_t>(options.get_int("seed", 0x5eed5eed));

  exp::parse_executor(options.get_string("exec", "sim"), spec);
  if (spec.workers == 0) {
    spec.workers = static_cast<int>(options.get_int("workers", 0));
  }
  if (spec.executor == exp::Executor::kSim) spec.workers = 0;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ct;
  const support::Options options(argc, argv);
  if (options.get_flag("help")) {
    print_usage();
    return 0;
  }

  exp::RunSpec spec;
  try {
    // --spec=STRING or a positional spec string.
    std::string text = options.get_string("spec", "");
    if (text.empty() && !options.positional().empty()) {
      text = options.positional().front();
    }
    spec = text.empty() ? spec_from_flags(options) : exp::parse_run_spec(text);
    spec.validate();
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    print_usage();
    return 2;
  }

  const support::ThreadPool pool;
  const exp::RunRecord record = exp::run(spec, &pool);

  if (spec.executor != exp::Executor::kSim) {
    std::cout << "spec: " << record.spec << "\n"
              << "executor          : " << record.executor << " (" << record.workers
              << " worker threads)\n"
              << "iterations        : " << record.runs << "\n"
              << "median latency    : " << record.latency_p50 << " us\n"
              << "p99 latency       : " << record.latency_p99 << " us\n"
              << "messages/process  : " << record.messages_per_process << "\n"
              << "messages/s        : " << record.messages_per_sec << "\n"
              << "incomplete epochs : " << record.incomplete << "\n"
              << "timeouts          : " << record.timeouts << "\n";
    return (record.incomplete == 0 && record.timeouts == 0) ? 0 : 1;
  }

  const exp::Aggregate& agg = record.aggregate;
  support::Table table({"metric", "mean", "p5", "p50", "p95", "max"});
  auto row = [&](const char* name, const support::Samples& samples, int precision) {
    if (samples.empty()) {
      table.add_row({name, "-", "-", "-", "-", "-"});
      return;
    }
    table.add_row({name, support::fmt(samples.mean(), precision),
                   support::fmt(samples.percentile(0.05), precision),
                   support::fmt(samples.median(), precision),
                   support::fmt(samples.percentile(0.95), precision),
                   support::fmt(samples.max(), precision)});
  };
  row("coloring latency", agg.coloring_latency, 1);
  row("quiescence latency", agg.quiescence_latency, 1);
  row("messages/process", agg.messages_per_process, 2);
  row("max gap", agg.max_gap, 1);
  row("correction time", agg.correction_time, 1);

  if (options.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    std::cout << "spec: " << record.spec << "\n\n";
    table.print(std::cout);
    std::cout << "\nruns leaving live processes uncolored: " << record.incomplete
              << " / " << record.runs << "\n";
  }
  return 0;
}

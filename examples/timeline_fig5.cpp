// Figure 5a, live: "Timeline of a Lamé tree, k = 3, P = 9. L = o = 1 chosen
// to make the tree optimal for this model." Renders the per-process
// send/receive timeline of the dissemination, then the same picture for a
// binomial tree so the different shapes are visible side by side.
//
//   $ ./timeline_fig5 [--tree=lame:3] [--procs 9] [--L 1] [--o 1]

#include <iostream>

#include "protocol/tree_broadcast.hpp"
#include "sim/simulator.hpp"
#include "sim/timeline.hpp"
#include "support/options.hpp"
#include "topology/factory.hpp"

namespace {

void show(const ct::topo::Tree& tree, const ct::sim::LogP& params) {
  using namespace ct;
  proto::CorrectionConfig none;
  none.kind = proto::CorrectionKind::kNone;
  proto::CorrectedTreeBroadcast broadcast(tree, none);

  sim::TimelineRecorder recorder(params);
  sim::RunOptions options;
  options.trace = recorder.callback();
  sim::Simulator simulator(params, sim::FaultSet::none(params.P));
  const sim::RunResult result = simulator.run(broadcast, options);

  std::cout << tree.name() << "  (P = " << params.P << ", L = " << params.L
            << ", o = " << params.o << "): colored in " << result.coloring_latency
            << " steps\n"
            << recorder.render() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ct;
  const support::Options options(argc, argv);
  const auto procs = static_cast<topo::Rank>(options.get_int("procs", 9));
  sim::LogP params{options.get_int("L", 1), options.get_int("o", 1), 0, procs};
  params.g = params.o;

  const std::string spec = options.get_string("tree", "lame:3");
  show(topo::make_tree(topo::parse_tree_spec(spec), procs), params);

  if (!options.has("tree")) {
    // Contrast: the binomial tree under the same model finishes later here
    // because 2o + L = 3 = k makes the Lamé tree optimal (§3.2.3).
    show(topo::make_binomial_interleaved(procs), params);
  }
  return 0;
}

// Runtime broadcast: the same protocol objects the simulator analyses,
// executed in wall-clock time by the sharded M:N runtime (the repo's
// stand-in for the paper's MPI prototype, §4.4 — scales to the paper's
// 36 864 ranks). Every run is one exp::RunSpec cell (DESIGN.md §4e): pass
// the spec string directly, or build one from the classic flags. The
// canonical spec of the run is echoed so any invocation can be reproduced
// with --spec (or under exec=sim, unchanged).
//
//   $ ./runtime_broadcast \
//       "bcast:binomial:checked:overlapped@P=1024,f=2%,exec=rt-sharded:w=8"
//   $ ./runtime_broadcast --procs 36864 --faults 700 --iterations 10
//   $ ./runtime_broadcast --procs 256 --legacy        # thread-per-rank A/B
//   $ ./runtime_broadcast --procs 4096 --workers 2    # pin the shard count
//
// Chaos soaks (DESIGN.md §4d) — deterministic mid-epoch crashes, drops,
// delays and duplicates; the run always terminates by --deadline-ms and
// degraded runs end with a printed degradation report, never a hang:
//
//   $ ./runtime_broadcast --procs 512 --iterations 200 --correction=checked
//       --chaos-seed 7 --crash-frac 0.02 --drop-prob 0.01 --delay-prob 0.01
//   $ ./runtime_broadcast --procs 512 --iterations 200 --legacy
//       --chaos-seed 7 --crash-frac 0.02     # same schedule, other executor
//
// Self-healing soaks (PR9): --repair makes crashes persistent and repairs
// the membership at every epoch boundary (tree rebuilt over survivors);
// --revive-frac / --revive-after-us schedule deterministic revivals so
// crashed ranks rejoin at a later boundary:
//
//   $ ./runtime_broadcast --procs 512 --iterations 200 --correction=checked
//       --crash-frac 0.02 --repair --revive-frac 1 --revive-after-us 2000

#include <iostream>
#include <string>

#include "experiment/run_spec.hpp"
#include "support/options.hpp"

namespace {

void print_ranks(const std::vector<ct::topo::Rank>& ranks) {
  std::cout << '[';
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i) std::cout << ' ';
    if (i == 16) {
      std::cout << "...";
      break;
    }
    std::cout << ranks[i];
  }
  std::cout << ']';
}

/// RunSpec from the classic flag set — every axis goes through the shared
/// parsers (proto::parse_correction_kind & friends via exp::parse_run_spec);
/// this binary owns no name tables of its own.
ct::exp::RunSpec spec_from_flags(const ct::support::Options& options) {
  using ct::exp::RunSpec;
  RunSpec spec;
  spec.params.P = static_cast<ct::topo::Rank>(options.get_int("procs", 32));
  spec.tree = ct::topo::parse_tree_spec(options.get_string("tree", "binomial"));
  spec.correction.kind =
      ct::proto::parse_correction_kind(options.get_string("correction", "opportunistic"));
  spec.correction.start =
      ct::proto::parse_correction_start(options.get_string("start", "overlapped"));
  spec.correction.distance = static_cast<int>(options.get_int("distance", 4));
  spec.faults.count = static_cast<ct::topo::Rank>(options.get_int("faults", 3));
  spec.reps = options.get_int("iterations", 10);
  spec.warmup = 2;
  spec.seed = static_cast<std::uint64_t>(options.get_int("seed", 11));
  spec.workers = static_cast<int>(options.get_int("workers", 0));
  spec.executor = options.get_flag("legacy") ? ct::exp::Executor::kRtThreadPerRank
                                             : ct::exp::Executor::kRtSharded;
  spec.faults.chaos_seed = static_cast<std::uint64_t>(options.get_int("chaos-seed", 0));
  spec.faults.crash_fraction = options.get_double("crash-frac", 0.0);
  spec.faults.drop_prob = options.get_double("drop-prob", 0.0);
  spec.faults.delay_prob = options.get_double("delay-prob", 0.0);
  spec.faults.duplicate_prob = options.get_double("dup-prob", 0.0);
  spec.faults.delay_us = options.get_int("delay-us", 200);
  spec.faults.crash_window_us = options.get_int("crash-window-us", 2000);
  spec.faults.repair = options.get_flag("repair");
  spec.faults.revive_fraction = options.get_double("revive-frac", 0.0);
  spec.faults.revive_after_us = options.get_int("revive-after-us", 0);
  spec.deadline_ms = options.get_int("deadline-ms", 0);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ct;
  const support::Options options(argc, argv);

  exp::RunSpec spec;
  try {
    // --spec=STRING or a positional spec string (--spec STRING would leave
    // the string positional anyway — see support::Options conventions).
    std::string text = options.get_string("spec", "");
    if (text.empty() && !options.positional().empty()) {
      text = options.positional().front();
    }
    spec = text.empty() ? spec_from_flags(options) : exp::parse_run_spec(text);
    if (spec.executor == exp::Executor::kSim) {
      // This example demonstrates the runtime; sim specs belong to ct_sim.
      spec.executor = exp::Executor::kRtSharded;
    }
    if (spec.faults.chaos_enabled() && spec.deadline_ms == 0) {
      // Chaos without a deadline could wait out the full 10 s epoch timeout
      // per degraded epoch; default to a snappy bound.
      spec.deadline_ms = 500;
    }
    spec.validate();
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  const bool chaotic = spec.faults.chaos_enabled();
  std::cout << "spec: " << spec.to_string() << "\n";

  const exp::RunRecord result = exp::run(spec);
  std::cout << "executor           : " << result.executor << " (" << result.workers
            << " worker threads)\n"
            << "iterations         : " << result.runs << "\n"
            << "median latency     : " << result.latency_p50 << " us\n"
            << "p99 latency        : " << result.latency_p99 << " us\n"
            << "messages/process   : " << result.messages_per_process << "\n"
            << "incomplete epochs  : " << result.incomplete
            << " (0 = every live rank colored every time)\n"
            << "timeouts           : " << result.timeouts << "\n";
  if (chaotic) {
    std::cout << "degraded epochs    : " << result.epochs_degraded << " / "
              << result.runs << "\n"
              << "ranks crashed      : " << result.ranks_crashed << "\n"
              << "dropped/delayed/dup: " << result.messages_dropped << "/"
              << result.messages_delayed << "/" << result.messages_duplicated << "\n";
    if (spec.faults.repair) {
      std::cout << "repairs            : " << result.repairs << "\n"
                << "rejoins            : " << result.rejoins << " ("
                << result.replayed_epochs << " epochs replayed, "
                << result.state_transfers << " state transfers)\n"
                << "epochs to converge : " << result.epochs_to_converge
                << " (epochs degraded past the last fault)\n";
    }
    if (result.epochs_degraded > 0) {
      std::cout << "first epoch detail:\n  crashed mid-epoch  : ";
      print_ranks(result.crashed_ranks);
      std::cout << "\n  uncolored survivors: ";
      print_ranks(result.uncolored_survivors);
      std::cout << "\n";
    }
    // Under chaos, degraded epochs are the expected outcome being studied;
    // success means every epoch terminated and was explained.
    return 0;
  }
  return (result.incomplete == 0 && result.timeouts == 0) ? 0 : 1;
}

// Runtime broadcast: the same protocol objects the simulator analyses,
// executed in wall-clock time by the sharded M:N runtime (the repo's
// stand-in for the paper's MPI prototype, §4.4 — scales to the paper's
// 36 864 ranks). Kills a few ranks, runs a handful of broadcast
// iterations, and reports wall-clock latency.
//
//   $ ./runtime_broadcast --procs 36864 --faults 700 --iterations 10
//   $ ./runtime_broadcast --procs 256 --legacy        # thread-per-rank A/B
//   $ ./runtime_broadcast --procs 4096 --workers 2    # pin the shard count

#include <iostream>
#include <memory>

#include "protocol/tree_broadcast.hpp"
#include "rt/harness.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "topology/tree.hpp"

int main(int argc, char** argv) {
  using namespace ct;
  const support::Options options(argc, argv);
  const auto procs = static_cast<topo::Rank>(options.get_int("procs", 32));
  const auto faults = static_cast<topo::Rank>(options.get_int("faults", 3));
  const auto iterations = options.get_int("iterations", 10);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 11));

  const topo::Tree tree = topo::make_binomial_interleaved(procs);

  std::vector<char> failed(static_cast<std::size_t>(procs), 0);
  support::Xoshiro256ss rng(seed);
  topo::Rank remaining = std::min<topo::Rank>(faults, procs - 1);
  std::cout << "failed ranks:";
  while (remaining > 0) {
    const auto victim =
        static_cast<std::size_t>(1 + rng.below(static_cast<std::uint64_t>(procs) - 1));
    if (!failed[victim]) {
      failed[victim] = 1;
      --remaining;
      std::cout << ' ' << victim;
    }
  }
  std::cout << "\n";

  rt::EngineOptions engine_options;
  engine_options.workers = static_cast<int>(options.get_int("workers", 0));
  if (options.get_flag("legacy")) engine_options.threading = rt::Threading::kThreadPerRank;
  rt::Engine engine(procs, failed, engine_options);
  std::cout << "executor: "
            << (engine.options().threading == rt::Threading::kSharded
                    ? "sharded"
                    : "thread-per-rank")
            << " (" << engine.worker_threads() << " worker threads)\n";
  proto::CorrectionConfig correction;
  correction.kind = proto::CorrectionKind::kOptimizedOpportunistic;
  correction.start = proto::CorrectionStart::kOverlapped;
  correction.distance = 4;

  rt::HarnessOptions harness;
  harness.warmup = 2;
  harness.iterations = iterations;
  const rt::HarnessResult result = rt::measure_broadcast(
      engine,
      [&]() -> std::unique_ptr<sim::Protocol> {
        return std::make_unique<proto::CorrectedTreeBroadcast>(tree, correction);
      },
      harness);

  std::cout << "iterations         : " << result.iterations << "\n"
            << "median latency     : " << result.median_us() << " us\n"
            << "p95 latency        : " << result.latency_us.percentile(0.95) << " us\n"
            << "messages/process   : " << result.messages_per_process.mean() << "\n"
            << "incomplete epochs  : " << result.incomplete
            << " (0 = every live rank colored every time)\n"
            << "timeouts           : " << result.timeouts << "\n";
  return (result.incomplete == 0 && result.timeouts == 0) ? 0 : 1;
}

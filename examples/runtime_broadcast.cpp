// Runtime broadcast: the same protocol objects the simulator analyses,
// executed in wall-clock time by the sharded M:N runtime (the repo's
// stand-in for the paper's MPI prototype, §4.4 — scales to the paper's
// 36 864 ranks). Kills a few ranks, runs a handful of broadcast
// iterations, and reports wall-clock latency.
//
//   $ ./runtime_broadcast --procs 36864 --faults 700 --iterations 10
//   $ ./runtime_broadcast --procs 256 --legacy        # thread-per-rank A/B
//   $ ./runtime_broadcast --procs 4096 --workers 2    # pin the shard count
//
// Chaos soaks (DESIGN.md §4d) — deterministic mid-epoch crashes, drops,
// delays and duplicates; the run always terminates by --deadline-ms and
// degraded epochs end with a printed degradation report, never a hang:
//
//   $ ./runtime_broadcast --procs 512 --iterations 200 --correction=checked
//       --chaos-seed 7 --crash-frac 0.02 --drop-prob 0.01 --delay-prob 0.01
//   $ ./runtime_broadcast --procs 512 --iterations 200 --legacy
//       --chaos-seed 7 --crash-frac 0.02     # same schedule, other executor

#include <iostream>
#include <memory>
#include <string>

#include "protocol/tree_broadcast.hpp"
#include "rt/harness.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "topology/tree.hpp"

namespace {

ct::proto::CorrectionConfig parse_correction(const std::string& name) {
  using ct::proto::CorrectionKind;
  ct::proto::CorrectionConfig config;
  config.start = ct::proto::CorrectionStart::kOverlapped;
  config.distance = 4;
  if (name == "none") {
    config.kind = CorrectionKind::kNone;
  } else if (name == "opportunistic") {
    config.kind = CorrectionKind::kOpportunistic;
  } else if (name == "opportunistic-opt") {
    config.kind = CorrectionKind::kOptimizedOpportunistic;
  } else if (name == "checked") {
    config.kind = CorrectionKind::kChecked;
  } else if (name == "failure-proof") {
    config.kind = CorrectionKind::kFailureProof;
  } else if (name == "delayed") {
    config.kind = CorrectionKind::kDelayed;
    config.delay = 200'000;  // wall-clock ns: probe after ~200 µs of silence
  } else {
    std::cerr << "unknown --correction '" << name
              << "': use --correction=NAME with NAME one of "
                 "none|opportunistic|opportunistic-opt|checked|"
                 "failure-proof|delayed\n";
    std::exit(2);
  }
  return config;
}

void print_degradation_report(const ct::rt::EpochResult& epoch) {
  std::cout << "first degraded epoch:\n"
            << "  timed out          : " << (epoch.timed_out ? "yes" : "no") << "\n"
            << "  crashed mid-epoch  : " << epoch.crashed_mid_epoch << " [";
  for (std::size_t i = 0; i < epoch.crashed_ranks.size(); ++i) {
    if (i) std::cout << ' ';
    if (i == 16) {
      std::cout << "...";
      break;
    }
    std::cout << epoch.crashed_ranks[i];
  }
  std::cout << "]\n"
            << "  uncolored survivors: " << epoch.uncolored_live << " [";
  for (std::size_t i = 0; i < epoch.uncolored_survivors.size(); ++i) {
    if (i) std::cout << ' ';
    if (i == 16) {
      std::cout << "...";
      break;
    }
    std::cout << epoch.uncolored_survivors[i];
  }
  std::cout << "]\n"
            << "  coloring gaps      : " << epoch.coloring_gaps.gap_count
            << " (max gap " << epoch.coloring_gaps.max_gap << ")\n"
            << "  pending timers     : " << epoch.timers_pending << "\n"
            << "  drops/delays/dups  : " << epoch.messages_dropped << "/"
            << epoch.messages_delayed << "/" << epoch.messages_duplicated << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ct;
  const support::Options options(argc, argv);
  const auto procs = static_cast<topo::Rank>(options.get_int("procs", 32));
  const auto faults = static_cast<topo::Rank>(options.get_int("faults", 3));
  const auto iterations = options.get_int("iterations", 10);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 11));

  const topo::Tree tree = topo::make_binomial_interleaved(procs);

  std::vector<char> failed(static_cast<std::size_t>(procs), 0);
  support::Xoshiro256ss rng(seed);
  topo::Rank remaining = std::min<topo::Rank>(faults, procs - 1);
  std::cout << "failed ranks:";
  while (remaining > 0) {
    const auto victim =
        static_cast<std::size_t>(1 + rng.below(static_cast<std::uint64_t>(procs) - 1));
    if (!failed[victim]) {
      failed[victim] = 1;
      --remaining;
      std::cout << ' ' << victim;
    }
  }
  std::cout << "\n";

  rt::ChaosOptions chaos;
  chaos.seed = static_cast<std::uint64_t>(options.get_int("chaos-seed", 0));
  chaos.crash_fraction = options.get_double("crash-frac", 0.0);
  chaos.drop_prob = options.get_double("drop-prob", 0.0);
  chaos.delay_prob = options.get_double("delay-prob", 0.0);
  chaos.duplicate_prob = options.get_double("dup-prob", 0.0);
  chaos.delay_ns = options.get_int("delay-us", 200) * 1000;
  chaos.crash_window_ns = options.get_int("crash-window-us", 2000) * 1000;
  rt::ChaosPlan plan(chaos);
  const bool chaotic = plan.enabled();

  rt::EngineOptions engine_options;
  engine_options.workers = static_cast<int>(options.get_int("workers", 0));
  engine_options.epoch_deadline =
      std::chrono::milliseconds(options.get_int("deadline-ms", 0));
  if (chaotic && engine_options.epoch_deadline.count() == 0) {
    // Chaos without a deadline could wait out the full 10 s epoch timeout
    // per degraded epoch; default to a snappy bound.
    engine_options.epoch_deadline = std::chrono::milliseconds(500);
  }
  if (options.get_flag("legacy")) engine_options.threading = rt::Threading::kThreadPerRank;
  rt::Engine engine(procs, failed, engine_options);
  std::cout << "executor: "
            << (engine.options().threading == rt::Threading::kSharded
                    ? "sharded"
                    : "thread-per-rank")
            << " (" << engine.worker_threads() << " worker threads)\n";
  if (chaotic) {
    engine.set_chaos(std::move(plan));
    std::cout << "chaos: seed=" << chaos.seed << " crash-frac=" << chaos.crash_fraction
              << " drop=" << chaos.drop_prob << " delay=" << chaos.delay_prob
              << " dup=" << chaos.duplicate_prob << " deadline="
              << std::chrono::duration_cast<std::chrono::milliseconds>(
                     engine_options.epoch_deadline)
                     .count()
              << "ms\n";
  }

  const proto::CorrectionConfig correction = parse_correction(
      options.get_string("correction", "opportunistic-opt"));

  rt::HarnessOptions harness;
  harness.warmup = 2;
  harness.iterations = iterations;
  harness.epoch_timeout = engine_options.epoch_deadline.count() > 0
                              ? engine_options.epoch_deadline
                              : harness.epoch_timeout;
  const rt::HarnessResult result = rt::measure_broadcast(
      engine,
      [&]() -> std::unique_ptr<sim::Protocol> {
        return std::make_unique<proto::CorrectedTreeBroadcast>(tree, correction);
      },
      harness);

  // percentile() throws on an empty sample set (all epochs degraded), so
  // every latency line goes through the guarded accessors.
  const double p95 =
      result.latency_us.empty() ? 0.0 : result.latency_us.percentile(0.95);
  std::cout << "iterations         : " << result.iterations << "\n"
            << "median latency     : " << result.median_us() << " us\n"
            << "p95 latency        : " << p95 << " us\n"
            << "p99 latency        : " << result.p99_us() << " us\n"
            << "messages/process   : "
            << (result.messages_per_process.empty()
                    ? 0.0
                    : result.messages_per_process.mean())
            << "\n"
            << "incomplete epochs  : " << result.incomplete
            << " (0 = every live rank colored every time)\n"
            << "timeouts           : " << result.timeouts << "\n";
  if (chaotic) {
    std::cout << "degraded epochs    : " << result.epochs_degraded << " / "
              << result.iterations << "\n"
              << "ranks crashed      : " << result.ranks_crashed << "\n"
              << "dropped/delayed/dup: " << result.messages_dropped << "/"
              << result.messages_delayed << "/" << result.messages_duplicated
              << "\n";
    if (result.epochs_degraded > 0) print_degradation_report(result.first_degraded);
    // Under chaos, degraded epochs are the expected outcome being studied;
    // success means every epoch terminated and was explained.
    return 0;
  }
  return (result.incomplete == 0 && result.timeouts == 0) ? 0 : 1;
}

// Tree explorer: print any of the paper's tree families, verify the
// Definition-1 interleaving property, and show what a failure does to the
// correction ring — Figure 1a/3/4 as a command-line tool.
//
//   $ ./tree_explorer --tree=binomial --procs 16 --kill 2
//   $ ./tree_explorer --tree=lame:3 --procs 9
//   $ ./tree_explorer --tree=binomial-inorder --procs 16 --kill 2

#include <iostream>
#include <string>

#include "sim/logp.hpp"
#include "protocol/tree_broadcast.hpp"
#include "support/options.hpp"
#include "topology/factory.hpp"
#include "topology/gaps.hpp"
#include "topology/interleave.hpp"

namespace {

void print_subtree(const ct::topo::Tree& tree, ct::topo::Rank rank, int indent) {
  std::cout << std::string(static_cast<std::size_t>(indent) * 2, ' ') << rank << "\n";
  for (ct::topo::Rank child : tree.children(rank)) {
    print_subtree(tree, child, indent + 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ct;
  const support::Options options(argc, argv);
  const auto procs = static_cast<topo::Rank>(options.get_int("procs", 16));
  const std::string spec_text = options.get_string("tree", "binomial");
  const auto victim = static_cast<topo::Rank>(options.get_int("kill", -1));

  const topo::Tree tree = topo::make_tree(topo::parse_tree_spec(spec_text), procs);
  std::cout << "tree " << tree.name() << ", P = " << procs
            << ", height = " << tree.height() << ", max fan-out = " << tree.max_fanout()
            << "\n\n";
  print_subtree(tree, tree.root(), 0);

  const auto violation = topo::find_interleave_violation(tree);
  std::cout << "\ninterleaved (Definition 1): " << (violation ? "NO" : "yes") << "\n";
  if (violation) std::cout << "  violation: " << violation->to_string() << "\n";

  const sim::LogP params{2, 1, 1, procs};
  std::cout << "fault-free dissemination latency (LogP L=2, o=1): "
            << proto::fault_free_dissemination_time(tree, params) << " steps\n";

  if (victim > 0 && victim < procs) {
    // Show the ring damage this failure causes (Fig. 1a): the victim's whole
    // subtree stays uncolored after dissemination.
    std::vector<char> colored(static_cast<std::size_t>(procs), 1);
    for (topo::Rank r : tree.subtree_ranks(victim)) {
      colored[static_cast<std::size_t>(r)] = 0;
    }
    const topo::GapStats gaps = topo::analyze_gaps(colored);
    std::cout << "\nif rank " << victim << " fails:\n  uncolored ring positions:";
    for (topo::Rank r = 0; r < procs; ++r) {
      if (!colored[static_cast<std::size_t>(r)]) std::cout << ' ' << r;
    }
    std::cout << "\n  gaps: " << gaps.gap_count << ", max gap: " << gaps.max_gap
              << " (opportunistic correction with d >= "
              << (gaps.max_gap + 1) / 2
              << " per direction colors everything)\n";
  }
  return 0;
}

// Dissemination dynamics: how many processes are colored at each instant —
// the mechanism behind §4.1's observation that "gossip shows low latency,
// as it sends more messages and keeps significantly more processes busy
// during the dissemination, whereas processes relying on trees mostly send
// few messages before becoming silent".
//
// Prints ASCII coloring curves (time -> colored fraction) for a binomial
// corrected tree, the optimal tree and Corrected Gossip.
//
//   $ ./dissemination_dynamics --procs 1024

#include <algorithm>
#include <iostream>

#include "protocol/gossip_broadcast.hpp"
#include "protocol/gossip_tuning.hpp"
#include "protocol/tree_broadcast.hpp"
#include "sim/simulator.hpp"
#include "support/options.hpp"
#include "topology/factory.hpp"

namespace {

using namespace ct;

/// colored(t) curve derived from per-rank coloring times.
std::vector<int> coloring_curve(const sim::RunResult& result, sim::Time horizon) {
  std::vector<int> curve(static_cast<std::size_t>(horizon) + 1, 0);
  for (sim::Time t : result.colored_at) {
    if (t == sim::kTimeNever) continue;
    for (sim::Time i = t; i <= horizon; ++i) ++curve[static_cast<std::size_t>(i)];
  }
  return curve;
}

void print_curve(const std::string& name, const std::vector<int>& curve, int procs) {
  std::cout << name << "\n";
  const std::size_t step = std::max<std::size_t>(1, curve.size() / 24);
  for (std::size_t t = 0; t < curve.size(); t += step) {
    const double fraction = static_cast<double>(curve[t]) / procs;
    const int bar = static_cast<int>(fraction * 50);
    std::cout << "  t=" << t << "\t" << std::string(static_cast<std::size_t>(bar), '#')
              << " " << static_cast<int>(fraction * 100) << "%\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const support::Options options(argc, argv);
  const auto procs = static_cast<topo::Rank>(options.get_int("procs", 1024));
  const sim::LogP params{2, 1, 1, procs};
  sim::RunOptions run_options;
  run_options.keep_per_rank_detail = true;

  sim::Time horizon = 0;
  std::vector<std::pair<std::string, sim::RunResult>> runs;

  for (const char* spec : {"binomial", "optimal"}) {
    const topo::Tree tree = topo::make_tree(topo::parse_tree_spec(spec), procs);
    proto::CorrectionConfig correction;
    correction.kind = proto::CorrectionKind::kChecked;
    correction.start = proto::CorrectionStart::kSynchronized;
    correction.sync_time = proto::fault_free_dissemination_time(tree, params);
    proto::CorrectedTreeBroadcast broadcast(tree, correction);
    sim::Simulator simulator(params, sim::FaultSet::none(procs));
    runs.emplace_back(std::string("corrected tree (") + spec + ")",
                      simulator.run(broadcast, run_options));
  }
  {
    proto::CorrectionConfig checked;
    checked.kind = proto::CorrectionKind::kChecked;
    const proto::GossipTuneResult tuned =
        proto::tune_gossip_for_latency(params, checked, 3, 1);
    proto::GossipConfig config;
    config.budget = proto::GossipConfig::Budget::kTime;
    config.gossip_time = tuned.gossip_time;
    config.correction = checked;
    config.correction.start = proto::CorrectionStart::kSynchronized;
    config.correction.sync_time = tuned.gossip_time;
    proto::CorrectedGossipBroadcast gossip(procs, config);
    sim::Simulator simulator(params, sim::FaultSet::none(procs));
    runs.emplace_back("corrected gossip", simulator.run(gossip, run_options));
  }

  for (const auto& [name, result] : runs) {
    horizon = std::max(horizon, result.quiescence_latency);
  }
  for (const auto& [name, result] : runs) {
    print_curve(name + "  (quiescent at " + std::to_string(result.quiescence_latency) +
                    ", " + std::to_string(result.total_messages) + " messages)",
                coloring_curve(result, horizon), procs);
  }
  std::cout << "Note the tree curves' late jump (leaves color in the last level)\n"
               "versus gossip's early exponential climb bought with extra traffic.\n";
  return 0;
}

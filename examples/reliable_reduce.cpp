// Reliable reduction: the paper's §1 extension — "applying correction
// before dissemination allows to create a reduction tree" — instantiated
// for an idempotent operator (max). Every rank contributes a value; the
// ring-replication phase makes each contribution survive tree-path
// failures, and the root computes the maximum over all LIVE contributions.
//
//   $ ./reliable_reduce --procs 64 --faults 4 --distance 2

#include <algorithm>
#include <iostream>

#include "protocol/reduce.hpp"
#include "sim/simulator.hpp"
#include "support/options.hpp"
#include "topology/tree.hpp"

int main(int argc, char** argv) {
  using namespace ct;
  const support::Options options(argc, argv);
  const auto procs = static_cast<topo::Rank>(options.get_int("procs", 64));
  const auto faults = static_cast<topo::Rank>(options.get_int("faults", 4));
  const int distance = static_cast<int>(options.get_int("distance", 2));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 3));

  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};

  support::Xoshiro256ss rng(seed);
  const sim::FaultSet fault_set = sim::FaultSet::random_count(procs, faults, rng);

  std::vector<std::int64_t> values;
  std::int64_t live_max = 0;
  for (topo::Rank r = 0; r < procs; ++r) {
    values.push_back(static_cast<std::int64_t>(rng.below(1'000'000)));
    if (!fault_set.failed_from_start(r)) live_max = std::max(live_max, values.back());
  }

  proto::CorrectedReduce reduce(tree, params, values, proto::ReduceConfig{distance});
  sim::Simulator simulator(params, fault_set);
  const sim::RunResult run = simulator.run(reduce);

  std::cout << "failed ranks       :";
  for (topo::Rank r : fault_set.initially_failed()) std::cout << ' ' << r;
  std::cout << "\nroot result        : " << reduce.result() << "\n"
            << "max over live ranks: " << live_max << "\n"
            << "completion         : " << run.quiescence_latency << " steps, "
            << run.total_messages << " messages\n"
            << (reduce.result() == live_max
                    ? "reduction recovered every live contribution\n"
                    : "some live contributions were lost (raise --distance)\n");
  return reduce.result() == live_max ? 0 : 1;
}

// Fault-injection study: a miniature version of the paper's §4.3 resilience
// evaluation you can run over lunch. Sweeps fault rates over a chosen tree
// and correction algorithm, replicated with recorded seeds, and prints how
// latency, traffic and reliability respond.
//
//   $ ./fault_injection_study --procs 4096 --reps 100 --tree=binomial \
//         --correction=checked

#include <iostream>

#include "experiment/runner.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ct;
  const support::Options options(argc, argv);
  const auto procs = static_cast<topo::Rank>(options.get_int("procs", 4096));
  const auto reps = static_cast<std::size_t>(options.get_int("reps", 100));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  const std::string tree = options.get_string("tree", "binomial");
  const std::string correction = options.get_string("correction", "checked");

  exp::Scenario scenario;
  scenario.params = sim::LogP{2, 1, 1, procs};
  scenario.tree = topo::parse_tree_spec(tree);
  scenario.correction.kind = proto::parse_correction_kind(correction);
  scenario.correction.start = scenario.correction.kind == proto::CorrectionKind::kChecked
                                  ? proto::CorrectionStart::kSynchronized
                                  : proto::CorrectionStart::kOverlapped;
  scenario.correction.distance = static_cast<int>(options.get_int("distance", 4));
  scenario.correction.delay = 2 * scenario.params.message_cost();

  std::cout << "tree=" << tree << " correction=" << scenario.correction.to_string()
            << " P=" << procs << " reps=" << reps << " seed=" << seed << "\n\n";

  const support::ThreadPool pool;
  support::Table table({"fault rate", "latency mean", "latency p95", "msgs/proc",
                        "max gap p95", "runs w/ uncolored"});
  for (double rate : {0.0, 0.0001, 0.001, 0.01, 0.02, 0.04}) {
    scenario.fault_fraction = rate;
    const exp::Aggregate agg = exp::run_replicated(scenario, reps, seed, &pool);
    table.add_row(
        {support::fmt(rate * 100, 2) + "%", support::fmt(agg.quiescence_latency.mean(), 1),
         support::fmt(agg.quiescence_latency.percentile(0.95), 1),
         support::fmt(agg.messages_per_process.mean(), 2),
         agg.max_gap.empty() ? "-" : support::fmt(agg.max_gap.percentile(0.95), 1),
         support::fmt_int(agg.not_fully_colored)});
  }
  table.print(std::cout);
  std::cout << "\nEvery row is reproducible: replication i uses seed derive_seed(seed, i).\n";
  return 0;
}

// LogP calibration on the threaded runtime: measures the o and L this host
// actually delivers (like the logp_mpi / LogfP measurements the paper cites
// for its simulator parameters) and suggests the matching simulator knobs.
//
//   $ ./runtime_logp_fit [--procs 4] [--round-trips 200] [--burst 64]

#include <iostream>

#include "rt/logp_fit.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace ct;
  const support::Options options(argc, argv);
  const auto procs = static_cast<topo::Rank>(options.get_int("procs", 4));
  const int round_trips = static_cast<int>(options.get_int("round-trips", 200));
  const int burst = static_cast<int>(options.get_int("burst", 64));

  rt::Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0));
  const rt::LogPFit fit = rt::fit_logp(engine, round_trips, burst);

  std::cout << "ping-pong RTT        : " << fit.rtt_ns / 1000.0 << " us\n"
            << "estimated o          : " << fit.o_ns / 1000.0 << " us\n"
            << "estimated L          : " << fit.L_ns / 1000.0 << " us\n"
            << "implied L/o          : " << fit.l_over_o << "\n\n"
            << "The paper simulates with L = 2, o = 1 (L/o = 2), 'the range of\n"
            << "LogP parameters measured on real systems'. To model THIS host,\n"
            << "set sim::LogP{L, o} to the ratio above (scaled to integers).\n";
  return 0;
}

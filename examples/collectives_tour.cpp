// Collectives tour: the paper's §1/§6 claim that "a variety of reliable MPI
// collectives can be built" from the two phases. Runs, under the same fault
// injection, the whole family this library provides:
//   broadcast -> reduce -> all-reduce -> barrier,
// reporting latency, traffic and the delivered values.
//
//   $ ./collectives_tour --procs 128 --faults 6

#include <algorithm>
#include <iostream>

#include "protocol/allreduce.hpp"
#include "protocol/tree_broadcast.hpp"
#include "sim/simulator.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "topology/tree.hpp"

int main(int argc, char** argv) {
  using namespace ct;
  const support::Options options(argc, argv);
  const auto procs = static_cast<topo::Rank>(options.get_int("procs", 128));
  const auto faults = static_cast<topo::Rank>(options.get_int("faults", 6));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 17));

  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};

  support::Xoshiro256ss rng(seed);
  const sim::FaultSet fault_set = sim::FaultSet::random_count(procs, faults, rng);
  std::cout << "P = " << procs << ", failed ranks:";
  for (topo::Rank r : fault_set.initially_failed()) std::cout << ' ' << r;
  std::cout << "\n\n";

  std::vector<std::int64_t> values;
  std::int64_t live_max = 0;
  for (topo::Rank r = 0; r < procs; ++r) {
    values.push_back(static_cast<std::int64_t>(rng.below(1000)));
    if (!fault_set.failed_from_start(r)) live_max = std::max(live_max, values.back());
  }

  proto::CorrectionConfig correction;
  correction.kind = proto::CorrectionKind::kChecked;
  correction.start = proto::CorrectionStart::kOverlapped;

  support::Table table({"collective", "latency (steps)", "messages", "outcome"});

  {
    proto::CorrectedTreeBroadcast broadcast(tree, correction, 42);
    sim::Simulator simulator(params, fault_set);
    const sim::RunResult run = simulator.run(broadcast);
    table.add_row({"broadcast", support::fmt_int(run.coloring_latency),
                   support::fmt_int(run.total_messages),
                   run.fully_colored() ? "all live ranks colored" : "INCOMPLETE"});
  }
  {
    proto::CorrectedReduce reduce(tree, params, values, proto::ReduceConfig{2});
    sim::Simulator simulator(params, fault_set);
    const sim::RunResult run = simulator.run(reduce);
    table.add_row({"reduce (max)", support::fmt_int(run.quiescence_latency),
                   support::fmt_int(run.total_messages),
                   reduce.result() == live_max ? "exact live max at root"
                                               : "degraded result"});
  }
  {
    proto::AllReduceConfig config;
    config.reduce.distance = 2;
    config.correction = correction;
    proto::CorrectedAllReduce allreduce(tree, params, values, config);
    sim::Simulator simulator(params, fault_set);
    const sim::RunResult run = simulator.run(allreduce);
    table.add_row({"all-reduce (max)", support::fmt_int(run.coloring_latency),
                   support::fmt_int(run.total_messages),
                   run.fully_colored() && allreduce.result() == live_max
                       ? "every live rank holds the max"
                       : "degraded"});
  }
  {
    proto::AllReduceConfig config;
    config.correction = correction;
    proto::CorrectedBarrier barrier(tree, params, config);
    sim::Simulator simulator(params, fault_set);
    const sim::RunResult run = simulator.run(barrier);
    table.add_row({"barrier", support::fmt_int(run.coloring_latency),
                   support::fmt_int(run.total_messages),
                   barrier.released() && run.fully_colored() ? "all live ranks released"
                                                             : "INCOMPLETE"});
  }

  table.print(std::cout);
  std::cout << "\n(the expected max over live contributions is " << live_max << ")\n";
  return 0;
}

// Quickstart: simulate one Corrected Tree broadcast, watch the two phases
// happen, and read the metrics the paper reports.
//
//   $ ./quickstart [--procs 32] [--faults 3] [--seed 7]
//
// Prints a per-event timeline of a small broadcast (dissemination over an
// interleaved binomial tree, then optimized opportunistic correction) with
// one failed process, followed by the run metrics.

#include <iostream>

#include "protocol/tree_broadcast.hpp"
#include "sim/simulator.hpp"
#include "support/options.hpp"
#include "topology/factory.hpp"

int main(int argc, char** argv) {
  using namespace ct;
  const support::Options options(argc, argv);
  const auto procs = static_cast<topo::Rank>(options.get_int("procs", 16));
  const auto faults = static_cast<topo::Rank>(options.get_int("faults", 1));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 7));

  // 1. Pick a dissemination tree. The interleaved numbering is the paper's
  //    key ingredient: failures leave many small gaps instead of one big
  //    one, so ring correction stays cheap.
  const topo::Tree tree = topo::make_binomial_interleaved(procs);

  // 2. Pick a correction algorithm. Optimized overlapped opportunistic
  //    correction with distance 4 is the paper's default for Corrected
  //    Trees.
  proto::CorrectionConfig correction;
  correction.kind = proto::CorrectionKind::kOptimizedOpportunistic;
  correction.start = proto::CorrectionStart::kOverlapped;
  correction.distance = 4;
  proto::CorrectedTreeBroadcast broadcast(tree, correction);

  // 3. Inject failures and run under the LogP model (L = 2, o = 1 — the
  //    paper's parameters).
  support::Xoshiro256ss rng(seed);
  const sim::FaultSet fault_set = sim::FaultSet::random_count(procs, faults, rng);
  std::cout << "failed ranks:";
  for (topo::Rank r : fault_set.initially_failed()) std::cout << ' ' << r;
  std::cout << "\n\n";

  sim::Simulator simulator(sim::LogP{2, 1, 1, procs}, fault_set);
  sim::RunOptions run_options;
  run_options.trace = [](const sim::TraceEvent& event) {
    const char* kind = nullptr;
    switch (event.kind) {
      case sim::TraceEvent::Kind::kSendStart:
        kind = "send ";
        break;
      case sim::TraceEvent::Kind::kRecvDone:
        kind = "recv ";
        break;
      case sim::TraceEvent::Kind::kArrivalDropped:
        kind = "DROP ";  // the destination is dead; the sender cannot know
        break;
      default:
        return;  // keep the timeline short
    }
    const char* phase = event.msg.tag == sim::tag::kTree ? "tree" : "corr";
    std::cout << "t=" << event.time << "\t" << kind << phase << "  " << event.msg.src
              << " -> " << event.msg.dst << "\n";
  };
  const sim::RunResult result = simulator.run(broadcast, run_options);

  std::cout << "\ncoloring latency   : " << result.coloring_latency << " steps\n"
            << "quiescence latency : " << result.quiescence_latency << " steps\n"
            << "messages           : " << result.total_messages << " ("
            << result.messages_per_process() << " per process)\n"
            << "live uncolored     : " << result.uncolored_live
            << (result.fully_colored() ? "  (reliable broadcast achieved)" : "  (!)")
            << "\n";
  return result.fully_colored() ? 0 : 1;
}

// Figure 6: average number of messages per process in the fault-free case.
// Series: {Binomial, 4-ary, Lamé, Optimal} trees with synchronized checked
// correction and with optimized overlapped opportunistic correction
// (d = 1, 2, 4), plus checked and opportunistic Corrected Gossip. Reference
// lines: 1 message/process ("Minimum") and 2 ("Acknowledged").
// Paper values (L = 2, o = 1): checked trees = 6 (1 tree + 5 correction),
// opportunistic trees below that (less with smaller d), gossip well above.

#include "bench_common.hpp"
#include "protocol/gossip_tuning.hpp"

namespace {

using namespace ct;

double tree_messages(const bench::BenchEnv& env, const std::string& tree,
                     proto::CorrectionKind kind, int distance) {
  exp::Scenario scenario;
  scenario.params = env.logp(env.procs);
  scenario.tree = topo::parse_tree_spec(tree);
  scenario.correction.kind = kind;
  scenario.correction.distance = distance;
  scenario.correction.start = (kind == proto::CorrectionKind::kChecked)
                                  ? proto::CorrectionStart::kSynchronized
                                  : proto::CorrectionStart::kOverlapped;
  // Trees are deterministic in the fault-free case; one run suffices.
  return exp::run_once(scenario, env.seed).messages_per_process();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/16384, /*reps=*/10);
  bench::print_header(
      env, "Figure 6 — messages per process, fault-free",
      "64 Ki processes, L=2, o=1, Lamé k=2; gossip times tuned as in §4.1",
      "checked trees: 6.0 for every tree type; opportunistic trees less "
      "(towards ~3 at d=1); corrected gossip: several messages more; "
      "reference lines at 1 (minimum) and 2 (acknowledged)");

  const std::vector<std::string> trees{"binomial", "kary:4", "lame:2", "optimal"};
  support::Table table(
      {"variant", "binomial", "4-ary", "lame", "optimal", "paper (binomial)"});

  struct Row {
    std::string label;
    proto::CorrectionKind kind;
    int distance;
    std::string paper;
  };
  const std::vector<Row> rows{
      {"opportunistic d=1", proto::CorrectionKind::kOptimizedOpportunistic, 1, "~3"},
      {"opportunistic d=2", proto::CorrectionKind::kOptimizedOpportunistic, 2, "~4"},
      {"opportunistic d=4", proto::CorrectionKind::kOptimizedOpportunistic, 4, "~5"},
      {"checked (sync)", proto::CorrectionKind::kChecked, 0, "6.0"},
  };
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.label};
    for (const std::string& tree : trees) {
      cells.push_back(support::fmt(tree_messages(env, tree, row.kind, row.distance), 2));
    }
    cells.push_back(row.paper);
    table.add_row(cells);
  }
  table.add_separator();

  // Corrected Gossip, tuned per the paper's procedure (scaled-down rep
  // counts; the tuning seeds are fixed, so results reproduce).
  const sim::LogP params = env.logp(env.procs);
  proto::CorrectionConfig checked;
  checked.kind = proto::CorrectionKind::kChecked;
  const proto::GossipTuneResult gossip_checked =
      proto::tune_gossip_for_latency(params, checked, /*reps=*/3, env.seed);

  proto::CorrectionConfig opportunistic;
  opportunistic.kind = proto::CorrectionKind::kOptimizedOpportunistic;
  opportunistic.distance = 4;
  const proto::GossipTuneResult gossip_opp =
      proto::tune_gossip_for_coloring(params, opportunistic, /*reps=*/3, env.seed);

  table.add_row({"gossip (checked)", support::fmt(gossip_checked.mean_messages_per_proc, 2),
                 "-", "-", "-", "~8-10"});
  table.add_row({"gossip (opportunistic)",
                 support::fmt(gossip_opp.mean_messages_per_proc, 2), "-", "-", "-",
                 "~10-12"});
  table.add_separator();
  table.add_row({"minimum (reference)", "1.00", "1.00", "1.00", "1.00", "1"});
  table.add_row({"acknowledged (reference)", "2.00", "2.00", "2.00", "2.00", "2"});
  bench::emit(env, table);
  return 0;
}

#pragma once
// Shared plumbing for the figure/table benches. Every bench binary:
//  * prints what it reproduces and at which scale,
//  * honours --procs/--reps/--seed (and CT_PROCS/CT_REPS/CT_SEED) so the
//    default quick run and the full paper-scale run use the same code,
//  * prints a table of the same series the paper plots, plus the paper's
//    qualitative expectation so EXPERIMENTS.md can record shape-vs-shape,
//  * supports --csv for machine-readable output.

#include <iostream>
#include <string>

#include "experiment/runner.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace ct::bench {

struct BenchEnv {
  support::Options options;
  topo::Rank procs;
  std::size_t reps;
  std::uint64_t seed;
  bool csv = false;

  /// LogP parameters used throughout the paper's simulations (§4: L = 2,
  /// o = 1, "corresponds to the range of LogP parameters measured on real
  /// systems").
  sim::LogP logp(topo::Rank num_procs) const { return sim::LogP{2, 1, 1, num_procs}; }
};

inline BenchEnv make_env(int argc, char** argv, topo::Rank default_procs,
                         std::size_t default_reps) {
  BenchEnv env;
  env.options = support::Options(argc, argv);
  env.procs = static_cast<topo::Rank>(env.options.get_int("procs", default_procs));
  env.reps = static_cast<std::size_t>(
      env.options.get_int("reps", static_cast<std::int64_t>(default_reps)));
  env.seed = static_cast<std::uint64_t>(env.options.get_int("seed", 0x5eed5eed));
  env.csv = env.options.get_flag("csv");
  return env;
}

inline void print_header(const BenchEnv& env, const std::string& what,
                         const std::string& paper_setup,
                         const std::string& expectation) {
  if (env.csv) return;
  std::cout << "=== " << what << " ===\n"
            << "paper setup : " << paper_setup << "\n"
            << "this run    : P = " << env.procs << ", reps = " << env.reps
            << ", seed = " << env.seed
            << "  (scale with --procs/--reps or CT_PROCS/CT_REPS)\n"
            << "paper shape : " << expectation << "\n\n";
}

inline void emit(const BenchEnv& env, const support::Table& table) {
  if (env.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << std::endl;
}

}  // namespace ct::bench

// Figure 1b: expected correction time for a broadcast with an IN-ORDER
// binomial tree under 1, 2 and 5 failed processes (whiskers: 10 % / 90 %
// quantiles), against the interleaved tree's correction time (the vertical
// line in the paper's plot). Paper: 64 Ki processes, synchronized checked
// correction taking 8 steps without faults; in-order correction time grows
// with the absolute number of faults, interleaved stays near 10.5 steps.

#include "analysis/bounds.hpp"
#include "bench_common.hpp"

namespace {

using namespace ct;

exp::Scenario scenario_for(const bench::BenchEnv& env, const std::string& tree,
                           topo::Rank faults) {
  exp::Scenario scenario;
  scenario.label = tree;
  scenario.params = env.logp(env.procs);
  scenario.tree = topo::parse_tree_spec(tree);
  scenario.correction.kind = proto::CorrectionKind::kChecked;
  scenario.correction.start = proto::CorrectionStart::kSynchronized;
  scenario.fault_count = faults;
  return scenario;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/16384, /*reps=*/150);
  bench::print_header(
      env, "Figure 1b — correction time, in-order vs interleaved binomial tree",
      "64 Ki processes, sync checked correction, 1/2/5 faults, 10 %/90 % whiskers",
      "fault-free correction takes 8 steps; in-order mean grows strongly with the "
      "number of faults (tens of steps), interleaved stays around 10.5");

  const support::ThreadPool pool;
  support::Table table({"tree", "faults", "corr.time mean", "p10", "p90", "max",
                        "max gap mean"});
  for (const char* tree : {"binomial-inorder", "binomial"}) {
    for (topo::Rank faults : {1, 2, 5}) {
      const exp::Aggregate agg =
          exp::run_replicated(scenario_for(env, tree, faults), env.reps, env.seed, &pool);
      table.add_row({tree, support::fmt_int(faults),
                     support::fmt(agg.correction_time.mean(), 1),
                     support::fmt(agg.correction_time.percentile(0.10), 1),
                     support::fmt(agg.correction_time.percentile(0.90), 1),
                     support::fmt(agg.correction_time.max(), 0),
                     support::fmt(agg.max_gap.mean(), 1)});
    }
    table.add_separator();
  }

  // Reference line: the fault-free correction phase (Lemma 2).
  const sim::LogP params = env.logp(env.procs);
  table.add_row({"(fault-free)", "0",
                 support::fmt(static_cast<double>(
                                  ct::analysis::checked_correction_fault_free_latency(params)),
                              1),
                 "-", "-", "-", "0.0"});
  bench::emit(env, table);
  return 0;
}

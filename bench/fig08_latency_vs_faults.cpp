// Figure 8: average quiescence latency as the fault rate grows from 0.01 %
// to 4 % (whiskers: 5 %/95 % percentiles), 64 Ki processes, sync checked
// correction, all tree types plus checked Corrected Gossip.
// Paper shape: tree latency degrades by ~12-14 % from 0.01 % to 4 %, gossip
// only by ~4 %; binomial shows the largest latency variance growth.

#include "fault_sweep.hpp"

int main(int argc, char** argv) {
  using namespace ct;
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/8192, /*reps=*/100);
  bench::print_header(
      env, "Figure 8 — quiescence latency vs fault rate",
      "64 Ki processes, 1e5 replications, fault rates 0.01 % .. 4 %",
      "tree latency grows ~12-14 % over the sweep, gossip ~4 %; whisker spread "
      "grows most for binomial");

  const auto trees = bench::run_tree_fault_sweep(env);
  const auto gossip = bench::run_gossip_fault_sweep(
      env, std::max<std::size_t>(env.reps / 10, 5));

  support::Table table({"variant", "faults", "latency mean", "p5", "p95"});
  for (const std::string& tree : bench::sweep_trees()) {
    for (double rate : bench::fault_rates()) {
      const exp::Aggregate& agg = trees.at({tree, rate});
      table.add_row({tree, bench::rate_label(rate),
                     support::fmt(agg.quiescence_latency.mean(), 1),
                     support::fmt(agg.quiescence_latency.percentile(0.05), 1),
                     support::fmt(agg.quiescence_latency.percentile(0.95), 1)});
    }
    table.add_separator();
  }
  for (double rate : bench::fault_rates()) {
    const exp::Aggregate& agg = gossip.at(rate);
    table.add_row({"gossip", bench::rate_label(rate),
                   support::fmt(agg.quiescence_latency.mean(), 1),
                   support::fmt(agg.quiescence_latency.percentile(0.05), 1),
                   support::fmt(agg.quiescence_latency.percentile(0.95), 1)});
  }
  bench::emit(env, table);
  return 0;
}

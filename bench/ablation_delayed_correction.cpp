// Ablation: delayed correction (§3.3 — described in the paper but not
// evaluated there: "We do not evaluate delayed correction further, because
// the appropriate delay is application-specific"). This bench fills that
// gap: message floor and latency of delayed correction vs checked and
// optimized opportunistic, fault-free and under faults, over a delay sweep.
// Expectation from §3.3: one message per process fault-free (the "Minimum"
// line of Fig. 6); failures trade that economy for extra latency, more so
// for shorter delays (premature probing) and longer delays (late recovery).

#include "bench_common.hpp"

namespace {

using namespace ct;

exp::Aggregate run(const bench::BenchEnv& env, proto::CorrectionKind kind,
                   sim::Time delay, double fault_rate, std::size_t reps) {
  exp::Scenario scenario;
  scenario.params = env.logp(env.procs);
  scenario.tree = topo::parse_tree_spec("binomial");
  scenario.correction.kind = kind;
  scenario.correction.start = proto::CorrectionStart::kSynchronized;
  scenario.correction.delay = delay;
  scenario.correction.distance = 4;
  scenario.fault_fraction = fault_rate;
  const support::ThreadPool pool;
  return exp::run_replicated(scenario, reps, env.seed, &pool);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/8192, /*reps=*/100);
  bench::print_header(
      env, "Ablation — delayed correction (delay sweep vs checked/opportunistic)",
      "not evaluated in the paper (§3.3 describes the algorithm only)",
      "fault-free messages/process: delayed = 2.0 (tree + 1), checked = 6.0, "
      "opportunistic(4) in between; under faults delayed pays latency");

  const sim::Time unit = env.logp(env.procs).message_cost();  // 2o+L
  support::Table table(
      {"correction", "faults", "latency mean", "latency p95", "msgs/proc", "uncolored runs"});

  for (double rate : {0.0, 0.01}) {
    const std::size_t reps = rate == 0.0 ? 1 : env.reps;
    for (sim::Time delay_mult : {2, 4, 8}) {
      const exp::Aggregate agg =
          run(env, proto::CorrectionKind::kDelayed, delay_mult * unit, rate, reps);
      table.add_row({"delayed x" + std::to_string(delay_mult),
                     support::fmt(rate * 100, 1) + "%",
                     support::fmt(agg.quiescence_latency.mean(), 1),
                     support::fmt(agg.quiescence_latency.percentile(0.95), 1),
                     support::fmt(agg.messages_per_process.mean(), 2),
                     support::fmt_int(agg.not_fully_colored)});
    }
    const exp::Aggregate checked =
        run(env, proto::CorrectionKind::kChecked, 0, rate, reps);
    table.add_row({"checked", support::fmt(rate * 100, 1) + "%",
                   support::fmt(checked.quiescence_latency.mean(), 1),
                   support::fmt(checked.quiescence_latency.percentile(0.95), 1),
                   support::fmt(checked.messages_per_process.mean(), 2),
                   support::fmt_int(checked.not_fully_colored)});
    const exp::Aggregate opportunistic =
        run(env, proto::CorrectionKind::kOptimizedOpportunistic, 0, rate, reps);
    table.add_row({"opportunistic d=4", support::fmt(rate * 100, 1) + "%",
                   support::fmt(opportunistic.quiescence_latency.mean(), 1),
                   support::fmt(opportunistic.quiescence_latency.percentile(0.95), 1),
                   support::fmt(opportunistic.messages_per_process.mean(), 2),
                   support::fmt_int(opportunistic.not_fully_colored)});
    table.add_separator();
  }
  bench::emit(env, table);
  return 0;
}

// Engineering micro-benchmarks for the message-passing runtime
// (google-benchmark): the delivery primitives the two executors are built
// from — mutex+condvar Mailbox (legacy thread-per-rank) vs the sharded
// LocalFifo ring and batched ShardInbox — and whole-epoch setup/teardown
// cost as the rank count grows toward the paper's 36 864-rank prototype.

#include <benchmark/benchmark.h>

#include <vector>

#include "rt/engine.hpp"
#include "rt/mailbox.hpp"
#include "rt/shard_queue.hpp"
#include "topology/factory.hpp"

namespace {

using namespace ct;

rt::Envelope make_envelope(std::int64_t i) {
  return rt::Envelope{sim::Message{0, 1, sim::tag::kTree, i, i}, 1};
}

// --- delivery primitives ----------------------------------------------------

// Legacy path: one mutex acquisition per push and per pop.
void BM_MailboxPushPop(benchmark::State& state) {
  rt::Mailbox mailbox;
  rt::Envelope out;
  std::int64_t i = 0;
  for (auto _ : state) {
    mailbox.push(make_envelope(++i));
    benchmark::DoNotOptimize(mailbox.try_pop(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxPushPop);

// Sharded intra-shard path: plain ring buffer, no locks.
void BM_LocalFifoPushPop(benchmark::State& state) {
  rt::LocalFifo fifo;
  rt::Envelope out;
  std::int64_t i = 0;
  for (auto _ : state) {
    fifo.push(make_envelope(++i));
    benchmark::DoNotOptimize(fifo.pop(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalFifoPushPop);

// Sharded cross-shard path: a whole staged batch through one lock
// acquisition, drained with one swap — items/sec counts envelopes, so this
// is directly comparable with the per-message numbers above.
void BM_ShardInboxBatch(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  rt::ShardInbox inbox(std::size_t{1} << 16);
  std::vector<rt::Envelope> staged;
  staged.reserve(batch_size);
  std::vector<rt::Envelope> drain;
  std::int64_t i = 0;
  for (auto _ : state) {
    staged.clear();
    for (std::size_t k = 0; k < batch_size; ++k) staged.push_back(make_envelope(++i));
    benchmark::DoNotOptimize(inbox.push_batch(staged));
    inbox.drain_into(drain);
    benchmark::DoNotOptimize(drain.size());
    drain.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_ShardInboxBatch)->Arg(1)->Arg(16)->Arg(256);

// --- whole-epoch costs ------------------------------------------------------

/// Colors every rank in begin() and sends nothing: an epoch of this
/// protocol measures pure setup/teardown (reset, barrier round trips,
/// completion sweep) with zero protocol work.
class NoopBroadcast final : public sim::Protocol {
 public:
  void begin(sim::Context& ctx) override {
    for (topo::Rank r = 0; r < ctx.num_procs(); ++r) ctx.mark_colored(r);
  }
  void on_receive(sim::Context&, topo::Rank, const sim::Message&) override {}
  void on_sent(sim::Context&, topo::Rank, const sim::Message&) override {}
};

/// Minimal binomial broadcast (the fig11 "native" stand-in, locally
/// re-declared to keep this binary self-contained).
class BinomialBroadcast final : public sim::Protocol {
 public:
  explicit BinomialBroadcast(const topo::Tree& tree) : tree_(tree) {}
  void begin(sim::Context& ctx) override {
    ctx.mark_colored(0);
    for (topo::Rank child : tree_.children(0)) ctx.send(0, child, sim::tag::kTree, 0);
  }
  void on_receive(sim::Context& ctx, topo::Rank me, const sim::Message&) override {
    ctx.mark_colored(me);
    for (topo::Rank child : tree_.children(me)) ctx.send(me, child, sim::tag::kTree, 0);
  }
  void on_sent(sim::Context&, topo::Rank, const sim::Message&) override {}

 private:
  const topo::Tree& tree_;
};

// Epoch setup/teardown vs rank count: no messages at all, so the slope is
// the per-rank reset + completion-sweep cost of the sharded scheduler.
void BM_ShardedEpochSetupTeardown(benchmark::State& state) {
  const auto procs = static_cast<topo::Rank>(state.range(0));
  rt::Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0));
  for (auto _ : state) {
    NoopBroadcast protocol;
    const rt::EpochResult result =
        engine.run_epoch(protocol, std::chrono::seconds(10));
    benchmark::DoNotOptimize(result.completion_ns);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * procs);
}
BENCHMARK(BM_ShardedEpochSetupTeardown)->Arg(1024)->Arg(4096)->Arg(16384);

// Full broadcast epoch on the sharded engine vs rank count; items/sec is
// ranks colored per second.
void BM_ShardedBroadcastEpoch(benchmark::State& state) {
  const auto procs = static_cast<topo::Rank>(state.range(0));
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  rt::Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0));
  for (auto _ : state) {
    BinomialBroadcast protocol(tree);
    const rt::EpochResult result =
        engine.run_epoch(protocol, std::chrono::seconds(10));
    benchmark::DoNotOptimize(result.total_messages);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * procs);
}
BENCHMARK(BM_ShardedBroadcastEpoch)->Arg(1024)->Arg(4096)->Arg(16384);

// The legacy executor at a size it still handles — the A/B baseline for
// BM_ShardedBroadcastEpoch (same protocol, same metric).
void BM_ThreadPerRankBroadcastEpoch(benchmark::State& state) {
  const auto procs = static_cast<topo::Rank>(state.range(0));
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  rt::EngineOptions options;
  options.threading = rt::Threading::kThreadPerRank;
  rt::Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0),
                    options);
  for (auto _ : state) {
    BinomialBroadcast protocol(tree);
    const rt::EpochResult result =
        engine.run_epoch(protocol, std::chrono::seconds(10));
    benchmark::DoNotOptimize(result.total_messages);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * procs);
}
BENCHMARK(BM_ThreadPerRankBroadcastEpoch)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();

// Engineering micro-benchmarks for the message-passing runtime
// (google-benchmark): the delivery primitives the two executors are built
// from — mutex+condvar Mailbox (legacy thread-per-rank) vs the sharded
// LocalFifo ring and batched ShardInbox — and whole-epoch setup/teardown
// cost as the rank count grows toward the paper's 36 864-rank prototype.

#include <benchmark/benchmark.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "rt/engine.hpp"
#include "rt/mailbox.hpp"
#include "rt/shard_queue.hpp"
#include "topology/factory.hpp"

namespace {

using namespace ct;

rt::Envelope make_envelope(std::int64_t i) {
  return rt::Envelope{
      sim::Message{.src = 0, .dst = 1, .tag = sim::tag::kTree, .payload = i, .data = i},
      /*tag=*/rt::Envelope::make_tag(/*epoch=*/1, /*generation=*/0)};
}

// --- delivery primitives ----------------------------------------------------

// Legacy path: one mutex acquisition per push and per pop.
void BM_MailboxPushPop(benchmark::State& state) {
  rt::Mailbox mailbox;
  rt::Envelope out;
  std::int64_t i = 0;
  for (auto _ : state) {
    mailbox.push(make_envelope(++i));
    benchmark::DoNotOptimize(mailbox.try_pop(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxPushPop);

// Sharded intra-shard path: plain ring buffer, no locks.
void BM_LocalFifoPushPop(benchmark::State& state) {
  rt::LocalFifo fifo;
  rt::Envelope out;
  std::int64_t i = 0;
  for (auto _ : state) {
    fifo.push(make_envelope(++i));
    benchmark::DoNotOptimize(fifo.pop(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalFifoPushPop);

// Sharded cross-shard path: a whole staged batch through one lock
// acquisition, drained with one swap — items/sec counts envelopes, so this
// is directly comparable with the per-message numbers above.
void BM_ShardInboxBatch(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  rt::ShardInbox inbox(std::size_t{1} << 16);
  std::vector<rt::Envelope> staged;
  staged.reserve(batch_size);
  std::vector<rt::Envelope> drain;
  std::int64_t i = 0;
  for (auto _ : state) {
    staged.clear();
    for (std::size_t k = 0; k < batch_size; ++k) staged.push_back(make_envelope(++i));
    benchmark::DoNotOptimize(inbox.push_batch(staged));
    inbox.drain_into(drain);
    benchmark::DoNotOptimize(drain.size());
    drain.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_ShardInboxBatch)->Arg(1)->Arg(16)->Arg(256);

// --- cross-shard delivery under contention ----------------------------------
//
// S worker threads exchange envelope batches through the executor's two
// cross-shard backends — the locked MPSC ShardInbox (one per shard) vs the
// lock-free SPSC ring mesh (one ring per ordered pair) — driven directly,
// so the contention profile is isolated from protocol and scheduling cost.
// Two traffic shapes: all-pairs (every shard batches to every other shard
// each round — the densest mesh load) and random-peer (each shard picks one
// pseudo-random destination per round — the sparse, skewed shape of real
// tree traffic). items/sec counts envelopes end-to-end (pushed and drained).

constexpr std::size_t kStormBatch = 16;
constexpr std::size_t kStormRounds = 128;

/// One storm: S threads, kStormRounds rounds of batched pushes plus
/// cooperative draining, terminated by per-producer done markers (tagged
/// kCorrection) so consumers know when their column is dry. Returns total
/// envelopes exchanged. Mesh pushes retry with a self-drain between
/// attempts, so bounded rings cannot deadlock a push cycle; the inbox
/// capacity covers a whole storm, matching the engine's default headroom.
std::int64_t cross_shard_storm(std::size_t num_shards, bool mesh, bool all_pairs) {
  std::deque<rt::SpscRing> rings;
  std::deque<rt::ShardInbox> inboxes;
  if (mesh) {
    for (std::size_t i = 0; i < num_shards * num_shards; ++i) rings.emplace_back(1024);
  } else {
    for (std::size_t i = 0; i < num_shards; ++i) inboxes.emplace_back(std::size_t{1} << 16);
  }
  std::barrier start(static_cast<std::ptrdiff_t>(num_shards));
  std::atomic<std::int64_t> total{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      threads.emplace_back([&, s] {
        std::vector<rt::Envelope> batch(kStormBatch, make_envelope(1));
        std::vector<rt::Envelope> marker(1, make_envelope(0));
        marker[0].msg.tag = sim::tag::kCorrection;
        std::vector<rt::Envelope> drain;
        std::uint64_t rng = 0x9e3779b97f4a7c15ull ^ (s * 0xbf58476d1ce4e5b9ull);
        std::int64_t sent = 0;
        std::size_t done_seen = 0;
        const auto drain_own = [&] {
          if (mesh) {
            for (std::size_t from = 0; from < num_shards; ++from) {
              if (from != s) rings[from * num_shards + s].pop_all_into(drain);
            }
          } else {
            inboxes[s].drain_into(drain);
          }
          for (const rt::Envelope& e : drain) {
            if (e.msg.tag == sim::tag::kCorrection) ++done_seen;
          }
          drain.clear();
        };
        const auto push_to = [&](std::size_t d, const std::vector<rt::Envelope>& data) {
          if (mesh) {
            std::size_t off = 0;
            while (off < data.size()) {
              off += rings[s * num_shards + d].push_batch(data.data() + off,
                                                          data.size() - off);
              if (off < data.size()) {
                // Full ring: drain our own column so a push cycle cannot
                // deadlock, then yield — the consumer may need the core
                // (the engine parks on its Doorbell here instead).
                drain_own();
                std::this_thread::yield();
              }
            }
          } else {
            inboxes[d].push_batch(data);  // capacity covers the whole storm
          }
          sent += static_cast<std::int64_t>(data.size());
        };
        start.arrive_and_wait();
        for (std::size_t round = 0; round < kStormRounds; ++round) {
          if (all_pairs) {
            for (std::size_t d = 0; d < num_shards; ++d) {
              if (d != s) push_to(d, batch);
            }
          } else {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            push_to((s + 1 + rng % (num_shards - 1)) % num_shards, batch);
          }
          drain_own();
        }
        for (std::size_t d = 0; d < num_shards; ++d) {
          if (d != s) push_to(d, marker);
        }
        while (done_seen < num_shards - 1) {
          drain_own();
          std::this_thread::yield();
        }
        total.fetch_add(sent, std::memory_order_relaxed);
      });
    }
  }  // jthreads join before the queues go away
  return total.load(std::memory_order_relaxed);
}

void BM_CrossShardAllPairs(benchmark::State& state) {
  const auto num_shards = static_cast<std::size_t>(state.range(0));
  const bool mesh = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cross_shard_storm(num_shards, mesh, true));
  }
  const auto per_storm = static_cast<std::int64_t>(
      num_shards * (num_shards - 1) * (kStormRounds * kStormBatch + 1));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * per_storm);
  state.SetLabel(mesh ? "spsc-mesh" : "locked-inbox");
}
BENCHMARK(BM_CrossShardAllPairs)
    ->ArgNames({"workers", "mesh"})
    ->Args({2, 0})->Args({2, 1})
    ->Args({8, 0})->Args({8, 1})
    ->Args({16, 0})->Args({16, 1})
    ->UseRealTime();

void BM_CrossShardRandomPeer(benchmark::State& state) {
  const auto num_shards = static_cast<std::size_t>(state.range(0));
  const bool mesh = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cross_shard_storm(num_shards, mesh, false));
  }
  const auto per_storm = static_cast<std::int64_t>(
      num_shards * (kStormRounds * kStormBatch + num_shards - 1));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * per_storm);
  state.SetLabel(mesh ? "spsc-mesh" : "locked-inbox");
}
BENCHMARK(BM_CrossShardRandomPeer)
    ->ArgNames({"workers", "mesh"})
    ->Args({2, 0})->Args({2, 1})
    ->Args({8, 0})->Args({8, 1})
    ->Args({16, 0})->Args({16, 1})
    ->UseRealTime();

// --- whole-epoch costs ------------------------------------------------------

/// Colors every rank in begin() and sends nothing: an epoch of this
/// protocol measures pure setup/teardown (reset, barrier round trips,
/// completion sweep) with zero protocol work.
class NoopBroadcast final : public sim::Protocol {
 public:
  void begin(sim::Context& ctx) override {
    for (topo::Rank r = 0; r < ctx.num_procs(); ++r) ctx.mark_colored(r);
  }
  void on_receive(sim::Context&, topo::Rank, const sim::Message&) override {}
  void on_sent(sim::Context&, topo::Rank, const sim::Message&) override {}
};

/// Minimal binomial broadcast (the fig11 "native" stand-in, locally
/// re-declared to keep this binary self-contained).
class BinomialBroadcast final : public sim::Protocol {
 public:
  explicit BinomialBroadcast(const topo::Tree& tree) : tree_(tree) {}
  void begin(sim::Context& ctx) override {
    ctx.mark_colored(0);
    for (topo::Rank child : tree_.children(0)) ctx.send(0, child, sim::tag::kTree, 0);
  }
  void on_receive(sim::Context& ctx, topo::Rank me, const sim::Message&) override {
    ctx.mark_colored(me);
    for (topo::Rank child : tree_.children(me)) ctx.send(me, child, sim::tag::kTree, 0);
  }
  void on_sent(sim::Context&, topo::Rank, const sim::Message&) override {}

 private:
  const topo::Tree& tree_;
};

// Epoch setup/teardown vs rank count: no messages at all, so the slope is
// the per-rank reset + completion-sweep cost of the sharded scheduler.
void BM_ShardedEpochSetupTeardown(benchmark::State& state) {
  const auto procs = static_cast<topo::Rank>(state.range(0));
  rt::Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0));
  for (auto _ : state) {
    NoopBroadcast protocol;
    const rt::EpochResult result =
        engine.run_epoch(protocol, std::chrono::seconds(10));
    benchmark::DoNotOptimize(result.completion_ns);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * procs);
}
BENCHMARK(BM_ShardedEpochSetupTeardown)->Arg(1024)->Arg(4096)->Arg(16384);

// Full broadcast epoch on the sharded engine vs rank count; items/sec is
// ranks colored per second.
void BM_ShardedBroadcastEpoch(benchmark::State& state) {
  const auto procs = static_cast<topo::Rank>(state.range(0));
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  rt::Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0));
  for (auto _ : state) {
    BinomialBroadcast protocol(tree);
    const rt::EpochResult result =
        engine.run_epoch(protocol, std::chrono::seconds(10));
    benchmark::DoNotOptimize(result.total_messages);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * procs);
}
BENCHMARK(BM_ShardedBroadcastEpoch)->Arg(1024)->Arg(4096)->Arg(16384);

// The legacy executor at a size it still handles — the A/B baseline for
// BM_ShardedBroadcastEpoch (same protocol, same metric).
void BM_ThreadPerRankBroadcastEpoch(benchmark::State& state) {
  const auto procs = static_cast<topo::Rank>(state.range(0));
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  rt::EngineOptions options;
  options.threading = rt::Threading::kThreadPerRank;
  rt::Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0),
                    options);
  for (auto _ : state) {
    BinomialBroadcast protocol(tree);
    const rt::EpochResult result =
        engine.run_epoch(protocol, std::chrono::seconds(10));
    benchmark::DoNotOptimize(result.total_messages);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * procs);
}
BENCHMARK(BM_ThreadPerRankBroadcastEpoch)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();

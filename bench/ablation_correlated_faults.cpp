// Ablation: correlated failures and physical placement (§2.1). The paper
// assumes independent failures and sketches two remedies for correlated
// (whole-node) crashes: random tree renumbering, or structuring the ring so
// co-located processes sit far apart. This bench quantifies both: one or
// more full nodes crash, and we compare block / striped / random placements
// of ranks onto nodes.
// Expected shape: block placement produces gaps >= node_size (correction
// time grows with node_size); striped keeps every gap at 1; random sits in
// between.

#include "bench_common.hpp"
#include "protocol/tree_broadcast.hpp"
#include "topology/hierarchical.hpp"
#include "topology/placement.hpp"

namespace {

using namespace ct;

struct Row {
  support::Samples max_gap;
  support::Samples correction_time;
  std::int64_t uncolored_runs = 0;
};

Row run_placement(const bench::BenchEnv& env, topo::Placement placement,
                  topo::Rank node_size, topo::Rank failed_nodes) {
  const topo::Tree tree = topo::make_binomial_interleaved(env.procs);
  const sim::LogP params = env.logp(env.procs);
  const sim::Time sync = proto::fault_free_dissemination_time(tree, params);

  Row row;
  for (std::size_t rep = 0; rep < env.reps; ++rep) {
    const std::uint64_t seed = support::derive_seed(env.seed, rep);
    const auto ranks = topo::make_placement(env.procs, node_size, placement, seed);
    support::Xoshiro256ss rng(seed);
    const sim::FaultSet faults =
        sim::FaultSet::correlated_nodes(ranks, node_size, failed_nodes, rng);

    proto::CorrectionConfig correction;
    correction.kind = proto::CorrectionKind::kChecked;
    correction.start = proto::CorrectionStart::kSynchronized;
    correction.sync_time = sync;
    proto::CorrectedTreeBroadcast broadcast(tree, correction);
    sim::Simulator simulator(params, faults);
    const sim::RunResult result = simulator.run(broadcast);
    row.max_gap.add(static_cast<double>(result.dissemination_gaps.max_gap));
    row.correction_time.add(static_cast<double>(result.correction_time()));
    row.uncolored_runs += !result.fully_colored();
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/4096, /*reps=*/60);
  bench::print_header(
      env, "Ablation — correlated node failures vs rank placement (§2.1)",
      "not evaluated in the paper (§2.1 sketches the remedies)",
      "block placement: g_max >= node_size, correction time grows with it; "
      "striped: g_max stays 1; random in between");

  support::Table table({"placement", "node size", "failed nodes", "gmax mean",
                        "gmax max", "corr.time mean", "uncolored runs"});
  for (topo::Rank node_size : {4, 8, 16}) {
    for (topo::Rank failed_nodes : {1, 3}) {
      for (auto placement : {topo::Placement::kBlock, topo::Placement::kStriped,
                             topo::Placement::kRandom}) {
        const Row row = run_placement(env, placement, node_size, failed_nodes);
        table.add_row({topo::placement_name(placement), support::fmt_int(node_size),
                       support::fmt_int(failed_nodes),
                       support::fmt(row.max_gap.mean(), 1),
                       support::fmt(row.max_gap.max(), 0),
                       support::fmt(row.correction_time.mean(), 1),
                       support::fmt_int(row.uncolored_runs)});
      }
      table.add_separator();
    }
  }
  bench::emit(env, table);

  // --- Part 2: the locality side of the coin (§6). Under a two-level
  // latency model the ring-friendly choices cost dissemination speed:
  // tree numbering x placement is a genuine trade-off, with the
  // hierarchical (node-aware) tree as the locality-extreme point.
  const topo::Rank node_size = 8;
  const sim::LogP params = [&] {
    sim::LogP p = env.logp(env.procs);
    p.L = 6;  // make inter/intra contrast visible (L_intra = 1)
    return p;
  }();

  struct Combo {
    std::string label;
    topo::Tree tree;
    topo::Placement placement;
  };
  std::vector<Combo> combos;
  combos.push_back({"interleaved + striped",
                    topo::make_binomial_interleaved(env.procs),
                    topo::Placement::kStriped});
  combos.push_back({"interleaved + block", topo::make_binomial_interleaved(env.procs),
                    topo::Placement::kBlock});
  combos.push_back({"in-order + block", topo::make_binomial_inorder(env.procs),
                    topo::Placement::kBlock});
  combos.push_back({"hierarchical + block",
                    topo::make_hierarchical(env.procs, node_size,
                                            topo::parse_tree_spec("binomial")),
                    topo::Placement::kBlock});

  support::Table locality_table({"numbering + placement", "dissemination",
                                 "corr.time after node crash", "gmax"});
  for (const Combo& combo : combos) {
    const auto rank_of_pid =
        topo::make_placement(env.procs, node_size, combo.placement, env.seed);
    sim::Locality locality;
    locality.L_intra = 1;
    locality.node_of_rank.resize(static_cast<std::size_t>(env.procs));
    for (std::size_t pid = 0; pid < rank_of_pid.size(); ++pid) {
      locality.node_of_rank[static_cast<std::size_t>(rank_of_pid[pid])] =
          static_cast<std::int32_t>(pid / static_cast<std::size_t>(node_size));
    }

    // Fault-free dissemination latency under the two-level model.
    proto::CorrectionConfig none;
    none.kind = proto::CorrectionKind::kNone;
    proto::CorrectedTreeBroadcast bare(combo.tree, none);
    sim::Simulator fast(params, sim::FaultSet::none(env.procs), locality);
    const sim::Time dissemination = fast.run(bare).coloring_latency;

    // Correction cost after one node crash (mean over reps).
    support::Samples corr_time;
    support::Samples gmax;
    for (std::size_t rep = 0; rep < std::min<std::size_t>(env.reps, 20); ++rep) {
      support::Xoshiro256ss rng(support::derive_seed(env.seed, rep));
      const sim::FaultSet faults =
          sim::FaultSet::correlated_nodes(rank_of_pid, node_size, 1, rng);
      proto::CorrectionConfig checked;
      checked.kind = proto::CorrectionKind::kChecked;
      checked.start = proto::CorrectionStart::kSynchronized;
      checked.sync_time = dissemination;
      proto::CorrectedTreeBroadcast broadcast(combo.tree, checked);
      sim::Simulator simulator(params, faults, locality);
      const sim::RunResult result = simulator.run(broadcast);
      corr_time.add(static_cast<double>(result.correction_time()));
      gmax.add(static_cast<double>(result.dissemination_gaps.max_gap));
    }
    locality_table.add_row({combo.label, support::fmt_int(dissemination),
                            support::fmt(corr_time.mean(), 1),
                            support::fmt(gmax.mean(), 1)});
  }
  if (!env.csv) {
    std::cout << "--- with two-level latency (L_intra=1, L=" << params.L
              << "), node size " << node_size << " ---\n";
  }
  bench::emit(env, locality_table);
  return 0;
}

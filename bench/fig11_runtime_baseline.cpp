// Figure 11: broadcast median latency of the message-passing prototype vs
// process count — Corrected Gossip, the platform's binomial broadcast
// ("Binomial (Cray)") and our generic-stack binomial implementation.
//
// SUBSTITUTION (see DESIGN.md §1): no MPI library or cluster exists in this
// environment, so the prototype runs on the in-process threaded runtime
// (ct::rt), and process counts are scaled down (threads share one machine).
// "Binomial (native)" is a direct, minimal binomial broadcast protocol
// standing in for the platform implementation; "Binomial (ours)" is the
// same algorithm via the full corrected-tree stack with correction disabled
// (d = 0), exactly the paper's pairing. The stack rows are RunSpec cells
// (DESIGN.md §4e) — each cell's spec string is printed by
// `bench_report --list` and reproducible with ct_sim --spec; only the
// native baseline drives the harness directly (it is a bench-local
// protocol, deliberately outside the library).
// Paper shape: both binomial variants are close (ours slightly slower from
// stack generality); gossip is consistently the slowest.

#include <memory>
#include <string>

#include "bench_common.hpp"
#include "experiment/run_spec.hpp"
#include "rt/harness.hpp"

namespace {

using namespace ct;

/// Minimal, direct binomial broadcast — the "platform implementation"
/// stand-in: no correction engine, no configuration, just children sends.
class NativeBinomial final : public sim::Protocol {
 public:
  explicit NativeBinomial(const topo::Tree& tree) : tree_(tree) {}

  void begin(sim::Context& ctx) override {
    ctx.mark_colored(0);
    for (topo::Rank child : tree_.children(0)) ctx.send(0, child, sim::tag::kTree, 0);
  }
  void on_receive(sim::Context& ctx, topo::Rank me, const sim::Message&) override {
    ctx.mark_colored(me);
    for (topo::Rank child : tree_.children(me)) ctx.send(me, child, sim::tag::kTree, 0);
  }
  void on_sent(sim::Context&, topo::Rank, const sim::Message&) override {}

 private:
  const topo::Tree& tree_;
};

/// The paper's gossip-round budget: "fixing the number of correction
/// messages to four, we empirically selected a number of gossip rounds" —
/// a few rounds beyond log2(P) colors (almost) everyone before correction.
std::int64_t gossip_rounds_for(topo::Rank procs) {
  std::int64_t rounds = 2;
  while ((topo::Rank{1} << rounds) < procs) ++rounds;
  return rounds + 2;
}

}  // namespace

int main(int argc, char** argv) {
  // --procs is the largest rank count of the sweep; threads share the host.
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/48, /*reps=*/15);
  bench::print_header(
      env,
      "Figure 11 — runtime broadcast median latency vs process count "
      "(threaded-runtime substitution for the Cray/MPI testbed)",
      "Piz Daint, 1152..36864 MPI ranks, OSU broadcast benchmark",
      "binomial (native) and binomial (ours) track each other closely; "
      "corrected gossip is consistently slower");

  support::Table table({"ranks", "binomial native p50(us)", "binomial ours p50(us)",
                        "gossip p50(us)", "gossip timeouts"});

  for (topo::Rank procs = 12; procs <= env.procs; procs *= 2) {
    const topo::Tree tree = topo::make_binomial_interleaved(procs);
    rt::Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0));
    rt::HarnessOptions options;
    options.warmup = 3;
    options.iterations = static_cast<std::int64_t>(env.reps);

    const rt::HarnessResult native = rt::measure_broadcast(
        engine, [&] { return std::make_unique<NativeBinomial>(tree); }, options);

    const std::string scale = ",reps=" + std::to_string(env.reps) +
                              ",warmup=3,seed=" + std::to_string(env.seed) +
                              ",exec=rt-sharded";
    const exp::RunRecord ours = exp::run(exp::parse_run_spec(
        "bcast:binomial:none:overlapped@P=" + std::to_string(procs) + scale));
    const exp::RunRecord gossip = exp::run(exp::parse_run_spec(
        "bcast:binomial:opportunistic:4:overlapped@P=" + std::to_string(procs) +
        ",proto=gossip,gossip-rounds=" + std::to_string(gossip_rounds_for(procs)) +
        ",deadline-ms=3000" + scale));

    table.add_row({support::fmt_int(procs), support::fmt(native.median_us(), 1),
                   support::fmt(ours.latency_p50, 1),
                   support::fmt(gossip.latency_p50, 1),
                   support::fmt_int(gossip.timeouts)});
  }
  bench::emit(env, table);
  return 0;
}

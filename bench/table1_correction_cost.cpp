// Table 1: cost of correction under faults, aggregated over ALL tree types.
// Columns: g_max and L_SCC at the 99 %, 99.9 % percentiles and maximum, one
// row per fault rate. Paper values (64 Ki processes, 1e5 runs per config):
//
//   F(%)   g_max 99/99.9/max    L_SCC 99/99.9/max
//   0.01        1 /  2 /  3          10 / 12 / 14
//   0.1         2 /  3 /  6          12 / 13 / 16
//   1           5 /  7 / 19          16 / 19 / 32
//   2           8 / 11 / 35          19 / 24 / 56
//   4          13 / 20 / 55          26 / 34 / 86
//
// (no faults: g_max = 0 and L_SCC = 8)

#include "fault_sweep.hpp"

int main(int argc, char** argv) {
  using namespace ct;
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/8192, /*reps=*/100);
  bench::print_header(
      env, "Table 1 — g_max and correction latency percentiles per fault rate",
      "aggregated over binomial, 4-ary, Lamé and optimal trees",
      "both g_max and L_SCC grow with the fault rate; tails (max) grow much "
      "faster than the 99 % percentile");

  const auto sweep = bench::run_tree_fault_sweep(env);

  support::Table table({"F (%)", "gmax p99", "gmax p99.9", "gmax max", "Lscc p99",
                        "Lscc p99.9", "Lscc max"});
  for (double rate : bench::fault_rates()) {
    // Aggregate across tree types, as the paper's table does.
    support::Samples gaps;
    support::Samples times;
    for (const std::string& tree : bench::sweep_trees()) {
      const exp::Aggregate& agg = sweep.at({tree, rate});
      gaps.merge(agg.max_gap);
      times.merge(agg.correction_time);
    }
    table.add_row({bench::rate_label(rate), support::fmt(gaps.percentile(0.99), 0),
                   support::fmt(gaps.percentile(0.999), 0), support::fmt(gaps.max(), 0),
                   support::fmt(times.percentile(0.99), 0),
                   support::fmt(times.percentile(0.999), 0),
                   support::fmt(times.max(), 0)});
  }
  bench::emit(env, table);
  return 0;
}

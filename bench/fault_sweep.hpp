#pragma once
// Shared fault-injection sweep for Figures 8-10 and Table 1: the paper runs
// the same experiment (64 Ki processes, fault rates 0.01 % ... 4 %, all tree
// types plus gossip, sync checked correction) and reads different metrics
// off it.

#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "protocol/gossip_tuning.hpp"

namespace ct::bench {

inline const std::vector<double>& fault_rates() {
  static const std::vector<double> rates{0.0001, 0.001, 0.01, 0.02, 0.04};
  return rates;
}

inline std::string rate_label(double rate) {
  return support::fmt(rate * 100.0, rate < 0.001 ? 2 : (rate < 0.01 ? 1 : 0)) + "%";
}

inline const std::vector<std::string>& sweep_trees() {
  static const std::vector<std::string> trees{"binomial", "kary:4", "lame:2", "optimal"};
  return trees;
}

/// Aggregates for every tree at every fault rate (sync checked correction).
inline std::map<std::pair<std::string, double>, exp::Aggregate> run_tree_fault_sweep(
    const BenchEnv& env) {
  const support::ThreadPool pool;
  std::map<std::pair<std::string, double>, exp::Aggregate> results;
  for (const std::string& tree : sweep_trees()) {
    for (double rate : fault_rates()) {
      exp::Scenario scenario;
      scenario.params = env.logp(env.procs);
      scenario.tree = topo::parse_tree_spec(tree);
      scenario.correction.kind = proto::CorrectionKind::kChecked;
      scenario.correction.start = proto::CorrectionStart::kSynchronized;
      scenario.fault_fraction = rate;
      results.emplace(std::make_pair(tree, rate),
                      exp::run_replicated(scenario, env.reps, env.seed, &pool));
    }
  }
  return results;
}

/// Gossip aggregates per fault rate (checked correction, latency-tuned
/// gossip time; fewer replications — gossip runs are much more expensive).
inline std::map<double, exp::Aggregate> run_gossip_fault_sweep(const BenchEnv& env,
                                                               std::size_t reps) {
  const sim::LogP params = env.logp(env.procs);
  proto::CorrectionConfig checked;
  checked.kind = proto::CorrectionKind::kChecked;
  const proto::GossipTuneResult tuned =
      proto::tune_gossip_for_latency(params, checked, /*reps=*/3, env.seed);

  const support::ThreadPool pool;
  std::map<double, exp::Aggregate> results;
  for (double rate : fault_rates()) {
    exp::Scenario scenario;
    scenario.params = params;
    scenario.protocol = exp::ProtocolKind::kGossip;
    scenario.gossip.budget = proto::GossipConfig::Budget::kTime;
    scenario.gossip.gossip_time = tuned.gossip_time;
    scenario.gossip.correction = checked;
    scenario.gossip.correction.start = proto::CorrectionStart::kSynchronized;
    scenario.gossip.correction.sync_time = tuned.gossip_time;
    scenario.fault_fraction = rate;
    results.emplace(rate, exp::run_replicated(scenario, reps, env.seed, &pool));
  }
  return results;
}

}  // namespace ct::bench

// Figure 10: the relation between the maximum gap size after dissemination
// and the correction time, for every unique (g_max, L_SCC) pair observed
// across the full fault sweep (all tree types, all rates), together with
// the Lemma 3 bounds:  LFF + g*o  <=  L_SCC  <=  LFF + (2g+1)*o.
// Paper shape: all points lie tightly between the bounds; the largest gaps
// occur almost exclusively for binomial trees.

#include <map>
#include <set>

#include "analysis/bounds.hpp"
#include "fault_sweep.hpp"

int main(int argc, char** argv) {
  using namespace ct;
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/8192, /*reps=*/100);
  bench::print_header(
      env, "Figure 10 — correction time vs maximum gap size, with Lemma 3 bounds",
      "two million simulations across all tree types and fault rates",
      "every observed pair sits between the lower and upper bound; large gaps "
      "come from binomial trees");

  // Re-run the sweep keeping per-run pairs: (g_max -> set of correction
  // times, large-gap attribution per tree).
  const support::ThreadPool pool;
  std::map<std::int64_t, support::Samples> by_gap;
  std::map<std::int64_t, std::set<std::string>> gap_trees;
  std::int64_t violations = 0;
  const sim::LogP params = env.logp(env.procs);

  for (const std::string& tree : bench::sweep_trees()) {
    for (double rate : bench::fault_rates()) {
      exp::Scenario scenario;
      scenario.params = params;
      scenario.tree = topo::parse_tree_spec(tree);
      scenario.correction.kind = proto::CorrectionKind::kChecked;
      scenario.correction.start = proto::CorrectionStart::kSynchronized;
      scenario.fault_fraction = rate;
      for (std::size_t rep = 0; rep < env.reps / 4 + 1; ++rep) {
        const sim::RunResult result =
            exp::run_once(scenario, support::derive_seed(env.seed, rep));
        const std::int64_t gap = result.dissemination_gaps.max_gap;
        const auto time = static_cast<double>(result.correction_time());
        by_gap[gap].add(time);
        gap_trees[gap].insert(tree);
        if (result.correction_time() <
                analysis::checked_correction_latency_lower_bound(params, gap) ||
            result.correction_time() >
                analysis::checked_correction_latency_upper_bound(params, gap)) {
          ++violations;
        }
      }
    }
  }

  support::Table table({"g_max", "lower bound", "observed min", "observed max",
                        "upper bound", "runs", "trees seen"});
  for (const auto& [gap, samples] : by_gap) {
    std::string trees;
    for (const std::string& tree : gap_trees[gap]) {
      if (!trees.empty()) trees += ",";
      trees += tree;
    }
    table.add_row(
        {support::fmt_int(gap),
         support::fmt_int(analysis::checked_correction_latency_lower_bound(params, gap)),
         support::fmt(samples.min(), 0), support::fmt(samples.max(), 0),
         support::fmt_int(analysis::checked_correction_latency_upper_bound(params, gap)),
         support::fmt_int(static_cast<long long>(samples.count())), trees});
  }
  bench::emit(env, table);
  std::cout << "bound violations: " << violations << " (paper/Lemma 3 expectation: 0)\n";
  return violations == 0 ? 0 : 1;
}

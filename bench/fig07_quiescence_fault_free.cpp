// Figure 7: quiescence latency in the fault-free case, P = 2^10 ... 2^19.
// Series: {Binomial, Lamé, Optimal} x {acknowledged tree, corrected tree
// (sync checked)} and checked Corrected Gossip (5 %/95 % ribbon).
// Paper shape: ack trees are the slowest (tree traversed twice); corrected
// trees pay a constant 8-step correction on top of one-way dissemination;
// gossip lands between binomial(corr) and lame(corr); optimal < lame < binomial.

#include "bench_common.hpp"
#include "protocol/gossip_tuning.hpp"

namespace {

using namespace ct;

double tree_latency(const bench::BenchEnv& env, topo::Rank procs, const std::string& tree,
                    bool acked) {
  exp::Scenario scenario;
  scenario.params = env.logp(procs);
  scenario.tree = topo::parse_tree_spec(tree);
  if (acked) {
    scenario.protocol = exp::ProtocolKind::kAckTree;
  } else {
    scenario.correction.kind = proto::CorrectionKind::kChecked;
    scenario.correction.start = proto::CorrectionStart::kSynchronized;
  }
  return static_cast<double>(exp::run_once(scenario, env.seed).quiescence_latency);
}

}  // namespace

int main(int argc, char** argv) {
  // --procs here is the LARGEST process count of the sweep.
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/16384, /*reps=*/5);
  bench::print_header(
      env, "Figure 7 — quiescence latency vs process count, fault-free",
      "P = 2^10 .. 2^19; trees with acknowledgments vs corrected trees vs "
      "checked Corrected Gossip",
      "ack > corrected for every tree; binomial > lame > optimal; gossip sits "
      "between binomial(corr) and lame(corr); corrected tree == dissemination + 8");

  support::Table table({"P", "binom(ack)", "lame(ack)", "opt(ack)", "binom(corr)",
                        "lame(corr)", "opt(corr)", "gossip p50", "gossip p5",
                        "gossip p95"});

  for (topo::Rank procs = 1024; procs <= env.procs; procs *= 2) {
    std::vector<std::string> cells{support::fmt_int(procs)};
    for (bool acked : {true, false}) {
      for (const char* tree : {"binomial", "lame:2", "optimal"}) {
        cells.push_back(support::fmt(tree_latency(env, procs, tree, acked), 0));
      }
    }

    // Checked Corrected Gossip with latency-tuned gossip time (paper: "for
    // each process count, we empirically found gossiping time with a
    // minimum average latency in the fault-free case").
    const sim::LogP params = env.logp(procs);
    proto::CorrectionConfig checked;
    checked.kind = proto::CorrectionKind::kChecked;
    const proto::GossipTuneResult tuned =
        proto::tune_gossip_for_latency(params, checked, /*reps=*/3, env.seed);
    support::Samples gossip;
    for (std::size_t rep = 0; rep < env.reps; ++rep) {
      exp::Scenario scenario;
      scenario.params = params;
      scenario.protocol = exp::ProtocolKind::kGossip;
      scenario.gossip.budget = proto::GossipConfig::Budget::kTime;
      scenario.gossip.gossip_time = tuned.gossip_time;
      scenario.gossip.correction = checked;
      scenario.gossip.correction.start = proto::CorrectionStart::kSynchronized;
      scenario.gossip.correction.sync_time = tuned.gossip_time;
      gossip.add(static_cast<double>(
          exp::run_once(scenario, support::derive_seed(env.seed, rep)).quiescence_latency));
    }
    cells.push_back(support::fmt(gossip.median(), 0));
    cells.push_back(support::fmt(gossip.percentile(0.05), 0));
    cells.push_back(support::fmt(gossip.percentile(0.95), 0));
    table.add_row(cells);
  }
  bench::emit(env, table);
  return 0;
}

// Figure 12: corrected-tree variants on the prototype — binomial without
// correction (d = 0, the baseline), binomial with d = 1 and d = 2 correction
// messages (optimized overlapped opportunistic, single direction, exactly
// the §4.4 implementation), Lamé (k = 4, d = 0), and binomial d = 2 with
// emulated process failures (paper: 72 of 1152+ ranks).
//
// SUBSTITUTION: threaded runtime instead of Cray MPI, scaled-down rank
// counts (see DESIGN.md §1).
// Paper shape: binomial outperforms Lamé; each correction message adds a
// slight overhead; failures have a negligible effect on latency.

#include <memory>

#include "bench_common.hpp"
#include "protocol/tree_broadcast.hpp"
#include "rt/harness.hpp"

namespace {

using namespace ct;

proto::CorrectionConfig prototype_correction(int distance) {
  proto::CorrectionConfig config;
  if (distance == 0) {
    config.kind = proto::CorrectionKind::kNone;
  } else {
    // "we implemented only optimized overlapped opportunistic correction
    // that is always sending messages in a single direction" (§4.4).
    config.kind = proto::CorrectionKind::kOptimizedOpportunistic;
    config.start = proto::CorrectionStart::kOverlapped;
    config.directions = proto::CorrectionDirections::kLeftOnly;
    config.distance = distance;
  }
  return config;
}

double median_latency(rt::Engine& engine, const topo::Tree& tree, int distance,
                      std::int64_t iterations) {
  rt::HarnessOptions options;
  options.warmup = 3;
  options.iterations = iterations;
  const proto::CorrectionConfig config = prototype_correction(distance);
  const rt::HarnessResult result = rt::measure_broadcast(
      engine,
      [&]() -> std::unique_ptr<sim::Protocol> {
        return std::make_unique<proto::CorrectedTreeBroadcast>(tree, config);
      },
      options);
  return result.median_us();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/48, /*reps=*/15);
  bench::print_header(
      env,
      "Figure 12 — corrected-tree variants on the runtime "
      "(threaded-runtime substitution for the Cray/MPI testbed)",
      "Piz Daint, binomial d=0/1/2, Lamé k=4 d=0, binomial d=2 with 72 faults",
      "binomial beats Lamé; one/two correction messages cost a little latency; "
      "emulated faults change latency negligibly");

  support::Table table({"ranks", "binom d=0", "binom d=1", "binom d=2", "lame4 d=0",
                        "binom d=2 +faults"});

  for (topo::Rank procs = 12; procs <= env.procs; procs *= 2) {
    const topo::Tree binomial = topo::make_binomial_interleaved(procs);
    const topo::Tree lame = topo::make_lame(procs, 4);
    const auto iterations = static_cast<std::int64_t>(env.reps);

    rt::Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0));
    const double d0 = median_latency(engine, binomial, 0, iterations);
    const double d1 = median_latency(engine, binomial, 1, iterations);
    const double d2 = median_latency(engine, binomial, 2, iterations);
    const double lame_d0 = median_latency(engine, lame, 0, iterations);

    // Emulated failures: the paper kills 72 randomly chosen ranks (~6 % at
    // its smallest scale); we scale the same fraction. Single-direction
    // d = 2 correction guarantees coloring only for gaps <= 2, so — like
    // the paper, which reported full completion — we sample placements
    // until the static uncolored set respects that bound.
    support::Xoshiro256ss rng(env.seed);
    const topo::Rank fail_count = std::max<topo::Rank>(1, procs / 16);
    std::vector<char> failed;
    for (int attempt = 0;; ++attempt) {
      const sim::FaultSet faults = sim::FaultSet::random_count(procs, fail_count, rng);
      std::vector<char> colored(static_cast<std::size_t>(procs), 1);
      for (topo::Rank r = 1; r < procs; ++r) {
        for (topo::Rank cur = r; cur != 0; cur = binomial.parent(cur)) {
          if (faults.failed_from_start(cur)) {
            colored[static_cast<std::size_t>(r)] = 0;
            break;
          }
        }
      }
      if (topo::analyze_gaps(colored).max_gap <= 2 || attempt > 200) {
        failed.assign(static_cast<std::size_t>(procs), 0);
        for (topo::Rank r : faults.initially_failed()) {
          failed[static_cast<std::size_t>(r)] = 1;
        }
        break;
      }
    }
    rt::Engine faulty_engine(procs, failed);
    const double d2_faults = median_latency(faulty_engine, binomial, 2, iterations);

    table.add_row({support::fmt_int(procs), support::fmt(d0, 1), support::fmt(d1, 1),
                   support::fmt(d2, 1), support::fmt(lame_d0, 1),
                   support::fmt(d2_faults, 1)});
  }
  bench::emit(env, table);
  return 0;
}

// Figure 12: corrected-tree variants on the prototype — binomial without
// correction (d = 0, the baseline), binomial with d = 1 and d = 2 correction
// messages (optimized overlapped opportunistic, single direction, exactly
// the §4.4 implementation), Lamé (k = 4, d = 0), and binomial d = 2 with
// emulated process failures (paper: 72 of 1152+ ranks).
//
// SUBSTITUTION: threaded runtime instead of Cray MPI, scaled-down rank
// counts (see DESIGN.md §1). Every cell is a RunSpec (DESIGN.md §4e); the
// gap-safe fault placement the paper's "full completion" requires is the
// spec's gap= knob (single-direction d = 2 correction guarantees coloring
// only for gaps <= 2, so placements are resampled until the statically-
// uncolored set respects that bound).
// Paper shape: binomial outperforms Lamé; each correction message adds a
// slight overhead; failures have a negligible effect on latency.

#include <string>

#include "bench_common.hpp"
#include "experiment/run_spec.hpp"

namespace {

using namespace ct;

/// Spec head of the §4.4 prototype correction: "we implemented only
/// optimized overlapped opportunistic correction that is always sending
/// messages in a single direction"; d = 0 is the uncorrected baseline.
std::string prototype_head(const std::string& tree, int distance) {
  if (distance == 0) return "bcast:" + tree + ":none:overlapped";
  return "bcast:" + tree + ":opportunistic:" + std::to_string(distance) +
         ":overlapped:left";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/48, /*reps=*/15);
  bench::print_header(
      env,
      "Figure 12 — corrected-tree variants on the runtime "
      "(threaded-runtime substitution for the Cray/MPI testbed)",
      "Piz Daint, binomial d=0/1/2, Lamé k=4 d=0, binomial d=2 with 72 faults",
      "binomial beats Lamé; one/two correction messages cost a little latency; "
      "emulated faults change latency negligibly");

  support::Table table({"ranks", "binom d=0", "binom d=1", "binom d=2", "lame4 d=0",
                        "binom d=2 +faults"});

  for (topo::Rank procs = 12; procs <= env.procs; procs *= 2) {
    const std::string scale = "@P=" + std::to_string(procs) +
                              ",reps=" + std::to_string(env.reps) +
                              ",warmup=3,seed=" + std::to_string(env.seed) +
                              ",exec=rt-sharded";
    const auto cell = [&](const std::string& head, const std::string& extra = "") {
      return exp::run(exp::parse_run_spec(head + scale + extra)).latency_p50;
    };

    const double d0 = cell(prototype_head("binomial", 0));
    const double d1 = cell(prototype_head("binomial", 1));
    const double d2 = cell(prototype_head("binomial", 2));
    const double lame_d0 = cell(prototype_head("lame:4", 0));

    // Emulated failures: the paper kills 72 randomly chosen ranks (~6 % at
    // its smallest scale); we scale the same fraction, with the gap-safe
    // placement bound matching the correction distance.
    const topo::Rank fail_count = std::max<topo::Rank>(1, procs / 16);
    const double d2_faults =
        cell(prototype_head("binomial", 2),
             ",faults=" + std::to_string(fail_count) + ",gap=2");

    table.add_row({support::fmt_int(procs), support::fmt(d0, 1), support::fmt(d1, 1),
                   support::fmt(d2, 1), support::fmt(lame_d0, 1),
                   support::fmt(d2_faults, 1)});
  }
  bench::emit(env, table);
  return 0;
}

// Ablation of the correction design choices DESIGN.md calls out:
//  (a) correction distance d (coverage vs traffic trade-off, §3.1/§4.2),
//  (b) plain vs optimized opportunistic correction (the §3.3 optimization),
//  (c) both directions vs single direction (the §4.4 simplification),
//  (d) failure-proof redundancy overhead (the §3.1 "high overhead" remark).
// Metrics: messages per process, quiescence latency, and — the reliability
// side — how many replications leave live processes uncolored.

#include "bench_common.hpp"

namespace {

using namespace ct;

exp::Aggregate run(const bench::BenchEnv& env, const proto::CorrectionConfig& correction,
                   double fault_rate, std::size_t reps) {
  exp::Scenario scenario;
  scenario.params = env.logp(env.procs);
  scenario.tree = topo::parse_tree_spec("binomial");
  scenario.correction = correction;
  scenario.fault_fraction = fault_rate;
  const support::ThreadPool pool;
  return exp::run_replicated(scenario, reps, env.seed, &pool);
}

void add_row(support::Table& table, const std::string& label, double rate,
             const exp::Aggregate& agg) {
  table.add_row({label, support::fmt(rate * 100, 1) + "%",
                 support::fmt(agg.messages_per_process.mean(), 2),
                 support::fmt(agg.quiescence_latency.mean(), 1),
                 support::fmt_int(agg.not_fully_colored),
                 support::fmt_int(agg.uncolored_total)});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/8192, /*reps=*/100);
  bench::print_header(
      env, "Ablation — correction design choices (distance, optimization, "
      "directions, failure-proof redundancy)",
      "design knobs of §3.1/§3.3/§4.4",
      "larger d: more messages, fewer uncolored runs; optimization cuts "
      "messages at no reliability cost; single direction halves traffic but "
      "halves covered gap size; failure-proof costs ~2x checked");

  support::Table table({"variant", "faults", "msgs/proc", "latency", "uncolored runs",
                        "uncolored procs"});

  const double rate = 0.02;
  // (a) distance sweep.
  for (int distance : {1, 2, 4, 8}) {
    proto::CorrectionConfig config;
    config.kind = proto::CorrectionKind::kOptimizedOpportunistic;
    config.start = proto::CorrectionStart::kOverlapped;
    config.distance = distance;
    add_row(table, "optimized d=" + std::to_string(distance), rate,
            run(env, config, rate, env.reps));
  }
  table.add_separator();

  // (b) plain vs optimized at d=4.
  for (bool optimized : {false, true}) {
    proto::CorrectionConfig config;
    config.kind = optimized ? proto::CorrectionKind::kOptimizedOpportunistic
                            : proto::CorrectionKind::kOpportunistic;
    config.start = proto::CorrectionStart::kOverlapped;
    config.distance = 4;
    add_row(table, optimized ? "optimized d=4" : "plain d=4", rate,
            run(env, config, rate, env.reps));
  }
  table.add_separator();

  // (c) both directions vs left-only at d=4.
  for (auto directions : {proto::CorrectionDirections::kBoth,
                          proto::CorrectionDirections::kLeftOnly}) {
    proto::CorrectionConfig config;
    config.kind = proto::CorrectionKind::kOptimizedOpportunistic;
    config.start = proto::CorrectionStart::kOverlapped;
    config.distance = 4;
    config.directions = directions;
    add_row(table,
            directions == proto::CorrectionDirections::kBoth ? "both directions d=4"
                                                             : "left-only d=4",
            rate, run(env, config, rate, env.reps));
  }
  table.add_separator();

  // (d) checked vs failure-proof (redundancy sweep), fault-free cost.
  {
    proto::CorrectionConfig checked;
    checked.kind = proto::CorrectionKind::kChecked;
    checked.start = proto::CorrectionStart::kSynchronized;
    add_row(table, "checked", 0.0, run(env, checked, 0.0, 1));
    for (int redundancy : {1, 2, 3}) {
      proto::CorrectionConfig config;
      config.kind = proto::CorrectionKind::kFailureProof;
      config.start = proto::CorrectionStart::kSynchronized;
      config.redundancy = redundancy;
      add_row(table, "failure-proof r=" + std::to_string(redundancy), 0.0,
              run(env, config, 0.0, 1));
    }
  }
  bench::emit(env, table);
  return 0;
}

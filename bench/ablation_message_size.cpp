// Ablation: the small-message assumption (§2). The paper's analysis assumes
// messages that "do not impact latency and do not need segmentation"; the
// simulator's LogGP extension (per-byte gap G and overhead O) lets us probe
// where that assumption matters: as messages grow, the per-process traffic
// differences between correction schemes turn into real latency gaps.
// Expected shape: at 1 byte all schemes track the paper; as bytes grow,
// message-hungry schemes (checked > opportunistic > delayed) separate, and
// gossip falls furthest behind.

#include "bench_common.hpp"
#include "protocol/gossip_broadcast.hpp"
#include "protocol/tree_broadcast.hpp"

namespace {

using namespace ct;

double tree_latency(const bench::BenchEnv& env, const sim::LogP& params,
                    proto::CorrectionKind kind) {
  exp::Scenario scenario;
  scenario.params = params;
  scenario.tree = topo::parse_tree_spec("binomial");
  scenario.correction.kind = kind;
  scenario.correction.start = kind == proto::CorrectionKind::kChecked
                                  ? proto::CorrectionStart::kSynchronized
                                  : proto::CorrectionStart::kOverlapped;
  scenario.correction.distance = 4;
  scenario.correction.delay = 2 * params.message_cost();
  return static_cast<double>(exp::run_once(scenario, env.seed).quiescence_latency);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/4096, /*reps=*/5);
  bench::print_header(
      env, "Ablation — message size under LogGP (small-message assumption, §2)",
      "the paper's analysis fixes bytes = 1 (G = O = 0)",
      "latencies scale with message cost; the scheme ordering (delayed < "
      "opportunistic < checked < gossip) is preserved and the gaps widen");

  support::Table table({"bytes", "msg cost", "none (d=0)", "delayed", "opportunistic d=4",
                        "checked", "gossip"});
  for (sim::Time bytes : {1, 4, 16, 64}) {
    sim::LogP params = env.logp(env.procs);
    params.G = 1;
    params.O = 1;
    params.bytes = bytes;

    // Gossip with a fixed round budget (time-based tuning would need
    // re-tuning per size; rounds keep the comparison structural).
    proto::GossipConfig gossip_config;
    gossip_config.budget = proto::GossipConfig::Budget::kRounds;
    std::int64_t rounds = 1;
    while ((topo::Rank{1} << rounds) < env.procs) ++rounds;
    gossip_config.gossip_rounds = rounds + 2;
    gossip_config.correction.kind = proto::CorrectionKind::kOptimizedOpportunistic;
    gossip_config.correction.start = proto::CorrectionStart::kOverlapped;
    gossip_config.correction.distance = 4;
    gossip_config.seed = env.seed;
    proto::CorrectedGossipBroadcast gossip(env.procs, gossip_config);
    sim::Simulator gossip_sim(params, sim::FaultSet::none(env.procs));
    const double gossip_latency =
        static_cast<double>(gossip_sim.run(gossip).quiescence_latency);

    table.add_row({support::fmt_int(bytes), support::fmt_int(params.message_cost()),
                   support::fmt(tree_latency(env, params, proto::CorrectionKind::kNone), 0),
                   support::fmt(tree_latency(env, params, proto::CorrectionKind::kDelayed), 0),
                   support::fmt(tree_latency(env, params,
                                             proto::CorrectionKind::kOptimizedOpportunistic),
                                0),
                   support::fmt(tree_latency(env, params, proto::CorrectionKind::kChecked), 0),
                   support::fmt(gossip_latency, 0)});
  }
  bench::emit(env, table);
  return 0;
}

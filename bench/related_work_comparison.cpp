// Related-work comparison (§5, made runnable): Corrected Trees vs the three
// fault-tolerance schools the paper discusses —
//   * acknowledgment trees ("the tree has to be traversed twice"),
//   * failure-detector recovery (Hursey & Graham style pull-on-timeout),
//   * multi-tree redundancy (Itai & Rodeh / SplitStream style),
//   * Corrected Gossip (the direct predecessor).
// Metrics: fault-free latency & messages, and faulty latency & reliability.
// Expected shape: corrected trees are the only variant combining one-way
// latency (+ constant), ~1 extra message/process, and fault tolerance
// without detection delays.

#include "bench_common.hpp"
#include "protocol/ack_tree.hpp"
#include "protocol/baselines.hpp"
#include "protocol/gossip_tuning.hpp"
#include "protocol/tree_broadcast.hpp"

namespace {

using namespace ct;

struct Outcome {
  double latency = 0;
  double messages = 0;
  std::int64_t uncolored = 0;
};

template <class MakeProtocol>
Outcome run(const bench::BenchEnv& env, topo::Rank faults, MakeProtocol make,
            std::size_t reps) {
  Outcome outcome;
  const sim::LogP params = env.logp(env.procs);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    support::Xoshiro256ss rng(support::derive_seed(env.seed, rep));
    const sim::FaultSet fault_set =
        faults > 0 ? sim::FaultSet::random_count(env.procs, faults, rng)
                   : sim::FaultSet::none(env.procs);
    auto protocol = make(rep);
    sim::Simulator simulator(params, fault_set);
    const sim::RunResult result = simulator.run(*protocol);
    outcome.latency += result.coloring_latency == sim::kTimeNever
                           ? static_cast<double>(result.quiescence_latency)
                           : static_cast<double>(result.coloring_latency);
    outcome.messages += result.messages_per_process();
    outcome.uncolored += result.uncolored_live;
  }
  outcome.latency /= static_cast<double>(reps);
  outcome.messages /= static_cast<double>(reps);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/4096, /*reps=*/40);
  bench::print_header(
      env, "Related-work comparison — coloring latency and traffic (§5)",
      "the paper compares these schools qualitatively in §5",
      "corrected trees: lowest faulty latency at ~2 msgs/proc; ack-tree "
      "doubles latency; detector pays timeouts under faults; multi-tree "
      "doubles traffic; gossip needs several times the messages");

  const topo::Tree tree = topo::make_binomial_interleaved(env.procs);
  const sim::LogP params = env.logp(env.procs);

  proto::CorrectionConfig corrected_cfg;
  corrected_cfg.kind = proto::CorrectionKind::kOptimizedOpportunistic;
  corrected_cfg.start = proto::CorrectionStart::kOverlapped;
  corrected_cfg.distance = 4;

  proto::CorrectionConfig checked_cfg;
  checked_cfg.kind = proto::CorrectionKind::kChecked;
  checked_cfg.start = proto::CorrectionStart::kSynchronized;
  checked_cfg.sync_time = proto::fault_free_dissemination_time(tree, params);

  const proto::GossipTuneResult tuned = proto::tune_gossip_for_latency(
      params, proto::CorrectionConfig{.kind = proto::CorrectionKind::kChecked},
      /*reps=*/3, env.seed);

  support::Table table({"scheme", "faults", "coloring latency", "msgs/proc",
                        "uncolored (total)"});
  const topo::Rank fault_count = std::max<topo::Rank>(1, env.procs / 100);
  for (topo::Rank faults : {topo::Rank{0}, fault_count}) {
    const std::size_t reps = faults == 0 ? 3 : env.reps;

    const Outcome corrected = run(env, faults, [&](std::size_t) {
      return std::make_unique<proto::CorrectedTreeBroadcast>(tree, corrected_cfg);
    }, reps);
    const Outcome checked = run(env, faults, [&](std::size_t) {
      return std::make_unique<proto::CorrectedTreeBroadcast>(tree, checked_cfg);
    }, reps);
    const Outcome acked = run(env, faults, [&](std::size_t) {
      return std::make_unique<proto::AckTreeBroadcast>(tree);
    }, reps);
    const Outcome detector = run(env, faults, [&](std::size_t) {
      return std::make_unique<proto::DetectorTreeBroadcast>(tree, params,
                                                            proto::DetectorConfig{});
    }, reps);
    const Outcome multi = run(env, faults, [&](std::size_t) {
      return std::make_unique<proto::MultiTreeBroadcast>(
          proto::make_rotated_trees(env.procs, 2));
    }, reps);
    const Outcome gossip = run(env, faults, [&](std::size_t rep) {
      proto::GossipConfig config;
      config.budget = proto::GossipConfig::Budget::kTime;
      config.gossip_time = tuned.gossip_time;
      config.correction.kind = proto::CorrectionKind::kChecked;
      config.correction.start = proto::CorrectionStart::kSynchronized;
      config.correction.sync_time = tuned.gossip_time;
      config.seed = support::derive_seed(env.seed, 1000 + rep);
      return std::make_unique<proto::CorrectedGossipBroadcast>(env.procs, config);
    }, std::max<std::size_t>(reps / 4, 3));

    auto add = [&](const char* name, const Outcome& outcome) {
      table.add_row({name, support::fmt_int(faults), support::fmt(outcome.latency, 1),
                     support::fmt(outcome.messages, 2),
                     support::fmt_int(outcome.uncolored)});
    };
    add("corrected tree (opp.4)", corrected);
    add("corrected tree (checked)", checked);
    add("ack tree", acked);
    add("detector tree", detector);
    add("multi-tree (2x)", multi);
    add("corrected gossip", gossip);
    table.add_separator();
  }
  bench::emit(env, table);
  return 0;
}

// Figure 9: average number of messages per process as the fault rate grows
// (whiskers: 5 %/95 %), same sweep as Figure 8.
// Paper shape: message counts DROP with higher fault rates (dead processes
// are silent and only dissemination-colored processes correct); corrected
// trees stay far below Corrected Gossip at every rate.

#include "fault_sweep.hpp"

int main(int argc, char** argv) {
  using namespace ct;
  const bench::BenchEnv env = bench::make_env(argc, argv, /*procs=*/8192, /*reps=*/100);
  bench::print_header(
      env, "Figure 9 — messages per process vs fault rate",
      "64 Ki processes, fault rates 0.01 % .. 4 %, sync checked correction",
      "messages decrease with fault rate for every variant; gossip needs a "
      "multiple of the tree variants' messages throughout");

  const auto trees = bench::run_tree_fault_sweep(env);
  const auto gossip = bench::run_gossip_fault_sweep(
      env, std::max<std::size_t>(env.reps / 10, 5));

  support::Table table({"variant", "faults", "msgs/proc mean", "p5", "p95"});
  for (const std::string& tree : bench::sweep_trees()) {
    for (double rate : bench::fault_rates()) {
      const exp::Aggregate& agg = trees.at({tree, rate});
      table.add_row({tree, bench::rate_label(rate),
                     support::fmt(agg.messages_per_process.mean(), 2),
                     support::fmt(agg.messages_per_process.percentile(0.05), 2),
                     support::fmt(agg.messages_per_process.percentile(0.95), 2)});
    }
    table.add_separator();
  }
  for (double rate : bench::fault_rates()) {
    const exp::Aggregate& agg = gossip.at(rate);
    table.add_row({"gossip", bench::rate_label(rate),
                   support::fmt(agg.messages_per_process.mean(), 2),
                   support::fmt(agg.messages_per_process.percentile(0.05), 2),
                   support::fmt(agg.messages_per_process.percentile(0.95), 2)});
  }
  bench::emit(env, table);
  return 0;
}

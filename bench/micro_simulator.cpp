// Engineering micro-benchmarks (google-benchmark): simulator event
// throughput, tree construction (constructive builder vs closed formula),
// gap analysis and the PRNG — the hot paths behind the replicated sweeps.

#include <benchmark/benchmark.h>

#include "experiment/runner.hpp"
#include "protocol/tree_broadcast.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "topology/factory.hpp"
#include "topology/gaps.hpp"

namespace {

using namespace ct;

void BM_SimulateBroadcast(benchmark::State& state) {
  const auto procs = static_cast<topo::Rank>(state.range(0));
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kChecked;
  config.start = proto::CorrectionStart::kSynchronized;
  config.sync_time = proto::fault_free_dissemination_time(tree, params);
  std::int64_t messages = 0;
  for (auto _ : state) {
    proto::CorrectedTreeBroadcast protocol(tree, config);
    sim::Simulator simulator(params, sim::FaultSet::none(procs));
    messages = simulator.run(protocol).total_messages;
    benchmark::DoNotOptimize(messages);
  }
  state.SetItemsProcessed(state.iterations() * messages);
  state.SetLabel("messages/iter=" + std::to_string(messages));
}
BENCHMARK(BM_SimulateBroadcast)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_SimulateWithFaults(benchmark::State& state) {
  const topo::Rank procs = 8192;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kChecked;
  config.start = proto::CorrectionStart::kSynchronized;
  config.sync_time = proto::fault_free_dissemination_time(tree, params);
  support::Xoshiro256ss rng(7);
  for (auto _ : state) {
    proto::CorrectedTreeBroadcast protocol(tree, config);
    sim::Simulator simulator(
        params, sim::FaultSet::random_fraction(procs, 0.02, rng));
    benchmark::DoNotOptimize(simulator.run(protocol).quiescence_latency);
  }
}
BENCHMARK(BM_SimulateWithFaults);

void BM_TreeConstructive(benchmark::State& state) {
  const auto procs = static_cast<topo::Rank>(state.range(0));
  for (auto _ : state) {
    const topo::Tree tree = topo::make_lame(procs, 2);
    benchmark::DoNotOptimize(tree.height());
  }
}
BENCHMARK(BM_TreeConstructive)->Arg(1024)->Arg(65536);

void BM_TreeChildrenFormula(benchmark::State& state) {
  // The Eq. 2 closed form per rank, summed over the whole tree — the
  // alternative to materialising (DESIGN.md decision 2).
  const auto procs = static_cast<topo::Rank>(state.range(0));
  for (auto _ : state) {
    std::size_t total = 0;
    for (topo::Rank r = 0; r < procs; ++r) {
      total += topo::lame_children_formula(r, procs, 2).size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_TreeChildrenFormula)->Arg(1024);

void BM_GapAnalysis(benchmark::State& state) {
  const auto procs = static_cast<std::size_t>(state.range(0));
  std::vector<char> colored(procs, 1);
  support::Xoshiro256ss rng(3);
  for (std::size_t i = 0; i < procs / 50; ++i) colored[rng.below(procs)] = 0;
  colored[0] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::analyze_gaps(colored).max_gap);
  }
}
BENCHMARK(BM_GapAnalysis)->Arg(65536);

void BM_Rng(benchmark::State& state) {
  support::Xoshiro256ss rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(65536));
  }
}
BENCHMARK(BM_Rng);

void BM_FaultSampling(benchmark::State& state) {
  support::Xoshiro256ss rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::FaultSet::random_count(65536, 655, rng).failed_count());
  }
}
BENCHMARK(BM_FaultSampling);

}  // namespace

BENCHMARK_MAIN();

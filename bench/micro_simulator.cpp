// Engineering micro-benchmarks (google-benchmark): simulator event
// throughput, tree construction (constructive builder vs closed formula),
// gap analysis and the PRNG — the hot paths behind the replicated sweeps.

#include <benchmark/benchmark.h>

#include "experiment/runner.hpp"
#include "protocol/tree_broadcast.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "topology/factory.hpp"
#include "topology/gaps.hpp"

namespace {

using namespace ct;

proto::CorrectionConfig checked_sync_config(const topo::Tree& tree,
                                            const sim::LogP& params) {
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kChecked;
  config.start = proto::CorrectionStart::kSynchronized;
  config.sync_time = proto::fault_free_dissemination_time(tree, params);
  return config;
}

void run_broadcast_benchmark(benchmark::State& state, sim::QueueKind queue) {
  const auto procs = static_cast<topo::Rank>(state.range(0));
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  const proto::CorrectionConfig config = checked_sync_config(tree, params);
  sim::RunOptions options;
  options.queue = queue;
  sim::Workspace workspace;
  // Per-iteration accumulation: totals must cover every iteration (not the
  // last run scaled by iterations()) or items/sec misreports whenever runs
  // vary; counters are also safe under threaded benchmark runs, unlike the
  // SetLabel string this replaces.
  std::int64_t total_messages = 0;
  std::int64_t total_events = 0;
  for (auto _ : state) {
    proto::CorrectedTreeBroadcast protocol(tree, config);
    sim::Simulator simulator(params, sim::FaultSet::none(procs));
    const sim::RunResult result = simulator.run(protocol, options, workspace);
    total_messages += result.total_messages;
    total_events += result.events_processed;
    benchmark::DoNotOptimize(result.total_messages);
  }
  state.SetItemsProcessed(total_messages);
  state.counters["events/s"] = benchmark::Counter(static_cast<double>(total_events),
                                                  benchmark::Counter::kIsRate);
  state.counters["msgs/run"] = benchmark::Counter(
      state.iterations() ? static_cast<double>(total_messages) /
                               static_cast<double>(state.iterations())
                         : 0.0);
}

void BM_SimulateBroadcast(benchmark::State& state) {
  run_broadcast_benchmark(state, sim::QueueKind::kCalendar);
}
BENCHMARK(BM_SimulateBroadcast)->Arg(1024)->Arg(8192)->Arg(65536);

// Fallback engine, for queue A/B comparisons on identical runs.
void BM_SimulateBroadcastHeapQueue(benchmark::State& state) {
  run_broadcast_benchmark(state, sim::QueueKind::kBinaryHeap);
}
BENCHMARK(BM_SimulateBroadcastHeapQueue)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_SimulateWithFaults(benchmark::State& state) {
  const topo::Rank procs = 8192;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  const proto::CorrectionConfig config = checked_sync_config(tree, params);
  support::Xoshiro256ss rng(7);
  sim::Workspace workspace;
  std::int64_t total_events = 0;
  for (auto _ : state) {
    proto::CorrectedTreeBroadcast protocol(tree, config);
    sim::Simulator simulator(
        params, sim::FaultSet::random_fraction(procs, 0.02, rng));
    const sim::RunResult result = simulator.run(protocol, {}, workspace);
    total_events += result.events_processed;
    benchmark::DoNotOptimize(result.quiescence_latency);
  }
  state.counters["events/s"] = benchmark::Counter(static_cast<double>(total_events),
                                                  benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateWithFaults);

// The sweep path the figure benches live on: run_replicated (workspace
// reuse, deterministic aggregation) over a faulty corrected-tree scenario.
// items/sec == replications/sec.
void BM_SweepThroughput(benchmark::State& state) {
  const auto procs = static_cast<topo::Rank>(state.range(0));
  exp::Scenario scenario;
  scenario.params = sim::LogP{2, 1, 1, procs};
  scenario.protocol = exp::ProtocolKind::kCorrectedTree;
  scenario.tree.kind = topo::TreeKind::kBinomialInterleaved;
  scenario.correction.kind = proto::CorrectionKind::kChecked;
  scenario.correction.start = proto::CorrectionStart::kSynchronized;
  scenario.fault_fraction = 0.02;
  const std::size_t reps = 16;
  std::uint64_t sweep = 0;
  for (auto _ : state) {
    const exp::Aggregate aggregate = exp::run_replicated(scenario, reps, 42 + sweep++);
    benchmark::DoNotOptimize(aggregate.runs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(reps));
}
BENCHMARK(BM_SweepThroughput)->Arg(1024)->Arg(8192);

// Heap-queue churn in isolation: interleaved push / pop_into waves over the
// binary-heap fallback queue, the path the PR7 direct-sift pop_into (one
// hole-percolation pass instead of std::pop_heap's sift-down + sift-up and
// a 48-byte Event move per level) speeds up. Wave shape approximates a
// broadcast frontier: push a burst of out-of-order timestamps, drain half,
// repeat — items/sec counts pops.
void BM_EventHeapChurn(benchmark::State& state) {
  const auto burst = static_cast<std::size_t>(state.range(0));
  support::Xoshiro256ss rng(11);
  sim::detail::EventHeapQueue queue;
  sim::detail::Event event;
  std::int64_t pops = 0;
  std::uint32_t seq = 0;
  for (auto _ : state) {
    sim::Time base = 0;
    for (int wave = 0; wave < 8; ++wave) {
      for (std::size_t i = 0; i < burst; ++i) {
        event.time = base + static_cast<sim::Time>(rng.below(64));
        event.kind = sim::detail::EventKind::kRecvDone;
        event.seq = seq++;
        event.msg.dst = static_cast<topo::Rank>(i);
        queue.push(event);
      }
      for (std::size_t i = 0; i < burst / 2; ++i) {
        queue.pop_into(event);
        benchmark::DoNotOptimize(event.time);
        ++pops;
      }
      base += 64;
    }
    while (!queue.empty()) {
      queue.pop_into(event);
      ++pops;
    }
  }
  state.SetItemsProcessed(pops);
}
BENCHMARK(BM_EventHeapChurn)->Arg(256)->Arg(4096);

// Topology-build cost: the CSR Tree constructor (nested children flattened
// into offsets + child list, depth/subtree indexing, validation) — tracked
// alongside engine throughput so the per-scenario build stays negligible
// next to the replications that share the tree.
void BM_TreeConstruct(benchmark::State& state) {
  const auto procs = static_cast<topo::Rank>(state.range(0));
  for (auto _ : state) {
    const topo::Tree tree = topo::make_binomial_interleaved(procs);
    benchmark::DoNotOptimize(tree.num_procs());
  }
}
BENCHMARK(BM_TreeConstruct)->Arg(8192)->Arg(65536);

// Fault-sampling on the sweep path: resampling into a ReplicaPlan's reused
// FaultSet — an O(faults) touch per replication instead of an O(P)
// allocation (compare BM_FaultSampling, the allocating factory).
void BM_FaultSample(benchmark::State& state) {
  const auto procs = static_cast<topo::Rank>(state.range(0));
  support::Xoshiro256ss rng(1);
  sim::FaultSet reused;
  for (auto _ : state) {
    sim::FaultSet::sample_fraction_into(reused, procs, 0.02, rng);
    benchmark::DoNotOptimize(reused.failed_count());
  }
}
BENCHMARK(BM_FaultSample)->Arg(8192)->Arg(65536);

void BM_TreeConstructive(benchmark::State& state) {
  const auto procs = static_cast<topo::Rank>(state.range(0));
  for (auto _ : state) {
    const topo::Tree tree = topo::make_lame(procs, 2);
    benchmark::DoNotOptimize(tree.height());
  }
}
BENCHMARK(BM_TreeConstructive)->Arg(1024)->Arg(65536);

void BM_TreeChildrenFormula(benchmark::State& state) {
  // The Eq. 2 closed form per rank, summed over the whole tree — the
  // alternative to materialising (DESIGN.md decision 2).
  const auto procs = static_cast<topo::Rank>(state.range(0));
  for (auto _ : state) {
    std::size_t total = 0;
    for (topo::Rank r = 0; r < procs; ++r) {
      total += topo::lame_children_formula(r, procs, 2).size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_TreeChildrenFormula)->Arg(1024);

void BM_GapAnalysis(benchmark::State& state) {
  const auto procs = static_cast<std::size_t>(state.range(0));
  std::vector<char> colored(procs, 1);
  support::Xoshiro256ss rng(3);
  for (std::size_t i = 0; i < procs / 50; ++i) colored[rng.below(procs)] = 0;
  colored[0] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::analyze_gaps(colored).max_gap);
  }
}
BENCHMARK(BM_GapAnalysis)->Arg(65536);

void BM_Rng(benchmark::State& state) {
  support::Xoshiro256ss rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(65536));
  }
}
BENCHMARK(BM_Rng);

void BM_FaultSampling(benchmark::State& state) {
  support::Xoshiro256ss rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::FaultSet::random_count(65536, 655, rng).failed_count());
  }
}
BENCHMARK(BM_FaultSampling);

}  // namespace

BENCHMARK_MAIN();

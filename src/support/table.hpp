#pragma once
// Fixed-width table / CSV writer for bench output. Every figure/table bench
// prints its data series through this, so output is uniform and easy to
// post-process (CSV mode is machine-readable for plotting).

#include <iosfwd>
#include <string>
#include <vector>

namespace ct::support {

/// Column-oriented text table. Usage:
///   Table t({"Processes", "Latency", "Messages"});
///   t.add_row({"1024", "42.0", "5.0"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Horizontal separator after the most recently added row.
  void add_separator();

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Aligned, human-readable rendering.
  void print(std::ostream& out) const;
  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices followed by a rule
};

/// printf-style float formatting helpers for table cells.
std::string fmt(double value, int precision = 2);
std::string fmt_int(long long value);

}  // namespace ct::support

#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace ct::support {

void Accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

void Samples::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void Samples::merge(const Samples& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_valid_ = false;
}

double Samples::mean() const noexcept {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const noexcept {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double v : values_) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(values_.size() - 1));
}

void Samples::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::min() const {
  if (values_.empty()) throw std::logic_error("Samples::min on empty set");
  ensure_sorted();
  return sorted_.front();
}

double Samples::max() const {
  if (values_.empty()) throw std::logic_error("Samples::max on empty set");
  ensure_sorted();
  return sorted_.back();
}

double Samples::percentile(double q) const {
  if (values_.empty()) throw std::logic_error("Samples::percentile on empty set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile outside [0,1]");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

void Histogram::add(std::int64_t value) {
  auto it = std::lower_bound(
      bins_.begin(), bins_.end(), value,
      [](const auto& bin, std::int64_t v) { return bin.first < v; });
  if (it != bins_.end() && it->first == value) {
    ++it->second;
  } else {
    bins_.insert(it, {value, 1});
  }
  ++total_;
}

std::size_t Histogram::count(std::int64_t value) const {
  auto it = std::lower_bound(
      bins_.begin(), bins_.end(), value,
      [](const auto& bin, std::int64_t v) { return bin.first < v; });
  return (it != bins_.end() && it->first == value) ? it->second : 0;
}

std::int64_t Histogram::min_value() const {
  if (bins_.empty()) throw std::logic_error("Histogram::min_value on empty histogram");
  return bins_.front().first;
}

std::int64_t Histogram::max_value() const {
  if (bins_.empty()) throw std::logic_error("Histogram::max_value on empty histogram");
  return bins_.back().first;
}

std::vector<std::pair<std::int64_t, std::size_t>> Histogram::entries() const {
  return bins_;
}

std::string format_with_range(double mid, double lo, double hi, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << mid << " [" << lo << ", " << hi << "]";
  return out.str();
}

}  // namespace ct::support

#pragma once
// Statistics accumulators used to aggregate replicated simulation runs into
// the summary numbers the paper reports (means, standard deviations and
// 5 % / 10 % / 90 % / 95 % / 99 % / 99.9 % percentiles, Table 1 style).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ct::support {

/// Streaming mean / variance / extrema (Welford). O(1) memory; use for
/// quantities where percentiles are not needed.
class Accumulator {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact-percentile sampler: stores every sample. Memory is proportional to
/// the replication count, which is bounded in our experiments (<= 1e6).
class Samples {
 public:
  Samples() = default;
  explicit Samples(std::size_t reserve) { values_.reserve(reserve); }

  void add(double x);
  void merge(const Samples& other);
  /// Pre-sizes the value store (e.g. to a known replication count) so the
  /// add() loop allocates nothing. The lazily sorted copy still grows on the
  /// first percentile query.
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }
  double mean() const noexcept;
  double stddev() const noexcept;
  double min() const;
  double max() const;
  /// Quantile q in [0, 1], linear interpolation between order statistics.
  double percentile(double q) const;
  double median() const { return percentile(0.5); }

  const std::vector<double>& values() const noexcept { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-bin integer histogram (e.g. gap-size distributions).
class Histogram {
 public:
  void add(std::int64_t value);
  std::size_t count(std::int64_t value) const;
  std::size_t total() const noexcept { return total_; }
  std::int64_t min_value() const;
  std::int64_t max_value() const;
  /// Pairs (value, count) for all values with nonzero count, ascending.
  std::vector<std::pair<std::int64_t, std::size_t>> entries() const;

 private:
  std::vector<std::pair<std::int64_t, std::size_t>> sorted_entries() const;
  // Sparse representation: values are usually small but can be outliers.
  std::vector<std::pair<std::int64_t, std::size_t>> bins_;
  std::size_t total_ = 0;
};

/// "12.3 [4.5, 67.8]" style formatting used in bench output.
std::string format_with_range(double mid, double lo, double hi, int precision = 1);

}  // namespace ct::support

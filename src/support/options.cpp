#include "support/options.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace ct::support {

namespace {

bool is_truthy(const std::string& value) {
  return value.empty() || value == "1" || value == "true" || value == "yes" ||
         value == "on";
}

}  // namespace

std::string env_name_for(const std::string& option) {
  std::string env = "CT_";
  for (char ch : option) {
    env += (ch == '-') ? '_' : static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
  }
  return env;
}

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) throw std::invalid_argument("bare '--' is not a valid option");
    if (auto eq = arg.find('='); eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // Space-separated values are accepted for numeric arguments only
    // ("--reps 100"); string values must use the '=' form ("--tree=lame:2")
    // so that bare flags followed by positional arguments stay unambiguous.
    const bool next_is_numeric = [&] {
      if (i + 1 >= argc) return false;
      const std::string next = argv[i + 1];
      if (next.empty()) return false;
      std::size_t start = (next[0] == '-' || next[0] == '+') ? 1 : 0;
      if (start == next.size()) return false;
      for (std::size_t pos = start; pos < next.size(); ++pos) {
        if (!std::isdigit(static_cast<unsigned char>(next[pos])) && next[pos] != '.') {
          return false;
        }
      }
      return true;
    }();
    if (next_is_numeric) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";  // flag form
    }
  }
}

std::optional<std::string> Options::lookup(const std::string& name) const {
  if (auto it = values_.find(name); it != values_.end()) return it->second;
  if (const char* env = std::getenv(env_name_for(name).c_str())) {
    return std::string(env);
  }
  return std::nullopt;
}

bool Options::has(const std::string& name) const { return lookup(name).has_value(); }

std::int64_t Options::get_int(const std::string& name, std::int64_t fallback) const {
  auto value = lookup(name);
  if (!value) return fallback;
  std::size_t pos = 0;
  const std::int64_t parsed = std::stoll(*value, &pos);
  if (pos != value->size()) {
    throw std::invalid_argument("option --" + name + " expects an integer, got '" +
                                *value + "'");
  }
  return parsed;
}

double Options::get_double(const std::string& name, double fallback) const {
  auto value = lookup(name);
  if (!value) return fallback;
  std::size_t pos = 0;
  const double parsed = std::stod(*value, &pos);
  if (pos != value->size()) {
    throw std::invalid_argument("option --" + name + " expects a number, got '" +
                                *value + "'");
  }
  return parsed;
}

std::string Options::get_string(const std::string& name,
                                const std::string& fallback) const {
  return lookup(name).value_or(fallback);
}

bool Options::get_flag(const std::string& name) const {
  auto value = lookup(name);
  return value && is_truthy(*value);
}

void Options::set(const std::string& name, const std::string& value) {
  values_[name] = value;
}

}  // namespace ct::support

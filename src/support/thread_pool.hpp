#pragma once
// Small fixed-size thread pool used to spread replicated simulations over
// available cores. Replications are embarrassingly parallel (independent
// seeds); scheduling is work-stealing off a shared atomic counter in
// fixed-size chunks, so one fault-heavy block no longer stalls the whole
// sweep the way a static partition did. Chunk boundaries are a pure
// function of (count, chunk), which lets callers keep deterministic
// block-ordered reductions regardless of which worker ran which chunk.

#include <cstddef>
#include <functional>

namespace ct::support {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  std::size_t size() const noexcept { return threads_; }

  /// Runs body(i) for i in [0, count). Iterations are grabbed in chunks of
  /// auto-selected size by whichever worker is free. Blocks until all
  /// iterations complete. Exceptions from the body propagate (the first
  /// one observed is rethrown; remaining chunks are abandoned).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body) const;

  /// Work-stealing core: runs body(worker, begin, end) for consecutive
  /// chunks [k*chunk, min((k+1)*chunk, count)), k = 0, 1, ... Each chunk is
  /// executed by exactly one worker (`worker` < size()); chunk k is always
  /// the same index range, so per-chunk partial results merged in k order
  /// are identical to a serial pass. chunk == 0 selects default_chunk().
  void parallel_for_chunks(
      std::size_t count, std::size_t chunk,
      const std::function<void(std::size_t worker, std::size_t begin, std::size_t end)>&
          body) const;

  /// Default steal-granularity: ~8 grabs per worker, so a slow chunk (e.g.
  /// a fault-heavy replication block) overlaps the rest of the sweep.
  static std::size_t default_chunk(std::size_t count, std::size_t workers) noexcept;

 private:
  std::size_t threads_;
};

}  // namespace ct::support

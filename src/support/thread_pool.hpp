#pragma once
// Small fixed-size thread pool used to spread replicated simulations over
// available cores. Replications are embarrassingly parallel (independent
// seeds), so a static block partition is sufficient and keeps results
// deterministic regardless of scheduling.

#include <cstddef>
#include <functional>

namespace ct::support {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  std::size_t size() const noexcept { return threads_; }

  /// Runs body(i) for i in [0, count), partitioned into contiguous blocks,
  /// one per worker. Blocks until all iterations complete. Exceptions from
  /// the body propagate (the first one observed is rethrown).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body) const;

 private:
  std::size_t threads_;
};

}  // namespace ct::support

#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ct::support {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::prefix() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // "key": <here> — no comma, the key already placed one
  }
  if (stack_.empty()) {
    if (!out_.empty()) throw std::logic_error("JsonWriter: two top-level values");
    return;
  }
  Level& level = stack_.back();
  if (!level.empty) out_ += ',';
  level.empty = false;
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

JsonWriter& JsonWriter::begin_object() {
  prefix();
  stack_.push_back(Level{});
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix();
  stack_.push_back(Level{true, true});
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().array || key_pending_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  const bool had_members = !stack_.back().empty;
  stack_.pop_back();
  if (had_members) {
    out_ += '\n';
    out_.append(stack_.size() * 2, ' ');
  }
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || !stack_.back().array || key_pending_) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  const bool had_members = !stack_.back().empty;
  stack_.pop_back();
  if (had_members) {
    out_ += '\n';
    out_.append(stack_.size() * 2, ' ');
  }
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back().array || key_pending_) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  prefix();
  out_ += '"';
  out_ += escape(name);
  out_ += "\": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  prefix();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  prefix();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t x) {
  prefix();
  out_ += std::to_string(x);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t x) {
  prefix();
  out_ += std::to_string(x);
  return *this;
}

JsonWriter& JsonWriter::value(double x, int precision) {
  prefix();
  if (!std::isfinite(x)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, x);
  out_ += buf;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!stack_.empty() || key_pending_) {
    throw std::logic_error("JsonWriter: unbalanced document");
  }
  return out_;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string& text = str();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace ct::support

#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ct::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("row width does not match header width");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { separators_.push_back(rows_.size()); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto print_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      out << std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) out << '+';
    }
    out << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << std::setw(static_cast<int>(width[c])) << cells[c] << ' ';
      if (c + 1 < cells.size()) out << '|';
    }
    out << '\n';
  };

  print_cells(header_);
  print_rule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) != separators_.end() &&
        r != 0) {
      print_rule();
    }
    print_cells(rows_[r]);
  }
}

void Table::print_csv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string fmt_int(long long value) { return std::to_string(value); }

}  // namespace ct::support

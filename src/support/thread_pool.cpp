#include "support/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace ct::support {

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads != 0 ? threads
                            : std::max<std::size_t>(1, std::thread::hardware_concurrency())) {}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) const {
  if (count == 0) return;
  const std::size_t workers = std::min(threads_, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::jthread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (count + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(begin + chunk, count);
    if (begin >= end) break;
    pool.emplace_back([&, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.clear();  // join
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ct::support

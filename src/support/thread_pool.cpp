#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace ct::support {

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads != 0 ? threads
                            : std::max<std::size_t>(1, std::thread::hardware_concurrency())) {}

std::size_t ThreadPool::default_chunk(std::size_t count, std::size_t workers) noexcept {
  if (workers <= 1) return std::max<std::size_t>(count, 1);
  return std::max<std::size_t>(1, count / (workers * 8));
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) const {
  parallel_for_chunks(count, 0,
                      [&body](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) body(i);
                      });
}

void ThreadPool::parallel_for_chunks(
    std::size_t count, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) const {
  if (count == 0) return;
  if (chunk == 0) chunk = default_chunk(count, threads_);
  const std::size_t blocks = (count + chunk - 1) / chunk;
  const std::size_t workers = std::min(threads_, blocks);
  if (workers <= 1) {
    for (std::size_t b = 0; b < blocks; ++b) {
      body(0, b * chunk, std::min((b + 1) * chunk, count));
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::jthread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t b = next.fetch_add(1, std::memory_order_relaxed);
        if (b >= blocks) break;
        try {
          body(w, b * chunk, std::min((b + 1) * chunk, count));
        } catch (...) {
          const std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  pool.clear();  // join
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ct::support

#pragma once
// Minimal CLI + environment option handling shared by benches and examples.
//
// Conventions: `--name=value` always works; `--name value` works for
// numeric values only (a non-numeric token after `--name` keeps `--name` a
// bare flag and the token positional). An
// environment variable CT_<NAME> (upper-cased, dashes to underscores)
// provides a default that the command line overrides. This lets the single
// command `for b in build/bench/*; do $b; done` run everything at a reduced
// default scale while CT_PROCS / CT_REPS restore paper scale globally.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ct::support {

class Options {
 public:
  Options() = default;
  /// Parses argv; throws std::invalid_argument for malformed input.
  Options(int argc, char** argv);

  /// Value lookup order: command line, then CT_<NAME> env, then fallback.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::string get_string(const std::string& name, const std::string& fallback) const;
  /// A flag is set by `--name` (no value), `--name=true/1`, or env =1/true.
  bool get_flag(const std::string& name) const;

  bool has(const std::string& name) const;

  /// Positional (non-option) arguments in order of appearance.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// For tests: inject a value as if given on the command line.
  void set(const std::string& name, const std::string& value);

 private:
  std::optional<std::string> lookup(const std::string& name) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Env var name for an option: "procs" -> "CT_PROCS".
std::string env_name_for(const std::string& option);

}  // namespace ct::support

#pragma once
// Deterministic, fast pseudo-random number generation for reproducible
// experiments. The paper stresses that "all our simulations are fully
// reproducible as we keep the random generator seed of every experiment";
// every replication in this repo derives its stream from (base_seed, rep)
// via SplitMix64 so runs are stable across platforms and thread schedules.

#include <array>
#include <cstdint>
#include <limits>

namespace ct::support {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used to expand seeds and as
/// a standalone generator for seed derivation.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derive a child seed from a base seed and a stream index. Statistically
/// independent streams for replicated experiments.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) noexcept {
  SplitMix64 mix(base ^ (0xa0761d6478bd642fULL * (stream + 1)));
  mix.next();
  return mix.next();
}

/// xoshiro256**: the workhorse generator. Satisfies the C++ named
/// requirement UniformRandomBitGenerator, so it can drive <random>
/// distributions, but the members below avoid libstdc++ distribution
/// overhead in hot loops.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound), bound > 0. Lemire's nearly-divisionless
  /// method; unbiased.
  std::uint64_t below(std::uint64_t bound) noexcept {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double unit() noexcept { return ((*this)() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return unit() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ct::support

#pragma once
// Minimal streaming JSON writer shared by the bench/report tooling (the
// BENCH_*.json emitters used to be hand-rolled fprintf chains in
// tools/bench_report.cpp; this centralises escaping, comma placement and
// nesting). No DOM: keys appear in exactly the order the caller emits them,
// which keeps report diffs stable across runs and PRs.
//
//   support::JsonWriter w;
//   w.begin_object()
//     .field("procs", std::int64_t{1024})
//     .key("rows").begin_array()
//       ... w.begin_object().field(...).end_object(); ...
//     .end_array()
//   .end_object();
//   w.write_file("BENCH.json");

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ct::support {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool b);
  JsonWriter& value(std::int64_t x);
  JsonWriter& value(std::uint64_t x);
  JsonWriter& value(int x) { return value(static_cast<std::int64_t>(x)); }
  /// Fixed-point with `precision` fractional digits (matching the old
  /// fprintf "%.Nf" cells). Non-finite values become null — JSON has no NaN.
  JsonWriter& value(double x, int precision = 6);

  JsonWriter& field(std::string_view k, std::string_view v) { return key(k).value(v); }
  JsonWriter& field(std::string_view k, const char* v) { return key(k).value(v); }
  JsonWriter& field(std::string_view k, bool v) { return key(k).value(v); }
  JsonWriter& field(std::string_view k, std::int64_t v) { return key(k).value(v); }
  JsonWriter& field(std::string_view k, std::uint64_t v) { return key(k).value(v); }
  JsonWriter& field(std::string_view k, int v) { return key(k).value(v); }
  JsonWriter& field(std::string_view k, double v, int precision = 6) {
    return key(k).value(v, precision);
  }

  /// The document so far. Throws std::logic_error if containers are still
  /// open (an unbalanced writer is a bug, not a formatting choice).
  const std::string& str() const;

  /// Writes str() plus a trailing newline; returns false on I/O failure.
  bool write_file(const std::string& path) const;

  /// JSON string escaping (quotes not included) — exposed for tests.
  static std::string escape(std::string_view text);

 private:
  void prefix();  // comma/newline/indent bookkeeping before any element
  void raw(std::string_view text) { out_.append(text); }

  struct Level {
    bool array = false;
    bool empty = true;
  };
  std::string out_;
  std::vector<Level> stack_;
  bool key_pending_ = false;
};

}  // namespace ct::support

#include "protocol/ack_tree.hpp"

#include <stdexcept>

namespace ct::proto {

using sim::Message;
using topo::Rank;

AckTreeBroadcast::AckTreeBroadcast(const topo::Tree& tree, AckScratch* scratch,
                                   std::int32_t chunks)
    : tree_(tree),
      chunks_(chunks),
      all_mask_(chunks == 64 ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << (chunks >= 1 && chunks < 64 ? chunks : 1)) - 1),
      state_(owned_scratch_, scratch, tree.num_procs()) {
  if (chunks < 1 || chunks > 64) {
    throw std::invalid_argument("ack-tree broadcast: chunks must be in [1, 64]");
  }
  if (chunks_ > 1) seen_.assign(static_cast<std::size_t>(tree.num_procs()), 0);
}

void AckTreeBroadcast::begin(sim::Context& ctx) {
  const Rank root = tree_.root();
  ctx.mark_colored(root);
  AckCell& cell = state_[root];
  cell.started = 1;
  if (chunks_ > 1) seen_[static_cast<std::size_t>(root)] = all_mask_;
  const auto children = tree_.children(root);
  cell.pending_acks = static_cast<std::int32_t>(children.size());
  // Chunk-major, like the corrected tree: chunk 0 reaches every subtree
  // before the root pays the injection cost of chunk 1.
  for (std::int64_t c = 0; c < chunks_; ++c) {
    for (Rank child : children) {
      ctx.send(root, child, sim::tag::kTree, c);
    }
  }
  maybe_ack(ctx, root);
}

void AckTreeBroadcast::take_chunk(sim::Context& ctx, Rank me, std::int64_t chunk) {
  AckCell& cell = state_[me];
  if (chunks_ == 1) {
    // Whole-message fast path: `started` doubles as the duplicate-delivery
    // guard — only ranks that are sent kTree can see rt-chaos duplicates,
    // and for them started flips exactly on first receipt.
    if (cell.started) return;
    cell.started = 1;
    cell.pending_acks = static_cast<std::int32_t>(tree_.children(me).size());
    ctx.mark_colored(me);
    for (Rank child : tree_.children(me)) {
      ctx.send(me, child, sim::tag::kTree, chunk);
    }
    maybe_ack(ctx, me);
    return;
  }
  std::uint64_t& seen = seen_[static_cast<std::size_t>(me)];
  const std::uint64_t bit = std::uint64_t{1} << chunk;
  if (seen & bit) return;  // duplicate delivery (rt chaos)
  seen |= bit;
  if (!cell.started) {
    cell.started = 1;
    cell.pending_acks = static_cast<std::int32_t>(tree_.children(me).size());
  }
  if (seen == all_mask_) ctx.mark_colored(me);
  for (Rank child : tree_.children(me)) {
    ctx.send(me, child, sim::tag::kTree, chunk);
  }
  maybe_ack(ctx, me);
}

void AckTreeBroadcast::maybe_ack(sim::Context& ctx, Rank me) {
  AckCell& cell = state_[me];
  const bool complete =
      chunks_ == 1 ? cell.started != 0
                   : seen_[static_cast<std::size_t>(me)] == all_mask_;
  if (cell.acked || !complete || cell.pending_acks != 0) return;
  cell.acked = 1;
  ack_received(ctx, me);
}

void AckTreeBroadcast::ack_received(sim::Context& ctx, Rank me) {
  if (me == tree_.root()) {
    root_acknowledged_ = true;
    return;
  }
  ctx.send(me, tree_.parent(me), sim::tag::kAck, 0);
}

void AckTreeBroadcast::on_receive(sim::Context& ctx, Rank me, const Message& msg) {
  switch (msg.tag) {
    case sim::tag::kTree:
      take_chunk(ctx, me, chunks_ > 1 ? msg.payload : 0);
      break;
    case sim::tag::kAck:
      if (--state_[me].pending_acks == 0) {
        maybe_ack(ctx, me);
      }
      break;
    default:
      throw std::logic_error("unexpected message tag in ack-tree broadcast");
  }
}

void AckTreeBroadcast::on_sent(sim::Context&, Rank, const Message&) {}

}  // namespace ct::proto

#include "protocol/ack_tree.hpp"

#include <stdexcept>

namespace ct::proto {

using sim::Message;
using topo::Rank;

AckTreeBroadcast::AckTreeBroadcast(const topo::Tree& tree, AckScratch* scratch)
    : tree_(tree), state_(owned_scratch_, scratch, tree.num_procs()) {}

void AckTreeBroadcast::begin(sim::Context& ctx) {
  ctx.mark_colored(tree_.root());
  color(ctx, tree_.root());
}

void AckTreeBroadcast::color(sim::Context& ctx, Rank me) {
  AckCell& cell = state_[me];
  if (cell.started) return;
  cell.started = 1;
  const auto children = tree_.children(me);
  cell.pending_acks = static_cast<std::int32_t>(children.size());
  if (children.empty()) {
    // Leaf: acknowledge immediately (the root of a single-process tree is
    // trivially acknowledged).
    ack_received(ctx, me);
    return;
  }
  for (Rank child : children) {
    ctx.send(me, child, sim::tag::kTree, 0);
  }
}

void AckTreeBroadcast::ack_received(sim::Context& ctx, Rank me) {
  if (me == tree_.root()) {
    root_acknowledged_ = true;
    return;
  }
  ctx.send(me, tree_.parent(me), sim::tag::kAck, 0);
}

void AckTreeBroadcast::on_receive(sim::Context& ctx, Rank me, const Message& msg) {
  switch (msg.tag) {
    case sim::tag::kTree:
      ctx.mark_colored(me);
      color(ctx, me);
      break;
    case sim::tag::kAck:
      if (--state_[me].pending_acks == 0) {
        ack_received(ctx, me);
      }
      break;
    default:
      throw std::logic_error("unexpected message tag in ack-tree broadcast");
  }
}

void AckTreeBroadcast::on_sent(sim::Context&, Rank, const Message&) {}

}  // namespace ct::proto

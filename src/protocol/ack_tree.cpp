#include "protocol/ack_tree.hpp"

#include <stdexcept>

namespace ct::proto {

using sim::Message;
using topo::Rank;

AckTreeBroadcast::AckTreeBroadcast(const topo::Tree& tree)
    : tree_(tree),
      pending_acks_(static_cast<std::size_t>(tree.num_procs()), 0),
      started_(static_cast<std::size_t>(tree.num_procs()), 0) {}

void AckTreeBroadcast::begin(sim::Context& ctx) {
  ctx.mark_colored(tree_.root());
  color(ctx, tree_.root());
}

void AckTreeBroadcast::color(sim::Context& ctx, Rank me) {
  if (started_[static_cast<std::size_t>(me)]) return;
  started_[static_cast<std::size_t>(me)] = 1;
  const auto children = tree_.children(me);
  pending_acks_[static_cast<std::size_t>(me)] = static_cast<std::int32_t>(children.size());
  if (children.empty()) {
    // Leaf: acknowledge immediately (the root of a single-process tree is
    // trivially acknowledged).
    ack_received(ctx, me);
    return;
  }
  for (Rank child : children) {
    ctx.send(me, child, sim::tag::kTree, 0);
  }
}

void AckTreeBroadcast::ack_received(sim::Context& ctx, Rank me) {
  if (me == tree_.root()) {
    root_acknowledged_ = true;
    return;
  }
  ctx.send(me, tree_.parent(me), sim::tag::kAck, 0);
}

void AckTreeBroadcast::on_receive(sim::Context& ctx, Rank me, const Message& msg) {
  switch (msg.tag) {
    case sim::tag::kTree:
      ctx.mark_colored(me);
      color(ctx, me);
      break;
    case sim::tag::kAck:
      if (--pending_acks_[static_cast<std::size_t>(me)] == 0) {
        ack_received(ctx, me);
      }
      break;
    default:
      throw std::logic_error("unexpected message tag in ack-tree broadcast");
  }
}

void AckTreeBroadcast::on_sent(sim::Context&, Rank, const Message&) {}

}  // namespace ct::proto

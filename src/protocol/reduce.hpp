#pragma once
// Corrected reduction — the §1 extension ("applying correction before
// dissemination allows to create a reduction tree"). This instantiates the
// idea for idempotent, commutative operators (max here; any such operator
// works because ring backups may deliver a contribution more than once):
//
//  Phase 1 (correction first): every live process sends its contribution to
//  its `distance` nearest right neighbours on the ring, so each value is
//  replicated across `distance + 1` consecutive ring positions.
//
//  Phase 2 (dissemination tree in reverse): contributions flow leaf-to-root
//  along the tree. LogP tree schedules are deterministic, so a parent knows
//  the latest instant a live child's aggregate can arrive and forwards its
//  own aggregate on a timer — no failure detector, mirroring the broadcast's
//  philosophy. A dead process simply contributes nothing; values of live
//  processes whose tree path crosses a dead ancestor still reach the root
//  through a ring replica whose path is intact.
//
// Guarantee (tested): the root computes max over all live contributions if
// for every live process x some replica holder y in {x, x+1, ..., x+distance}
// is live with an all-live tree path to the root. With an interleaved tree
// this holds for any `failures <= distance` placed below the root's children
// — the same structural argument as §3.2.1's k-ary tolerance bound.

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/logp.hpp"
#include "sim/protocol.hpp"
#include "topology/ring.hpp"
#include "topology/tree.hpp"

namespace ct::proto {

struct ReduceConfig {
  int distance = 1;  ///< ring replication distance (phase 1)
};

class CorrectedReduce final : public sim::Protocol {
 public:
  /// `values[r]` is rank r's contribution. `params` must match the
  /// simulator's LogP parameters (used to derive the phase-2 timetable).
  CorrectedReduce(const topo::Tree& tree, const sim::LogP& params,
                  std::vector<std::int64_t> values, ReduceConfig config);

  void begin(sim::Context& ctx) override;
  void on_receive(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_sent(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_timer(sim::Context& ctx, topo::Rank me, std::int64_t id) override;

  /// Root's result; valid after the run (kInt64Min when nothing arrived,
  /// which cannot happen while the root is alive).
  std::int64_t result() const noexcept { return accumulator_[0]; }
  bool root_done() const noexcept { return root_done_; }

  /// The instant rank r forwards its aggregate to its parent.
  sim::Time forward_deadline(topo::Rank r) const;

  /// Optional hook invoked (once) when the root's aggregate is final —
  /// CorrectedAllReduce chains the result broadcast here.
  void set_on_root_done(std::function<void(sim::Context&, std::int64_t)> hook) {
    on_root_done_ = std::move(hook);
  }

 private:
  void send_next_replica(sim::Context& ctx, topo::Rank me);

  const topo::Tree& tree_;
  sim::LogP params_;
  topo::Ring ring_;
  ReduceConfig config_;

  std::vector<std::int64_t> accumulator_;
  std::vector<std::int64_t> replicas_sent_;
  std::vector<int> subtree_height_;
  std::function<void(sim::Context&, std::int64_t)> on_root_done_;
  bool root_done_ = false;
};

}  // namespace ct::proto

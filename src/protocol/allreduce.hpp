#pragma once
// Corrected all-reduce and barrier — the paper's §1/§6 claim made concrete:
// "Using these two basic phases, a variety of reliable MPI collectives can
// be built, e.g., applying correction before dissemination allows to create
// a reduction tree."
//
// CorrectedAllReduce composes the two existing collectives:
//   phase 1: CorrectedReduce — ring replication ("correction before
//            dissemination") followed by a deadline-driven tree gather; the
//            root ends up with the reduction over all live contributions
//            (idempotent max, see reduce.hpp for the guarantee);
//   phase 2: CorrectedTreeBroadcast — the root broadcasts the result with
//            ordinary tree dissemination + ring correction, so every live
//            process learns it despite failures.
//
// A process is "colored" when it holds the final result; RunResult's
// coloring metrics therefore read exactly like a broadcast's.
//
// CorrectedBarrier is the degenerate all-reduce (contributions ignored):
// completion of phase 2 certifies that phase 1's deadline passed on every
// live process, i.e. all live processes entered the barrier.

#include <memory>

#include "protocol/reduce.hpp"
#include "protocol/tree_broadcast.hpp"

namespace ct::proto {

struct AllReduceConfig {
  /// Ring replication distance of the gather phase.
  ReduceConfig reduce{};
  /// Correction used by the result broadcast. Synchronized correction needs
  /// sync_time >= the gather deadline + dissemination span; the default
  /// overlapped opportunistic correction needs no timing knowledge.
  CorrectionConfig correction{};
};

class CorrectedAllReduce final : public sim::Protocol {
 public:
  /// `values[r]` is rank r's contribution; the result is max over live
  /// ranks' contributions (under the reduce-phase guarantee).
  CorrectedAllReduce(const topo::Tree& tree, const sim::LogP& params,
                     std::vector<std::int64_t> values, AllReduceConfig config);

  void begin(sim::Context& ctx) override;
  void on_receive(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_sent(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_timer(sim::Context& ctx, topo::Rank me, std::int64_t id) override;

  /// The reduction result as known at the root (valid after the run).
  std::int64_t result() const noexcept { return reduce_.result(); }
  bool reduction_done() const noexcept { return reduce_.root_done(); }

 private:
  CorrectedReduce reduce_;
  CorrectedTreeBroadcast broadcast_;
};

class CorrectedBarrier final : public sim::Protocol {
 public:
  CorrectedBarrier(const topo::Tree& tree, const sim::LogP& params,
                   AllReduceConfig config = {});

  void begin(sim::Context& ctx) override;
  void on_receive(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_sent(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_timer(sim::Context& ctx, topo::Rank me, std::int64_t id) override;

  /// True once the root observed the gather deadline — all live processes
  /// reached the barrier. Release coloring is in the run metrics.
  bool released() const noexcept { return inner_.reduction_done(); }

 private:
  CorrectedAllReduce inner_;
};

}  // namespace ct::proto

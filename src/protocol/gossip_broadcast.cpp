#include "protocol/gossip_broadcast.hpp"

#include <stdexcept>

namespace ct::proto {

using sim::Message;
using topo::Rank;

CorrectedGossipBroadcast::CorrectedGossipBroadcast(Rank num_procs, GossipConfig config,
                                                   GossipScratch* scratch,
                                                   CorrectionScratch* correction_scratch)
    : num_procs_(num_procs),
      config_(config),
      owned_engine_(correction_scratch
                        ? nullptr
                        : make_correction_engine(config.correction, num_procs, nullptr)),
      engine_(correction_scratch
                  ? acquire_correction_engine(config.correction, num_procs,
                                              *correction_scratch)
                  : owned_engine_.get()),
      state_(owned_scratch_, scratch, num_procs) {
  if (config_.budget == GossipConfig::Budget::kTime && config_.gossip_time <= 0) {
    throw std::invalid_argument("time-based gossip needs gossip_time > 0");
  }
  if (config_.budget == GossipConfig::Budget::kRounds && config_.gossip_rounds <= 0) {
    throw std::invalid_argument("round-based gossip needs gossip_rounds > 0");
  }
  if (config_.correction.kind != CorrectionKind::kNone &&
      config_.budget == GossipConfig::Budget::kTime &&
      config_.correction.start != CorrectionStart::kSynchronized) {
    throw std::invalid_argument(
        "time-based Corrected Gossip synchronizes correction at the gossip deadline");
  }
}

void CorrectedGossipBroadcast::begin(sim::Context& ctx) {
  if (config_.budget == GossipConfig::Budget::kTime) {
    // Global deadline: every (live) process checks in at gossip_time; the
    // then-colored ones enter correction together.
    for (Rank r = 0; r < num_procs_; ++r) {
      ctx.set_timer(r, config_.gossip_time, sim::timer::kGossipDeadline);
    }
  }
  ctx.set_rank_data(0, config_.payload);
  ctx.mark_colored(0);
  start_gossip(ctx, 0, 0);
}

void CorrectedGossipBroadcast::start_gossip(sim::Context& ctx, Rank me,
                                            std::int64_t round) {
  GossipCell& cell = state_[me];
  if (cell.colored) return;
  cell.colored = 1;
  cell.round = round;
  if (num_procs_ < 2) {
    if (config_.budget == GossipConfig::Budget::kRounds) enter_correction(ctx, me);
    return;
  }
  if (config_.budget == GossipConfig::Budget::kRounds &&
      round >= config_.gossip_rounds) {
    enter_correction(ctx, me);
    return;
  }
  gossip_send(ctx, me);
}

void CorrectedGossipBroadcast::gossip_send(sim::Context& ctx, Rank me) {
  // Uniform random target other than ourselves; the sender cannot know
  // whether the target is colored or even alive (§2.2). The draw is a pure
  // hash of (seed, me, round) rather than a shared generator: under the
  // sharded rt executor, ranks gossip concurrently from different worker
  // threads, so mutable shared RNG state would be a data race — and would
  // make the target sequence depend on thread interleaving. Hashing keeps
  // the sequence identical across substrates and worker counts (the same
  // discipline rt::ChaosPlan uses for its schedules).
  const std::int64_t round = ++state_[me].round;
  const std::uint64_t word = support::SplitMix64(support::derive_seed(
      config_.seed, (static_cast<std::uint64_t>(me) << 32) ^
                        static_cast<std::uint64_t>(round))).next();
  const auto bound = static_cast<std::uint64_t>(num_procs_) - 1;
  const auto offset = 1 + static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(word) * bound) >> 64);
  const Rank target = static_cast<Rank>(
      (static_cast<std::int64_t>(me) + static_cast<std::int64_t>(offset)) % num_procs_);
  ctx.send(me, target, sim::tag::kGossip, round);
}

void CorrectedGossipBroadcast::enter_correction(sim::Context& ctx, Rank me) {
  GossipCell& cell = state_[me];
  if (cell.in_correction) return;
  cell.in_correction = 1;
  ctx.note_correction_start();
  if (engine_) engine_->start(ctx, me);
}

void CorrectedGossipBroadcast::on_receive(sim::Context& ctx, Rank me, const Message& msg) {
  switch (msg.tag) {
    case sim::tag::kGossip: {
      const bool first = !ctx.is_colored(me);
      if (first) ctx.set_rank_data(me, msg.data);
      ctx.mark_colored(me);
      if (!first) return;
      if (config_.budget == GossipConfig::Budget::kTime) {
        if (ctx.now() < config_.gossip_time) start_gossip(ctx, me, msg.payload);
        // Colored after the deadline: stays a passive receiver.
      } else {
        start_gossip(ctx, me, msg.payload);
      }
      break;
    }
    case sim::tag::kCorrection:
    case sim::tag::kCorrReply:
      if (msg.tag == sim::tag::kCorrection && !ctx.is_colored(me)) {
        ctx.set_rank_data(me, msg.data);
      }
      if (engine_) engine_->on_message(ctx, me, msg);
      break;
    default:
      throw std::logic_error("unexpected message tag in corrected gossip broadcast");
  }
}

void CorrectedGossipBroadcast::on_sent(sim::Context& ctx, Rank me, const Message& msg) {
  if (msg.tag == sim::tag::kGossip) {
    if (config_.budget == GossipConfig::Budget::kTime) {
      if (ctx.now() < config_.gossip_time) gossip_send(ctx, me);
    } else {
      if (state_[me].round < config_.gossip_rounds) {
        gossip_send(ctx, me);
      } else {
        enter_correction(ctx, me);
      }
    }
    return;
  }
  if (engine_) engine_->on_sent(ctx, me, msg);
}

void CorrectedGossipBroadcast::on_timer(sim::Context& ctx, Rank me, std::int64_t id) {
  if (id == sim::timer::kGossipDeadline) {
    ctx.note_correction_start();
    if (ctx.is_colored(me)) enter_correction(ctx, me);
    return;
  }
  if (engine_) engine_->on_timer(ctx, me, id);
}

}  // namespace ct::proto

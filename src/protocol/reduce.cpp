#include "protocol/reduce.hpp"

#include <algorithm>
#include <stdexcept>

namespace ct::proto {

using sim::Message;
using topo::Rank;

namespace {
constexpr std::int64_t kReduceForwardTimer = 100;
}

CorrectedReduce::CorrectedReduce(const topo::Tree& tree, const sim::LogP& params,
                                 std::vector<std::int64_t> values, ReduceConfig config)
    : tree_(tree),
      params_(params),
      ring_(tree.num_procs()),
      config_(config),
      accumulator_(std::move(values)),
      replicas_sent_(static_cast<std::size_t>(tree.num_procs()), 0),
      subtree_height_(static_cast<std::size_t>(tree.num_procs()), 0) {
  if (config_.distance < 0) throw std::invalid_argument("replication distance must be >= 0");
  if (static_cast<Rank>(accumulator_.size()) != tree.num_procs()) {
    throw std::invalid_argument("one contribution per rank required");
  }
  // Subtree heights, bottom-up: process ranks grouped by decreasing depth.
  std::vector<Rank> order(static_cast<std::size_t>(tree.num_procs()));
  for (Rank r = 0; r < tree.num_procs(); ++r) order[static_cast<std::size_t>(r)] = r;
  std::sort(order.begin(), order.end(),
            [&](Rank a, Rank b) { return tree.depth(a) > tree.depth(b); });
  for (Rank r : order) {
    if (r == tree.root()) continue;
    auto& parent_height = subtree_height_[static_cast<std::size_t>(tree.parent(r))];
    parent_height = std::max(parent_height, subtree_height_[static_cast<std::size_t>(r)] + 1);
  }
}

sim::Time CorrectedReduce::forward_deadline(Rank r) const {
  // Phase 1 finishes once every replica send completed and arrived:
  // `distance` back-to-back sends, the last landing after 2o+L more, plus
  // up to `distance` incoming replicas serialising on the receive port.
  const sim::Time phase1 =
      2 * static_cast<sim::Time>(config_.distance) * params_.port_period() +
      params_.message_cost();
  // Per tree level: a child forwards at its own deadline; the message takes
  // 2o+L, and up to max_fanout sibling arrivals serialise on the parent's
  // receive port.
  const sim::Time step =
      params_.message_cost() +
      static_cast<sim::Time>(tree_.max_fanout()) * params_.port_period();
  return phase1 + static_cast<sim::Time>(subtree_height_[static_cast<std::size_t>(r)] + 1) * step;
}

void CorrectedReduce::begin(sim::Context& ctx) {
  for (Rank r = 0; r < tree_.num_procs(); ++r) {
    // Phase 1: replicate the own contribution rightwards.
    if (config_.distance > 0 && tree_.num_procs() > 1) {
      send_next_replica(ctx, r);
    }
    // Phase 2 trigger: forward the aggregate at the deterministic deadline.
    ctx.set_timer(r, forward_deadline(r), kReduceForwardTimer);
  }
}

void CorrectedReduce::send_next_replica(sim::Context& ctx, Rank me) {
  auto& sent = replicas_sent_[static_cast<std::size_t>(me)];
  const std::int64_t limit =
      std::min<std::int64_t>(config_.distance, ring_.num_procs() - 1);
  if (sent >= limit) return;
  ++sent;
  ctx.send(me, ring_.right(me, sent), sim::tag::kReduceRing,
           accumulator_[static_cast<std::size_t>(me)]);
}

void CorrectedReduce::on_receive(sim::Context&, Rank me, const Message& msg) {
  switch (msg.tag) {
    case sim::tag::kReduceRing:  // ring replica of a neighbour's contribution
    case sim::tag::kReduce: {    // child subtree aggregate
      auto& acc = accumulator_[static_cast<std::size_t>(me)];
      acc = std::max(acc, msg.payload);
      break;
    }
    default:
      throw std::logic_error("unexpected message tag in corrected reduce");
  }
}

void CorrectedReduce::on_sent(sim::Context& ctx, Rank me, const Message& msg) {
  // Chain the phase-1 replicas; note the replica carries the value as of its
  // send time, which already includes anything aggregated so far — harmless
  // (idempotent max) and strictly more informative.
  if (msg.tag == sim::tag::kReduceRing) send_next_replica(ctx, me);
}

void CorrectedReduce::on_timer(sim::Context& ctx, Rank me, std::int64_t id) {
  if (id != kReduceForwardTimer) return;
  if (me == tree_.root()) {
    root_done_ = true;
    ctx.mark_colored(me);  // reuse coloring to record the completion time
    if (on_root_done_) on_root_done_(ctx, accumulator_[0]);
    return;
  }
  ctx.send(me, tree_.parent(me), sim::tag::kReduce,
           accumulator_[static_cast<std::size_t>(me)]);
}

}  // namespace ct::proto

#pragma once
// Ring-correction engines (§3.1, §3.3). A CorrectionEngine implements the
// second phase of a corrected collective: once dissemination-colored
// processes enter correction (via start()), the engine exchanges messages on
// the ring until every live process is colored (subject to each algorithm's
// guarantee):
//
//  * Opportunistic(d)            — fixed d messages per direction; colors all
//    processes iff the maximum gap is at most 2d (both directions) or d
//    (left-only). No feedback, lowest overhead.
//  * Optimized opportunistic(d)  — same, but a received correction message
//    from j with j-d < i < j proves j covers down to j-d, so i skips the
//    overlap and only sends to {i-d, ..., j-d-1} (§3.3). The default for
//    Corrected Trees, as in the paper.
//  * Checked                     — unbounded alternating sends; a direction
//    stops once the process receives a message from that direction from a
//    process it has already sent to. Colors all live processes for any gap
//    size, provided no failures occur during correction.
//  * Failure-proof               — generalisation of checked: probes demand
//    replies; processes colored by correction relay the probe onward, and a
//    direction only stops after a reply from a dissemination-colored
//    participant or `redundancy` relay replies. Tolerates up to
//    `redundancy - 1` failures during the correction phase itself. (The
//    paper defers the concrete algorithm to Corrected Gossip [17]; this is
//    our implementation of that generalisation, see DESIGN.md §1.)
//  * Delayed                     — one message to the left; after `delay`
//    with no message from the right, probe rightward until one arrives.
//    Dissemination-colored processes reply to probes from the left to stop
//    the prober. One message per process in the fault-free case (§3.3).
//
// Engines are passive components driven by a broadcast protocol: the
// protocol routes kCorrection/kCorrReply receipts, send completions and
// timer events here. Processes colored *by correction* never initiate
// correction sends (no-duplicates masking; §2.1) — the failure-proof relay
// behaviour is the single, documented exception.

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "protocol/config.hpp"
#include "sim/message.hpp"
#include "sim/protocol.hpp"
#include "topology/ring.hpp"

namespace ct::proto {

namespace detail {

// Per-rank engine state, one POD per engine kind. Every struct leads with an
// epoch stamp so a reused state vector is invalidated in O(1) per run (bump
// the scratch epoch) and entries are lazily value-reset on first touch —
// the exact mechanism of sim::Workspace's RankState. The non-epoch defaults
// below are the protocol-visible initial state; the lazy reset reproduces
// them verbatim, so a reused vector is indistinguishable from a fresh one.

struct OpportunisticState {
  std::uint64_t epoch = 0;
  bool active = false;
  bool next_left = true;
  std::int64_t left_next = 1;
  std::int64_t right_next = 1;
};

struct CheckedState {
  std::uint64_t epoch = 0;
  bool active = false;
  bool next_left = true;
  std::int64_t left_next = 1;
  std::int64_t right_next = 1;
  bool left_stop = false;
  bool right_stop = false;
  std::int64_t left_stop_dist = std::numeric_limits<std::int64_t>::max();
  std::int64_t right_stop_dist = std::numeric_limits<std::int64_t>::max();
};

struct FailureProofState {
  std::uint64_t epoch = 0;
  bool participant = false;
  bool probe_left = false;
  bool probe_right = false;
  bool in_flight = false;
  bool next_left = true;
  std::int64_t left_next = 1;
  std::int64_t right_next = 1;
  bool left_stop = false;
  bool right_stop = false;
  int left_replies = 0;
  int right_replies = 0;
};

struct DelayedState {
  std::uint64_t epoch = 0;
  bool participant = false;
  bool got_from_right = false;
  bool probing = false;
  std::int64_t right_next = 1;
};

}  // namespace detail

class CorrectionEngine;

/// Reusable per-rank state buffers for the correction engines. A
/// make_correction_engine call binds the engine to the vector matching its
/// kind (growing it to P on first use) and bumps `epoch`, invalidating
/// whatever the previous run left behind without touching the O(P) entries.
/// exp::ReplicaPlan keeps one scratch per pool worker; at most one engine
/// drives the scratch at a time, so the four vectors never conflict.
///
/// The scratch also caches the engine object itself: across the reps of one
/// sweep cell the (config, P) pair never changes, so
/// acquire_correction_engine() can hand the same engine back after a reset()
/// instead of a per-rep make_unique — the last steady-state allocation on
/// the replication hot path (pinned by alloc_guard_test). The cache hands
/// the engine out serially: protocols sharing one scratch must not be alive
/// at the same time (the same contract the state vectors already impose).
struct CorrectionScratch {
  std::uint64_t epoch = 0;
  std::vector<detail::OpportunisticState> opportunistic;
  std::vector<detail::CheckedState> checked;
  std::vector<detail::FailureProofState> failure_proof;
  std::vector<detail::DelayedState> delayed;

  std::unique_ptr<CorrectionEngine> engine_cache;  // see acquire_correction_engine
  CorrectionConfig engine_config{};                // what the cache was built for
  topo::Rank engine_procs = 0;
};

class CorrectionEngine {
 public:
  explicit CorrectionEngine(topo::Rank num_procs) : ring_(num_procs) {}
  virtual ~CorrectionEngine() = default;

  /// Rank `me` (dissemination-colored) enters the correction phase.
  virtual void start(sim::Context& ctx, topo::Rank me) = 0;
  /// A kCorrection / kCorrReply message finished arriving at `me`.
  virtual void on_message(sim::Context& ctx, topo::Rank me, const sim::Message& msg) = 0;
  /// A correction-tagged send of `me` completed.
  virtual void on_sent(sim::Context& ctx, topo::Rank me, const sim::Message& msg) = 0;
  virtual void on_timer(sim::Context& ctx, topo::Rank me, std::int64_t id);

  /// Re-arms the engine for a fresh run over the same scratch: bumps the
  /// state epoch so every per-rank entry reads as freshly value-initialised
  /// again. Equivalent to constructing a new engine with the same arguments
  /// (that is all construction does beyond storing them). Drives the
  /// engine-reuse cache in CorrectionScratch.
  virtual void reset() = 0;

 protected:
  /// Signed ring offset of `other` as seen from `me`: positive = closer on
  /// the right (ties break right), negative = closer on the left.
  std::int64_t signed_offset(topo::Rank me, topo::Rank other) const;

  topo::Ring ring_;
};

/// Builds the engine described by `config` for a P-process ring. Returns
/// nullptr for CorrectionKind::kNone. With `scratch` non-null the engine
/// borrows its per-rank state vector from there (the caller keeps the
/// scratch alive for the engine's lifetime); otherwise it owns a private
/// one — behaviour is bit-identical either way.
std::unique_ptr<CorrectionEngine> make_correction_engine(const CorrectionConfig& config,
                                                         topo::Rank num_procs,
                                                         CorrectionScratch* scratch = nullptr);

/// Borrowing variant for the replication hot path: returns the scratch's
/// cached engine (after reset()) when (config, num_procs) match what the
/// cache was built for, else rebuilds the cache via make_correction_engine.
/// The scratch owns the engine; the pointer stays valid until the next
/// acquire with a different (config, num_procs) — callers on the ReplicaPlan
/// path hold it for exactly one replication. Returns nullptr for
/// CorrectionKind::kNone.
CorrectionEngine* acquire_correction_engine(const CorrectionConfig& config,
                                            topo::Rank num_procs,
                                            CorrectionScratch& scratch);

}  // namespace ct::proto

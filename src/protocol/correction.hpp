#pragma once
// Ring-correction engines (§3.1, §3.3). A CorrectionEngine implements the
// second phase of a corrected collective: once dissemination-colored
// processes enter correction (via start()), the engine exchanges messages on
// the ring until every live process is colored (subject to each algorithm's
// guarantee):
//
//  * Opportunistic(d)            — fixed d messages per direction; colors all
//    processes iff the maximum gap is at most 2d (both directions) or d
//    (left-only). No feedback, lowest overhead.
//  * Optimized opportunistic(d)  — same, but a received correction message
//    from j with j-d < i < j proves j covers down to j-d, so i skips the
//    overlap and only sends to {i-d, ..., j-d-1} (§3.3). The default for
//    Corrected Trees, as in the paper.
//  * Checked                     — unbounded alternating sends; a direction
//    stops once the process receives a message from that direction from a
//    process it has already sent to. Colors all live processes for any gap
//    size, provided no failures occur during correction.
//  * Failure-proof               — generalisation of checked: probes demand
//    replies; processes colored by correction relay the probe onward, and a
//    direction only stops after a reply from a dissemination-colored
//    participant or `redundancy` relay replies. Tolerates up to
//    `redundancy - 1` failures during the correction phase itself. (The
//    paper defers the concrete algorithm to Corrected Gossip [17]; this is
//    our implementation of that generalisation, see DESIGN.md §1.)
//  * Delayed                     — one message to the left; after `delay`
//    with no message from the right, probe rightward until one arrives.
//    Dissemination-colored processes reply to probes from the left to stop
//    the prober. One message per process in the fault-free case (§3.3).
//
// Engines are passive components driven by a broadcast protocol: the
// protocol routes kCorrection/kCorrReply receipts, send completions and
// timer events here. Processes colored *by correction* never initiate
// correction sends (no-duplicates masking; §2.1) — the failure-proof relay
// behaviour is the single, documented exception.

#include <memory>
#include <vector>

#include "protocol/config.hpp"
#include "sim/message.hpp"
#include "sim/protocol.hpp"
#include "topology/ring.hpp"

namespace ct::proto {

class CorrectionEngine {
 public:
  explicit CorrectionEngine(topo::Rank num_procs) : ring_(num_procs) {}
  virtual ~CorrectionEngine() = default;

  /// Rank `me` (dissemination-colored) enters the correction phase.
  virtual void start(sim::Context& ctx, topo::Rank me) = 0;
  /// A kCorrection / kCorrReply message finished arriving at `me`.
  virtual void on_message(sim::Context& ctx, topo::Rank me, const sim::Message& msg) = 0;
  /// A correction-tagged send of `me` completed.
  virtual void on_sent(sim::Context& ctx, topo::Rank me, const sim::Message& msg) = 0;
  virtual void on_timer(sim::Context& ctx, topo::Rank me, std::int64_t id);

 protected:
  /// Signed ring offset of `other` as seen from `me`: positive = closer on
  /// the right (ties break right), negative = closer on the left.
  std::int64_t signed_offset(topo::Rank me, topo::Rank other) const;

  topo::Ring ring_;
};

/// Builds the engine described by `config` for a P-process ring. Returns
/// nullptr for CorrectionKind::kNone.
std::unique_ptr<CorrectionEngine> make_correction_engine(const CorrectionConfig& config,
                                                         topo::Rank num_procs);

}  // namespace ct::proto

#pragma once
// Related-work baselines (§5), implemented so the paper's comparisons are
// runnable rather than cited:
//
//  * DetectorTreeBroadcast — the failure-detector school (Hursey & Graham
//    [22] and the ack/restructuring protocols [2,5,11,16,25,30,32,35]): a
//    process that misses its expected tree message suspects its ancestry
//    and pulls the payload from ever-higher ancestors. Reliability comes
//    from detection timeouts, which is precisely the latency cost the paper
//    argues against ("we avoid costly requirements such as the need for a
//    failure detector").
//
//  * MultiTreeBroadcast — the multi-tree school (Itai & Rodeh [24],
//    SplitStream [7]): disseminate concurrently over several trees whose
//    inner nodes differ, so one failure cannot cut off any process from all
//    trees. Doubles (k-folds) the traffic and "optimizing the tree
//    structure for low latency often becomes impossible" (§5).

#include <vector>

#include "sim/logp.hpp"
#include "sim/protocol.hpp"
#include "topology/tree.hpp"

namespace ct::proto {

struct DetectorConfig {
  /// Extra waiting time beyond the fault-free schedule before a process
  /// suspects a failure (the failure-detector timeout).
  sim::Time detection_slack = 8;
  /// Re-suspicion interval while climbing the ancestry during recovery.
  sim::Time pull_interval = 12;
};

class DetectorTreeBroadcast final : public sim::Protocol {
 public:
  DetectorTreeBroadcast(const topo::Tree& tree, const sim::LogP& params,
                        DetectorConfig config, std::int64_t payload = 0);

  void begin(sim::Context& ctx) override;
  void on_receive(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_sent(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_timer(sim::Context& ctx, topo::Rank me, std::int64_t id) override;

  /// Worst-case fault-free coloring instant of rank r (per-level bound);
  /// the detector fires detection_slack after it.
  sim::Time expected_colored_by(topo::Rank r) const;

 private:
  void color(sim::Context& ctx, topo::Rank me, std::int64_t data);
  void climb(sim::Context& ctx, topo::Rank me);

  const topo::Tree& tree_;
  sim::LogP params_;
  DetectorConfig config_;
  std::int64_t payload_;

  std::vector<char> started_;                   // did its tree sends
  std::vector<topo::Rank> pull_target_;         // current ancestor being pulled
  std::vector<std::vector<topo::Rank>> pending_pulls_;  // pulls awaiting our coloring
};

class MultiTreeBroadcast final : public sim::Protocol {
 public:
  /// All trees must span the same rank set with root 0. Typically built via
  /// make_rotated_trees below.
  MultiTreeBroadcast(std::vector<topo::Tree> trees, std::int64_t payload = 0);

  void begin(sim::Context& ctx) override;
  void on_receive(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_sent(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;

 private:
  void forward(sim::Context& ctx, topo::Rank me, std::size_t tree_index);

  std::vector<topo::Tree> trees_;
  std::int64_t payload_;
  /// started_[tree][rank]: rank already forwarded along that tree.
  std::vector<std::vector<char>> started_;
};

/// Builds `count` interleaved binomial trees over P ranks whose non-root
/// labels are rotated against each other ((P-1)/count apart), so inner
/// nodes of one tree are predominantly leaves of the others — the
/// multi-tree redundancy construction.
std::vector<topo::Tree> make_rotated_trees(topo::Rank num_procs, int count);

}  // namespace ct::proto

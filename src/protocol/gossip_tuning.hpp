#pragma once
// Empirical gossip-budget tuning, mirroring the paper's procedure (§4.1):
//  * for opportunistic Corrected Gossip: "the smallest gossiping time where
//    we observed no uncolored processes in [N] simulations",
//  * for checked Corrected Gossip: the gossiping time "optimized ... for the
//    lowest latency".
// Tuning runs fault-free replicated simulations over a gossip-time grid.

#include <cstdint>

#include "protocol/gossip_broadcast.hpp"
#include "sim/logp.hpp"

namespace ct::proto {

struct GossipTuneResult {
  sim::Time gossip_time = 0;
  double mean_quiescence = 0.0;
  double mean_messages_per_proc = 0.0;
};

/// Smallest gossip time (in steps of o) for which all `reps` fault-free
/// simulations color every process with the given correction.
GossipTuneResult tune_gossip_for_coloring(const sim::LogP& params,
                                          const CorrectionConfig& correction,
                                          std::size_t reps, std::uint64_t seed);

/// Gossip time minimising mean fault-free quiescence latency (coarse grid
/// then unit-step refinement).
GossipTuneResult tune_gossip_for_latency(const sim::LogP& params,
                                         const CorrectionConfig& correction,
                                         std::size_t reps, std::uint64_t seed);

}  // namespace ct::proto

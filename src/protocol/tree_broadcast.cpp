#include "protocol/tree_broadcast.hpp"

#include <stdexcept>

#include "sim/simulator.hpp"

namespace ct::proto {

using sim::Message;
using topo::Rank;

CorrectedTreeBroadcast::CorrectedTreeBroadcast(const topo::Tree& tree,
                                               CorrectionConfig config,
                                               std::int64_t payload, TreeScratch* scratch,
                                               CorrectionScratch* correction_scratch)
    : tree_(tree),
      config_(config),
      payload_(payload),
      owned_engine_(correction_scratch
                        ? nullptr
                        : make_correction_engine(config, tree.num_procs(), nullptr)),
      engine_(correction_scratch ? acquire_correction_engine(config, tree.num_procs(),
                                                             *correction_scratch)
                                 : owned_engine_.get()),
      state_(owned_scratch_, scratch, tree.num_procs()) {
  if (engine_ && config_.start == CorrectionStart::kSynchronized &&
      config_.sync_time <= 0) {
    throw std::invalid_argument(
        "synchronized correction needs sync_time > 0 "
        "(use fault_free_dissemination_time)");
  }
}

void CorrectedTreeBroadcast::begin(sim::Context& ctx) {
  if (engine_ && config_.start == CorrectionStart::kSynchronized) {
    for (Rank r = 0; r < ctx.num_procs(); ++r) {
      ctx.set_timer(r, config_.sync_time, sim::timer::kCorrectionStart);
    }
  }
  ctx.set_rank_data(tree_.root(), payload_);
  ctx.mark_colored(tree_.root());
  color_by_tree(ctx, tree_.root());
}

void CorrectedTreeBroadcast::color_by_tree(sim::Context& ctx, Rank me) {
  TreeCell& cell = state_[me];
  if (cell.colored) return;
  cell.colored = 1;
  const auto children = tree_.children(me);
  cell.pending = static_cast<std::int32_t>(children.size());
  if (children.empty()) {
    dissemination_done(ctx, me);
    return;
  }
  for (Rank child : children) {
    ctx.send(me, child, sim::tag::kTree, 0);
  }
}

void CorrectedTreeBroadcast::dissemination_done(sim::Context& ctx, Rank me) {
  if (!engine_) return;
  if (config_.start == CorrectionStart::kOverlapped) {
    ctx.note_correction_start();
    engine_->start(ctx, me);
  } else if (ctx.now() >= config_.sync_time) {
    // Tree message arrived after the synchronized start (caller picked a
    // sync_time below the dissemination span): join late rather than never.
    engine_->start(ctx, me);
  }
}

void CorrectedTreeBroadcast::on_receive(sim::Context& ctx, Rank me, const Message& msg) {
  switch (msg.tag) {
    case sim::tag::kTree:
      // Even a process colored early by correction still forwards tree
      // messages to its children (§3.3, overlapped correction).
      if (!ctx.is_colored(me)) ctx.set_rank_data(me, msg.data);
      ctx.mark_colored(me);
      color_by_tree(ctx, me);
      break;
    case sim::tag::kCorrection:
    case sim::tag::kCorrReply:
      if (msg.tag == sim::tag::kCorrection && !ctx.is_colored(me)) {
        ctx.set_rank_data(me, msg.data);
      }
      if (engine_) engine_->on_message(ctx, me, msg);
      break;
    default:
      throw std::logic_error("unexpected message tag in corrected tree broadcast");
  }
}

void CorrectedTreeBroadcast::on_sent(sim::Context& ctx, Rank me, const Message& msg) {
  if (msg.tag == sim::tag::kTree) {
    if (--state_[me].pending == 0) {
      dissemination_done(ctx, me);
    }
    return;
  }
  if (engine_) engine_->on_sent(ctx, me, msg);
}

void CorrectedTreeBroadcast::on_timer(sim::Context& ctx, Rank me, std::int64_t id) {
  if (id == sim::timer::kCorrectionStart) {
    ctx.note_correction_start();
    if (state_[me].colored) {
      if (engine_) engine_->start(ctx, me);
    }
    return;
  }
  if (engine_) engine_->on_timer(ctx, me, id);
}

sim::Time fault_free_dissemination_time(const topo::Tree& tree, const sim::LogP& params) {
  sim::LogP p = params;
  p.P = tree.num_procs();
  sim::Simulator simulator(p, sim::FaultSet::none(p.P));
  CorrectionConfig none;
  none.kind = CorrectionKind::kNone;
  CorrectedTreeBroadcast protocol(tree, none);
  const sim::RunResult result = simulator.run(protocol);
  return result.coloring_latency;
}

}  // namespace ct::proto

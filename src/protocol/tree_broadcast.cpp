#include "protocol/tree_broadcast.hpp"

#include <stdexcept>

#include "sim/simulator.hpp"

namespace ct::proto {

using sim::Message;
using topo::Rank;

namespace {

// Chunked correction probes ride the wire as logical_payload * 64 + chunk.
// Correction payloads are SIGNED ring distances, so decoding uses the
// Euclidean remainder: the chunk index is always in [0, 64) and the
// quotient restores the (possibly negative) logical payload exactly.
constexpr std::int64_t kChunkRadix = 64;

std::int64_t chunk_of(std::int64_t wire) noexcept {
  return ((wire % kChunkRadix) + kChunkRadix) % kChunkRadix;
}

std::int64_t base_of(std::int64_t wire) noexcept {
  return (wire - chunk_of(wire)) / kChunkRadix;
}

/// Context the correction engine sees when the broadcast is chunked: probe
/// sends fan out into one wire message per chunk, and mark_colored is gated
/// on "all chunks held" so a logical probe only colors a rank whose chunk
/// set is complete (the last wire chunk of the probe completes it). All
/// other services pass through. Engines only mark/inspect the rank whose
/// callback is running, so the rt single-writer contract is preserved.
class ChunkContext final : public sim::Context {
 public:
  ChunkContext(sim::Context& inner, const std::vector<std::uint64_t>& held,
               std::int32_t chunks, std::uint64_t all_mask)
      : inner_(inner), held_(held), chunks_(chunks), all_mask_(all_mask) {}

  sim::Time now() const override { return inner_.now(); }
  Rank num_procs() const override { return inner_.num_procs(); }

  void send(Rank from, Rank to, sim::Tag tag, std::int64_t payload) override {
    if (tag == sim::tag::kCorrection) {
      for (std::int32_t c = 0; c < chunks_; ++c) {
        inner_.send(from, to, tag, payload * kChunkRadix + c);
      }
      return;
    }
    inner_.send(from, to, tag, payload);
  }

  void set_timer(Rank on, sim::Time when, std::int64_t id) override {
    inner_.set_timer(on, when, id);
  }

  void mark_colored(Rank r) override {
    if (held_[static_cast<std::size_t>(r)] == all_mask_) inner_.mark_colored(r);
  }
  bool is_colored(Rank r) const override { return inner_.is_colored(r); }
  void note_correction_start() override { inner_.note_correction_start(); }

  void set_rank_data(Rank r, std::int64_t data) override { inner_.set_rank_data(r, data); }
  std::int64_t rank_data(Rank r) const override { return inner_.rank_data(r); }

 private:
  sim::Context& inner_;
  const std::vector<std::uint64_t>& held_;
  std::int32_t chunks_;
  std::uint64_t all_mask_;
};

}  // namespace

CorrectedTreeBroadcast::CorrectedTreeBroadcast(const topo::Tree& tree,
                                               CorrectionConfig config,
                                               std::int64_t payload, TreeScratch* scratch,
                                               CorrectionScratch* correction_scratch,
                                               std::int32_t chunks)
    : tree_(tree),
      config_(config),
      payload_(payload),
      chunks_(chunks),
      all_mask_(chunks >= 1 && chunks <= kMaxChunks
                    ? (chunks == kMaxChunks ? ~std::uint64_t{0}
                                            : (std::uint64_t{1} << chunks) - 1)
                    : 0),
      owned_engine_(correction_scratch
                        ? nullptr
                        : make_correction_engine(config, tree.num_procs(), nullptr)),
      engine_(correction_scratch ? acquire_correction_engine(config, tree.num_procs(),
                                                             *correction_scratch)
                                 : owned_engine_.get()),
      state_(owned_scratch_, scratch, tree.num_procs()) {
  if (chunks < 1 || chunks > kMaxChunks) {
    throw std::invalid_argument("corrected tree broadcast: chunks must be in [1, 64]");
  }
  if (chunks_ > 1) {
    const auto n = static_cast<std::size_t>(tree.num_procs());
    held_.assign(n, 0);
    fwd_.assign(n, 0);
    tree_seen_.assign(n, 0);
  }
  if (engine_ && config_.start == CorrectionStart::kSynchronized &&
      config_.sync_time <= 0) {
    throw std::invalid_argument(
        "synchronized correction needs sync_time > 0 "
        "(use fault_free_dissemination_time)");
  }
}

void CorrectedTreeBroadcast::begin(sim::Context& ctx) {
  if (engine_ && config_.start == CorrectionStart::kSynchronized) {
    for (Rank r = 0; r < ctx.num_procs(); ++r) {
      ctx.set_timer(r, config_.sync_time, sim::timer::kCorrectionStart);
    }
  }
  const Rank root = tree_.root();
  ctx.set_rank_data(root, payload_);
  TreeCell& cell = state_[root];
  cell.colored = 1;
  if (chunks_ > 1) {
    const auto v = static_cast<std::size_t>(root);
    held_[v] = all_mask_;
    fwd_[v] = all_mask_;
    tree_seen_[v] = chunks_;
  }
  ctx.mark_colored(root);
  const auto children = tree_.children(root);
  // Chunk-major order: chunk 0 to every child, then chunk 1, ... so the
  // first chunk starts its way down every subtree before the root pays the
  // injection cost of the rest (classic pipelined broadcast schedule).
  for (std::int64_t c = 0; c < chunks_; ++c) {
    for (Rank child : children) {
      ++cell.pending;
      ctx.send(root, child, sim::tag::kTree, c);
    }
  }
  if (cell.pending == 0) dissemination_done(ctx, root);
}

void CorrectedTreeBroadcast::hold_chunk(sim::Context& ctx, Rank me, std::int64_t chunk) {
  std::uint64_t& held = held_[static_cast<std::size_t>(me)];
  held |= std::uint64_t{1} << chunk;
  if (held == all_mask_) ctx.mark_colored(me);
}

void CorrectedTreeBroadcast::forward_chunk(sim::Context& ctx, Rank me, std::int64_t chunk) {
  const auto v = static_cast<std::size_t>(me);
  const std::uint64_t bit = std::uint64_t{1} << chunk;
  if (fwd_[v] & bit) return;  // duplicate delivery (rt chaos)
  fwd_[v] |= bit;
  TreeCell& cell = state_[me];
  cell.colored = 1;
  ++tree_seen_[v];
  for (Rank child : tree_.children(me)) {
    ++cell.pending;
    ctx.send(me, child, sim::tag::kTree, chunk);
  }
  if (tree_seen_[v] == chunks_ && cell.pending == 0) {
    dissemination_done(ctx, me);
  }
}

void CorrectedTreeBroadcast::dissemination_done(sim::Context& ctx, Rank me) {
  if (!engine_) return;
  if (config_.start == CorrectionStart::kOverlapped) {
    ctx.note_correction_start();
    if (chunks_ > 1) {
      ChunkContext cctx(ctx, held_, chunks_, all_mask_);
      engine_->start(cctx, me);
    } else {
      engine_->start(ctx, me);
    }
  } else if (ctx.now() >= config_.sync_time) {
    // Tree message arrived after the synchronized start (caller picked a
    // sync_time below the dissemination span): join late rather than never.
    if (chunks_ > 1) {
      ChunkContext cctx(ctx, held_, chunks_, all_mask_);
      engine_->start(cctx, me);
    } else {
      engine_->start(ctx, me);
    }
  }
}

void CorrectedTreeBroadcast::on_receive(sim::Context& ctx, Rank me, const Message& msg) {
  switch (msg.tag) {
    case sim::tag::kTree: {
      // Even a process colored early by correction still forwards tree
      // messages to its children (§3.3, overlapped correction).
      if (!ctx.is_colored(me)) ctx.set_rank_data(me, msg.data);
      if (chunks_ == 1) {
        // Whole-message fast path: one cell access, no bitmap churn. This
        // is the hottest line in every one-shot rt benchmark; keep it at
        // the pre-chunking instruction count.
        ctx.mark_colored(me);
        TreeCell& cell = state_[me];
        if (cell.colored) break;
        cell.colored = 1;
        for (Rank child : tree_.children(me)) {
          ++cell.pending;
          ctx.send(me, child, sim::tag::kTree, 0);
        }
        if (cell.pending == 0) dissemination_done(ctx, me);
        break;
      }
      hold_chunk(ctx, me, msg.payload);
      forward_chunk(ctx, me, msg.payload);
      break;
    }
    case sim::tag::kCorrection: {
      if (chunks_ == 1) {
        if (!ctx.is_colored(me)) ctx.set_rank_data(me, msg.data);
        if (engine_) engine_->on_message(ctx, me, msg);
        break;
      }
      const std::int64_t chunk = chunk_of(msg.payload);
      if (!ctx.is_colored(me)) ctx.set_rank_data(me, msg.data);
      hold_chunk(ctx, me, chunk);
      // The engine sees one logical probe, delivered by its last chunk
      // (per-pair FIFO keeps the expansion in order on both substrates).
      if (engine_ && chunk == chunks_ - 1) {
        Message logical = msg;
        logical.payload = base_of(msg.payload);
        ChunkContext cctx(ctx, held_, chunks_, all_mask_);
        engine_->on_message(cctx, me, logical);
      }
      break;
    }
    case sim::tag::kCorrReply:
      if (engine_) {
        if (chunks_ > 1) {
          ChunkContext cctx(ctx, held_, chunks_, all_mask_);
          engine_->on_message(cctx, me, msg);
        } else {
          engine_->on_message(ctx, me, msg);
        }
      }
      break;
    default:
      throw std::logic_error("unexpected message tag in corrected tree broadcast");
  }
}

void CorrectedTreeBroadcast::on_sent(sim::Context& ctx, Rank me, const Message& msg) {
  if (msg.tag == sim::tag::kTree) {
    TreeCell& cell = state_[me];
    if (--cell.pending == 0 &&
        (chunks_ == 1 || tree_seen_[static_cast<std::size_t>(me)] == chunks_)) {
      dissemination_done(ctx, me);
    }
    return;
  }
  if (!engine_) return;
  if (chunks_ == 1) {
    engine_->on_sent(ctx, me, msg);
    return;
  }
  ChunkContext cctx(ctx, held_, chunks_, all_mask_);
  if (msg.tag == sim::tag::kCorrection) {
    const std::int64_t chunk = chunk_of(msg.payload);
    if (chunk != chunks_ - 1) return;  // engine sees one completion per probe
    Message logical = msg;
    logical.payload = base_of(msg.payload);
    engine_->on_sent(cctx, me, logical);
    return;
  }
  engine_->on_sent(cctx, me, msg);
}

void CorrectedTreeBroadcast::on_timer(sim::Context& ctx, Rank me, std::int64_t id) {
  if (id == sim::timer::kCorrectionStart) {
    ctx.note_correction_start();
    if (state_[me].colored) {
      if (engine_) {
        if (chunks_ > 1) {
          ChunkContext cctx(ctx, held_, chunks_, all_mask_);
          engine_->start(cctx, me);
        } else {
          engine_->start(ctx, me);
        }
      }
    }
    return;
  }
  if (!engine_) return;
  if (chunks_ > 1) {
    ChunkContext cctx(ctx, held_, chunks_, all_mask_);
    engine_->on_timer(cctx, me, id);
  } else {
    engine_->on_timer(ctx, me, id);
  }
}

sim::Time fault_free_dissemination_time(const topo::Tree& tree, const sim::LogP& params) {
  sim::LogP p = params;
  p.P = tree.num_procs();
  sim::Simulator simulator(p, sim::FaultSet::none(p.P));
  CorrectionConfig none;
  none.kind = CorrectionKind::kNone;
  CorrectedTreeBroadcast protocol(tree, none);
  const sim::RunResult result = simulator.run(protocol);
  return result.coloring_latency;
}

}  // namespace ct::proto

#include "protocol/gossip_tuning.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/simulator.hpp"

namespace ct::proto {

namespace {

struct Probe {
  bool all_colored = true;
  double mean_quiescence = 0.0;
  double mean_messages = 0.0;
};

Probe probe_gossip_time(const sim::LogP& params, const CorrectionConfig& correction,
                        sim::Time gossip_time, std::size_t reps, std::uint64_t seed) {
  Probe probe;
  double quiescence_sum = 0.0;
  double message_sum = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    GossipConfig config;
    config.budget = GossipConfig::Budget::kTime;
    config.gossip_time = gossip_time;
    config.correction = correction;
    config.correction.start = CorrectionStart::kSynchronized;
    config.correction.sync_time = gossip_time;
    config.seed = support::derive_seed(seed, rep);
    CorrectedGossipBroadcast protocol(params.P, config);
    sim::Simulator simulator(params, sim::FaultSet::none(params.P));
    const sim::RunResult result = simulator.run(protocol);
    if (!result.fully_colored()) probe.all_colored = false;
    quiescence_sum += static_cast<double>(result.quiescence_latency);
    message_sum += result.messages_per_process();
  }
  probe.mean_quiescence = quiescence_sum / static_cast<double>(reps);
  probe.mean_messages = message_sum / static_cast<double>(reps);
  return probe;
}

/// log2(P) rounded up: the information-theoretic dissemination floor.
sim::Time log2_ceil(topo::Rank num_procs) {
  sim::Time bits = 0;
  topo::Rank value = 1;
  while (value < num_procs) {
    value = static_cast<topo::Rank>(2 * value);
    ++bits;
  }
  return bits;
}

}  // namespace

GossipTuneResult tune_gossip_for_coloring(const sim::LogP& params,
                                          const CorrectionConfig& correction,
                                          std::size_t reps, std::uint64_t seed) {
  // Each gossip "hop" costs about 2o+L; start at the binary-dissemination
  // floor and grow until all replications color fully.
  const sim::Time floor_time = log2_ceil(params.P) * params.o + params.L;
  const sim::Time ceiling = 64 * floor_time + 64;  // generous safety net
  for (sim::Time t = floor_time;; t += params.o) {
    if (t > ceiling) {
      throw std::runtime_error("gossip coloring tuning did not converge");
    }
    const Probe probe = probe_gossip_time(params, correction, t, reps, seed);
    if (probe.all_colored) {
      return {t, probe.mean_quiescence, probe.mean_messages};
    }
  }
}

GossipTuneResult tune_gossip_for_latency(const sim::LogP& params,
                                         const CorrectionConfig& correction,
                                         std::size_t reps, std::uint64_t seed) {
  const sim::Time floor_time = std::max<sim::Time>(params.o, log2_ceil(params.P) * params.o);
  const sim::Time coarse_step = std::max<sim::Time>(params.o * 4, 1);

  // Coarse scan: latency as a function of gossip time is V-shaped (too
  // short -> long correction; too long -> wasted gossip), so stop once it
  // has been rising for a few consecutive steps.
  sim::Time best_time = floor_time;
  double best_latency = std::numeric_limits<double>::infinity();
  double best_messages = 0.0;
  int rising = 0;
  for (sim::Time t = floor_time; rising < 3; t += coarse_step) {
    const Probe probe = probe_gossip_time(params, correction, t, reps, seed);
    if (probe.mean_quiescence < best_latency) {
      best_latency = probe.mean_quiescence;
      best_messages = probe.mean_messages;
      best_time = t;
      rising = 0;
    } else {
      ++rising;
    }
  }

  // Unit-step refinement around the coarse optimum.
  for (sim::Time t = std::max<sim::Time>(params.o, best_time - coarse_step + 1);
       t < best_time + coarse_step; t += params.o) {
    if (t == best_time) continue;
    const Probe probe = probe_gossip_time(params, correction, t, reps, seed);
    if (probe.mean_quiescence < best_latency) {
      best_latency = probe.mean_quiescence;
      best_messages = probe.mean_messages;
      best_time = t;
    }
  }
  return {best_time, best_latency, best_messages};
}

}  // namespace ct::proto

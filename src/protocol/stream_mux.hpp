#pragma once
// Streaming broadcast in the simulator (PR8): one sim::Simulator run hosts a
// *window* of concurrently in-flight broadcast epochs by multiplexing
// per-epoch protocol instances onto the single event queue. This is the
// simulator-side twin of the sharded rt executor's slot window: epoch e's
// traffic is namespaced by tag/timer-id stride (outer = e * kStride + inner)
// so instances never see each other's messages, while their sends still
// contend for the same LogP send/receive ports — which is exactly the
// pipelining effect being modelled (port pressure g/G between epochs).
//
// Admission follows the rt coordinator:
//  - closed loop (interval == 0): the window is filled at begin(); each
//    retirement admits the next epoch.
//  - open loop (interval > 0): epoch e is *offered* at time e * interval
//    (a timer on the always-alive root); if the window is full the arrival
//    is queued FIFO — blocked, never dropped — and admitted on retirement.
//
// An epoch retires when every counted rank is colored (initially-failed
// ranks and scheduled kill victims are excluded via `excluded`; the sim
// Context has no liveness query, so the caller supplies the exclusion set).
// Retirement time is the epoch's *coloring* completion — the sim analog of
// the rt slot's completion countdown.
//
// Known modelling limitation: Context::rank_data is global per-rank state
// stamped by the simulator at send time, so all in-flight epochs share one
// payload word. Coloring, message counts and latencies are per-epoch; the
// data-plane integrity checks are meaningful only for W = 1.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/protocol.hpp"

namespace ct::proto {

struct StreamMuxOptions {
  std::int64_t epochs = 1;
  std::int32_t window = 1;
  /// Ticks between offered arrivals; 0 selects the closed loop.
  sim::Time interval = 0;
  /// Ranks not counted toward per-epoch completion (initially failed and
  /// mid-stream kill victims). Empty means every rank must color. Sized P
  /// when non-empty.
  std::vector<char> excluded;
};

/// Per-epoch outcome, indexed by epoch number (admission order).
struct StreamMuxEpoch {
  sim::Time scheduled = 0;  ///< offered-arrival time
  sim::Time admitted = -1;  ///< window entry (== scheduled unless queued)
  sim::Time retired = -1;   ///< all counted ranks colored; -1 = never
  topo::Rank colored = 0;   ///< counted ranks colored (excludes `excluded`)
  std::int64_t sends = 0;   ///< logical sends requested by this epoch

  bool complete() const { return retired >= 0; }
  sim::Time sojourn() const { return retired - scheduled; }
  sim::Time service() const { return retired - admitted; }
};

/// Protocol adapter: runs `epochs` instances built by `factory` through one
/// simulator run, at most `window` concurrently.
class StreamMux final : public sim::Protocol {
 public:
  using Factory = std::function<std::unique_ptr<sim::Protocol>()>;

  /// Tag/timer-id namespace stride per epoch. Inner protocols use tags and
  /// timer ids in [1, kStride); id 0 of each epoch's band is the mux's own
  /// admission timer.
  static constexpr std::int64_t kStride = 16;

  StreamMux(Factory factory, StreamMuxOptions options);
  ~StreamMux() override;

  void begin(sim::Context& ctx) override;
  void on_receive(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_sent(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_timer(sim::Context& ctx, topo::Rank me, std::int64_t id) override;

  const std::vector<StreamMuxEpoch>& epochs() const { return records_; }
  std::int64_t retired_count() const { return retired_; }
  /// Whether rank r was colored during epoch e (valid after the run; covers
  /// excluded ranks too, which stay false unless a victim raced its death).
  bool colored_in(std::int64_t e, topo::Rank r) const {
    return colored_[static_cast<std::size_t>(e)][static_cast<std::size_t>(r)] != 0;
  }

 private:
  class EpochContext;

  void arrival(sim::Context& ctx, std::int64_t e);
  void admit(sim::Context& ctx, std::int64_t e);
  void color(sim::Context& ctx, std::int64_t e, topo::Rank r);
  void retire(sim::Context& ctx, std::int64_t e);

  Factory factory_;
  StreamMuxOptions options_;
  topo::Rank expected_ = 0;  ///< counted ranks per epoch
  std::vector<StreamMuxEpoch> records_;
  std::vector<std::vector<char>> colored_;  ///< per-epoch coloring bitmaps
  /// Instances stay alive after retirement: a retiring mark_colored runs
  /// inside the instance's own callback, and late tail traffic (ack waves,
  /// correction replies) still dispatches to it harmlessly.
  std::vector<std::unique_ptr<sim::Protocol>> instances_;
  std::deque<std::int64_t> waiting_;  ///< offered while the window was full
  std::int32_t in_flight_ = 0;
  std::int64_t next_closed_ = 0;  ///< next unadmitted epoch (closed loop)
  std::int64_t retired_ = 0;
};

}  // namespace ct::proto

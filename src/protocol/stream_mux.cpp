#include "protocol/stream_mux.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ct::proto {

// Per-epoch view handed to inner protocol instances. Translates tags and
// timer ids into the epoch's namespace band on the way out; the mux strips
// the band on the way back in before dispatching. Coloring is intercepted
// into the per-epoch bitmap — inner protocols (opportunistic correction in
// particular) read neighbours' coloring, which must be *this epoch's*
// coloring, not a predecessor's.
class StreamMux::EpochContext final : public sim::Context {
 public:
  EpochContext(StreamMux& mux, sim::Context& outer, std::int64_t epoch)
      : mux_(mux), outer_(outer), epoch_(epoch) {}

  sim::Time now() const override { return outer_.now(); }
  topo::Rank num_procs() const override { return outer_.num_procs(); }

  void send(topo::Rank from, topo::Rank to, sim::Tag tag, std::int64_t payload) override {
    ++mux_.records_[static_cast<std::size_t>(epoch_)].sends;
    outer_.send(from, to, tag + epoch_ * kStride, payload);
  }
  void set_timer(topo::Rank on, sim::Time when, std::int64_t id) override {
    outer_.set_timer(on, when, epoch_ * kStride + id);
  }
  void mark_colored(topo::Rank r) override { mux_.color(outer_, epoch_, r); }
  bool is_colored(topo::Rank r) const override {
    return mux_.colored_in(epoch_, r);
  }
  void note_correction_start() override {
    // Gap metrics snapshot global coloring; only epoch 0's correction start
    // is meaningful for them, and the outer context keeps first-call-wins
    // semantics anyway.
    if (epoch_ == 0) outer_.note_correction_start();
  }
  void set_rank_data(topo::Rank r, std::int64_t data) override {
    outer_.set_rank_data(r, data);
  }
  std::int64_t rank_data(topo::Rank r) const override { return outer_.rank_data(r); }

 private:
  StreamMux& mux_;
  sim::Context& outer_;
  std::int64_t epoch_;
};

StreamMux::StreamMux(Factory factory, StreamMuxOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {
  if (!factory_) throw std::invalid_argument("StreamMux: null factory");
  if (options_.epochs < 1) throw std::invalid_argument("StreamMux: epochs must be >= 1");
  if (options_.window < 1) throw std::invalid_argument("StreamMux: window must be >= 1");
  if (options_.interval < 0) throw std::invalid_argument("StreamMux: negative interval");
}

StreamMux::~StreamMux() = default;

void StreamMux::begin(sim::Context& ctx) {
  const topo::Rank procs = ctx.num_procs();
  if (!options_.excluded.empty() &&
      options_.excluded.size() != static_cast<std::size_t>(procs)) {
    throw std::invalid_argument("StreamMux: excluded mask size != num_procs");
  }
  expected_ = procs;
  for (const char ex : options_.excluded) expected_ -= ex ? 1 : 0;

  const auto epochs = static_cast<std::size_t>(options_.epochs);
  records_.assign(epochs, StreamMuxEpoch{});
  colored_.assign(epochs, std::vector<char>(static_cast<std::size_t>(procs), 0));
  instances_.clear();
  instances_.resize(epochs);
  waiting_.clear();
  in_flight_ = 0;
  next_closed_ = 0;
  retired_ = 0;

  if (options_.interval > 0) {
    // Open loop: every offered arrival is scheduled up front on the root's
    // timer (rank 0 never fails, so the arrival process cannot die).
    for (std::int64_t e = 0; e < options_.epochs; ++e) {
      records_[static_cast<std::size_t>(e)].scheduled = e * options_.interval;
      ctx.set_timer(0, e * options_.interval, e * kStride);
    }
  } else {
    // Closed loop: fill the window; each retirement admits the next.
    const std::int64_t burst = std::min<std::int64_t>(options_.window, options_.epochs);
    for (; next_closed_ < burst; ++next_closed_) admit(ctx, next_closed_);
  }
}

void StreamMux::on_receive(sim::Context& ctx, topo::Rank me, const sim::Message& msg) {
  const std::int64_t e = msg.tag / kStride;
  sim::Message inner = msg;
  inner.tag = msg.tag % kStride;
  EpochContext ectx(*this, ctx, e);
  instances_[static_cast<std::size_t>(e)]->on_receive(ectx, me, inner);
}

void StreamMux::on_sent(sim::Context& ctx, topo::Rank me, const sim::Message& msg) {
  const std::int64_t e = msg.tag / kStride;
  sim::Message inner = msg;
  inner.tag = msg.tag % kStride;
  EpochContext ectx(*this, ctx, e);
  instances_[static_cast<std::size_t>(e)]->on_sent(ectx, me, inner);
}

void StreamMux::on_timer(sim::Context& ctx, topo::Rank me, std::int64_t id) {
  const std::int64_t e = id / kStride;
  const std::int64_t inner = id % kStride;
  if (inner == 0) {
    arrival(ctx, e);
    return;
  }
  EpochContext ectx(*this, ctx, e);
  instances_[static_cast<std::size_t>(e)]->on_timer(ectx, me, inner);
}

void StreamMux::arrival(sim::Context& ctx, std::int64_t e) {
  if (in_flight_ < options_.window) {
    admit(ctx, e);
  } else {
    waiting_.push_back(e);  // backpressure: queue, never drop
  }
}

void StreamMux::admit(sim::Context& ctx, std::int64_t e) {
  StreamMuxEpoch& rec = records_[static_cast<std::size_t>(e)];
  rec.admitted = ctx.now();
  if (options_.interval <= 0) rec.scheduled = rec.admitted;
  ++in_flight_;
  instances_[static_cast<std::size_t>(e)] = factory_();
  EpochContext ectx(*this, ctx, e);
  instances_[static_cast<std::size_t>(e)]->begin(ectx);
}

void StreamMux::color(sim::Context& ctx, std::int64_t e, topo::Rank r) {
  std::vector<char>& bits = colored_[static_cast<std::size_t>(e)];
  if (bits[static_cast<std::size_t>(r)]) return;
  bits[static_cast<std::size_t>(r)] = 1;
  // Global coloring feeds the simulator's first-coloring metrics and the
  // integrity masking; it is idempotent across epochs.
  ctx.mark_colored(r);
  if (!options_.excluded.empty() && options_.excluded[static_cast<std::size_t>(r)]) {
    return;  // victims racing their death do not count toward completion
  }
  StreamMuxEpoch& rec = records_[static_cast<std::size_t>(e)];
  if (++rec.colored == expected_ && rec.retired < 0) retire(ctx, e);
}

void StreamMux::retire(sim::Context& ctx, std::int64_t e) {
  records_[static_cast<std::size_t>(e)].retired = ctx.now();
  ++retired_;
  --in_flight_;
  if (options_.interval > 0) {
    while (in_flight_ < options_.window && !waiting_.empty()) {
      const std::int64_t next = waiting_.front();
      waiting_.pop_front();
      admit(ctx, next);
    }
  } else if (next_closed_ < options_.epochs) {
    admit(ctx, next_closed_++);
  }
}

}  // namespace ct::proto

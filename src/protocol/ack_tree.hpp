#pragma once
// Traditional acknowledged tree broadcast — the fault-tolerance baseline the
// paper compares against ("(ack.)" curves in Fig. 7; §5: "Even in the
// fault-free case the tree has to be traversed twice, effectively doubling
// the latency"). Acknowledgments travel the dissemination tree bottom-up:
// a leaf acks on coloring, an inner node after collecting all child acks.
// Quiescence is reached when the root holds every ack. The protocol is
// fault-AGNOSTIC: a failed subtree means the root never completes — exactly
// the behaviour the paper's introduction ascribes to current MPI libraries.

#include <memory>
#include <vector>

#include "protocol/scratch.hpp"
#include "sim/protocol.hpp"
#include "topology/tree.hpp"

namespace ct::proto {

/// Per-rank ack-tree state (see scratch.hpp for the reuse contract).
/// Deliberately 16 bytes, matching TreeCell: the chunk bitmap lives out of
/// line in the protocol (sized only when chunks > 1).
struct AckCell {
  std::uint64_t epoch = 0;
  std::int32_t pending_acks = 0;
  std::uint8_t started = 0;
  std::uint8_t acked = 0;
};
using AckScratch = RankScratch<AckCell>;

class AckTreeBroadcast final : public sim::Protocol {
 public:
  /// The optional scratch recycles per-rank state across replications
  /// (ReplicaPlan); it must outlive the protocol when given. `chunks` > 1
  /// pipelines the payload down the tree in that many chunks; a rank acks
  /// its parent once it holds every chunk AND collected one ack per child
  /// (acks themselves stay one logical message).
  explicit AckTreeBroadcast(const topo::Tree& tree, AckScratch* scratch = nullptr,
                            std::int32_t chunks = 1);

  void begin(sim::Context& ctx) override;
  void on_receive(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_sent(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;

  /// True once the root collected acknowledgments from its whole subtree.
  bool root_acknowledged() const noexcept { return root_acknowledged_; }

 private:
  void take_chunk(sim::Context& ctx, topo::Rank me, std::int64_t chunk);
  void maybe_ack(sim::Context& ctx, topo::Rank me);
  void ack_received(sim::Context& ctx, topo::Rank me);

  const topo::Tree& tree_;
  std::int32_t chunks_;
  std::uint64_t all_mask_;
  std::unique_ptr<AckScratch> owned_scratch_;  // when no caller scratch given
  RankScratchView<AckCell> state_;
  // Chunked-mode side state, sized num_procs only when chunks_ > 1 so the
  // whole-message AckCell array stays at its classic 16-byte stride.
  std::vector<std::uint64_t> seen_;  // bitmap: chunks received per rank
  bool root_acknowledged_ = false;
};

}  // namespace ct::proto

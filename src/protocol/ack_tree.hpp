#pragma once
// Traditional acknowledged tree broadcast — the fault-tolerance baseline the
// paper compares against ("(ack.)" curves in Fig. 7; §5: "Even in the
// fault-free case the tree has to be traversed twice, effectively doubling
// the latency"). Acknowledgments travel the dissemination tree bottom-up:
// a leaf acks on coloring, an inner node after collecting all child acks.
// Quiescence is reached when the root holds every ack. The protocol is
// fault-AGNOSTIC: a failed subtree means the root never completes — exactly
// the behaviour the paper's introduction ascribes to current MPI libraries.

#include <vector>

#include "sim/protocol.hpp"
#include "topology/tree.hpp"

namespace ct::proto {

class AckTreeBroadcast final : public sim::Protocol {
 public:
  explicit AckTreeBroadcast(const topo::Tree& tree);

  void begin(sim::Context& ctx) override;
  void on_receive(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_sent(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;

  /// True once the root collected acknowledgments from its whole subtree.
  bool root_acknowledged() const noexcept { return root_acknowledged_; }

 private:
  void color(sim::Context& ctx, topo::Rank me);
  void ack_received(sim::Context& ctx, topo::Rank me);

  const topo::Tree& tree_;
  std::vector<std::int32_t> pending_acks_;
  std::vector<char> started_;
  bool root_acknowledged_ = false;
};

}  // namespace ct::proto

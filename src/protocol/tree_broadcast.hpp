#pragma once
// Corrected Tree broadcast (§3.2/§3.3): tree dissemination followed by ring
// correction. With CorrectionKind::kNone this degenerates to the classic
// fault-agnostic tree broadcast (the "d = 0" baseline of Fig. 12).
//
// Chunked payloads (PR8): with `chunks` > 1 the broadcast content is split
// into that many equal chunks which pipeline down the tree independently —
// a rank forwards chunk c to its children as soon as chunk c arrives, so
// the per-chunk injection cost (LogGP send_cost) overlaps with the wire.
// Correction probes are expanded to one message per chunk (wire payload =
// logical_payload * 64 + chunk); replies and acks stay logical. A rank is
// colored once it holds ALL chunks, from whichever mix of tree and
// correction messages supplied them.

#include <memory>
#include <vector>

#include "protocol/config.hpp"
#include "protocol/correction.hpp"
#include "protocol/scratch.hpp"
#include "sim/logp.hpp"
#include "sim/protocol.hpp"
#include "topology/tree.hpp"

namespace ct::proto {

/// Per-rank dissemination state (see scratch.hpp for the reuse contract).
/// Deliberately 16 bytes: every benchmark streams this array through the
/// event loop, so the per-chunk bitmaps live out of line in the protocol
/// (sized only when chunks > 1) rather than fattening every cell.
struct TreeCell {
  std::uint64_t epoch = 0;
  std::int32_t pending = 0;  // outstanding tree sends
  std::uint8_t colored = 0;  // reached by a kTree message (or root)
};
using TreeScratch = RankScratch<TreeCell>;

class CorrectedTreeBroadcast final : public sim::Protocol {
 public:
  /// Hard cap on `chunks` (the held/fwd bitmaps are one word per rank).
  static constexpr std::int32_t kMaxChunks = 64;

  /// `tree` must outlive the protocol. For synchronized correction the
  /// caller must set config.sync_time (usually the fault-free dissemination
  /// time; see fault_free_dissemination_time()). `payload` is the broadcast
  /// content word: every colored process ends up holding it in its rank
  /// data, regardless of which phase colored it. The optional scratches
  /// recycle the per-rank state across replications (ReplicaPlan); both
  /// must outlive the protocol when given. `chunks` in [1, kMaxChunks]
  /// splits the payload into pipelined chunks; 1 is the classic
  /// whole-message broadcast, bit-identical to pre-chunking behaviour.
  CorrectedTreeBroadcast(const topo::Tree& tree, CorrectionConfig config,
                         std::int64_t payload = 0, TreeScratch* scratch = nullptr,
                         CorrectionScratch* correction_scratch = nullptr,
                         std::int32_t chunks = 1);

  void begin(sim::Context& ctx) override;
  void on_receive(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_sent(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_timer(sim::Context& ctx, topo::Rank me, std::int64_t id) override;

  /// Replaces the broadcast content word. Only meaningful before begin()
  /// (composite collectives compute the payload at run time and call this
  /// right before starting the broadcast phase).
  void set_payload(std::int64_t payload) noexcept { payload_ = payload; }

 private:
  void forward_chunk(sim::Context& ctx, topo::Rank me, std::int64_t chunk);
  void hold_chunk(sim::Context& ctx, topo::Rank me, std::int64_t chunk);
  void dissemination_done(sim::Context& ctx, topo::Rank me);

  const topo::Tree& tree_;
  CorrectionConfig config_;
  std::int64_t payload_;
  std::int32_t chunks_;
  std::uint64_t all_mask_;
  // With a caller scratch the engine is borrowed from its reuse cache
  // (acquire_correction_engine) — zero steady-state allocations on the
  // ReplicaPlan path; otherwise owned_engine_ holds a private one.
  std::unique_ptr<CorrectionEngine> owned_engine_;
  CorrectionEngine* engine_ = nullptr;

  std::unique_ptr<TreeScratch> owned_scratch_;  // when no caller scratch given
  RankScratchView<TreeCell> state_;

  // Chunked-mode side state, sized num_procs only when chunks_ > 1 so the
  // whole-message TreeCell array stays at its classic 16-byte stride.
  std::vector<std::uint64_t> held_;       // bitmap: chunks held per rank
  std::vector<std::uint64_t> fwd_;        // bitmap: chunks forwarded per rank
  std::vector<std::int32_t> tree_seen_;   // distinct tree chunks per rank
};

/// Runs a fault-free simulation of the bare tree dissemination and returns
/// its coloring latency — the natural sync_time for synchronized correction
/// (failures only remove messages from a tree schedule, they never delay the
/// remaining ones, so the fault-free completion time stays an upper bound).
sim::Time fault_free_dissemination_time(const topo::Tree& tree, const sim::LogP& params);

}  // namespace ct::proto

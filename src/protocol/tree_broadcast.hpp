#pragma once
// Corrected Tree broadcast (§3.2/§3.3): tree dissemination followed by ring
// correction. With CorrectionKind::kNone this degenerates to the classic
// fault-agnostic tree broadcast (the "d = 0" baseline of Fig. 12).

#include <memory>
#include <vector>

#include "protocol/config.hpp"
#include "protocol/correction.hpp"
#include "protocol/scratch.hpp"
#include "sim/logp.hpp"
#include "sim/protocol.hpp"
#include "topology/tree.hpp"

namespace ct::proto {

/// Per-rank dissemination state (see scratch.hpp for the reuse contract).
struct TreeCell {
  std::uint64_t epoch = 0;
  std::int32_t pending = 0;  // outstanding tree sends
  std::uint8_t colored = 0;  // reached by a kTree message (or root)
};
using TreeScratch = RankScratch<TreeCell>;

class CorrectedTreeBroadcast final : public sim::Protocol {
 public:
  /// `tree` must outlive the protocol. For synchronized correction the
  /// caller must set config.sync_time (usually the fault-free dissemination
  /// time; see fault_free_dissemination_time()). `payload` is the broadcast
  /// content word: every colored process ends up holding it in its rank
  /// data, regardless of which phase colored it. The optional scratches
  /// recycle the per-rank state across replications (ReplicaPlan); both
  /// must outlive the protocol when given.
  CorrectedTreeBroadcast(const topo::Tree& tree, CorrectionConfig config,
                         std::int64_t payload = 0, TreeScratch* scratch = nullptr,
                         CorrectionScratch* correction_scratch = nullptr);

  void begin(sim::Context& ctx) override;
  void on_receive(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_sent(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_timer(sim::Context& ctx, topo::Rank me, std::int64_t id) override;

  /// Replaces the broadcast content word. Only meaningful before begin()
  /// (composite collectives compute the payload at run time and call this
  /// right before starting the broadcast phase).
  void set_payload(std::int64_t payload) noexcept { payload_ = payload; }

 private:
  void color_by_tree(sim::Context& ctx, topo::Rank me);
  void dissemination_done(sim::Context& ctx, topo::Rank me);

  const topo::Tree& tree_;
  CorrectionConfig config_;
  std::int64_t payload_;
  // With a caller scratch the engine is borrowed from its reuse cache
  // (acquire_correction_engine) — zero steady-state allocations on the
  // ReplicaPlan path; otherwise owned_engine_ holds a private one.
  std::unique_ptr<CorrectionEngine> owned_engine_;
  CorrectionEngine* engine_ = nullptr;

  std::unique_ptr<TreeScratch> owned_scratch_;  // when no caller scratch given
  RankScratchView<TreeCell> state_;
};

/// Runs a fault-free simulation of the bare tree dissemination and returns
/// its coloring latency — the natural sync_time for synchronized correction
/// (failures only remove messages from a tree schedule, they never delay the
/// remaining ones, so the fault-free completion time stays an upper bound).
sim::Time fault_free_dissemination_time(const topo::Tree& tree, const sim::LogP& params);

}  // namespace ct::proto

#include "protocol/baselines.hpp"

#include <stdexcept>

namespace ct::proto {

using sim::Message;
using topo::Rank;

namespace {
constexpr std::int64_t kDetectorTimer = 200;
constexpr std::int64_t kPullRetryTimer = 201;
}  // namespace

// ---------------------------------------------------------------------------
// DetectorTreeBroadcast
// ---------------------------------------------------------------------------

DetectorTreeBroadcast::DetectorTreeBroadcast(const topo::Tree& tree,
                                             const sim::LogP& params,
                                             DetectorConfig config, std::int64_t payload)
    : tree_(tree),
      params_(params),
      config_(config),
      payload_(payload),
      started_(static_cast<std::size_t>(tree.num_procs()), 0),
      pull_target_(static_cast<std::size_t>(tree.num_procs()), topo::kNoRank),
      pending_pulls_(static_cast<std::size_t>(tree.num_procs())) {
  if (config_.detection_slack < 1 || config_.pull_interval < 1) {
    throw std::invalid_argument("detector timeouts must be positive");
  }
}

sim::Time DetectorTreeBroadcast::expected_colored_by(Rank r) const {
  // Per-level worst case: a parent may serialise up to max_fanout sends
  // before ours, then the message flies for message_cost.
  const sim::Time step =
      static_cast<sim::Time>(tree_.max_fanout()) * params_.port_period() +
      params_.message_cost();
  return static_cast<sim::Time>(tree_.depth(r)) * step;
}

void DetectorTreeBroadcast::begin(sim::Context& ctx) {
  for (Rank r = 1; r < tree_.num_procs(); ++r) {
    ctx.set_timer(r, expected_colored_by(r) + config_.detection_slack, kDetectorTimer);
  }
  ctx.set_rank_data(tree_.root(), payload_);
  color(ctx, tree_.root(), payload_);
}

void DetectorTreeBroadcast::color(sim::Context& ctx, Rank me, std::int64_t data) {
  if (!ctx.is_colored(me)) ctx.set_rank_data(me, data);
  ctx.mark_colored(me);
  if (started_[static_cast<std::size_t>(me)]) return;
  started_[static_cast<std::size_t>(me)] = 1;
  for (Rank child : tree_.children(me)) {
    ctx.send(me, child, sim::tag::kTree, 0);
  }
  // Anyone who pulled from us while we were still waiting gets served now.
  for (Rank requester : pending_pulls_[static_cast<std::size_t>(me)]) {
    ctx.send(me, requester, sim::tag::kPullReply, 0);
  }
  pending_pulls_[static_cast<std::size_t>(me)].clear();
}

void DetectorTreeBroadcast::climb(sim::Context& ctx, Rank me) {
  auto& target = pull_target_[static_cast<std::size_t>(me)];
  if (target == topo::kNoRank) {
    target = tree_.parent(me);
  } else if (target != tree_.root()) {
    target = tree_.parent(target);  // suspect one level higher
  } else {
    // Already pulling from the root (assumed alive, §2.1): keep retrying —
    // its reply may simply still be in flight.
  }
  ctx.send(me, target, sim::tag::kPull, 0);
  ctx.set_timer(me, ctx.now() + config_.pull_interval, kPullRetryTimer);
}

void DetectorTreeBroadcast::on_receive(sim::Context& ctx, Rank me, const Message& msg) {
  switch (msg.tag) {
    case sim::tag::kTree:
    case sim::tag::kPullReply:
      color(ctx, me, msg.data);
      break;
    case sim::tag::kPull:
      if (ctx.is_colored(me)) {
        ctx.send(me, msg.src, sim::tag::kPullReply, 0);
      } else {
        pending_pulls_[static_cast<std::size_t>(me)].push_back(msg.src);
        // We are stuck too — make sure our own recovery is running; our
        // detector timer may not have fired yet.
        if (pull_target_[static_cast<std::size_t>(me)] == topo::kNoRank) {
          climb(ctx, me);
        }
      }
      break;
    default:
      throw std::logic_error("unexpected message tag in detector tree broadcast");
  }
}

void DetectorTreeBroadcast::on_sent(sim::Context&, Rank, const Message&) {}

void DetectorTreeBroadcast::on_timer(sim::Context& ctx, Rank me, std::int64_t id) {
  if (ctx.is_colored(me)) return;
  if (id == kDetectorTimer || id == kPullRetryTimer) {
    climb(ctx, me);
  }
}

// ---------------------------------------------------------------------------
// MultiTreeBroadcast
// ---------------------------------------------------------------------------

MultiTreeBroadcast::MultiTreeBroadcast(std::vector<topo::Tree> trees, std::int64_t payload)
    : trees_(std::move(trees)), payload_(payload) {
  if (trees_.empty()) throw std::invalid_argument("multi-tree broadcast needs >= 1 tree");
  for (const topo::Tree& tree : trees_) {
    if (tree.num_procs() != trees_.front().num_procs()) {
      throw std::invalid_argument("all trees must span the same rank set");
    }
    started_.emplace_back(static_cast<std::size_t>(tree.num_procs()), 0);
  }
}

void MultiTreeBroadcast::begin(sim::Context& ctx) {
  ctx.set_rank_data(0, payload_);
  ctx.mark_colored(0);
  for (std::size_t t = 0; t < trees_.size(); ++t) forward(ctx, 0, t);
}

void MultiTreeBroadcast::forward(sim::Context& ctx, Rank me, std::size_t tree_index) {
  auto& started = started_[tree_index][static_cast<std::size_t>(me)];
  if (started) return;
  started = 1;
  for (Rank child : trees_[tree_index].children(me)) {
    // payload carries the tree index so the receiver forwards on the right
    // tree; different trees progress independently (SplitStream-style).
    ctx.send(me, child, sim::tag::kTree, static_cast<std::int64_t>(tree_index));
  }
}

void MultiTreeBroadcast::on_receive(sim::Context& ctx, Rank me, const Message& msg) {
  if (msg.tag != sim::tag::kTree) {
    throw std::logic_error("unexpected message tag in multi-tree broadcast");
  }
  if (!ctx.is_colored(me)) ctx.set_rank_data(me, msg.data);
  ctx.mark_colored(me);
  forward(ctx, me, static_cast<std::size_t>(msg.payload));
}

void MultiTreeBroadcast::on_sent(sim::Context&, Rank, const Message&) {}

std::vector<topo::Tree> make_rotated_trees(Rank num_procs, int count) {
  if (count < 1) throw std::invalid_argument("tree count must be >= 1");
  const topo::Tree base = topo::make_binomial_interleaved(num_procs);
  std::vector<topo::Tree> trees;
  trees.reserve(static_cast<std::size_t>(count));
  for (int t = 0; t < count; ++t) {
    if (t == 0 || num_procs <= 2) {
      trees.push_back(topo::make_binomial_interleaved(num_procs));
      continue;
    }
    // Rotate non-root labels by t * (P-1)/count so that low (inner) ranks
    // of the base tree land on high (mostly leaf) labels.
    const Rank shift = static_cast<Rank>(
        (static_cast<std::int64_t>(t) * (num_procs - 1)) / count);
    std::vector<Rank> sigma(static_cast<std::size_t>(num_procs));
    sigma[0] = 0;
    for (Rank r = 1; r < num_procs; ++r) {
      sigma[static_cast<std::size_t>(r)] =
          static_cast<Rank>(1 + (r - 1 + shift) % (num_procs - 1));
    }
    trees.push_back(topo::relabel_tree(base, sigma));
  }
  return trees;
}

}  // namespace ct::proto

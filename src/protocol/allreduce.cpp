#include "protocol/allreduce.hpp"

#include <stdexcept>

namespace ct::proto {

using sim::Message;
using topo::Rank;

CorrectedAllReduce::CorrectedAllReduce(const topo::Tree& tree, const sim::LogP& params,
                                       std::vector<std::int64_t> values,
                                       AllReduceConfig config)
    : reduce_(tree, params, std::move(values), config.reduce),
      broadcast_(tree, config.correction) {
  reduce_.set_on_root_done([this](sim::Context& ctx, std::int64_t result) {
    // The gather finished at the root: broadcast the result. begin() colors
    // the root, registers the payload and fires the tree sends; correction
    // handles ranks whose tree path is broken.
    broadcast_.set_payload(result);
    broadcast_.begin(ctx);
  });
}

void CorrectedAllReduce::begin(sim::Context& ctx) { reduce_.begin(ctx); }

void CorrectedAllReduce::on_receive(sim::Context& ctx, Rank me, const Message& msg) {
  switch (msg.tag) {
    case sim::tag::kReduce:
    case sim::tag::kReduceRing:
      reduce_.on_receive(ctx, me, msg);
      break;
    case sim::tag::kTree:
    case sim::tag::kCorrection:
    case sim::tag::kCorrReply:
      broadcast_.on_receive(ctx, me, msg);
      break;
    default:
      throw std::logic_error("unexpected message tag in corrected all-reduce");
  }
}

void CorrectedAllReduce::on_sent(sim::Context& ctx, Rank me, const Message& msg) {
  switch (msg.tag) {
    case sim::tag::kReduce:
    case sim::tag::kReduceRing:
      reduce_.on_sent(ctx, me, msg);
      break;
    default:
      broadcast_.on_sent(ctx, me, msg);
      break;
  }
}

void CorrectedAllReduce::on_timer(sim::Context& ctx, Rank me, std::int64_t id) {
  if (id == sim::timer::kCorrectionStart || id == sim::timer::kDelayExpired) {
    broadcast_.on_timer(ctx, me, id);
  } else {
    reduce_.on_timer(ctx, me, id);
  }
}

CorrectedBarrier::CorrectedBarrier(const topo::Tree& tree, const sim::LogP& params,
                                   AllReduceConfig config)
    : inner_(tree, params,
             std::vector<std::int64_t>(static_cast<std::size_t>(tree.num_procs()), 0),
             config) {}

void CorrectedBarrier::begin(sim::Context& ctx) { inner_.begin(ctx); }

void CorrectedBarrier::on_receive(sim::Context& ctx, Rank me, const Message& msg) {
  inner_.on_receive(ctx, me, msg);
}

void CorrectedBarrier::on_sent(sim::Context& ctx, Rank me, const Message& msg) {
  inner_.on_sent(ctx, me, msg);
}

void CorrectedBarrier::on_timer(sim::Context& ctx, Rank me, std::int64_t id) {
  inner_.on_timer(ctx, me, id);
}

}  // namespace ct::proto

#pragma once
// Configuration of a corrected broadcast (§3): which correction algorithm,
// how it starts (synchronized at a fixed time vs overlapped right after a
// process's own dissemination sends), correction distance, and direction
// policy.

#include <string>

#include "sim/time.hpp"

namespace ct::proto {

/// §3.1/§3.3 correction algorithms.
enum class CorrectionKind {
  kNone,                     ///< fault-agnostic broadcast (baseline, "d = 0")
  kOpportunistic,            ///< fixed d messages per direction
  kOptimizedOpportunistic,   ///< + coverage-based send-range reduction (§3.3)
  kChecked,                  ///< unbounded, stops on confirmed overlap
  kFailureProof,             ///< ack-driven, tolerates faults during correction
  kDelayed,                  ///< 1 message left, probe right after a delay (§3.3)
};

/// When correction begins (§3.3 "Synchronized and Overlapped Correction").
enum class CorrectionStart {
  kSynchronized,  ///< all processes at a pre-specified time
  kOverlapped,    ///< each process right after its own dissemination sends
};

/// Which ring directions correction messages travel. The MPI prototype in
/// §4.4 uses a single direction "for simplicity"; both is the general form.
enum class CorrectionDirections {
  kBoth,
  kLeftOnly,  ///< send only towards lower ranks (each process covers d below)
};

struct CorrectionConfig {
  CorrectionKind kind = CorrectionKind::kOptimizedOpportunistic;
  CorrectionStart start = CorrectionStart::kOverlapped;
  CorrectionDirections directions = CorrectionDirections::kBoth;

  /// Correction distance d (opportunistic variants only).
  int distance = 4;

  /// Absolute start time for synchronized correction. Callers usually set
  /// this to the fault-free dissemination completion time (the tree schedule
  /// does not stretch under failures, so that instant is always valid).
  sim::Time sync_time = 0;

  /// Delay before probing right (delayed correction only).
  sim::Time delay = 0;

  /// Redundancy for failure-proof correction: the number of concurrently
  /// responsible relays per direction; tolerates `redundancy - 1` failures
  /// during the correction phase.
  int redundancy = 2;

  std::string to_string() const;
  bool operator==(const CorrectionConfig&) const = default;
};

/// CLI names: "none", "opportunistic", "opportunistic-plain", "checked",
/// "failure-proof", "delayed" (optionally ":d" suffix for distance).
CorrectionKind parse_correction_kind(const std::string& text);
std::string correction_kind_name(CorrectionKind kind);

/// CLI names: "sync" / "overlapped" (the one string-typed axis every bench
/// and tool used to re-compare by hand).
CorrectionStart parse_correction_start(const std::string& text);
std::string correction_start_name(CorrectionStart start);

}  // namespace ct::proto

#pragma once
// Corrected Gossip broadcast (Hoefler et al. [17]; §3.1) — the competing
// baseline the paper evaluates against. Dissemination: colored processes
// send the payload to uniformly random targets; after a fixed gossip budget
// all colored processes enter correction.
//
// Two budget modes:
//  * Time-based (the original Corrected Gossip): gossip until a global
//    deadline; correction starts synchronized at that deadline.
//  * Round-based (the paper's own MPI prototype, §4.4: wall-clock limits
//    are impractical on a real cluster, so "each message carries the
//    current gossip round, which gets incremented each time a message is
//    sent; when a node receives a message with the gossip round equal to
//    the predefined limit, it enters the correction phase").

#include <memory>
#include <vector>

#include "protocol/config.hpp"
#include "protocol/correction.hpp"
#include "protocol/scratch.hpp"
#include "sim/protocol.hpp"
#include "support/rng.hpp"

namespace ct::proto {

/// Per-rank gossip state (see scratch.hpp for the reuse contract).
struct GossipCell {
  std::uint64_t epoch = 0;
  std::int64_t round = 0;         // round-based: next round to send
  std::uint8_t colored = 0;       // colored during dissemination
  std::uint8_t in_correction = 0;
};
using GossipScratch = RankScratch<GossipCell>;

struct GossipConfig {
  enum class Budget { kTime, kRounds };
  Budget budget = Budget::kTime;

  /// Time-based: absolute gossip deadline (= correction sync point).
  sim::Time gossip_time = 0;
  /// Round-based: a process whose coloring message carried this round (or
  /// whose own counter reached it) stops gossiping and enters correction.
  std::int64_t gossip_rounds = 0;

  CorrectionConfig correction;
  std::uint64_t seed = 1;
  /// Broadcast content word; every colored process ends up holding it.
  std::int64_t payload = 0;
};

class CorrectedGossipBroadcast final : public sim::Protocol {
 public:
  /// The optional scratches recycle per-rank state across replications
  /// (ReplicaPlan); both must outlive the protocol when given.
  CorrectedGossipBroadcast(topo::Rank num_procs, GossipConfig config,
                           GossipScratch* scratch = nullptr,
                           CorrectionScratch* correction_scratch = nullptr);

  void begin(sim::Context& ctx) override;
  void on_receive(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_sent(sim::Context& ctx, topo::Rank me, const sim::Message& msg) override;
  void on_timer(sim::Context& ctx, topo::Rank me, std::int64_t id) override;

 private:
  void start_gossip(sim::Context& ctx, topo::Rank me, std::int64_t round);
  void gossip_send(sim::Context& ctx, topo::Rank me);
  void enter_correction(sim::Context& ctx, topo::Rank me);

  topo::Rank num_procs_;
  GossipConfig config_;
  // Borrowed from the scratch's reuse cache when a caller scratch is given
  // (see CorrectedTreeBroadcast), privately owned otherwise.
  std::unique_ptr<CorrectionEngine> owned_engine_;
  CorrectionEngine* engine_ = nullptr;

  std::unique_ptr<GossipScratch> owned_scratch_;  // when no caller scratch given
  RankScratchView<GossipCell> state_;
};

}  // namespace ct::proto

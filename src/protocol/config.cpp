#include "protocol/config.hpp"

#include <stdexcept>

namespace ct::proto {

std::string correction_kind_name(CorrectionKind kind) {
  switch (kind) {
    case CorrectionKind::kNone:
      return "none";
    case CorrectionKind::kOpportunistic:
      return "opportunistic-plain";
    case CorrectionKind::kOptimizedOpportunistic:
      return "opportunistic";
    case CorrectionKind::kChecked:
      return "checked";
    case CorrectionKind::kFailureProof:
      return "failure-proof";
    case CorrectionKind::kDelayed:
      return "delayed";
  }
  throw std::logic_error("unreachable correction kind");
}

CorrectionKind parse_correction_kind(const std::string& text) {
  if (text == "none") return CorrectionKind::kNone;
  if (text == "opportunistic-plain") return CorrectionKind::kOpportunistic;
  if (text == "opportunistic") return CorrectionKind::kOptimizedOpportunistic;
  if (text == "checked") return CorrectionKind::kChecked;
  if (text == "failure-proof") return CorrectionKind::kFailureProof;
  if (text == "delayed") return CorrectionKind::kDelayed;
  throw std::invalid_argument("unknown correction kind '" + text + "'");
}

CorrectionStart parse_correction_start(const std::string& text) {
  if (text == "sync" || text == "synchronized") return CorrectionStart::kSynchronized;
  if (text == "overlapped") return CorrectionStart::kOverlapped;
  throw std::invalid_argument("unknown correction start '" + text +
                              "' (use sync|overlapped)");
}

std::string correction_start_name(CorrectionStart start) {
  return start == CorrectionStart::kSynchronized ? "sync" : "overlapped";
}

std::string CorrectionConfig::to_string() const {
  std::string result = correction_kind_name(kind);
  if (kind == CorrectionKind::kOpportunistic ||
      kind == CorrectionKind::kOptimizedOpportunistic) {
    result += ":" + std::to_string(distance);
  }
  result += (start == CorrectionStart::kSynchronized) ? "/sync" : "/overlapped";
  if (directions == CorrectionDirections::kLeftOnly) result += "/left-only";
  return result;
}

}  // namespace ct::proto

#include "protocol/correction.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ct::proto {

using sim::Message;
using topo::Rank;

void CorrectionEngine::on_timer(sim::Context&, Rank, std::int64_t) {}

std::int64_t CorrectionEngine::signed_offset(Rank me, Rank other) const {
  const std::int64_t right = ring_.distance_right(me, other);
  const std::int64_t left = ring_.distance_left(me, other);
  return (right <= left) ? right : -left;
}

namespace {

// Correction message payload: the signed ring distance the message travelled
// (+k = sender sent k to the right, -k = k to the left). The receiver learns
// which side the sender is on and how far, without the min-distance
// ambiguity of deriving it from ranks on small rings.
std::int64_t probe_payload(std::int64_t signed_distance) { return signed_distance; }

// Reply payload: the original probe's signed distance plus a flag saying
// whether the replier is a dissemination-colored participant. Encoded as
// dist*2 + flag (two's complement keeps the parity trick valid for
// negatives).
std::int64_t reply_payload(std::int64_t probe_distance, bool participant) {
  return probe_distance * 2 + (participant ? 1 : 0);
}
std::int64_t reply_distance(std::int64_t payload) {
  const std::int64_t flag = payload & 1;
  return (payload - flag) / 2;
}
bool reply_participant(std::int64_t payload) { return (payload & 1) != 0; }

/// Epoch-gated view over one of CorrectionScratch's state vectors: binds to
/// the caller's scratch (or a privately owned one), bumps the epoch so every
/// entry from previous runs reads as freshly value-initialised, and lazily
/// re-stamps entries on first touch.
template <class State>
class EngineStates {
 public:
  EngineStates(std::unique_ptr<CorrectionScratch>& owned, CorrectionScratch* scratch,
               std::vector<State> CorrectionScratch::* member, Rank num_procs) {
    store_ = scratch ? scratch : (owned = std::make_unique<CorrectionScratch>()).get();
    epoch_ = ++store_->epoch;
    vec_ = &(store_->*member);
    if (vec_->size() < static_cast<std::size_t>(num_procs)) {
      vec_->resize(static_cast<std::size_t>(num_procs));
    }
  }

  /// New run over the same vector: bump the store epoch so every entry reads
  /// as value-initialised again — exactly what constructing a fresh
  /// EngineStates over this scratch would do.
  void reset() { epoch_ = ++store_->epoch; }

  State& operator[](Rank r) {
    State& s = (*vec_)[static_cast<std::size_t>(r)];
    if (s.epoch != epoch_) {
      s = State{};
      s.epoch = epoch_;
    }
    return s;
  }

 private:
  CorrectionScratch* store_ = nullptr;
  std::vector<State>* vec_ = nullptr;
  std::uint64_t epoch_ = 0;
};

// ---------------------------------------------------------------------------
// Opportunistic correction (plain and optimized, §3.1 + §3.3).
// ---------------------------------------------------------------------------

class OpportunisticEngine final : public CorrectionEngine {
 public:
  OpportunisticEngine(Rank num_procs, int distance, bool optimized,
                      CorrectionDirections directions, CorrectionScratch* scratch)
      : CorrectionEngine(num_procs),
        distance_(distance),
        optimized_(optimized),
        both_(directions == CorrectionDirections::kBoth),
        state_(owned_, scratch, &CorrectionScratch::opportunistic, num_procs) {
    if (distance < 0) throw std::invalid_argument("correction distance must be >= 0");
  }

  void start(sim::Context& ctx, Rank me) override {
    auto& s = state_[me];
    if (s.active) return;
    s.active = true;
    s.next_left = true;  // first message goes left (Lemma 2 convention)
    send_next(ctx, me);
  }

  void on_message(sim::Context& ctx, Rank me, const Message& msg) override {
    if (msg.tag != sim::tag::kCorrection) return;
    ctx.mark_colored(me);
    if (!optimized_) return;
    auto& s = state_[me];
    if (!s.active) return;
    // §3.3 optimization: a message from j at distance `dist` proves that j
    // covers [j-d, j-1] with its left messages (and, in both-directions
    // mode, [j+1, j+d] with its right messages). For j on our right that
    // leaves us only the left targets below j-d — "process 19 receives a
    // correction message from process 23; with d = 8, 23 surely sends
    // messages to processes 22, ..., 15, so 19 has to send only to
    // 14, ..., 11" — and it covers our entire right range.
    const std::int64_t dist = msg.payload < 0 ? -msg.payload : msg.payload;
    if (dist > distance_) return;  // cannot overlap our range
    const std::int64_t exhausted = static_cast<std::int64_t>(distance_) + 1;
    if (msg.payload < 0) {
      // Sender is to our right (it sent leftward).
      s.left_next = std::max(s.left_next, static_cast<std::int64_t>(distance_) - dist + 1);
      if (both_) s.right_next = exhausted;  // [i+1, i+d] ⊆ [j-d, j+d]
    } else if (both_) {
      s.right_next = std::max(s.right_next, static_cast<std::int64_t>(distance_) - dist + 1);
      s.left_next = exhausted;
    }
  }

  void on_sent(sim::Context& ctx, Rank me, const Message& msg) override {
    if (msg.tag != sim::tag::kCorrection) return;
    send_next(ctx, me);
  }

  void reset() override { state_.reset(); }

 private:
  void send_next(sim::Context& ctx, Rank me) {
    auto& s = state_[me];
    const std::int64_t limit =
        std::min<std::int64_t>(distance_, ring_.num_procs() - 1);
    const int tries = both_ ? 2 : 1;
    for (int attempt = 0; attempt < tries; ++attempt) {
      const bool left = both_ ? s.next_left : true;
      if (both_) s.next_left = !s.next_left;
      auto& next = left ? s.left_next : s.right_next;
      if (next <= limit) {
        const std::int64_t dist = next++;
        const Rank target = left ? ring_.left(me, dist) : ring_.right(me, dist);
        ctx.send(me, target, sim::tag::kCorrection, probe_payload(left ? -dist : dist));
        return;
      }
    }
  }

  int distance_;
  bool optimized_;
  bool both_;
  std::unique_ptr<CorrectionScratch> owned_;
  EngineStates<detail::OpportunisticState> state_;
};

// ---------------------------------------------------------------------------
// Checked correction (§3.1).
// ---------------------------------------------------------------------------

class CheckedEngine final : public CorrectionEngine {
 public:
  CheckedEngine(Rank num_procs, CorrectionDirections directions, CorrectionScratch* scratch)
      : CorrectionEngine(num_procs),
        both_(directions == CorrectionDirections::kBoth),
        state_(owned_, scratch, &CorrectionScratch::checked, num_procs) {}

  void start(sim::Context& ctx, Rank me) override {
    auto& s = state_[me];
    if (s.active) return;
    s.active = true;
    s.next_left = true;
    if (!both_) s.right_stop = true;
    send_next(ctx, me);
  }

  void on_message(sim::Context& ctx, Rank me, const Message& msg) override {
    if (msg.tag != sim::tag::kCorrection) return;
    ctx.mark_colored(me);
    auto& s = state_[me];
    if (!s.active) return;
    const std::int64_t dist = msg.payload < 0 ? -msg.payload : msg.payload;
    if (msg.payload < 0) {
      // Sender is to our right at `dist`. Stop sending right once we have
      // sent to it (possibly already done).
      if (s.right_next > dist) {
        s.right_stop = true;
      } else {
        s.right_stop_dist = std::min(s.right_stop_dist, dist);
      }
    } else {
      if (s.left_next > dist) {
        s.left_stop = true;
      } else {
        s.left_stop_dist = std::min(s.left_stop_dist, dist);
      }
    }
  }

  void on_sent(sim::Context& ctx, Rank me, const Message& msg) override {
    if (msg.tag != sim::tag::kCorrection) return;
    auto& s = state_[me];
    const std::int64_t dist = msg.payload < 0 ? -msg.payload : msg.payload;
    if (msg.payload < 0) {
      if (dist >= s.left_stop_dist) s.left_stop = true;
    } else {
      if (dist >= s.right_stop_dist) s.right_stop = true;
    }
    send_next(ctx, me);
  }

  void reset() override { state_.reset(); }

 private:
  void send_next(sim::Context& ctx, Rank me) {
    auto& s = state_[me];
    const std::int64_t limit = ring_.num_procs() - 1;  // full wrap = done
    for (int attempt = 0; attempt < 2; ++attempt) {
      const bool left = s.next_left;
      s.next_left = !s.next_left;
      const bool stopped = left ? s.left_stop : s.right_stop;
      auto& next = left ? s.left_next : s.right_next;
      if (!stopped && next <= limit) {
        const std::int64_t dist = next++;
        const Rank target = left ? ring_.left(me, dist) : ring_.right(me, dist);
        ctx.send(me, target, sim::tag::kCorrection, probe_payload(left ? -dist : dist));
        return;
      }
    }
  }

  bool both_;
  std::unique_ptr<CorrectionScratch> owned_;
  EngineStates<detail::CheckedState> state_;
};

// ---------------------------------------------------------------------------
// Failure-proof correction: ack-driven generalisation of checked correction
// that keeps its guarantee when processes die during the correction phase.
// See the header and DESIGN.md for the exact scheme and its tolerance bound.
// ---------------------------------------------------------------------------

class FailureProofEngine final : public CorrectionEngine {
 public:
  FailureProofEngine(Rank num_procs, int redundancy, CorrectionDirections directions,
                     CorrectionScratch* scratch)
      : CorrectionEngine(num_procs),
        redundancy_(redundancy),
        both_(directions == CorrectionDirections::kBoth),
        state_(owned_, scratch, &CorrectionScratch::failure_proof, num_procs) {
    if (redundancy < 1) throw std::invalid_argument("redundancy must be >= 1");
  }

  void start(sim::Context& ctx, Rank me) override {
    auto& s = state_[me];
    if (s.participant) return;
    s.participant = true;
    s.probe_left = true;
    s.probe_right = both_;
    maybe_send(ctx, me);
  }

  void on_message(sim::Context& ctx, Rank me, const Message& msg) override {
    auto& s = state_[me];
    if (msg.tag == sim::tag::kCorrection) {
      const bool was_colored = ctx.is_colored(me);
      ctx.mark_colored(me);
      // Always acknowledge a probe; the flag tells the prober whether we are
      // a participant with our own independent coverage of the direction.
      ctx.send(me, msg.src, sim::tag::kCorrReply, reply_payload(msg.payload, s.participant));
      // A process newly colored by correction relays the probe onward in its
      // travel direction — the redundancy that makes the scheme survive
      // deaths during correction.
      if (!was_colored && !s.participant) {
        if (msg.payload < 0 && !s.probe_left) {
          s.probe_left = true;
          maybe_send(ctx, me);
        } else if (msg.payload > 0 && !s.probe_right) {
          s.probe_right = true;
          maybe_send(ctx, me);
        }
      }
      return;
    }
    if (msg.tag == sim::tag::kCorrReply) {
      const std::int64_t dist = reply_distance(msg.payload);
      const bool participant = reply_participant(msg.payload);
      if (dist < 0) {
        // Our leftward probe was answered.
        ++s.left_replies;
        if (participant || s.left_replies >= redundancy_) s.left_stop = true;
      } else {
        ++s.right_replies;
        if (participant || s.right_replies >= redundancy_) s.right_stop = true;
      }
      return;
    }
  }

  void on_sent(sim::Context& ctx, Rank me, const Message& msg) override {
    if (msg.tag == sim::tag::kCorrection) {
      auto& s = state_[me];
      s.in_flight = false;
      maybe_send(ctx, me);
    } else if (msg.tag == sim::tag::kCorrReply) {
      // Replies share the send port; resume probing if one was pending.
      auto& s = state_[me];
      if (!s.in_flight) maybe_send(ctx, me);
    }
  }

  void reset() override { state_.reset(); }

 private:
  void maybe_send(sim::Context& ctx, Rank me) {
    auto& s = state_[me];
    if (s.in_flight) return;
    const std::int64_t limit = ring_.num_procs() - 1;
    for (int attempt = 0; attempt < 2; ++attempt) {
      const bool left = s.next_left;
      s.next_left = !s.next_left;
      const bool responsible = left ? s.probe_left : s.probe_right;
      const bool stopped = left ? s.left_stop : s.right_stop;
      auto& next = left ? s.left_next : s.right_next;
      if (responsible && !stopped && next <= limit) {
        const std::int64_t dist = next++;
        const Rank target = left ? ring_.left(me, dist) : ring_.right(me, dist);
        s.in_flight = true;
        ctx.send(me, target, sim::tag::kCorrection, probe_payload(left ? -dist : dist));
        return;
      }
    }
  }

  int redundancy_;
  bool both_;
  std::unique_ptr<CorrectionScratch> owned_;
  EngineStates<detail::FailureProofState> state_;
};

// ---------------------------------------------------------------------------
// Delayed correction (§3.3): one message left; probe right only if no
// message from the right arrives within `delay`.
// ---------------------------------------------------------------------------

class DelayedEngine final : public CorrectionEngine {
 public:
  DelayedEngine(Rank num_procs, sim::Time delay, CorrectionScratch* scratch)
      : CorrectionEngine(num_procs),
        delay_(delay),
        state_(owned_, scratch, &CorrectionScratch::delayed, num_procs) {
    if (delay < 0) throw std::invalid_argument("delayed correction needs delay >= 0");
  }

  void start(sim::Context& ctx, Rank me) override {
    auto& s = state_[me];
    if (s.participant) return;
    s.participant = true;
    if (ring_.num_procs() < 2) return;
    ctx.send(me, ring_.left(me, 1), sim::tag::kCorrection, probe_payload(-1));
    ctx.set_timer(me, ctx.now() + delay_, sim::timer::kDelayExpired);
  }

  void on_message(sim::Context& ctx, Rank me, const Message& msg) override {
    auto& s = state_[me];
    if (msg.tag == sim::tag::kCorrection) {
      ctx.mark_colored(me);
      if (msg.payload < 0) {
        // Sent leftward, so it came from our right: the expected signal.
        s.got_from_right = true;
      } else if (s.participant) {
        // A rightward probe from the left; stop the prober (§3.3: "if a
        // process colored by dissemination receives a message from the
        // left, it immediately replies to stop the sender").
        ctx.send(me, msg.src, sim::tag::kCorrReply, reply_payload(msg.payload, true));
      }
    } else if (msg.tag == sim::tag::kCorrReply) {
      // Stop-reply to our rightward probing.
      s.got_from_right = true;
    }
  }

  void on_sent(sim::Context& ctx, Rank me, const Message& msg) override {
    auto& s = state_[me];
    if (msg.tag != sim::tag::kCorrection || !s.probing) return;
    if (!s.got_from_right && s.right_next <= ring_.num_procs() - 1) {
      const std::int64_t dist = s.right_next++;
      ctx.send(me, ring_.right(me, dist), sim::tag::kCorrection, probe_payload(dist));
    }
  }

  void on_timer(sim::Context& ctx, Rank me, std::int64_t id) override {
    if (id != sim::timer::kDelayExpired) return;
    auto& s = state_[me];
    if (!s.participant || s.got_from_right || s.probing) return;
    s.probing = true;
    if (s.right_next <= ring_.num_procs() - 1) {
      const std::int64_t dist = s.right_next++;
      ctx.send(me, ring_.right(me, dist), sim::tag::kCorrection, probe_payload(dist));
    }
  }

  void reset() override { state_.reset(); }

 private:
  sim::Time delay_;
  std::unique_ptr<CorrectionScratch> owned_;
  EngineStates<detail::DelayedState> state_;
};

}  // namespace

std::unique_ptr<CorrectionEngine> make_correction_engine(const CorrectionConfig& config,
                                                         Rank num_procs,
                                                         CorrectionScratch* scratch) {
  switch (config.kind) {
    case CorrectionKind::kNone:
      return nullptr;
    case CorrectionKind::kOpportunistic:
      return std::make_unique<OpportunisticEngine>(num_procs, config.distance,
                                                   /*optimized=*/false, config.directions,
                                                   scratch);
    case CorrectionKind::kOptimizedOpportunistic:
      return std::make_unique<OpportunisticEngine>(num_procs, config.distance,
                                                   /*optimized=*/true, config.directions,
                                                   scratch);
    case CorrectionKind::kChecked:
      return std::make_unique<CheckedEngine>(num_procs, config.directions, scratch);
    case CorrectionKind::kFailureProof:
      return std::make_unique<FailureProofEngine>(num_procs, config.redundancy,
                                                  config.directions, scratch);
    case CorrectionKind::kDelayed:
      return std::make_unique<DelayedEngine>(num_procs, config.delay, scratch);
  }
  throw std::logic_error("unreachable correction kind");
}

CorrectionEngine* acquire_correction_engine(const CorrectionConfig& config, Rank num_procs,
                                            CorrectionScratch& scratch) {
  if (config.kind == CorrectionKind::kNone) return nullptr;
  if (scratch.engine_cache && scratch.engine_config == config &&
      scratch.engine_procs == num_procs) {
    scratch.engine_cache->reset();
    return scratch.engine_cache.get();
  }
  scratch.engine_cache = make_correction_engine(config, num_procs, &scratch);
  scratch.engine_config = config;
  scratch.engine_procs = num_procs;
  return scratch.engine_cache.get();
}

}  // namespace ct::proto

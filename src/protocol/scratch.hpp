#pragma once
// Reusable per-rank protocol state (PR-2 extension of the sim::Workspace
// idea, see DESIGN.md §4b). A protocol's per-rank vectors are the dominant
// setup cost of a replication once the event engine reuses its workspace;
// RankScratch lets a sweep keep them alive across replications.
//
// An Entry is a POD whose first field is `std::uint64_t epoch`; its other
// default member initialisers are the protocol-visible initial state. A
// protocol binds a RankScratchView over the scratch per run: binding bumps
// the scratch epoch (O(1) invalidation of everything the last run wrote)
// and entry access lazily value-resets stale entries, so a reused scratch
// is bit-identical to a freshly allocated vector. Exception safety matches
// sim::Workspace: an aborted run leaves only stale-epoch entries behind,
// which the next bind invalidates wholesale — no hard clear is ever needed.

#include <cstdint>
#include <memory>
#include <vector>

#include "topology/tree.hpp"

namespace ct::proto {

template <class Entry>
struct RankScratch {
  std::uint64_t epoch = 0;
  std::vector<Entry> entries;
};

/// One run's view over a RankScratch: borrows the caller's scratch, or owns
/// a private one when the caller passed nullptr (the one-off path). Either
/// way the entries vector is grown to P once and epoch-invalidated per run.
template <class Entry>
class RankScratchView {
 public:
  RankScratchView(std::unique_ptr<RankScratch<Entry>>& owned, RankScratch<Entry>* scratch,
                  topo::Rank num_procs) {
    RankScratch<Entry>& store =
        scratch ? *scratch : *(owned = std::make_unique<RankScratch<Entry>>());
    epoch_ = ++store.epoch;
    entries_ = &store.entries;
    if (entries_->size() < static_cast<std::size_t>(num_procs)) {
      entries_->resize(static_cast<std::size_t>(num_procs));
    }
  }

  Entry& operator[](topo::Rank r) {
    Entry& e = (*entries_)[static_cast<std::size_t>(r)];
    if (e.epoch != epoch_) {
      e = Entry{};
      e.epoch = epoch_;
    }
    return e;
  }

 private:
  std::vector<Entry>* entries_ = nullptr;
  std::uint64_t epoch_ = 0;
};

}  // namespace ct::proto

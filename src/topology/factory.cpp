#include "topology/factory.hpp"

#include <stdexcept>

namespace ct::topo {

namespace {

int parse_arity(const std::string& text, std::size_t colon, int fallback) {
  if (colon == std::string::npos) return fallback;
  const std::string arg = text.substr(colon + 1);
  std::size_t pos = 0;
  const int value = std::stoi(arg, &pos);
  if (pos != arg.size() || value < 1) {
    throw std::invalid_argument("bad arity in tree spec '" + text + "'");
  }
  return value;
}

}  // namespace

std::string TreeSpec::to_string() const {
  switch (kind) {
    case TreeKind::kKAryInOrder:
      return "kary-inorder:" + std::to_string(arity);
    case TreeKind::kKAryInterleaved:
      return "kary:" + std::to_string(arity);
    case TreeKind::kBinomialInOrder:
      return "binomial-inorder";
    case TreeKind::kBinomialInterleaved:
      return "binomial";
    case TreeKind::kLame:
      return "lame:" + std::to_string(arity);
    case TreeKind::kOptimal:
      return "optimal";
  }
  throw std::logic_error("unreachable tree kind");
}

TreeSpec parse_tree_spec(const std::string& text) {
  TreeSpec spec;
  const std::size_t colon = text.find(':');
  const std::string base = text.substr(0, colon);
  if (base == "binomial") {
    spec.kind = TreeKind::kBinomialInterleaved;
  } else if (base == "binomial-inorder") {
    spec.kind = TreeKind::kBinomialInOrder;
  } else if (base == "kary") {
    spec.kind = TreeKind::kKAryInterleaved;
    spec.arity = parse_arity(text, colon, 2);
  } else if (base == "kary-inorder") {
    spec.kind = TreeKind::kKAryInOrder;
    spec.arity = parse_arity(text, colon, 2);
  } else if (base == "lame") {
    spec.kind = TreeKind::kLame;
    spec.arity = parse_arity(text, colon, 2);
  } else if (base == "optimal") {
    spec.kind = TreeKind::kOptimal;
  } else {
    throw std::invalid_argument("unknown tree spec '" + text + "'");
  }
  return spec;
}

Tree make_tree(const TreeSpec& spec, Rank num_procs) {
  switch (spec.kind) {
    case TreeKind::kKAryInOrder:
      return make_kary_inorder(num_procs, spec.arity);
    case TreeKind::kKAryInterleaved:
      return make_kary_interleaved(num_procs, spec.arity);
    case TreeKind::kBinomialInOrder:
      return make_binomial_inorder(num_procs);
    case TreeKind::kBinomialInterleaved:
      return make_binomial_interleaved(num_procs);
    case TreeKind::kLame:
      return make_lame(num_procs, spec.arity);
    case TreeKind::kOptimal:
      return make_optimal(num_procs, spec.o, spec.L);
  }
  throw std::logic_error("unreachable tree kind");
}

Tree make_survivor_tree(const TreeSpec& spec, Rank live) {
  if (live < 1) {
    throw std::invalid_argument("make_survivor_tree: no surviving ranks");
  }
  // Structure depends only on the live count: the builders are all
  // rank-count parameterised, so a repaired tree is exactly the tree the
  // family would have produced for a fresh job of `live` ranks.
  return make_tree(spec, live);
}

}  // namespace ct::topo

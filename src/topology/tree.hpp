#pragma once
// Dissemination trees (paper §3.2). A Tree is a rooted spanning tree over
// ranks 0..P-1 whose parent→child edges are the sender→receiver relations of
// the dissemination phase; rank order simultaneously defines the correction
// ring (§3.3). The numbering scheme (in-order vs interleaved) is the paper's
// central knob: it controls the gap structure failures leave on the ring.

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ct::topo {

/// Process rank. Ranks are dense, 0-based; rank 0 is the broadcast root.
using Rank = std::int32_t;

inline constexpr Rank kNoRank = -1;

/// Materialised tree in CSR (compressed sparse row) form: one flat child
/// array plus per-rank offsets, alongside the parent/depth/subtree arrays.
/// All tree families build into this representation once; protocol code and
/// the simulator only consume the materialised form. The hot accessors
/// (parent / children / depth / subtree_size) are executed once per
/// simulated message, so they are unchecked indexed reads (range asserts in
/// debug builds only) with no per-node heap indirection: children(r) is a
/// span into the shared flat array.
class Tree {
 public:
  Tree(std::string name, std::vector<Rank> parent, std::vector<std::vector<Rank>> children);

  const std::string& name() const noexcept { return name_; }
  Rank num_procs() const noexcept { return static_cast<Rank>(parent_.size()); }
  Rank root() const noexcept { return 0; }

  Rank parent(Rank r) const noexcept {
    assert(r >= 0 && r < num_procs());
    return parent_[static_cast<std::size_t>(r)];
  }
  /// Children in the order the parent sends to them during dissemination.
  std::span<const Rank> children(Rank r) const noexcept {
    assert(r >= 0 && r < num_procs());
    const auto begin = static_cast<std::size_t>(child_offset_[static_cast<std::size_t>(r)]);
    const auto end = static_cast<std::size_t>(child_offset_[static_cast<std::size_t>(r) + 1]);
    return {child_list_.data() + begin, end - begin};
  }

  /// Depth of rank r (root has depth 0).
  int depth(Rank r) const noexcept {
    assert(r >= 0 && r < num_procs());
    return depth_[static_cast<std::size_t>(r)];
  }
  /// Height of the tree: max depth over all ranks.
  int height() const noexcept { return height_; }
  /// Number of ranks in the subtree rooted at r (including r).
  Rank subtree_size(Rank r) const noexcept {
    assert(r >= 0 && r < num_procs());
    return subtree_size_[static_cast<std::size_t>(r)];
  }
  /// All ranks of the subtree rooted at r, ascending.
  std::vector<Rank> subtree_ranks(Rank r) const;

  /// Lowest common ancestor of two ranks.
  Rank lca(Rank a, Rank b) const;

  /// Max number of children over all ranks.
  int max_fanout() const noexcept;

 private:
  void validate_and_index(const std::vector<std::vector<Rank>>& children);

  std::string name_;
  std::vector<Rank> parent_;
  std::vector<std::int32_t> child_offset_;  // P + 1 entries; row r = [offset[r], offset[r+1])
  std::vector<Rank> child_list_;            // P - 1 entries, send order within each row
  std::vector<std::int32_t> depth_;
  std::vector<Rank> subtree_size_;
  int height_ = 0;
};

// --- Tree families (§3.2) ---------------------------------------------------

/// k-ary tree numbered by depth-first preorder ("in-order" in the paper,
/// Fig. 3 left): every subtree occupies a contiguous rank interval, so one
/// failure leaves one large gap on the ring.
Tree make_kary_inorder(Rank num_procs, int arity);

/// k-ary tree with interleaved numbering (§3.2.1, Fig. 3 right):
/// children(r) = { r + i*k^level : 0 < i <= k }. A failure at level l leaves
/// gaps of size 1 at stride k^l.
Tree make_kary_interleaved(Rank num_procs, int arity);

/// Binomial tree with contiguous-subtree (DFS) numbering (Fig. 4 left).
Tree make_binomial_inorder(Rank num_procs);

/// Interleaved binomial tree (Fig. 4 right): children(r) = { r + 2^i : 2^i > r }.
/// Equal to the Lamé tree of order 1.
Tree make_binomial_interleaved(Rank num_procs);

/// Interleaved Lamé tree of order k (§3.2.2, Eq. 1+2). k = 1 is binomial.
/// Latency-optimal in LogP whenever 2o + L = k.
Tree make_lame(Rank num_procs, int order);

/// Latency-optimal LogP tree (§3.2.3): T_t = T_{t-o} • T_{t-2o-L}, with
/// interleaved numbering.
Tree make_optimal(Rank num_procs, std::int64_t o, std::int64_t L);

/// Relabels a tree through a bijection: node r becomes sigma[r] (sigma[0]
/// must be 0 so the root keeps rank 0). Child send order is preserved.
/// Used for the paper's §2.1 random renumbering and the multi-tree baseline
/// (§5) — note that relabeling generally destroys the Definition-1
/// interleaving property.
Tree relabel_tree(const Tree& tree, const std::vector<Rank>& sigma);

// --- Closed-form helpers (exposed for property tests) -----------------------

/// Ready-to-send sequence R(t) of a Lamé tree of the given order (Eq. 1):
/// R(t) = 0 for t < 0; 1 for 0 <= t < k; R(t-1) + R(t-k) otherwise.
std::int64_t lame_ready_to_send(int order, std::int64_t t);

/// Ready-to-send sequence of the optimal tree (§3.2.3):
/// R(t) = 0 for t < 0; 1 for 0 <= t < 2o+L; R(t-o) + R(t-2o-L) otherwise.
std::int64_t optimal_ready_to_send(std::int64_t o, std::int64_t L, std::int64_t t);

/// Children of rank r by the paper's closed formula Eq. (2):
/// { r' = r + R(i + k - 1) : i >= s', R(s') > r, r' < P }.
std::vector<Rank> lame_children_formula(Rank r, Rank num_procs, int order);

/// Children of rank r in the optimal tree by the §3.2.3 formula:
/// { r' = r + R(i + o + L) : i >= s', R(s') > r, r' < P } with i stepping by o.
std::vector<Rank> optimal_children_formula(Rank r, Rank num_procs, std::int64_t o,
                                           std::int64_t L);

}  // namespace ct::topo

#include "topology/ring.hpp"

#include <stdexcept>

namespace ct::topo {

Ring::Ring(Rank num_procs) : num_procs_(num_procs) {
  if (num_procs <= 0) throw std::invalid_argument("ring needs at least one process");
}

Rank Ring::right(Rank r, std::int64_t steps) const noexcept {
  const std::int64_t p = num_procs_;
  std::int64_t pos = (static_cast<std::int64_t>(r) + steps) % p;
  if (pos < 0) pos += p;
  return static_cast<Rank>(pos);
}

Rank Ring::left(Rank r, std::int64_t steps) const noexcept { return right(r, -steps); }

Rank Ring::distance_right(Rank from, Rank to) const noexcept {
  std::int64_t d = static_cast<std::int64_t>(to) - from;
  if (d < 0) d += num_procs_;
  return static_cast<Rank>(d);
}

Rank Ring::distance_left(Rank from, Rank to) const noexcept {
  return distance_right(to, from);
}

bool Ring::between_right(Rank from, Rank mid, Rank to) const noexcept {
  const Rank to_mid = distance_right(from, mid);
  const Rank to_end = distance_right(from, to);
  return to_mid > 0 && to_mid <= to_end;
}

}  // namespace ct::topo

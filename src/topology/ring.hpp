#pragma once
// The correction ring (§3.1/§3.3): ranks 0..P-1 arranged in a cycle. The
// paper always uses the linear ring over ranks and expresses tree-to-ring
// mappings through the tree numbering, so the ring itself is plain modular
// arithmetic — centralised here so protocols and gap analysis agree on it.

#include <cstdint>

#include "topology/tree.hpp"

namespace ct::topo {

class Ring {
 public:
  explicit Ring(Rank num_procs);

  Rank num_procs() const noexcept { return num_procs_; }

  /// Neighbour `steps` positions to the right (ascending ranks, wrapping).
  Rank right(Rank r, std::int64_t steps = 1) const noexcept;
  /// Neighbour `steps` positions to the left (descending ranks, wrapping).
  Rank left(Rank r, std::int64_t steps = 1) const noexcept;

  /// Distance walking rightwards from `from` to `to` (in [0, P)).
  Rank distance_right(Rank from, Rank to) const noexcept;
  /// Distance walking leftwards from `from` to `to` (in [0, P)).
  Rank distance_left(Rank from, Rank to) const noexcept;

  /// True if `mid` lies strictly between `from` (exclusive) and `to`
  /// (inclusive) when walking rightwards from `from`.
  bool between_right(Rank from, Rank mid, Rank to) const noexcept;

 private:
  Rank num_procs_;
};

}  // namespace ct::topo

#include "topology/gaps.hpp"

#include <algorithm>
#include <stdexcept>

namespace ct::topo {

void analyze_gaps_into(const std::vector<char>& colored, GapStats& out) {
  const auto num = static_cast<Rank>(colored.size());
  if (num == 0) throw std::invalid_argument("empty coloring");

  // Find some colored anchor to start the circular scan from.
  Rank anchor = kNoRank;
  for (Rank r = 0; r < num; ++r) {
    if (colored[static_cast<std::size_t>(r)]) {
      anchor = r;
      break;
    }
  }
  if (anchor == kNoRank) {
    throw std::invalid_argument("gap analysis requires at least one colored process");
  }

  out.max_gap = 0;
  out.gap_count = 0;
  out.uncolored = 0;
  out.gap_sizes.clear();  // keeps capacity across reuse
  Rank run = 0;
  for (Rank step = 1; step <= num; ++step) {
    const Rank r = static_cast<Rank>((anchor + step) % num);
    if (colored[static_cast<std::size_t>(r)]) {
      if (run > 0) {
        out.gap_sizes.push_back(run);
        out.max_gap = std::max(out.max_gap, run);
        ++out.gap_count;
        out.uncolored += run;
        run = 0;
      }
    } else {
      ++run;
    }
  }
  // The scan ends back on the colored anchor, so any open run has closed.
}

GapStats analyze_gaps(const std::vector<char>& colored) {
  GapStats stats;
  analyze_gaps_into(colored, stats);
  return stats;
}

bool every_nth_colored(const std::vector<char>& colored, Rank stride) {
  if (stride <= 0) throw std::invalid_argument("stride must be positive");
  const GapStats stats = analyze_gaps(colored);
  return stats.max_gap < stride;
}

}  // namespace ct::topo

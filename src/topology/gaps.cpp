#include "topology/gaps.hpp"

#include <algorithm>
#include <stdexcept>

namespace ct::topo {

GapStats analyze_gaps(const std::vector<char>& colored) {
  const auto num = static_cast<Rank>(colored.size());
  if (num == 0) throw std::invalid_argument("empty coloring");

  // Find some colored anchor to start the circular scan from.
  Rank anchor = kNoRank;
  for (Rank r = 0; r < num; ++r) {
    if (colored[static_cast<std::size_t>(r)]) {
      anchor = r;
      break;
    }
  }
  if (anchor == kNoRank) {
    throw std::invalid_argument("gap analysis requires at least one colored process");
  }

  GapStats stats;
  Rank run = 0;
  for (Rank step = 1; step <= num; ++step) {
    const Rank r = static_cast<Rank>((anchor + step) % num);
    if (colored[static_cast<std::size_t>(r)]) {
      if (run > 0) {
        stats.gap_sizes.push_back(run);
        stats.max_gap = std::max(stats.max_gap, run);
        ++stats.gap_count;
        stats.uncolored += run;
        run = 0;
      }
    } else {
      ++run;
    }
  }
  // The scan ends back on the colored anchor, so any open run has closed.
  return stats;
}

bool every_nth_colored(const std::vector<char>& colored, Rank stride) {
  if (stride <= 0) throw std::invalid_argument("stride must be positive");
  const GapStats stats = analyze_gaps(colored);
  return stats.max_gap < stride;
}

}  // namespace ct::topo

#include "topology/interleave.hpp"

namespace ct::topo {

std::string InterleaveViolation::to_string() const {
  return "subtree rooted at " + std::to_string(subtree_root) + ": ring-adjacent pair (" +
         std::to_string(first) + ", " + std::to_string(second) +
         ") has common ancestor " + std::to_string(lca) +
         " which is neither of them nor the subtree root";
}

std::optional<InterleaveViolation> find_interleave_violation(const Tree& tree) {
  const Rank num = tree.num_procs();
  for (Rank root = 0; root < num; ++root) {
    // R_s preserves the relative rank order of T_s's nodes; subtree_ranks is
    // ascending, so consecutive entries (with wrap-around) are exactly the
    // adjacent pairs of R_s.
    const std::vector<Rank> ranks = tree.subtree_ranks(root);
    if (ranks.size() < 2) continue;
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      const Rank a = ranks[i];
      const Rank b = ranks[(i + 1) % ranks.size()];
      if (a == b) continue;
      const Rank lca = tree.lca(a, b);
      const bool descend = (lca == a) || (lca == b);  // one is the other's ancestor
      if (!descend && lca != root) {
        return InterleaveViolation{root, a, b, lca};
      }
    }
  }
  return std::nullopt;
}

}  // namespace ct::topo

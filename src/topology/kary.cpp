// k-ary trees (§3.2.1). Both numberings span a heap-shaped complete k-ary
// tree (all levels full except possibly the last, which fills left to right);
// only the rank labels differ.

#include <stdexcept>
#include <utility>

#include "topology/tree.hpp"

namespace ct::topo {

namespace {

void check_args(Rank num_procs, int arity) {
  if (num_procs <= 0) throw std::invalid_argument("k-ary tree needs at least one process");
  if (arity < 1) throw std::invalid_argument("k-ary tree needs arity >= 1");
}

}  // namespace

Tree make_kary_inorder(Rank num_procs, int arity) {
  check_args(num_procs, arity);
  std::vector<Rank> parent(static_cast<std::size_t>(num_procs), kNoRank);
  std::vector<std::vector<Rank>> children(static_cast<std::size_t>(num_procs));

  // Depth-first preorder over heap indices; the visit counter is the rank.
  // An explicit stack holds (heap_index, parent_rank); children are pushed in
  // reverse so the first (largest) child subtree is numbered first.
  Rank next_rank = 0;
  std::vector<std::pair<Rank, Rank>> stack{{0, kNoRank}};
  while (!stack.empty()) {
    const auto [heap, parent_rank] = stack.back();
    stack.pop_back();
    const Rank rank = next_rank++;
    parent[static_cast<std::size_t>(rank)] = parent_rank;
    if (parent_rank != kNoRank) {
      children[static_cast<std::size_t>(parent_rank)].push_back(rank);
    }
    for (int i = arity; i >= 1; --i) {
      const std::int64_t child_heap =
          static_cast<std::int64_t>(heap) * arity + i;
      if (child_heap < num_procs) {
        stack.emplace_back(static_cast<Rank>(child_heap), rank);
      }
    }
  }
  return Tree("kary" + std::to_string(arity) + "-inorder", std::move(parent),
              std::move(children));
}

Tree make_kary_interleaved(Rank num_procs, int arity) {
  check_args(num_procs, arity);
  std::vector<Rank> parent(static_cast<std::size_t>(num_procs), kNoRank);
  std::vector<std::vector<Rank>> children(static_cast<std::size_t>(num_procs));

  // Level boundaries: level l spans ranks [(k^l - 1)/(k-1), (k^{l+1} - 1)/(k-1))
  // for k >= 2; for k == 1 the tree is a chain and level(r) == r.
  // children(r) = { r + i * k^level(r) : 0 < i <= k } (paper §3.2.1).
  std::int64_t level_begin = 0;  // first rank of the current level
  std::int64_t level_size = 1;   // k^level
  while (level_begin < num_procs) {
    const std::int64_t level_end = level_begin + level_size;
    for (std::int64_t r = level_begin; r < level_end && r < num_procs; ++r) {
      for (int i = 1; i <= arity; ++i) {
        const std::int64_t child = r + static_cast<std::int64_t>(i) * level_size;
        if (child < num_procs && child >= level_end) {
          children[static_cast<std::size_t>(r)].push_back(static_cast<Rank>(child));
          parent[static_cast<std::size_t>(child)] = static_cast<Rank>(r);
        }
      }
    }
    level_begin = level_end;
    level_size *= arity;
  }
  return Tree("kary" + std::to_string(arity) + "-interleaved", std::move(parent),
              std::move(children));
}

}  // namespace ct::topo

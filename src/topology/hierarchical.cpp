#include "topology/hierarchical.hpp"

#include <stdexcept>
#include <utility>

namespace ct::topo {

Tree make_hierarchical(Rank num_procs, Rank node_size, const TreeSpec& leader_spec) {
  if (num_procs <= 0) throw std::invalid_argument("tree needs at least one process");
  if (node_size <= 0) throw std::invalid_argument("node size must be positive");

  const Rank num_nodes = (num_procs + node_size - 1) / node_size;
  const Tree leader_tree = make_tree(leader_spec, num_nodes);

  std::vector<Rank> parent(static_cast<std::size_t>(num_procs), kNoRank);
  std::vector<std::vector<Rank>> children(static_cast<std::size_t>(num_procs));

  // Inter-node level: leader of node n is rank n * node_size; the leader
  // tree's edges map node indices to leader ranks.
  for (Rank node = 0; node < num_nodes; ++node) {
    const Rank leader = node * node_size;
    for (Rank child_node : leader_tree.children(node)) {
      const Rank child_leader = child_node * node_size;
      children[static_cast<std::size_t>(leader)].push_back(child_leader);
      parent[static_cast<std::size_t>(child_leader)] = leader;
    }
  }

  // Intra-node level: after forwarding to other nodes, the leader fans out
  // to its local members (appended last so remote progress is prioritised,
  // the standard hierarchical-collective order).
  for (Rank node = 0; node < num_nodes; ++node) {
    const Rank leader = node * node_size;
    for (Rank member = leader + 1; member < leader + node_size && member < num_procs;
         ++member) {
      children[static_cast<std::size_t>(leader)].push_back(member);
      parent[static_cast<std::size_t>(member)] = leader;
    }
  }

  return Tree("hier(" + leader_spec.to_string() + ",m=" + std::to_string(node_size) + ")",
              std::move(parent), std::move(children));
}

}  // namespace ct::topo

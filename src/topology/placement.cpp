#include "topology/placement.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/rng.hpp"

namespace ct::topo {

std::vector<Rank> make_placement(Rank num_procs, Rank node_size, Placement placement,
                                 std::uint64_t seed) {
  if (num_procs <= 0) throw std::invalid_argument("placement needs at least one process");
  if (node_size <= 0) throw std::invalid_argument("node size must be positive");

  std::vector<Rank> rank_of_pid(static_cast<std::size_t>(num_procs));
  switch (placement) {
    case Placement::kBlock:
      for (Rank pid = 0; pid < num_procs; ++pid) {
        rank_of_pid[static_cast<std::size_t>(pid)] = pid;
      }
      break;
    case Placement::kStriped: {
      if (num_procs % node_size != 0) {
        throw std::invalid_argument("striped placement needs node_size | P");
      }
      const Rank num_nodes = num_procs / node_size;
      for (Rank pid = 0; pid < num_procs; ++pid) {
        // Slot s on node n gets rank s * num_nodes + n: co-located ranks are
        // num_nodes apart on the ring.
        const Rank node = pid / node_size;
        const Rank slot = pid % node_size;
        rank_of_pid[static_cast<std::size_t>(pid)] = slot * num_nodes + node;
      }
      break;
    }
    case Placement::kRandom: {
      for (Rank pid = 0; pid < num_procs; ++pid) {
        rank_of_pid[static_cast<std::size_t>(pid)] = pid;
      }
      // Fisher-Yates over ranks 1..P-1; rank 0 (the root) stays on pid 0.
      support::Xoshiro256ss rng(seed);
      for (Rank i = num_procs - 1; i > 1; --i) {
        const auto j = static_cast<Rank>(1 + rng.below(static_cast<std::uint64_t>(i)));
        std::swap(rank_of_pid[static_cast<std::size_t>(i)],
                  rank_of_pid[static_cast<std::size_t>(j)]);
      }
      break;
    }
  }
  return rank_of_pid;
}

std::vector<Rank> node_ranks(const std::vector<Rank>& rank_of_pid, Rank node,
                             Rank node_size) {
  const auto num_procs = static_cast<Rank>(rank_of_pid.size());
  const std::int64_t first = static_cast<std::int64_t>(node) * node_size;
  if (node < 0 || first >= num_procs) throw std::out_of_range("node index out of range");
  std::vector<Rank> ranks;
  for (std::int64_t pid = first; pid < first + node_size && pid < num_procs; ++pid) {
    ranks.push_back(rank_of_pid[static_cast<std::size_t>(pid)]);
  }
  std::sort(ranks.begin(), ranks.end());
  return ranks;
}

const char* placement_name(Placement placement) {
  switch (placement) {
    case Placement::kBlock:
      return "block";
    case Placement::kStriped:
      return "striped";
    case Placement::kRandom:
      return "random";
  }
  return "?";
}

}  // namespace ct::topo

#include "topology/tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace ct::topo {

Tree::Tree(std::string name, std::vector<Rank> parent,
           std::vector<std::vector<Rank>> children)
    : name_(std::move(name)), parent_(std::move(parent)) {
  validate_and_index(children);
}

void Tree::validate_and_index(const std::vector<std::vector<Rank>>& children) {
  const auto num = static_cast<Rank>(parent_.size());
  if (num <= 0) throw std::invalid_argument("tree must have at least one rank");
  if (children.size() != parent_.size()) {
    throw std::invalid_argument("parent/children arrays disagree on process count");
  }
  if (parent_[0] != kNoRank) throw std::invalid_argument("rank 0 must be the root");

  // Cross-check the redundant parent/children representations while
  // flattening the nested child lists into CSR form (send order preserved).
  child_offset_.assign(parent_.size() + 1, 0);
  std::size_t total_children = 0;
  for (Rank r = 0; r < num; ++r) {
    total_children += children[static_cast<std::size_t>(r)].size();
    child_offset_[static_cast<std::size_t>(r) + 1] = static_cast<std::int32_t>(total_children);
  }
  child_list_.clear();
  child_list_.reserve(total_children);
  std::vector<Rank> derived_parent(parent_.size(), kNoRank);
  for (Rank r = 0; r < num; ++r) {
    for (Rank c : children[static_cast<std::size_t>(r)]) {
      if (c <= 0 || c >= num) throw std::invalid_argument("child rank out of range");
      if (derived_parent[static_cast<std::size_t>(c)] != kNoRank) {
        throw std::invalid_argument("rank has two parents");
      }
      derived_parent[static_cast<std::size_t>(c)] = r;
      child_list_.push_back(c);
    }
  }
  for (Rank r = 1; r < num; ++r) {
    if (derived_parent[static_cast<std::size_t>(r)] != parent_[static_cast<std::size_t>(r)]) {
      throw std::invalid_argument("parent array does not match children lists");
    }
    if (parent_[static_cast<std::size_t>(r)] == kNoRank) {
      throw std::invalid_argument("non-root rank without parent (tree not spanning)");
    }
  }

  // Depths (and, implicitly, acyclicity: a cycle would never reach the root).
  depth_.assign(parent_.size(), -1);
  depth_[0] = 0;
  height_ = 0;
  for (Rank r = 1; r < num; ++r) {
    // Walk up until a rank with known depth; path lengths are O(height).
    Rank cursor = r;
    std::vector<Rank> path;
    while (depth_[static_cast<std::size_t>(cursor)] < 0) {
      path.push_back(cursor);
      cursor = parent_[static_cast<std::size_t>(cursor)];
      if (static_cast<Rank>(path.size()) > num) {
        throw std::invalid_argument("cycle in parent array");
      }
    }
    int d = depth_[static_cast<std::size_t>(cursor)];
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      depth_[static_cast<std::size_t>(*it)] = ++d;
    }
    height_ = std::max(height_, depth_[static_cast<std::size_t>(r)]);
  }

  // Subtree sizes, accumulated bottom-up in decreasing-depth order.
  subtree_size_.assign(parent_.size(), 1);
  std::vector<Rank> order(parent_.size());
  for (Rank r = 0; r < num; ++r) order[static_cast<std::size_t>(r)] = r;
  std::sort(order.begin(), order.end(), [&](Rank a, Rank b) {
    return depth_[static_cast<std::size_t>(a)] > depth_[static_cast<std::size_t>(b)];
  });
  for (Rank r : order) {
    if (r == 0) continue;
    subtree_size_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(r)])] +=
        subtree_size_[static_cast<std::size_t>(r)];
  }
}

std::vector<Rank> Tree::subtree_ranks(Rank r) const {
  std::vector<Rank> result;
  result.reserve(static_cast<std::size_t>(subtree_size(r)));
  std::vector<Rank> stack{r};
  while (!stack.empty()) {
    const Rank cur = stack.back();
    stack.pop_back();
    result.push_back(cur);
    for (Rank c : children(cur)) stack.push_back(c);
  }
  std::sort(result.begin(), result.end());
  return result;
}

Rank Tree::lca(Rank a, Rank b) const {
  if (a < 0 || a >= num_procs() || b < 0 || b >= num_procs()) {
    throw std::out_of_range("lca rank out of range");
  }
  while (a != b) {
    if (depth(a) < depth(b)) std::swap(a, b);
    a = parent(a);
  }
  return a;
}

Tree relabel_tree(const Tree& tree, const std::vector<Rank>& sigma) {
  const Rank num = tree.num_procs();
  if (static_cast<Rank>(sigma.size()) != num) {
    throw std::invalid_argument("relabeling permutation has wrong size");
  }
  if (sigma[0] != 0) throw std::invalid_argument("relabeling must keep the root at 0");
  std::vector<Rank> parent(static_cast<std::size_t>(num), kNoRank);
  std::vector<std::vector<Rank>> children(static_cast<std::size_t>(num));
  for (Rank r = 0; r < num; ++r) {
    const Rank new_rank = sigma[static_cast<std::size_t>(r)];
    if (new_rank < 0 || new_rank >= num) {
      throw std::invalid_argument("relabeling permutation value out of range");
    }
    for (Rank c : tree.children(r)) {
      const Rank new_child = sigma[static_cast<std::size_t>(c)];
      children[static_cast<std::size_t>(new_rank)].push_back(new_child);
      parent[static_cast<std::size_t>(new_child)] = new_rank;
    }
  }
  return Tree(tree.name() + "-relabeled", std::move(parent), std::move(children));
}

int Tree::max_fanout() const noexcept {
  std::int32_t best = 0;
  for (std::size_t r = 0; r + 1 < child_offset_.size(); ++r) {
    best = std::max(best, child_offset_[r + 1] - child_offset_[r]);
  }
  return static_cast<int>(best);
}

}  // namespace ct::topo

#pragma once
// Gap analysis of a coloring on the correction ring (§3.1, §4.2/§4.3).
// A gap is a maximal run of uncolored processes between two colored ones
// (wrapping around the ring). The maximum gap size g_max bounds the
// correction latency (Lemma 3) and is the paper's proxy for correction cost
// (Fig. 10, Table 1).

#include <cstdint>
#include <vector>

#include "topology/tree.hpp"

namespace ct::topo {

struct GapStats {
  Rank max_gap = 0;       ///< g_max: length of the longest uncolored run.
  std::int64_t gap_count = 0;   ///< number of maximal uncolored runs.
  std::int64_t uncolored = 0;   ///< total uncolored processes.
  std::vector<Rank> gap_sizes;  ///< every gap's length, in ring order.
};

/// Computes gap statistics for a coloring (colored[r] != 0 means colored).
/// At least one process must be colored (the root always is).
GapStats analyze_gaps(const std::vector<char>& colored);

/// Same analysis into a caller-held result: scalars reset, gap_sizes cleared
/// but its capacity kept, so steady-state reuse (ReplicaPlan's RunResult)
/// allocates nothing once the vector has grown to the scenario's gap count.
void analyze_gaps_into(const std::vector<char>& colored, GapStats& out);

/// True if at least every `stride`-th process is colored, i.e. no gap
/// reaches length `stride` (§3.2.1's k-ary tolerance guarantee).
bool every_nth_colored(const std::vector<char>& colored, Rank stride);

}  // namespace ct::topo

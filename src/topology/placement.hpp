#pragma once
// Physical placement of ranks (§2.1). The paper assumes independent
// failures and notes two ways to get them in practice despite correlated
// hardware faults (a node crash kills all its processes):
//
//   "independence can be achieved by numbering tree nodes in a random
//    manner. Alternatively, the ring used for correction can be structured
//    in a way that nodes having correlated failure probabilities stay far
//    away from each other."
//
// A Placement is a bijection pid -> rank, where consecutive pids share a
// physical node of `node_size` processes:
//   * kBlock   — rank = pid (the naive mapping: a node failure produces one
//                contiguous gap of node_size on the correction ring),
//   * kStriped — co-located processes get ranks num_nodes apart (maximum
//                ring distance; a node failure produces node_size gaps of
//                size 1),
//   * kRandom  — the paper's random renumbering (seeded, rank 0 fixed so
//                the root stays on pid 0).

#include <cstdint>
#include <vector>

#include "topology/tree.hpp"

namespace ct::topo {

enum class Placement { kBlock, kStriped, kRandom };

/// Returns rank_of_pid: rank_of_pid[pid] is the rank running as process
/// `pid`. Always a bijection with rank_of_pid[0] == 0. kStriped requires
/// node_size to divide num_procs.
std::vector<Rank> make_placement(Rank num_procs, Rank node_size, Placement placement,
                                 std::uint64_t seed = 0);

/// Ranks hosted on physical node `node` under the given placement.
std::vector<Rank> node_ranks(const std::vector<Rank>& rank_of_pid, Rank node,
                             Rank node_size);

const char* placement_name(Placement placement);

}  // namespace ct::topo

#pragma once
// Verifier for the paper's Definition 1 (interleaved trees):
//
//   A tree T_f is interleaved iff for any of its subtrees T_s and a ring R_s
//   comprising the nodes of T_s, any adjacent pair of distinct nodes in R_s
//   either descend from each other or their only common ancestor is
//   root(T_s).
//
// Used by property tests to certify every tree family (including clipped,
// non-power-of-two instances) and to reject in-order numberings.

#include <optional>
#include <string>

#include "topology/tree.hpp"

namespace ct::topo {

/// A Definition-1 violation, for diagnostics.
struct InterleaveViolation {
  Rank subtree_root;  ///< root(T_s) of the offending subtree
  Rank first;         ///< adjacent pair on R_s ...
  Rank second;
  Rank lca;           ///< ... whose LCA is neither of them nor root(T_s)
  std::string to_string() const;
};

/// Checks Definition 1 exhaustively over all subtrees. O(sum of subtree
/// sizes * height) — intended for tests, not hot paths.
std::optional<InterleaveViolation> find_interleave_violation(const Tree& tree);

inline bool is_interleaved(const Tree& tree) {
  return !find_interleave_violation(tree).has_value();
}

}  // namespace ct::topo

#pragma once
// Hierarchical (node-aware) dissemination trees — the §6 direction
// ("Corrected Trees feature a stable communication pattern that can be
// tuned to the topology of the underlying network [42]") made concrete for
// the two-level Locality model: one *leader* rank per physical node forms
// an inter-node tree; every leader then fans out to its node-local members
// over cheap intra-node links.
//
// This is the locality-extreme point of the numbering trade-off: with block
// placement all member edges are intra-node (fast dissemination), but node
// members are contiguous on the correction ring, so a node crash leaves a
// node_size gap — the opposite extreme of the interleaved numbering. The
// correlated-faults ablation quantifies both ends.

#include "topology/factory.hpp"
#include "topology/tree.hpp"

namespace ct::topo {

/// Builds a two-level tree over `num_procs` ranks grouped into physical
/// nodes of `node_size` consecutive ranks (block placement): ranks
/// 0, node_size, 2*node_size, ... are leaders and span the inter-node tree
/// described by `leader_spec` (relabelled onto the leader ranks); each
/// leader sends to its node's members in rank order.
Tree make_hierarchical(Rank num_procs, Rank node_size, const TreeSpec& leader_spec);

}  // namespace ct::topo

// Lamé trees (§3.2.2) and latency-optimal LogP trees (§3.2.3).
//
// Both families share one constructive builder that replays the paper's
// iterative construction: starting from the root, every ready-to-send
// process creates one child per send slot; a child becomes ready-to-send
// `child_delay` steps after the send that created it started, and a parent
// can start its next send `parent_period` steps after the previous one.
//   Lamé(k):      parent_period = 1, child_delay = k
//   Optimal(o,L): parent_period = o, child_delay = 2o + L
// Ranks are assigned in creation order, lower-ranked parents first within a
// step — exactly the interleaved numbering of Eq. (2). The closed-form
// children (Eq. 2) are also implemented and cross-checked in the tests.

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "topology/tree.hpp"

namespace ct::topo {

namespace {

Tree build_constructive(std::string name, Rank num_procs, std::int64_t parent_period,
                        std::int64_t child_delay) {
  if (num_procs <= 0) throw std::invalid_argument("tree needs at least one process");
  if (parent_period < 1 || child_delay < 1) {
    throw std::invalid_argument("tree construction delays must be positive");
  }
  std::vector<Rank> parent(static_cast<std::size_t>(num_procs), kNoRank);
  std::vector<std::vector<Rank>> children(static_cast<std::size_t>(num_procs));

  // time -> ranks that perform a send starting at that time. Within one
  // time step the paper's rule applies: "the children of the processes with
  // lower ranks are considered to be created first", so each bucket is
  // sorted by rank before processing.
  std::map<std::int64_t, std::vector<Rank>> ready_at;
  ready_at[0].push_back(0);
  Rank next_rank = 1;
  while (next_rank < num_procs && !ready_at.empty()) {
    auto bucket = ready_at.begin();
    const std::int64_t now = bucket->first;
    std::vector<Rank> senders = std::move(bucket->second);
    ready_at.erase(bucket);
    std::sort(senders.begin(), senders.end());
    for (Rank sender : senders) {
      if (next_rank >= num_procs) break;
      const Rank child = next_rank++;
      parent[static_cast<std::size_t>(child)] = sender;
      children[static_cast<std::size_t>(sender)].push_back(child);
      ready_at[now + parent_period].push_back(sender);
      ready_at[now + child_delay].push_back(child);
    }
  }
  return Tree(std::move(name), std::move(parent), std::move(children));
}

}  // namespace

Tree make_lame(Rank num_procs, int order) {
  if (order < 1) throw std::invalid_argument("Lamé tree needs order >= 1");
  return build_constructive("lame" + std::to_string(order), num_procs, 1, order);
}

Tree make_optimal(Rank num_procs, std::int64_t o, std::int64_t L) {
  if (o < 1 || L < 0) throw std::invalid_argument("optimal tree needs o >= 1, L >= 0");
  return build_constructive("optimal(o=" + std::to_string(o) + ",L=" + std::to_string(L) + ")",
                            num_procs, o, 2 * o + L);
}

std::int64_t lame_ready_to_send(int order, std::int64_t t) {
  if (order < 1) throw std::invalid_argument("Lamé order must be >= 1");
  if (t < 0) return 0;
  // Iterative evaluation with a sliding window of the last `order` values.
  std::vector<std::int64_t> window(static_cast<std::size_t>(order), 1);
  if (t < order) return 1;
  std::int64_t current = 1;
  for (std::int64_t i = order; i <= t; ++i) {
    // R(i) = R(i-1) + R(i-order); window holds R(i-order) .. R(i-1).
    current = window.back() + window.front();
    window.erase(window.begin());
    window.push_back(current);
  }
  return current;
}

std::int64_t optimal_ready_to_send(std::int64_t o, std::int64_t L, std::int64_t t) {
  if (o < 1 || L < 0) throw std::invalid_argument("optimal R(t) needs o >= 1, L >= 0");
  if (t < 0) return 0;
  const std::int64_t base = 2 * o + L;
  if (t < base) return 1;
  std::vector<std::int64_t> values(static_cast<std::size_t>(t) + 1);
  for (std::int64_t i = 0; i <= t; ++i) {
    if (i < base) {
      values[static_cast<std::size_t>(i)] = 1;
    } else {
      values[static_cast<std::size_t>(i)] =
          values[static_cast<std::size_t>(i - o)] + values[static_cast<std::size_t>(i - base)];
    }
  }
  return values[static_cast<std::size_t>(t)];
}

std::vector<Rank> lame_children_formula(Rank r, Rank num_procs, int order) {
  // Eq. (2): { r' = r + R(i + k - 1) : i >= s', R(s') > r, r' < P }, where
  // s' is the smallest iteration with R(s') > r.
  std::vector<Rank> result;
  std::int64_t s = 0;
  while (lame_ready_to_send(order, s) <= r) ++s;
  for (std::int64_t i = s;; ++i) {
    const std::int64_t child = r + lame_ready_to_send(order, i + order - 1);
    if (child >= num_procs) break;
    if (result.empty() || result.back() != static_cast<Rank>(child)) {
      result.push_back(static_cast<Rank>(child));
    }
  }
  return result;
}

std::vector<Rank> optimal_children_formula(Rank r, Rank num_procs, std::int64_t o,
                                           std::int64_t L) {
  // §3.2.3: { r' = r + R(i + o + L) : i >= s', R(s') > r, r' < P }. Sends are
  // o steps apart, so i advances in steps of o starting from the first send
  // slot s'. The recurrence is a *slotted* description: it assumes every
  // ready time is a multiple of o, which holds iff o divides 2o + L, i.e.
  // L % o == 0. For misaligned parameters the constructive builder (which
  // works in continuous integer time and is the latency-optimal tree in the
  // simulator) is the canonical definition and this closed form does not
  // apply.
  if (L % o != 0) {
    throw std::invalid_argument(
        "the slotted optimal-tree formula requires L % o == 0; "
        "use make_optimal for misaligned parameters");
  }
  std::vector<Rank> result;
  std::int64_t s = 0;
  while (optimal_ready_to_send(o, L, s) <= r) ++s;
  for (std::int64_t i = s;; i += o) {
    const std::int64_t child = r + optimal_ready_to_send(o, L, i + o + L);
    if (child >= num_procs) break;
    if (result.empty() || result.back() != static_cast<Rank>(child)) {
      result.push_back(static_cast<Rank>(child));
    }
  }
  return result;
}

}  // namespace ct::topo

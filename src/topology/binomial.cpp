// Binomial trees (§3.2.2, Fig. 4). The in-order variant numbers every
// subtree contiguously (DFS); the interleaved variant is the Lamé tree of
// order 1, children(r) = { r + 2^i : 2^i > r, r + 2^i < P }.

#include <stdexcept>
#include <utility>

#include "topology/tree.hpp"

namespace ct::topo {

Tree make_binomial_inorder(Rank num_procs) {
  if (num_procs <= 0) {
    throw std::invalid_argument("binomial tree needs at least one process");
  }
  std::vector<Rank> parent(static_cast<std::size_t>(num_procs), kNoRank);
  std::vector<std::vector<Rank>> children(static_cast<std::size_t>(num_procs));

  // A full binomial tree T_t rooted at `base` covers ranks [base, base+2^t).
  // Its children are roots of T_{t-1}, T_{t-2}, ..., T_0 at consecutive
  // offsets (largest subtree first, so it is numbered first and — during
  // dissemination — receives the payload first). Ranks >= num_procs are
  // clipped, which truncates trailing subtrees for non-power-of-two sizes.
  std::int64_t capacity = 1;
  while (capacity < num_procs) capacity *= 2;

  // Iterative worklist of (base, capacity) subtree descriptors.
  std::vector<std::pair<std::int64_t, std::int64_t>> work{{0, capacity}};
  while (!work.empty()) {
    const auto [base, cap] = work.back();
    work.pop_back();
    std::int64_t offset = 1;
    for (std::int64_t sub = cap / 2; sub >= 1; sub /= 2) {
      const std::int64_t child = base + offset;
      if (child < num_procs) {
        children[static_cast<std::size_t>(base)].push_back(static_cast<Rank>(child));
        parent[static_cast<std::size_t>(child)] = static_cast<Rank>(base);
        work.emplace_back(child, sub);
      }
      offset += sub;
    }
  }
  return Tree("binomial-inorder", std::move(parent), std::move(children));
}

Tree make_binomial_interleaved(Rank num_procs) {
  Tree tree = make_lame(num_procs, 1);
  return Tree("binomial", // canonical short name used throughout the benches
              [&] {
                std::vector<Rank> parent(static_cast<std::size_t>(num_procs));
                for (Rank r = 0; r < num_procs; ++r) parent[static_cast<std::size_t>(r)] = tree.parent(r);
                return parent;
              }(),
              [&] {
                std::vector<std::vector<Rank>> children(static_cast<std::size_t>(num_procs));
                for (Rank r = 0; r < num_procs; ++r) {
                  auto span = tree.children(r);
                  children[static_cast<std::size_t>(r)].assign(span.begin(), span.end());
                }
                return children;
              }());
}

}  // namespace ct::topo

#pragma once
// String-addressable tree construction, so benches/examples can select tree
// families from the command line and experiment configs can round-trip.

#include <string>

#include "topology/tree.hpp"

namespace ct::topo {

enum class TreeKind {
  kKAryInOrder,
  kKAryInterleaved,
  kBinomialInOrder,
  kBinomialInterleaved,
  kLame,
  kOptimal,
};

struct TreeSpec {
  TreeKind kind = TreeKind::kBinomialInterleaved;
  int arity = 2;        ///< k for k-ary and Lamé trees
  std::int64_t o = 1;   ///< overhead, for optimal trees
  std::int64_t L = 2;   ///< latency, for optimal trees

  /// Human/CLI name, e.g. "binomial", "binomial-inorder", "kary:4",
  /// "lame:2", "optimal". Inverse of parse_tree_spec.
  std::string to_string() const;

  bool operator==(const TreeSpec&) const = default;
};

/// Parses "binomial", "binomial-inorder", "kary:<k>", "kary-inorder:<k>",
/// "lame:<k>", "optimal" (o/L filled from defaults given at build time).
/// Throws std::invalid_argument for unknown names.
TreeSpec parse_tree_spec(const std::string& text);

/// Builds the tree described by `spec` over `num_procs` ranks.
Tree make_tree(const TreeSpec& spec, Rank num_procs);

/// Rebuilds the tree described by `spec` over the `live` survivors of a
/// shrunk membership — the epoch-boundary repair entry point. The result is
/// a fresh, fully-connected topology over dense ranks [0, live): callers
/// (rt::measure_recovery, exp::run) translate dense <-> stable global ids
/// via rt::MembershipView, so every tree family repairs without per-family
/// surgery. Throws std::invalid_argument when no rank survived.
Tree make_survivor_tree(const TreeSpec& spec, Rank live);

}  // namespace ct::topo

#include "analysis/bounds.hpp"

#include <stdexcept>

namespace ct::analysis {

sim::Time checked_correction_fault_free_latency(const sim::LogP& params) {
  params.validate();
  // Lemma 2, exact form. A process learns to stop its second direction when
  // the neighbour's second message completes at 3o + L; its last send is the
  // largest send slot strictly before that, and that message is received
  // 2o + L later. For o | L this is the paper's 4o + L + (L/o)*o.
  const sim::Time last_send = params.o * ((3 * params.o + params.L - 1) / params.o);
  return last_send + 2 * params.o + params.L;
}

std::int64_t checked_correction_fault_free_messages(const sim::LogP& params) {
  params.validate();
  // Corollary 1, exact form: one send per slot up to (exclusive) 3o + L.
  // For o | L this is the paper's 3 + L/o.
  return (3 * params.o + params.L - 1) / params.o + 1;
}

sim::Time checked_correction_latency_lower_bound(const sim::LogP& params,
                                                 std::int64_t max_gap) {
  if (max_gap < 0) throw std::invalid_argument("max gap must be >= 0");
  return checked_correction_fault_free_latency(params) + max_gap * params.o;
}

sim::Time checked_correction_latency_upper_bound(const sim::LogP& params,
                                                 std::int64_t max_gap) {
  if (max_gap < 0) throw std::invalid_argument("max gap must be >= 0");
  return checked_correction_fault_free_latency(params) + (2 * max_gap + 1) * params.o;
}

std::int64_t kary_guaranteed_failure_tolerance(int arity) {
  if (arity < 1) throw std::invalid_argument("arity must be >= 1");
  return arity - 1;
}

}  // namespace ct::analysis

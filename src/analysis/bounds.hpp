#pragma once
// Closed-form results of §4.2, §3.2.1 — validated against the simulator by
// the test suite and drawn as bound lines in the Fig. 10 bench.

#include "sim/logp.hpp"

namespace ct::analysis {

/// Lemma 2: fault-free quiescence latency of synchronized checked
/// correction. Equals the paper's LFF_SCC = 4o + L + floor(L/o) * o whenever
/// o divides L (all configurations the paper evaluates); for misaligned
/// parameters this returns the exact value the protocol achieves (the
/// paper's floor form undercounts by one partial send slot then).
sim::Time checked_correction_fault_free_latency(const sim::LogP& params);

/// Corollary 1: fault-free messages per process of synchronized checked
/// correction. Equals the paper's M_SCC = 3 + floor(L/o) whenever o divides
/// L; exact for all parameters (ceil instead of floor otherwise).
std::int64_t checked_correction_fault_free_messages(const sim::LogP& params);

/// Lemma 3, lower bound: LFF_SCC + g_max * o.
sim::Time checked_correction_latency_lower_bound(const sim::LogP& params,
                                                 std::int64_t max_gap);

/// Lemma 3, upper bound: LFF_SCC + (2 * g_max + 1) * o.
sim::Time checked_correction_latency_upper_bound(const sim::LogP& params,
                                                 std::int64_t max_gap);

/// §3.2.1: a k-ary interleaved tree keeps every k^level-th process colored
/// under up to k^level - 1 failures at or below that level; equivalently,
/// up to k - 1 arbitrary failures guarantee a maximum gap below k, so
/// opportunistic correction with d >= k - 1 (both directions) colors all.
std::int64_t kary_guaranteed_failure_tolerance(int arity);

}  // namespace ct::analysis

#pragma once
// Per-run metrics (§4: "We look at the two most important performance
// metrics: latency and network load").
//
//  * coloring latency  — root's first send until the last live process is
//                        colored (kTimeNever if some live process stays
//                        uncolored, which opportunistic correction permits).
//  * quiescence latency — root's first send until all broadcast-related
//                        activity is over (last send/receive completion,
//                        including messages that die with their recipient).
//  * messages          — total sends started (network load).
//  * dissemination gaps — gap statistics of the coloring snapshot taken when
//                        correction starts (drives Fig. 10 / Table 1).

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "topology/gaps.hpp"
#include "topology/tree.hpp"

namespace ct::sim {

struct RunResult {
  topo::Rank num_procs = 0;
  topo::Rank failed = 0;

  Time coloring_latency = kTimeNever;
  Time quiescence_latency = 0;
  std::int64_t total_messages = 0;
  /// Simulator events dispatched for this run (engine throughput metric;
  /// a message costs several events plus timers — see bench_report).
  std::int64_t events_processed = 0;

  /// Live processes still uncolored at quiescence. Nonzero only for
  /// correction schemes without full guarantees (plain opportunistic).
  topo::Rank uncolored_live = 0;

  /// Coloring-state snapshot taken at correction start (empty if the
  /// protocol never signalled a correction phase).
  bool has_dissemination_snapshot = false;
  topo::GapStats dissemination_gaps;

  /// Time correction started (kTimeNever if never signalled).
  Time correction_start = kTimeNever;

  /// Correction duration: quiescence - correction_start.
  Time correction_time() const noexcept {
    return correction_start == kTimeNever ? 0 : quiescence_latency - correction_start;
  }

  double messages_per_process() const noexcept {
    return num_procs ? static_cast<double>(total_messages) / static_cast<double>(num_procs)
                     : 0.0;
  }

  bool fully_colored() const noexcept { return uncolored_live == 0; }

  /// Per-rank coloring times (kTimeNever = never colored). Populated only
  /// when RunOptions::keep_per_rank_detail is set.
  std::vector<Time> colored_at;
  /// Per-rank send counts (same opt-in).
  std::vector<std::int32_t> sends_per_rank;
  /// Final data-plane word per rank (same opt-in) — lets tests assert that
  /// every live process actually received the collective's payload.
  std::vector<std::int64_t> rank_data;
};

}  // namespace ct::sim

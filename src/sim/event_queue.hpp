#pragma once
// Event-queue engines behind ct::sim::Simulator. Two interchangeable
// implementations with one contract:
//
//   push(Event)          — enqueue; Event::seq must already be stamped.
//   empty()              — any event left?
//   front()              — reference to the minimum event under the total
//                          order (time, lane priority, seq). The reference
//                          stays valid across pushes made while the event is
//                          being dispatched (see invariant below).
//   pop_front()          — consume what front() returned.
//
// front()/pop_front() must be called in strictly alternating pairs.
//
// CalendarQueue (the default) is a classic calendar queue specialised for
// LogP ticks: a power-of-two ring of per-tick buckets, each bucket holding
// one FIFO lane per EventKind. All LogP offsets (overhead, port period,
// wire time) and near protocol timers land in the ring at O(1) push/pop
// with zero comparator calls; far-future timers spill into a small binary
// min-heap overflow tier and are merged back by (time, lane, seq), so the
// total order is bit-identical to a global binary heap.
//
// Dispatch-safety invariant (why front()'s reference survives dispatch):
// handling an event of lane X at tick T only ever enqueues events of lanes
// != X at tick T (later ticks are unrestricted), with one exception — a
// protocol timer re-arming a timer for the current instant — and the timer
// callback receives its arguments by value before any push can happen. So
// the lane vector a dispatched event lives in is never reallocated while a
// reference into it is held. Simulator::dispatch relies on this; keep the
// two in sync.

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/message.hpp"
#include "sim/time.hpp"
#include "topology/tree.hpp"

namespace ct::sim::detail {

enum class EventKind : std::uint8_t {
  kSendStart,  // rank's send port picks up the next queued message
  kSendDone,   // send overhead finished; port may start the next message
  kArrival,    // message reached the receiver's input queue (after L)
  kRecvStart,  // rank's receive port picks up the next queued arrival
  kRecvDone,   // receive overhead finished; protocol callback fires
  kTimer,
};

// Same-tick ordering: receive-side events complete before send-side ones
// (the paper's accounting — a process "stops sending messages ... once it
// receives", so a receipt at time t influences the send decision at t),
// and timers observe everything that happened at their tick (a
// synchronized-correction snapshot at t includes processes colored at t).
inline constexpr int kNumLanes = 6;
inline constexpr int priority(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kArrival:
      return 0;
    case EventKind::kRecvStart:
      return 1;
    case EventKind::kRecvDone:
      return 2;
    case EventKind::kSendDone:
      return 3;
    case EventKind::kSendStart:
      return 4;
    case EventKind::kTimer:
      return 5;
  }
  return kNumLanes;
}

struct Event {
  Time time = 0;
  std::int64_t seq = 0;  // insertion order; deterministic tie-break
  EventKind kind = EventKind::kTimer;
  topo::Rank rank = topo::kNoRank;  // acting rank (sender/receiver/timer owner)
  Message msg;
  std::int64_t timer_id = 0;

  // Min-heap on (time, kind priority, seq).
  friend bool operator>(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    const int pa = priority(a.kind);
    const int pb = priority(b.kind);
    if (pa != pb) return pa > pb;
    return a.seq > b.seq;
  }
};

/// Plain binary min-heap over Events with a reusable backing vector.
/// Used standalone as the fallback queue (RunOptions::queue == kBinaryHeap)
/// and as the CalendarQueue's far-future overflow tier.
class EventMinHeap {
 public:
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  const Event& top() const noexcept { return heap_.front(); }

  void push(Event event) {
    heap_.push_back(event);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  /// Removes and returns the minimum (by value; the heap sift would move it
  /// anyway). Callers keep it in stable storage while dispatching.
  Event pop_top() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    Event event = heap_.back();
    heap_.pop_back();
    return event;
  }

  void clear() noexcept { heap_.clear(); }  // keeps capacity

 private:
  std::vector<Event> heap_;
};

/// Fallback queue: the heap plus front()/pop_front() staging, so the drive
/// loop can dispatch without copy-constructing an Event per pop (the event
/// is moved once into a reused scratch slot, never reallocated under the
/// dispatcher's feet).
class EventHeapQueue {
 public:
  void reset() noexcept {
    heap_.clear();
    staged_ = false;
  }

  void push(Event event) { heap_.push(event); }

  bool empty() const noexcept { return !staged_ && heap_.empty(); }

  const Event& front() {
    if (!staged_) {
      scratch_ = heap_.pop_top();
      staged_ = true;
    }
    return scratch_;
  }

  void pop_front() noexcept { staged_ = false; }

 private:
  EventMinHeap heap_;
  Event scratch_;
  bool staged_ = false;
};

/// Calendar queue: ring of per-tick buckets x priority lanes + overflow heap.
class CalendarQueue {
 public:
  /// Ring slots are clamped to [kMinSlots, kMaxSlots]; events farther than
  /// the ring covers are still correct, they just take the overflow heap.
  static constexpr std::size_t kMinSlots = 512;     // covers protocol timers
  static constexpr std::size_t kMaxSlots = 1 << 16; // LogGP byte-cost sweeps

  /// Prepares for a run starting at tick 0. `horizon` is the largest push
  /// offset the LogP model produces (port period / overhead + wire time);
  /// the ring is sized to cover it where feasible. Must only be called on
  /// an empty queue (Workspace hard-clears after an aborted run).
  void reset(Time horizon) {
    std::size_t want = std::bit_ceil(static_cast<std::size_t>(
        std::clamp<Time>(horizon + 1, static_cast<Time>(kMinSlots),
                         static_cast<Time>(kMaxSlots))));
    if (want != ring_.size()) {
      ring_.assign(want, Bucket{});
      live_bits_.assign((want + 63) / 64, 0);
      mask_ = want - 1;
    }
    assert(ring_count_ == 0 && overflow_.empty() && !staged_);
    cursor_ = 0;
  }

  /// Empties a queue in an arbitrary (mid-run, post-throw) state.
  void hard_clear() noexcept {
    for (Bucket& bucket : ring_) {
      if (bucket.live == 0) continue;
      for (Lane& lane : bucket.lanes) {
        lane.items.clear();
        lane.head = 0;
      }
      bucket.live = 0;
    }
    std::fill(live_bits_.begin(), live_bits_.end(), 0);
    ring_count_ = 0;
    overflow_.clear();
    staged_ = false;
    cursor_ = 0;
  }

  void push(Event event) {
    assert(event.time >= cursor_);
    if (event.time - cursor_ >= static_cast<Time>(ring_.size())) {
      overflow_.push(event);
      return;
    }
    const std::size_t idx = static_cast<std::size_t>(event.time) & mask_;
    Bucket& bucket = ring_[idx];
    if (bucket.live++ == 0) set_live(idx);
    bucket.lanes[static_cast<std::size_t>(priority(event.kind))].items.push_back(event);
    ++ring_count_;
  }

  bool empty() const noexcept {
    return !staged_ && ring_count_ == 0 && overflow_.empty();
  }

  const Event& front() {
    if (staged_) return scratch_;
    // Ring candidate: earliest live bucket, then its lowest-priority lane.
    // The scan restarts from lane 0 every pop because dispatching a
    // higher-lane event may enqueue a lower-lane event at the same tick
    // (e.g. a timer callback starting a send "now").
    const Lane* ring_lane = nullptr;
    Time ring_time = kTimeNever;
    int ring_pri = kNumLanes;
    if (ring_count_ > 0) {
      const std::size_t idx = next_live_bucket(static_cast<std::size_t>(cursor_) & mask_);
      Bucket& bucket = ring_[idx];
      for (int lane = 0; lane < kNumLanes; ++lane) {
        const Lane& candidate = bucket.lanes[static_cast<std::size_t>(lane)];
        if (candidate.head < candidate.items.size()) {
          ring_lane = &candidate;
          ring_time = candidate.items[candidate.head].time;
          ring_pri = lane;
          pop_bucket_ = idx;
          pop_lane_ = lane;
          break;
        }
      }
      assert(ring_lane != nullptr);
    }
    // Merge with the overflow tier under the exact (time, lane, seq) order.
    if (!overflow_.empty()) {
      const Event& over = overflow_.top();
      const int over_pri = priority(over.kind);
      const bool overflow_wins =
          ring_lane == nullptr || over.time < ring_time ||
          (over.time == ring_time &&
           (over_pri < ring_pri ||
            (over_pri == ring_pri && over.seq < ring_lane->items[ring_lane->head].seq)));
      if (overflow_wins) {
        scratch_ = overflow_.pop_top();
        staged_ = true;
        cursor_ = scratch_.time;
        return scratch_;
      }
    }
    cursor_ = ring_time;
    return ring_lane->items[ring_lane->head];
  }

  void pop_front() noexcept {
    if (staged_) {
      staged_ = false;
      return;
    }
    Bucket& bucket = ring_[pop_bucket_];
    Lane& lane = bucket.lanes[static_cast<std::size_t>(pop_lane_)];
    if (++lane.head == lane.items.size()) {
      lane.items.clear();  // keeps capacity for the next burst
      lane.head = 0;
    }
    if (--bucket.live == 0) clear_live(pop_bucket_);
    --ring_count_;
  }

 private:
  struct Lane {
    std::vector<Event> items;
    std::size_t head = 0;
  };
  struct Bucket {
    std::array<Lane, kNumLanes> lanes;
    std::uint32_t live = 0;
  };

  void set_live(std::size_t idx) noexcept { live_bits_[idx >> 6] |= 1ull << (idx & 63); }
  void clear_live(std::size_t idx) noexcept { live_bits_[idx >> 6] &= ~(1ull << (idx & 63)); }

  /// First live bucket index cyclically at or after `start`. All ring
  /// events lie in [cursor_, cursor_ + ring size), so cyclic index order
  /// from the cursor is exactly time order.
  std::size_t next_live_bucket(std::size_t start) const noexcept {
    const std::size_t words = live_bits_.size();
    std::size_t w = start >> 6;
    std::uint64_t word = live_bits_[w] >> (start & 63);
    if (word != 0) return start + static_cast<std::size_t>(std::countr_zero(word));
    for (std::size_t step = 1; step <= words; ++step) {
      std::size_t ww = w + step;
      if (ww >= words) ww -= words;
      if (live_bits_[ww] != 0) {
        return (ww << 6) + static_cast<std::size_t>(std::countr_zero(live_bits_[ww]));
      }
    }
    assert(false && "next_live_bucket on empty ring");
    return 0;
  }

  std::vector<Bucket> ring_;
  std::vector<std::uint64_t> live_bits_;  // one bit per bucket: live != 0
  std::size_t mask_ = 0;
  std::size_t ring_count_ = 0;
  Time cursor_ = 0;  // time of the most recent front(); never decreases

  EventMinHeap overflow_;  // events beyond the ring window (far timers)
  Event scratch_;          // stable storage for a staged overflow event
  bool staged_ = false;
  std::size_t pop_bucket_ = 0;
  int pop_lane_ = 0;
};

}  // namespace ct::sim::detail

#pragma once
// Event-queue engines behind ct::sim::Simulator. Two interchangeable
// implementations with one contract:
//
//   push(const Event&)   — enqueue; Event::seq must already be stamped.
//   empty()              — any event left?
//   pop_into(Event& out) — remove the minimum event under the total order
//                          (time, lane priority, seq) and copy it into the
//                          caller's slot. Precondition: !empty().
//
// The drive loop pops into a stack slot *before* dispatching, so handlers
// may push freely — there is no reference into queue storage to invalidate
// (the old front()/pop_front() contract needed a dispatch-safety invariant
// for that; the fused pop removed it along with a second Event copy).
//
// CalendarQueue (the default) is a classic calendar queue specialised for
// LogP ticks: a power-of-two ring of per-tick buckets, each bucket holding
// one FIFO lane per EventKind. All LogP offsets (overhead, port period,
// wire time) and near protocol timers land in the ring at O(1) push/pop
// with zero comparator calls; far-future timers spill into a small binary
// min-heap overflow tier and are merged back by (time, lane, seq), so the
// total order is bit-identical to a global binary heap. Per-bucket lane
// occupancy is tracked as a bitmask in a side array (one byte per bucket,
// so the whole ring's occupancy map stays cache-resident): the pop path
// finds the first live lane with a bit scan instead of probing six lane
// vectors.

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/message.hpp"
#include "sim/time.hpp"
#include "topology/tree.hpp"

namespace ct::sim::detail {

// Same-tick ordering: receive-side events complete before send-side ones
// (the paper's accounting — a process "stops sending messages ... once it
// receives", so a receipt at time t influences the send decision at t),
// and timers observe everything that happened at their tick (a
// synchronized-correction snapshot at t includes processes colored at t).
// The enum value IS the lane priority, so the hot paths index lanes and
// compare priorities without a switch.
enum class EventKind : std::uint8_t {
  kArrival = 0,    // message reached the receiver's input queue (after L)
  kRecvStart = 1,  // rank's receive port picks up the next queued arrival
  kRecvDone = 2,   // receive overhead finished; protocol callback fires
  kSendDone = 3,   // send overhead finished; port may start the next message
  kSendStart = 4,  // rank's send port picks up the next queued message
  kTimer = 5,
};

inline constexpr int kNumLanes = 6;
inline constexpr int priority(EventKind kind) noexcept { return static_cast<int>(kind); }

/// One scheduled simulator event, packed into 48 bytes (one copy per push
/// and pop, so the size is hot-path bandwidth). The acting rank is not
/// stored: receive-side events (lanes 0-2) act on msg.dst, send-side events
/// act on msg.src, and the rank-only kinds (kSendStart, kRecvStart, kTimer)
/// stash their rank in the matching Message field. Timer ids ride in
/// msg.payload — timers carry no message of their own.
struct Event {
  Time time = 0;
  std::uint32_t seq = 0;  // insertion order; deterministic tie-break
  EventKind kind = EventKind::kTimer;
  Message msg;

  topo::Rank rank() const noexcept {
    return kind <= EventKind::kRecvDone ? msg.dst : msg.src;
  }
  std::int64_t timer_id() const noexcept { return msg.payload; }

  // Min-heap on (time, kind priority, seq).
  friend bool operator>(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    const int pa = priority(a.kind);
    const int pb = priority(b.kind);
    if (pa != pb) return pa > pb;
    return a.seq > b.seq;
  }
};
static_assert(sizeof(Event) == 48, "Event is copied per push/pop; keep it packed");

/// Plain binary min-heap over Events with a reusable backing vector.
/// Used standalone as the fallback queue (RunOptions::queue == kBinaryHeap)
/// and as the CalendarQueue's far-future overflow tier.
class EventMinHeap {
 public:
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  const Event& top() const noexcept { return heap_.front(); }

  void push(const Event& event) {
    heap_.push_back(event);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  /// Removes the minimum into `out` (by copy; the heap sift moves it anyway).
  void pop_into(Event& out) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    out = heap_.back();
    heap_.pop_back();
  }

  void clear() noexcept { heap_.clear(); }  // keeps capacity

 private:
  std::vector<Event> heap_;
};

/// Fallback queue: a thin shim giving the heap the engine contract.
class EventHeapQueue {
 public:
  void reset() noexcept { heap_.clear(); }
  void push(const Event& event) { heap_.push(event); }
  bool empty() const noexcept { return heap_.empty(); }
  void pop_into(Event& out) { heap_.pop_into(out); }

  /// Batched same-tick dispatch: pops and sinks events while they share the
  /// earliest timestamp. The heap's pop order IS the (time, lane, seq) total
  /// order, and same-tick events pushed by a handler re-merge before the
  /// next pop, so this is observationally identical to the one-at-a-time
  /// loop. Precondition: !empty(). Returns the number dispatched (never 0).
  template <class Sink>
  std::int64_t drain_tick(Sink&& sink) {
    Event event;
    heap_.pop_into(event);
    const Time tick = event.time;
    std::int64_t dispatched = 1;
    sink(event);
    while (!heap_.empty() && heap_.top().time == tick) {
      heap_.pop_into(event);
      ++dispatched;
      sink(event);
    }
    return dispatched;
  }

 private:
  EventMinHeap heap_;
};

/// Calendar queue: ring of per-tick buckets x priority lanes + overflow heap.
class CalendarQueue {
 public:
  /// Ring slots are clamped to [kMinSlots, kMaxSlots]; events farther than
  /// the ring covers are still correct, they just take the overflow heap.
  static constexpr std::size_t kMinSlots = 512;     // covers protocol timers
  static constexpr std::size_t kMaxSlots = 1 << 16; // LogGP byte-cost sweeps

  /// Prepares for a run starting at tick 0. `horizon` is the largest push
  /// offset the LogP model produces (port period / overhead + wire time);
  /// the ring is sized to cover it where feasible. Must only be called on
  /// an empty queue (Workspace hard-clears after an aborted run).
  void reset(Time horizon) {
    std::size_t want = std::bit_ceil(static_cast<std::size_t>(
        std::clamp<Time>(horizon + 1, static_cast<Time>(kMinSlots),
                         static_cast<Time>(kMaxSlots))));
    if (want * kNumLanes != lanes_.size()) {
      lanes_.assign(want * kNumLanes, Lane{});
      lane_mask_.assign(want, 0);
      live_bits_.assign((want + 63) / 64, 0);
      mask_ = want - 1;
    }
    assert(ring_count_ == 0 && overflow_.empty());
    cursor_ = 0;
  }

  /// Empties a queue in an arbitrary (mid-run, post-throw) state.
  void hard_clear() noexcept {
    for (std::size_t idx = 0; idx < lane_mask_.size(); ++idx) {
      if (lane_mask_[idx] == 0) continue;
      for (int lane = 0; lane < kNumLanes; ++lane) {
        Lane& l = lanes_[idx * kNumLanes + static_cast<std::size_t>(lane)];
        l.items.clear();
        l.head = 0;
      }
      lane_mask_[idx] = 0;
    }
    std::fill(live_bits_.begin(), live_bits_.end(), 0);
    ring_count_ = 0;
    overflow_.clear();
    cursor_ = 0;
  }

  void push(const Event& event) {
    assert(event.time >= cursor_);
    if (event.time - cursor_ >= static_cast<Time>(lane_mask_.size())) {
      overflow_.push(event);
      return;
    }
    const std::size_t idx = static_cast<std::size_t>(event.time) & mask_;
    const int lane = priority(event.kind);
    if (lane_mask_[idx] == 0) set_live(idx);
    lane_mask_[idx] |= static_cast<std::uint8_t>(1u << lane);
    lanes_[idx * kNumLanes + static_cast<std::size_t>(lane)].items.push_back(event);
    ++ring_count_;
  }

  bool empty() const noexcept { return ring_count_ == 0 && overflow_.empty(); }

  void pop_into(Event& out) {
    if (ring_count_ == 0) {
      overflow_.pop_into(out);
      cursor_ = out.time;
      return;
    }
    // Ring candidate: earliest live bucket, then its lowest-priority lane.
    // The lane scan restarts every pop because dispatching a higher-lane
    // event may enqueue a lower-lane event at the same tick (e.g. a timer
    // callback starting a send "now").
    const std::size_t idx = next_live_bucket(static_cast<std::size_t>(cursor_) & mask_);
    const int lane = std::countr_zero(lane_mask_[idx]);
    Lane& l = lanes_[idx * kNumLanes + static_cast<std::size_t>(lane)];
    const Event& candidate = l.items[l.head];
    // Merge with the overflow tier under the exact (time, lane, seq) order.
    if (!overflow_.empty()) {
      const Event& over = overflow_.top();
      const int over_pri = priority(over.kind);
      const bool overflow_wins =
          over.time < candidate.time ||
          (over.time == candidate.time &&
           (over_pri < lane || (over_pri == lane && over.seq < candidate.seq)));
      if (overflow_wins) {
        overflow_.pop_into(out);
        cursor_ = out.time;
        return;
      }
    }
    out = candidate;
    cursor_ = out.time;
    if (++l.head == l.items.size()) {
      l.items.clear();  // keeps capacity for the next burst
      l.head = 0;
      lane_mask_[idx] &= static_cast<std::uint8_t>(~(1u << lane));
      if (lane_mask_[idx] == 0) clear_live(idx);
    }
    --ring_count_;
  }

  /// Batched same-tick dispatch: sinks every event of the earliest tick in
  /// one call when that tick lives wholly in the ring, walking the bucket's
  /// lanes in place (no scratch copy). The per-event queue touches shrink
  /// from a live-bucket bit scan + overflow merge + cursor store to one
  /// vector index and a one-byte preemption test — the dominant win at LogP
  /// scale, where a tick bursts tens of thousands of arrivals.
  ///
  /// Ordering is bit-identical to repeated pop_into:
  ///  * every event in bucket `idx` has the same time t while cursor_ == t
  ///    (pushes further than the ring window go to the overflow heap, so a
  ///    wrapped index can never alias a different tick);
  ///  * same-lane same-tick pushes append behind the walk index and are
  ///    picked up in seq order (the lane vector is walked by index, and the
  ///    Event is copied out before dispatch, so reallocation is safe);
  ///  * a lower-lane (= higher-priority) same-tick push preempts via the
  ///    lane-mask test and the walk restarts from the lowest live lane,
  ///    exactly like pop_into's per-pop lane rescan.
  ///
  /// Returns 0 — caller falls back to pop_into — when the earliest event
  /// sits in the overflow heap or an overflow event shares this tick and
  /// would need the (time, lane, seq) merge (far timers landing here; rare).
  template <class Sink>
  std::int64_t drain_tick(Sink&& sink) {
    if (ring_count_ == 0) return 0;
    const std::size_t idx = next_live_bucket(static_cast<std::size_t>(cursor_) & mask_);
    int lane = std::countr_zero(lane_mask_[idx]);
    Lane* l = &lanes_[idx * kNumLanes + static_cast<std::size_t>(lane)];
    const Time tick = l->items[l->head].time;
    if (!overflow_.empty() && overflow_.top().time <= tick) return 0;
    cursor_ = tick;
    std::int64_t dispatched = 0;
    for (;;) {
      while (l->head < l->items.size()) {
        const Event event = l->items[l->head];
        ++l->head;
        --ring_count_;
        ++dispatched;
        sink(event);
        const auto below =
            static_cast<std::uint8_t>(lane_mask_[idx] & ((1u << lane) - 1u));
        if (below != 0) break;  // higher-priority same-tick push: restart scan
      }
      if (l->head >= l->items.size()) {
        l->items.clear();  // keeps capacity for the next burst
        l->head = 0;
        lane_mask_[idx] &= static_cast<std::uint8_t>(~(1u << lane));
        if (lane_mask_[idx] == 0) {
          clear_live(idx);
          return dispatched;  // no lane live at this tick: fully drained
        }
      }
      lane = std::countr_zero(lane_mask_[idx]);
      l = &lanes_[idx * kNumLanes + static_cast<std::size_t>(lane)];
    }
  }

 private:
  struct Lane {
    std::vector<Event> items;
    std::size_t head = 0;
  };

  void set_live(std::size_t idx) noexcept { live_bits_[idx >> 6] |= 1ull << (idx & 63); }
  void clear_live(std::size_t idx) noexcept { live_bits_[idx >> 6] &= ~(1ull << (idx & 63)); }

  /// First live bucket index cyclically at or after `start`. All ring
  /// events lie in [cursor_, cursor_ + ring size), so cyclic index order
  /// from the cursor is exactly time order.
  std::size_t next_live_bucket(std::size_t start) const noexcept {
    const std::size_t words = live_bits_.size();
    std::size_t w = start >> 6;
    std::uint64_t word = live_bits_[w] >> (start & 63);
    if (word != 0) return start + static_cast<std::size_t>(std::countr_zero(word));
    for (std::size_t step = 1; step <= words; ++step) {
      std::size_t ww = w + step;
      if (ww >= words) ww -= words;
      if (live_bits_[ww] != 0) {
        return (ww << 6) + static_cast<std::size_t>(std::countr_zero(live_bits_[ww]));
      }
    }
    assert(false && "next_live_bucket on empty ring");
    return 0;
  }

  std::vector<Lane> lanes_;                // bucket-major: lanes_[idx*6 + lane]
  std::vector<std::uint8_t> lane_mask_;    // per-bucket non-empty-lane bits
  std::vector<std::uint64_t> live_bits_;   // one bit per bucket: lane_mask_ != 0
  std::size_t mask_ = 0;
  std::size_t ring_count_ = 0;
  Time cursor_ = 0;  // time of the most recent pop; never decreases

  EventMinHeap overflow_;  // events beyond the ring window (far timers)
};

}  // namespace ct::sim::detail

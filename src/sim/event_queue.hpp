#pragma once
// Event-queue engines behind ct::sim::Simulator. Two interchangeable
// implementations with one contract:
//
//   push(const Event&)   — enqueue; Event::seq must already be stamped.
//   empty()              — any event left?
//   pop_into(Event& out) — remove the minimum event under the total order
//                          (time, lane priority, seq) and copy it into the
//                          caller's slot. Precondition: !empty().
//
// The drive loop pops into a stack slot *before* dispatching, so handlers
// may push freely — there is no reference into queue storage to invalidate
// (the old front()/pop_front() contract needed a dispatch-safety invariant
// for that; the fused pop removed it along with a second Event copy).
//
// Storage is SoA: the 32-byte Message payload is parked in a slot pool on
// push and fetched back exactly once on pop. Everything the comparator
// needs — (time, lane priority, seq) — plus the pool slot is packed into a
// 16-byte EventKey, so heap sifts move 16 bytes instead of 48 and calendar
// lanes hold 8-byte ord words instead of whole events. The ord word orders
// as (lane, seq, slot); seq is globally unique per run, so the slot bits
// never decide a comparison and the pop order is bit-identical to the old
// by-value (time, priority, seq) heap.
//
// CalendarQueue (the default) is a classic calendar queue specialised for
// LogP ticks: a power-of-two ring of per-tick buckets, each bucket holding
// one FIFO lane per EventKind. All LogP offsets (overhead, port period,
// wire time) and near protocol timers land in the ring at O(1) push/pop
// with zero comparator calls; far-future timers spill into a small binary
// min-heap overflow tier and are merged back by (time, lane, seq), so the
// total order is bit-identical to a global binary heap. Per-bucket lane
// occupancy is tracked as a bitmask in a side array (one byte per bucket,
// so the whole ring's occupancy map stays cache-resident): the pop path
// finds the first live lane with a bit scan instead of probing six lane
// vectors. A bucket only ever holds one tick's events at a time (farther
// pushes overflow), so the bucket's time lives once in a side array rather
// than per entry.

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/message.hpp"
#include "sim/time.hpp"
#include "topology/tree.hpp"

namespace ct::sim::detail {

// Same-tick ordering: receive-side events complete before send-side ones
// (the paper's accounting — a process "stops sending messages ... once it
// receives", so a receipt at time t influences the send decision at t),
// and timers observe everything that happened at their tick (a
// synchronized-correction snapshot at t includes processes colored at t).
// The enum value IS the lane priority, so the hot paths index lanes and
// compare priorities without a switch.
enum class EventKind : std::uint8_t {
  kArrival = 0,    // message reached the receiver's input queue (after L)
  kRecvStart = 1,  // rank's receive port picks up the next queued arrival
  kRecvDone = 2,   // receive overhead finished; protocol callback fires
  kSendDone = 3,   // send overhead finished; port may start the next message
  kSendStart = 4,  // rank's send port picks up the next queued message
  kTimer = 5,
};

inline constexpr int kNumLanes = 6;
inline constexpr int priority(EventKind kind) noexcept { return static_cast<int>(kind); }

/// One scheduled simulator event as the queues' interchange type (the
/// drive loop fills one on push and receives one per pop). The acting rank
/// is not stored: receive-side events (lanes 0-2) act on msg.dst, send-side
/// events act on msg.src, and the rank-only kinds (kSendStart, kRecvStart,
/// kTimer) stash their rank in the matching Message field. Timer ids ride
/// in msg.payload — timers carry no message of their own.
struct Event {
  Time time = 0;
  std::uint32_t seq = 0;  // insertion order; deterministic tie-break
  EventKind kind = EventKind::kTimer;
  Message msg;

  topo::Rank rank() const noexcept {
    return kind <= EventKind::kRecvDone ? msg.dst : msg.src;
  }
  std::int64_t timer_id() const noexcept { return msg.payload; }

  // Min-heap on (time, kind priority, seq). Kept as the reference total
  // order (the SoA ord word below must agree with it; see perf_smoke_test's
  // AoS oracle).
  friend bool operator>(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    const int pa = priority(a.kind);
    const int pb = priority(b.kind);
    if (pa != pb) return pa > pb;
    return a.seq > b.seq;
  }
};
static_assert(sizeof(Event) == 48, "Event crosses the queue API by value; keep it packed");

// ---------------------------------------------------------------------------
// SoA key lane: ord word + EventKey + message slot pool.
// ---------------------------------------------------------------------------

/// Packed secondary key: lane(3) | seq(32) | slot(29), so unsigned compare
/// orders by (lane priority, seq) — seq is unique, the slot bits are inert
/// ballast that rides along to find the payload again.
using Ord = std::uint64_t;

inline constexpr int kSlotBits = 29;
inline constexpr std::uint32_t kMaxSlots = 1u << kSlotBits;  // 536M in-flight events

inline constexpr Ord make_ord(EventKind kind, std::uint32_t seq, std::uint32_t slot) noexcept {
  return (static_cast<Ord>(kind) << 61) | (static_cast<Ord>(seq) << kSlotBits) |
         static_cast<Ord>(slot);
}
inline constexpr EventKind ord_kind(Ord ord) noexcept {
  return static_cast<EventKind>(ord >> 61);
}
inline constexpr std::uint32_t ord_seq(Ord ord) noexcept {
  return static_cast<std::uint32_t>(ord >> kSlotBits);
}
inline constexpr std::uint32_t ord_slot(Ord ord) noexcept {
  return static_cast<std::uint32_t>(ord & (kMaxSlots - 1u));
}

/// The 16-byte comparison key the heap sifts move around. (time, ord)
/// compares exactly like the 48-byte Event's (time, priority, seq).
struct EventKey {
  Time time = 0;
  Ord ord = 0;

  friend bool operator>(const EventKey& a, const EventKey& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.ord > b.ord;
  }
};
static_assert(sizeof(EventKey) == 16, "heap sifts move EventKeys; keep the key lane packed");

/// Slab of parked Message payloads with a free-list. A payload is written
/// once on push and read once on pop; slot recycling keeps the slab at the
/// run's high-water mark of in-flight events (no steady-state allocation).
class MessagePool {
 public:
  std::uint32_t acquire(const Message& msg) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      assert(slot + 1 < kMaxSlots && "event slot pool exhausted (2^29 in-flight events)");
      slots_.emplace_back();
    }
    slots_[slot] = msg;
    return slot;
  }

  void release(std::uint32_t slot) { free_.push_back(slot); }

  const Message& get(std::uint32_t slot) const noexcept { return slots_[slot]; }

  /// Forgets every slot (live or free) but keeps both vectors' capacity.
  void clear() noexcept {
    slots_.clear();
    free_.clear();
  }

 private:
  std::vector<Message> slots_;
  std::vector<std::uint32_t> free_;  // LIFO: hot slots stay cache-resident
};

/// Reconstructs the caller-facing Event from a popped key and releases the
/// payload slot back to the pool.
inline void materialize(const EventKey& key, MessagePool& pool, Event& out) {
  const std::uint32_t slot = ord_slot(key.ord);
  out.time = key.time;
  out.seq = ord_seq(key.ord);
  out.kind = ord_kind(key.ord);
  out.msg = pool.get(slot);
  pool.release(slot);
}

/// Plain binary min-heap over 16-byte EventKeys with a reusable backing
/// vector. Used standalone under EventHeapQueue (RunOptions::queue ==
/// kBinaryHeap) and as the CalendarQueue's far-future overflow tier. The
/// payloads live in the owning queue's MessagePool — sifts never touch
/// them.
class EventMinHeap {
 public:
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  const EventKey& top() const noexcept { return heap_.front(); }

  void push(const EventKey& key) {
    heap_.push_back(key);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  /// Removes the minimum into `out` with one sift: the root goes straight
  /// to the caller, then the former back element sinks from the hole at the
  /// root (classic hole-percolation). std::pop_heap would sift the back
  /// element to the bottom and bubble it up again — twice the key moves for
  /// the same result: under a strict total order (seq is unique) every
  /// valid heap layout pops the same sequence.
  void pop_into(EventKey& out) {
    out = heap_.front();
    const EventKey last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t hole = 0;
    for (;;) {
      std::size_t child = 2 * hole + 1;
      if (child >= n) break;
      if (child + 1 < n && heap_[child] > heap_[child + 1]) ++child;
      if (!(last > heap_[child])) break;
      heap_[hole] = heap_[child];
      hole = child;
    }
    heap_[hole] = last;
  }

  void clear() noexcept { heap_.clear(); }  // keeps capacity

 private:
  std::vector<EventKey> heap_;
};

/// Fallback queue: the key heap plus its payload pool, giving the engine
/// contract.
class EventHeapQueue {
 public:
  void reset() noexcept {
    heap_.clear();
    pool_.clear();
  }

  void push(const Event& event) {
    heap_.push(EventKey{event.time, make_ord(event.kind, event.seq, pool_.acquire(event.msg))});
  }

  bool empty() const noexcept { return heap_.empty(); }

  void pop_into(Event& out) {
    EventKey key;
    heap_.pop_into(key);
    materialize(key, pool_, out);
  }

  /// Batched same-tick dispatch: pops and sinks events while they share the
  /// earliest timestamp. The heap's pop order IS the (time, lane, seq) total
  /// order, and same-tick events pushed by a handler re-merge before the
  /// next pop, so this is observationally identical to the one-at-a-time
  /// loop. Precondition: !empty(). Returns the number dispatched (never 0).
  template <class Sink>
  std::int64_t drain_tick(Sink&& sink) {
    Event event;
    pop_into(event);
    const Time tick = event.time;
    std::int64_t dispatched = 1;
    sink(event);
    while (!heap_.empty() && heap_.top().time == tick) {
      pop_into(event);
      ++dispatched;
      sink(event);
    }
    return dispatched;
  }

 private:
  EventMinHeap heap_;
  MessagePool pool_;
};

/// Calendar queue: ring of per-tick buckets x priority lanes + overflow heap.
class CalendarQueue {
 public:
  /// Ring slots are clamped to [kMinSlots, kMaxSlots]; events farther than
  /// the ring covers are still correct, they just take the overflow heap.
  static constexpr std::size_t kMinSlots = 512;     // covers protocol timers
  static constexpr std::size_t kMaxSlots = 1 << 16; // LogGP byte-cost sweeps

  /// Prepares for a run starting at tick 0. `horizon` is the largest push
  /// offset the LogP model produces (port period / overhead + wire time);
  /// the ring is sized to cover it where feasible. Must only be called on
  /// an empty queue (Workspace hard-clears after an aborted run).
  void reset(Time horizon) {
    std::size_t want = std::bit_ceil(static_cast<std::size_t>(
        std::clamp<Time>(horizon + 1, static_cast<Time>(kMinSlots),
                         static_cast<Time>(kMaxSlots))));
    if (want * kNumLanes != lanes_.size()) {
      lanes_.assign(want * kNumLanes, Lane{});
      lane_mask_.assign(want, 0);
      bucket_time_.assign(want, 0);
      live_bits_.assign((want + 63) / 64, 0);
      mask_ = want - 1;
    }
    assert(ring_count_ == 0 && overflow_.empty());
    pool_.clear();
    cursor_ = 0;
  }

  /// Empties a queue in an arbitrary (mid-run, post-throw) state.
  void hard_clear() noexcept {
    for (std::size_t idx = 0; idx < lane_mask_.size(); ++idx) {
      if (lane_mask_[idx] == 0) continue;
      for (int lane = 0; lane < kNumLanes; ++lane) {
        Lane& l = lanes_[idx * kNumLanes + static_cast<std::size_t>(lane)];
        l.items.clear();
        l.head = 0;
      }
      lane_mask_[idx] = 0;
    }
    std::fill(live_bits_.begin(), live_bits_.end(), 0);
    ring_count_ = 0;
    overflow_.clear();
    pool_.clear();
    cursor_ = 0;
  }

  void push(const Event& event) {
    assert(event.time >= cursor_);
    const std::uint32_t slot = pool_.acquire(event.msg);
    if (event.time - cursor_ >= static_cast<Time>(lane_mask_.size())) {
      overflow_.push(EventKey{event.time, make_ord(event.kind, event.seq, slot)});
      return;
    }
    const std::size_t idx = static_cast<std::size_t>(event.time) & mask_;
    const int lane = priority(event.kind);
    if (lane_mask_[idx] == 0) {
      set_live(idx);
      bucket_time_[idx] = event.time;  // one tick per live bucket (window bound)
    }
    assert(bucket_time_[idx] == event.time);
    lane_mask_[idx] |= static_cast<std::uint8_t>(1u << lane);
    lanes_[idx * kNumLanes + static_cast<std::size_t>(lane)].items.push_back(
        make_ord(event.kind, event.seq, slot));
    ++ring_count_;
  }

  bool empty() const noexcept { return ring_count_ == 0 && overflow_.empty(); }

  void pop_into(Event& out) {
    if (ring_count_ == 0) {
      EventKey key;
      overflow_.pop_into(key);
      materialize(key, pool_, out);
      cursor_ = out.time;
      return;
    }
    // Ring candidate: earliest live bucket, then its lowest-priority lane.
    // The lane scan restarts every pop because dispatching a higher-lane
    // event may enqueue a lower-lane event at the same tick (e.g. a timer
    // callback starting a send "now").
    const std::size_t idx = next_live_bucket(static_cast<std::size_t>(cursor_) & mask_);
    const int lane = std::countr_zero(lane_mask_[idx]);
    Lane& l = lanes_[idx * kNumLanes + static_cast<std::size_t>(lane)];
    const Ord candidate = l.items[l.head];
    const Time candidate_time = bucket_time_[idx];
    // Merge with the overflow tier under the exact (time, lane, seq) order
    // (ord compare == (lane, seq) compare; the slot bits never decide).
    if (!overflow_.empty()) {
      const EventKey& over = overflow_.top();
      if (over.time < candidate_time ||
          (over.time == candidate_time && over.ord < candidate)) {
        EventKey key;
        overflow_.pop_into(key);
        materialize(key, pool_, out);
        cursor_ = out.time;
        return;
      }
    }
    materialize(EventKey{candidate_time, candidate}, pool_, out);
    cursor_ = candidate_time;
    if (++l.head == l.items.size()) {
      l.items.clear();  // keeps capacity for the next burst
      l.head = 0;
      lane_mask_[idx] &= static_cast<std::uint8_t>(~(1u << lane));
      if (lane_mask_[idx] == 0) clear_live(idx);
    }
    --ring_count_;
  }

  /// Batched same-tick dispatch: sinks every event of the earliest tick in
  /// one call when that tick lives wholly in the ring, walking the bucket's
  /// lanes in place (no scratch copy). The per-event queue touches shrink
  /// from a live-bucket bit scan + overflow merge + cursor store to one
  /// 8-byte ord load, a pool fetch, and a one-byte preemption test — the
  /// dominant win at LogP scale, where a tick bursts tens of thousands of
  /// arrivals.
  ///
  /// Ordering is bit-identical to repeated pop_into:
  ///  * every event in bucket `idx` has the same time t while cursor_ == t
  ///    (pushes further than the ring window go to the overflow heap, so a
  ///    wrapped index can never alias a different tick);
  ///  * same-lane same-tick pushes append behind the walk index and are
  ///    picked up in seq order (the lane vector is walked by index, and the
  ///    Event is materialised into a stack slot before dispatch, so
  ///    reallocation is safe);
  ///  * a lower-lane (= higher-priority) same-tick push preempts via the
  ///    lane-mask test and the walk restarts from the lowest live lane,
  ///    exactly like pop_into's per-pop lane rescan.
  ///
  /// Returns 0 — caller falls back to pop_into — when the earliest event
  /// sits in the overflow heap or an overflow event shares this tick and
  /// would need the (time, lane, seq) merge (far timers landing here; rare).
  template <class Sink>
  std::int64_t drain_tick(Sink&& sink) {
    if (ring_count_ == 0) return 0;
    const std::size_t idx = next_live_bucket(static_cast<std::size_t>(cursor_) & mask_);
    int lane = std::countr_zero(lane_mask_[idx]);
    Lane* l = &lanes_[idx * kNumLanes + static_cast<std::size_t>(lane)];
    const Time tick = bucket_time_[idx];
    if (!overflow_.empty() && overflow_.top().time <= tick) return 0;
    cursor_ = tick;
    std::int64_t dispatched = 0;
    Event event;
    for (;;) {
      while (l->head < l->items.size()) {
        materialize(EventKey{tick, l->items[l->head]}, pool_, event);
        ++l->head;
        --ring_count_;
        ++dispatched;
        sink(event);
        const auto below =
            static_cast<std::uint8_t>(lane_mask_[idx] & ((1u << lane) - 1u));
        if (below != 0) break;  // higher-priority same-tick push: restart scan
      }
      if (l->head >= l->items.size()) {
        l->items.clear();  // keeps capacity for the next burst
        l->head = 0;
        lane_mask_[idx] &= static_cast<std::uint8_t>(~(1u << lane));
        if (lane_mask_[idx] == 0) {
          clear_live(idx);
          return dispatched;  // no lane live at this tick: fully drained
        }
      }
      lane = std::countr_zero(lane_mask_[idx]);
      l = &lanes_[idx * kNumLanes + static_cast<std::size_t>(lane)];
    }
  }

 private:
  struct Lane {
    std::vector<Ord> items;  // 8-byte key words; payloads live in pool_
    std::size_t head = 0;
  };

  void set_live(std::size_t idx) noexcept { live_bits_[idx >> 6] |= 1ull << (idx & 63); }
  void clear_live(std::size_t idx) noexcept { live_bits_[idx >> 6] &= ~(1ull << (idx & 63)); }

  /// First live bucket index cyclically at or after `start`. All ring
  /// events lie in [cursor_, cursor_ + ring size), so cyclic index order
  /// from the cursor is exactly time order.
  std::size_t next_live_bucket(std::size_t start) const noexcept {
    const std::size_t words = live_bits_.size();
    std::size_t w = start >> 6;
    std::uint64_t word = live_bits_[w] >> (start & 63);
    if (word != 0) return start + static_cast<std::size_t>(std::countr_zero(word));
    for (std::size_t step = 1; step <= words; ++step) {
      std::size_t ww = w + step;
      if (ww >= words) ww -= words;
      if (live_bits_[ww] != 0) {
        return (ww << 6) + static_cast<std::size_t>(std::countr_zero(live_bits_[ww]));
      }
    }
    assert(false && "next_live_bucket on empty ring");
    return 0;
  }

  std::vector<Lane> lanes_;                // bucket-major: lanes_[idx*6 + lane]
  std::vector<std::uint8_t> lane_mask_;    // per-bucket non-empty-lane bits
  std::vector<Time> bucket_time_;          // the single tick a live bucket holds
  std::vector<std::uint64_t> live_bits_;   // one bit per bucket: lane_mask_ != 0
  std::size_t mask_ = 0;
  std::size_t ring_count_ = 0;
  Time cursor_ = 0;  // time of the most recent pop; never decreases

  EventMinHeap overflow_;  // far-future keys; payloads share pool_
  MessagePool pool_;       // parked payloads for ring + overflow
};

}  // namespace ct::sim::detail

#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ct::sim {

namespace {

enum class EventKind : std::uint8_t {
  kSendStart,  // rank's send port picks up the next queued message
  kSendDone,   // send overhead finished; port may start the next message
  kArrival,    // message reached the receiver's input queue (after L)
  kRecvStart,  // rank's receive port picks up the next queued arrival
  kRecvDone,   // receive overhead finished; protocol callback fires
  kTimer,
};

}  // namespace

struct Simulator::Event {
  Time time = 0;
  std::int64_t seq = 0;  // insertion order; deterministic tie-break
  EventKind kind = EventKind::kTimer;
  topo::Rank rank = topo::kNoRank;  // acting rank (sender/receiver/timer owner)
  Message msg;
  std::int64_t timer_id = 0;

  // Same-tick ordering: receive-side events complete before send-side ones
  // (the paper's accounting — a process "stops sending messages ... once it
  // receives", so a receipt at time t influences the send decision at t),
  // and timers observe everything that happened at their tick (a
  // synchronized-correction snapshot at t includes processes colored at t).
  static int priority(EventKind kind) {
    switch (kind) {
      case EventKind::kArrival:
        return 0;
      case EventKind::kRecvStart:
        return 1;
      case EventKind::kRecvDone:
        return 2;
      case EventKind::kSendDone:
        return 3;
      case EventKind::kSendStart:
        return 4;
      case EventKind::kTimer:
        return 5;
    }
    return 6;
  }

  // Min-heap on (time, kind priority, seq).
  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    const int pa = priority(a.kind);
    const int pb = priority(b.kind);
    if (pa != pb) return pa > pb;
    return a.seq > b.seq;
  }
};

class Simulator::ContextImpl final : public Context {
 public:
  ContextImpl(const LogP& params, const FaultSet& faults, const Locality& locality)
      : params_(params),
        faults_(faults),
        locality_(locality),
        send_queue_(static_cast<std::size_t>(params.P)),
        send_head_(static_cast<std::size_t>(params.P), 0),
        send_scheduled_(static_cast<std::size_t>(params.P), 0),
        send_next_free_(static_cast<std::size_t>(params.P), 0),
        recv_queue_(static_cast<std::size_t>(params.P)),
        recv_head_(static_cast<std::size_t>(params.P), 0),
        recv_scheduled_(static_cast<std::size_t>(params.P), 0),
        recv_next_free_(static_cast<std::size_t>(params.P), 0),
        colored_(static_cast<std::size_t>(params.P), 0),
        colored_at_(static_cast<std::size_t>(params.P), kTimeNever),
        sends_per_rank_(static_cast<std::size_t>(params.P), 0),
        rank_data_(static_cast<std::size_t>(params.P), 0) {}

  // --- Context interface ----------------------------------------------------

  Time now() const override { return now_; }
  topo::Rank num_procs() const override { return params_.P; }

  void send(topo::Rank from, topo::Rank to, Tag tag, std::int64_t payload) override {
    check_rank(from);
    check_rank(to);
    if (!faults_.alive_at(from, now_)) return;  // dead processes stay silent
    auto& queue = send_queue_[static_cast<std::size_t>(from)];
    queue.push_back(Message{from, to, tag, payload,
                            rank_data_[static_cast<std::size_t>(from)]});
    if (!send_scheduled_[static_cast<std::size_t>(from)]) {
      send_scheduled_[static_cast<std::size_t>(from)] = 1;
      push_event(std::max(now_, send_next_free_[static_cast<std::size_t>(from)]),
                 EventKind::kSendStart, from);
    }
  }

  void set_timer(topo::Rank on, Time when, std::int64_t id) override {
    check_rank(on);
    if (when < now_) throw std::invalid_argument("timer set in the past");
    Event event;
    event.time = when;
    event.kind = EventKind::kTimer;
    event.rank = on;
    event.timer_id = id;
    push(std::move(event));
  }

  void mark_colored(topo::Rank r) override {
    check_rank(r);
    auto slot = static_cast<std::size_t>(r);
    if (!colored_[slot]) {
      colored_[slot] = 1;
      colored_at_[slot] = now_;
    }
  }

  bool is_colored(topo::Rank r) const override {
    check_rank(r);
    return colored_[static_cast<std::size_t>(r)] != 0;
  }

  void note_correction_start() override {
    if (correction_start_ == kTimeNever) {
      correction_start_ = now_;
      dissemination_snapshot_ = colored_;
    }
  }

  void set_rank_data(topo::Rank r, std::int64_t data) override {
    check_rank(r);
    rank_data_[static_cast<std::size_t>(r)] = data;
  }

  std::int64_t rank_data(topo::Rank r) const override {
    check_rank(r);
    return rank_data_[static_cast<std::size_t>(r)];
  }

  // --- Engine ----------------------------------------------------------------

  RunResult drive(Protocol& protocol, const RunOptions& options) {
    protocol.begin(*this);
    std::int64_t processed = 0;
    while (!events_.empty()) {
      Event event = events_.top();
      events_.pop();
      if (++processed > options.max_events) {
        throw std::runtime_error("simulation exceeded max_events (runaway protocol?)");
      }
      now_ = event.time;
      dispatch(event, protocol, options);
    }
    return finish(options);
  }

 private:
  void check_rank(topo::Rank r) const {
    if (r < 0 || r >= params_.P) throw std::out_of_range("rank out of range");
  }

  void push(Event event) {
    event.seq = next_seq_++;
    events_.push(std::move(event));
  }

  void push_event(Time time, EventKind kind, topo::Rank rank) {
    Event event;
    event.time = time;
    event.kind = kind;
    event.rank = rank;
    push(std::move(event));
  }

  void push_msg_event(Time time, EventKind kind, topo::Rank rank, const Message& msg) {
    Event event;
    event.time = time;
    event.kind = kind;
    event.rank = rank;
    event.msg = msg;
    push(std::move(event));
  }

  void trace(const RunOptions& options, TraceEvent::Kind kind, const Message& msg,
             std::int64_t timer_id = 0) const {
    if (options.trace) options.trace(TraceEvent{kind, now_, msg, timer_id});
  }

  void dispatch(const Event& event, Protocol& protocol, const RunOptions& options) {
    switch (event.kind) {
      case EventKind::kSendStart:
        handle_send_start(event.rank, protocol, options);
        break;
      case EventKind::kSendDone:
        last_activity_ = std::max(last_activity_, now_);
        trace(options, TraceEvent::Kind::kSendDone, event.msg);
        if (faults_.alive_at(event.rank, now_)) {
          protocol.on_sent(*this, event.rank, event.msg);
        }
        break;
      case EventKind::kArrival:
        handle_arrival(event.msg, options);
        break;
      case EventKind::kRecvStart:
        handle_recv_start(event.rank);
        break;
      case EventKind::kRecvDone:
        last_activity_ = std::max(last_activity_, now_);
        trace(options, TraceEvent::Kind::kRecvDone, event.msg);
        if (faults_.alive_at(event.rank, now_)) {
          protocol.on_receive(*this, event.rank, event.msg);
        }
        break;
      case EventKind::kTimer:
        trace(options, TraceEvent::Kind::kTimer, Message{}, event.timer_id);
        if (faults_.alive_at(event.rank, now_)) {
          protocol.on_timer(*this, event.rank, event.timer_id);
        }
        break;
    }
  }

  void handle_send_start(topo::Rank rank, Protocol&, const RunOptions& options) {
    const auto slot = static_cast<std::size_t>(rank);
    auto& queue = send_queue_[slot];
    auto& head = send_head_[slot];
    if (!faults_.alive_at(rank, now_)) {
      // Dying between enqueue and port pickup discards the queue (extension
      // semantics; never happens in the paper's static fault model).
      queue.clear();
      head = 0;
      send_scheduled_[slot] = 0;
      return;
    }
    const Message msg = queue[head++];
    if (head == queue.size()) {
      queue.clear();
      head = 0;
      send_scheduled_[slot] = 0;
    } else {
      push_event(now_ + params_.port_period(), EventKind::kSendStart, rank);
    }
    send_next_free_[slot] = now_ + params_.port_period();
    ++total_messages_;
    ++sends_per_rank_[slot];
    trace(options, TraceEvent::Kind::kSendStart, msg);
    push_msg_event(now_ + params_.overhead_time(), EventKind::kSendDone, rank, msg);
    push_msg_event(now_ + params_.overhead_time() + wire_time(msg.src, msg.dst),
                   EventKind::kArrival, msg.dst, msg);
  }

  void handle_arrival(const Message& msg, const RunOptions& options) {
    // The message is on the destination even if nobody is there to process
    // it; network activity ends now either way.
    last_activity_ = std::max(last_activity_, now_);
    const auto slot = static_cast<std::size_t>(msg.dst);
    if (!faults_.alive_at(msg.dst, now_)) {
      trace(options, TraceEvent::Kind::kArrivalDropped, msg);
      return;
    }
    trace(options, TraceEvent::Kind::kArrival, msg);
    recv_queue_[slot].push_back(msg);
    if (!recv_scheduled_[slot]) {
      recv_scheduled_[slot] = 1;
      push_event(std::max(now_, recv_next_free_[slot]), EventKind::kRecvStart, msg.dst);
    }
  }

  void handle_recv_start(topo::Rank rank) {
    const auto slot = static_cast<std::size_t>(rank);
    auto& queue = recv_queue_[slot];
    auto& head = recv_head_[slot];
    if (!faults_.alive_at(rank, now_)) {
      queue.clear();
      head = 0;
      recv_scheduled_[slot] = 0;
      return;
    }
    const Message msg = queue[head++];
    if (head == queue.size()) {
      queue.clear();
      head = 0;
      recv_scheduled_[slot] = 0;
    } else {
      push_event(now_ + params_.port_period(), EventKind::kRecvStart, rank);
    }
    recv_next_free_[slot] = now_ + params_.port_period();
    push_msg_event(now_ + params_.overhead_time(), EventKind::kRecvDone, rank, msg);
  }

  RunResult finish(const RunOptions& options) {
    RunResult result;
    result.num_procs = params_.P;
    result.failed = faults_.failed_count();
    result.total_messages = total_messages_;
    result.quiescence_latency = last_activity_;
    result.correction_start = correction_start_;

    Time last_colored = 0;
    bool any_colored = false;
    topo::Rank uncolored_live = 0;
    for (topo::Rank r = 0; r < params_.P; ++r) {
      const auto slot = static_cast<std::size_t>(r);
      const bool live = faults_.alive_at(r, last_activity_ + 1);
      if (!live) continue;
      if (colored_[slot]) {
        any_colored = true;
        last_colored = std::max(last_colored, colored_at_[slot]);
      } else {
        ++uncolored_live;
      }
    }
    result.coloring_latency = any_colored ? last_colored : kTimeNever;
    result.uncolored_live = uncolored_live;

    if (correction_start_ != kTimeNever) {
      result.has_dissemination_snapshot = true;
      result.dissemination_gaps = topo::analyze_gaps(dissemination_snapshot_);
    }
    if (options.keep_per_rank_detail) {
      result.colored_at = colored_at_;
      result.sends_per_rank = sends_per_rank_;
      result.rank_data = rank_data_;
    }
    return result;
  }

  Time wire_time(topo::Rank src, topo::Rank dst) const {
    if (!locality_.uniform() && locality_.same_node(src, dst)) {
      return locality_.L_intra + params_.G * (params_.bytes - 1);
    }
    return params_.wire_time();
  }

  const LogP& params_;
  const FaultSet& faults_;
  const Locality& locality_;

  Time now_ = 0;
  Time last_activity_ = 0;
  std::int64_t next_seq_ = 0;
  std::int64_t total_messages_ = 0;
  Time correction_start_ = kTimeNever;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;

  std::vector<std::vector<Message>> send_queue_;
  std::vector<std::size_t> send_head_;
  std::vector<char> send_scheduled_;
  std::vector<Time> send_next_free_;

  std::vector<std::vector<Message>> recv_queue_;
  std::vector<std::size_t> recv_head_;
  std::vector<char> recv_scheduled_;
  std::vector<Time> recv_next_free_;

  std::vector<char> colored_;
  std::vector<Time> colored_at_;
  std::vector<std::int32_t> sends_per_rank_;
  std::vector<std::int64_t> rank_data_;
  std::vector<char> dissemination_snapshot_;
};

Simulator::Simulator(LogP params, FaultSet faults)
    : Simulator(params, std::move(faults), Locality{}) {}

Simulator::Simulator(LogP params, FaultSet faults, Locality locality)
    : params_(params), faults_(std::move(faults)), locality_(std::move(locality)) {
  params_.validate();
  if (faults_.num_procs() != params_.P) {
    throw std::invalid_argument("fault set size does not match LogP::P");
  }
  if (!locality_.uniform()) {
    if (static_cast<topo::Rank>(locality_.node_of_rank.size()) != params_.P) {
      throw std::invalid_argument("locality map size does not match LogP::P");
    }
    if (locality_.L_intra < 0 || locality_.L_intra > params_.L) {
      throw std::invalid_argument("locality needs 0 <= L_intra <= L");
    }
  }
}

RunResult Simulator::run(Protocol& protocol, const RunOptions& options) {
  ContextImpl context(params_, faults_, locality_);
  return context.drive(protocol, options);
}

void Protocol::on_timer(Context&, topo::Rank, std::int64_t) {}

}  // namespace ct::sim

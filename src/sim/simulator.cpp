#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/event_queue.hpp"

namespace ct::sim {

using detail::Event;
using detail::EventKind;

/// Sentinel index for the pooled message FIFOs (and their free list).
inline constexpr std::uint32_t kNilMsg = 0xffffffffu;

/// Node of the pooled per-rank send/receive FIFOs: all queued messages of
/// all ranks live in one slot-recycled arena (Workspace::State::msg_pool)
/// and each rank holds head/tail indices. Compared to a vector-of-vectors
/// this removes the per-rank header hop on every enqueue/dequeue and keeps
/// the touched nodes in the recently-recycled (cache-hot) slots.
struct QueuedMessage {
  Message msg;
  std::uint32_t next = kNilMsg;  // FIFO link, or next free slot
};

/// Per-rank engine state, lazily reset via the epoch stamp: a run bumps the
/// workspace epoch once (O(1)) and every access re-initialises a stale
/// entry on first touch, so untouched ranks never cost a write. One entry
/// is exactly 64 bytes — ports, FIFO heads, coloring, data plane and the
/// cached death time share a cache line, so the handlers touch one line of
/// rank state per event. Three former flags are encoded instead of stored:
/// colored == (colored_at != kTimeNever), and a send/receive port pickup is
/// scheduled iff the matching FIFO head != kNilMsg.
struct RankState {
  Time send_next_free = 0;
  Time recv_next_free = 0;
  Time colored_at = kTimeNever;
  Time dies_at = kTimeNever;  // cached FaultSet::dies_at, set on first touch
  std::int64_t data = 0;
  std::uint32_t epoch = 0;
  std::int32_t sends = 0;
  std::uint32_t send_head = kNilMsg;
  std::uint32_t send_tail = kNilMsg;
  std::uint32_t recv_head = kNilMsg;
  std::uint32_t recv_tail = kNilMsg;
};
static_assert(sizeof(RankState) == 64, "one cache line of rank state per event");

struct Workspace::State {
  /// Run stamp for the lazy per-rank reset. 32 bits so RankState stays one
  /// cache line; on wrap-around prepare() hard-resets the rank array, so a
  /// stale entry can never alias a current epoch.
  std::uint32_t epoch = 0;
  /// Set while a run is in flight; a run that ends by exception leaves it
  /// set, and the next prepare() hard-clears the self-draining structures.
  bool dirty = false;

  std::vector<RankState> ranks;
  std::vector<QueuedMessage> msg_pool;  // pooled send/recv FIFO nodes
  std::uint32_t msg_free = kNilMsg;     // free-list head into msg_pool
  std::vector<char> snapshot;           // dissemination-snapshot scratch

  detail::CalendarQueue calendar;
  detail::EventHeapQueue heap;

  void prepare(topo::Rank num_procs, Time horizon, QueueKind queue) {
    const auto n = static_cast<std::size_t>(num_procs);
    if (ranks.size() < n) ranks.resize(n);
    if (dirty) {
      calendar.hard_clear();
      heap.reset();
    }
    msg_pool.clear();  // keeps capacity; slot indices restart at 0 each run
    msg_free = kNilMsg;
    if (++epoch == 0) {
      std::fill(ranks.begin(), ranks.end(), RankState{});
      epoch = 1;
    }
    if (queue == QueueKind::kCalendar) {
      calendar.reset(horizon);
    } else {
      heap.reset();
    }
    dirty = true;
  }
};

namespace {
/// Value read for ranks whose workspace entry predates the current run.
constexpr RankState kFreshRank{};
}  // namespace

class Simulator::ContextImpl final : public Context {
 public:
  ContextImpl(const LogP& params, const FaultSet& faults, const Locality& locality,
              Workspace::State& ws)
      : params_(params), faults_(faults), locality_(locality), ws_(ws) {}

  // --- Context interface ----------------------------------------------------

  Time now() const override { return now_; }
  topo::Rank num_procs() const override { return params_.P; }

  void send(topo::Rank from, topo::Rank to, Tag tag, std::int64_t payload) override {
    check_rank(from);
    check_rank(to);
    RankState& rs = rank(from);
    if (rs.dies_at <= now_) return;  // dead processes stay silent
    const std::uint32_t idx = alloc_msg(
        Message{.src = from, .dst = to, .tag = tag, .payload = payload, .data = rs.data});
    if (rs.send_head == kNilMsg) {
      // Idle send port: schedule its pickup of this message.
      rs.send_head = rs.send_tail = idx;
      Event event;
      event.time = std::max(now_, rs.send_next_free);
      event.kind = EventKind::kSendStart;
      event.msg.src = from;
      push(event);
    } else {
      ws_.msg_pool[rs.send_tail].next = idx;
      rs.send_tail = idx;
    }
  }

  void set_timer(topo::Rank on, Time when, std::int64_t id) override {
    check_rank(on);
    if (when < now_) throw std::invalid_argument("timer set in the past");
    Event event;
    event.time = when;
    event.kind = EventKind::kTimer;
    event.msg.src = on;
    event.msg.payload = id;
    push(event);
  }

  void mark_colored(topo::Rank r) override {
    check_rank(r);
    RankState& rs = rank(r);
    if (rs.colored_at == kTimeNever) rs.colored_at = now_;
  }

  bool is_colored(topo::Rank r) const override {
    check_rank(r);
    return rank_ro(r).colored_at != kTimeNever;
  }

  void note_correction_start() override {
    if (correction_start_ == kTimeNever) {
      correction_start_ = now_;
      const auto n = static_cast<std::size_t>(params_.P);
      ws_.snapshot.resize(n);
      for (std::size_t r = 0; r < n; ++r) {
        ws_.snapshot[r] =
            static_cast<char>(rank_ro(static_cast<topo::Rank>(r)).colored_at != kTimeNever);
      }
      has_snapshot_ = true;
    }
  }

  void set_rank_data(topo::Rank r, std::int64_t data) override {
    check_rank(r);
    rank(r).data = data;
  }

  std::int64_t rank_data(topo::Rank r) const override {
    check_rank(r);
    return rank_ro(r).data;
  }

  // --- Engine ----------------------------------------------------------------

  void drive(Protocol& protocol, const RunOptions& options, RunResult& result) {
    use_calendar_ = options.queue == QueueKind::kCalendar;
    protocol.begin(*this);
    std::int64_t processed = 0;
    if (use_calendar_) {
      if (options.trace) {
        drive_loop<true>(ws_.calendar, protocol, options, processed);
      } else {
        drive_loop<false>(ws_.calendar, protocol, options, processed);
      }
    } else {
      if (options.trace) {
        drive_loop<true>(ws_.heap, protocol, options, processed);
      } else {
        drive_loop<false>(ws_.heap, protocol, options, processed);
      }
    }
    finish(options, result);
    result.events_processed = processed;
    ws_.dirty = false;  // clean exit: workspace structures self-drained
  }

 private:
  template <bool kTraced, class Queue>
  void drive_loop(Queue& queue, Protocol& protocol, const RunOptions& options,
                  std::int64_t& processed) {
    const std::int64_t max_events = options.max_events;
    // Whole ticks are dispatched through drain_tick — one queue scan per
    // tick instead of per event, with the queue guaranteeing the dispatch
    // order stays bit-identical to one-at-a-time pops (same-tick pushes
    // included; see event_queue.hpp). The sink copies each event to a stack
    // slot before dispatch, so handlers may push freely. The calendar
    // returns 0 when the earliest event needs the overflow merge; that rare
    // tick takes the single-pop path below.
    Event event;
    const auto sink = [&](const Event& next) {
      if (++processed > max_events) {
        throw std::runtime_error("simulation exceeded max_events (runaway protocol?)");
      }
      now_ = next.time;
      dispatch<kTraced>(next, protocol, options);
    };
    while (!queue.empty()) {
      if (queue.drain_tick(sink) == 0) {
        queue.pop_into(event);
        if (++processed > max_events) {
          throw std::runtime_error("simulation exceeded max_events (runaway protocol?)");
        }
        now_ = event.time;
        dispatch<kTraced>(event, protocol, options);
      }
    }
  }

  void check_rank(topo::Rank r) const {
    if (r < 0 || r >= params_.P) throw std::out_of_range("rank out of range");
  }

  /// Mutable per-rank state; lazily re-initialised on first touch this run.
  RankState& rank(topo::Rank r) {
    RankState& rs = ws_.ranks[static_cast<std::size_t>(r)];
    if (rs.epoch != ws_.epoch) {
      rs = kFreshRank;
      rs.epoch = ws_.epoch;
      rs.dies_at = faults_.dies_at(r);
    }
    return rs;
  }

  /// Read-only view: stale entries read as fresh without being stamped.
  const RankState& rank_ro(topo::Rank r) const {
    const RankState& rs = ws_.ranks[static_cast<std::size_t>(r)];
    return rs.epoch == ws_.epoch ? rs : kFreshRank;
  }

  void push(Event& event) {
    event.seq = next_seq_++;
    if (next_seq_ == 0) {
      // 2^32 pushes in one run; the default max_events guard fires long
      // before this, but a raised cap must not silently corrupt tie-breaks.
      throw std::runtime_error("event sequence counter overflow");
    }
    if (use_calendar_) {
      ws_.calendar.push(event);
    } else {
      ws_.heap.push(event);
    }
  }

  /// Grabs a pooled FIFO node, preferring recently-freed (cache-hot) slots.
  std::uint32_t alloc_msg(const Message& msg) {
    std::uint32_t idx = ws_.msg_free;
    if (idx != kNilMsg) {
      QueuedMessage& node = ws_.msg_pool[idx];
      ws_.msg_free = node.next;
      node.msg = msg;
      node.next = kNilMsg;
    } else {
      idx = static_cast<std::uint32_t>(ws_.msg_pool.size());
      ws_.msg_pool.push_back(QueuedMessage{msg, kNilMsg});
    }
    return idx;
  }

  void free_msg(std::uint32_t idx) noexcept {
    ws_.msg_pool[idx].next = ws_.msg_free;
    ws_.msg_free = idx;
  }

  /// Returns a whole FIFO chain to the free list (dead-rank discard path).
  void release_list(std::uint32_t head) noexcept {
    while (head != kNilMsg) {
      const std::uint32_t next = ws_.msg_pool[head].next;
      free_msg(head);
      head = next;
    }
  }

  template <bool kTraced>
  void trace(const RunOptions& options, TraceEvent::Kind kind, const Message& msg,
             std::int64_t timer_id = 0) const {
    if constexpr (kTraced) {
      if (options.trace) options.trace(TraceEvent{kind, now_, msg, timer_id});
    }
  }

  template <bool kTraced>
  void dispatch(const Event& event, Protocol& protocol, const RunOptions& options) {
    switch (event.kind) {
      case EventKind::kSendStart:
        handle_send_start<kTraced>(event.msg.src, options);
        break;
      case EventKind::kSendDone:
        last_activity_ = std::max(last_activity_, now_);
        trace<kTraced>(options, TraceEvent::Kind::kSendDone, event.msg);
        if (rank(event.msg.src).dies_at > now_) {
          protocol.on_sent(*this, event.msg.src, event.msg);
        }
        break;
      case EventKind::kArrival:
        handle_arrival<kTraced>(event.msg, options);
        break;
      case EventKind::kRecvStart:
        handle_recv_start(event.msg.dst);
        break;
      case EventKind::kRecvDone:
        last_activity_ = std::max(last_activity_, now_);
        trace<kTraced>(options, TraceEvent::Kind::kRecvDone, event.msg);
        if (rank(event.msg.dst).dies_at > now_) {
          protocol.on_receive(*this, event.msg.dst, event.msg);
        }
        break;
      case EventKind::kTimer:
        trace<kTraced>(options, TraceEvent::Kind::kTimer, Message{}, event.timer_id());
        if (rank(event.msg.src).dies_at > now_) {
          protocol.on_timer(*this, event.msg.src, event.timer_id());
        }
        break;
    }
  }

  template <bool kTraced>
  void handle_send_start(topo::Rank r, const RunOptions& options) {
    RankState& rs = rank(r);
    if (rs.dies_at <= now_) {
      // Dying between enqueue and port pickup discards the queue (extension
      // semantics; never happens in the paper's static fault model).
      release_list(rs.send_head);
      rs.send_head = rs.send_tail = kNilMsg;
      return;
    }
    const std::uint32_t idx = rs.send_head;
    const Message msg = ws_.msg_pool[idx].msg;
    rs.send_head = ws_.msg_pool[idx].next;
    free_msg(idx);
    Event event;
    if (rs.send_head != kNilMsg) {
      event.time = now_ + params_.port_period();
      event.kind = EventKind::kSendStart;
      event.msg.src = r;
      push(event);
    }
    rs.send_next_free = now_ + params_.port_period();
    ++total_messages_;
    ++rs.sends;
    trace<kTraced>(options, TraceEvent::Kind::kSendStart, msg);
    event.time = now_ + params_.overhead_time();
    event.kind = EventKind::kSendDone;
    event.msg = msg;
    push(event);
    event.time = now_ + params_.overhead_time() + wire_time(msg.src, msg.dst);
    event.kind = EventKind::kArrival;
    push(event);
  }

  template <bool kTraced>
  void handle_arrival(const Message& msg, const RunOptions& options) {
    // The message is on the destination even if nobody is there to process
    // it; network activity ends now either way.
    last_activity_ = std::max(last_activity_, now_);
    RankState& rs = rank(msg.dst);
    if (rs.dies_at <= now_) {
      trace<kTraced>(options, TraceEvent::Kind::kArrivalDropped, msg);
      return;
    }
    trace<kTraced>(options, TraceEvent::Kind::kArrival, msg);
    const std::uint32_t idx = alloc_msg(msg);
    if (rs.recv_head == kNilMsg) {
      // Idle receive port: schedule its pickup of this arrival.
      rs.recv_head = rs.recv_tail = idx;
      Event event;
      event.time = std::max(now_, rs.recv_next_free);
      event.kind = EventKind::kRecvStart;
      event.msg.dst = msg.dst;
      push(event);
    } else {
      ws_.msg_pool[rs.recv_tail].next = idx;
      rs.recv_tail = idx;
    }
  }

  void handle_recv_start(topo::Rank r) {
    RankState& rs = rank(r);
    if (rs.dies_at <= now_) {
      release_list(rs.recv_head);
      rs.recv_head = rs.recv_tail = kNilMsg;
      return;
    }
    const std::uint32_t idx = rs.recv_head;
    Event event;
    event.msg = ws_.msg_pool[idx].msg;
    rs.recv_head = ws_.msg_pool[idx].next;
    free_msg(idx);
    if (rs.recv_head != kNilMsg) {
      Event next;
      next.time = now_ + params_.port_period();
      next.kind = EventKind::kRecvStart;
      next.msg.dst = r;
      push(next);
    }
    rs.recv_next_free = now_ + params_.port_period();
    event.time = now_ + params_.overhead_time();
    event.kind = EventKind::kRecvDone;
    push(event);
  }

  void finish(const RunOptions& options, RunResult& result) {
    result.num_procs = params_.P;
    result.failed = faults_.failed_count();
    result.total_messages = total_messages_;
    result.quiescence_latency = last_activity_;
    result.correction_start = correction_start_;

    Time last_colored = 0;
    bool any_colored = false;
    topo::Rank uncolored_live = 0;
    for (topo::Rank r = 0; r < params_.P; ++r) {
      const bool live = faults_.alive_at(r, last_activity_ + 1);
      if (!live) continue;
      const RankState& rs = rank_ro(r);
      if (rs.colored_at != kTimeNever) {
        any_colored = true;
        last_colored = std::max(last_colored, rs.colored_at);
      } else {
        ++uncolored_live;
      }
    }
    result.coloring_latency = any_colored ? last_colored : kTimeNever;
    result.uncolored_live = uncolored_live;

    result.has_dissemination_snapshot = has_snapshot_;
    if (has_snapshot_) {
      // Into-variant: a reused RunResult keeps its gap_sizes capacity, so a
      // steady-state replication's gap analysis allocates nothing.
      topo::analyze_gaps_into(ws_.snapshot, result.dissemination_gaps);
    } else {
      result.dissemination_gaps.max_gap = 0;
      result.dissemination_gaps.gap_count = 0;
      result.dissemination_gaps.uncolored = 0;
      result.dissemination_gaps.gap_sizes.clear();
    }
    if (options.keep_per_rank_detail) {
      const auto n = static_cast<std::size_t>(params_.P);
      result.colored_at.resize(n);
      result.sends_per_rank.resize(n);
      result.rank_data.resize(n);
      for (std::size_t r = 0; r < n; ++r) {
        const RankState& rs = rank_ro(static_cast<topo::Rank>(r));
        result.colored_at[r] = rs.colored_at;
        result.sends_per_rank[r] = rs.sends;
        result.rank_data[r] = rs.data;
      }
    } else {
      result.colored_at.clear();
      result.sends_per_rank.clear();
      result.rank_data.clear();
    }
  }

  Time wire_time(topo::Rank src, topo::Rank dst) const {
    if (!locality_.uniform() && locality_.same_node(src, dst)) {
      // Serialisation ((bytes-1)*G) is injection cost, charged in
      // overhead_time via send_cost; only the latency differs by locality.
      return locality_.L_intra;
    }
    return params_.wire_time();
  }

  const LogP& params_;
  const FaultSet& faults_;
  const Locality& locality_;
  Workspace::State& ws_;

  Time now_ = 0;
  Time last_activity_ = 0;
  std::uint32_t next_seq_ = 0;
  std::int64_t total_messages_ = 0;
  Time correction_start_ = kTimeNever;
  bool has_snapshot_ = false;
  bool use_calendar_ = true;
};

Workspace::Workspace() : state_(std::make_unique<State>()) {}
Workspace::~Workspace() = default;
Workspace::Workspace(Workspace&&) noexcept = default;
Workspace& Workspace::operator=(Workspace&&) noexcept = default;

Simulator::Simulator(LogP params, FaultSet faults)
    : Simulator(params, std::move(faults), Locality{}) {}

Simulator::Simulator(LogP params, FaultSet faults, Locality locality)
    : params_(params),
      owned_faults_(std::move(faults)),
      faults_(&owned_faults_),
      locality_(std::move(locality)) {
  validate();
}

Simulator::Simulator(LogP params, const FaultSet* faults)
    : Simulator(params, faults, Locality{}) {}

Simulator::Simulator(LogP params, const FaultSet* faults, Locality locality)
    : params_(params), faults_(faults), locality_(std::move(locality)) {
  if (faults_ == nullptr) throw std::invalid_argument("borrowed fault set is null");
  validate();
}

void Simulator::validate() const {
  params_.validate();
  if (faults_->num_procs() != params_.P) {
    throw std::invalid_argument("fault set size does not match LogP::P");
  }
  if (!locality_.uniform()) {
    if (static_cast<topo::Rank>(locality_.node_of_rank.size()) != params_.P) {
      throw std::invalid_argument("locality map size does not match LogP::P");
    }
    if (locality_.L_intra < 0 || locality_.L_intra > params_.L) {
      throw std::invalid_argument("locality needs 0 <= L_intra <= L");
    }
  }
}

RunResult Simulator::run(Protocol& protocol, const RunOptions& options) {
  Workspace workspace;
  return run(protocol, options, workspace);
}

RunResult Simulator::run(Protocol& protocol, const RunOptions& options,
                         Workspace& workspace) {
  RunResult result;
  run(protocol, options, workspace, result);
  return result;
}

void Simulator::run(Protocol& protocol, const RunOptions& options, Workspace& workspace,
                    RunResult& result) {
  // Largest push offset the model produces: the next send/receive slot
  // (port period) or a message's full flight (overhead + wire time).
  const Time horizon =
      std::max(params_.port_period(), params_.overhead_time() + params_.wire_time()) + 1;
  workspace.state().prepare(params_.P, horizon, options.queue);
  ContextImpl context(params_, *faults_, locality_, workspace.state());
  context.drive(protocol, options, result);
}

void Protocol::on_timer(Context&, topo::Rank, std::int64_t) {}

}  // namespace ct::sim

#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/event_queue.hpp"

namespace ct::sim {

using detail::Event;
using detail::EventKind;

/// Per-rank engine state, lazily reset via the epoch stamp: a run bumps the
/// workspace epoch once (O(1)) and every access re-initialises a stale
/// entry on first touch, so untouched ranks never cost a write. One entry
/// is 48 bytes — port state, coloring and data plane share a cache line.
struct RankState {
  std::uint64_t epoch = 0;
  Time send_next_free = 0;
  Time recv_next_free = 0;
  Time colored_at = kTimeNever;
  std::int64_t data = 0;
  std::int32_t sends = 0;
  std::uint8_t send_scheduled = 0;
  std::uint8_t recv_scheduled = 0;
  std::uint8_t colored = 0;
};

struct Workspace::State {
  std::uint64_t epoch = 0;
  /// Set while a run is in flight; a run that ends by exception leaves it
  /// set, and the next prepare() hard-clears the self-draining structures.
  bool dirty = false;

  std::vector<RankState> ranks;
  std::vector<std::vector<Message>> send_queue;
  std::vector<std::size_t> send_head;
  std::vector<std::vector<Message>> recv_queue;
  std::vector<std::size_t> recv_head;
  std::vector<char> snapshot;  // dissemination-snapshot scratch

  detail::CalendarQueue calendar;
  detail::EventHeapQueue heap;

  void prepare(topo::Rank num_procs, Time horizon, QueueKind queue) {
    const auto n = static_cast<std::size_t>(num_procs);
    if (ranks.size() < n) ranks.resize(n);
    if (send_queue.size() < n) {
      send_queue.resize(n);
      send_head.resize(n, 0);
      recv_queue.resize(n);
      recv_head.resize(n, 0);
    }
    if (dirty) {
      for (std::size_t i = 0; i < send_queue.size(); ++i) {
        send_queue[i].clear();
        send_head[i] = 0;
        recv_queue[i].clear();
        recv_head[i] = 0;
      }
      calendar.hard_clear();
      heap.reset();
    }
    ++epoch;
    if (queue == QueueKind::kCalendar) {
      calendar.reset(horizon);
    } else {
      heap.reset();
    }
    dirty = true;
  }
};

namespace {
/// Value read for ranks whose workspace entry predates the current run.
constexpr RankState kFreshRank{};
}  // namespace

class Simulator::ContextImpl final : public Context {
 public:
  ContextImpl(const LogP& params, const FaultSet& faults, const Locality& locality,
              Workspace::State& ws)
      : params_(params), faults_(faults), locality_(locality), ws_(ws) {}

  // --- Context interface ----------------------------------------------------

  Time now() const override { return now_; }
  topo::Rank num_procs() const override { return params_.P; }

  void send(topo::Rank from, topo::Rank to, Tag tag, std::int64_t payload) override {
    check_rank(from);
    check_rank(to);
    if (!faults_.alive_at(from, now_)) return;  // dead processes stay silent
    RankState& rs = rank(from);
    ws_.send_queue[static_cast<std::size_t>(from)].push_back(
        Message{from, to, tag, payload, rs.data});
    if (!rs.send_scheduled) {
      rs.send_scheduled = 1;
      push_event(std::max(now_, rs.send_next_free), EventKind::kSendStart, from);
    }
  }

  void set_timer(topo::Rank on, Time when, std::int64_t id) override {
    check_rank(on);
    if (when < now_) throw std::invalid_argument("timer set in the past");
    Event event;
    event.time = when;
    event.kind = EventKind::kTimer;
    event.rank = on;
    event.timer_id = id;
    push(event);
  }

  void mark_colored(topo::Rank r) override {
    check_rank(r);
    RankState& rs = rank(r);
    if (!rs.colored) {
      rs.colored = 1;
      rs.colored_at = now_;
    }
  }

  bool is_colored(topo::Rank r) const override {
    check_rank(r);
    return rank_ro(r).colored != 0;
  }

  void note_correction_start() override {
    if (correction_start_ == kTimeNever) {
      correction_start_ = now_;
      const auto n = static_cast<std::size_t>(params_.P);
      ws_.snapshot.resize(n);
      for (std::size_t r = 0; r < n; ++r) {
        ws_.snapshot[r] = static_cast<char>(rank_ro(static_cast<topo::Rank>(r)).colored);
      }
      has_snapshot_ = true;
    }
  }

  void set_rank_data(topo::Rank r, std::int64_t data) override {
    check_rank(r);
    rank(r).data = data;
  }

  std::int64_t rank_data(topo::Rank r) const override {
    check_rank(r);
    return rank_ro(r).data;
  }

  // --- Engine ----------------------------------------------------------------

  RunResult drive(Protocol& protocol, const RunOptions& options) {
    use_calendar_ = options.queue == QueueKind::kCalendar;
    protocol.begin(*this);
    std::int64_t processed = 0;
    if (use_calendar_) {
      drive_loop(ws_.calendar, protocol, options, processed);
    } else {
      drive_loop(ws_.heap, protocol, options, processed);
    }
    RunResult result = finish(options);
    result.events_processed = processed;
    ws_.dirty = false;  // clean exit: workspace structures self-drained
    return result;
  }

 private:
  template <class Queue>
  void drive_loop(Queue& queue, Protocol& protocol, const RunOptions& options,
                  std::int64_t& processed) {
    const std::int64_t max_events = options.max_events;
    while (!queue.empty()) {
      const Event& event = queue.front();
      if (++processed > max_events) {
        throw std::runtime_error("simulation exceeded max_events (runaway protocol?)");
      }
      now_ = event.time;
      dispatch(event, protocol, options);
      queue.pop_front();
    }
  }

  void check_rank(topo::Rank r) const {
    if (r < 0 || r >= params_.P) throw std::out_of_range("rank out of range");
  }

  /// Mutable per-rank state; lazily re-initialised on first touch this run.
  RankState& rank(topo::Rank r) {
    RankState& rs = ws_.ranks[static_cast<std::size_t>(r)];
    if (rs.epoch != ws_.epoch) {
      rs = kFreshRank;
      rs.epoch = ws_.epoch;
    }
    return rs;
  }

  /// Read-only view: stale entries read as fresh without being stamped.
  const RankState& rank_ro(topo::Rank r) const {
    const RankState& rs = ws_.ranks[static_cast<std::size_t>(r)];
    return rs.epoch == ws_.epoch ? rs : kFreshRank;
  }

  void push(Event event) {
    event.seq = next_seq_++;
    if (use_calendar_) {
      ws_.calendar.push(event);
    } else {
      ws_.heap.push(event);
    }
  }

  void push_event(Time time, EventKind kind, topo::Rank rank) {
    Event event;
    event.time = time;
    event.kind = kind;
    event.rank = rank;
    push(event);
  }

  void push_msg_event(Time time, EventKind kind, topo::Rank rank, const Message& msg) {
    Event event;
    event.time = time;
    event.kind = kind;
    event.rank = rank;
    event.msg = msg;
    push(event);
  }

  void trace(const RunOptions& options, TraceEvent::Kind kind, const Message& msg,
             std::int64_t timer_id = 0) const {
    if (options.trace) options.trace(TraceEvent{kind, now_, msg, timer_id});
  }

  // NOTE: `event` may reference storage inside the active queue; the lane a
  // dispatched event lives in is never reallocated during its own dispatch
  // (see the invariant in event_queue.hpp), and the one same-tick-same-lane
  // case (timer re-arming a timer for `now`) passes its arguments by value
  // before the push can happen.
  void dispatch(const Event& event, Protocol& protocol, const RunOptions& options) {
    switch (event.kind) {
      case EventKind::kSendStart:
        handle_send_start(event.rank, options);
        break;
      case EventKind::kSendDone:
        last_activity_ = std::max(last_activity_, now_);
        trace(options, TraceEvent::Kind::kSendDone, event.msg);
        if (faults_.alive_at(event.rank, now_)) {
          protocol.on_sent(*this, event.rank, event.msg);
        }
        break;
      case EventKind::kArrival:
        handle_arrival(event.msg, options);
        break;
      case EventKind::kRecvStart:
        handle_recv_start(event.rank);
        break;
      case EventKind::kRecvDone:
        last_activity_ = std::max(last_activity_, now_);
        trace(options, TraceEvent::Kind::kRecvDone, event.msg);
        if (faults_.alive_at(event.rank, now_)) {
          protocol.on_receive(*this, event.rank, event.msg);
        }
        break;
      case EventKind::kTimer:
        trace(options, TraceEvent::Kind::kTimer, Message{}, event.timer_id);
        if (faults_.alive_at(event.rank, now_)) {
          protocol.on_timer(*this, event.rank, event.timer_id);
        }
        break;
    }
  }

  void handle_send_start(topo::Rank r, const RunOptions& options) {
    const auto slot = static_cast<std::size_t>(r);
    RankState& rs = rank(r);
    auto& queue = ws_.send_queue[slot];
    auto& head = ws_.send_head[slot];
    if (!faults_.alive_at(r, now_)) {
      // Dying between enqueue and port pickup discards the queue (extension
      // semantics; never happens in the paper's static fault model).
      queue.clear();
      head = 0;
      rs.send_scheduled = 0;
      return;
    }
    const Message msg = queue[head++];
    if (head == queue.size()) {
      queue.clear();
      head = 0;
      rs.send_scheduled = 0;
    } else {
      push_event(now_ + params_.port_period(), EventKind::kSendStart, r);
    }
    rs.send_next_free = now_ + params_.port_period();
    ++total_messages_;
    ++rs.sends;
    trace(options, TraceEvent::Kind::kSendStart, msg);
    push_msg_event(now_ + params_.overhead_time(), EventKind::kSendDone, r, msg);
    push_msg_event(now_ + params_.overhead_time() + wire_time(msg.src, msg.dst),
                   EventKind::kArrival, msg.dst, msg);
  }

  void handle_arrival(const Message& msg, const RunOptions& options) {
    // The message is on the destination even if nobody is there to process
    // it; network activity ends now either way.
    last_activity_ = std::max(last_activity_, now_);
    const auto slot = static_cast<std::size_t>(msg.dst);
    if (!faults_.alive_at(msg.dst, now_)) {
      trace(options, TraceEvent::Kind::kArrivalDropped, msg);
      return;
    }
    trace(options, TraceEvent::Kind::kArrival, msg);
    RankState& rs = rank(msg.dst);
    ws_.recv_queue[slot].push_back(msg);
    if (!rs.recv_scheduled) {
      rs.recv_scheduled = 1;
      push_event(std::max(now_, rs.recv_next_free), EventKind::kRecvStart, msg.dst);
    }
  }

  void handle_recv_start(topo::Rank r) {
    const auto slot = static_cast<std::size_t>(r);
    RankState& rs = rank(r);
    auto& queue = ws_.recv_queue[slot];
    auto& head = ws_.recv_head[slot];
    if (!faults_.alive_at(r, now_)) {
      queue.clear();
      head = 0;
      rs.recv_scheduled = 0;
      return;
    }
    const Message msg = queue[head++];
    if (head == queue.size()) {
      queue.clear();
      head = 0;
      rs.recv_scheduled = 0;
    } else {
      push_event(now_ + params_.port_period(), EventKind::kRecvStart, r);
    }
    rs.recv_next_free = now_ + params_.port_period();
    push_msg_event(now_ + params_.overhead_time(), EventKind::kRecvDone, r, msg);
  }

  RunResult finish(const RunOptions& options) {
    RunResult result;
    result.num_procs = params_.P;
    result.failed = faults_.failed_count();
    result.total_messages = total_messages_;
    result.quiescence_latency = last_activity_;
    result.correction_start = correction_start_;

    Time last_colored = 0;
    bool any_colored = false;
    topo::Rank uncolored_live = 0;
    for (topo::Rank r = 0; r < params_.P; ++r) {
      const bool live = faults_.alive_at(r, last_activity_ + 1);
      if (!live) continue;
      const RankState& rs = rank_ro(r);
      if (rs.colored) {
        any_colored = true;
        last_colored = std::max(last_colored, rs.colored_at);
      } else {
        ++uncolored_live;
      }
    }
    result.coloring_latency = any_colored ? last_colored : kTimeNever;
    result.uncolored_live = uncolored_live;

    if (has_snapshot_) {
      result.has_dissemination_snapshot = true;
      result.dissemination_gaps = topo::analyze_gaps(ws_.snapshot);
    }
    if (options.keep_per_rank_detail) {
      const auto n = static_cast<std::size_t>(params_.P);
      result.colored_at.resize(n);
      result.sends_per_rank.resize(n);
      result.rank_data.resize(n);
      for (std::size_t r = 0; r < n; ++r) {
        const RankState& rs = rank_ro(static_cast<topo::Rank>(r));
        result.colored_at[r] = rs.colored_at;
        result.sends_per_rank[r] = rs.sends;
        result.rank_data[r] = rs.data;
      }
    }
    return result;
  }

  Time wire_time(topo::Rank src, topo::Rank dst) const {
    if (!locality_.uniform() && locality_.same_node(src, dst)) {
      return locality_.L_intra + params_.G * (params_.bytes - 1);
    }
    return params_.wire_time();
  }

  const LogP& params_;
  const FaultSet& faults_;
  const Locality& locality_;
  Workspace::State& ws_;

  Time now_ = 0;
  Time last_activity_ = 0;
  std::int64_t next_seq_ = 0;
  std::int64_t total_messages_ = 0;
  Time correction_start_ = kTimeNever;
  bool has_snapshot_ = false;
  bool use_calendar_ = true;
};

Workspace::Workspace() : state_(std::make_unique<State>()) {}
Workspace::~Workspace() = default;
Workspace::Workspace(Workspace&&) noexcept = default;
Workspace& Workspace::operator=(Workspace&&) noexcept = default;

Simulator::Simulator(LogP params, FaultSet faults)
    : Simulator(params, std::move(faults), Locality{}) {}

Simulator::Simulator(LogP params, FaultSet faults, Locality locality)
    : params_(params), faults_(std::move(faults)), locality_(std::move(locality)) {
  params_.validate();
  if (faults_.num_procs() != params_.P) {
    throw std::invalid_argument("fault set size does not match LogP::P");
  }
  if (!locality_.uniform()) {
    if (static_cast<topo::Rank>(locality_.node_of_rank.size()) != params_.P) {
      throw std::invalid_argument("locality map size does not match LogP::P");
    }
    if (locality_.L_intra < 0 || locality_.L_intra > params_.L) {
      throw std::invalid_argument("locality needs 0 <= L_intra <= L");
    }
  }
}

RunResult Simulator::run(Protocol& protocol, const RunOptions& options) {
  Workspace workspace;
  return run(protocol, options, workspace);
}

RunResult Simulator::run(Protocol& protocol, const RunOptions& options,
                         Workspace& workspace) {
  // Largest push offset the model produces: the next send/receive slot
  // (port period) or a message's full flight (overhead + wire time).
  const Time horizon =
      std::max(params_.port_period(), params_.overhead_time() + params_.wire_time()) + 1;
  workspace.state().prepare(params_.P, horizon, options.queue);
  ContextImpl context(params_, faults_, locality_, workspace.state());
  return context.drive(protocol, options);
}

void Protocol::on_timer(Context&, topo::Rank, std::int64_t) {}

}  // namespace ct::sim

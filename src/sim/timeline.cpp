#include "sim/timeline.hpp"

#include <algorithm>
#include <sstream>

namespace ct::sim {

TimelineRecorder::TimelineRecorder(const LogP& params)
    : params_(params),
      sends_(static_cast<std::size_t>(params.P)),
      recvs_(static_cast<std::size_t>(params.P)) {
  params_.validate();
}

std::function<void(const TraceEvent&)> TimelineRecorder::callback() {
  return [this](const TraceEvent& event) { record(event); };
}

void TimelineRecorder::record(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEvent::Kind::kSendStart:
      sends_[static_cast<std::size_t>(event.msg.src)].push_back(
          {event.time, event.time + params_.overhead_time()});
      last_activity_ = std::max(last_activity_, event.time + params_.overhead_time());
      break;
    case TraceEvent::Kind::kRecvDone:
      // The receive port was busy for the overhead ending now.
      recvs_[static_cast<std::size_t>(event.msg.dst)].push_back(
          {event.time - params_.overhead_time(), event.time});
      last_activity_ = std::max(last_activity_, event.time);
      break;
    case TraceEvent::Kind::kArrival:
    case TraceEvent::Kind::kArrivalDropped:
      last_activity_ = std::max(last_activity_, event.time);
      break;
    default:
      break;
  }
}

std::size_t TimelineRecorder::send_spans(topo::Rank r) const {
  return sends_[static_cast<std::size_t>(r)].size();
}

std::size_t TimelineRecorder::recv_spans(topo::Rank r) const {
  return recvs_[static_cast<std::size_t>(r)].size();
}

std::string TimelineRecorder::render(Time horizon) const {
  if (horizon < 0) horizon = last_activity_;
  std::ostringstream out;

  // Header with a time ruler every 5 steps.
  out << "rank |";
  for (Time t = 0; t <= horizon; ++t) out << (t % 5 == 0 ? '|' : ' ');
  out << "\n";

  for (topo::Rank r = 0; r < params_.P; ++r) {
    std::string lane(static_cast<std::size_t>(horizon) + 1, '.');
    auto paint = [&](const std::vector<Span>& spans, char mark) {
      for (const Span& span : spans) {
        for (Time t = span.begin; t < span.end && t <= horizon; ++t) {
          char& cell = lane[static_cast<std::size_t>(t)];
          // Send and receive overhead may overlap on one process (§2.2).
          cell = (cell == '.') ? mark : (cell == mark ? mark : 'B');
        }
      }
    };
    paint(sends_[static_cast<std::size_t>(r)], 'S');
    paint(recvs_[static_cast<std::size_t>(r)], 'R');
    out << (r < 10 ? "   " : (r < 100 ? "  " : " ")) << r << " |" << lane << "\n";
  }
  out << "      S = sending, R = receiving, B = both, . = idle\n";
  return out.str();
}

}  // namespace ct::sim

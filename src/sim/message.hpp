#pragma once
// Message record shared by the simulator and the threaded runtime. The
// paper's broadcasts move a small opaque payload; protocols additionally
// use `tag` to distinguish phases and `payload` for per-message metadata
// (gossip round counters, correction coverage hints, ack aggregation).

#include <cstdint>

#include "sim/time.hpp"
#include "topology/tree.hpp"

namespace ct::sim {

using Tag = std::int32_t;

/// Well-known tags used by the protocols in this repo. Protocol code treats
/// these as plain values; the executors do not interpret them.
namespace tag {
inline constexpr Tag kTree = 1;       ///< tree dissemination payload
inline constexpr Tag kGossip = 2;     ///< gossip dissemination payload
inline constexpr Tag kCorrection = 3; ///< ring correction payload
inline constexpr Tag kCorrReply = 4;  ///< stop-reply / ack for correction
inline constexpr Tag kAck = 5;        ///< ack-tree acknowledgment
inline constexpr Tag kReduce = 6;     ///< reduction contribution (tree gather)
inline constexpr Tag kReduceRing = 7; ///< ring replica of a contribution
inline constexpr Tag kPull = 8;       ///< failure-detector baseline: data request
inline constexpr Tag kPullReply = 9;  ///< failure-detector baseline: data response
}  // namespace tag

struct Message {
  topo::Rank src = topo::kNoRank;
  topo::Rank dst = topo::kNoRank;
  Tag tag = 0;
  /// Spare word (formerly struct padding, made addressable). Protocols and
  /// the simulator leave it zero; the threaded runtime stamps its delivery
  /// epoch here so an rt::Envelope is exactly one 32-byte Message on every
  /// queue. Construction sites use designated initializers and skip it.
  std::int32_t spare = 0;
  /// Protocol metadata (gossip rounds, correction distances, ack flags).
  std::int64_t payload = 0;
  /// Data plane: the collective's payload word. Executors stamp this
  /// automatically from the sender's registered rank data (Context::
  /// set_rank_data), mirroring reality where every protocol message carries
  /// the broadcast content. Receivers read it to learn the value no matter
  /// which phase (tree, gossip or correction) colored them.
  std::int64_t data = 0;
};
static_assert(sizeof(Message) == 32, "Message rides every queue by value; keep it packed");

}  // namespace ct::sim

#pragma once
// LogP discrete-event simulator (the paper's `flogsim` substrate, §4:
// "we developed a discrete event simulator to study collective operations
// with LogP-like models ... Two main features are the possibility to model
// faults and run collectives with a dynamically changing communication
// graph").
//
// Semantics implemented (matching §2.2):
//  * A send occupies the sender's send port for o; consecutive sends on one
//    process are at least max(o, g) apart.
//  * The message then travels for L and reaches the receiver's input queue.
//  * Receiving occupies the receive port for o; queued arrivals are
//    processed FIFO. Send and receive ports of one process are independent.
//  * Failed processes stay silent: arrivals addressed to them are dropped,
//    their queued sends are discarded, and no callbacks fire for them. A
//    sender cannot distinguish this from success.
//  * Timers model protocol-internal deadlines; they cost no port time.
//
// Engine hot path: events live in a calendar queue (per-tick buckets with
// fixed priority lanes, src/sim/event_queue.hpp) giving O(1) push/pop; a
// binary-heap fallback is selectable per run and replays the identical
// (time, lane, seq) total order, which the determinism tests assert. The
// drive loop pops each event into a stack slot before dispatching, the
// whole per-rank hot state (ports, queue heads, coloring, cached death
// time) lives in one 64-byte entry, and the trace callback is compiled out
// of the untraced loop. All O(P) per-run state can live in a
// caller-provided Workspace so Monte-Carlo sweeps reuse allocations across
// replications.

#include <functional>
#include <memory>
#include <vector>

#include "sim/faults.hpp"
#include "sim/logp.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"
#include "sim/time.hpp"

namespace ct::sim {

/// Observable simulator events, for tracing/timeline examples.
struct TraceEvent {
  enum class Kind { kSendStart, kSendDone, kArrival, kArrivalDropped, kRecvDone, kTimer };
  Kind kind;
  Time time;
  Message msg;          // valid except for kTimer
  std::int64_t timer_id = 0;  // valid for kTimer
};

/// Event-queue engine selection. Results are bit-identical either way; the
/// heap exists as a fallback and as the reference order for tests.
enum class QueueKind : std::uint8_t {
  kCalendar,    ///< calendar/bucket queue, O(1) per event (default)
  kBinaryHeap,  ///< binary min-heap, O(log n) per event
};

struct RunOptions {
  /// Hard cap on processed events; exceeding it throws (runaway guard).
  std::int64_t max_events = 200'000'000;
  /// Populate RunResult::colored_at / sends_per_rank.
  bool keep_per_rank_detail = false;
  /// Event-queue engine (see QueueKind).
  QueueKind queue = QueueKind::kCalendar;
  /// Optional event trace callback (adds overhead; for examples/tests).
  std::function<void(const TraceEvent&)> trace;
};

/// Reusable per-run simulator state: the event queue(s), per-rank port and
/// coloring state, and the send/receive queues. One Workspace serves any
/// sequence of runs (any P, any protocol, either queue engine) on one
/// thread at a time; sweeps keep one per worker. Reuse contract:
///  * Between runs the workspace keeps only allocations (vector/bucket
///    capacity) — no run-visible state. Per-rank scalars are invalidated by
///    an epoch stamp in O(1) and lazily re-initialised on first touch, so
///    seeded runs are bit-identical with a fresh or a reused workspace.
///  * A run that exits by exception leaves the workspace dirty; the next
///    run detects this and hard-clears before starting (slower, still
///    correct).
///  * A moved-from Workspace must not be passed to Simulator::run.
class Workspace {
 public:
  Workspace();
  ~Workspace();
  Workspace(Workspace&&) noexcept;
  Workspace& operator=(Workspace&&) noexcept;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// @internal Engine-side state, defined in simulator.cpp.
  struct State;
  State& state() noexcept { return *state_; }

 private:
  std::unique_ptr<State> state_;
};

class Simulator {
 public:
  Simulator(LogP params, FaultSet faults);
  /// With a two-level Locality: same-node messages pay L_intra instead of L.
  Simulator(LogP params, FaultSet faults, Locality locality);
  /// Borrowing constructors: the fault set stays caller-owned and must
  /// outlive the simulator. Replicated sweeps pass the ReplicaPlan's reused
  /// FaultSet this way so constructing a Simulator per rep copies nothing.
  Simulator(LogP params, const FaultSet* faults);
  Simulator(LogP params, const FaultSet* faults, Locality locality);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Runs `protocol` to quiescence and returns the metrics. The simulator
  /// is single-shot: construct a fresh instance (cheap) per run.
  RunResult run(Protocol& protocol, const RunOptions& options = {});

  /// Same, but with caller-owned per-run state. Replicated sweeps pass one
  /// Workspace per worker thread to amortise allocations across runs.
  RunResult run(Protocol& protocol, const RunOptions& options, Workspace& workspace);

  /// Same, writing the metrics into a caller-held RunResult whose per-rank
  /// detail vectors are recycled across runs (ReplicaPlan's result slot).
  void run(Protocol& protocol, const RunOptions& options, Workspace& workspace,
           RunResult& result);

  const LogP& params() const noexcept { return params_; }
  const FaultSet& faults() const noexcept { return *faults_; }

 private:
  class ContextImpl;

  void validate() const;

  LogP params_;
  FaultSet owned_faults_;       // empty in borrowing mode
  const FaultSet* faults_;      // points at owned_faults_ or the borrowed set
  Locality locality_;
};

}  // namespace ct::sim

#pragma once
// LogP discrete-event simulator (the paper's `flogsim` substrate, §4:
// "we developed a discrete event simulator to study collective operations
// with LogP-like models ... Two main features are the possibility to model
// faults and run collectives with a dynamically changing communication
// graph").
//
// Semantics implemented (matching §2.2):
//  * A send occupies the sender's send port for o; consecutive sends on one
//    process are at least max(o, g) apart.
//  * The message then travels for L and reaches the receiver's input queue.
//  * Receiving occupies the receive port for o; queued arrivals are
//    processed FIFO. Send and receive ports of one process are independent.
//  * Failed processes stay silent: arrivals addressed to them are dropped,
//    their queued sends are discarded, and no callbacks fire for them. A
//    sender cannot distinguish this from success.
//  * Timers model protocol-internal deadlines; they cost no port time.

#include <functional>
#include <queue>
#include <vector>

#include "sim/faults.hpp"
#include "sim/logp.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"
#include "sim/time.hpp"

namespace ct::sim {

/// Observable simulator events, for tracing/timeline examples.
struct TraceEvent {
  enum class Kind { kSendStart, kSendDone, kArrival, kArrivalDropped, kRecvDone, kTimer };
  Kind kind;
  Time time;
  Message msg;          // valid except for kTimer
  std::int64_t timer_id = 0;  // valid for kTimer
};

struct RunOptions {
  /// Hard cap on processed events; exceeding it throws (runaway guard).
  std::int64_t max_events = 200'000'000;
  /// Populate RunResult::colored_at / sends_per_rank.
  bool keep_per_rank_detail = false;
  /// Optional event trace callback (adds overhead; for examples/tests).
  std::function<void(const TraceEvent&)> trace;
};

class Simulator {
 public:
  Simulator(LogP params, FaultSet faults);
  /// With a two-level Locality: same-node messages pay L_intra instead of L.
  Simulator(LogP params, FaultSet faults, Locality locality);

  /// Runs `protocol` to quiescence and returns the metrics. The simulator
  /// is single-shot: construct a fresh instance (cheap) per run.
  RunResult run(Protocol& protocol, const RunOptions& options = {});

  const LogP& params() const noexcept { return params_; }
  const FaultSet& faults() const noexcept { return faults_; }

 private:
  struct Event;
  class ContextImpl;

  LogP params_;
  FaultSet faults_;
  Locality locality_;
};

}  // namespace ct::sim

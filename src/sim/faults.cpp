#include "sim/faults.hpp"

#include "topology/placement.hpp"

#include <cmath>
#include <stdexcept>

namespace ct::sim {

FaultSet::FaultSet(topo::Rank num_procs) { reset(num_procs); }

void FaultSet::reset(topo::Rank num_procs) {
  if (num_procs <= 0) throw std::invalid_argument("fault set needs at least one process");
  // Every dirty slot is < dies_at_.size() by construction, so clearing before
  // the resize touches only valid entries; growth fills the new tail with
  // kTimeNever, shrink-then-regrow re-fills it the same way.
  for (topo::Rank r : dirty_) dies_at_[static_cast<std::size_t>(r)] = kTimeNever;
  dirty_.clear();
  dies_at_.resize(static_cast<std::size_t>(num_procs), kTimeNever);
  failed_count_ = 0;
}

void FaultSet::mark_dead(topo::Rank r, Time t) noexcept {
  if (dies_at_[static_cast<std::size_t>(r)] == kTimeNever) {
    dirty_.push_back(r);
    ++failed_count_;
  }
  dies_at_[static_cast<std::size_t>(r)] = t;
}

FaultSet FaultSet::none(topo::Rank num_procs) { return FaultSet(num_procs); }

void FaultSet::sample_none_into(FaultSet& out, topo::Rank num_procs) {
  out.reset(num_procs);
}

void FaultSet::sample_count_into(FaultSet& out, topo::Rank num_procs, topo::Rank count,
                                 support::Xoshiro256ss& rng) {
  if (count < 0 || count >= num_procs) {
    throw std::invalid_argument("failure count must be in [0, P-1]");
  }
  out.reset(num_procs);
  // Floyd's algorithm over ranks 1..P-1: uniform distinct sample without
  // materialising the population. The draw sequence must stay exactly as it
  // is — replication results are pinned to it (see determinism_test).
  const topo::Rank population = num_procs - 1;
  for (topo::Rank j = population - count; j < population; ++j) {
    // Candidate in [1, j+1]; j is 0-based within the population of size P-1.
    const auto candidate =
        static_cast<topo::Rank>(1 + rng.below(static_cast<std::uint64_t>(j) + 1));
    if (out.dies_at_[static_cast<std::size_t>(candidate)] == kTimeNever) {
      out.mark_dead(candidate, 0);
    } else {
      out.mark_dead(j + 1, 0);
    }
  }
}

void FaultSet::sample_fraction_into(FaultSet& out, topo::Rank num_procs, double fraction,
                                    support::Xoshiro256ss& rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("failure fraction must be in [0, 1]");
  }
  const auto count = static_cast<topo::Rank>(
      std::llround(fraction * static_cast<double>(num_procs - 1)));
  sample_count_into(out, num_procs, count, rng);
}

FaultSet FaultSet::random_count(topo::Rank num_procs, topo::Rank count,
                                support::Xoshiro256ss& rng) {
  FaultSet faults;
  sample_count_into(faults, num_procs, count, rng);
  return faults;
}

FaultSet FaultSet::random_fraction(topo::Rank num_procs, double fraction,
                                   support::Xoshiro256ss& rng) {
  FaultSet faults;
  sample_fraction_into(faults, num_procs, fraction, rng);
  return faults;
}

FaultSet FaultSet::from_list(topo::Rank num_procs, const std::vector<topo::Rank>& failed) {
  FaultSet faults(num_procs);
  for (topo::Rank r : failed) {
    if (r <= 0 || r >= num_procs) {
      throw std::invalid_argument("failed rank out of range (root cannot fail)");
    }
    faults.mark_dead(r, 0);
  }
  return faults;
}

FaultSet FaultSet::correlated_nodes(const std::vector<topo::Rank>& rank_of_pid,
                                    topo::Rank node_size, topo::Rank failed_nodes,
                                    support::Xoshiro256ss& rng) {
  const auto num_procs = static_cast<topo::Rank>(rank_of_pid.size());
  if (node_size <= 0) throw std::invalid_argument("node size must be positive");
  const topo::Rank num_nodes = (num_procs + node_size - 1) / node_size;
  if (failed_nodes < 0 || failed_nodes >= num_nodes) {
    throw std::invalid_argument("failed node count must be in [0, num_nodes - 1]");
  }
  // Distinct victim nodes among 1..num_nodes-1 (node 0 hosts the root's pid).
  std::vector<char> is_victim(static_cast<std::size_t>(num_nodes), 0);
  topo::Rank chosen = 0;
  while (chosen < failed_nodes) {
    const auto node = static_cast<std::size_t>(
        1 + rng.below(static_cast<std::uint64_t>(num_nodes) - 1));
    if (!is_victim[node]) {
      is_victim[node] = 1;
      ++chosen;
    }
  }
  std::vector<topo::Rank> failed;
  for (topo::Rank node = 1; node < num_nodes; ++node) {
    if (!is_victim[static_cast<std::size_t>(node)]) continue;
    for (topo::Rank r : topo::node_ranks(rank_of_pid, node, node_size)) {
      failed.push_back(r);
    }
  }
  return from_list(num_procs, failed);
}

void FaultSet::kill_at(topo::Rank r, Time t) {
  if (r <= 0 || r >= num_procs()) {
    throw std::invalid_argument("failed rank out of range (root cannot fail)");
  }
  if (t < 0) throw std::invalid_argument("death time must be >= 0");
  mark_dead(r, t);
}

std::vector<topo::Rank> FaultSet::initially_failed() const {
  std::vector<topo::Rank> result;
  for (topo::Rank r = 0; r < num_procs(); ++r) {
    if (failed_from_start(r)) result.push_back(r);
  }
  return result;
}

}  // namespace ct::sim

#pragma once
// LogP model parameters (§2.2, Culler et al. [8]).
//
//  L — maximum latency between any two processes,
//  o — send/receive processing overhead (paid on both sides),
//  g — minimum gap between consecutive sends/receives on one process,
//  P — number of processes.
//
// The paper's small-message assumption gives g <= o, so a process can
// handle messages in direct succession and g is effectively ignored; we
// keep g in the model (the port period is max(o, g)) and validate g <= o
// where the analysis requires it.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"
#include "topology/tree.hpp"

namespace ct::sim {

struct LogP {
  Time L = 2;
  Time o = 1;
  Time g = 1;
  topo::Rank P = 0;

  // --- LogGP/LogGOP extension (Alexandrov et al. / [20]) -------------------
  // Per-byte wire gap G, per-byte CPU overhead O, and the uniform message
  // size in bytes. At the defaults (G = O = 0, bytes = 1) every accessor
  // below reduces bit-identically to pure LogP (o, L, max(o, g), 2o + L) —
  // the regime the paper's analysis assumes. With a payload, injection
  // follows LogGP: send_cost(k) = o + (k-1)·G, so G gates back-to-back
  // sends of large messages (the quantity the streaming/chunked cells
  // exercise) instead of sitting dead in the model.
  Time G = 0;
  Time O = 0;
  Time bytes = 1;

  void validate() const {
    if (L < 0) throw std::invalid_argument("LogP: L must be >= 0");
    if (o < 1) throw std::invalid_argument("LogP: o must be >= 1");
    if (g < 0) throw std::invalid_argument("LogP: g must be >= 0");
    if (P < 1) throw std::invalid_argument("LogP: P must be >= 1");
    if (G < 0 || O < 0) throw std::invalid_argument("LogP: G and O must be >= 0");
    if (bytes < 1) throw std::invalid_argument("LogP: message size must be >= 1 byte");
  }

  /// LogGP injection cost of one nbytes-long message: the sender owns the
  /// network interface for o + (nbytes-1)·G before the next send may start.
  Time send_cost(Time nbytes) const noexcept { return o + (nbytes - 1) * G; }

  /// CPU time to hand one message to / take it from the network: the LogGP
  /// injection cost plus the per-byte CPU overhead O of touching the payload.
  Time overhead_time() const noexcept { return send_cost(bytes) + O * (bytes - 1); }

  /// Wire time of one message: pure latency. Serialisation is injection
  /// cost (send_cost), charged at the ports, not on the wire.
  Time wire_time() const noexcept { return L; }

  /// Minimum spacing between two consecutive sends (or receives) on the
  /// same process: the larger of the per-message gap and the injection +
  /// processing time (which already includes (bytes-1)·G via send_cost).
  Time port_period() const noexcept {
    Time period = overhead_time();
    if (g > period) period = g;
    return period;
  }

  /// End-to-end cost of one uncontended message: send overhead + wire
  /// latency + receive overhead. Equals 2o + L for small messages.
  Time message_cost() const noexcept { return 2 * overhead_time() + wire_time(); }

  bool operator==(const LogP&) const = default;
};

/// Optional two-level locality: the paper's model assumes "a uniform
/// maximum latency of L", but §6 points at tuning "to the topology of the
/// underlying network [42]". With a Locality attached, messages between
/// ranks on the same physical node pay L_intra instead of L — which turns
/// the §2.1 placement question into a real trade-off: striping co-located
/// ranks far apart on the ring shrinks correction gaps but makes low-offset
/// tree edges remote.
struct Locality {
  /// node_of_rank[r] = physical node hosting rank r (empty = uniform L).
  std::vector<std::int32_t> node_of_rank;
  /// Wire latency between ranks on one node (usually << L).
  Time L_intra = 0;

  bool uniform() const noexcept { return node_of_rank.empty(); }
  bool same_node(topo::Rank a, topo::Rank b) const {
    return node_of_rank.at(static_cast<std::size_t>(a)) ==
           node_of_rank.at(static_cast<std::size_t>(b));
  }
};

}  // namespace ct::sim

#pragma once
// Fail-stop fault injection (§2.1). A failed process neither sends nor
// processes messages; messages addressed to it vanish without feedback to
// the sender. For the paper's experiments failures are in place before the
// broadcast starts ("a process either sends all messages required by the
// protocol or none at all"); as an extension we also support processes
// dying at a given simulated time, which the failure-proof correction tests
// use to inject failures *during* the broadcast.

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "support/rng.hpp"
#include "topology/tree.hpp"

namespace ct::sim {

/// Set of scheduled process deaths over a fixed rank population.
///
/// Two usage modes share one sampling implementation (and therefore consume
/// the identical RNG call sequence, which replication determinism depends
/// on):
///  - the static factories (`none`, `random_count`, ...) return a fresh
///    value — convenient for one-off runs and tests;
///  - the `sample_*_into` variants re-sample into a caller-held FaultSet,
///    resetting only the slots dirtied by the previous sample (an O(faults)
///    touch, mirroring `sim::Workspace` reuse) instead of reallocating the
///    O(P) `dies_at_` buffer every replication. `exp::ReplicaPlan` keeps one
///    such FaultSet per pool worker.
class FaultSet {
 public:
  /// Empty set over zero ranks; sample into it before use.
  FaultSet() = default;

  /// All processes alive.
  static FaultSet none(topo::Rank num_procs);
  /// Exactly `count` distinct random failures among ranks 1..P-1 (the root
  /// initiates the broadcast and is assumed alive, §2.1).
  static FaultSet random_count(topo::Rank num_procs, topo::Rank count,
                               support::Xoshiro256ss& rng);
  /// Failure fraction of the non-root population, rounded to nearest.
  static FaultSet random_fraction(topo::Rank num_procs, double fraction,
                                  support::Xoshiro256ss& rng);
  /// Explicit list of failed ranks (must not contain the root).
  static FaultSet from_list(topo::Rank num_procs, const std::vector<topo::Rank>& failed);

  /// Correlated failures (§2.1): `failed_nodes` distinct physical nodes
  /// crash, killing all their processes. `rank_of_pid` is a placement from
  /// topo::make_placement; the node hosting pid 0 (the root) never fails.
  static FaultSet correlated_nodes(const std::vector<topo::Rank>& rank_of_pid,
                                   topo::Rank node_size, topo::Rank failed_nodes,
                                   support::Xoshiro256ss& rng);

  // Reusable-buffer variants: bit-identical samples to the factories above,
  // but `out`'s storage is recycled across calls.
  static void sample_none_into(FaultSet& out, topo::Rank num_procs);
  static void sample_count_into(FaultSet& out, topo::Rank num_procs, topo::Rank count,
                                support::Xoshiro256ss& rng);
  static void sample_fraction_into(FaultSet& out, topo::Rank num_procs, double fraction,
                                   support::Xoshiro256ss& rng);

  topo::Rank num_procs() const noexcept { return static_cast<topo::Rank>(dies_at_.size()); }
  topo::Rank failed_count() const noexcept { return failed_count_; }

  /// True if rank r processes events occurring at time t.
  bool alive_at(topo::Rank r, Time t) const noexcept {
    return dies_at_[static_cast<std::size_t>(r)] > t;
  }
  /// Scheduled death time of rank r (kTimeNever if it never fails).
  Time dies_at(topo::Rank r) const noexcept {
    return dies_at_[static_cast<std::size_t>(r)];
  }
  /// True if the rank never fails during this run.
  bool always_alive(topo::Rank r) const noexcept {
    return dies_at_[static_cast<std::size_t>(r)] == kTimeNever;
  }
  /// True if the rank is dead from the start (the paper's fault model).
  bool failed_from_start(topo::Rank r) const noexcept {
    return dies_at_[static_cast<std::size_t>(r)] <= 0;
  }

  /// Extension: schedule rank r to die at time t (t = 0 → dead from start).
  void kill_at(topo::Rank r, Time t);

  /// Ranks that are dead from the start, ascending.
  std::vector<topo::Rank> initially_failed() const;

 private:
  explicit FaultSet(topo::Rank num_procs);

  /// Clears previously dirtied slots and (re)sizes the buffer: O(previous
  /// faults), plus a one-time O(ΔP) fill when the population grows.
  void reset(topo::Rank num_procs);
  void mark_dead(topo::Rank r, Time t) noexcept;

  std::vector<Time> dies_at_;
  std::vector<topo::Rank> dirty_;  // slots where dies_at_ != kTimeNever
  topo::Rank failed_count_ = 0;
};

}  // namespace ct::sim

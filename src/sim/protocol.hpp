#pragma once
// Executor-independent protocol interface. One Protocol object implements a
// collective over all ranks as an event-driven state machine; it is driven
// either by the LogP discrete-event simulator (ct::sim::Simulator, virtual
// time) or by the threaded message-passing runtime (ct::rt::Executor, wall
// clock). This is the enabler for the paper's §4.4 claim: the very same
// protocol logic that is analysed in simulation runs on the "cluster".
//
// Contract:
//  * The executor calls begin() once; the protocol seeds initial activity
//    (root send, timers) through the Context.
//  * on_receive(me, msg) fires when rank `me` finished receiving `msg`
//    (after the receive overhead in the simulator).
//  * on_sent(me, msg) fires when rank `me`'s send port completes `msg`;
//    protocols that decide their next message dynamically (checked
//    correction, gossip) enqueue it here.
//  * on_timer(me, id) fires for timers set via Context::set_timer.
//  * Callbacks are never invoked for failed ranks.
//  * Protocols must not assume anything about message timing beyond the
//    ordering guarantees of the executor (reliable, per-pair FIFO).

#include <cstdint>

#include "sim/message.hpp"
#include "sim/time.hpp"
#include "topology/tree.hpp"

namespace ct::sim {

/// Executor services available to a protocol.
class Context {
 public:
  virtual ~Context() = default;

  virtual Time now() const = 0;
  virtual topo::Rank num_procs() const = 0;

  /// Enqueues a message on `from`'s send port (FIFO; the executor applies
  /// the overhead/latency model). Sending to a failed rank is permitted and
  /// indistinguishable from success, per §2.2.
  virtual void send(topo::Rank from, topo::Rank to, Tag tag, std::int64_t payload) = 0;

  /// One-shot timer for rank `on` at absolute time `when` (>= now()).
  virtual void set_timer(topo::Rank on, Time when, std::int64_t id) = 0;

  // --- Coloring bookkeeping (metrics + integrity/no-duplicates masking) ---

  /// Marks `r` colored now (idempotent; first call records the time).
  virtual void mark_colored(topo::Rank r) = 0;
  virtual bool is_colored(topo::Rank r) const = 0;

  /// Called by broadcast protocols when the correction phase begins, so the
  /// executor can snapshot dissemination coloring for gap metrics. Only the
  /// first call takes the snapshot.
  virtual void note_correction_start() = 0;

  // --- Data plane -------------------------------------------------------------

  /// Registers the collective's payload word held by rank r. Every message
  /// r subsequently sends carries it in Message::data (protocols receive
  /// data with whatever message colors them and register it in turn).
  virtual void set_rank_data(topo::Rank r, std::int64_t data) = 0;
  virtual std::int64_t rank_data(topo::Rank r) const = 0;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual void begin(Context& ctx) = 0;
  virtual void on_receive(Context& ctx, topo::Rank me, const Message& msg) = 0;
  virtual void on_sent(Context& ctx, topo::Rank me, const Message& msg) = 0;
  virtual void on_timer(Context& ctx, topo::Rank me, std::int64_t id);
};

/// Timer ids used by the protocols in this repo (namespaced like tags).
namespace timer {
inline constexpr std::int64_t kCorrectionStart = 1;
inline constexpr std::int64_t kGossipDeadline = 2;
inline constexpr std::int64_t kDelayExpired = 3;
}  // namespace timer

}  // namespace ct::sim

#pragma once
// Simulated time. The LogP analysis in the paper works in integer time
// steps ({o, L} ⊂ Z+), so virtual time is a 64-bit integer tick count.
// The threaded runtime reuses the same Protocol interface with ticks
// interpreted as nanoseconds.

#include <cstdint>
#include <limits>

namespace ct::sim {

using Time = std::int64_t;

/// Sentinel for "no such instant" (never / unset).
inline constexpr Time kTimeNever = std::numeric_limits<Time>::max();

}  // namespace ct::sim

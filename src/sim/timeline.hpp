#pragma once
// Per-process timeline rendering — Figure 5a of the paper ("Timeline of a
// Lamé tree, k = 3, P = 9") as a reusable utility. A TimelineRecorder plugs
// into RunOptions::trace, collects the send/receive port occupancy of every
// rank, and renders an ASCII grid: one row per process, one column per time
// step, 'S' while the send port is busy, 'R' while the receive port is busy
// ('B' when both overlap — §2.2 allows that).

#include <functional>
#include <string>
#include <vector>

#include "sim/logp.hpp"
#include "sim/simulator.hpp"

namespace ct::sim {

class TimelineRecorder {
 public:
  explicit TimelineRecorder(const LogP& params);

  /// Adapter for RunOptions::trace. The recorder must outlive the run.
  std::function<void(const TraceEvent&)> callback();

  /// ASCII rendering up to `horizon` (default: last recorded activity).
  std::string render(Time horizon = -1) const;

  /// Number of send (receive) busy intervals recorded for a rank.
  std::size_t send_spans(topo::Rank r) const;
  std::size_t recv_spans(topo::Rank r) const;

  Time last_activity() const noexcept { return last_activity_; }

 private:
  struct Span {
    Time begin;
    Time end;  // exclusive
  };

  void record(const TraceEvent& event);

  LogP params_;
  std::vector<std::vector<Span>> sends_;
  std::vector<std::vector<Span>> recvs_;
  Time last_activity_ = 0;
};

}  // namespace ct::sim

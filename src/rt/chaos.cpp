#include "rt/chaos.hpp"

#include "support/rng.hpp"

namespace ct::rt {

namespace {

// Domain-separation tags so the crash schedule and the three per-send
// decisions draw from statistically independent streams of the same seed.
constexpr std::uint64_t kCrashTag = 0x6372617368ULL;   // "crash"
constexpr std::uint64_t kLinkTag = 0x6c696e6bULL;      // "link"
constexpr std::uint64_t kReviveTag = 0x726576697665ULL;  // "revive"

/// Stateless mix of up to four words into one; SplitMix64-chained so every
/// input word fully avalanches into the output.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                  std::uint64_t d = 0) {
  support::SplitMix64 m(a);
  std::uint64_t h = m.next();
  support::SplitMix64 mb(h ^ b);
  h = mb.next();
  support::SplitMix64 mc(h ^ c);
  h = mc.next();
  support::SplitMix64 md(h ^ d);
  return md.next();
}

double unit(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

}  // namespace

std::int64_t ChaosPlan::crash_ns(std::int64_t epoch, topo::Rank rank) const {
  for (const auto& [r, ns] : kill_ns_) {
    if (r == rank) return ns;
  }
  if (options_.crash_fraction <= 0.0 || rank == 0) return -1;
  const std::uint64_t h = mix(options_.seed ^ kCrashTag,
                              static_cast<std::uint64_t>(epoch),
                              static_cast<std::uint64_t>(rank));
  if (unit(h) >= options_.crash_fraction) return -1;
  const std::uint64_t window =
      options_.crash_window_ns > 0 ? static_cast<std::uint64_t>(options_.crash_window_ns)
                                   : 1;
  // Second derived word picks the instant; 1-based so a crash is never
  // "before the epoch started".
  support::SplitMix64 when(h);
  return 1 + static_cast<std::int64_t>(when.next() % window);
}

std::int64_t ChaosPlan::revive_after_ns(std::int64_t crash_epoch,
                                        topo::Rank rank) const {
  for (const auto& [r, ns] : revive_ns_) {
    if (r == rank) return ns;
  }
  if (options_.revive_fraction <= 0.0 || rank == 0) return -1;
  const std::uint64_t h = mix(options_.seed ^ kReviveTag,
                              static_cast<std::uint64_t>(crash_epoch),
                              static_cast<std::uint64_t>(rank));
  if (unit(h) >= options_.revive_fraction) return -1;
  std::int64_t delay = options_.revive_after_ns;
  if (options_.revive_jitter_ns > 0) {
    support::SplitMix64 when(h);
    delay += static_cast<std::int64_t>(
        when.next() % static_cast<std::uint64_t>(options_.revive_jitter_ns + 1));
  }
  return delay > 0 ? delay : 0;
}

std::int64_t ChaosPlan::crash_send_budget(topo::Rank rank) const {
  for (const auto& [r, sends] : kill_sends_) {
    if (r == rank) return sends;
  }
  return -1;
}

ChaosPlan::Verdict ChaosPlan::classify(std::int64_t epoch, topo::Rank from,
                                       std::int64_t send_index) const {
  Verdict verdict;
  const std::uint64_t h = mix(options_.seed ^ kLinkTag,
                              static_cast<std::uint64_t>(epoch),
                              static_cast<std::uint64_t>(from),
                              static_cast<std::uint64_t>(send_index));
  support::SplitMix64 draw(h);
  if (options_.drop_prob > 0.0 && unit(draw.next()) < options_.drop_prob) {
    verdict.drop = true;
    return verdict;
  }
  if (options_.duplicate_prob > 0.0 && unit(draw.next()) < options_.duplicate_prob) {
    verdict.duplicate = true;
    return verdict;
  }
  if (options_.delay_prob > 0.0 && unit(draw.next()) < options_.delay_prob) {
    std::int64_t delay = options_.delay_ns;
    if (options_.delay_jitter_ns > 0) {
      delay += static_cast<std::int64_t>(
          draw.next() % static_cast<std::uint64_t>(options_.delay_jitter_ns + 1));
    }
    verdict.delay_ns = delay > 0 ? delay : 0;
  }
  return verdict;
}

}  // namespace ct::rt

#pragma once
// LogP parameter measurement on the threaded runtime — the calibration step
// the paper relies on for its simulator inputs ("L = 2, o = 1 ... which
// corresponds to the range of LogP parameters measured on real systems
// [18, 28, 34]", citing LogfP and Kielmann et al.'s logp_mpi).
//
// Two micro-experiments between ranks 0 and 1:
//  * ping-pong: round-trip time, RTT/2 = 2o + L per the model;
//  * burst: rank 0 fires k back-to-back messages; the marginal cost of one
//    more message estimates the port period (o, since g <= o here).
// Solving yields o and L in nanoseconds, and o/L expressed as LogP "steps"
// tells how this substrate compares to the paper's L/o = 2 assumption.

#include <cstdint>

#include "rt/engine.hpp"

namespace ct::rt {

struct LogPFit {
  double rtt_ns = 0;       ///< mean ping-pong round trip
  double o_ns = 0;         ///< estimated per-message overhead
  double L_ns = 0;         ///< estimated wire latency (RTT/2 - 2o, floored at 0)
  double l_over_o = 0;     ///< the simulator's L/o knob implied by this host
};

/// Measures on an engine with at least two live ranks. `round_trips` and
/// `burst_size` trade precision for time; defaults suit a CI run.
LogPFit fit_logp(Engine& engine, int round_trips = 200, int burst_size = 64);

}  // namespace ct::rt

#pragma once
// Deterministic fault-injection plan for the threaded runtime (DESIGN.md
// §4d). The paper's experiments pre-fail ranks before the broadcast starts;
// a ChaosPlan extends the runtime to the simulator's stronger model
// (sim::FaultSet::dies_at): ranks crash *mid-epoch*, and individual sends
// are dropped, delayed, or duplicated at the Envelope delivery boundary —
// so unchanged sim::Protocol state machines see exactly the paper's
// "messages vanish without feedback" semantics, now at arbitrary times.
//
// Every decision is a pure hash of (seed, epoch, rank[, send index]) — the
// plan keeps no mutable state, so both executors, any worker interleaving,
// and re-runs of the same seed consult identical schedules. What *is*
// timing-dependent is which scheduled crashes take effect: a rank slated to
// crash at t = 1.5 ms never does if the epoch completes in 0.9 ms. The
// schedule is bit-reproducible; the realized fault set is reported per
// epoch in EpochResult::crashed_ranks.

#include <cstdint>
#include <utility>
#include <vector>

#include "topology/tree.hpp"

namespace ct::rt {

struct ChaosOptions {
  std::uint64_t seed = 0;
  /// Probability that a given rank crashes during a given epoch. Rank 0
  /// (the collective's root) is exempt, as in the paper's experiments.
  double crash_fraction = 0.0;
  /// Crash times are uniform in [1, crash_window_ns] from epoch start —
  /// sized to land inside dissemination/correction, not after quiescence.
  std::int64_t crash_window_ns = 2'000'000;
  /// Per-send perturbations, evaluated in this order (mutually exclusive
  /// per message): drop, else duplicate, else delay.
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_prob = 0.0;
  /// Base delay plus uniform jitter in [0, delay_jitter_ns].
  std::int64_t delay_ns = 200'000;
  std::int64_t delay_jitter_ns = 0;
  /// Probability that a crashed rank is scheduled to revive (repair mode,
  /// DESIGN.md §4i). Drawn once per crash from the same pure-hash stream
  /// family as the crash schedule, keyed by the epoch the rank crashed in.
  double revive_fraction = 0.0;
  /// Wall-clock delay from the crash's detection (epoch seal) until the
  /// rank is eligible to rejoin, plus uniform jitter in [0,
  /// revive_jitter_ns]. 0 = eligible at the very next epoch boundary.
  std::int64_t revive_after_ns = 0;
  std::int64_t revive_jitter_ns = 0;
};

class ChaosPlan {
 public:
  ChaosPlan() = default;
  explicit ChaosPlan(ChaosOptions options) : options_(options) {}

  const ChaosOptions& options() const noexcept { return options_; }

  /// Explicit override: rank crashes at `ns` from epoch start, every epoch.
  /// Used by the sim/rt parity tests to mirror FaultSet::dies_at exactly.
  void kill_at_ns(topo::Rank rank, std::int64_t ns) {
    kill_ns_.emplace_back(rank, ns);
  }

  /// Explicit override: rank crashes after completing `sends` sends in an
  /// epoch (the step-count analogue of dies_at). -1-free: sends >= 0.
  void kill_after_sends(topo::Rank rank, std::int64_t sends) {
    kill_sends_.emplace_back(rank, sends);
  }

  /// Explicit override: every crash of `rank` revives after `ns` wall-clock
  /// nanoseconds (the revive analogue of kill_at_ns, for deterministic
  /// recovery tests). ns < 0 pins the rank dead forever.
  void revive_after(topo::Rank rank, std::int64_t ns) {
    revive_ns_.emplace_back(rank, ns);
  }

  bool crashes_enabled() const noexcept {
    return options_.crash_fraction > 0.0 || !kill_ns_.empty() || !kill_sends_.empty();
  }
  bool revives_enabled() const noexcept {
    return options_.revive_fraction > 0.0 || !revive_ns_.empty();
  }
  bool links_enabled() const noexcept {
    return options_.drop_prob > 0.0 || options_.delay_prob > 0.0 ||
           options_.duplicate_prob > 0.0;
  }
  bool enabled() const noexcept { return crashes_enabled() || links_enabled(); }

  /// Scheduled crash time for (epoch, rank), ns from epoch start; -1 if the
  /// rank is not scheduled to crash this epoch. Explicit kill_at_ns
  /// overrides win over the sampled schedule.
  std::int64_t crash_ns(std::int64_t epoch, topo::Rank rank) const;

  /// Send budget before a step-count crash; -1 = unlimited.
  std::int64_t crash_send_budget(topo::Rank rank) const;

  /// Scheduled revive delay for a rank that crashed in `crash_epoch`, ns of
  /// wall clock from the crash's detection; -1 = the rank stays dead. Pure
  /// hash of (seed, crash_epoch, rank) under its own domain tag, so the
  /// schedule is bit-reproducible across executors and worker counts just
  /// like crash_ns. Explicit revive_after overrides win. Rank 0 never
  /// crashes, so its schedule is vacuously -1.
  std::int64_t revive_after_ns(std::int64_t crash_epoch, topo::Rank rank) const;

  /// Fate of one send. `send_index` is the sender's 1-based per-epoch send
  /// counter. At most one of drop/duplicate/delay applies.
  struct Verdict {
    bool drop = false;
    bool duplicate = false;
    std::int64_t delay_ns = 0;  ///< 0 = deliver immediately
  };
  Verdict classify(std::int64_t epoch, topo::Rank from, std::int64_t send_index) const;

 private:
  ChaosOptions options_;
  std::vector<std::pair<topo::Rank, std::int64_t>> kill_ns_;
  std::vector<std::pair<topo::Rank, std::int64_t>> kill_sends_;
  std::vector<std::pair<topo::Rank, std::int64_t>> revive_ns_;
};

}  // namespace ct::rt

#include "rt/membership.hpp"

#include <stdexcept>

namespace ct::rt {

MembershipView MembershipView::identity(topo::Rank num_global) {
  MembershipView view;
  view.num_global_ = num_global;
  view.num_live_ = num_global;
  view.generation_ = 0;
  view.identity_ = true;
  return view;
}

MembershipView MembershipView::over_survivors(const std::vector<char>& dead,
                                              std::int32_t generation) {
  const auto num_global = static_cast<topo::Rank>(dead.size());
  MembershipView view;
  view.num_global_ = num_global;
  view.generation_ = generation;

  topo::Rank live = 0;
  for (const char d : dead) live += !d;
  view.num_live_ = live;
  if (live == num_global) {
    // Everybody survived (or everybody revived): keep the identity fast
    // path so callers can skip the remap wrapper entirely.
    view.identity_ = true;
    return view;
  }

  view.identity_ = false;
  view.live_.reserve(static_cast<std::size_t>(live));
  view.dense_.assign(static_cast<std::size_t>(num_global), topo::kNoRank);
  for (topo::Rank g = 0; g < num_global; ++g) {
    if (dead[static_cast<std::size_t>(g)]) continue;
    view.dense_[static_cast<std::size_t>(g)] =
        static_cast<topo::Rank>(view.live_.size());
    view.live_.push_back(g);
  }
  return view;
}

void ReplayLog::append(std::int64_t epoch, std::int64_t payload) {
  if (capacity_ == 0) return;
  if (!records_.empty() && epoch <= records_.back().epoch) {
    throw std::invalid_argument("ReplayLog: epochs must be appended in order");
  }
  if (records_.size() == capacity_) records_.pop_front();
  records_.push_back(Record{epoch, payload});
}

bool ReplayLog::covers(std::int64_t epoch) const {
  return !records_.empty() && epoch >= records_.front().epoch &&
         epoch <= records_.back().epoch;
}

std::int64_t ReplayLog::payload_of(std::int64_t epoch) const {
  if (!covers(epoch)) {
    throw std::out_of_range("ReplayLog: epoch not covered");
  }
  // Appends are in epoch order but not necessarily contiguous (timed-out
  // epochs are skipped), so scan; the log is small and this path only runs
  // at a rejoin boundary.
  for (const Record& rec : records_) {
    if (rec.epoch == epoch) return rec.payload;
  }
  throw std::out_of_range("ReplayLog: epoch missing from covered range");
}

void ReplayLog::truncate_below(std::int64_t epoch) {
  while (!records_.empty() && records_.front().epoch < epoch) {
    records_.pop_front();
  }
}

}  // namespace ct::rt

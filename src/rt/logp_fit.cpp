#include "rt/logp_fit.hpp"

#include <algorithm>
#include <stdexcept>

namespace ct::rt {

namespace {

using topo::Rank;

/// N ping-pong round trips between ranks 0 and 1; all other ranks idle.
class PingPong final : public sim::Protocol {
 public:
  explicit PingPong(int round_trips) : rounds_(round_trips) {}

  void begin(sim::Context& ctx) override {
    for (Rank r = 2; r < ctx.num_procs(); ++r) ctx.mark_colored(r);
    start_ns_ = ctx.now();
    ctx.send(0, 1, sim::tag::kTree, 1);
  }

  void on_receive(sim::Context& ctx, Rank me, const sim::Message& msg) override {
    if (msg.payload < 0) {  // done marker
      ctx.mark_colored(me);
      return;
    }
    if (me == 1) {
      ctx.send(1, 0, sim::tag::kTree, msg.payload);  // pong
      return;
    }
    if (msg.payload < rounds_) {
      ctx.send(0, 1, sim::tag::kTree, msg.payload + 1);
    } else {
      end_ns_ = ctx.now();
      ctx.send(0, 1, sim::tag::kTree, -1);
      ctx.mark_colored(0);
    }
  }

  void on_sent(sim::Context&, Rank, const sim::Message&) override {}

  double mean_rtt_ns() const {
    return static_cast<double>(end_ns_ - start_ns_) / static_cast<double>(rounds_);
  }

 private:
  int rounds_;
  sim::Time start_ns_ = 0;
  sim::Time end_ns_ = 0;
};

/// One burst of `size` messages 0 -> 1, acknowledged once complete.
class Burst final : public sim::Protocol {
 public:
  explicit Burst(int size) : size_(size) {}

  void begin(sim::Context& ctx) override {
    for (Rank r = 2; r < ctx.num_procs(); ++r) ctx.mark_colored(r);
    start_ns_ = ctx.now();
    for (int i = 0; i < size_; ++i) ctx.send(0, 1, sim::tag::kTree, i);
  }

  void on_receive(sim::Context& ctx, Rank me, const sim::Message& msg) override {
    if (me == 1) {
      if (msg.payload == size_ - 1) {
        ctx.send(1, 0, sim::tag::kAck, 0);
        ctx.mark_colored(1);
      }
      return;
    }
    end_ns_ = ctx.now();
    ctx.mark_colored(0);
  }

  void on_sent(sim::Context&, Rank, const sim::Message&) override {}

  double elapsed_ns() const { return static_cast<double>(end_ns_ - start_ns_); }

 private:
  int size_;
  sim::Time start_ns_ = 0;
  sim::Time end_ns_ = 0;
};

}  // namespace

LogPFit fit_logp(Engine& engine, int round_trips, int burst_size) {
  if (engine.live_count() < 2) {
    throw std::invalid_argument("LogP fitting needs at least two live ranks");
  }
  if (round_trips < 1 || burst_size < 2) {
    throw std::invalid_argument("fit_logp needs round_trips >= 1, burst_size >= 2");
  }
  const auto timeout = std::chrono::seconds(30);

  // Warm-up + measurement; medians over a few repetitions tame scheduler
  // noise on oversubscribed hosts.
  auto ping_rtt = [&] {
    std::vector<double> samples;
    for (int i = 0; i < 4; ++i) {
      PingPong probe(round_trips);
      const EpochResult epoch = engine.run_epoch(probe, timeout);
      if (epoch.timed_out || i == 0) continue;
      samples.push_back(probe.mean_rtt_ns());
    }
    if (samples.empty()) throw std::runtime_error("LogP fitting timed out");
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };
  const double rtt = ping_rtt();

  // Burst slope: (T(2k) - T(k)) / k.
  auto burst_time = [&](int size) {
    std::vector<double> samples;
    for (int i = 0; i < 4; ++i) {
      Burst probe(size);
      const EpochResult epoch = engine.run_epoch(probe, timeout);
      if (epoch.timed_out || i == 0) continue;
      samples.push_back(probe.elapsed_ns());
    }
    if (samples.empty()) throw std::runtime_error("LogP fitting timed out");
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };
  const double t1 = burst_time(burst_size);
  const double t2 = burst_time(2 * burst_size);

  LogPFit fit;
  fit.rtt_ns = rtt;
  fit.o_ns = std::max(0.0, (t2 - t1) / static_cast<double>(burst_size));
  fit.L_ns = std::max(0.0, rtt / 2.0 - 2.0 * fit.o_ns);
  fit.l_over_o = fit.o_ns > 0 ? fit.L_ns / fit.o_ns : 0.0;
  return fit;
}

}  // namespace ct::rt

#include "rt/harness.hpp"

namespace ct::rt {

HarnessResult measure_broadcast(Engine& engine, const ProtocolFactory& factory,
                                const HarnessOptions& options) {
  for (std::int64_t i = 0; i < options.warmup; ++i) {
    auto protocol = factory();
    engine.run_epoch(*protocol, options.epoch_timeout);
  }

  HarnessResult result;
  const auto start = Clock::now();
  for (std::int64_t i = 0; i < options.iterations; ++i) {
    auto protocol = factory();
    EpochResult epoch = engine.run_epoch(*protocol, options.epoch_timeout);
    if (result.iterations == 0) result.first = epoch;
    ++result.iterations;
    result.total_messages += epoch.total_messages;
    result.ranks_crashed += epoch.crashed_mid_epoch;
    result.messages_dropped += epoch.messages_dropped;
    result.messages_delayed += epoch.messages_delayed;
    result.messages_duplicated += epoch.messages_duplicated;
    if (epoch.degraded()) {
      if (result.epochs_degraded == 0) result.first_degraded = epoch;
      ++result.epochs_degraded;
    }
    if (epoch.timed_out) {
      ++result.timeouts;
      continue;
    }
    if (epoch.uncolored_live > 0) ++result.incomplete;
    result.latency_us.add(static_cast<double>(epoch.completion_ns) / 1000.0);
    result.messages_per_process.add(static_cast<double>(epoch.total_messages) /
                                    static_cast<double>(engine.num_procs()));
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

StreamHarnessResult measure_stream(Engine& engine, const ProtocolFactory& factory,
                                   const StreamOptions& options) {
  StreamHarnessResult result;
  result.raw = engine.run_stream(factory, options);
  result.wall_seconds = result.raw.wall_seconds;
  const auto live = static_cast<std::int64_t>(engine.live_count());
  for (const StreamEpoch& epoch : result.raw.epochs) {
    ++result.epochs;
    result.total_messages += epoch.messages;
    result.ranks_crashed += epoch.crashed;
    result.deliveries += live - epoch.crashed - epoch.uncolored;
    if (epoch.timed_out) {
      ++result.timeouts;
      continue;
    }
    if (epoch.uncolored > 0) ++result.incomplete;
    result.sojourn_us.add(static_cast<double>(epoch.sojourn_ns()) / 1000.0);
    result.service_us.add(static_cast<double>(epoch.service_ns()) / 1000.0);
  }
  return result;
}

}  // namespace ct::rt

#include "rt/harness.hpp"

namespace ct::rt {

HarnessResult measure_broadcast(Engine& engine, const ProtocolFactory& factory,
                                const HarnessOptions& options) {
  for (std::int64_t i = 0; i < options.warmup; ++i) {
    auto protocol = factory();
    engine.run_epoch(*protocol, options.epoch_timeout);
  }

  HarnessResult result;
  const auto start = Clock::now();
  for (std::int64_t i = 0; i < options.iterations; ++i) {
    auto protocol = factory();
    EpochResult epoch = engine.run_epoch(*protocol, options.epoch_timeout);
    if (result.iterations == 0) result.first = epoch;
    ++result.iterations;
    result.total_messages += epoch.total_messages;
    result.ranks_crashed += epoch.crashed_mid_epoch;
    result.messages_dropped += epoch.messages_dropped;
    result.messages_delayed += epoch.messages_delayed;
    result.messages_duplicated += epoch.messages_duplicated;
    if (epoch.degraded()) {
      if (result.epochs_degraded == 0) result.first_degraded = epoch;
      result.last_degraded = epoch;
      ++result.epochs_degraded;
    }
    if (epoch.timed_out) {
      ++result.timeouts;
      continue;
    }
    if (epoch.uncolored_live > 0) ++result.incomplete;
    result.latency_us.add(static_cast<double>(epoch.completion_ns) / 1000.0);
    result.messages_per_process.add(static_cast<double>(epoch.total_messages) /
                                    static_cast<double>(engine.num_procs()));
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

HarnessResult measure_recovery(Engine& engine,
                               const MembershipProtocolFactory& factory,
                               const HarnessOptions& options) {
  const ChaosPlan& plan = engine.chaos();
  ReplayLog log(options.replay_log_capacity);
  // A rank that crashed and has a revival scheduled. since_epoch is the
  // global epoch index it crashed in (the first epoch it needs replayed);
  // revive_at_ns < 0 means the chaos plan pinned it dead for good.
  struct Down {
    topo::Rank rank;
    std::int64_t since_epoch;
    std::int64_t revive_at_ns;
  };
  std::vector<Down> down;
  std::vector<topo::Rank> pending_dead;  // crashes awaiting the next boundary

  HarnessResult result;
  std::int64_t last_fault_idx = -1;
  std::int64_t last_degraded_idx = -1;
  const auto run_start = Clock::now();
  const auto wall_ns = [&] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                run_start)
        .count();
  };

  const std::int64_t total_epochs = options.warmup + options.iterations;
  Clock::time_point measure_start{};
  for (std::int64_t idx = 0; idx < total_epochs; ++idx) {
    const bool measured = idx >= options.warmup;
    if (measured && idx == options.warmup) measure_start = Clock::now();

    // 1. Collect revivals that have come due on the wall clock.
    std::vector<topo::Rank> revived;
    std::vector<std::int64_t> revived_since;
    {
      const std::int64_t now_ns = wall_ns();
      std::size_t keep = 0;
      for (const Down& d : down) {
        if (d.revive_at_ns >= 0 && now_ns >= d.revive_at_ns) {
          revived.push_back(d.rank);
          revived_since.push_back(d.since_epoch);
        } else {
          down[keep++] = d;
        }
      }
      down.resize(keep);
    }

    // 2. One repair per boundary covers both directions of churn.
    if (!pending_dead.empty() || !revived.empty()) {
      if (engine.repair_membership(pending_dead, revived)) ++result.repairs;
      pending_dead.clear();
      for (std::size_t i = 0; i < revived.size(); ++i) {
        ++result.rejoins;
        // Replay when the log still covers the epoch the rank crashed in;
        // otherwise the outage outran the bounded log and the rank is
        // re-seeded by a fresh-epoch state transfer.
        if (log.covers(revived_since[i])) {
          result.replayed_epochs += idx - revived_since[i];
        } else {
          ++result.state_transfers;
        }
      }
      // A rejoin perturbs the epoch it is admitted into just like a crash
      // does, so it resets the convergence clock.
      if (!revived.empty()) last_fault_idx = idx;
    }

    // 3. Size the protocol to the live membership; remap dense<->global when
    //    the view is compacted.
    const MembershipView& view = engine.membership();
    std::unique_ptr<sim::Protocol> protocol = factory(view);
    std::unique_ptr<sim::Protocol> wrapped;
    sim::Protocol* run = protocol.get();
    if (!view.is_identity()) {
      wrapped = std::make_unique<RemappedProtocol>(std::move(protocol), view);
      run = wrapped.get();
    }

    EpochResult epoch = engine.run_epoch(*run, options.epoch_timeout);

    if (measured) {
      if (result.iterations == 0) result.first = epoch;
      ++result.iterations;
      result.total_messages += epoch.total_messages;
      result.ranks_crashed += epoch.crashed_mid_epoch;
      result.messages_dropped += epoch.messages_dropped;
      result.messages_delayed += epoch.messages_delayed;
      result.messages_duplicated += epoch.messages_duplicated;
      if (epoch.degraded()) {
        if (result.epochs_degraded == 0) result.first_degraded = epoch;
        result.last_degraded = epoch;
        ++result.epochs_degraded;
      }
      if (epoch.timed_out) {
        ++result.timeouts;
      } else {
        if (epoch.uncolored_live > 0) ++result.incomplete;
        result.latency_us.add(static_cast<double>(epoch.completion_ns) / 1000.0);
        result.messages_per_process.add(
            static_cast<double>(epoch.total_messages) /
            static_cast<double>(engine.num_procs()));
      }
    }

    // 4. Record this boundary's deaths and draw their revival schedule from
    //    the chaos plan, keyed by the epoch index the crash was detected in.
    for (topo::Rank r : epoch.crashed_ranks) {
      pending_dead.push_back(r);
      const std::int64_t delay = plan.revive_after_ns(idx, r);
      down.push_back(Down{r, idx, delay >= 0 ? wall_ns() + delay : -1});
    }

    // 5. Convergence bookkeeping over global indices (warmup included: the
    //    fault stream doesn't pause for the measurement window).
    if (!epoch.crashed_ranks.empty()) last_fault_idx = idx;
    if (epoch.degraded()) last_degraded_idx = idx;

    // 6. The sender-side log retains one entry per epoch; quiescence (no
    //    rank down, no death pending) truncates it wholesale.
    log.append(idx, idx);
    if (down.empty() && pending_dead.empty()) log.clear();
  }

  result.wall_seconds =
      result.iterations > 0
          ? std::chrono::duration<double>(Clock::now() - measure_start).count()
          : 0.0;
  result.epochs_to_converge =
      last_degraded_idx > last_fault_idx ? last_degraded_idx - last_fault_idx : 0;
  return result;
}

StreamHarnessResult measure_stream(Engine& engine, const ProtocolFactory& factory,
                                   const StreamOptions& options) {
  StreamHarnessResult result;
  result.raw = engine.run_stream(factory, options);
  result.wall_seconds = result.raw.wall_seconds;
  result.repairs = result.raw.repairs;
  const auto live = static_cast<std::int64_t>(engine.live_count());
  std::int64_t idx = 0;
  std::int64_t last_fault_idx = -1;
  std::int64_t last_degraded_idx = -1;
  for (const StreamEpoch& epoch : result.raw.epochs) {
    ++result.epochs;
    result.total_messages += epoch.messages;
    result.ranks_crashed += epoch.crashed;
    result.rejoins += epoch.rejoined;
    // Ranks already dead at admission never receive the payload, so they
    // don't count toward deliveries (repair-mode streams; zero otherwise).
    result.deliveries += live - epoch.dead_at_start - epoch.crashed - epoch.uncolored;
    if (epoch.crashed > 0 || epoch.rejoined > 0) last_fault_idx = idx;
    if (epoch.timed_out || epoch.uncolored > 0) last_degraded_idx = idx;
    ++idx;
    if (epoch.timed_out) {
      ++result.timeouts;
      continue;
    }
    if (epoch.uncolored > 0) ++result.incomplete;
    result.sojourn_us.add(static_cast<double>(epoch.sojourn_ns()) / 1000.0);
    result.service_us.add(static_cast<double>(epoch.service_ns()) / 1000.0);
  }
  // Stream rejoins always re-seed by fresh-epoch state transfer — there is
  // no replay log across overlapping in-flight epochs (DESIGN.md §4i).
  result.state_transfers = result.rejoins;
  result.epochs_to_converge =
      last_degraded_idx > last_fault_idx ? last_degraded_idx - last_fault_idx : 0;
  return result;
}

}  // namespace ct::rt

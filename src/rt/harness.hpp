#pragma once
// OSU-style broadcast latency harness over the threaded runtime (§4.4: "This
// benchmark repeatedly executes MPI_Bcast and measures its runtime across
// all the processes of the application"). A ProtocolFactory supplies a fresh
// protocol instance per iteration; the harness reports the distribution of
// per-iteration full-completion latencies (max over live ranks), as the
// paper's median-latency plots do.

#include <chrono>

#include "rt/engine.hpp"
#include "support/stats.hpp"

namespace ct::rt {

struct HarnessResult {
  support::Samples latency_us;  ///< per-iteration completion latency, µs
  support::Samples messages_per_process;
  std::int64_t iterations = 0;
  std::int64_t timeouts = 0;
  std::int64_t incomplete = 0;      ///< iterations leaving live ranks uncolored
  std::int64_t total_messages = 0;  ///< summed over all measured iterations
  double wall_seconds = 0.0;        ///< wall clock of the measured loop

  // --- chaos aggregates (zeros when the engine has no ChaosPlan) ---
  std::int64_t epochs_degraded = 0;  ///< iterations with EpochResult::degraded()
  std::int64_t ranks_crashed = 0;    ///< mid-epoch crashes, summed
  std::int64_t messages_dropped = 0;
  std::int64_t messages_delayed = 0;
  std::int64_t messages_duplicated = 0;
  /// First degraded epoch of the run, kept whole so callers can print a
  /// degradation report (crashed ranks, uncolored survivors, gaps) without
  /// re-running; meaningful only when epochs_degraded > 0.
  EpochResult first_degraded;
  /// Last degraded epoch of the run, kept whole alongside the first:
  /// recovery runs show both the injury and the final state before
  /// convergence. Equals first_degraded when only one epoch degraded;
  /// meaningful only when epochs_degraded > 0.
  EpochResult last_degraded;
  /// First measured epoch, kept whole (degraded or not). exp::run reads its
  /// crashed_ranks / uncolored_survivors so one RunSpec execution yields the
  /// same per-rank detail the simulator's keep_per_rank_detail run does.
  EpochResult first;

  // --- recovery aggregates (measure_recovery only; zeros elsewhere) ---
  std::int64_t repairs = 0;          ///< effective membership rebuilds
  std::int64_t rejoins = 0;          ///< revived ranks that rejoined
  std::int64_t replayed_epochs = 0;  ///< missed epochs caught up via the replay log
  std::int64_t state_transfers = 0;  ///< rejoins whose outage outran the log
  /// Epochs between the last injected fault (crash or rejoin) and the last
  /// degraded epoch — the convergence-k of DESIGN.md §4i. 0 = the service
  /// was already clean when the fault stream went quiet.
  std::int64_t epochs_to_converge = 0;

  /// Percentile over clean (non-timed-out) iteration latencies. Single
  /// empty-sample policy for every accessor below: when *every* iteration
  /// timed out (`latency_us` empty, `timeouts` == iterations) this returns
  /// 0.0 — never NaN and never a throwing percentile() call — so tables and
  /// JSON reports stay finite for fully-degraded runs. A 0 µs latency is
  /// unreachable for a real epoch, making the sentinel unambiguous next to
  /// the timeout counters.
  double clean_percentile_us(double q) const {
    return latency_us.empty() ? 0.0 : latency_us.percentile(q);
  }
  double median_us() const { return clean_percentile_us(0.5); }
  double p50_us() const { return median_us(); }
  double p95_us() const { return clean_percentile_us(0.95); }
  double p99_us() const { return clean_percentile_us(0.99); }
  double p999_us() const { return clean_percentile_us(0.999); }

  /// Delivered-send throughput of the measured loop (the scaling-table
  /// metric: epochs overlap setup and drain, so messages/s is fairer across
  /// executors than per-epoch latency alone).
  double messages_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(total_messages) / wall_seconds
                              : 0.0;
  }
};

struct HarnessOptions {
  std::int64_t warmup = 3;
  std::int64_t iterations = 20;
  std::chrono::nanoseconds epoch_timeout = std::chrono::seconds(10);
  /// measure_recovery only: epochs the sender-side replay log retains. A
  /// rejoin whose outage fits the log replays the missed epochs; a longer
  /// outage falls back to a fresh-epoch state transfer (DESIGN.md §4i).
  std::size_t replay_log_capacity = 64;
};

/// Runs `options.iterations` measured epochs (after warmup) of protocols
/// built by `factory` on `engine`.
HarnessResult measure_broadcast(Engine& engine, const ProtocolFactory& factory,
                                const HarnessOptions& options = {});

// --- Recovery harness (PR9) -------------------------------------------------

/// Builds a fresh protocol instance sized to the *live* membership. The
/// factory receives the engine's current MembershipView each epoch; when the
/// view is compacted (num_live < num_global) the harness wraps the returned
/// protocol in a RemappedProtocol so it runs over dense ranks [0, num_live)
/// while the engine keeps addressing stable global ranks.
using MembershipProtocolFactory =
    std::function<std::unique_ptr<sim::Protocol>(const MembershipView& view)>;

/// Self-healing variant of measure_broadcast for engines constructed with
/// EngineOptions::repair. At every epoch boundary the harness consumes the
/// previous epoch's degradation report, schedules revivals from the engine's
/// ChaosPlan (revive_after_ns keyed by the epoch index the crash was
/// detected in), and calls Engine::repair_membership so the next epoch runs
/// over survivors only. Rejoins are served from a bounded sender-side replay
/// log when it still covers the outage, and counted as state transfers
/// otherwise; the log is truncated at quiescence (no rank down or pending).
/// Recovery counters (repairs / rejoins / replayed_epochs / state_transfers)
/// span the whole run including warmup — a recovery soak's faults don't
/// pause for the measurement window — while latency aggregates keep the
/// usual measured-only semantics. epochs_to_converge is the convergence-k:
/// epochs between the last injected fault (crash or rejoin) and the last
/// degraded epoch.
HarnessResult measure_recovery(Engine& engine,
                               const MembershipProtocolFactory& factory,
                               const HarnessOptions& options = {});

// --- Streaming harness (PR8) -----------------------------------------------

/// Aggregate view of one Engine::run_stream execution. Latencies are
/// *sojourn* times (retire − scheduled): in the closed loop they equal
/// service times; in the open loop they additionally surface queueing
/// delay, which is the point of the open-loop mode. The empty-sample
/// policy matches HarnessResult: percentiles over clean epochs only, 0.0
/// when every epoch timed out.
struct StreamHarnessResult {
  StreamResult raw;             ///< per-epoch detail, admission order
  support::Samples sojourn_us;  ///< clean (non-timed-out) epochs only
  support::Samples service_us;  ///< retire − begin, clean epochs only
  std::int64_t epochs = 0;
  std::int64_t timeouts = 0;
  std::int64_t incomplete = 0;  ///< clean epochs leaving survivors uncolored
  std::int64_t ranks_crashed = 0;
  std::int64_t total_messages = 0;
  std::int64_t deliveries = 0;  ///< colored live ranks, summed over epochs
  double wall_seconds = 0.0;

  // --- recovery aggregates (repair-mode streams only; zeros otherwise) ---
  std::int64_t repairs = 0;          ///< membership-generation bumps
  std::int64_t rejoins = 0;          ///< revived ranks readmitted at a boundary
  std::int64_t state_transfers = 0;  ///< stream rejoins are always fresh-epoch
  /// Convergence-k over the admission-ordered epoch sequence: epochs between
  /// the last fault epoch (crash or rejoin) and the last degraded epoch.
  std::int64_t epochs_to_converge = 0;

  double clean_percentile_us(double q) const {
    return sojourn_us.empty() ? 0.0 : sojourn_us.percentile(q);
  }
  double p50_us() const { return clean_percentile_us(0.5); }
  double p99_us() const { return clean_percentile_us(0.99); }
  double p999_us() const { return clean_percentile_us(0.999); }

  /// Sustained payload deliveries per second: every live rank colored in a
  /// retired epoch counts once — the stream-throughput headline metric.
  double deliveries_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(deliveries) / wall_seconds : 0.0;
  }
  /// Completed-epoch rate, for offered-vs-achieved comparison against
  /// StreamOptions::rate.
  double achieved_rate() const {
    return wall_seconds > 0.0 ? static_cast<double>(epochs) / wall_seconds : 0.0;
  }
};

/// Runs one stream on `engine` (sharded backend only) and aggregates it.
StreamHarnessResult measure_stream(Engine& engine, const ProtocolFactory& factory,
                                   const StreamOptions& options);

}  // namespace ct::rt

#pragma once
// OSU-style broadcast latency harness over the threaded runtime (§4.4: "This
// benchmark repeatedly executes MPI_Bcast and measures its runtime across
// all the processes of the application"). A ProtocolFactory supplies a fresh
// protocol instance per iteration; the harness reports the distribution of
// per-iteration full-completion latencies (max over live ranks), as the
// paper's median-latency plots do.

#include <chrono>

#include "rt/engine.hpp"
#include "support/stats.hpp"

namespace ct::rt {

struct HarnessResult {
  support::Samples latency_us;  ///< per-iteration completion latency, µs
  support::Samples messages_per_process;
  std::int64_t iterations = 0;
  std::int64_t timeouts = 0;
  std::int64_t incomplete = 0;      ///< iterations leaving live ranks uncolored
  std::int64_t total_messages = 0;  ///< summed over all measured iterations
  double wall_seconds = 0.0;        ///< wall clock of the measured loop

  // --- chaos aggregates (zeros when the engine has no ChaosPlan) ---
  std::int64_t epochs_degraded = 0;  ///< iterations with EpochResult::degraded()
  std::int64_t ranks_crashed = 0;    ///< mid-epoch crashes, summed
  std::int64_t messages_dropped = 0;
  std::int64_t messages_delayed = 0;
  std::int64_t messages_duplicated = 0;
  /// First degraded epoch of the run, kept whole so callers can print a
  /// degradation report (crashed ranks, uncolored survivors, gaps) without
  /// re-running; meaningful only when epochs_degraded > 0.
  EpochResult first_degraded;
  /// First measured epoch, kept whole (degraded or not). exp::run reads its
  /// crashed_ranks / uncolored_survivors so one RunSpec execution yields the
  /// same per-rank detail the simulator's keep_per_rank_detail run does.
  EpochResult first;

  /// Percentile over clean (non-timed-out) iteration latencies. Single
  /// empty-sample policy for every accessor below: when *every* iteration
  /// timed out (`latency_us` empty, `timeouts` == iterations) this returns
  /// 0.0 — never NaN and never a throwing percentile() call — so tables and
  /// JSON reports stay finite for fully-degraded runs. A 0 µs latency is
  /// unreachable for a real epoch, making the sentinel unambiguous next to
  /// the timeout counters.
  double clean_percentile_us(double q) const {
    return latency_us.empty() ? 0.0 : latency_us.percentile(q);
  }
  double median_us() const { return clean_percentile_us(0.5); }
  double p50_us() const { return median_us(); }
  double p95_us() const { return clean_percentile_us(0.95); }
  double p99_us() const { return clean_percentile_us(0.99); }
  double p999_us() const { return clean_percentile_us(0.999); }

  /// Delivered-send throughput of the measured loop (the scaling-table
  /// metric: epochs overlap setup and drain, so messages/s is fairer across
  /// executors than per-epoch latency alone).
  double messages_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(total_messages) / wall_seconds
                              : 0.0;
  }
};

struct HarnessOptions {
  std::int64_t warmup = 3;
  std::int64_t iterations = 20;
  std::chrono::nanoseconds epoch_timeout = std::chrono::seconds(10);
};

/// Runs `options.iterations` measured epochs (after warmup) of protocols
/// built by `factory` on `engine`.
HarnessResult measure_broadcast(Engine& engine, const ProtocolFactory& factory,
                                const HarnessOptions& options = {});

// --- Streaming harness (PR8) -----------------------------------------------

/// Aggregate view of one Engine::run_stream execution. Latencies are
/// *sojourn* times (retire − scheduled): in the closed loop they equal
/// service times; in the open loop they additionally surface queueing
/// delay, which is the point of the open-loop mode. The empty-sample
/// policy matches HarnessResult: percentiles over clean epochs only, 0.0
/// when every epoch timed out.
struct StreamHarnessResult {
  StreamResult raw;             ///< per-epoch detail, admission order
  support::Samples sojourn_us;  ///< clean (non-timed-out) epochs only
  support::Samples service_us;  ///< retire − begin, clean epochs only
  std::int64_t epochs = 0;
  std::int64_t timeouts = 0;
  std::int64_t incomplete = 0;  ///< clean epochs leaving survivors uncolored
  std::int64_t ranks_crashed = 0;
  std::int64_t total_messages = 0;
  std::int64_t deliveries = 0;  ///< colored live ranks, summed over epochs
  double wall_seconds = 0.0;

  double clean_percentile_us(double q) const {
    return sojourn_us.empty() ? 0.0 : sojourn_us.percentile(q);
  }
  double p50_us() const { return clean_percentile_us(0.5); }
  double p99_us() const { return clean_percentile_us(0.99); }
  double p999_us() const { return clean_percentile_us(0.999); }

  /// Sustained payload deliveries per second: every live rank colored in a
  /// retired epoch counts once — the stream-throughput headline metric.
  double deliveries_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(deliveries) / wall_seconds : 0.0;
  }
  /// Completed-epoch rate, for offered-vs-achieved comparison against
  /// StreamOptions::rate.
  double achieved_rate() const {
    return wall_seconds > 0.0 ? static_cast<double>(epochs) / wall_seconds : 0.0;
  }
};

/// Runs one stream on `engine` (sharded backend only) and aggregates it.
StreamHarnessResult measure_stream(Engine& engine, const ProtocolFactory& factory,
                                   const StreamOptions& options);

}  // namespace ct::rt

#include "rt/engine.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <stdexcept>
#include <thread>

#include "rt/engine_impl.hpp"
#include "rt/mailbox.hpp"

namespace ct::rt {

using topo::Rank;

namespace {
constexpr std::chrono::microseconds kIdleWait{50};
}

namespace detail {

// ---------------------------------------------------------------------------
// Legacy executor: one OS thread per live rank, one Mailbox per rank. Kept
// behind EngineOptions::threading for A/B comparison against the sharded
// scheduler; see DESIGN.md §4c for the measured crossover.
// ---------------------------------------------------------------------------
class ThreadPerRankImpl final : public Engine::Impl {
 public:
  ThreadPerRankImpl(Rank num_procs, const std::vector<char>& failed, Rank live_count)
      : num_procs_(num_procs),
        failed_(failed),
        live_count_(live_count),
        mailboxes_(static_cast<std::size_t>(num_procs)),
        outbox_(static_cast<std::size_t>(num_procs)),
        timers_(static_cast<std::size_t>(num_procs)),
        colored_(static_cast<std::size_t>(num_procs), 0),
        sends_(static_cast<std::size_t>(num_procs), 0),
        rank_data_(static_cast<std::size_t>(num_procs), 0),
        completion_ns_(static_cast<std::size_t>(num_procs), -1),
        context_(*this),
        epoch_barrier_(static_cast<std::ptrdiff_t>(live_count) + 1) {
    threads_.reserve(static_cast<std::size_t>(live_count_));
    for (Rank r = 0; r < num_procs_; ++r) {
      if (!failed_[static_cast<std::size_t>(r)]) {
        threads_.emplace_back([this, r] { worker_main(r); });
      }
    }
  }

  ~ThreadPerRankImpl() override {
    shutdown_.store(true, std::memory_order_release);
    epoch_barrier_.arrive_and_wait();  // release workers into the shutdown check
    threads_.clear();                  // join
  }

  EpochResult run_epoch(sim::Protocol& protocol, std::int64_t timeout_ns) override {
    reset_epoch(&protocol, timeout_ns);
    protocol.begin(context_);
    start_clock();
    epoch_barrier_.arrive_and_wait();  // epoch start
    epoch_barrier_.arrive_and_wait();  // epoch end
    return collect();
  }

  std::size_t worker_threads() const noexcept override { return threads_.size(); }

 private:
  // The sim::Context facade handed to protocol callbacks.
  class Context final : public sim::Context {
   public:
    explicit Context(ThreadPerRankImpl& impl) : impl_(impl) {}

    sim::Time now() const override { return impl_.now(); }
    Rank num_procs() const override { return impl_.num_procs_; }

    void send(Rank from, Rank to, sim::Tag tag, std::int64_t payload) override {
      // Queued on the sender's outbox; the owning worker delivers it and
      // then receives the on_sent callback. Delivery to failed ranks is
      // dropped there, indistinguishable from success for the protocol.
      const auto slot = static_cast<std::size_t>(from);
      impl_.outbox_[slot].push_back(
          Envelope{sim::Message{from, to, tag, payload, impl_.rank_data_[slot]},
                   impl_.epoch_});
    }

    void set_rank_data(Rank r, std::int64_t data) override {
      impl_.rank_data_[static_cast<std::size_t>(r)] = data;
    }
    std::int64_t rank_data(Rank r) const override {
      return impl_.rank_data_[static_cast<std::size_t>(r)];
    }
    void set_timer(Rank on, sim::Time when, std::int64_t id) override {
      impl_.timers_[static_cast<std::size_t>(on)].push_back({when, id, false});
    }
    void mark_colored(Rank r) override {
      impl_.colored_[static_cast<std::size_t>(r)] = 1;
    }
    bool is_colored(Rank r) const override {
      return impl_.colored_[static_cast<std::size_t>(r)] != 0;
    }
    void note_correction_start() override {
      impl_.correction_started_.store(true, std::memory_order_relaxed);
    }

   private:
    ThreadPerRankImpl& impl_;
  };

  struct Timer {
    sim::Time when;
    std::int64_t id;
    bool fired = false;
  };

  sim::Time now() const {
    if (!started_.load(std::memory_order_acquire)) return 0;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                epoch_start_)
        .count();
  }

  void reset_epoch(sim::Protocol* protocol, std::int64_t timeout_ns) {
    ++epoch_;
    protocol_ = protocol;
    timeout_ns_ = timeout_ns;
    completed_count_.store(0, std::memory_order_relaxed);
    epoch_done_.store(false, std::memory_order_relaxed);
    timed_out_.store(false, std::memory_order_relaxed);
    correction_started_.store(false, std::memory_order_relaxed);
    started_.store(false, std::memory_order_release);
    for (Rank r = 0; r < num_procs_; ++r) {
      const auto slot = static_cast<std::size_t>(r);
      outbox_[slot].clear();
      timers_[slot].clear();
      mailboxes_[slot].clear();
      colored_[slot] = 0;
      sends_[slot] = 0;
      rank_data_[slot] = 0;
      completion_ns_[slot] = -1;
    }
  }

  void start_clock() {
    epoch_start_ = Clock::now();
    started_.store(true, std::memory_order_release);
  }

  EpochResult collect() const {
    EpochResult result;
    result.timed_out = timed_out_.load(std::memory_order_relaxed);
    for (Rank r = 0; r < num_procs_; ++r) {
      const auto slot = static_cast<std::size_t>(r);
      if (failed_[slot]) continue;
      result.total_messages += sends_[slot];
      result.rank_completion_ns.push_back(completion_ns_[slot]);
      result.completion_ns = std::max(result.completion_ns, completion_ns_[slot]);
      if (!colored_[slot]) ++result.uncolored_live;
    }
    return result;
  }

  void worker_main(Rank me) {
    for (;;) {
      epoch_barrier_.arrive_and_wait();  // epoch start (or shutdown)
      if (shutdown_.load(std::memory_order_acquire)) return;
      worker_epoch(me);
      epoch_barrier_.arrive_and_wait();  // epoch end
    }
  }

  void worker_epoch(Rank me) {
    const auto slot = static_cast<std::size_t>(me);
    auto& outbox = outbox_[slot];
    std::size_t outbox_head = 0;
    auto& timers = timers_[slot];
    bool completed = false;
    Envelope envelope;

    auto maybe_complete = [&] {
      if (completed || !colored_[slot] || outbox_head < outbox.size()) return;
      completed = true;
      completion_ns_[slot] = now();
      if (completed_count_.fetch_add(1, std::memory_order_acq_rel) + 1 == live_count_) {
        epoch_done_.store(true, std::memory_order_release);
        for (auto& mailbox : mailboxes_) mailbox.kick();
      }
    };

    while (!epoch_done_.load(std::memory_order_acquire)) {
      bool progress = false;

      if (outbox_head < outbox.size()) {
        const Envelope out = outbox[outbox_head++];
        if (outbox_head == outbox.size()) {
          outbox.clear();
          outbox_head = 0;
        }
        ++sends_[slot];
        if (!failed_[static_cast<std::size_t>(out.msg.dst)]) {
          mailboxes_[static_cast<std::size_t>(out.msg.dst)].push(out);
        }
        protocol_->on_sent(context_, me, out.msg);
        progress = true;
      } else if (mailboxes_[slot].try_pop(envelope)) {
        if (envelope.epoch == epoch_) {
          protocol_->on_receive(context_, me, envelope.msg);
        }
        progress = true;
      } else if (fire_due_timer(me, timers)) {
        progress = true;
      }

      maybe_complete();

      if (!progress && !epoch_done_.load(std::memory_order_acquire)) {
        if (!completed && timeout_ns_ > 0 && now() > timeout_ns_) {
          // Give up on this epoch; count ourselves completed so the run can
          // finish and be reported as timed out.
          timed_out_.store(true, std::memory_order_relaxed);
          completed = true;
          completion_ns_[slot] = now();
          if (completed_count_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
              live_count_) {
            epoch_done_.store(true, std::memory_order_release);
            for (auto& mailbox : mailboxes_) mailbox.kick();
          }
          continue;
        }
        if (mailboxes_[slot].pop_for(envelope, kIdleWait)) {
          if (envelope.epoch == epoch_) {
            protocol_->on_receive(context_, me, envelope.msg);
          }
          maybe_complete();
        }
      }
    }
  }

  bool fire_due_timer(Rank me, std::vector<Timer>& timers) {
    const sim::Time current = now();
    for (auto& timer : timers) {
      if (!timer.fired && timer.when <= current) {
        timer.fired = true;
        protocol_->on_timer(context_, me, timer.id);
        return true;
      }
    }
    return false;
  }

  Rank num_procs_;
  const std::vector<char>& failed_;
  Rank live_count_;
  std::vector<Mailbox> mailboxes_;
  std::vector<std::vector<Envelope>> outbox_;
  std::vector<std::vector<Timer>> timers_;
  std::vector<char> colored_;
  std::vector<std::int64_t> sends_;
  std::vector<std::int64_t> rank_data_;
  std::vector<std::int64_t> completion_ns_;

  sim::Protocol* protocol_ = nullptr;
  std::int64_t epoch_ = 0;
  std::int64_t timeout_ns_ = 0;
  Clock::time_point epoch_start_{};
  std::atomic<bool> started_{false};
  std::atomic<bool> epoch_done_{false};
  std::atomic<bool> timed_out_{false};
  std::atomic<bool> correction_started_{false};
  std::atomic<std::int32_t> completed_count_{0};

  Context context_;
  std::barrier<> epoch_barrier_;  // live ranks + coordinator, twice per epoch
  std::atomic<bool> shutdown_{false};
  std::vector<std::jthread> threads_;
};

std::unique_ptr<Engine::Impl> make_thread_per_rank(Rank num_procs,
                                                   const std::vector<char>& failed,
                                                   Rank live_count) {
  return std::make_unique<ThreadPerRankImpl>(num_procs, failed, live_count);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Engine facade: validation + backend selection.
// ---------------------------------------------------------------------------

Engine::Engine(Rank num_procs, std::vector<char> failed, EngineOptions options)
    : num_procs_(num_procs), failed_(std::move(failed)), options_(options) {
  if (num_procs < 1) throw std::invalid_argument("engine needs at least one rank");
  if (static_cast<Rank>(failed_.size()) != num_procs) {
    throw std::invalid_argument("failed flag vector must have P entries");
  }
  if (failed_[0]) throw std::invalid_argument("rank 0 (the root) cannot fail");
  live_count_ = 0;
  for (char f : failed_) live_count_ += (f == 0);
  impl_ = options_.threading == Threading::kThreadPerRank
              ? detail::make_thread_per_rank(num_procs_, failed_, live_count_)
              : detail::make_sharded(num_procs_, failed_, live_count_, options_);
}

Engine::~Engine() = default;

std::size_t Engine::worker_threads() const noexcept { return impl_->worker_threads(); }

EpochResult Engine::run_epoch(sim::Protocol& protocol, std::chrono::nanoseconds timeout) {
  return impl_->run_epoch(protocol, timeout.count());
}

}  // namespace ct::rt

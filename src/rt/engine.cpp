#include "rt/engine.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <stdexcept>
#include <thread>

#include "rt/engine_impl.hpp"
#include "rt/mailbox.hpp"

namespace ct::rt {

using topo::Rank;

namespace {
constexpr std::chrono::microseconds kIdleWait{50};
}

namespace detail {

// ---------------------------------------------------------------------------
// Legacy executor: one OS thread per live rank, one Mailbox per rank. Kept
// behind EngineOptions::threading for A/B comparison against the sharded
// scheduler; see DESIGN.md §4c for the measured crossover.
// ---------------------------------------------------------------------------
class ThreadPerRankImpl final : public Engine::Impl {
 public:
  ThreadPerRankImpl(Rank num_procs, const std::vector<char>& failed, Rank live_count)
      : num_procs_(num_procs),
        failed_(failed),
        dead_(failed.begin(), failed.end()),
        live_count_(live_count),
        mailboxes_(static_cast<std::size_t>(num_procs)),
        outbox_(static_cast<std::size_t>(num_procs)),
        timers_(static_cast<std::size_t>(num_procs)),
        colored_(static_cast<std::size_t>(num_procs), 0),
        sends_(static_cast<std::size_t>(num_procs), 0),
        rank_data_(static_cast<std::size_t>(num_procs), 0),
        completion_ns_(static_cast<std::size_t>(num_procs), -1),
        crash_at_ns_(static_cast<std::size_t>(num_procs), -1),
        crash_budget_(static_cast<std::size_t>(num_procs), -1),
        crashed_(static_cast<std::size_t>(num_procs), 0),
        dropped_(static_cast<std::size_t>(num_procs), 0),
        delayed_stat_(static_cast<std::size_t>(num_procs), 0),
        duped_(static_cast<std::size_t>(num_procs), 0),
        context_(*this),
        epoch_barrier_(static_cast<std::ptrdiff_t>(live_count) + 1) {
    threads_.reserve(static_cast<std::size_t>(live_count_));
    for (Rank r = 0; r < num_procs_; ++r) {
      if (!failed_[static_cast<std::size_t>(r)]) {
        threads_.emplace_back([this, r] { worker_main(r); });
      }
    }
  }

  ~ThreadPerRankImpl() override {
    shutdown_.store(true, std::memory_order_release);
    epoch_barrier_.arrive_and_wait();  // release workers into the shutdown check
    threads_.clear();                  // join
  }

  EpochResult run_epoch(sim::Protocol& protocol, std::int64_t timeout_ns) override {
    reset_epoch(&protocol, timeout_ns);
    protocol.begin(context_);
    start_clock();
    epoch_barrier_.arrive_and_wait();  // epoch start
    epoch_barrier_.arrive_and_wait();  // epoch end
    return collect();
  }

  std::size_t worker_threads() const noexcept override { return threads_.size(); }

  void set_chaos(const ChaosPlan* plan) override { chaos_ = plan; }

  /// Repair pass (DESIGN.md §4i). Runs between epochs while every worker is
  /// parked at the epoch barrier, so the plain-member writes are published
  /// by the barrier's synchronization. A persistently-dead rank's thread
  /// stays in the barrier protocol but skips its epochs; reviving a rank
  /// simply clears its dead flag and the thread resumes stepping.
  void set_membership(const std::vector<char>& dead, Rank live_count,
                      std::int32_t generation) override {
    dead_.assign(dead.begin(), dead.end());
    live_count_ = live_count;
    generation_ = generation;
  }

 private:
  // The sim::Context facade handed to protocol callbacks.
  class Context final : public sim::Context {
   public:
    explicit Context(ThreadPerRankImpl& impl) : impl_(impl) {}

    sim::Time now() const override { return impl_.now(); }
    Rank num_procs() const override { return impl_.num_procs_; }

    void send(Rank from, Rank to, sim::Tag tag, std::int64_t payload) override {
      // Queued on the sender's outbox; the owning worker delivers it and
      // then receives the on_sent callback. Delivery to failed ranks is
      // dropped there, indistinguishable from success for the protocol.
      const auto slot = static_cast<std::size_t>(from);
      impl_.outbox_[slot].push_back(Envelope{
          sim::Message{.src = from, .dst = to, .tag = tag, .payload = payload,
                       .data = impl_.rank_data_[slot]},
          impl_.tag_});
    }

    void set_rank_data(Rank r, std::int64_t data) override {
      impl_.rank_data_[static_cast<std::size_t>(r)] = data;
    }
    std::int64_t rank_data(Rank r) const override {
      return impl_.rank_data_[static_cast<std::size_t>(r)];
    }
    void set_timer(Rank on, sim::Time when, std::int64_t id) override {
      impl_.timers_[static_cast<std::size_t>(on)].push_back({when, id, false});
    }
    void mark_colored(Rank r) override {
      impl_.colored_[static_cast<std::size_t>(r)] = 1;
    }
    bool is_colored(Rank r) const override {
      return impl_.colored_[static_cast<std::size_t>(r)] != 0;
    }
    void note_correction_start() override {
      impl_.correction_started_.store(true, std::memory_order_relaxed);
    }

   private:
    ThreadPerRankImpl& impl_;
  };

  struct Timer {
    sim::Time when;
    std::int64_t id;
    bool fired = false;
  };

  /// An envelope held back by the chaos layer until release_ns. Worker-
  /// local: in-flight messages outlive their sender's crash.
  struct Delayed {
    Envelope envelope;
    std::int64_t release_ns;
  };

  sim::Time now() const {
    if (!started_.load(std::memory_order_acquire)) return 0;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                epoch_start_)
        .count();
  }

  void reset_epoch(sim::Protocol* protocol, std::int64_t timeout_ns) {
    ++epoch_;
    tag_ = Envelope::make_tag(epoch_, generation_);
    protocol_ = protocol;
    timeout_ns_ = timeout_ns;
    completed_count_.store(0, std::memory_order_relaxed);
    epoch_done_.store(false, std::memory_order_relaxed);
    timed_out_.store(false, std::memory_order_relaxed);
    correction_started_.store(false, std::memory_order_relaxed);
    started_.store(false, std::memory_order_release);
    crash_active_ = chaos_ != nullptr && chaos_->crashes_enabled();
    link_active_ = chaos_ != nullptr && chaos_->links_enabled();
    for (Rank r = 0; r < num_procs_; ++r) {
      const auto slot = static_cast<std::size_t>(r);
      outbox_[slot].clear();
      timers_[slot].clear();
      mailboxes_[slot].clear();
      colored_[slot] = 0;
      sends_[slot] = 0;
      rank_data_[slot] = 0;
      completion_ns_[slot] = -1;
      if (crash_active_) {
        crashed_[slot] = 0;
        crash_at_ns_[slot] = dead_[slot] ? -1 : chaos_->crash_ns(epoch_, r);
        crash_budget_[slot] = dead_[slot] ? -1 : chaos_->crash_send_budget(r);
      }
      if (link_active_) {
        dropped_[slot] = 0;
        delayed_stat_[slot] = 0;
        duped_[slot] = 0;
      }
    }
  }

  void start_clock() {
    epoch_start_ = Clock::now();
    started_.store(true, std::memory_order_release);
  }

  EpochResult collect() const {
    EpochResult result;
    result.timed_out = timed_out_.load(std::memory_order_relaxed);
    result.rank_state.resize(static_cast<std::size_t>(num_procs_));
    for (Rank r = 0; r < num_procs_; ++r) {
      const auto slot = static_cast<std::size_t>(r);
      if (dead_[slot]) {
        // Failed at construction, or persistently dead under repair mode —
        // either way the rank held no execution slot this epoch, so it is
        // not a survivor and cannot degrade the epoch.
        result.rank_state[slot] = RankEnd::kFailedAtStart;
        continue;
      }
      result.total_messages += sends_[slot];
      result.rank_completion_ns.push_back(completion_ns_[slot]);
      result.completion_ns = std::max(result.completion_ns, completion_ns_[slot]);
      if (crash_active_ && crashed_[slot]) {
        result.rank_state[slot] = RankEnd::kCrashed;
        result.crashed_ranks.push_back(r);
        ++result.crashed_mid_epoch;
        continue;
      }
      if (!colored_[slot]) {
        result.rank_state[slot] = RankEnd::kUncolored;
        result.uncolored_survivors.push_back(r);
        ++result.uncolored_live;
      } else {
        result.rank_state[slot] = RankEnd::kColored;
      }
      for (const Timer& timer : timers_[slot]) {
        if (!timer.fired) ++result.timers_pending;
      }
    }
    if (link_active_) {
      for (Rank r = 0; r < num_procs_; ++r) {
        const auto slot = static_cast<std::size_t>(r);
        result.messages_dropped += dropped_[slot];
        result.messages_delayed += delayed_stat_[slot];
        result.messages_duplicated += duped_[slot];
      }
    }
    if (result.degraded()) {
      // Survivor coloring on the correction ring: crashed and failed ranks
      // are holes, exactly as the paper's gap analysis treats dead ranks.
      std::vector<char> survivor_colored(static_cast<std::size_t>(num_procs_), 0);
      bool any_colored = false;
      for (Rank r = 0; r < num_procs_; ++r) {
        const auto slot = static_cast<std::size_t>(r);
        if (result.rank_state[slot] == RankEnd::kColored) {
          survivor_colored[slot] = 1;
          any_colored = true;
        }
      }
      if (any_colored) result.coloring_gaps = topo::analyze_gaps(survivor_colored);
    }
    return result;
  }

  void worker_main(Rank me) {
    for (;;) {
      epoch_barrier_.arrive_and_wait();  // epoch start (or shutdown)
      if (shutdown_.load(std::memory_order_acquire)) return;
      worker_epoch(me);
      epoch_barrier_.arrive_and_wait();  // epoch end
    }
  }

  void worker_epoch(Rank me) {
    const auto slot = static_cast<std::size_t>(me);
    // Persistently dead under repair mode: no execution slot this epoch.
    // The thread keeps the barrier protocol (worker_main arrives at the end
    // barrier right away) and resumes stepping the epoch after a revive
    // clears the flag. Mail addressed here is dropped at delivery; anything
    // already queued is cleared by the next reset_epoch and would be
    // rejected by the tag filter regardless.
    if (dead_[slot]) return;
    auto& outbox = outbox_[slot];
    std::size_t outbox_head = 0;
    auto& timers = timers_[slot];
    bool completed = false;
    bool crashed = false;
    std::vector<Delayed> delayed;  // chaos-delayed sends, awaiting release
    Envelope envelope;
    std::uint32_t spin = 0;

    // Counts this rank toward the completion countdown exactly once.
    auto credit_completion = [&](bool record_time) {
      completed = true;
      if (record_time) completion_ns_[slot] = now();
      if (completed_count_.fetch_add(1, std::memory_order_acq_rel) + 1 == live_count_) {
        epoch_done_.store(true, std::memory_order_release);
        for (auto& mailbox : mailboxes_) mailbox.kick();
      }
    };

    auto maybe_complete = [&] {
      if (completed || !colored_[slot] || outbox_head < outbox.size()) return;
      credit_completion(true);
    };

    auto release_due_delayed = [&]() -> bool {
      if (delayed.empty()) return false;
      const sim::Time current = now();
      bool any = false;
      std::size_t keep = 0;
      for (Delayed& d : delayed) {
        if (d.release_ns <= current) {
          any = true;
          const auto dst = static_cast<std::size_t>(d.envelope.msg.dst);
          if (!dead_[dst]) mailboxes_[dst].push(d.envelope);
        } else {
          delayed[keep++] = d;
        }
      }
      delayed.resize(keep);
      return any;
    };

    // Mid-epoch death: pending work vanishes, the countdown is credited so
    // no surviving peer waits on us, and the thread stays in the epoch/
    // barrier protocol as a silent corpse until the epoch ends.
    auto crash_self = [&] {
      crashed = true;
      crashed_[slot] = 1;
      outbox.clear();
      outbox_head = 0;
      timers.clear();
      if (!completed) credit_completion(false);  // completion_ns stays -1
    };

    while (!epoch_done_.load(std::memory_order_acquire)) {
      if (crashed) {
        // Swallow incoming mail (fail-stop: no replies, no feedback) but
        // keep already-sent delayed messages moving — they are in flight.
        release_due_delayed();
        static_cast<void>(mailboxes_[slot].pop_for(envelope, kIdleWait));
        continue;
      }
      if (crash_active_ && crash_at_ns_[slot] >= 0 && now() >= crash_at_ns_[slot]) {
        crash_self();
        continue;
      }

      bool progress = false;

      if (outbox_head < outbox.size()) {
        if (crash_active_ && crash_budget_[slot] >= 0 &&
            sends_[slot] >= crash_budget_[slot]) {
          crash_self();  // the unsent outbox tail dies with the rank
          continue;
        }
        const Envelope out = outbox[outbox_head++];
        if (outbox_head == outbox.size()) {
          outbox.clear();
          outbox_head = 0;
        }
        ++sends_[slot];
        if (link_active_) {
          const ChaosPlan::Verdict verdict =
              chaos_->classify(epoch_, me, sends_[slot]);
          if (verdict.drop) {
            ++dropped_[slot];
          } else if (verdict.delay_ns > 0) {
            ++delayed_stat_[slot];
            delayed.push_back(Delayed{out, now() + verdict.delay_ns});
          } else {
            const auto dst = static_cast<std::size_t>(out.msg.dst);
            if (!dead_[dst]) {
              mailboxes_[dst].push(out);
              if (verdict.duplicate) {
                ++duped_[slot];
                mailboxes_[dst].push(out);
              }
            }
          }
        } else if (!dead_[static_cast<std::size_t>(out.msg.dst)]) {
          mailboxes_[static_cast<std::size_t>(out.msg.dst)].push(out);
        }
        protocol_->on_sent(context_, me, out.msg);
        progress = true;
      } else if (mailboxes_[slot].try_pop(envelope)) {
        if (envelope.tag() == tag_) {
          protocol_->on_receive(context_, me, envelope.msg);
        }
        progress = true;
      } else if (link_active_ && release_due_delayed()) {
        progress = true;
      } else if (fire_due_timer(me, timers)) {
        progress = true;
      }

      maybe_complete();

      // The idle branch below is the only place the original loop checked
      // the deadline — a protocol that floods this rank with traffic never
      // goes idle and could run past it unboundedly. Check on a coarse
      // stride regardless of progress so the deadline is a hard bound.
      if (!completed && timeout_ns_ > 0 && (++spin & 0xFFu) == 0 &&
          now() > timeout_ns_) {
        timed_out_.store(true, std::memory_order_relaxed);
        credit_completion(true);
        continue;
      }

      if (!progress && !epoch_done_.load(std::memory_order_acquire)) {
        if (!completed && timeout_ns_ > 0 && now() > timeout_ns_) {
          // Give up on this epoch; count ourselves completed so the run can
          // finish and be reported as timed out.
          timed_out_.store(true, std::memory_order_relaxed);
          credit_completion(true);
          continue;
        }
        if (mailboxes_[slot].pop_for(envelope, kIdleWait)) {
          if (envelope.tag() == tag_) {
            protocol_->on_receive(context_, me, envelope.msg);
          }
          maybe_complete();
        }
      }
    }
  }

  bool fire_due_timer(Rank me, std::vector<Timer>& timers) {
    const sim::Time current = now();
    for (auto& timer : timers) {
      if (!timer.fired && timer.when <= current) {
        timer.fired = true;
        protocol_->on_timer(context_, me, timer.id);
        return true;
      }
    }
    return false;
  }

  Rank num_procs_;
  const std::vector<char>& failed_;
  /// Current persistent dead set: failed_ plus repair-mode crashes minus
  /// revivals (== failed_ when repair is off). Written only between epochs
  /// (set_membership), read freely by workers — the epoch barrier publishes
  /// the writes.
  std::vector<char> dead_;
  Rank live_count_;
  std::vector<Mailbox> mailboxes_;
  std::vector<std::vector<Envelope>> outbox_;
  std::vector<std::vector<Timer>> timers_;
  std::vector<char> colored_;
  std::vector<std::int64_t> sends_;
  std::vector<std::int64_t> rank_data_;
  std::vector<std::int64_t> completion_ns_;

  // Chaos state; per-rank entries are touched only by the owning worker
  // during an epoch, the bools are latched in reset_epoch before the
  // start barrier.
  const ChaosPlan* chaos_ = nullptr;
  bool crash_active_ = false;
  bool link_active_ = false;
  std::vector<std::int64_t> crash_at_ns_;
  std::vector<std::int64_t> crash_budget_;
  std::vector<char> crashed_;
  std::vector<std::int64_t> dropped_;
  std::vector<std::int64_t> delayed_stat_;
  std::vector<std::int64_t> duped_;

  sim::Protocol* protocol_ = nullptr;
  std::int64_t epoch_ = 0;
  std::int32_t generation_ = 0;
  std::int32_t tag_ = 0;  ///< Envelope::make_tag(epoch_, generation_)
  std::int64_t timeout_ns_ = 0;
  Clock::time_point epoch_start_{};
  std::atomic<bool> started_{false};
  std::atomic<bool> epoch_done_{false};
  std::atomic<bool> timed_out_{false};
  std::atomic<bool> correction_started_{false};
  std::atomic<std::int32_t> completed_count_{0};

  Context context_;
  std::barrier<> epoch_barrier_;  // live ranks + coordinator, twice per epoch
  std::atomic<bool> shutdown_{false};
  std::vector<std::jthread> threads_;
};

std::unique_ptr<Engine::Impl> make_thread_per_rank(Rank num_procs,
                                                   const std::vector<char>& failed,
                                                   Rank live_count) {
  return std::make_unique<ThreadPerRankImpl>(num_procs, failed, live_count);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Engine facade: validation + backend selection.
// ---------------------------------------------------------------------------

Engine::Engine(Rank num_procs, std::vector<char> failed, EngineOptions options)
    : num_procs_(num_procs), failed_(std::move(failed)), options_(options) {
  if (num_procs < 1) throw std::invalid_argument("engine needs at least one rank");
  if (static_cast<Rank>(failed_.size()) != num_procs) {
    throw std::invalid_argument("failed flag vector must have P entries");
  }
  if (failed_[0]) throw std::invalid_argument("rank 0 (the root) cannot fail");
  if (options_.inbox_capacity == 0) {
    throw std::invalid_argument(
        "EngineOptions::inbox_capacity must be >= 1 (0 would make the "
        "cross-shard inbox unable to accept any envelope)");
  }
  if (options_.mesh_capacity == 0) {
    throw std::invalid_argument(
        "EngineOptions::mesh_capacity must be >= 1 (0 would make every "
        "SPSC ring unable to accept any envelope)");
  }
  live_count_ = 0;
  for (char f : failed_) live_count_ += (f == 0);
  // Membership starts as the identity view even with construction failures:
  // the initial tree/ring span [0, P) with failed ranks as holes, exactly
  // the pre-repair behavior. The first effective repair pass compacts over
  // *all* dead ranks (construction failures included).
  dead_ = failed_;
  membership_ = MembershipView::identity(num_procs_);
  impl_ = options_.threading == Threading::kThreadPerRank
              ? detail::make_thread_per_rank(num_procs_, failed_, live_count_)
              : detail::make_sharded(num_procs_, failed_, live_count_, options_);
}

Engine::~Engine() = default;

std::size_t Engine::worker_threads() const noexcept { return impl_->worker_threads(); }

void Engine::set_chaos(ChaosPlan plan) {
  chaos_ = std::move(plan);
  impl_->set_chaos(chaos_.enabled() ? &chaos_ : nullptr);
}

bool Engine::repair_membership(const std::vector<topo::Rank>& newly_dead,
                               const std::vector<topo::Rank>& revived) {
  if (!options_.repair) {
    throw std::logic_error(
        "repair_membership requires EngineOptions::repair (without it "
        "crashes are per-epoch and there is no persistent dead set to mend)");
  }
  auto check = [this](topo::Rank r) {
    if (r < 0 || r >= num_procs_) {
      throw std::invalid_argument("repair_membership: rank out of range");
    }
    if (r == 0) {
      throw std::invalid_argument(
          "repair_membership: rank 0 roots every collective and cannot "
          "change state");
    }
  };
  bool changed = false;
  for (const topo::Rank r : newly_dead) {
    check(r);
    auto& flag = dead_[static_cast<std::size_t>(r)];
    changed |= (flag == 0);
    flag = 1;
  }
  for (const topo::Rank r : revived) {
    check(r);
    if (failed_[static_cast<std::size_t>(r)]) {
      throw std::invalid_argument(
          "repair_membership: ranks failed at construction hold no "
          "execution slot and cannot revive");
    }
    auto& flag = dead_[static_cast<std::size_t>(r)];
    changed |= (flag != 0);
    flag = 0;
  }
  if (!changed) return false;

  generation_ = (generation_ + 1) & 0xFF;  // 8-bit field in the envelope tag
  live_count_ = 0;
  for (const char d : dead_) live_count_ += (d == 0);
  membership_ = MembershipView::over_survivors(dead_, generation_);
  impl_->set_membership(dead_, live_count_, generation_);
  return true;
}

void Engine::Impl::set_membership(const std::vector<char>&, topo::Rank,
                                  std::int32_t) {
  throw std::runtime_error(
      "this executor backend does not support membership repair");
}

EpochResult Engine::run_epoch(sim::Protocol& protocol, std::chrono::nanoseconds timeout) {
  std::int64_t timeout_ns = timeout.count();
  const std::int64_t deadline_ns = options_.epoch_deadline.count();
  if (deadline_ns > 0 && (timeout_ns <= 0 || deadline_ns < timeout_ns)) {
    timeout_ns = deadline_ns;
  }
  return impl_->run_epoch(protocol, timeout_ns);
}

StreamResult Engine::Impl::run_stream(const ProtocolFactory&, const StreamOptions&,
                                      std::int64_t) {
  throw std::runtime_error(
      "epoch streaming requires the sharded executor "
      "(EngineOptions::threading = Threading::kSharded)");
}

StreamResult Engine::run_stream(const ProtocolFactory& factory,
                                const StreamOptions& options) {
  if (!factory) throw std::invalid_argument("run_stream: factory must be callable");
  if (options.epochs < 1) throw std::invalid_argument("run_stream: epochs must be >= 1");
  if (options.window < 1 || options.window > 64) {
    throw std::invalid_argument("run_stream: window must be in [1, 64]");
  }
  if (options.rate < 0.0) throw std::invalid_argument("run_stream: rate must be >= 0");
  std::int64_t timeout_ns = options.epoch_timeout.count();
  const std::int64_t deadline_ns = options_.epoch_deadline.count();
  if (deadline_ns > 0 && (timeout_ns <= 0 || deadline_ns < timeout_ns)) {
    timeout_ns = deadline_ns;
  }
  return impl_->run_stream(factory, options, timeout_ns);
}

}  // namespace ct::rt

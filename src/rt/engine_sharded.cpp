// Sharded M:N executor (DESIGN.md §4c): N worker threads, each owning a
// contiguous slice of ranks whose unchanged sim::Protocol state machines it
// steps cooperatively. Intra-shard delivery lands in per-rank LocalFifo ring
// buffers (no locks — single-threaded within a shard); cross-shard delivery
// is staged per destination during a scheduling pass and flushed with one
// lock acquisition per destination shard into its bounded MPSC ShardInbox,
// so lock traffic is O(shards²) per pass instead of O(messages).
//
// Concurrency contract (same as the legacy executor relies on, now spelled
// out): during an epoch, protocol callbacks for rank `me` may only call
// Context::send/set_timer/mark_colored/set_rank_data for `me` itself —
// cross-rank Context writes are legal only from Protocol::begin(), which
// the coordinator runs before workers enter the epoch. Every protocol in
// this repo satisfies this (tests/rt_stress_test.cpp checks it under TSan).

#include <atomic>
#include <barrier>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "rt/engine_impl.hpp"
#include "rt/shard_queue.hpp"

namespace ct::rt::detail {

namespace {

using topo::Rank;

constexpr std::chrono::microseconds kIdleWait{50};

// Per-rank-step drain bounds. Everything already in the outbox when a step
// begins is drained in full — that backlog is bounded by protocol fan-out
// (tree children, correction distance) and draining it per pass is what the
// pre-chaos engine did. What must be capped is the *chained* overflow:
// on_sent may enqueue new sends during the drain (checked correction streams
// ring probes until a stop message arrives from the other direction), and
// following that chain to the end runs O(P) sends for one rank in one step —
// O(P²) envelopes in a single scheduling pass at large P, with no receive
// ever getting a turn to stop it. A small chained allowance restores the
// simulator's pacing, where stops arrive after a handful of probes. The
// receive cap only bounds pass *latency* (work is resumed next pass),
// keeping the epoch deadline responsive.
constexpr std::size_t kMaxChainedSends = 4;
constexpr std::size_t kMaxStepReceives = 4096;

class ShardedImpl final : public Engine::Impl {
 public:
  ShardedImpl(Rank num_procs, const std::vector<char>& failed, Rank live_count,
              const EngineOptions& options)
      : num_procs_(num_procs),
        failed_(failed),
        live_count_(live_count),
        fifo_(static_cast<std::size_t>(num_procs)),
        outbox_(static_cast<std::size_t>(num_procs)),
        timers_(static_cast<std::size_t>(num_procs)),
        colored_(static_cast<std::size_t>(num_procs), 0),
        completed_(static_cast<std::size_t>(num_procs), 0),
        sends_(static_cast<std::size_t>(num_procs), 0),
        rank_data_(static_cast<std::size_t>(num_procs), 0),
        completion_ns_(static_cast<std::size_t>(num_procs), -1),
        crash_at_ns_(static_cast<std::size_t>(num_procs), -1),
        crash_budget_(static_cast<std::size_t>(num_procs), -1),
        crashed_(static_cast<std::size_t>(num_procs), 0),
        dropped_(static_cast<std::size_t>(num_procs), 0),
        delayed_stat_(static_cast<std::size_t>(num_procs), 0),
        duped_(static_cast<std::size_t>(num_procs), 0),
        context_(*this),
        epoch_barrier_(build_shards(options) + 1) {
    threads_.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      threads_.emplace_back([this, s] { worker_main(s); });
    }
  }

  ~ShardedImpl() override {
    shutdown_.store(true, std::memory_order_release);
    epoch_barrier_.arrive_and_wait();  // release workers into the shutdown check
    threads_.clear();                  // join
  }

  EpochResult run_epoch(sim::Protocol& protocol, std::int64_t timeout_ns) override {
    reset_epoch(&protocol, timeout_ns);
    protocol.begin(context_);
    start_clock();
    epoch_barrier_.arrive_and_wait();  // epoch start
    epoch_barrier_.arrive_and_wait();  // epoch end
    return collect();
  }

  std::size_t worker_threads() const noexcept override { return threads_.size(); }

  void set_chaos(const ChaosPlan* plan) override { chaos_ = plan; }

 private:
  struct Timer {
    sim::Time when;
    std::int64_t id;
    bool fired = false;
  };

  /// An envelope held back by the chaos layer until release_ns. Owned by
  /// the *sending* shard — the network keeps in-flight messages even if
  /// the sender crashes after the send.
  struct Delayed {
    Envelope envelope;
    std::int64_t release_ns;
  };

  /// Per-worker state. The rank slice [lo, hi) is contiguous so the rank →
  /// shard map is one division; live_ranks caches the slice minus failures.
  struct Shard {
    Shard(Rank lo_in, Rank hi_in, std::size_t inbox_capacity, std::size_t num_shards)
        : lo(lo_in), hi(hi_in), inbox(inbox_capacity), staged(num_shards) {}

    Rank lo;
    Rank hi;
    std::vector<Rank> live_ranks;
    ShardInbox inbox;
    std::vector<Envelope> drain;                 // reusable inbox drain buffer
    std::vector<std::vector<Envelope>> staged;   // outgoing, per destination shard
    std::vector<Delayed> delayed;                // chaos-delayed, awaiting release
  };

  // The sim::Context facade handed to protocol callbacks.
  class Context final : public sim::Context {
   public:
    explicit Context(ShardedImpl& impl) : impl_(impl) {}

    sim::Time now() const override { return impl_.now(); }
    Rank num_procs() const override { return impl_.num_procs_; }

    void send(Rank from, Rank to, sim::Tag tag, std::int64_t payload) override {
      // Queued on the sender's outbox; the shard stepping `from` delivers it
      // and then runs the on_sent callback.
      const auto slot = static_cast<std::size_t>(from);
      impl_.outbox_[slot].push_back(
          Envelope{sim::Message{from, to, tag, payload, impl_.rank_data_[slot]},
                   impl_.epoch_});
    }

    void set_rank_data(Rank r, std::int64_t data) override {
      impl_.rank_data_[static_cast<std::size_t>(r)] = data;
    }
    std::int64_t rank_data(Rank r) const override {
      return impl_.rank_data_[static_cast<std::size_t>(r)];
    }
    void set_timer(Rank on, sim::Time when, std::int64_t id) override {
      impl_.timers_[static_cast<std::size_t>(on)].push_back({when, id, false});
    }
    void mark_colored(Rank r) override {
      impl_.colored_[static_cast<std::size_t>(r)] = 1;
    }
    bool is_colored(Rank r) const override {
      return impl_.colored_[static_cast<std::size_t>(r)] != 0;
    }
    void note_correction_start() override {
      impl_.correction_started_.store(true, std::memory_order_relaxed);
    }

   private:
    ShardedImpl& impl_;
  };

  /// Carves [0, P) into contiguous slices of ceil(P / workers) ranks and
  /// returns the shard count (for the barrier's participant total).
  std::ptrdiff_t build_shards(const EngineOptions& options) {
    const auto p = static_cast<std::size_t>(num_procs_);
    std::size_t workers = options.workers > 0
                              ? static_cast<std::size_t>(options.workers)
                              : std::max(1u, std::thread::hardware_concurrency());
    workers = std::min(workers, p);
    chunk_ = (p + workers - 1) / workers;
    const std::size_t num_shards = (p + chunk_ - 1) / chunk_;
    for (std::size_t s = 0; s < num_shards; ++s) {
      const auto lo = static_cast<Rank>(s * chunk_);
      const auto hi = static_cast<Rank>(std::min(p, (s + 1) * chunk_));
      Shard& shard = shards_.emplace_back(lo, hi, options.inbox_capacity, num_shards);
      for (Rank r = lo; r < hi; ++r) {
        if (!failed_[static_cast<std::size_t>(r)]) shard.live_ranks.push_back(r);
      }
    }
    return static_cast<std::ptrdiff_t>(num_shards);
  }

  sim::Time now() const {
    if (!started_.load(std::memory_order_acquire)) return 0;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                epoch_start_)
        .count();
  }

  void reset_epoch(sim::Protocol* protocol, std::int64_t timeout_ns) {
    ++epoch_;
    protocol_ = protocol;
    timeout_ns_ = timeout_ns;
    completed_count_.store(0, std::memory_order_relaxed);
    epoch_done_.store(false, std::memory_order_relaxed);
    timed_out_.store(false, std::memory_order_relaxed);
    correction_started_.store(false, std::memory_order_relaxed);
    started_.store(false, std::memory_order_release);
    crash_active_ = chaos_ != nullptr && chaos_->crashes_enabled();
    link_active_ = chaos_ != nullptr && chaos_->links_enabled();
    for (Rank r = 0; r < num_procs_; ++r) {
      const auto slot = static_cast<std::size_t>(r);
      fifo_[slot].clear();
      outbox_[slot].clear();
      timers_[slot].clear();
      colored_[slot] = 0;
      completed_[slot] = 0;
      sends_[slot] = 0;
      rank_data_[slot] = 0;
      completion_ns_[slot] = -1;
      if (crash_active_) {
        crashed_[slot] = 0;
        crash_at_ns_[slot] = failed_[slot] ? -1 : chaos_->crash_ns(epoch_, r);
        crash_budget_[slot] = failed_[slot] ? -1 : chaos_->crash_send_budget(r);
      }
      if (link_active_) {
        dropped_[slot] = 0;
        delayed_stat_[slot] = 0;
        duped_[slot] = 0;
      }
    }
    for (Shard& shard : shards_) {
      shard.inbox.clear();
      shard.drain.clear();
      for (auto& staged : shard.staged) staged.clear();
      shard.delayed.clear();
    }
  }

  void start_clock() {
    epoch_start_ = Clock::now();
    started_.store(true, std::memory_order_release);
  }

  EpochResult collect() const {
    EpochResult result;
    result.timed_out = timed_out_.load(std::memory_order_relaxed);
    result.rank_state.resize(static_cast<std::size_t>(num_procs_));
    for (Rank r = 0; r < num_procs_; ++r) {
      const auto slot = static_cast<std::size_t>(r);
      if (failed_[slot]) {
        result.rank_state[slot] = RankEnd::kFailedAtStart;
        continue;
      }
      result.total_messages += sends_[slot];
      result.rank_completion_ns.push_back(completion_ns_[slot]);
      result.completion_ns = std::max(result.completion_ns, completion_ns_[slot]);
      if (crash_active_ && crashed_[slot]) {
        result.rank_state[slot] = RankEnd::kCrashed;
        result.crashed_ranks.push_back(r);
        ++result.crashed_mid_epoch;
        continue;
      }
      if (!colored_[slot]) {
        result.rank_state[slot] = RankEnd::kUncolored;
        result.uncolored_survivors.push_back(r);
        ++result.uncolored_live;
      } else {
        result.rank_state[slot] = RankEnd::kColored;
      }
      for (const Timer& timer : timers_[slot]) {
        if (!timer.fired) ++result.timers_pending;
      }
    }
    if (link_active_) {
      for (Rank r = 0; r < num_procs_; ++r) {
        const auto slot = static_cast<std::size_t>(r);
        result.messages_dropped += dropped_[slot];
        result.messages_delayed += delayed_stat_[slot];
        result.messages_duplicated += duped_[slot];
      }
    }
    if (result.degraded()) {
      // Survivor coloring on the correction ring: crashed and failed ranks
      // are holes, exactly as the paper's gap analysis treats dead ranks.
      std::vector<char> survivor_colored(static_cast<std::size_t>(num_procs_), 0);
      bool any_colored = false;
      for (Rank r = 0; r < num_procs_; ++r) {
        const auto slot = static_cast<std::size_t>(r);
        if (result.rank_state[slot] == RankEnd::kColored) {
          survivor_colored[slot] = 1;
          any_colored = true;
        }
      }
      if (any_colored) result.coloring_gaps = topo::analyze_gaps(survivor_colored);
    }
    return result;
  }

  void worker_main(std::size_t s) {
    for (;;) {
      epoch_barrier_.arrive_and_wait();  // epoch start (or shutdown)
      if (shutdown_.load(std::memory_order_acquire)) return;
      shard_epoch(s);
      epoch_barrier_.arrive_and_wait();  // epoch end
    }
  }

  /// One worker's epoch: scheduling passes until every live rank completed
  /// (or the epoch timed out). Each pass batch-drains the cross-shard
  /// inbox, steps every owned live rank, and flushes staged cross-shard
  /// sends; an idle pass parks on the inbox condvar for kIdleWait.
  void shard_epoch(std::size_t s) {
    Shard& shard = shards_[s];
    if (shard.live_ranks.empty()) {
      // Entirely-failed slice (possible whenever workers > live ranks): it
      // neither steps protocol state nor receives traffic — deliver() drops
      // failed destinations at the source — so park in long slices instead
      // of spin-polling. finish_epoch() kicks every inbox, so the end-of-
      // epoch barrier is never kept waiting on this shard.
      while (!epoch_done_.load(std::memory_order_acquire)) {
        shard.inbox.wait_for_mail(std::chrono::milliseconds(5));
      }
      return;
    }
    while (!epoch_done_.load(std::memory_order_acquire)) {
      bool progress = false;

      shard.inbox.drain_into(shard.drain);
      if (!shard.drain.empty()) {
        progress = true;
        for (Envelope& envelope : shard.drain) {
          fifo_[static_cast<std::size_t>(envelope.msg.dst)].push(std::move(envelope));
        }
        shard.drain.clear();
      }

      const sim::Time pass_now = now();
      if (link_active_ && !shard.delayed.empty()) {
        progress |= release_delayed(s, shard, pass_now);
      }
      bool deadline_hit = timeout_ns_ > 0 && pass_now > timeout_ns_;
      std::size_t stepped = 0;
      for (Rank r : shard.live_ranks) {
        progress |= step_rank(s, shard, r, pass_now);
        // A pass over a large slice can outlive the deadline by itself
        // (thousands of ranks, each draining capped-but-real backlogs), so
        // the deadline is also checked on a stride *inside* the pass — the
        // per-pass check alone would let one slow pass overshoot unboundedly.
        if (timeout_ns_ > 0 && (++stepped & 0x3FFu) == 0 && now() > timeout_ns_) {
          deadline_hit = true;
          break;
        }
      }

      progress |= flush_staged(shard);

      if (deadline_hit && !epoch_done_.load(std::memory_order_acquire)) {
        timed_out_.store(true, std::memory_order_relaxed);
        finish_epoch();
        break;
      }

      if (!progress && !epoch_done_.load(std::memory_order_acquire)) {
        shard.inbox.wait_for_mail(kIdleWait);
      }
    }
  }

  /// Steps one rank: pending receives, then the send queue (on_sent may
  /// extend it; the index loop keeps draining), then due timers, then the
  /// completion check. Completed ranks keep being stepped — remote
  /// protocols may still need their replies — until the epoch ends.
  bool step_rank(std::size_t s, Shard& shard, Rank r, sim::Time pass_now) {
    const auto slot = static_cast<std::size_t>(r);
    bool progress = false;

    if (crash_active_) {
      if (crashed_[slot]) {
        // A dead rank's fifo still receives traffic (deliver() only checks
        // the construction-time failed flags — crash state is owner-local,
        // never read cross-thread). Discard it so the ring stays bounded.
        Envelope discard;
        while (fifo_[slot].pop(discard)) {
        }
        return false;
      }
      if (crash_at_ns_[slot] >= 0 && pass_now >= crash_at_ns_[slot]) {
        crash_rank(slot);
        return true;
      }
    }

    LocalFifo& fifo = fifo_[slot];
    Envelope envelope;
    std::size_t received = 0;
    while (received < kMaxStepReceives && fifo.pop(envelope)) {
      progress = true;
      ++received;
      if (envelope.epoch == epoch_) protocol_->on_receive(context_, r, envelope.msg);
    }

    auto& outbox = outbox_[slot];
    if (!outbox.empty()) {
      progress = true;
      // Full drain of the entry backlog plus a bounded chained allowance.
      const std::size_t limit = outbox.size() + kMaxChainedSends;
      std::size_t i = 0;
      for (; i < outbox.size() && i < limit; ++i) {
        if (crash_active_ && crash_budget_[slot] >= 0 &&
            sends_[slot] >= crash_budget_[slot]) {
          // Step-count crash: the unsent outbox tail dies with the rank.
          crash_rank(slot);
          return true;
        }
        const Envelope out = outbox[i];  // copy: on_sent may grow the outbox
        ++sends_[slot];
        if (link_active_) {
          deliver_chaos(s, shard, slot, out, pass_now);
        } else {
          deliver(s, shard, out);
        }
        protocol_->on_sent(context_, r, out.msg);
      }
      if (i == outbox.size()) {
        outbox.clear();
      } else {
        // Chain cap hit: keep the unsent tail for the next pass so receives
        // (and their stop conditions) get a turn first.
        outbox.erase(outbox.begin(), outbox.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }

    auto& timers = timers_[slot];
    if (!timers.empty()) progress |= fire_due_timers(r, timers, pass_now);

    if (!completed_[slot] && colored_[slot] && outbox.empty()) {
      completed_[slot] = 1;
      completion_ns_[slot] = now();
      if (completed_count_.fetch_add(1, std::memory_order_acq_rel) + 1 == live_count_) {
        finish_epoch();
      }
    }
    return progress;
  }

  /// Same-shard destinations go straight into the rank's LocalFifo; other
  /// shards' traffic is staged per destination and flushed at pass end.
  /// Failed destinations are dropped, indistinguishable from success.
  void deliver(std::size_t s, Shard& shard, const Envelope& envelope) {
    const auto dst = static_cast<std::size_t>(envelope.msg.dst);
    if (failed_[dst]) return;
    const std::size_t dest_shard = dst / chunk_;
    if (dest_shard == s) {
      fifo_[dst].push(envelope);
    } else {
      shard.staged[dest_shard].push_back(envelope);
    }
  }

  /// Chaos-audited delivery: consults the plan once per send (the verdict
  /// is a pure hash — no shared RNG state between workers) and drops,
  /// duplicates, delays, or forwards the envelope.
  void deliver_chaos(std::size_t s, Shard& shard, std::size_t slot,
                     const Envelope& envelope, sim::Time pass_now) {
    const ChaosPlan::Verdict verdict =
        chaos_->classify(epoch_, envelope.msg.src, sends_[slot]);
    if (verdict.drop) {
      ++dropped_[slot];
      return;  // on_sent still fires at the caller: the paper's fail-stop
               // semantics — a lost message is indistinguishable from a
               // delivered one at the sender.
    }
    if (verdict.delay_ns > 0) {
      ++delayed_stat_[slot];
      shard.delayed.push_back(Delayed{envelope, pass_now + verdict.delay_ns});
      return;
    }
    deliver(s, shard, envelope);
    if (verdict.duplicate) {
      ++duped_[slot];
      deliver(s, shard, envelope);
    }
  }

  /// Forwards chaos-delayed envelopes whose release time has come. The
  /// surviving tail is compacted in place, preserving order.
  bool release_delayed(std::size_t s, Shard& shard, sim::Time pass_now) {
    bool any = false;
    std::size_t keep = 0;
    for (Delayed& d : shard.delayed) {
      if (d.release_ns <= pass_now) {
        any = true;
        deliver(s, shard, d.envelope);
      } else {
        shard.delayed[keep++] = d;
      }
    }
    shard.delayed.resize(keep);
    return any;
  }

  /// Kills a rank mid-epoch: its pending work vanishes, but it still
  /// credits the completion countdown so no surviving peer waits on it.
  /// completion_ns stays -1 — the rank never completed, it died.
  void crash_rank(std::size_t slot) {
    crashed_[slot] = 1;
    outbox_[slot].clear();
    timers_[slot].clear();
    fifo_[slot].clear();
    if (!completed_[slot]) {
      completed_[slot] = 1;
      if (completed_count_.fetch_add(1, std::memory_order_acq_rel) + 1 == live_count_) {
        finish_epoch();
      }
    }
  }

  /// One push_batch (== one lock) per destination shard with staged traffic.
  /// A full inbox accepts a prefix; the leftover stays staged in order and
  /// is retried next pass, preserving per-sender FIFO.
  bool flush_staged(Shard& shard) {
    bool any = false;
    for (std::size_t d = 0; d < shards_.size(); ++d) {
      std::vector<Envelope>& staged = shard.staged[d];
      if (staged.empty()) continue;
      const std::size_t accepted = shards_[d].inbox.push_batch(staged);
      if (accepted == staged.size()) {
        staged.clear();
      } else if (accepted > 0) {
        staged.erase(staged.begin(), staged.begin() + static_cast<std::ptrdiff_t>(accepted));
      }
      any |= accepted > 0;
    }
    return any;
  }

  bool fire_due_timers(Rank r, std::vector<Timer>& timers, sim::Time pass_now) {
    bool fired = false;
    for (auto& timer : timers) {
      if (!timer.fired && timer.when <= pass_now) {
        timer.fired = true;
        fired = true;
        protocol_->on_timer(context_, r, timer.id);
      }
    }
    return fired;
  }

  void finish_epoch() {
    epoch_done_.store(true, std::memory_order_release);
    for (Shard& shard : shards_) shard.inbox.kick();
  }

  Rank num_procs_;
  const std::vector<char>& failed_;
  Rank live_count_;

  std::size_t chunk_ = 1;       // ranks per shard; shard(r) = r / chunk_
  std::deque<Shard> shards_;    // deque: Shard holds a mutex, must not move

  std::vector<LocalFifo> fifo_;
  std::vector<std::vector<Envelope>> outbox_;
  std::vector<std::vector<Timer>> timers_;
  std::vector<char> colored_;
  std::vector<char> completed_;
  std::vector<std::int64_t> sends_;
  std::vector<std::int64_t> rank_data_;
  std::vector<std::int64_t> completion_ns_;

  // Chaos state. Per-rank entries are only read/written by the owning
  // shard during an epoch; crash_active_/link_active_ are latched in
  // reset_epoch (before the start barrier) so the no-chaos hot path costs
  // two branch-on-false per pass.
  const ChaosPlan* chaos_ = nullptr;
  bool crash_active_ = false;
  bool link_active_ = false;
  std::vector<std::int64_t> crash_at_ns_;
  std::vector<std::int64_t> crash_budget_;
  std::vector<char> crashed_;
  std::vector<std::int64_t> dropped_;
  std::vector<std::int64_t> delayed_stat_;
  std::vector<std::int64_t> duped_;

  sim::Protocol* protocol_ = nullptr;
  std::int64_t epoch_ = 0;
  std::int64_t timeout_ns_ = 0;
  Clock::time_point epoch_start_{};
  std::atomic<bool> started_{false};
  std::atomic<bool> epoch_done_{false};
  std::atomic<bool> timed_out_{false};
  std::atomic<bool> correction_started_{false};
  std::atomic<std::int32_t> completed_count_{0};

  Context context_;
  std::barrier<> epoch_barrier_;  // shards + coordinator, twice per epoch
  std::atomic<bool> shutdown_{false};
  std::vector<std::jthread> threads_;
};

}  // namespace

std::unique_ptr<Engine::Impl> make_sharded(Rank num_procs,
                                           const std::vector<char>& failed,
                                           Rank live_count,
                                           const EngineOptions& options) {
  return std::make_unique<ShardedImpl>(num_procs, failed, live_count, options);
}

}  // namespace ct::rt::detail

// Sharded M:N executor (DESIGN.md §4c, §4f): N worker threads, each owning
// a contiguous slice of ranks whose unchanged sim::Protocol state machines
// it steps cooperatively. Intra-shard delivery lands in per-rank LocalFifo
// ring buffers (no locks — single-threaded within a shard); cross-shard
// delivery is staged per destination during a scheduling pass and flushed
// as whole batches into a lock-free SPSC ring per ordered shard pair (the
// default), or into the legacy bounded MPSC ShardInbox behind
// EngineOptions::cross_shard — kept so A/B runs can interleave both paths
// in one binary. Either way the synchronization traffic per pass is
// O(shards²) for the whole engine, never O(messages); with the mesh it is
// two uncontended cache-line publishes per pair instead of a lock.
//
// Scheduling within a shard is an active set, not a slice sweep: a run
// queue holds exactly the ranks with pending work (seeded with every live
// rank once per epoch so begin()-time state is noticed), and delivery,
// timer expiry, and chaos events re-arm ranks as work appears. Idle ranks
// cost nothing per pass — at 36Ki ranks on one core this, not protocol
// cost, was the dominant term. Ranks with no queue entry can still owe
// events, so three side watch lists cover them: pending timers, scheduled
// chaos crashes, and chaos-delayed envelopes.
//
// Concurrency contract (same as the legacy executor relies on, now spelled
// out): during an epoch, protocol callbacks for rank `me` may only call
// Context::send/set_timer/mark_colored/set_rank_data for `me` itself —
// cross-rank Context writes are legal only from Protocol::begin(), which
// the coordinator runs before workers enter the epoch. Every protocol in
// this repo satisfies this (tests/rt_stress_test.cpp checks it under TSan).

#include <atomic>
#include <barrier>
#include <bit>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "rt/engine_impl.hpp"
#include "rt/shard_queue.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ct::rt::detail {

namespace {

using topo::Rank;

constexpr std::chrono::microseconds kIdleWait{50};

/// Best-effort shard→core pinning (EngineOptions::pin_threads). Failure is
/// ignored: affinity is a performance hint, never a correctness need.
void pin_to_core(std::size_t core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(core), &set);
  static_cast<void>(pthread_setaffinity_np(pthread_self(), sizeof(set), &set));
#else
  static_cast<void>(core);
#endif
}

// Per-rank-step drain bounds. Everything already in the outbox when a step
// begins is drained in full — that backlog is bounded by protocol fan-out
// (tree children, correction distance) and draining it per pass is what the
// pre-chaos engine did. What must be capped is the *chained* overflow:
// on_sent may enqueue new sends during the drain (checked correction streams
// ring probes until a stop message arrives from the other direction), and
// following that chain to the end runs O(P) sends for one rank in one step —
// O(P²) envelopes in a single scheduling pass at large P, with no receive
// ever getting a turn to stop it. A small chained allowance restores the
// simulator's pacing, where stops arrive after a handful of probes. The
// receive cap only bounds pass *latency* (work is resumed next pass),
// keeping the epoch deadline responsive.
constexpr std::size_t kMaxChainedSends = 4;
constexpr std::size_t kMaxStepReceives = 4096;

class ShardedImpl final : public Engine::Impl {
 public:
  ShardedImpl(Rank num_procs, const std::vector<char>& failed, Rank live_count,
              const EngineOptions& options)
      : num_procs_(num_procs),
        failed_(failed),
        dead_(failed.begin(), failed.end()),
        live_count_(live_count),
        repair_(options.repair),
        fifo_(static_cast<std::size_t>(num_procs)),
        outbox_(static_cast<std::size_t>(num_procs)),
        timers_(static_cast<std::size_t>(num_procs)),
        core_(static_cast<std::size_t>(num_procs)),
        dropped_(static_cast<std::size_t>(num_procs), 0),
        delayed_stat_(static_cast<std::size_t>(num_procs), 0),
        duped_(static_cast<std::size_t>(num_procs), 0),
        use_mesh_(options.cross_shard == CrossShard::kSpscMesh),
        pin_threads_(options.pin_threads),
        context_(*this),
        epoch_barrier_(build_shards(options) + 1) {
    threads_.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      threads_.emplace_back([this, s] { worker_main(s); });
    }
  }

  ~ShardedImpl() override {
    shutdown_.store(true, std::memory_order_release);
    epoch_barrier_.arrive_and_wait();  // release workers into the shutdown check
    threads_.clear();                  // join
  }

  EpochResult run_epoch(sim::Protocol& protocol, std::int64_t timeout_ns) override {
    reset_epoch(&protocol, timeout_ns);
    protocol.begin(context_);
    start_clock();
    epoch_barrier_.arrive_and_wait();  // epoch start
    epoch_barrier_.arrive_and_wait();  // epoch end
    return collect();
  }

  StreamResult run_stream(const ProtocolFactory& factory, const StreamOptions& options,
                          std::int64_t timeout_ns) override;

  std::size_t worker_threads() const noexcept override { return threads_.size(); }

  void set_chaos(const ChaosPlan* plan) override { chaos_ = plan; }

  /// Repair pass (DESIGN.md §4i). Runs between epochs while every worker is
  /// parked at the epoch barrier, so the plain-member writes (dead set,
  /// live counts, shard live_ranks, generation) are published by the
  /// barrier's synchronization — the same contract reset_epoch relies on.
  void set_membership(const std::vector<char>& dead, Rank live_count,
                      std::int32_t generation) override {
    dead_.assign(dead.begin(), dead.end());
    live_count_ = live_count;
    generation_ = generation;
    for (Shard& shard : shards_) {
      shard.live_ranks.clear();
      for (Rank r = shard.lo; r < shard.hi; ++r) {
        if (!dead_[static_cast<std::size_t>(r)]) shard.live_ranks.push_back(r);
      }
    }
  }

 private:
  struct Timer {
    sim::Time when;
    std::int64_t id;
    bool fired = false;
  };

  /// Per-rank hot scalars, one cache line per rank. A step used to touch
  /// ~eight parallel arrays — eight cache-miss streams once P outgrows the
  /// L2 — and at 16Ki–36Ki ranks those misses, not protocol work, dominated
  /// the epoch. One line holds everything a step reads or writes outside
  /// the fifo/outbox/timer payloads. alignas(64) also makes the line
  /// owner-exclusive: no false sharing across a shard boundary.
  struct alignas(64) RankCore {
    std::int64_t sends = 0;
    std::int64_t rank_data = 0;
    std::int64_t completion_ns = -1;
    std::int64_t crash_at_ns = -1;
    std::int64_t crash_budget = -1;
    char colored = 0;
    char completed = 0;
    char crashed = 0;
    char queued = 0;         // rank is in its shard's run_queue
    char timer_watched = 0;  // rank is on its shard's timer_watch
    /// Repair mode, stream slots: this rank was already persistently dead
    /// when the slot's epoch was admitted (pre-marked crashed+completed by
    /// the coordinator) — collection reports it as failed-at-start, not as
    /// a fresh mid-epoch crash.
    char dead_at_start = 0;
  };
  static_assert(sizeof(RankCore) == 64);

  /// An envelope held back by the chaos layer until release_ns. Owned by
  /// the *sending* shard — the network keeps in-flight messages even if
  /// the sender crashes after the send.
  struct Delayed {
    Envelope envelope;
    std::int64_t release_ns;
  };

  /// Per-worker state. The rank slice [lo, hi) is contiguous so the rank →
  /// shard map is one division; live_ranks caches the slice minus failures.
  struct Shard {
    Shard(Rank lo_in, Rank hi_in, std::size_t inbox_capacity, std::size_t num_shards)
        : lo(lo_in),
          hi(hi_in),
          inbox(inbox_capacity),
          mail_mask((num_shards + 63) / 64),
          staged(num_shards) {}

    Rank lo;
    Rank hi;
    std::vector<Rank> live_ranks;
    ShardInbox inbox;      // cross-shard mail, kLockedInbox mode only
    Doorbell bell;         // parking/wakeup, kSpscMesh mode only
    /// Mesh dirty flags: producer `from` sets bit (from mod 64) of word
    /// (from div 64) after publishing into ring (from → this shard), so the
    /// owner drains and polls O(S/64) words instead of O(S) ring indices —
    /// at 16 shards that is one cache line instead of sixteen, and it is
    /// what keeps the idle-park predicate cheap. Never grown after
    /// construction (vector<atomic> cannot reallocate).
    std::vector<std::atomic<std::uint64_t>> mail_mask;
    std::vector<Envelope> drain;                 // reusable inbox drain buffer
    std::vector<std::vector<Envelope>> staged;   // outgoing, per destination shard
    std::vector<Delayed> delayed;                // chaos-delayed, awaiting release

    // Active-set scheduler (owner-thread only between the epoch barriers).
    // run_queue is a FIFO with a consumed prefix [0, run_head); queued_
    // flags keep membership O(1).
    std::vector<Rank> run_queue;
    std::size_t run_head = 0;
    std::vector<Rank> timer_watch;  // ranks with >= 1 unfired timer
    std::vector<Rank> crash_watch;  // ranks with a scheduled chaos crash

    // Streaming (PR8): the epoch this shard last serviced per window slot,
    // one entry per handshake phase — comparing against StreamSlot::epoch
    // makes each phase idempotent per pass without extra atomics. In stream
    // mode the three vectors above hold *virtual* ranks (slot·P + r).
    std::vector<std::int64_t> slot_staged;
    std::vector<std::int64_t> slot_seeded;
    std::vector<std::int64_t> slot_sealed;
  };

  // The sim::Context facade handed to protocol callbacks.
  class Context final : public sim::Context {
   public:
    explicit Context(ShardedImpl& impl) : impl_(impl) {}

    sim::Time now() const override { return impl_.now(); }
    Rank num_procs() const override { return impl_.num_procs_; }

    void send(Rank from, Rank to, sim::Tag tag, std::int64_t payload) override {
      // Queued on the sender's outbox; the shard stepping `from` delivers it
      // and then runs the on_sent callback.
      const auto slot = static_cast<std::size_t>(from);
      impl_.outbox_[slot].push_back(Envelope{
          sim::Message{.src = from, .dst = to, .tag = tag, .payload = payload,
                       .data = impl_.core_[slot].rank_data},
          impl_.tag_});
    }

    void set_rank_data(Rank r, std::int64_t data) override {
      impl_.core_[static_cast<std::size_t>(r)].rank_data = data;
    }
    std::int64_t rank_data(Rank r) const override {
      return impl_.core_[static_cast<std::size_t>(r)].rank_data;
    }
    void set_timer(Rank on, sim::Time when, std::int64_t id) override {
      impl_.timers_[static_cast<std::size_t>(on)].push_back({when, id, false});
      // The owning shard must notice the expiry even if `on` never gets
      // another queue entry — register it on the shard's timer watch list.
      impl_.register_timer_watch(on);
    }
    void mark_colored(Rank r) override {
      impl_.core_[static_cast<std::size_t>(r)].colored = 1;
    }
    bool is_colored(Rank r) const override {
      return impl_.core_[static_cast<std::size_t>(r)].colored != 0;
    }
    void note_correction_start() override {
      impl_.correction_started_.store(true, std::memory_order_relaxed);
    }

   private:
    ShardedImpl& impl_;
  };

  // --- Streaming (PR8) ------------------------------------------------------
  // W window slots, each hosting one in-flight epoch over a full virtual
  // copy of the rank state (virtual rank v = slot·P + r, arrays resized to
  // W·P). A slot cycles through an atomic state machine; every transition
  // into worker-owned territory is a staged handshake so the coordinator
  // only ever touches a slot's rank state while no worker does:
  //
  //   kFree     coordinator-owned, nothing in flight
  //   kStaging  every shard resets its own slice (fifos may hold stale mail
  //             only the owner may touch), acks; last ack -> kStaged
  //   kStaged   coordinator builds the protocol, runs begin(), seeds chaos
  //             crash schedules, arms the countdown -> kActive
  //   kActive   shards seed their run queues/watches once, then step ranks;
  //             the last completion (or the coordinator's deadline scan)
  //             CASes -> kSealing
  //   kSealing  every shard acks "no further callbacks for this slot";
  //             last ack -> kDone
  //   kDone     coordinator collects metrics, destroys the protocol -> kFree
  //
  // Delivery maps an envelope to its slot by epoch % W; a late envelope of
  // a retired epoch lands in the reused slot's fifo and is discarded by the
  // consumption-time epoch filter, exactly like one-shot epoch leftovers.
  enum : std::uint32_t {
    kSlotFree = 0,
    kSlotStaging = 1,
    kSlotStaged = 2,
    kSlotActive = 3,
    kSlotSealing = 4,
    kSlotDone = 5,
  };

  class StreamContext;  // defined below (needs ShardedImpl complete)

  struct alignas(64) StreamSlot {
    std::atomic<std::uint32_t> state{kSlotFree};
    std::atomic<std::uint32_t> stage_acks{0};
    std::atomic<std::uint32_t> seal_acks{0};
    /// Live ranks still to complete; armed by the coordinator pre-kActive.
    std::atomic<std::int32_t> remaining{0};
    /// First writer wins (CAS from -1): the last completer or the
    /// coordinator's deadline scan.
    std::atomic<std::int64_t> retire_ns{-1};
    std::atomic<bool> timed_out{false};
    // Coordinator-owned plain fields, published by the release transitions.
    std::int64_t epoch = -1;
    std::int64_t scheduled_ns = 0;
    std::int64_t admitted_ns = 0;
    std::int64_t begin_ns = 0;
    std::int64_t deadline_ns = 0;  // absolute stream time; 0 = none
    std::int32_t tag = 0;          // Envelope::make_tag(epoch, generation)
    std::int32_t rejoined = 0;     // repair mode: revivals joining this epoch
    std::unique_ptr<sim::Protocol> protocol;
    std::unique_ptr<StreamContext> context;
  };

  /// The Context facade for one window slot: rank r translates to virtual
  /// rank v = slot·P + r, and sends are stamped with the slot's epoch.
  class StreamContext final : public sim::Context {
   public:
    StreamContext(ShardedImpl& impl, std::size_t w) : impl_(impl), w_(w) {}

    sim::Time now() const override { return impl_.now(); }
    Rank num_procs() const override { return impl_.num_procs_; }

    void send(Rank from, Rank to, sim::Tag tag, std::int64_t payload) override {
      const std::size_t v = impl_.vindex(w_, from);
      impl_.outbox_[v].push_back(Envelope{
          sim::Message{.src = from, .dst = to, .tag = tag, .payload = payload,
                       .data = impl_.core_[v].rank_data},
          impl_.slots_[w_].tag});
    }
    void set_rank_data(Rank r, std::int64_t data) override {
      impl_.core_[impl_.vindex(w_, r)].rank_data = data;
    }
    std::int64_t rank_data(Rank r) const override {
      return impl_.core_[impl_.vindex(w_, r)].rank_data;
    }
    void set_timer(Rank on, sim::Time when, std::int64_t id) override {
      // No watch registration here: the caller may be the coordinator
      // (begin(), pre-kActive), which must not touch shard watch lists
      // while workers run. begin()-time timers are picked up by the owning
      // shard's seeding scan, callback-time timers by the post-step check —
      // both on the owner thread.
      impl_.timers_[impl_.vindex(w_, on)].push_back({when, id, false});
    }
    void mark_colored(Rank r) override {
      impl_.core_[impl_.vindex(w_, r)].colored = 1;
    }
    bool is_colored(Rank r) const override {
      return impl_.core_[impl_.vindex(w_, r)].colored != 0;
    }
    void note_correction_start() override {
      impl_.correction_started_.store(true, std::memory_order_relaxed);
    }

   private:
    ShardedImpl& impl_;
    std::size_t w_;  ///< the window slot this context translates into
  };

  /// Carves [0, P) into contiguous slices of ceil(P / workers) ranks and
  /// returns the shard count (for the barrier's participant total). In mesh
  /// mode also lays out the S² SPSC rings, ordered producer-major so the
  /// consumer column for shard s is rings_[from * S + s].
  std::ptrdiff_t build_shards(const EngineOptions& options) {
    const auto p = static_cast<std::size_t>(num_procs_);
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    std::size_t workers =
        options.workers > 0 ? static_cast<std::size_t>(options.workers) : hw;
    // Oversubscription cap (see EngineOptions::workers): shards beyond this
    // only inflate the S² mesh and timeshare the same cores. Generous floor
    // of 16 so multi-worker tests behave identically on small CI hosts.
    workers = std::min(workers, std::max<std::size_t>(16, 8 * hw));
    workers = std::min(workers, p);
    chunk_ = (p + workers - 1) / workers;
    // Round-up reciprocal for the delivery path's shard lookup: exact for
    // every rank and chunk below 2^32 (rank·e < 2^64 in the usual round-up
    // bound). chunk_ == 1 wraps the reciprocal to 0; shard_of branches.
    chunk_mul_ = ~std::uint64_t{0} / chunk_ + 1;
    const std::size_t num_shards = (p + chunk_ - 1) / chunk_;
    for (std::size_t s = 0; s < num_shards; ++s) {
      const auto lo = static_cast<Rank>(s * chunk_);
      const auto hi = static_cast<Rank>(std::min(p, (s + 1) * chunk_));
      Shard& shard = shards_.emplace_back(lo, hi, options.inbox_capacity, num_shards);
      for (Rank r = lo; r < hi; ++r) {
        if (!failed_[static_cast<std::size_t>(r)]) shard.live_ranks.push_back(r);
      }
    }
    if (use_mesh_) {
      // Diagonal rings are never touched (same-shard mail takes the
      // LocalFifo); give them the minimum footprint.
      for (std::size_t from = 0; from < num_shards; ++from) {
        for (std::size_t to = 0; to < num_shards; ++to) {
          rings_.emplace_back(from == to ? 1 : options.mesh_capacity);
        }
      }
    }
    return static_cast<std::ptrdiff_t>(num_shards);
  }

  sim::Time now() const {
    if (!started_.load(std::memory_order_acquire)) return 0;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                epoch_start_)
        .count();
  }

  void reset_epoch(sim::Protocol* protocol, std::int64_t timeout_ns) {
    ++epoch_;
    tag_ = Envelope::make_tag(epoch_, generation_);
    protocol_ = protocol;
    timeout_ns_ = timeout_ns;
    completed_count_.store(0, std::memory_order_relaxed);
    epoch_done_.store(false, std::memory_order_relaxed);
    timed_out_.store(false, std::memory_order_relaxed);
    correction_started_.store(false, std::memory_order_relaxed);
    started_.store(false, std::memory_order_release);
    crash_active_ = chaos_ != nullptr && chaos_->crashes_enabled();
    link_active_ = chaos_ != nullptr && chaos_->links_enabled();
    for (Shard& shard : shards_) {
      shard.inbox.clear();
      shard.drain.clear();
      for (auto& staged : shard.staged) staged.clear();
      shard.delayed.clear();
      // Seed the active set with every live rank: the first pass must step
      // each one once so begin()-time coloring and outboxes are noticed
      // (and already-satisfied ranks complete immediately).
      shard.run_queue.assign(shard.live_ranks.begin(), shard.live_ranks.end());
      shard.run_head = 0;
      shard.timer_watch.clear();
      shard.crash_watch.clear();
      for (std::atomic<std::uint64_t>& word : shard.mail_mask) {
        word.store(0, std::memory_order_relaxed);
      }
    }
    for (SpscRing& ring : rings_) ring.clear();  // both sides parked at the barrier
    for (Rank r = 0; r < num_procs_; ++r) {
      const auto slot = static_cast<std::size_t>(r);
      fifo_[slot].clear();
      outbox_[slot].clear();
      timers_[slot].clear();
      core_[slot].colored = 0;
      core_[slot].completed = 0;
      core_[slot].sends = 0;
      core_[slot].rank_data = 0;
      core_[slot].completion_ns = -1;
      core_[slot].queued = static_cast<char>(!dead_[slot]);
      core_[slot].timer_watched = 0;
      if (crash_active_) {
        core_[slot].crashed = 0;
        core_[slot].crash_at_ns = dead_[slot] ? -1 : chaos_->crash_ns(epoch_, r);
        core_[slot].crash_budget = dead_[slot] ? -1 : chaos_->crash_send_budget(r);
        if (core_[slot].crash_at_ns >= 0) {
          shards_[shard_of(slot)].crash_watch.push_back(r);
        }
      }
      if (link_active_) {
        dropped_[slot] = 0;
        delayed_stat_[slot] = 0;
        duped_[slot] = 0;
      }
    }
  }

  void start_clock() {
    epoch_start_ = Clock::now();
    started_.store(true, std::memory_order_release);
  }

  EpochResult collect() const {
    EpochResult result;
    result.timed_out = timed_out_.load(std::memory_order_relaxed);
    result.rank_state.resize(static_cast<std::size_t>(num_procs_));
    for (Rank r = 0; r < num_procs_; ++r) {
      const auto slot = static_cast<std::size_t>(r);
      if (dead_[slot]) {
        // Failed at construction, or persistently dead under repair mode —
        // either way the rank held no execution slot this epoch, so it is
        // not a survivor and cannot degrade the epoch.
        result.rank_state[slot] = RankEnd::kFailedAtStart;
        continue;
      }
      result.total_messages += core_[slot].sends;
      result.rank_completion_ns.push_back(core_[slot].completion_ns);
      result.completion_ns = std::max(result.completion_ns, core_[slot].completion_ns);
      if (crash_active_ && core_[slot].crashed) {
        result.rank_state[slot] = RankEnd::kCrashed;
        result.crashed_ranks.push_back(r);
        ++result.crashed_mid_epoch;
        continue;
      }
      if (!core_[slot].colored) {
        result.rank_state[slot] = RankEnd::kUncolored;
        result.uncolored_survivors.push_back(r);
        ++result.uncolored_live;
      } else {
        result.rank_state[slot] = RankEnd::kColored;
      }
      for (const Timer& timer : timers_[slot]) {
        if (!timer.fired) ++result.timers_pending;
      }
    }
    if (link_active_) {
      for (Rank r = 0; r < num_procs_; ++r) {
        const auto slot = static_cast<std::size_t>(r);
        result.messages_dropped += dropped_[slot];
        result.messages_delayed += delayed_stat_[slot];
        result.messages_duplicated += duped_[slot];
      }
    }
    if (result.degraded()) {
      // Survivor coloring on the correction ring: crashed and failed ranks
      // are holes, exactly as the paper's gap analysis treats dead ranks.
      std::vector<char> survivor_colored(static_cast<std::size_t>(num_procs_), 0);
      bool any_colored = false;
      for (Rank r = 0; r < num_procs_; ++r) {
        const auto slot = static_cast<std::size_t>(r);
        if (result.rank_state[slot] == RankEnd::kColored) {
          survivor_colored[slot] = 1;
          any_colored = true;
        }
      }
      if (any_colored) result.coloring_gaps = topo::analyze_gaps(survivor_colored);
    }
    return result;
  }

  void worker_main(std::size_t s) {
    if (pin_threads_) {
      // Stable shard→core map; with contiguous rank slices and first-touch
      // allocation this keeps a shard's rank state and its consumer ring
      // column on the core (and NUMA node) that works them.
      pin_to_core(s % std::max(1u, std::thread::hardware_concurrency()));
    }
    for (;;) {
      epoch_barrier_.arrive_and_wait();  // epoch/stream start (or shutdown)
      if (shutdown_.load(std::memory_order_acquire)) return;
      if (stream_mode_) {
        stream_shard_loop(s);
      } else {
        shard_epoch(s);
      }
      epoch_barrier_.arrive_and_wait();  // epoch/stream end
    }
  }

  /// Adds `r` (owned by `shard`) to the active set if absent.
  void activate(Shard& shard, Rank r) {
    const auto slot = static_cast<std::size_t>(r);
    if (!core_[slot].queued) {
      core_[slot].queued = 1;
      shard.run_queue.push_back(r);
    }
  }

  /// Called from Context::set_timer. Legal callers are the coordinator
  /// (begin(), before the start barrier) and the shard owning `on` (the
  /// callback contract), so the watch list write is always single-threaded.
  void register_timer_watch(Rank on) {
    const auto slot = static_cast<std::size_t>(on);
    if (!core_[slot].timer_watched) {
      core_[slot].timer_watched = 1;
      shards_[shard_of(slot)].timer_watch.push_back(on);
    }
  }

  /// Claims pending cross-shard mail — every ring of the mesh column (or
  /// the locked inbox) in one batch — delivers it into the per-rank fifos,
  /// and activates the receivers. On the mesh path envelopes go straight
  /// from the ring slot into the destination fifo (one 32-byte copy); the
  /// old route staged them through shard.drain first, doubling the byte
  /// traffic of every cross-shard hop. The locked inbox keeps the drain
  /// buffer — its one-swap contract needs a vector to swap into.
  bool drain_cross_shard(std::size_t s, Shard& shard) {
    if (use_mesh_) {
      const std::size_t num_shards = shards_.size();
      std::size_t claimed = 0;
      for (std::size_t word = 0; word < shard.mail_mask.size(); ++word) {
        if (shard.mail_mask[word].load(std::memory_order_relaxed) == 0) continue;
        // Clear before popping: a bit set for mail we then miss re-arms the
        // next pass (harmless empty pop); clearing after could lose one.
        std::uint64_t bits = shard.mail_mask[word].exchange(0, std::memory_order_acquire);
        while (bits != 0) {
          const std::size_t from = (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          claimed += rings_[from * num_shards + s].consume_all([&](const Envelope& envelope) {
            const auto dst = static_cast<std::size_t>(envelope.msg.dst);
            fifo_[dst].push(envelope);
            activate(shard, static_cast<Rank>(dst));
          });
        }
      }
      return claimed > 0;
    }
    shard.inbox.drain_into(shard.drain);
    if (shard.drain.empty()) return false;
    for (const Envelope& envelope : shard.drain) {
      const auto dst = static_cast<std::size_t>(envelope.msg.dst);
      fifo_[dst].push(envelope);
      activate(shard, static_cast<Rank>(dst));
    }
    shard.drain.clear();
    return true;
  }

  /// Fires due timers for watched ranks and compacts the watch list down to
  /// ranks that still owe one. Index loop: on_timer may set a new timer,
  /// which appends to this very list.
  bool scan_timer_watch(Shard& shard, sim::Time pass_now) {
    bool any = false;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < shard.timer_watch.size(); ++i) {
      const Rank r = shard.timer_watch[i];
      const auto slot = static_cast<std::size_t>(r);
      if (crash_active_ && core_[slot].crashed) {
        core_[slot].timer_watched = 0;
        continue;
      }
      auto& timers = timers_[slot];
      if (fire_due_timers(r, timers, pass_now)) {
        any = true;
        activate(shard, r);  // the handler may have queued sends
      }
      bool pending = false;
      for (const Timer& timer : timers) {
        if (!timer.fired) {
          pending = true;
          break;
        }
      }
      if (pending) {
        shard.timer_watch[keep++] = r;
      } else {
        core_[slot].timer_watched = 0;
      }
    }
    shard.timer_watch.resize(keep);
    return any;
  }

  /// Triggers due scheduled chaos crashes — these must fire even for ranks
  /// with no queue entry, or an idle victim would survive and the
  /// completion countdown would hang on it.
  bool scan_crash_watch(Shard& shard, sim::Time pass_now) {
    bool any = false;
    std::size_t keep = 0;
    for (const Rank r : shard.crash_watch) {
      const auto slot = static_cast<std::size_t>(r);
      if (core_[slot].crashed) continue;  // a send-budget crash already took it
      if (pass_now >= core_[slot].crash_at_ns) {
        crash_rank(slot);
        any = true;
        continue;
      }
      shard.crash_watch[keep++] = r;
    }
    shard.crash_watch.resize(keep);
    return any;
  }

  /// One worker's epoch: scheduling passes until every live rank completed
  /// (or the epoch timed out). Each pass batch-drains cross-shard mail,
  /// services the watch lists, steps the active set (bounded per pass so
  /// flushes and the deadline stay responsive), and flushes staged
  /// cross-shard sends; an idle pass parks for kIdleWait.
  void shard_epoch(std::size_t s) {
    Shard& shard = shards_[s];
    if (shard.live_ranks.empty()) {
      // Entirely-failed slice (possible whenever workers > live ranks): it
      // neither steps protocol state nor receives traffic — deliver() drops
      // failed destinations at the source — so park in long slices instead
      // of spin-polling. finish_epoch() kicks every shard, so the end-of-
      // epoch barrier is never kept waiting on this one.
      while (!epoch_done_.load(std::memory_order_acquire)) {
        if (use_mesh_) {
          shard.bell.wait(std::chrono::milliseconds(5), [] { return false; });
        } else {
          shard.inbox.wait_for_mail(std::chrono::milliseconds(5));
        }
      }
      return;
    }
    // Per-pass step bound: an activation cascade (each step re-arming the
    // ranks it delivered to) may otherwise run arbitrarily long before the
    // next flush/drain/deadline checkpoint. A full slice's worth keeps the
    // pass no heavier than the old sweep; leftovers stay queued in order.
    const std::size_t step_budget =
        std::max<std::size_t>(shard.live_ranks.size(), 1024);
    while (!epoch_done_.load(std::memory_order_acquire)) {
      bool progress = drain_cross_shard(s, shard);

      const sim::Time pass_now = now();
      if (link_active_ && !shard.delayed.empty()) {
        progress |= release_delayed(s, shard, pass_now);
      }
      if (crash_active_ && !shard.crash_watch.empty()) {
        progress |= scan_crash_watch(shard, pass_now);
      }
      if (!shard.timer_watch.empty()) {
        progress |= scan_timer_watch(shard, pass_now);
      }

      bool deadline_hit = timeout_ns_ > 0 && pass_now > timeout_ns_;
      std::size_t stepped = 0;
      while (shard.run_head < shard.run_queue.size() && stepped < step_budget) {
        const Rank r = shard.run_queue[shard.run_head++];
        const auto slot = static_cast<std::size_t>(r);
        core_[slot].queued = 0;
        progress |= step_rank(s, shard, r, pass_now);
        // Receive/chained-send caps can leave backlog behind; re-arm so the
        // rank resumes without waiting for fresh mail.
        if (!fifo_[slot].empty() || !outbox_[slot].empty()) activate(shard, r);
        // A pass can outlive the deadline by itself (thousands of active
        // ranks, each draining capped-but-real backlogs), so the deadline
        // is also checked on a stride *inside* the pass — the per-pass
        // check alone would let one slow pass overshoot unboundedly.
        if (timeout_ns_ > 0 && (++stepped & 0x3FFu) == 0 && now() > timeout_ns_) {
          deadline_hit = true;
          break;
        }
      }
      if (shard.run_head > 0) {
        if (shard.run_head == shard.run_queue.size()) {
          shard.run_queue.clear();
        } else {
          shard.run_queue.erase(
              shard.run_queue.begin(),
              shard.run_queue.begin() + static_cast<std::ptrdiff_t>(shard.run_head));
        }
        shard.run_head = 0;
      }
      // A budget-cut pass must not park on top of runnable work.
      progress |= !shard.run_queue.empty();

      progress |= flush_staged(s, shard);

      if (deadline_hit && !epoch_done_.load(std::memory_order_acquire)) {
        timed_out_.store(true, std::memory_order_relaxed);
        finish_epoch();
        break;
      }

      if (!progress && !epoch_done_.load(std::memory_order_acquire)) {
        if (use_mesh_) {
          shard.bell.wait(kIdleWait, [&] { return mesh_has_mail(shard); });
        } else {
          shard.inbox.wait_for_mail(kIdleWait);
        }
      }
    }
  }

  /// Consumer-side poll: one mask word per 64 producers instead of a walk
  /// over every ring index line in the column. Relaxed loads suffice — the
  /// Doorbell's seq_cst fence pair orders them against the park decision.
  bool mesh_has_mail(const Shard& shard) const {
    for (const std::atomic<std::uint64_t>& word : shard.mail_mask) {
      if (word.load(std::memory_order_relaxed) != 0) return true;
    }
    return false;
  }

  /// Steps one rank: pending receives, then the send queue (on_sent may
  /// extend it; the index loop keeps draining), then due timers, then the
  /// completion check. Completed ranks keep being stepped — remote
  /// protocols may still need their replies — until the epoch ends.
  bool step_rank(std::size_t s, Shard& shard, Rank r, sim::Time pass_now) {
    const auto slot = static_cast<std::size_t>(r);
    bool progress = false;

    if (crash_active_) {
      if (core_[slot].crashed) {
        // A dead rank's fifo still receives traffic (deliver() only checks
        // the epoch-boundary dead flags — mid-epoch crash state is
        // owner-local, never read cross-thread). Discard it so the ring
        // stays bounded.
        Envelope discard;
        while (fifo_[slot].pop(discard)) {
        }
        return false;
      }
      if (core_[slot].crash_at_ns >= 0 && pass_now >= core_[slot].crash_at_ns) {
        crash_rank(slot);
        return true;
      }
    }

    LocalFifo& fifo = fifo_[slot];
    Envelope envelope;
    std::size_t received = 0;
    while (received < kMaxStepReceives && fifo.pop(envelope)) {
      progress = true;
      ++received;
      if (envelope.tag() == tag_) {
        protocol_->on_receive(context_, r, envelope.msg);
      }
    }
    auto& outbox = outbox_[slot];
    if (!outbox.empty()) {
      progress = true;
      // Full drain of the entry backlog plus a bounded chained allowance.
      const std::size_t limit = outbox.size() + kMaxChainedSends;
      std::size_t i = 0;
      for (; i < outbox.size() && i < limit; ++i) {
        if (crash_active_ && core_[slot].crash_budget >= 0 &&
            core_[slot].sends >= core_[slot].crash_budget) {
          // Step-count crash: the unsent outbox tail dies with the rank.
          crash_rank(slot);
          return true;
        }
        ++core_[slot].sends;
        // Delivery reads the envelope in place — deliver/deliver_chaos never
        // touch this rank's outbox. Only on_sent can grow (and reallocate)
        // it, so only the 32-byte message it needs is copied to the stack.
        if (link_active_) {
          deliver_chaos(s, shard, slot, outbox[i], pass_now);
        } else {
          deliver(s, shard, outbox[i]);
        }
        const sim::Message sent = outbox[i].msg;
        protocol_->on_sent(context_, r, sent);
      }
      if (i == outbox.size()) {
        outbox.clear();
      } else {
        // Chain cap hit: keep the unsent tail for the next pass so receives
        // (and their stop conditions) get a turn first.
        outbox.erase(outbox.begin(), outbox.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }

    auto& timers = timers_[slot];
    if (!timers.empty()) progress |= fire_due_timers(r, timers, pass_now);

    if (!core_[slot].completed && core_[slot].colored && outbox.empty()) {
      core_[slot].completed = 1;
      core_[slot].completion_ns = now();
      if (completed_count_.fetch_add(1, std::memory_order_acq_rel) + 1 == live_count_) {
        finish_epoch();
      }
    }
    return progress;
  }

  /// Same-shard destinations go straight into the rank's LocalFifo (and
  /// onto the active set); other shards' traffic is staged per destination
  /// and flushed at pass end. Failed destinations are dropped,
  /// indistinguishable from success.
  /// shard(r) = r / chunk_, strength-reduced to one high multiply — this
  /// runs once per delivered message, and the integer divide was measurable
  /// on the single-shard ladder cells.
  std::size_t shard_of(std::size_t rank) const noexcept {
    if (chunk_mul_ == 0) return rank;  // chunk_ == 1
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(rank) * chunk_mul_) >> 64);
  }

  void deliver(std::size_t s, Shard& shard, const Envelope& envelope) {
    const auto dst = static_cast<std::size_t>(envelope.msg.dst);
    if (dead_[dst]) return;
    const std::size_t dest_shard = shard_of(dst);
    if (dest_shard == s) {
      fifo_[dst].push(envelope);
      activate(shard, envelope.msg.dst);
    } else {
      shard.staged[dest_shard].push_back(envelope);
    }
  }

  /// Chaos-audited delivery: consults the plan once per send (the verdict
  /// is a pure hash — no shared RNG state between workers) and drops,
  /// duplicates, delays, or forwards the envelope.
  void deliver_chaos(std::size_t s, Shard& shard, std::size_t slot,
                     const Envelope& envelope, sim::Time pass_now) {
    const ChaosPlan::Verdict verdict =
        chaos_->classify(epoch_, envelope.msg.src, core_[slot].sends);
    if (verdict.drop) {
      ++dropped_[slot];
      return;  // on_sent still fires at the caller: the paper's fail-stop
               // semantics — a lost message is indistinguishable from a
               // delivered one at the sender.
    }
    if (verdict.delay_ns > 0) {
      ++delayed_stat_[slot];
      shard.delayed.push_back(Delayed{envelope, pass_now + verdict.delay_ns});
      return;
    }
    deliver(s, shard, envelope);
    if (verdict.duplicate) {
      ++duped_[slot];
      deliver(s, shard, envelope);
    }
  }

  /// Forwards chaos-delayed envelopes whose release time has come. The
  /// surviving tail is compacted in place, preserving order.
  bool release_delayed(std::size_t s, Shard& shard, sim::Time pass_now) {
    bool any = false;
    std::size_t keep = 0;
    for (Delayed& d : shard.delayed) {
      if (d.release_ns <= pass_now) {
        any = true;
        deliver(s, shard, d.envelope);
      } else {
        shard.delayed[keep++] = d;
      }
    }
    shard.delayed.resize(keep);
    return any;
  }

  /// Kills a rank mid-epoch: its pending work vanishes, but it still
  /// credits the completion countdown so no surviving peer waits on it.
  /// completion_ns stays -1 — the rank never completed, it died.
  void crash_rank(std::size_t slot) {
    core_[slot].crashed = 1;
    outbox_[slot].clear();
    timers_[slot].clear();
    fifo_[slot].clear();
    if (!core_[slot].completed) {
      core_[slot].completed = 1;
      if (completed_count_.fetch_add(1, std::memory_order_acq_rel) + 1 == live_count_) {
        finish_epoch();
      }
    }
  }

  /// One batch publish per destination shard with staged traffic — a single
  /// release store on the pair's ring (mesh) or one push_batch under the
  /// inbox lock (legacy). A full ring/inbox accepts a prefix; the leftover
  /// stays staged in order and is retried next pass, preserving per-sender
  /// FIFO — the same backpressure contract either way, so the PR4
  /// chained-send bound and the epoch deadline behave identically.
  bool flush_staged(std::size_t s, Shard& shard) {
    bool any = false;
    const std::size_t num_shards = shards_.size();
    for (std::size_t d = 0; d < num_shards; ++d) {
      std::vector<Envelope>& staged = shard.staged[d];
      if (staged.empty()) continue;
      const std::size_t accepted =
          use_mesh_
              ? rings_[s * num_shards + d].push_batch(staged.data(), staged.size())
              : shards_[d].inbox.push_batch(staged);
      if (accepted == staged.size()) {
        staged.clear();
      } else if (accepted > 0) {
        staged.erase(staged.begin(), staged.begin() + static_cast<std::ptrdiff_t>(accepted));
      }
      if (accepted > 0) {
        any = true;
        if (use_mesh_) {
          shards_[d].mail_mask[s >> 6].fetch_or(std::uint64_t{1} << (s & 63),
                                                std::memory_order_release);
          shards_[d].bell.notify();
        }
      }
    }
    return any;
  }

  /// Index loop: on_timer may call set_timer and grow the vector mid-scan.
  bool fire_due_timers(Rank r, std::vector<Timer>& timers, sim::Time pass_now) {
    bool fired = false;
    for (std::size_t i = 0; i < timers.size(); ++i) {
      if (!timers[i].fired && timers[i].when <= pass_now) {
        timers[i].fired = true;
        fired = true;
        protocol_->on_timer(context_, r, timers[i].id);
      }
    }
    return fired;
  }

  void finish_epoch() {
    epoch_done_.store(true, std::memory_order_release);
    kick_all_shards();
  }

  void kick_all_shards() {
    for (Shard& shard : shards_) {
      if (use_mesh_) {
        shard.bell.kick();
      } else {
        shard.inbox.kick();
      }
    }
  }

  // --- Streaming (PR8) ------------------------------------------------------

  std::size_t vindex(std::size_t w, Rank r) const noexcept {
    return w * static_cast<std::size_t>(num_procs_) + static_cast<std::size_t>(r);
  }
  std::size_t vslot(std::size_t v) const noexcept {
    return v / static_cast<std::size_t>(num_procs_);
  }
  Rank vrank(std::size_t v) const noexcept {
    return static_cast<Rank>(v % static_cast<std::size_t>(num_procs_));
  }
  std::size_t slot_of_epoch(std::int64_t epoch) const noexcept {
    return static_cast<std::size_t>(epoch % window_);
  }

  /// Full reset to stream mode: rank-state arrays grow to W·P virtual
  /// ranks, W window slots are (re)built, every queue and watch list is
  /// cleared. Runs with all workers parked at the barrier.
  void prepare_stream(const StreamOptions& options, std::int64_t timeout_ns) {
    window_ = options.window;
    stream_timeout_ns_ = timeout_ns;
    stream_keep_rank_state_ = options.keep_rank_state;
    const std::size_t total =
        static_cast<std::size_t>(window_) * static_cast<std::size_t>(num_procs_);
    if (fifo_.size() < total) {
      fifo_.resize(total);
      outbox_.resize(total);
      timers_.resize(total);
      core_.resize(total);
      dropped_.resize(total, 0);
      delayed_stat_.resize(total, 0);
      duped_.resize(total, 0);
    }
    slots_.clear();
    for (std::size_t w = 0; w < static_cast<std::size_t>(window_); ++w) {
      StreamSlot& slot = slots_.emplace_back();
      slot.context = std::make_unique<StreamContext>(*this, w);
    }
    crash_active_ = chaos_ != nullptr && chaos_->crashes_enabled();
    link_active_ = chaos_ != nullptr && chaos_->links_enabled();
    if (repair_) {
      // Stream-side membership (DESIGN.md §4i): crashes persist across
      // admissions and revivals rejoin at an admission boundary via a
      // fresh-epoch state transfer. All of it is coordinator-owned — the
      // workers only ever see the per-slot pre-marks.
      stream_dead_.assign(failed_.begin(), failed_.end());
      stream_down_.clear();
      stream_generation_ = 0;
      stream_repairs_ = 0;
      stream_membership_dirty_ = false;
    }
    for (std::size_t v = 0; v < total; ++v) {
      fifo_[v].clear();
      outbox_[v].clear();
      timers_[v].clear();
      core_[v] = RankCore{};
      dropped_[v] = 0;
      delayed_stat_[v] = 0;
      duped_[v] = 0;
    }
    for (Shard& shard : shards_) {
      shard.inbox.clear();
      shard.drain.clear();
      for (auto& staged : shard.staged) staged.clear();
      shard.delayed.clear();
      shard.run_queue.clear();
      shard.run_head = 0;
      shard.timer_watch.clear();
      shard.crash_watch.clear();
      for (std::atomic<std::uint64_t>& word : shard.mail_mask) {
        word.store(0, std::memory_order_relaxed);
      }
      shard.slot_staged.assign(static_cast<std::size_t>(window_), -1);
      shard.slot_seeded.assign(static_cast<std::size_t>(window_), -1);
      shard.slot_sealed.assign(static_cast<std::size_t>(window_), -1);
    }
    for (SpscRing& ring : rings_) ring.clear();
    stream_done_.store(false, std::memory_order_relaxed);
    timed_out_.store(false, std::memory_order_relaxed);
    correction_started_.store(false, std::memory_order_relaxed);
    started_.store(false, std::memory_order_release);
  }

  /// kStaged → kActive: the coordinator owns the slot here — every shard
  /// has acked the staging reset, no worker touches the slot's rank state
  /// until the kActive release-store publishes everything written below.
  void begin_stream_epoch(std::size_t w, StreamSlot& slot, const ProtocolFactory& factory) {
    slot.protocol = factory();
    slot.begin_ns = now();
    slot.deadline_ns = stream_timeout_ns_ > 0 ? slot.begin_ns + stream_timeout_ns_ : 0;
    slot.rejoined = 0;
    std::int32_t dead_count = 0;
    if (repair_) {
      // Admission-boundary repair: revive ranks whose schedule came due (a
      // fresh-epoch state transfer — the new protocol instance carries the
      // epoch's full state, nothing to replay), then pre-mark the still-dead
      // ranks as corpses of this slot. Epochs already in flight keep the
      // membership they were admitted with.
      bool changed = stream_membership_dirty_;
      stream_membership_dirty_ = false;
      std::size_t keep = 0;
      for (const StreamDown& down : stream_down_) {
        if (slot.begin_ns >= down.revive_at_ns) {
          stream_dead_[static_cast<std::size_t>(down.rank)] = 0;
          ++slot.rejoined;
          changed = true;
        } else {
          stream_down_[keep++] = down;
        }
      }
      stream_down_.resize(keep);
      if (changed) {
        stream_generation_ = (stream_generation_ + 1) & 0xFF;
        ++stream_repairs_;
      }
      for (Rank r = 0; r < num_procs_; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        if (failed_[ri] || !stream_dead_[ri]) continue;
        const std::size_t v = vindex(w, r);
        core_[v].dead_at_start = 1;
        core_[v].crashed = 1;
        core_[v].completed = 1;
        core_[v].crash_at_ns = -1;
        ++dead_count;
      }
    }
    slot.tag = Envelope::make_tag(slot.epoch, stream_generation_);
    if (crash_active_) {
      for (Rank r = 0; r < num_procs_; ++r) {
        const std::size_t v = vindex(w, r);
        if (failed_[static_cast<std::size_t>(r)] || core_[v].dead_at_start) continue;
        const std::int64_t at = chaos_->crash_ns(slot.epoch, r);
        core_[v].crash_at_ns = at >= 0 ? slot.begin_ns + at : -1;
        core_[v].crash_budget = chaos_->crash_send_budget(r);
      }
    }
    slot.remaining.store(live_count_ - dead_count, std::memory_order_relaxed);
    slot.protocol->begin(*slot.context);
    slot.state.store(kSlotActive, std::memory_order_release);
    kick_all_shards();
  }

  /// kDone → caller frees: all shards acked the seal, so the seal-ack
  /// chain's acq_rel fetch_adds give the coordinator a happens-after edge
  /// over every worker write to this slot's slice.
  void collect_stream_epoch(std::size_t w, StreamEpoch& rec) {
    StreamSlot& slot = slots_[w];
    rec.epoch = slot.epoch;
    rec.scheduled_ns = slot.scheduled_ns;
    rec.admitted_ns = slot.admitted_ns;
    rec.begin_ns = slot.begin_ns;
    rec.retire_ns = slot.retire_ns.load(std::memory_order_relaxed);
    rec.timed_out = slot.timed_out.load(std::memory_order_relaxed);
    rec.rejoined = slot.rejoined;
    if (stream_keep_rank_state_) {
      rec.rank_state.resize(static_cast<std::size_t>(num_procs_));
    }
    for (Rank r = 0; r < num_procs_; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      if (failed_[ri]) {
        if (stream_keep_rank_state_) rec.rank_state[ri] = RankEnd::kFailedAtStart;
        continue;
      }
      const std::size_t v = vindex(w, r);
      if (repair_ && core_[v].dead_at_start) {
        // Pre-marked corpse: dead before this epoch was admitted — not a
        // survivor, not a fresh crash.
        ++rec.dead_at_start;
        if (stream_keep_rank_state_) rec.rank_state[ri] = RankEnd::kFailedAtStart;
        continue;
      }
      rec.messages += core_[v].sends;
      if (crash_active_ && core_[v].crashed) {
        ++rec.crashed;
        if (stream_keep_rank_state_) rec.rank_state[ri] = RankEnd::kCrashed;
        if (repair_ && !stream_dead_[ri]) {
          // Persist the death and draw its revive schedule, keyed by the
          // epoch the rank crashed in (the ChaosPlan determinism contract).
          // Schedules that never fire are not tracked: the rank simply
          // stays in stream_dead_.
          stream_dead_[ri] = 1;
          stream_membership_dirty_ = true;
          const std::int64_t delay = chaos_->revive_after_ns(rec.epoch, r);
          if (delay >= 0) {
            stream_down_.push_back(StreamDown{r, now() + delay});
          }
        }
        continue;
      }
      if (!core_[v].colored) {
        ++rec.uncolored;
        if (stream_keep_rank_state_) rec.rank_state[ri] = RankEnd::kUncolored;
      } else if (stream_keep_rank_state_) {
        rec.rank_state[ri] = RankEnd::kColored;
      }
    }
  }

  /// Drops list entries belonging to window slot `w` (their dedup flags
  /// were just reset by the staging pass).
  void purge_slot_watch(std::vector<Rank>& list, std::size_t w) {
    std::size_t keep = 0;
    for (const Rank v : list) {
      if (vslot(static_cast<std::size_t>(v)) != w) list[keep++] = v;
    }
    list.resize(keep);
  }

  /// kStaging: this shard resets its own slice of the slot — the fifos may
  /// hold stale mail only the owner may touch — then acks. The last ack
  /// hands the slot to the coordinator (kStaged).
  void stream_stage_slice(Shard& shard, std::size_t w, StreamSlot& slot) {
    shard.slot_staged[w] = slot.epoch;
    for (Rank r = shard.lo; r < shard.hi; ++r) {
      const std::size_t v = vindex(w, r);
      fifo_[v].clear();
      outbox_[v].clear();
      timers_[v].clear();
      core_[v] = RankCore{};
      if (link_active_) {
        dropped_[v] = 0;
        delayed_stat_[v] = 0;
        duped_[v] = 0;
      }
    }
    purge_slot_watch(shard.timer_watch, w);
    purge_slot_watch(shard.crash_watch, w);
    if (slot.stage_acks.fetch_add(1, std::memory_order_acq_rel) + 1 == shards_.size()) {
      slot.state.store(kSlotStaged, std::memory_order_release);
      coordinator_bell_.notify();
    }
  }

  /// First kActive sighting: arm the run queue and watch lists for this
  /// shard's slice — begin()-time outboxes, timers and crash schedules must
  /// be noticed even if no mail ever arrives for a rank.
  void stream_seed_slice(Shard& shard, std::size_t w, StreamSlot&) {
    shard.slot_seeded[w] = shard.slot_staged[w];  // == slot.epoch, raceless
    for (const Rank r : shard.live_ranks) {
      const std::size_t v = vindex(w, r);
      activate(shard, static_cast<Rank>(v));
      if (!timers_[v].empty() && !core_[v].timer_watched) {
        core_[v].timer_watched = 1;
        shard.timer_watch.push_back(static_cast<Rank>(v));
      }
      if (crash_active_ && core_[v].crash_at_ns >= 0) {
        shard.crash_watch.push_back(static_cast<Rank>(v));
      }
    }
  }

  /// Per-pass slot service: stage resets, seed fresh actives, ack seals.
  /// Runs before the step loop so stale run-queue entries of a slot being
  /// restaged are popped only after its state says so.
  bool stream_service_slots(Shard& shard) {
    bool any = false;
    for (std::size_t w = 0; w < slots_.size(); ++w) {
      StreamSlot& slot = slots_[w];
      const std::uint32_t state = slot.state.load(std::memory_order_acquire);
      // Only the kSlotStaging branch may read slot.epoch: the admission
      // write happens-before the kSlotStaging release store, and the next
      // admission write needs this shard's seal ack first. The later
      // branches compare against shard.slot_staged[w] — this shard's own
      // durable record of the staged epoch (staging runs on every shard
      // before launch) — because a pass that observes kSlotSealing *after*
      // this shard already acked is unordered against the coordinator
      // re-admitting the slot, so reading slot.epoch there would race.
      if (state == kSlotStaging && shard.slot_staged[w] != slot.epoch) {
        stream_stage_slice(shard, w, slot);
        any = true;
      } else if (state == kSlotActive &&
                 shard.slot_seeded[w] != shard.slot_staged[w]) {
        stream_seed_slice(shard, w, slot);
        any = true;
      } else if (state == kSlotSealing &&
                 shard.slot_sealed[w] != shard.slot_staged[w]) {
        // Ack point: this shard runs no further callbacks for this slot's
        // epoch (every callback site re-checks the state first).
        shard.slot_sealed[w] = shard.slot_staged[w];
        if (slot.seal_acks.fetch_add(1, std::memory_order_acq_rel) + 1 == shards_.size()) {
          slot.state.store(kSlotDone, std::memory_order_release);
          coordinator_bell_.notify();
        }
        any = true;
      }
    }
    return any;
  }

  /// Completion credit for one live virtual rank (completed or crashed).
  /// The last credit retires the epoch: first-writer CAS on retire_ns, then
  /// the kActive → kSealing CAS — which can lose only to the coordinator's
  /// deadline scan, and then sealing is already under way.
  void stream_credit_completion(StreamSlot& slot) {
    if (slot.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::int64_t none = -1;
      slot.retire_ns.compare_exchange_strong(none, now(), std::memory_order_acq_rel,
                                             std::memory_order_relaxed);
      std::uint32_t expected = kSlotActive;
      if (slot.state.compare_exchange_strong(expected, kSlotSealing,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
        kick_all_shards();
        coordinator_bell_.notify();
      }
    }
  }

  void stream_crash_rank(std::size_t v, StreamSlot& slot) {
    core_[v].crashed = 1;
    outbox_[v].clear();
    timers_[v].clear();
    fifo_[v].clear();
    if (!core_[v].completed) {
      core_[v].completed = 1;
      stream_credit_completion(slot);
    }
  }

  /// Delivery keyed by the envelope's epoch tag: slot = epoch mod W, so a
  /// late envelope of a retired epoch lands in the reused slot's fifo and
  /// dies at the consumption-time epoch filter.
  void stream_deliver(std::size_t s, Shard& shard, const Envelope& envelope) {
    const auto dst = static_cast<std::size_t>(envelope.msg.dst);
    if (failed_[dst]) return;
    const std::size_t dest_shard = shard_of(dst);
    if (dest_shard == s) {
      const std::size_t v =
          vindex(slot_of_epoch(envelope.epoch()), envelope.msg.dst);
      fifo_[v].push(envelope);
      activate(shard, static_cast<Rank>(v));
    } else {
      shard.staged[dest_shard].push_back(envelope);
    }
  }

  void stream_deliver_chaos(std::size_t s, Shard& shard, std::size_t v,
                            std::int64_t epoch, const Envelope& envelope,
                            sim::Time pass_now) {
    const ChaosPlan::Verdict verdict =
        chaos_->classify(epoch, envelope.msg.src, core_[v].sends);
    if (verdict.drop) {
      ++dropped_[v];
      return;
    }
    if (verdict.delay_ns > 0) {
      ++delayed_stat_[v];
      shard.delayed.push_back(Delayed{envelope, pass_now + verdict.delay_ns});
      return;
    }
    stream_deliver(s, shard, envelope);
    if (verdict.duplicate) {
      ++duped_[v];
      stream_deliver(s, shard, envelope);
    }
  }

  bool stream_release_delayed(std::size_t s, Shard& shard, sim::Time pass_now) {
    bool any = false;
    std::size_t keep = 0;
    for (Delayed& d : shard.delayed) {
      if (d.release_ns <= pass_now) {
        any = true;
        stream_deliver(s, shard, d.envelope);
      } else {
        shard.delayed[keep++] = d;
      }
    }
    shard.delayed.resize(keep);
    return any;
  }

  bool stream_drain_cross_shard(std::size_t s, Shard& shard) {
    const auto land = [&](const Envelope& envelope) {
      const std::size_t v =
          vindex(slot_of_epoch(envelope.epoch()), envelope.msg.dst);
      fifo_[v].push(envelope);
      activate(shard, static_cast<Rank>(v));
    };
    if (use_mesh_) {
      const std::size_t num_shards = shards_.size();
      std::size_t claimed = 0;
      for (std::size_t word = 0; word < shard.mail_mask.size(); ++word) {
        if (shard.mail_mask[word].load(std::memory_order_relaxed) == 0) continue;
        std::uint64_t bits = shard.mail_mask[word].exchange(0, std::memory_order_acquire);
        while (bits != 0) {
          const std::size_t from =
              (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          claimed += rings_[from * num_shards + s].consume_all(land);
        }
      }
      return claimed > 0;
    }
    shard.inbox.drain_into(shard.drain);
    if (shard.drain.empty()) return false;
    for (const Envelope& envelope : shard.drain) land(envelope);
    shard.drain.clear();
    return true;
  }

  bool stream_fire_due_timers(StreamSlot& slot, Rank me, std::vector<Timer>& timers,
                              sim::Time pass_now) {
    bool fired = false;
    for (std::size_t i = 0; i < timers.size(); ++i) {
      if (!timers[i].fired && timers[i].when <= pass_now) {
        timers[i].fired = true;
        fired = true;
        slot.protocol->on_timer(*slot.context, me, timers[i].id);
      }
    }
    return fired;
  }

  bool stream_scan_timer_watch(Shard& shard, sim::Time pass_now) {
    bool any = false;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < shard.timer_watch.size(); ++i) {
      const Rank vr = shard.timer_watch[i];
      const auto v = static_cast<std::size_t>(vr);
      StreamSlot& slot = slots_[vslot(v)];
      if (slot.state.load(std::memory_order_acquire) != kSlotActive ||
          (crash_active_ && core_[v].crashed)) {
        core_[v].timer_watched = 0;  // retired/sealed slot: entry is stale
        continue;
      }
      auto& timers = timers_[v];
      if (stream_fire_due_timers(slot, vrank(v), timers, pass_now)) {
        any = true;
        activate(shard, vr);
      }
      bool pending = false;
      for (const Timer& timer : timers) {
        if (!timer.fired) {
          pending = true;
          break;
        }
      }
      if (pending) {
        shard.timer_watch[keep++] = vr;
      } else {
        core_[v].timer_watched = 0;
      }
    }
    shard.timer_watch.resize(keep);
    return any;
  }

  bool stream_scan_crash_watch(Shard& shard, sim::Time pass_now) {
    bool any = false;
    std::size_t keep = 0;
    for (const Rank vr : shard.crash_watch) {
      const auto v = static_cast<std::size_t>(vr);
      StreamSlot& slot = slots_[vslot(v)];
      if (slot.state.load(std::memory_order_acquire) != kSlotActive) continue;
      if (core_[v].crashed) continue;
      if (pass_now >= core_[v].crash_at_ns) {
        stream_crash_rank(v, slot);
        any = true;
        continue;
      }
      shard.crash_watch[keep++] = vr;
    }
    shard.crash_watch.resize(keep);
    return any;
  }

  /// step_rank for a virtual rank: identical structure, but protocol,
  /// context, epoch filter and completion countdown come from the slot.
  bool stream_step_rank(std::size_t s, Shard& shard, std::size_t v, StreamSlot& slot,
                        sim::Time pass_now) {
    const Rank me = vrank(v);
    bool progress = false;

    if (crash_active_) {
      if (core_[v].crashed) {
        Envelope discard;
        while (fifo_[v].pop(discard)) {
        }
        return false;
      }
      if (core_[v].crash_at_ns >= 0 && pass_now >= core_[v].crash_at_ns) {
        stream_crash_rank(v, slot);
        return true;
      }
    }

    const std::int32_t etag = slot.tag;
    LocalFifo& fifo = fifo_[v];
    Envelope envelope;
    std::size_t received = 0;
    while (received < kMaxStepReceives && fifo.pop(envelope)) {
      progress = true;
      ++received;
      if (envelope.tag() == etag) {
        slot.protocol->on_receive(*slot.context, me, envelope.msg);
      }
    }
    auto& outbox = outbox_[v];
    if (!outbox.empty()) {
      progress = true;
      const std::size_t limit = outbox.size() + kMaxChainedSends;
      std::size_t i = 0;
      for (; i < outbox.size() && i < limit; ++i) {
        if (crash_active_ && core_[v].crash_budget >= 0 &&
            core_[v].sends >= core_[v].crash_budget) {
          stream_crash_rank(v, slot);
          return true;
        }
        ++core_[v].sends;
        if (link_active_) {
          stream_deliver_chaos(s, shard, v, slot.epoch, outbox[i], pass_now);
        } else {
          stream_deliver(s, shard, outbox[i]);
        }
        const sim::Message sent = outbox[i].msg;
        slot.protocol->on_sent(*slot.context, me, sent);
      }
      if (i == outbox.size()) {
        outbox.clear();
      } else {
        outbox.erase(outbox.begin(), outbox.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }

    auto& timers = timers_[v];
    if (!timers.empty()) {
      progress |= stream_fire_due_timers(slot, me, timers, pass_now);
      // Callback-time set_timer skips watch registration (see
      // StreamContext::set_timer); cover it here on the owner thread.
      if (!core_[v].timer_watched) {
        for (const Timer& timer : timers) {
          if (!timer.fired) {
            core_[v].timer_watched = 1;
            shard.timer_watch.push_back(static_cast<Rank>(v));
            break;
          }
        }
      }
    }

    if (!core_[v].completed && core_[v].colored && outbox.empty()) {
      core_[v].completed = 1;
      core_[v].completion_ns = now();
      stream_credit_completion(slot);
    }
    return progress;
  }

  /// One worker's whole stream: scheduling passes — slot service, drains,
  /// watch scans, bounded stepping of the active set, staged flushes — until
  /// the coordinator raises stream_done_. Unlike shard_epoch there is no
  /// per-epoch barrier: slot handshakes are the only synchronization.
  void stream_shard_loop(std::size_t s) {
    Shard& shard = shards_[s];
    const std::size_t step_budget = std::max<std::size_t>(
        shard.live_ranks.size() * static_cast<std::size_t>(window_), 1024);
    while (!stream_done_.load(std::memory_order_acquire)) {
      bool progress = stream_service_slots(shard);
      progress |= stream_drain_cross_shard(s, shard);

      const sim::Time pass_now = now();
      if (link_active_ && !shard.delayed.empty()) {
        progress |= stream_release_delayed(s, shard, pass_now);
      }
      if (crash_active_ && !shard.crash_watch.empty()) {
        progress |= stream_scan_crash_watch(shard, pass_now);
      }
      if (!shard.timer_watch.empty()) {
        progress |= stream_scan_timer_watch(shard, pass_now);
      }

      std::size_t stepped = 0;
      while (shard.run_head < shard.run_queue.size() && stepped < step_budget) {
        const Rank vr = shard.run_queue[shard.run_head++];
        const auto v = static_cast<std::size_t>(vr);
        core_[v].queued = 0;
        ++stepped;
        StreamSlot& slot = slots_[vslot(v)];
        // Stale entry (slot sealed, retired, or restaged since queueing):
        // skip without re-arming.
        if (slot.state.load(std::memory_order_acquire) != kSlotActive) continue;
        progress |= stream_step_rank(s, shard, v, slot, pass_now);
        if (!fifo_[v].empty() || !outbox_[v].empty()) activate(shard, vr);
      }
      if (shard.run_head > 0) {
        if (shard.run_head == shard.run_queue.size()) {
          shard.run_queue.clear();
        } else {
          shard.run_queue.erase(
              shard.run_queue.begin(),
              shard.run_queue.begin() + static_cast<std::ptrdiff_t>(shard.run_head));
        }
        shard.run_head = 0;
      }
      progress |= !shard.run_queue.empty();

      progress |= flush_staged(s, shard);

      if (!progress && !stream_done_.load(std::memory_order_acquire)) {
        if (use_mesh_) {
          shard.bell.wait(kIdleWait, [&] { return mesh_has_mail(shard); });
        } else {
          shard.inbox.wait_for_mail(kIdleWait);
        }
      }
    }
  }

  Rank num_procs_;
  const std::vector<char>& failed_;
  /// Current persistent dead set: failed_ plus repair-mode crashes minus
  /// revivals (== failed_ when repair is off). Written only between epochs
  /// (set_membership), read freely by workers — the epoch barrier publishes
  /// the writes. One-shot path only; streams track stream_dead_ instead.
  std::vector<char> dead_;
  Rank live_count_;
  const bool repair_;

  std::size_t chunk_ = 1;        // ranks per shard; shard(r) = r / chunk_
  std::uint64_t chunk_mul_ = 0;  // ceil(2^64 / chunk_); 0 when chunk_ == 1
  std::deque<Shard> shards_;    // deque: Shard holds a mutex, must not move
  /// SPSC mesh, producer-major: rings_[from * S + to]. Deque for the same
  /// reason as shards_ — the rings hold atomics and must not move.
  std::deque<SpscRing> rings_;

  std::vector<LocalFifo> fifo_;
  std::vector<std::vector<Envelope>> outbox_;
  std::vector<std::vector<Timer>> timers_;
  /// Per-rank hot scalars (see RankCore). Entries are only read/written by
  /// the owning shard during an epoch.
  std::vector<RankCore> core_;

  // Chaos state. crash_active_/link_active_ are latched in reset_epoch
  // (before the start barrier) so the no-chaos hot path costs two
  // branch-on-false per pass; the link-stat arrays are cold relative to
  // RankCore and stay out of its cache line.
  const ChaosPlan* chaos_ = nullptr;
  bool crash_active_ = false;
  bool link_active_ = false;
  std::vector<std::int64_t> dropped_;
  std::vector<std::int64_t> delayed_stat_;
  std::vector<std::int64_t> duped_;

  bool use_mesh_ = true;
  bool pin_threads_ = false;

  sim::Protocol* protocol_ = nullptr;
  std::int64_t epoch_ = 0;
  std::int32_t generation_ = 0;
  std::int32_t tag_ = 0;  ///< Envelope::make_tag(epoch_, generation_)
  std::int64_t timeout_ns_ = 0;
  Clock::time_point epoch_start_{};
  std::atomic<bool> started_{false};
  std::atomic<bool> epoch_done_{false};
  std::atomic<bool> timed_out_{false};
  std::atomic<bool> correction_started_{false};
  std::atomic<std::int32_t> completed_count_{0};

  // Streaming state (PR8). stream_mode_ is plain: written by the
  // coordinator before the start barrier, read by workers after it.
  bool stream_mode_ = false;
  std::int32_t window_ = 0;
  std::int64_t stream_timeout_ns_ = 0;
  bool stream_keep_rank_state_ = false;
  std::deque<StreamSlot> slots_;  // deque: slots hold atomics, must not move
  std::atomic<bool> stream_done_{false};
  Doorbell coordinator_bell_;

  /// Stream-side membership (repair mode, coordinator-owned — workers only
  /// ever read the per-slot pre-marks published by the kActive release).
  struct StreamDown {
    Rank rank;
    std::int64_t revive_at_ns;  ///< absolute stream time the revive is due
  };
  std::vector<char> stream_dead_;
  std::vector<StreamDown> stream_down_;
  std::int32_t stream_generation_ = 0;
  std::int64_t stream_repairs_ = 0;
  bool stream_membership_dirty_ = false;

  Context context_;
  std::barrier<> epoch_barrier_;  // shards + coordinator, twice per epoch
  std::atomic<bool> shutdown_{false};
  std::vector<std::jthread> threads_;
};

/// Coordinator side of a stream: an admission/collection loop replaces the
/// per-epoch barrier bracket. Epoch base+i always runs in window slot
/// (base+i) mod W, matching the delivery-side slot_of_epoch map.
StreamResult ShardedImpl::run_stream(const ProtocolFactory& factory,
                                     const StreamOptions& options,
                                     std::int64_t timeout_ns) {
  prepare_stream(options, timeout_ns);
  stream_mode_ = true;
  start_clock();
  epoch_barrier_.arrive_and_wait();  // workers enter stream_shard_loop

  StreamResult result;
  result.epochs.resize(static_cast<std::size_t>(options.epochs));
  const std::int64_t base_epoch = epoch_ + 1;
  const double interval_ns = options.rate > 0.0 ? 1e9 / options.rate : 0.0;
  std::int64_t admitted = 0;
  std::int64_t collected = 0;
  const Clock::time_point wall_start = Clock::now();

  while (collected < options.epochs) {
    bool progress = false;

    // Collect retired epochs (any slot, any completion order).
    for (std::size_t w = 0; w < slots_.size(); ++w) {
      StreamSlot& slot = slots_[w];
      if (slot.state.load(std::memory_order_acquire) != kSlotDone) continue;
      collect_stream_epoch(
          w, result.epochs[static_cast<std::size_t>(slot.epoch - base_epoch)]);
      slot.protocol.reset();
      slot.state.store(kSlotFree, std::memory_order_release);
      ++collected;
      progress = true;
    }

    // Deadline scan: force-retire stuck epochs so the stream terminates.
    if (stream_timeout_ns_ > 0) {
      const sim::Time scan_now = now();
      for (std::size_t w = 0; w < slots_.size(); ++w) {
        StreamSlot& slot = slots_[w];
        if (slot.state.load(std::memory_order_acquire) != kSlotActive) continue;
        if (scan_now <= slot.deadline_ns) continue;
        std::uint32_t expected = kSlotActive;
        if (slot.state.compare_exchange_strong(expected, kSlotSealing,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
          // Won against the last-completer CAS: this retire is a timeout.
          slot.timed_out.store(true, std::memory_order_relaxed);
          std::int64_t none = -1;
          slot.retire_ns.compare_exchange_strong(none, scan_now,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed);
          kick_all_shards();
          progress = true;
        }
      }
    }

    // Launch any slot whose staging reset all shards have acked.
    for (std::size_t w = 0; w < slots_.size(); ++w) {
      StreamSlot& slot = slots_[w];
      if (slot.state.load(std::memory_order_acquire) != kSlotStaged) continue;
      begin_stream_epoch(w, slot, factory);
      progress = true;
    }

    // Admit the next epoch once its arrival is due and its slot is free.
    // A full window *blocks* admission (epochs queue, never drop) — that
    // queueing delay is exactly what open-loop sojourn times surface.
    if (admitted < options.epochs) {
      const std::int64_t epoch = base_epoch + admitted;
      StreamSlot& slot = slots_[slot_of_epoch(epoch)];
      const std::int64_t due_ns =
          interval_ns > 0.0
              ? static_cast<std::int64_t>(static_cast<double>(admitted) * interval_ns)
              : 0;
      if ((interval_ns == 0.0 || now() >= due_ns) &&
          slot.state.load(std::memory_order_acquire) == kSlotFree) {
        slot.epoch = epoch;
        slot.admitted_ns = now();
        slot.scheduled_ns = interval_ns > 0.0 ? due_ns : slot.admitted_ns;
        slot.stage_acks.store(0, std::memory_order_relaxed);
        slot.seal_acks.store(0, std::memory_order_relaxed);
        slot.remaining.store(0, std::memory_order_relaxed);
        slot.retire_ns.store(-1, std::memory_order_relaxed);
        slot.timed_out.store(false, std::memory_order_relaxed);
        slot.state.store(kSlotStaging, std::memory_order_release);
        kick_all_shards();
        ++admitted;
        progress = true;
      }
    }

    if (!progress) {
      // Bounded park: a missed notify costs at most kIdleWait, same
      // contract the worker bells rely on.
      coordinator_bell_.wait(kIdleWait, [&] {
        for (const StreamSlot& slot : slots_) {
          const std::uint32_t state = slot.state.load(std::memory_order_acquire);
          if (state == kSlotDone || state == kSlotStaged) return true;
        }
        return false;
      });
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  result.repairs = stream_repairs_;
  epoch_ = base_epoch + options.epochs - 1;

  stream_done_.store(true, std::memory_order_release);
  kick_all_shards();
  epoch_barrier_.arrive_and_wait();  // workers leave stream_shard_loop
  stream_mode_ = false;
  return result;
}

}  // namespace

std::unique_ptr<Engine::Impl> make_sharded(Rank num_procs,
                                           const std::vector<char>& failed,
                                           Rank live_count,
                                           const EngineOptions& options) {
  return std::make_unique<ShardedImpl>(num_procs, failed, live_count, options);
}

}  // namespace ct::rt::detail

// Sharded M:N executor (DESIGN.md §4c): N worker threads, each owning a
// contiguous slice of ranks whose unchanged sim::Protocol state machines it
// steps cooperatively. Intra-shard delivery lands in per-rank LocalFifo ring
// buffers (no locks — single-threaded within a shard); cross-shard delivery
// is staged per destination during a scheduling pass and flushed with one
// lock acquisition per destination shard into its bounded MPSC ShardInbox,
// so lock traffic is O(shards²) per pass instead of O(messages).
//
// Concurrency contract (same as the legacy executor relies on, now spelled
// out): during an epoch, protocol callbacks for rank `me` may only call
// Context::send/set_timer/mark_colored/set_rank_data for `me` itself —
// cross-rank Context writes are legal only from Protocol::begin(), which
// the coordinator runs before workers enter the epoch. Every protocol in
// this repo satisfies this (tests/rt_stress_test.cpp checks it under TSan).

#include <atomic>
#include <barrier>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "rt/engine_impl.hpp"
#include "rt/shard_queue.hpp"

namespace ct::rt::detail {

namespace {

using topo::Rank;

constexpr std::chrono::microseconds kIdleWait{50};

class ShardedImpl final : public Engine::Impl {
 public:
  ShardedImpl(Rank num_procs, const std::vector<char>& failed, Rank live_count,
              const EngineOptions& options)
      : num_procs_(num_procs),
        failed_(failed),
        live_count_(live_count),
        fifo_(static_cast<std::size_t>(num_procs)),
        outbox_(static_cast<std::size_t>(num_procs)),
        timers_(static_cast<std::size_t>(num_procs)),
        colored_(static_cast<std::size_t>(num_procs), 0),
        completed_(static_cast<std::size_t>(num_procs), 0),
        sends_(static_cast<std::size_t>(num_procs), 0),
        rank_data_(static_cast<std::size_t>(num_procs), 0),
        completion_ns_(static_cast<std::size_t>(num_procs), -1),
        context_(*this),
        epoch_barrier_(build_shards(options) + 1) {
    threads_.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      threads_.emplace_back([this, s] { worker_main(s); });
    }
  }

  ~ShardedImpl() override {
    shutdown_.store(true, std::memory_order_release);
    epoch_barrier_.arrive_and_wait();  // release workers into the shutdown check
    threads_.clear();                  // join
  }

  EpochResult run_epoch(sim::Protocol& protocol, std::int64_t timeout_ns) override {
    reset_epoch(&protocol, timeout_ns);
    protocol.begin(context_);
    start_clock();
    epoch_barrier_.arrive_and_wait();  // epoch start
    epoch_barrier_.arrive_and_wait();  // epoch end
    return collect();
  }

  std::size_t worker_threads() const noexcept override { return threads_.size(); }

 private:
  struct Timer {
    sim::Time when;
    std::int64_t id;
    bool fired = false;
  };

  /// Per-worker state. The rank slice [lo, hi) is contiguous so the rank →
  /// shard map is one division; live_ranks caches the slice minus failures.
  struct Shard {
    Shard(Rank lo_in, Rank hi_in, std::size_t inbox_capacity, std::size_t num_shards)
        : lo(lo_in), hi(hi_in), inbox(inbox_capacity), staged(num_shards) {}

    Rank lo;
    Rank hi;
    std::vector<Rank> live_ranks;
    ShardInbox inbox;
    std::vector<Envelope> drain;                 // reusable inbox drain buffer
    std::vector<std::vector<Envelope>> staged;   // outgoing, per destination shard
  };

  // The sim::Context facade handed to protocol callbacks.
  class Context final : public sim::Context {
   public:
    explicit Context(ShardedImpl& impl) : impl_(impl) {}

    sim::Time now() const override { return impl_.now(); }
    Rank num_procs() const override { return impl_.num_procs_; }

    void send(Rank from, Rank to, sim::Tag tag, std::int64_t payload) override {
      // Queued on the sender's outbox; the shard stepping `from` delivers it
      // and then runs the on_sent callback.
      const auto slot = static_cast<std::size_t>(from);
      impl_.outbox_[slot].push_back(
          Envelope{sim::Message{from, to, tag, payload, impl_.rank_data_[slot]},
                   impl_.epoch_});
    }

    void set_rank_data(Rank r, std::int64_t data) override {
      impl_.rank_data_[static_cast<std::size_t>(r)] = data;
    }
    std::int64_t rank_data(Rank r) const override {
      return impl_.rank_data_[static_cast<std::size_t>(r)];
    }
    void set_timer(Rank on, sim::Time when, std::int64_t id) override {
      impl_.timers_[static_cast<std::size_t>(on)].push_back({when, id, false});
    }
    void mark_colored(Rank r) override {
      impl_.colored_[static_cast<std::size_t>(r)] = 1;
    }
    bool is_colored(Rank r) const override {
      return impl_.colored_[static_cast<std::size_t>(r)] != 0;
    }
    void note_correction_start() override {
      impl_.correction_started_.store(true, std::memory_order_relaxed);
    }

   private:
    ShardedImpl& impl_;
  };

  /// Carves [0, P) into contiguous slices of ceil(P / workers) ranks and
  /// returns the shard count (for the barrier's participant total).
  std::ptrdiff_t build_shards(const EngineOptions& options) {
    const auto p = static_cast<std::size_t>(num_procs_);
    std::size_t workers = options.workers > 0
                              ? static_cast<std::size_t>(options.workers)
                              : std::max(1u, std::thread::hardware_concurrency());
    workers = std::min(workers, p);
    chunk_ = (p + workers - 1) / workers;
    const std::size_t num_shards = (p + chunk_ - 1) / chunk_;
    for (std::size_t s = 0; s < num_shards; ++s) {
      const auto lo = static_cast<Rank>(s * chunk_);
      const auto hi = static_cast<Rank>(std::min(p, (s + 1) * chunk_));
      Shard& shard = shards_.emplace_back(lo, hi, options.inbox_capacity, num_shards);
      for (Rank r = lo; r < hi; ++r) {
        if (!failed_[static_cast<std::size_t>(r)]) shard.live_ranks.push_back(r);
      }
    }
    return static_cast<std::ptrdiff_t>(num_shards);
  }

  sim::Time now() const {
    if (!started_.load(std::memory_order_acquire)) return 0;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                epoch_start_)
        .count();
  }

  void reset_epoch(sim::Protocol* protocol, std::int64_t timeout_ns) {
    ++epoch_;
    protocol_ = protocol;
    timeout_ns_ = timeout_ns;
    completed_count_.store(0, std::memory_order_relaxed);
    epoch_done_.store(false, std::memory_order_relaxed);
    timed_out_.store(false, std::memory_order_relaxed);
    correction_started_.store(false, std::memory_order_relaxed);
    started_.store(false, std::memory_order_release);
    for (Rank r = 0; r < num_procs_; ++r) {
      const auto slot = static_cast<std::size_t>(r);
      fifo_[slot].clear();
      outbox_[slot].clear();
      timers_[slot].clear();
      colored_[slot] = 0;
      completed_[slot] = 0;
      sends_[slot] = 0;
      rank_data_[slot] = 0;
      completion_ns_[slot] = -1;
    }
    for (Shard& shard : shards_) {
      shard.inbox.clear();
      shard.drain.clear();
      for (auto& staged : shard.staged) staged.clear();
    }
  }

  void start_clock() {
    epoch_start_ = Clock::now();
    started_.store(true, std::memory_order_release);
  }

  EpochResult collect() const {
    EpochResult result;
    result.timed_out = timed_out_.load(std::memory_order_relaxed);
    for (Rank r = 0; r < num_procs_; ++r) {
      const auto slot = static_cast<std::size_t>(r);
      if (failed_[slot]) continue;
      result.total_messages += sends_[slot];
      result.rank_completion_ns.push_back(completion_ns_[slot]);
      result.completion_ns = std::max(result.completion_ns, completion_ns_[slot]);
      if (!colored_[slot]) ++result.uncolored_live;
    }
    return result;
  }

  void worker_main(std::size_t s) {
    for (;;) {
      epoch_barrier_.arrive_and_wait();  // epoch start (or shutdown)
      if (shutdown_.load(std::memory_order_acquire)) return;
      shard_epoch(s);
      epoch_barrier_.arrive_and_wait();  // epoch end
    }
  }

  /// One worker's epoch: scheduling passes until every live rank completed
  /// (or the epoch timed out). Each pass batch-drains the cross-shard
  /// inbox, steps every owned live rank, and flushes staged cross-shard
  /// sends; an idle pass parks on the inbox condvar for kIdleWait.
  void shard_epoch(std::size_t s) {
    Shard& shard = shards_[s];
    if (shard.live_ranks.empty()) {
      // Entirely-failed slice (possible whenever workers > live ranks): it
      // neither steps protocol state nor receives traffic — deliver() drops
      // failed destinations at the source — so park in long slices instead
      // of spin-polling. finish_epoch() kicks every inbox, so the end-of-
      // epoch barrier is never kept waiting on this shard.
      while (!epoch_done_.load(std::memory_order_acquire)) {
        shard.inbox.wait_for_mail(std::chrono::milliseconds(5));
      }
      return;
    }
    while (!epoch_done_.load(std::memory_order_acquire)) {
      bool progress = false;

      shard.inbox.drain_into(shard.drain);
      if (!shard.drain.empty()) {
        progress = true;
        for (Envelope& envelope : shard.drain) {
          fifo_[static_cast<std::size_t>(envelope.msg.dst)].push(std::move(envelope));
        }
        shard.drain.clear();
      }

      const sim::Time pass_now = now();
      for (Rank r : shard.live_ranks) progress |= step_rank(s, shard, r, pass_now);

      progress |= flush_staged(shard);

      if (timeout_ns_ > 0 && pass_now > timeout_ns_ &&
          !epoch_done_.load(std::memory_order_acquire)) {
        timed_out_.store(true, std::memory_order_relaxed);
        finish_epoch();
        break;
      }

      if (!progress && !epoch_done_.load(std::memory_order_acquire)) {
        shard.inbox.wait_for_mail(kIdleWait);
      }
    }
  }

  /// Steps one rank: pending receives, then the send queue (on_sent may
  /// extend it; the index loop keeps draining), then due timers, then the
  /// completion check. Completed ranks keep being stepped — remote
  /// protocols may still need their replies — until the epoch ends.
  bool step_rank(std::size_t s, Shard& shard, Rank r, sim::Time pass_now) {
    const auto slot = static_cast<std::size_t>(r);
    bool progress = false;

    LocalFifo& fifo = fifo_[slot];
    Envelope envelope;
    while (fifo.pop(envelope)) {
      progress = true;
      if (envelope.epoch == epoch_) protocol_->on_receive(context_, r, envelope.msg);
    }

    auto& outbox = outbox_[slot];
    if (!outbox.empty()) {
      progress = true;
      for (std::size_t i = 0; i < outbox.size(); ++i) {
        const Envelope out = outbox[i];  // copy: on_sent may grow the outbox
        ++sends_[slot];
        deliver(s, shard, out);
        protocol_->on_sent(context_, r, out.msg);
      }
      outbox.clear();
    }

    auto& timers = timers_[slot];
    if (!timers.empty()) progress |= fire_due_timers(r, timers, pass_now);

    if (!completed_[slot] && colored_[slot] && outbox.empty()) {
      completed_[slot] = 1;
      completion_ns_[slot] = now();
      if (completed_count_.fetch_add(1, std::memory_order_acq_rel) + 1 == live_count_) {
        finish_epoch();
      }
    }
    return progress;
  }

  /// Same-shard destinations go straight into the rank's LocalFifo; other
  /// shards' traffic is staged per destination and flushed at pass end.
  /// Failed destinations are dropped, indistinguishable from success.
  void deliver(std::size_t s, Shard& shard, const Envelope& envelope) {
    const auto dst = static_cast<std::size_t>(envelope.msg.dst);
    if (failed_[dst]) return;
    const std::size_t dest_shard = dst / chunk_;
    if (dest_shard == s) {
      fifo_[dst].push(envelope);
    } else {
      shard.staged[dest_shard].push_back(envelope);
    }
  }

  /// One push_batch (== one lock) per destination shard with staged traffic.
  /// A full inbox accepts a prefix; the leftover stays staged in order and
  /// is retried next pass, preserving per-sender FIFO.
  bool flush_staged(Shard& shard) {
    bool any = false;
    for (std::size_t d = 0; d < shards_.size(); ++d) {
      std::vector<Envelope>& staged = shard.staged[d];
      if (staged.empty()) continue;
      const std::size_t accepted = shards_[d].inbox.push_batch(staged);
      if (accepted == staged.size()) {
        staged.clear();
      } else if (accepted > 0) {
        staged.erase(staged.begin(), staged.begin() + static_cast<std::ptrdiff_t>(accepted));
      }
      any |= accepted > 0;
    }
    return any;
  }

  bool fire_due_timers(Rank r, std::vector<Timer>& timers, sim::Time pass_now) {
    bool fired = false;
    for (auto& timer : timers) {
      if (!timer.fired && timer.when <= pass_now) {
        timer.fired = true;
        fired = true;
        protocol_->on_timer(context_, r, timer.id);
      }
    }
    return fired;
  }

  void finish_epoch() {
    epoch_done_.store(true, std::memory_order_release);
    for (Shard& shard : shards_) shard.inbox.kick();
  }

  Rank num_procs_;
  const std::vector<char>& failed_;
  Rank live_count_;

  std::size_t chunk_ = 1;       // ranks per shard; shard(r) = r / chunk_
  std::deque<Shard> shards_;    // deque: Shard holds a mutex, must not move

  std::vector<LocalFifo> fifo_;
  std::vector<std::vector<Envelope>> outbox_;
  std::vector<std::vector<Timer>> timers_;
  std::vector<char> colored_;
  std::vector<char> completed_;
  std::vector<std::int64_t> sends_;
  std::vector<std::int64_t> rank_data_;
  std::vector<std::int64_t> completion_ns_;

  sim::Protocol* protocol_ = nullptr;
  std::int64_t epoch_ = 0;
  std::int64_t timeout_ns_ = 0;
  Clock::time_point epoch_start_{};
  std::atomic<bool> started_{false};
  std::atomic<bool> epoch_done_{false};
  std::atomic<bool> timed_out_{false};
  std::atomic<bool> correction_started_{false};
  std::atomic<std::int32_t> completed_count_{0};

  Context context_;
  std::barrier<> epoch_barrier_;  // shards + coordinator, twice per epoch
  std::atomic<bool> shutdown_{false};
  std::vector<std::jthread> threads_;
};

}  // namespace

std::unique_ptr<Engine::Impl> make_sharded(Rank num_procs,
                                           const std::vector<char>& failed,
                                           Rank live_count,
                                           const EngineOptions& options) {
  return std::make_unique<ShardedImpl>(num_procs, failed, live_count, options);
}

}  // namespace ct::rt::detail

#pragma once
// Message-passing runtime — the repo's stand-in for the MPI cluster of §4.4
// (see DESIGN.md §1, §4c). It drives the very same executor-independent
// Protocol state machines as the LogP simulator, in wall-clock time over
// in-process queues. "Failed" ranks get no execution slot; messages
// addressed to them vanish without feedback — the paper's fault emulation
// ("Processes 'failed' during benchmark initialization and stayed as such
// during the whole benchmark run").
//
// Two executor backends, selected by EngineOptions::threading:
//
//  * kSharded (default) — an M:N scheduler: N worker threads (default
//    hardware_concurrency), each owning a contiguous slice of ranks whose
//    state machines it steps cooperatively. Intra-shard delivery is a plain
//    per-rank ring buffer (no locks — single-threaded within a shard);
//    cross-shard delivery batches through a lock-free SPSC ring per ordered
//    shard pair (or, behind EngineOptions::cross_shard, the legacy locked
//    MPSC inbox kept for A/B). Workers only step ranks with pending work —
//    an active-set run queue replaces the full slice scan per pass.
//    This is the path that reaches the paper's 36 864-rank prototype scale.
//
//  * kThreadPerRank — the original executor: one OS thread and one
//    mutex+condvar Mailbox per live rank. Kept for A/B comparison; thrashes
//    past a few hundred ranks on small hosts.
//
// An Engine is persistent: it spawns its threads once and then executes a
// sequence of epochs (benchmark iterations). Within an epoch each rank
// records its local completion time (colored + own sends drained) but keeps
// servicing deliveries — remote protocols may still need its replies —
// until every live rank has completed. Per-epoch message envelopes carry the
// epoch number so leftovers of epoch e are discarded in epoch e+1.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "rt/chaos.hpp"
#include "rt/membership.hpp"
#include "sim/protocol.hpp"
#include "topology/gaps.hpp"

namespace ct::rt {

using Clock = std::chrono::steady_clock;

/// Builds a fresh protocol instance per epoch (harness iterations, stream
/// admissions).
using ProtocolFactory = std::function<std::unique_ptr<sim::Protocol>()>;

/// How a rank ended an epoch — the per-rank last-state of the degradation
/// report.
enum class RankEnd : std::uint8_t {
  kFailedAtStart,  ///< marked failed at Engine construction (no slot at all)
  kColored,        ///< live survivor, received the broadcast
  kUncolored,      ///< live survivor the protocol failed to reach
  kCrashed,        ///< killed mid-epoch by the ChaosPlan
};

/// Outcome of one epoch (one broadcast execution).
struct EpochResult {
  bool timed_out = false;
  /// Wall time from epoch start until the last live rank completed locally.
  std::int64_t completion_ns = 0;
  /// Per-rank local completion times for ranks live at epoch start (ns
  /// since epoch start); -1 for ranks that never completed (timed out or
  /// crashed mid-epoch).
  std::vector<std::int64_t> rank_completion_ns;
  /// Survivors (live, never crashed) that were never colored. With no
  /// chaos this is the old "live ranks never colored" count. Invariant:
  /// an epoch that did not time out has uncolored_live == 0 — completion
  /// requires every survivor colored.
  std::int32_t uncolored_live = 0;
  std::int64_t total_messages = 0;

  // --- chaos / degradation diagnostics (zeros when no ChaosPlan is set) ---
  std::int32_t crashed_mid_epoch = 0;
  std::int64_t messages_dropped = 0;
  std::int64_t messages_delayed = 0;
  std::int64_t messages_duplicated = 0;
  /// Timers set by survivors that never fired before the epoch ended (a
  /// timed-out correction phase leaves these behind).
  std::int32_t timers_pending = 0;
  std::vector<topo::Rank> crashed_ranks;
  std::vector<topo::Rank> uncolored_survivors;
  /// Per-rank last-state, size P (filled for every epoch).
  std::vector<RankEnd> rank_state;
  /// Gap structure of the survivor coloring on the correction ring
  /// (crashed and failed ranks count as uncolored). Populated only for
  /// degraded epochs with at least one colored rank.
  topo::GapStats coloring_gaps;

  /// True when this epoch needed the deadline or left survivors uncolored
  /// — i.e. the result is a degradation report, not a clean measurement.
  bool degraded() const noexcept { return timed_out || uncolored_live > 0; }
};

// --- Streaming broadcast (PR8) ---------------------------------------------
// A stream is a sequence of epochs admitted through a sliding window of W
// concurrently-executing in-flight epochs — the per-epoch barrier bracket of
// run_epoch is replaced by per-epoch completion countdowns, so epoch e+1's
// dissemination overlaps epoch e's correction tail. Only the sharded
// executor supports streams.

struct StreamOptions {
  /// Measured epochs to admit (the whole stream; no separate warmup —
  /// callers wanting warmup run a short throwaway stream first).
  std::int64_t epochs = 64;
  /// Window size W: maximum epochs in flight. 1 = serialized epochs
  /// (admission still follows the arrival process).
  std::int32_t window = 1;
  /// Offered arrival rate in epochs/s. > 0 selects the open-loop mode:
  /// epoch i is *scheduled* at i/rate; if the window is full it queues
  /// (blocks) — epochs are never dropped, so sojourn time (retire −
  /// scheduled) surfaces the queueing delay. 0 = closed loop: each epoch
  /// is scheduled the moment a window slot frees up.
  double rate = 0.0;
  /// Per-epoch deadline, measured from the epoch's begin. A stuck epoch is
  /// force-retired (timed_out) so the stream always terminates. Clamped by
  /// EngineOptions::epoch_deadline like run_epoch's timeout.
  std::chrono::nanoseconds epoch_timeout = std::chrono::seconds(10);
  /// Record per-rank end states per epoch (parity tests); off for
  /// benchmarks — it is W·P extra copying per epoch.
  bool keep_rank_state = false;
};

/// Outcome of one streamed epoch. All times are ns since stream start.
struct StreamEpoch {
  std::int64_t epoch = 0;          ///< engine-wide epoch tag
  std::int64_t scheduled_ns = 0;   ///< arrival per the offered-rate process
  std::int64_t admitted_ns = 0;    ///< when a window slot accepted it
  std::int64_t begin_ns = 0;       ///< when Protocol::begin ran
  std::int64_t retire_ns = 0;      ///< last live rank completed (or deadline)
  bool timed_out = false;
  std::int32_t crashed = 0;        ///< mid-epoch chaos crashes
  std::int32_t uncolored = 0;      ///< live survivors never colored
  std::int64_t messages = 0;
  /// Repair mode only: ranks already dead (persisted crashes) when this
  /// epoch was admitted — excluded from the live set, not survivors and not
  /// counted in `crashed`/`uncolored`.
  std::int32_t dead_at_start = 0;
  /// Repair mode only: revived ranks that rejoined at this admission (each
  /// one a fresh-epoch state transfer; streams carry no replay log).
  std::int32_t rejoined = 0;
  std::vector<RankEnd> rank_state;  ///< filled only with keep_rank_state

  /// Open-loop sojourn: queueing delay + service time.
  std::int64_t sojourn_ns() const noexcept { return retire_ns - scheduled_ns; }
  std::int64_t service_ns() const noexcept { return retire_ns - begin_ns; }
  bool degraded() const noexcept { return timed_out || uncolored > 0; }
};

struct StreamResult {
  std::vector<StreamEpoch> epochs;  ///< in admission order
  double wall_seconds = 0.0;        ///< first admission wait to last retire collection
  /// Repair mode only: admissions at which the membership changed (deaths
  /// persisted and/or ranks revived) and the generation was bumped.
  std::int64_t repairs = 0;
};

/// How ranks map onto OS threads.
enum class Threading {
  kSharded,        ///< M:N — worker shards stepping rank slices (default)
  kThreadPerRank,  ///< legacy 1:1 — kept for A/B comparison
};

/// Cross-shard delivery structure of the sharded executor (DESIGN.md §4f).
enum class CrossShard {
  kSpscMesh,     ///< lock-free SPSC ring per ordered shard pair (default)
  kLockedInbox,  ///< legacy mutex MPSC inbox per shard — kept for A/B
};

struct EngineOptions {
  Threading threading = Threading::kSharded;
  /// Sharded path: worker (= shard) count; <= 0 means hardware_concurrency.
  /// Clamped to the rank count (no empty shards) and to an oversubscription
  /// cap of max(16, 8 × hardware_concurrency()) — past that, extra shards
  /// only grow the S² ring mesh and timeshare a fixed core budget.
  int workers = 0;
  /// Sharded path: cross-shard delivery backend.
  CrossShard cross_shard = CrossShard::kSpscMesh;
  /// Sharded path (kLockedInbox): cross-shard inbox capacity in envelopes,
  /// per shard. Producers stage overflow locally and retry, so this only
  /// bounds memory. Must be >= 1 (the Engine constructor rejects 0).
  std::size_t inbox_capacity = std::size_t{1} << 16;
  /// Sharded path (kSpscMesh): per-ordered-pair ring capacity in envelopes,
  /// rounded up to a power of two. Mesh memory is S² × capacity ×
  /// sizeof(Envelope); backpressure (staged retry) keeps any capacity
  /// correct, so small rings are safe. Must be >= 1 (constructor rejects 0).
  std::size_t mesh_capacity = 1024;
  /// Sharded path: pin worker s to core (s mod hardware_concurrency()).
  /// Best effort (Linux only; silently a no-op elsewhere or on failure).
  /// With contiguous rank slices this keeps a shard's rank state and the
  /// rings it owns on the node that first touches them — the NUMA story is
  /// placement by first touch plus a stable shard→core map.
  bool pin_threads = false;
  /// Hard upper bound on any epoch's wall time; 0 = none. Combined with the
  /// per-call run_epoch timeout (the smaller positive bound wins), so chaos
  /// soaks always terminate: on expiry the engine force-quiesces and the
  /// EpochResult carries the degradation diagnostics instead of hanging.
  std::chrono::nanoseconds epoch_deadline{0};
  /// Self-healing membership (DESIGN.md §4i). Chaos crashes become
  /// *persistent*: a rank killed mid-epoch stays dead across epochs until
  /// revived, and the caller repairs the membership at epoch boundaries via
  /// Engine::repair_membership (one-shot epochs) or the stream coordinator
  /// does so at admission boundaries (run_stream). Off by default — without
  /// it every epoch starts from the constructed failure set, the pre-PR9
  /// behavior.
  bool repair = false;
};

class Engine {
 public:
  /// `failed[r] != 0` marks rank r as crashed for the engine's lifetime.
  /// Rank 0 must be alive (it roots every collective).
  Engine(topo::Rank num_procs, std::vector<char> failed, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  topo::Rank num_procs() const noexcept { return num_procs_; }
  topo::Rank live_count() const noexcept { return live_count_; }
  const EngineOptions& options() const noexcept { return options_; }
  /// OS threads the chosen backend actually runs (shards, or live ranks).
  std::size_t worker_threads() const noexcept;

  /// Executes one epoch of `protocol` (freshly constructed by the caller)
  /// and returns its timing. Serializes epochs internally.
  EpochResult run_epoch(sim::Protocol& protocol, std::chrono::nanoseconds timeout);

  /// Runs a windowed epoch stream (see StreamOptions). Sharded backend
  /// only; throws std::runtime_error on the thread-per-rank executor.
  /// Serializes with run_epoch — never call both concurrently.
  StreamResult run_stream(const ProtocolFactory& factory, const StreamOptions& options);

  /// Installs (or, with a default-constructed plan, removes) a fault-
  /// injection plan. Applies to subsequent epochs; must not be called
  /// while an epoch is running. With no plan the injection hooks compile
  /// down to a per-pass branch on two cached bools.
  void set_chaos(ChaosPlan plan);
  const ChaosPlan& chaos() const noexcept { return chaos_; }

  // --- Self-healing membership (EngineOptions::repair; DESIGN.md §4i) ----

  /// Epoch-boundary repair pass. Marks `newly_dead` (global ranks, e.g. the
  /// previous EpochResult's crashed_ranks) as persistently dead, clears the
  /// dead flag of `revived` ranks (chaos-crashed only — ranks failed at
  /// construction have no execution slot to revive), recomputes the dense
  /// survivor view and pushes the new membership + bumped generation into
  /// the executor. Returns false (and changes nothing) when the requested
  /// transition is a no-op. Must not be called while an epoch is running;
  /// throws std::logic_error unless EngineOptions::repair is set,
  /// std::invalid_argument for rank 0, out-of-range or construction-failed
  /// revivals.
  bool repair_membership(const std::vector<topo::Rank>& newly_dead,
                         const std::vector<topo::Rank>& revived);

  /// Current global->dense survivor mapping (identity until the first
  /// effective repair_membership call).
  const MembershipView& membership() const noexcept { return membership_; }
  std::int32_t generation() const noexcept { return generation_; }
  /// True when `r` holds no execution slot in the current membership
  /// (failed at construction, or crashed and persisted by a repair pass).
  bool is_dead(topo::Rank r) const {
    return dead_[static_cast<std::size_t>(r)] != 0;
  }

  /// Internal: executor backend interface (see engine.cpp / engine_sharded.cpp).
  class Impl {
   public:
    virtual ~Impl() = default;
    virtual EpochResult run_epoch(sim::Protocol& protocol, std::int64_t timeout_ns) = 0;
    /// Windowed epoch stream; timeout_ns is the resolved per-epoch deadline
    /// (0 = none). Backends without stream support throw (the default).
    virtual StreamResult run_stream(const ProtocolFactory& factory,
                                    const StreamOptions& options, std::int64_t timeout_ns);
    virtual std::size_t worker_threads() const noexcept = 0;
    /// nullptr disables injection. The plan outlives all epochs run under it.
    virtual void set_chaos(const ChaosPlan* plan) = 0;
    /// Repair pass (EngineOptions::repair): adopt a new persistent dead set
    /// (superset of the construction failure flags) for subsequent epochs.
    /// Called only between epochs, while all workers are parked. Backends
    /// without repair support throw (the default).
    virtual void set_membership(const std::vector<char>& dead,
                                topo::Rank live_count, std::int32_t generation);
  };

 private:
  topo::Rank num_procs_;
  std::vector<char> failed_;
  EngineOptions options_;
  topo::Rank live_count_ = 0;
  ChaosPlan chaos_;
  /// Repair mode: current persistent dead set (failed_ plus persisted chaos
  /// crashes minus revivals); equals failed_ when repair is off. Declared
  /// before impl_ — the executor references it during destruction.
  std::vector<char> dead_;
  MembershipView membership_;
  std::int32_t generation_ = 0;
  std::unique_ptr<Impl> impl_;  // last member: destroyed before the state it references
};

}  // namespace ct::rt

#pragma once
// Message-passing runtime — the repo's stand-in for the MPI cluster of §4.4
// (see DESIGN.md §1, §4c). It drives the very same executor-independent
// Protocol state machines as the LogP simulator, in wall-clock time over
// in-process queues. "Failed" ranks get no execution slot; messages
// addressed to them vanish without feedback — the paper's fault emulation
// ("Processes 'failed' during benchmark initialization and stayed as such
// during the whole benchmark run").
//
// Two executor backends, selected by EngineOptions::threading:
//
//  * kSharded (default) — an M:N scheduler: N worker threads (default
//    hardware_concurrency), each owning a contiguous slice of ranks whose
//    state machines it steps cooperatively. Intra-shard delivery is a plain
//    per-rank ring buffer (no locks — single-threaded within a shard);
//    cross-shard delivery batches through one bounded MPSC inbox per shard.
//    This is the path that reaches the paper's 36 864-rank prototype scale.
//
//  * kThreadPerRank — the original executor: one OS thread and one
//    mutex+condvar Mailbox per live rank. Kept for A/B comparison; thrashes
//    past a few hundred ranks on small hosts.
//
// An Engine is persistent: it spawns its threads once and then executes a
// sequence of epochs (benchmark iterations). Within an epoch each rank
// records its local completion time (colored + own sends drained) but keeps
// servicing deliveries — remote protocols may still need its replies —
// until every live rank has completed. Per-epoch message envelopes carry the
// epoch number so leftovers of epoch e are discarded in epoch e+1.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/protocol.hpp"

namespace ct::rt {

using Clock = std::chrono::steady_clock;

/// Outcome of one epoch (one broadcast execution).
struct EpochResult {
  bool timed_out = false;
  /// Wall time from epoch start until the last live rank completed locally.
  std::int64_t completion_ns = 0;
  /// Per-live-rank local completion times (ns since epoch start); -1 for
  /// ranks that never completed within a timed-out epoch.
  std::vector<std::int64_t> rank_completion_ns;
  /// Live ranks that were never colored (protocol failure).
  std::int32_t uncolored_live = 0;
  std::int64_t total_messages = 0;
};

/// How ranks map onto OS threads.
enum class Threading {
  kSharded,        ///< M:N — worker shards stepping rank slices (default)
  kThreadPerRank,  ///< legacy 1:1 — kept for A/B comparison
};

struct EngineOptions {
  Threading threading = Threading::kSharded;
  /// Sharded path: worker (= shard) count; <= 0 means hardware_concurrency.
  /// Clamped to the rank count (no empty shards).
  int workers = 0;
  /// Sharded path: cross-shard inbox capacity in envelopes, per shard.
  /// Producers stage overflow locally and retry, so this only bounds memory.
  std::size_t inbox_capacity = std::size_t{1} << 16;
};

class Engine {
 public:
  /// `failed[r] != 0` marks rank r as crashed for the engine's lifetime.
  /// Rank 0 must be alive (it roots every collective).
  Engine(topo::Rank num_procs, std::vector<char> failed, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  topo::Rank num_procs() const noexcept { return num_procs_; }
  topo::Rank live_count() const noexcept { return live_count_; }
  const EngineOptions& options() const noexcept { return options_; }
  /// OS threads the chosen backend actually runs (shards, or live ranks).
  std::size_t worker_threads() const noexcept;

  /// Executes one epoch of `protocol` (freshly constructed by the caller)
  /// and returns its timing. Serializes epochs internally.
  EpochResult run_epoch(sim::Protocol& protocol, std::chrono::nanoseconds timeout);

  /// Internal: executor backend interface (see engine.cpp / engine_sharded.cpp).
  class Impl {
   public:
    virtual ~Impl() = default;
    virtual EpochResult run_epoch(sim::Protocol& protocol, std::int64_t timeout_ns) = 0;
    virtual std::size_t worker_threads() const noexcept = 0;
  };

 private:
  topo::Rank num_procs_;
  std::vector<char> failed_;
  EngineOptions options_;
  topo::Rank live_count_ = 0;
  std::unique_ptr<Impl> impl_;  // last member: destroyed before the state it references
};

}  // namespace ct::rt

#pragma once
// Threaded message-passing runtime — the repo's stand-in for the MPI cluster
// of §4.4 (see DESIGN.md §1). One OS thread per live rank drives the very
// same executor-independent Protocol state machines as the LogP simulator,
// in wall-clock time over in-process mailboxes. "Failed" ranks get no
// thread; messages addressed to them vanish without feedback — the paper's
// fault emulation ("Processes 'failed' during benchmark initialization and
// stayed as such during the whole benchmark run").
//
// An Engine is persistent: it spawns its threads once and then executes a
// sequence of epochs (benchmark iterations). Within an epoch each rank
// records its local completion time (colored + own sends drained) but keeps
// servicing its mailbox — remote protocols may still need its replies —
// until every live rank has completed. Per-epoch message envelopes carry the
// epoch number so leftovers of epoch e are discarded in epoch e+1.

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "rt/mailbox.hpp"
#include "sim/protocol.hpp"

namespace ct::rt {

using Clock = std::chrono::steady_clock;

/// Outcome of one epoch (one broadcast execution).
struct EpochResult {
  bool timed_out = false;
  /// Wall time from epoch start until the last live rank completed locally.
  std::int64_t completion_ns = 0;
  /// Per-live-rank local completion times (ns since epoch start).
  std::vector<std::int64_t> rank_completion_ns;
  /// Live ranks that were never colored (protocol failure).
  std::int32_t uncolored_live = 0;
  std::int64_t total_messages = 0;
};

class Engine {
 public:
  /// `failed[r] != 0` marks rank r as crashed for the engine's lifetime.
  /// Rank 0 must be alive (it roots every collective).
  Engine(topo::Rank num_procs, std::vector<char> failed);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  topo::Rank num_procs() const noexcept { return num_procs_; }
  topo::Rank live_count() const noexcept { return live_count_; }

  /// Executes one epoch of `protocol` (freshly constructed by the caller)
  /// and returns its timing. Serializes epochs internally.
  EpochResult run_epoch(sim::Protocol& protocol, std::chrono::nanoseconds timeout);

 private:
  class ContextImpl;
  void worker_main(topo::Rank me);

  topo::Rank num_procs_;
  std::vector<char> failed_;
  topo::Rank live_count_ = 0;

  std::unique_ptr<ContextImpl> context_;
  std::barrier<> epoch_barrier_;  // live ranks + coordinator, twice per epoch
  std::atomic<bool> shutdown_{false};
  std::vector<std::jthread> threads_;
};

}  // namespace ct::rt

#pragma once
// The runtime's wire unit: a simulator Message plus the delivery tag
// (benchmark epoch + membership generation) it belongs to. Every delivery
// structure of the runtime — the legacy per-rank Mailbox, the sharded
// LocalFifo and the cross-shard SPSC mesh / ShardInbox — moves Envelopes;
// receivers drop stale-tag leftovers.
//
// The tag rides in Message::spare (the word that used to be struct
// padding), so an Envelope is exactly one 32-byte Message: two per cache
// line on every ring, 20 % less byte traffic per hop than the old
// {Message, int64} pair, and `msg` can be handed to protocol callbacks by
// reference with no repack.
//
// Tag layout (DESIGN.md §4i): bits [0,24) hold the epoch, bits [24,32) the
// membership generation, so mail sent before a repair pass rebuilt the
// tree/ring is dropped by generation even when it lands in the same epoch
// number. Generation 0 (no repairs) keeps spare == epoch, bit-identical to
// the pre-repair wire format. The 24-bit epoch window means a stale
// envelope would need to survive 16M epochs in flight to alias — the
// deepest queue in the runtime holds one epoch of mail.

#include <cstdint>

#include "sim/message.hpp"

namespace ct::rt {

struct Envelope {
  static constexpr std::uint32_t kEpochMask = 0x00FF'FFFFu;
  static constexpr int kGenShift = 24;

  sim::Message msg;

  Envelope() = default;

  /// `tag` is the precomputed make_tag(epoch, generation) word the engine
  /// keeps per epoch; the hot send path stamps it without re-packing.
  Envelope(const sim::Message& m, std::int32_t tag) : msg(m) {
    msg.spare = tag;
  }

  static std::int32_t make_tag(std::int64_t epoch,
                               std::int32_t generation) noexcept {
    return static_cast<std::int32_t>(
        (static_cast<std::uint32_t>(generation & 0xFF) << kGenShift) |
        (static_cast<std::uint32_t>(epoch) & kEpochMask));
  }

  /// Full delivery-match word (epoch + generation). Receivers compare this
  /// against the engine's current tag.
  std::int32_t tag() const noexcept { return msg.spare; }

  std::int32_t epoch() const noexcept {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(msg.spare) &
                                     kEpochMask);
  }

  std::int32_t generation() const noexcept {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(msg.spare) >>
                                     kGenShift);
  }
};
static_assert(sizeof(Envelope) == sizeof(sim::Message),
              "the tag must pack into Message::spare, not widen the envelope");

}  // namespace ct::rt

#pragma once
// The runtime's wire unit: a simulator Message plus the epoch (benchmark
// iteration) it belongs to. Every delivery structure of the runtime — the
// legacy per-rank Mailbox, the sharded LocalFifo and the cross-shard
// ShardInbox — moves Envelopes; receivers drop stale-epoch leftovers.

#include <cstdint>

#include "sim/message.hpp"

namespace ct::rt {

struct Envelope {
  sim::Message msg;
  std::int64_t epoch = 0;
};

}  // namespace ct::rt

#pragma once
// The runtime's wire unit: a simulator Message plus the epoch (benchmark
// iteration) it belongs to. Every delivery structure of the runtime — the
// legacy per-rank Mailbox, the sharded LocalFifo and the cross-shard SPSC
// mesh / ShardInbox — moves Envelopes; receivers drop stale-epoch
// leftovers.
//
// The epoch rides in Message::spare (the word that used to be struct
// padding), so an Envelope is exactly one 32-byte Message: two per cache
// line on every ring, 20 % less byte traffic per hop than the old
// {Message, int64} pair, and `msg` can be handed to protocol callbacks by
// reference with no repack.

#include <cstdint>

#include "sim/message.hpp"

namespace ct::rt {

struct Envelope {
  sim::Message msg;

  Envelope() = default;
  Envelope(const sim::Message& m, std::int64_t epoch) : msg(m) {
    msg.spare = static_cast<std::int32_t>(epoch);
  }

  std::int32_t epoch() const noexcept { return msg.spare; }
};
static_assert(sizeof(Envelope) == sizeof(sim::Message),
              "the epoch must pack into Message::spare, not widen the envelope");

}  // namespace ct::rt

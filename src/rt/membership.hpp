#pragma once
// Self-healing membership for the threaded runtime (DESIGN.md §4i).
//
// A crashed rank used to be a permanent ring gap: the tree and ring are
// built once over [0, P) and the protocol keeps addressing the corpse for
// the rest of the run. MembershipView is the repair pass's mapping between
// the *stable global* rank ids the engine owns (thread/shard slots, chaos
// schedules, degradation reports) and the *dense live* rank space a freshly
// rebuilt tree/ring is laid out over. Protocol state machines stay
// unchanged: they run over dense ranks [0, L) exactly as if the job had
// been launched with L processes, and RemapContext/RemappedProtocol
// translate at the executor boundary.
//
// Membership only changes at epoch boundaries while the worker threads are
// parked at the engine's barrier, so the view is immutable during an epoch
// and can be shared by reference across workers. Each change bumps a
// generation counter that the engines fold into the envelope tag, so
// in-flight mail from a previous membership is dropped by generation, not
// just by epoch (see rt::Envelope).

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/protocol.hpp"
#include "topology/tree.hpp"

namespace ct::rt {

/// Immutable global-rank <-> dense-live-rank mapping for one membership
/// generation.
class MembershipView {
 public:
  /// Generation 0: everybody lives, global id == dense id.
  static MembershipView identity(topo::Rank num_global);

  /// Compacts the survivors of `dead` (indexed by global rank, size
  /// num_global) into dense ranks [0, live). Detects the all-alive case and
  /// returns an identity view so the no-failure path keeps its unwrapped
  /// protocol.
  static MembershipView over_survivors(const std::vector<char>& dead,
                                       std::int32_t generation);

  topo::Rank num_global() const noexcept { return num_global_; }
  topo::Rank num_live() const noexcept { return num_live_; }
  std::int32_t generation() const noexcept { return generation_; }

  /// True when global id == dense id for every live rank (no dead ranks).
  bool is_identity() const noexcept { return identity_; }

  /// Dense -> global. Precondition: 0 <= dense < num_live().
  topo::Rank global_of(topo::Rank dense) const {
    return identity_ ? dense : live_[static_cast<std::size_t>(dense)];
  }

  /// Global -> dense, or topo::kNoRank when `global` is dead.
  topo::Rank dense_of(topo::Rank global) const {
    return identity_ ? global : dense_[static_cast<std::size_t>(global)];
  }

  bool is_live(topo::Rank global) const {
    return identity_ || dense_[static_cast<std::size_t>(global)] != topo::kNoRank;
  }

  /// Dense-ordered global ids of the survivors (empty for identity views).
  const std::vector<topo::Rank>& live() const noexcept { return live_; }

 private:
  topo::Rank num_global_ = 0;
  topo::Rank num_live_ = 0;
  std::int32_t generation_ = 0;
  bool identity_ = true;
  std::vector<topo::Rank> live_;   ///< dense -> global
  std::vector<topo::Rank> dense_;  ///< global -> dense (kNoRank = dead)
};

/// sim::Context adapter presenting the dense live rank space to a protocol
/// while delegating to the engine's global-rank context. Stateless after
/// bind(): safe to share by const reference across worker threads exactly
/// like the underlying engine context.
class RemapContext final : public sim::Context {
 public:
  explicit RemapContext(const MembershipView& view) : view_(&view) {}

  void bind(sim::Context& inner) { inner_ = &inner; }

  sim::Time now() const override { return inner_->now(); }
  topo::Rank num_procs() const override { return view_->num_live(); }

  void send(topo::Rank from, topo::Rank to, sim::Tag tag,
            std::int64_t payload) override {
    inner_->send(view_->global_of(from), view_->global_of(to), tag, payload);
  }

  void set_timer(topo::Rank on, sim::Time when, std::int64_t id) override {
    inner_->set_timer(view_->global_of(on), when, id);
  }

  void mark_colored(topo::Rank r) override {
    inner_->mark_colored(view_->global_of(r));
  }
  bool is_colored(topo::Rank r) const override {
    return inner_->is_colored(view_->global_of(r));
  }

  void note_correction_start() override { inner_->note_correction_start(); }

  void set_rank_data(topo::Rank r, std::int64_t data) override {
    inner_->set_rank_data(view_->global_of(r), data);
  }
  std::int64_t rank_data(topo::Rank r) const override {
    return inner_->rank_data(view_->global_of(r));
  }

 private:
  const MembershipView* view_;
  sim::Context* inner_ = nullptr;
};

/// Runs an unmodified protocol over the dense survivor space of `view`.
/// The engine keeps calling with global ranks and global-addressed
/// messages; the wrapper translates both ways. Callbacks for dead ranks
/// cannot occur (the engine never steps them), so dense_of() on the `me` /
/// src path always resolves.
class RemappedProtocol final : public sim::Protocol {
 public:
  RemappedProtocol(std::unique_ptr<sim::Protocol> inner,
                   const MembershipView& view)
      : inner_(std::move(inner)), ctx_(view), view_(&view) {}

  void begin(sim::Context& ctx) override {
    ctx_.bind(ctx);
    inner_->begin(ctx_);
  }

  void on_receive(sim::Context& /*ctx*/, topo::Rank me,
                  const sim::Message& msg) override {
    sim::Message dense = msg;
    dense.src = view_->dense_of(msg.src);
    dense.dst = view_->dense_of(msg.dst);
    inner_->on_receive(ctx_, view_->dense_of(me), dense);
  }

  void on_sent(sim::Context& /*ctx*/, topo::Rank me,
               const sim::Message& msg) override {
    sim::Message dense = msg;
    dense.src = view_->dense_of(msg.src);
    dense.dst = view_->dense_of(msg.dst);
    inner_->on_sent(ctx_, view_->dense_of(me), dense);
  }

  void on_timer(sim::Context& /*ctx*/, topo::Rank me, std::int64_t id) override {
    inner_->on_timer(ctx_, view_->dense_of(me), id);
  }

  sim::Protocol& inner() { return *inner_; }

 private:
  std::unique_ptr<sim::Protocol> inner_;
  RemapContext ctx_;
  const MembershipView* view_;
};

/// Bounded sender-side log of sealed epoch payloads, the rejoin half of the
/// message-logging recipe (one record per epoch: this repo's collectives
/// move one payload word, so "replay the missed messages" compresses to
/// "replay the missed epoch payloads"). A revived rank whose whole outage
/// is still covered catches up by replay; otherwise it takes a fresh-epoch
/// state transfer. Truncated at epoch quiescence — when no rank is down,
/// nothing can ever need the history (DESIGN.md §4i log truncation rule).
class ReplayLog {
 public:
  explicit ReplayLog(std::size_t capacity) : capacity_(capacity) {}

  /// Appends the sealed epoch's payload; evicts the oldest record when the
  /// bound is hit (epochs are appended in order, so the log always covers a
  /// contiguous suffix).
  void append(std::int64_t epoch, std::int64_t payload);

  /// True when `epoch` (and therefore every later epoch up to last_epoch())
  /// is still in the log.
  bool covers(std::int64_t epoch) const;

  /// Payload recorded for `epoch`. Precondition: covers(epoch).
  std::int64_t payload_of(std::int64_t epoch) const;

  /// Drops records older than `epoch` (exclusive).
  void truncate_below(std::int64_t epoch);

  /// Quiescence truncation: drop everything.
  void clear() { records_.clear(); }

  std::size_t size() const noexcept { return records_.size(); }
  std::int64_t first_epoch() const {
    return records_.empty() ? -1 : records_.front().epoch;
  }
  std::int64_t last_epoch() const {
    return records_.empty() ? -1 : records_.back().epoch;
  }

 private:
  struct Record {
    std::int64_t epoch;
    std::int64_t payload;
  };
  std::size_t capacity_;
  std::deque<Record> records_;
};

}  // namespace ct::rt

#pragma once
// Per-rank mailbox for the threaded message-passing runtime: an unbounded
// MPSC queue (any thread pushes, only the owning rank pops) built on a
// mutex + condition variable. Reliable and per-sender FIFO — the same
// point-to-point guarantees the paper assumes from TCP/InfiniBand (§5).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "sim/message.hpp"

namespace ct::rt {

/// A simulator Message plus the runtime epoch (benchmark iteration) it
/// belongs to; stale-epoch messages are dropped by the receiver.
struct Envelope {
  sim::Message msg;
  std::int64_t epoch = 0;
};

class Mailbox {
 public:
  /// Takes the envelope by value so callers that pass an rvalue move all the
  /// way into the queue; lvalue callers pay exactly the one copy they did
  /// before, outside the lock.
  void push(Envelope envelope) {
    {
      const std::scoped_lock lock(mutex_);
      queue_.push_back(std::move(envelope));
    }
    cv_.notify_one();
  }

  bool try_pop(Envelope& out) {
    const std::scoped_lock lock(mutex_);
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  /// Blocks until a message is available or `timeout` elapsed; returns
  /// whether a message was popped. Used to idle without burning the single
  /// CPU this runtime typically shares among all ranks.
  template <class Rep, class Period>
  bool pop_for(Envelope& out, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    if (!cv_.wait_for(lock, timeout, [&] { return !queue_.empty(); })) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  /// Wakes a blocked pop_for (used to broadcast run-wide state changes).
  void kick() { cv_.notify_all(); }

  void clear() {
    const std::scoped_lock lock(mutex_);
    queue_.clear();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
};

}  // namespace ct::rt

#pragma once
// Per-rank mailbox for the legacy thread-per-rank runtime path: an unbounded
// MPSC queue (any thread pushes, only the owning rank pops) built on a
// mutex + condition variable. Reliable and per-sender FIFO — the same
// point-to-point guarantees the paper assumes from TCP/InfiniBand (§5).
// The sharded runtime uses rt/shard_queue.hpp instead.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "rt/envelope.hpp"

namespace ct::rt {

class Mailbox {
 public:
  /// Takes the envelope by value so callers that pass an rvalue move all the
  /// way into the queue; lvalue callers pay exactly the one copy they did
  /// before, outside the lock.
  void push(Envelope envelope) {
    {
      const std::scoped_lock lock(mutex_);
      queue_.push_back(std::move(envelope));
    }
    cv_.notify_one();
  }

  bool try_pop(Envelope& out) {
    const std::scoped_lock lock(mutex_);
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  /// Blocks until a message is available, a kick() arrives, or `timeout`
  /// elapsed; returns whether a message was popped. Used to idle without
  /// burning the single CPU this runtime typically shares among all ranks.
  ///
  /// The wait predicate checks a kick generation counter as well as queue
  /// non-emptiness: a kick() broadcast for a run-wide state change (epoch
  /// done, shutdown) must end the wait even though no message arrived,
  /// otherwise the waiter re-blocks for a full timeout slice before it
  /// re-reads the flag the kicker set.
  template <class Rep, class Period>
  bool pop_for(Envelope& out, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    const std::uint64_t entry_generation = kick_generation_;
    cv_.wait_for(lock, timeout, [&] {
      return !queue_.empty() || kick_generation_ != entry_generation;
    });
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  /// Wakes blocked pop_for callers (used to broadcast run-wide state
  /// changes); the generation bump makes the wake-up stick even if the
  /// notify races with the waiter entering the wait.
  void kick() {
    {
      const std::scoped_lock lock(mutex_);
      ++kick_generation_;
    }
    cv_.notify_all();
  }

  void clear() {
    const std::scoped_lock lock(mutex_);
    queue_.clear();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t kick_generation_ = 0;
  std::deque<Envelope> queue_;
};

}  // namespace ct::rt

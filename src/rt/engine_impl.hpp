#pragma once
// Internal: factories for the Engine executor backends. engine.cpp builds
// the legacy thread-per-rank executor; engine_sharded.cpp builds the M:N
// sharded scheduler. Both receive a reference to the Engine-owned failure
// flags, which outlive the impl.

#include "rt/engine.hpp"

namespace ct::rt::detail {

std::unique_ptr<Engine::Impl> make_thread_per_rank(topo::Rank num_procs,
                                                   const std::vector<char>& failed,
                                                   topo::Rank live_count);

std::unique_ptr<Engine::Impl> make_sharded(topo::Rank num_procs,
                                           const std::vector<char>& failed,
                                           topo::Rank live_count,
                                           const EngineOptions& options);

}  // namespace ct::rt::detail

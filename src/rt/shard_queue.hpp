#pragma once
// Delivery structures for the sharded M:N runtime (DESIGN.md §4c, §4f).
// Three tiers, matching the kinds of traffic a shard sees:
//
//  * LocalFifo — intra-shard delivery. A plain growable ring buffer, one per
//    rank, touched only by the worker thread that owns the rank's shard, so
//    pushes and pops are straight-line code with no atomics or locks.
//
//  * SpscRing — cross-shard delivery, default path. One bounded lock-free
//    ring per *ordered shard pair*: exactly one producing shard, exactly one
//    consuming shard, so the only synchronization is an acquire/release pair
//    on the head and tail indices. Batches amortize even that: one release
//    store publishes a whole staged batch, one acquire load claims every
//    pending envelope. Per-sender FIFO holds by construction — a sender's
//    envelopes to one destination traverse a single ring in push order.
//
//  * ShardInbox — cross-shard delivery, legacy path (EngineOptions::
//    cross_shard = kLockedInbox). One bounded MPSC inbox per shard:
//    producing shards append whole batches under a single lock acquisition
//    and the owner drains everything with one swap. Kept for interleaved
//    A/B against the mesh.
//
//  * Doorbell — parking for the mesh path, where there is no inbox lock to
//    sleep on. An eventcount: waiters advertise themselves, producers ring
//    only when someone is parked, and a seq_cst fence pair on each side
//    closes the classic sleep/publish race (same lost-wakeup discipline as
//    ShardInbox::kick, without touching the mutex on the hot path).

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "rt/envelope.hpp"

namespace ct::rt {

/// Growable power-of-two ring buffer of envelopes. Single-threaded by
/// design: only the shard worker that owns the receiving rank touches it.
///
/// The first four slots live inline in the object: tree traffic delivers
/// one or two envelopes to a rank per pass, so with a heap-backed ring the
/// per-rank array was mostly pointers to 16-slot allocations holding one
/// envelope each — P allocations per engine and an extra cache-miss
/// indirection on every delivery. The inline tier removes both for the
/// common case; rank 0 and other fan-in hot spots spill to the heap ring
/// exactly as before.
class LocalFifo {
 public:
  static constexpr std::size_t kInlineSlots = 4;

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  void push(const Envelope& envelope) {
    const std::size_t capacity = buffer_.empty() ? kInlineSlots : buffer_.size();
    if (size_ == capacity) {
      grow();
      buffer_[(head_ + size_) & (buffer_.size() - 1)] = envelope;
    } else if (buffer_.empty()) {
      inline_[(head_ + size_) & (kInlineSlots - 1)] = envelope;
    } else {
      buffer_[(head_ + size_) & (buffer_.size() - 1)] = envelope;
    }
    ++size_;
  }

  bool pop(Envelope& out) {
    if (size_ == 0) return false;
    if (buffer_.empty()) {
      out = inline_[head_];
      head_ = (head_ + 1) & (kInlineSlots - 1);
    } else {
      out = buffer_[head_];
      head_ = (head_ + 1) & (buffer_.size() - 1);
    }
    --size_;
    return true;
  }

  void clear() noexcept { head_ = size_ = 0; }

 private:
  void grow() {
    const std::size_t capacity = buffer_.empty() ? 4 * kInlineSlots : buffer_.size() * 2;
    std::vector<Envelope> next(capacity);
    if (buffer_.empty()) {
      for (std::size_t i = 0; i < size_; ++i) {
        next[i] = inline_[(head_ + i) & (kInlineSlots - 1)];
      }
    } else {
      for (std::size_t i = 0; i < size_; ++i) {
        next[i] = buffer_[(head_ + i) & (buffer_.size() - 1)];
      }
    }
    buffer_.swap(next);
    head_ = 0;
  }

  Envelope inline_[kInlineSlots];   // tier 0: no allocation, no indirection
  std::vector<Envelope> buffer_;    // tier 1 (power-of-two), engaged on spill
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Bounded lock-free SPSC ring of envelopes for one ordered shard pair.
/// Producer and consumer touch disjoint cache lines (indices padded apart,
/// each side caching the other's last-seen index), so an uncontended
/// push+pop round trip costs two atomic RMW-free publishes. Capacity is
/// rounded up to a power of two. Backpressure is cooperative: push_batch
/// accepts a prefix and the producer keeps the rest staged, exactly like
/// the locked inbox path.
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : mask_(std::bit_ceil(std::max<std::size_t>(capacity, 1)) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer: appends up to `n` envelopes of `data` in order; returns how
  /// many were accepted (a full ring accepts a prefix). One release store
  /// publishes the whole batch.
  std::size_t push_batch(const Envelope* data, std::size_t n) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = capacity() - static_cast<std::size_t>(tail - head_cache_);
    if (free < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = capacity() - static_cast<std::size_t>(tail - head_cache_);
    }
    const std::size_t accepted = std::min(n, free);
    for (std::size_t i = 0; i < accepted; ++i) {
      slots_[static_cast<std::size_t>(tail + i) & mask_] = data[i];
    }
    if (accepted > 0) tail_.store(tail + accepted, std::memory_order_release);
    return accepted;
  }

  /// Consumer: appends every pending envelope to `out` (FIFO) and frees the
  /// slots with one release store; returns how many were claimed.
  std::size_t pop_all_into(std::vector<Envelope>& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return 0;
    }
    const auto pending = static_cast<std::size_t>(tail_cache_ - head);
    for (std::size_t i = 0; i < pending; ++i) {
      out.push_back(slots_[static_cast<std::size_t>(head + i) & mask_]);
    }
    head_.store(head + pending, std::memory_order_release);
    return pending;
  }

  /// Consumer: visits every pending envelope in FIFO order through `fn`
  /// (const reference into the ring slot — no intermediate copy) and frees
  /// the whole batch with one release store; returns how many were
  /// consumed. `fn` may push into LocalFifos or other consumer-owned
  /// structures but must not touch this ring.
  template <class Fn>
  std::size_t consume_all(Fn&& fn) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return 0;
    }
    const auto pending = static_cast<std::size_t>(tail_cache_ - head);
    for (std::size_t i = 0; i < pending; ++i) {
      fn(static_cast<const Envelope&>(slots_[static_cast<std::size_t>(head + i) & mask_]));
    }
    head_.store(head + pending, std::memory_order_release);
    return pending;
  }

  /// Consumer-side poll: may this ring have mail? (Exact for the consumer —
  /// only the producer moves tail past it.)
  bool poll() const noexcept {
    return tail_.load(std::memory_order_acquire) !=
           head_.load(std::memory_order_relaxed);
  }

  /// Resets the ring between epochs. Caller must guarantee both sides are
  /// quiescent (the engine's epoch barrier does).
  void clear() noexcept {
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
    head_cache_ = 0;
    tail_cache_ = 0;
  }

 private:
  std::size_t mask_;
  std::vector<Envelope> slots_;
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer publishes
  alignas(64) std::uint64_t head_cache_ = 0;        // producer-local
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer publishes
  alignas(64) std::uint64_t tail_cache_ = 0;        // consumer-local
};

/// Eventcount for the mesh path: lets a shard park when its incoming rings
/// are empty without producers paying a lock on every publish. Producers
/// call notify() after a publish — it is a single seq_cst fence plus one
/// relaxed load unless a waiter is actually parked. The fence pair (waiter:
/// advertise, fence, re-check rings; producer: publish, fence, check
/// waiters) guarantees at least one side observes the other, so a publish
/// concurrent with wait entry either wakes the waiter or is seen by its
/// re-check.
class Doorbell {
 public:
  /// Producer side: wake the owner if it is (or is about to be) parked.
  void notify() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_relaxed) == 0) return;
    {
      const std::scoped_lock lock(mutex_);
      ++generation_;
    }
    cv_.notify_all();
  }

  /// Unconditional wake (epoch end, shutdown) — the once-per-epoch analogue
  /// of ShardInbox::kick.
  void kick() {
    {
      const std::scoped_lock lock(mutex_);
      ++generation_;
    }
    cv_.notify_all();
  }

  /// Owner side: parks until `has_mail()` turns true, a notify/kick fires,
  /// or `timeout` elapses. `has_mail` must be safe to call repeatedly (it
  /// polls the incoming rings).
  template <class Rep, class Period, class Pred>
  void wait(std::chrono::duration<Rep, Period> timeout, Pred&& has_mail) {
    waiters_.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!has_mail()) {
      std::unique_lock lock(mutex_);
      const std::uint64_t entry_generation = generation_;
      cv_.wait_for(lock, timeout, [&] {
        return generation_ != entry_generation || has_mail();
      });
    }
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> waiters_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t generation_ = 0;
};

/// Bounded MPSC inbox: many producing shards, one draining owner. Producers
/// that hit the capacity keep the overflow staged on their side and retry
/// next pass, so backpressure never blocks inside the lock.
class ShardInbox {
 public:
  explicit ShardInbox(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {}

  /// Appends as many envelopes of `batch` (front first, preserving order) as
  /// capacity allows under one lock; returns how many were accepted.
  std::size_t push_batch(const std::vector<Envelope>& batch) {
    std::size_t accepted = 0;
    bool was_empty = false;
    {
      const std::scoped_lock lock(mutex_);
      was_empty = queue_.empty();
      accepted = std::min(batch.size(), capacity_ - queue_.size());
      queue_.insert(queue_.end(), batch.begin(),
                    batch.begin() + static_cast<std::ptrdiff_t>(accepted));
    }
    if (accepted > 0 && was_empty) cv_.notify_one();
    return accepted;
  }

  /// Owner side: moves the whole pending batch into `out` (pass it empty;
  /// its storage is recycled as the next queue backing).
  void drain_into(std::vector<Envelope>& out) {
    const std::scoped_lock lock(mutex_);
    queue_.swap(out);
  }

  /// Owner side: blocks until mail arrives, a kick() fires, or `timeout`
  /// elapses. Same generation-counter predicate as Mailbox::pop_for — a
  /// kick for a run-wide state change must not be lost to a race with wait
  /// entry.
  template <class Rep, class Period>
  void wait_for_mail(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    const std::uint64_t entry_generation = kick_generation_;
    cv_.wait_for(lock, timeout, [&] {
      return !queue_.empty() || kick_generation_ != entry_generation;
    });
  }

  /// Wakes a blocked wait_for_mail even without mail (epoch end, shutdown).
  void kick() {
    {
      const std::scoped_lock lock(mutex_);
      ++kick_generation_;
    }
    cv_.notify_all();
  }

  void clear() {
    const std::scoped_lock lock(mutex_);
    queue_.clear();
  }

 private:
  std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t kick_generation_ = 0;
  std::vector<Envelope> queue_;
};

}  // namespace ct::rt

#pragma once
// Delivery structures for the sharded M:N runtime (DESIGN.md §4c). Two
// tiers, matching the two kinds of traffic a shard sees:
//
//  * LocalFifo — intra-shard delivery. A plain growable ring buffer, one per
//    rank, touched only by the worker thread that owns the rank's shard, so
//    pushes and pops are straight-line code with no atomics or locks.
//
//  * ShardInbox — cross-shard delivery. One bounded MPSC inbox per shard:
//    producing shards append whole batches under a single lock acquisition
//    (staged per destination during the scheduling pass) and the owning
//    shard drains everything with one swap, so lock traffic per pass is
//    O(shards²) for the whole engine instead of O(messages).

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "rt/envelope.hpp"

namespace ct::rt {

/// Growable power-of-two ring buffer of envelopes. Single-threaded by
/// design: only the shard worker that owns the receiving rank touches it.
class LocalFifo {
 public:
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  void push(Envelope envelope) {
    if (size_ == buffer_.size()) grow();
    buffer_[(head_ + size_) & (buffer_.size() - 1)] = std::move(envelope);
    ++size_;
  }

  bool pop(Envelope& out) {
    if (size_ == 0) return false;
    out = std::move(buffer_[head_]);
    head_ = (head_ + 1) & (buffer_.size() - 1);
    --size_;
    return true;
  }

  void clear() noexcept { head_ = size_ = 0; }

 private:
  void grow() {
    const std::size_t capacity = buffer_.empty() ? 16 : buffer_.size() * 2;
    std::vector<Envelope> next(capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buffer_[(head_ + i) & (buffer_.size() - 1)]);
    }
    buffer_.swap(next);
    head_ = 0;
  }

  std::vector<Envelope> buffer_;  // capacity always a power of two (or empty)
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Bounded MPSC inbox: many producing shards, one draining owner. Producers
/// that hit the capacity keep the overflow staged on their side and retry
/// next pass, so backpressure never blocks inside the lock.
class ShardInbox {
 public:
  explicit ShardInbox(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {}

  /// Appends as many envelopes of `batch` (front first, preserving order) as
  /// capacity allows under one lock; returns how many were accepted.
  std::size_t push_batch(const std::vector<Envelope>& batch) {
    std::size_t accepted = 0;
    bool was_empty = false;
    {
      const std::scoped_lock lock(mutex_);
      was_empty = queue_.empty();
      accepted = std::min(batch.size(), capacity_ - queue_.size());
      queue_.insert(queue_.end(), batch.begin(),
                    batch.begin() + static_cast<std::ptrdiff_t>(accepted));
    }
    if (accepted > 0 && was_empty) cv_.notify_one();
    return accepted;
  }

  /// Owner side: moves the whole pending batch into `out` (pass it empty;
  /// its storage is recycled as the next queue backing).
  void drain_into(std::vector<Envelope>& out) {
    const std::scoped_lock lock(mutex_);
    queue_.swap(out);
  }

  /// Owner side: blocks until mail arrives, a kick() fires, or `timeout`
  /// elapses. Same generation-counter predicate as Mailbox::pop_for — a
  /// kick for a run-wide state change must not be lost to a race with wait
  /// entry.
  template <class Rep, class Period>
  void wait_for_mail(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    const std::uint64_t entry_generation = kick_generation_;
    cv_.wait_for(lock, timeout, [&] {
      return !queue_.empty() || kick_generation_ != entry_generation;
    });
  }

  /// Wakes a blocked wait_for_mail even without mail (epoch end, shutdown).
  void kick() {
    {
      const std::scoped_lock lock(mutex_);
      ++kick_generation_;
    }
    cv_.notify_all();
  }

  void clear() {
    const std::scoped_lock lock(mutex_);
    queue_.clear();
  }

 private:
  std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t kick_generation_ = 0;
  std::vector<Envelope> queue_;
};

}  // namespace ct::rt

#pragma once
// Umbrella header: the full public API of the corrected-trees library.
//
//   #include "ct.hpp"
//
//   ct::topo    — trees, rings, gaps, placement        (topology/)
//   ct::sim     — LogP/LogGP simulator, faults, traces (sim/)
//   ct::proto   — broadcast/collective protocols       (protocol/)
//   ct::rt      — threaded message-passing runtime     (rt/)
//   ct::analysis— closed-form bounds                   (analysis/)
//   ct::exp     — replicated-experiment driver         (experiment/)
//   ct::support — RNG, statistics, tables, options     (support/)
//
// Individual headers remain includable on their own; this header is a
// convenience for applications and exploratory code.

#include "analysis/bounds.hpp"
#include "experiment/runner.hpp"
#include "protocol/ack_tree.hpp"
#include "protocol/allreduce.hpp"
#include "protocol/baselines.hpp"
#include "protocol/config.hpp"
#include "protocol/correction.hpp"
#include "protocol/gossip_broadcast.hpp"
#include "protocol/gossip_tuning.hpp"
#include "protocol/reduce.hpp"
#include "protocol/tree_broadcast.hpp"
#include "rt/engine.hpp"
#include "rt/harness.hpp"
#include "rt/logp_fit.hpp"
#include "sim/faults.hpp"
#include "sim/logp.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/timeline.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "topology/factory.hpp"
#include "topology/gaps.hpp"
#include "topology/hierarchical.hpp"
#include "topology/interleave.hpp"
#include "topology/placement.hpp"
#include "topology/ring.hpp"
#include "topology/tree.hpp"

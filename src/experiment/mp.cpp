#include "experiment/mp.hpp"

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define CT_EXP_MP_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#else
#define CT_EXP_MP_FORK 0
#endif

namespace ct::exp {

namespace {

#if CT_EXP_MP_FORK

// ---------------------------------------------------------------------------
// Pipe framing: length-free, fixed-order stream of counters and Samples
// payloads. Both ends are the same binary on the same machine, so raw
// little-endian int64/double bytes round-trip bit-exactly — no text
// formatting (which would round doubles) anywhere near the merge.
// ---------------------------------------------------------------------------

bool write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t wrote = ::write(fd, p, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::read(fd, p, n);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;  // EOF before the frame completed = dead worker
    }
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_samples(int fd, const support::Samples& samples) {
  const std::vector<double>& values = samples.values();
  const auto count = static_cast<std::uint64_t>(values.size());
  if (!write_all(fd, &count, sizeof(count))) return false;
  return count == 0 || write_all(fd, values.data(), values.size() * sizeof(double));
}

bool read_samples(int fd, support::Samples& samples) {
  std::uint64_t count = 0;
  if (!read_all(fd, &count, sizeof(count))) return false;
  std::vector<double> values(static_cast<std::size_t>(count));
  if (count > 0 && !read_all(fd, values.data(), values.size() * sizeof(double))) {
    return false;
  }
  for (const double v : values) samples.add(v);
  return true;
}

bool write_aggregate(int fd, const Aggregate& aggregate) {
  const std::int64_t counters[3] = {aggregate.runs, aggregate.not_fully_colored,
                                    aggregate.uncolored_total};
  if (!write_all(fd, counters, sizeof(counters))) return false;
  return write_samples(fd, aggregate.coloring_latency) &&
         write_samples(fd, aggregate.quiescence_latency) &&
         write_samples(fd, aggregate.messages_per_process) &&
         write_samples(fd, aggregate.max_gap) &&
         write_samples(fd, aggregate.gap_count) &&
         write_samples(fd, aggregate.correction_time);
}

/// Reads one worker's frame and appends it onto `into` — called in
/// ascending slice order, which IS the merge (Samples::merge semantics:
/// values append, order decides nothing downstream except percentiles'
/// lazily sorted copy, identical either way).
bool read_aggregate_into(int fd, Aggregate& into) {
  std::int64_t counters[3];
  if (!read_all(fd, counters, sizeof(counters))) return false;
  into.runs += counters[0];
  into.not_fully_colored += counters[1];
  into.uncolored_total += counters[2];
  return read_samples(fd, into.coloring_latency) &&
         read_samples(fd, into.quiescence_latency) &&
         read_samples(fd, into.messages_per_process) &&
         read_samples(fd, into.max_gap) &&
         read_samples(fd, into.gap_count) &&
         read_samples(fd, into.correction_time);
}

#endif  // CT_EXP_MP_FORK

}  // namespace

MpSweepResult run_replicated_mp(const Scenario& scenario, std::size_t reps,
                                std::uint64_t seed, int procs) {
  MpSweepResult result;
#if CT_EXP_MP_FORK
  const std::size_t want = procs > 1 ? static_cast<std::size_t>(procs) : 1;
  const std::size_t workers = std::min(want, reps == 0 ? 1 : reps);
  if (workers <= 1) {
    result.aggregate = run_replicated(scenario, reps, seed);
    return result;
  }
  const std::size_t chunk = (reps + workers - 1) / workers;

  struct Worker {
    pid_t pid = -1;
    int read_fd = -1;
  };
  std::vector<Worker> spawned;
  spawned.reserve(workers);
  for (std::size_t k = 0; k < workers; ++k) {
    const std::size_t begin = k * chunk;
    const std::size_t end = std::min(reps, begin + chunk);
    if (begin >= end) break;
    int fds[2];
    if (::pipe(fds) != 0) {
      result.error = "pipe() failed";
      break;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      result.error = "fork() failed";
      break;
    }
    if (pid == 0) {
      // Worker: the slice runs serially — process-level parallelism replaces
      // the thread pool — and the frame goes out in one stream. _exit skips
      // atexit/static destructors shared with the parent.
      ::close(fds[0]);
      const Aggregate slice = run_replicated_range(scenario, begin, end, seed);
      const bool ok = write_aggregate(fds[1], slice);
      ::close(fds[1]);
      ::_exit(ok ? 0 : 1);
    }
    ::close(fds[1]);
    spawned.push_back(Worker{pid, fds[0]});
  }

  // Drain in ascending slice order (frame order = merge order = the serial
  // rep order). A pipe buffers ~64 KiB; big frames simply throttle their
  // worker until the parent gets to it — no deadlock, the parent reads
  // every pipe to EOF.
  for (std::size_t k = 0; k < spawned.size(); ++k) {
    if (!read_aggregate_into(spawned[k].read_fd, result.aggregate)) {
      result.error = "worker " + std::to_string(k) + " died before finishing its slice";
    }
    ::close(spawned[k].read_fd);
  }
  for (const Worker& worker : spawned) {
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    if (result.error.empty() &&
        !(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
      result.error = "worker exited abnormally";
    }
  }
  result.procs_used = static_cast<int>(spawned.size());
  result.forked = !spawned.empty();
  // A lost worker leaves a rep-range hole; the partial merge is not the
  // deterministic sweep, so make the failure loud via `error` and the run
  // count mismatch (aggregate.runs != reps).
  return result;
#else
  static_cast<void>(procs);
  result.aggregate = run_replicated(scenario, reps, seed);
  return result;
#endif
}

}  // namespace ct::exp

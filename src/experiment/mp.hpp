#pragma once
// Multi-process sweep sharding (DESIGN.md §4g). Replications are
// embarrassingly parallel and bit-deterministic — replication i's whole RNG
// stream is derive_seed(seed, i) regardless of who runs it — so a sweep can
// fan out across *processes*, not just pool threads: no shared allocator,
// no shared LLC-line ping-pong, and the OS scheduler balances whole slices.
//
// run_replicated_mp forks `procs` workers; worker k runs the contiguous rep
// slice [k*chunk, min(reps, (k+1)*chunk)) through run_replicated_range
// (same global rep indices, same derive_seed stream) and streams its
// Aggregate back over a pipe as raw counters + raw double bytes (same
// machine, same binary — the doubles round-trip bit-exactly). The parent
// merges slices in ascending k order; Samples::merge appends values, so the
// merged Aggregate is byte-identical to the single-process sweep. That
// invariant is asserted by `sweep_shard --check` (a bench-smoke ctest
// entry) and documented in EXPERIMENTS.md.
//
// Fork discipline: call this before the process spawns any threads (thread
// pools, rt engines). A forked child inherits only the calling thread;
// locks held by unforked pool threads would deadlock it. tools/sweep_shard
// and bench_report's sweep_mp section both fork before constructing their
// ThreadPool.

#include <cstdint>
#include <string>

#include "experiment/runner.hpp"

namespace ct::exp {

/// Result of a sharded sweep: the merged aggregate plus bookkeeping the
/// bench report wants.
struct MpSweepResult {
  Aggregate aggregate;
  int procs_used = 1;       // actual worker count after clamping
  bool forked = false;      // false: fell back to the in-process path
  std::string error;        // non-empty if a worker failed (result is partial)
};

/// Runs `reps` replications of `scenario` sharded across `procs` forked
/// worker processes and merges the per-process Aggregates bit-identically
/// to run_replicated(scenario, reps, seed). procs <= 1 (or a non-POSIX
/// build, or reps < procs) degrades to the in-process serial path.
MpSweepResult run_replicated_mp(const Scenario& scenario, std::size_t reps,
                                std::uint64_t seed, int procs);

}  // namespace ct::exp

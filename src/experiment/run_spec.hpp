#pragma once
// Executor-agnostic run specification — exp::Scenario v2 (DESIGN.md §4e).
//
// The paper evaluates identical corrected-broadcast configurations twice:
// in the LogP simulator (§4.2–§4.3) and on the MPI prototype (§4.4). A
// RunSpec is the single declarative description of one such configuration —
// collective x protocol x tree x correction x fault/chaos model x LogP
// params x executor — with a full string round-trip, so every CLI, bench
// table and parity test shares one parser and one dispatcher:
//
//   bcast:binomial:checked:overlapped@P=1024,f=0.02,exec=rt-sharded:w=8
//   ^        ^        ^        ^        key=value parameters (any order)
//   |        |        |        +-- correction start (":left" = single dir)
//   |        |        +-- correction kind (":<d>" distance for opportunistic)
//   |        +-- tree family (topo::parse_tree_spec, e.g. "kary:4")
//   +-- collective: bcast | reduce | allreduce
//
// The same spec runs unmodified under exec=sim (replicated LogP simulation
// through the ReplicaPlan path) and exec=rt-sharded / exec=rt-tpr (wall
// clock epochs on rt::Engine + measure_broadcast); exp::run returns one
// RunRecord with the identical metric key set either way (latency_unit
// tells model ticks from microseconds; chaos tallies are zero under sim).

#include <cstdint>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "support/json.hpp"

namespace ct::exp {

enum class Collective {
  kBroadcast,  ///< root disseminates one value (the paper's §3 protocols)
  kReduce,     ///< corrected reduction to the root (§1 extension; sim only)
  kAllreduce,  ///< reduce + result broadcast (every survivor colored)
};

/// Which substrate executes the spec.
enum class Executor {
  kSim,             ///< LogP discrete-event simulator, `reps` replications
  kRtSharded,       ///< rt::Engine M:N sharded executor, `reps` epochs
  kRtThreadPerRank, ///< rt::Engine legacy 1:1 executor
};

std::string collective_name(Collective c);
Collective parse_collective(const std::string& text);
std::string executor_name(Executor e);

/// Unified fault model: the static pre-start failures both substrates share
/// (sim::FaultSet sampling / rt::Engine's failed vector) plus the mid-run
/// knobs (sim::FaultSet::dies_at ≙ rt::ChaosPlan). Link perturbations are
/// runtime-only; their tallies read zero under sim.
struct FaultModel {
  // --- static pre-start failures (count wins over fraction) ---
  topo::Rank count = 0;
  double fraction = 0.0;
  /// > 0: resample the static placement until the statically-uncolored
  /// set's largest ring gap is <= gap_limit (rt executors; the fig12 /
  /// bench_report "gap-safe" trick so coverage-bounded correction can
  /// finish every epoch). Sim samples per replication and simply reports
  /// uncolored survivors, so the limit is not applied there.
  int gap_limit = 0;
  /// Ranks killed "at time zero but after start": sim kills them at t = 1
  /// (before any first receive completes), rt via ChaosPlan::kill_at_ns 0.
  /// The parity model — both substrates realise the identical victim set.
  std::vector<topo::Rank> kill;

  // --- chaos knobs (rt::ChaosOptions; sim maps crashes, ignores links) ---
  std::uint64_t chaos_seed = 0;
  double crash_fraction = 0.0;
  std::int64_t crash_window_us = 2000;
  double drop_prob = 0.0;
  double delay_prob = 0.0;
  double duplicate_prob = 0.0;
  std::int64_t delay_us = 200;

  // --- self-healing membership (PR9; rt executors only) ---
  /// repair=1: crashes become persistent and the run repairs itself at
  /// every epoch boundary — one-shot runs rebuild the tree over survivors
  /// (rt::measure_recovery), streams retire corpses at admission.
  bool repair = false;
  /// revive-frac=p: probability a crashed rank gets a deterministic
  /// revive schedule (ChaosPlan::revive_after_ns; same SplitMix64 contract
  /// as the crash schedule). Requires repair=1 and a crash source.
  double revive_fraction = 0.0;
  /// revive-after-us=d: fixed outage length before a scheduled revival.
  std::int64_t revive_after_us = 0;

  bool chaos_enabled() const noexcept {
    return crash_fraction > 0.0 || drop_prob > 0.0 || delay_prob > 0.0 ||
           duplicate_prob > 0.0 || !kill.empty();
  }
  bool operator==(const FaultModel&) const = default;
};

/// One executor-agnostic experiment cell. Field defaults are the canonical
/// spec-string defaults: to_string() omits any field at its default, and
/// parse_run_spec() restores exactly these values for omitted keys.
struct RunSpec {
  Collective collective = Collective::kBroadcast;
  ProtocolKind protocol = ProtocolKind::kCorrectedTree;
  topo::TreeSpec tree{};
  proto::CorrectionConfig correction{};
  sim::LogP params{};  ///< P required; also the reduce/allreduce timetable
  FaultModel faults{};
  Executor executor = Executor::kSim;

  /// Gossip budget (protocol == kGossip): rounds when > 0, else time.
  std::int64_t gossip_rounds = 0;
  sim::Time gossip_time = 40;

  /// Ring replication distance of the reduce/allreduce gather phase.
  int reduce_distance = 1;

  // --- run scale ---
  std::int64_t reps = 20;    ///< sim replications / rt measured epochs
  std::int64_t warmup = 2;   ///< rt warmup epochs (sim: unused)
  std::uint64_t seed = 0x5eed5eed;
  int workers = 0;           ///< rt-sharded shard count; 0 = hardware
  std::int64_t deadline_ms = 0;  ///< rt epoch deadline+timeout; 0 = 10 s timeout

  // --- streaming axes (PR8). window > 1 or rate > 0 turns the run into one
  // *stream* of `reps` pipelined epochs instead of `reps` isolated epochs:
  // rt-sharded via Engine::run_stream, sim via proto::StreamMux multiplexing
  // per-epoch protocol instances on one event queue. chunk > 0 additionally
  // splits the `bytes` payload into ceil(bytes/chunk) pipelined chunks per
  // epoch (tree/ack broadcasts; sim prices each message at `chunk` bytes).
  std::int64_t window = 1;  ///< epochs concurrently in flight, [1, 64]
  double rate = 0.0;  ///< open-loop offered epochs/s (sim: model-time, 1 tick ≙ 1 µs)
  std::int64_t chunk = 0;  ///< chunk size in bytes; 0 = unchunked

  // --- rt-sharded executor knobs (exec=rt-sharded:w=8:inbox:pin:mesh-cap=N).
  // Defaults (mesh, no pinning, engine-default capacity) are canonical, so
  // existing spec strings and golden outputs are unchanged.
  bool rt_locked_inbox = false;     ///< ':inbox' — legacy locked MPSC inbox
  bool rt_pin = false;              ///< ':pin' — shard→core thread pinning
  std::int64_t rt_mesh_capacity = 0;  ///< ':mesh-cap=N' per-pair ring; 0 = default

  /// Whether this spec runs as a pipelined stream (the PR8 tentpole).
  bool streaming() const noexcept { return window > 1 || rate > 0.0; }
  /// Pipelined chunks per epoch: ceil(bytes / chunk); 1 when unchunked.
  std::int64_t chunk_count() const noexcept {
    return chunk > 0 ? (params.bytes + chunk - 1) / chunk : 1;
  }

  /// Canonical spec string; parse_run_spec(to_string()) == *this.
  std::string to_string() const;

  /// The sim-side Scenario this spec describes (broadcast collectives).
  Scenario to_scenario() const;

  /// Throws std::invalid_argument for inconsistent axes (P missing, kill
  /// list hitting the root, reduce on a runtime executor, ...). run() and
  /// parse_run_spec() both validate.
  void validate() const;

  bool operator==(const RunSpec&) const = default;
};

/// Inverse of RunSpec::to_string(); accepts keys in any order plus a few
/// input conveniences ("2%" fractions, "rt-thread-per-rank", "sync"
/// aliases). Throws std::invalid_argument with a message naming the
/// offending token.
RunSpec parse_run_spec(const std::string& text);

/// Parses one exec= token — "sim", "rt-sharded[:w=N][:inbox][:pin]
/// [:mesh-cap=N]", "rt-tpr" (alias "rt-thread-per-rank") — into
/// spec.executor and the rt knobs. The shared executor-name table for CLIs
/// taking the executor as its own flag.
/// Throws std::invalid_argument on unknown names or options.
void parse_executor(const std::string& text, RunSpec& spec);

/// Outcome of one RunSpec execution. One struct for both substrates;
/// write_json() emits the identical key set regardless of executor so
/// bench tables can A/B sim against rt cell by cell.
struct RunRecord {
  std::string spec;       ///< canonical spec string of the run
  std::string executor;   ///< executor_name() of the substrate used
  topo::Rank procs = 0;
  std::int64_t workers = 0;  ///< pool workers (sim) / engine threads (rt)
  std::int64_t runs = 0;     ///< measured replications / epochs
  double wall_seconds = 0.0; ///< measured loop only (detail run excluded)

  /// Latency distribution over clean runs. Units differ by substrate —
  /// sim reports LogP model ticks (quiescence latency), rt wall-clock
  /// microseconds (epoch completion) — and latency_unit says which.
  std::string latency_unit;  ///< "ticks" | "us"
  double latency_p50 = 0.0;
  double latency_p99 = 0.0;
  double latency_mean = 0.0;

  double messages_per_process = 0.0;
  double messages_per_sec = 0.0;  ///< delivered sends / wall_seconds
  std::int64_t incomplete = 0;    ///< runs leaving live survivors uncolored
  std::int64_t timeouts = 0;      ///< rt epochs hitting deadline (sim: 0)

  // --- streaming metrics (zero for one-shot runs except latency_p999) ---
  double latency_p999 = 0.0;        ///< tail of the same distribution as p50/p99
  double offered_rate = 0.0;        ///< RunSpec::rate (0 = closed loop)
  double achieved_rate = 0.0;       ///< retired epochs/s (sim: model-time)
  double deliveries_per_sec = 0.0;  ///< colored live ranks/s across the stream

  // --- chaos tallies (all zero under sim except ranks_crashed) ---
  std::int64_t epochs_degraded = 0;
  std::int64_t ranks_crashed = 0;
  std::int64_t messages_dropped = 0;
  std::int64_t messages_delayed = 0;
  std::int64_t messages_duplicated = 0;

  // --- recovery tallies (repair=1 runs only; zeros otherwise). JSON keys
  // are appended at the END of write_json so positional bench tooling
  // written against older records keeps working. ---
  std::int64_t repairs = 0;
  std::int64_t rejoins = 0;
  std::int64_t replayed_epochs = 0;
  std::int64_t state_transfers = 0;
  std::int64_t epochs_to_converge = 0;

  /// Per-rank detail of the *first* measured run (rep 0 / first epoch):
  /// realised mid-run deaths and survivors never colored, both ascending.
  /// The spec-driven sim/rt parity tests compare exactly these.
  std::vector<topo::Rank> crashed_ranks;
  std::vector<topo::Rank> uncolored_survivors;

  /// Sim-only rich aggregate (percentile tables for ct_sim); empty under rt.
  Aggregate aggregate;

  /// Emits this record as a JSON object with a fixed, substrate-independent
  /// key order.
  void write_json(support::JsonWriter& w) const;
};

/// Executes `spec` on the substrate it names and aggregates the result.
/// Deterministic per (spec, pool-independent) on sim; rt runs are wall
/// clock. `pool` parallelises sim replications (ignored by rt executors).
RunRecord run(const RunSpec& spec, const support::ThreadPool* pool = nullptr);

}  // namespace ct::exp

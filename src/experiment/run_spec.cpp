#include "experiment/run_spec.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "protocol/ack_tree.hpp"
#include "protocol/allreduce.hpp"
#include "protocol/gossip_broadcast.hpp"
#include "protocol/reduce.hpp"
#include "protocol/stream_mux.hpp"
#include "protocol/tree_broadcast.hpp"
#include "rt/chaos.hpp"
#include "rt/engine.hpp"
#include "rt/harness.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "topology/gaps.hpp"

namespace ct::exp {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("run spec: " + what);
}

/// Shortest decimal that round-trips to exactly `x` — keeps canonical spec
/// strings short ("0.02", and "1000" rather than "1e+03" for whole-number
/// rates) without losing parse(to_string()) == identity.
std::string format_double(double x) {
  if (x == std::floor(x) && std::abs(x) < 1e15) {
    return std::to_string(static_cast<long long>(x));
  }
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, x);
    if (std::strtod(buf, nullptr) == x) break;
  }
  return buf;
}

bool all_digits(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

std::int64_t parse_int(const std::string& key, const std::string& text) {
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    bad_spec("'" + key + "' wants an integer, got '" + text + "'");
  }
}

std::uint64_t parse_uint(const std::string& key, const std::string& text) {
  try {
    std::size_t pos = 0;
    const std::uint64_t value = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    bad_spec("'" + key + "' wants an unsigned integer, got '" + text + "'");
  }
}

/// Plain decimal, or "N%" percent shorthand (f=2% == f=0.02).
double parse_fraction(const std::string& key, std::string text) {
  double scale = 1.0;
  if (!text.empty() && text.back() == '%') {
    text.pop_back();
    scale = 0.01;
  }
  try {
    std::size_t pos = 0;
    const double value = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return value * scale;
  } catch (const std::exception&) {
    bad_spec("'" + key + "' wants a number, got '" + text + "'");
  }
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = text.find(sep, begin);
    out.push_back(text.substr(begin, end - begin));
    if (end == std::string::npos) return out;
    begin = end + 1;
  }
}

std::string join_ranks(const std::vector<topo::Rank>& ranks) {
  std::string out;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i) out += '+';
    out += std::to_string(ranks[i]);
  }
  return out;
}

std::vector<topo::Rank> parse_rank_list(const std::string& key,
                                        const std::string& text) {
  std::vector<topo::Rank> out;
  for (const std::string& token : split(text, '+')) {
    out.push_back(static_cast<topo::Rank>(parse_int(key, token)));
  }
  return out;
}

bool opportunistic_kind(proto::CorrectionKind kind) {
  return kind == proto::CorrectionKind::kOpportunistic ||
         kind == proto::CorrectionKind::kOptimizedOpportunistic;
}

std::string executor_token(const RunSpec& spec) {
  std::string out = executor_name(spec.executor);
  if (spec.executor != Executor::kSim && spec.workers > 0) {
    out += ":w=" + std::to_string(spec.workers);
  }
  if (spec.rt_locked_inbox) out += ":inbox";
  if (spec.rt_pin) out += ":pin";
  if (spec.rt_mesh_capacity > 0) {
    out += ":mesh-cap=" + std::to_string(spec.rt_mesh_capacity);
  }
  return out;
}

}  // namespace

void parse_executor(const std::string& text, RunSpec& spec) {
  const std::vector<std::string> tokens = split(text, ':');
  const std::string& name = tokens[0];
  if (name == "sim") {
    spec.executor = Executor::kSim;
  } else if (name == "rt-sharded") {
    spec.executor = Executor::kRtSharded;
  } else if (name == "rt-tpr" || name == "rt-thread-per-rank") {
    spec.executor = Executor::kRtThreadPerRank;
  } else {
    bad_spec("unknown executor '" + name + "' (use sim|rt-sharded|rt-tpr)");
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    if (tokens[i].rfind("w=", 0) == 0) {
      spec.workers = static_cast<int>(parse_int("exec:w", tokens[i].substr(2)));
    } else if (tokens[i] == "inbox") {
      spec.rt_locked_inbox = true;
    } else if (tokens[i] == "pin") {
      spec.rt_pin = true;
    } else if (tokens[i].rfind("mesh-cap=", 0) == 0) {
      spec.rt_mesh_capacity = parse_int("exec:mesh-cap", tokens[i].substr(9));
      if (spec.rt_mesh_capacity < 1) {
        bad_spec("exec:mesh-cap must be >= 1");
      }
    } else {
      bad_spec("unknown executor option '" + tokens[i] + "'");
    }
  }
  if (spec.executor == Executor::kSim && spec.workers > 0) {
    bad_spec("exec=sim takes no ':w=' worker count (pass a ThreadPool to run())");
  }
  if (spec.executor != Executor::kRtSharded &&
      (spec.rt_locked_inbox || spec.rt_pin || spec.rt_mesh_capacity > 0)) {
    bad_spec("executor options ':inbox', ':pin', ':mesh-cap' apply to "
             "exec=rt-sharded only");
  }
  if (spec.rt_locked_inbox && spec.rt_mesh_capacity > 0) {
    bad_spec("':mesh-cap' sizes the SPSC mesh — it contradicts ':inbox'");
  }
}

std::string collective_name(Collective c) {
  switch (c) {
    case Collective::kBroadcast:
      return "bcast";
    case Collective::kReduce:
      return "reduce";
    case Collective::kAllreduce:
      return "allreduce";
  }
  throw std::logic_error("unreachable collective");
}

Collective parse_collective(const std::string& text) {
  if (text == "bcast" || text == "broadcast") return Collective::kBroadcast;
  if (text == "reduce") return Collective::kReduce;
  if (text == "allreduce") return Collective::kAllreduce;
  bad_spec("unknown collective '" + text + "' (use bcast|reduce|allreduce)");
}

std::string executor_name(Executor e) {
  switch (e) {
    case Executor::kSim:
      return "sim";
    case Executor::kRtSharded:
      return "rt-sharded";
    case Executor::kRtThreadPerRank:
      return "rt-tpr";
  }
  throw std::logic_error("unreachable executor");
}

std::string RunSpec::to_string() const {
  std::string out = collective_name(collective);
  out += ':' + tree.to_string();
  out += ':' + proto::correction_kind_name(correction.kind);
  if (opportunistic_kind(correction.kind)) {
    out += ':' + std::to_string(correction.distance);
  }
  out += ':' + proto::correction_start_name(correction.start);
  if (correction.directions == proto::CorrectionDirections::kLeftOnly) {
    out += ":left";
  }

  out += "@P=" + std::to_string(params.P);
  const auto kv = [&out](const std::string& key, const std::string& value) {
    out += ',' + key + '=' + value;
  };
  if (protocol == ProtocolKind::kAckTree) kv("proto", "ack");
  if (protocol == ProtocolKind::kGossip) kv("proto", "gossip");
  const sim::LogP defaults{};
  if (params.L != defaults.L) kv("L", std::to_string(params.L));
  if (params.o != defaults.o) kv("o", std::to_string(params.o));
  if (params.g != defaults.g) kv("g", std::to_string(params.g));
  if (params.G != defaults.G) kv("G", std::to_string(params.G));
  if (params.O != defaults.O) kv("O", std::to_string(params.O));
  if (params.bytes != defaults.bytes) kv("bytes", std::to_string(params.bytes));
  if (correction.delay != 0) kv("delay", std::to_string(correction.delay));
  if (correction.sync_time != 0) kv("sync", std::to_string(correction.sync_time));
  if (correction.redundancy != 2) kv("redundancy", std::to_string(correction.redundancy));
  if (gossip_rounds > 0) kv("gossip-rounds", std::to_string(gossip_rounds));
  if (gossip_time != 40) kv("gossip-time", std::to_string(gossip_time));
  if (reduce_distance != 1) kv("rdist", std::to_string(reduce_distance));
  if (faults.count > 0) kv("faults", std::to_string(faults.count));
  if (faults.fraction > 0.0) kv("f", format_double(faults.fraction));
  if (faults.gap_limit > 0) kv("gap", std::to_string(faults.gap_limit));
  if (!faults.kill.empty()) kv("kill", join_ranks(faults.kill));
  if (faults.chaos_seed != 0) kv("chaos-seed", std::to_string(faults.chaos_seed));
  if (faults.crash_fraction > 0.0) kv("crash-frac", format_double(faults.crash_fraction));
  if (faults.crash_window_us != 2000) {
    kv("crash-window-us", std::to_string(faults.crash_window_us));
  }
  if (faults.drop_prob > 0.0) kv("drop-prob", format_double(faults.drop_prob));
  if (faults.delay_prob > 0.0) kv("delay-prob", format_double(faults.delay_prob));
  if (faults.delay_us != 200) kv("delay-us", std::to_string(faults.delay_us));
  if (faults.duplicate_prob > 0.0) kv("dup-prob", format_double(faults.duplicate_prob));
  if (faults.repair) kv("repair", "1");
  if (faults.revive_fraction > 0.0) {
    kv("revive-frac", format_double(faults.revive_fraction));
  }
  if (faults.revive_after_us > 0) {
    kv("revive-after-us", std::to_string(faults.revive_after_us));
  }
  if (reps != 20) kv("reps", std::to_string(reps));
  if (warmup != 2) kv("warmup", std::to_string(warmup));
  if (seed != 0x5eed5eed) kv("seed", std::to_string(seed));
  if (deadline_ms != 0) kv("deadline-ms", std::to_string(deadline_ms));
  if (window != 1) kv("window", std::to_string(window));
  if (rate > 0.0) kv("rate", format_double(rate));
  if (chunk > 0) kv("chunk", std::to_string(chunk));
  kv("exec", executor_token(*this));
  return out;
}

RunSpec parse_run_spec(const std::string& text) {
  RunSpec spec;
  const std::size_t at = text.find('@');
  const std::string head = text.substr(0, at);

  std::vector<std::string> tokens = split(head, ':');
  std::size_t i = 0;
  if (tokens.size() < 3 || head.empty()) {
    bad_spec("'" + text +
             "' is not a spec (want collective:tree:correction:start[@k=v,...])");
  }
  spec.collective = parse_collective(tokens[i++]);

  // Tree family; a following all-digit token is its arity ("kary" + "4").
  {
    std::string tree_text = tokens[i++];
    if (i < tokens.size() && all_digits(tokens[i])) tree_text += ':' + tokens[i++];
    spec.tree = topo::parse_tree_spec(tree_text);  // throws with its own message
  }

  if (i >= tokens.size()) bad_spec("missing correction kind in '" + head + "'");
  spec.correction.kind = proto::parse_correction_kind(tokens[i++]);
  if (i < tokens.size() && all_digits(tokens[i])) {
    spec.correction.distance = static_cast<int>(parse_int("distance", tokens[i++]));
  }

  if (i >= tokens.size()) bad_spec("missing correction start in '" + head + "'");
  spec.correction.start = proto::parse_correction_start(tokens[i++]);
  if (i < tokens.size() && (tokens[i] == "left" || tokens[i] == "left-only")) {
    spec.correction.directions = proto::CorrectionDirections::kLeftOnly;
    ++i;
  }
  if (i != tokens.size()) {
    bad_spec("unexpected trailing token '" + tokens[i] + "' in '" + head + "'");
  }

  if (at != std::string::npos) {
    for (const std::string& pair : split(text.substr(at + 1), ',')) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos || eq == 0) {
        bad_spec("malformed parameter '" + pair + "' (want key=value)");
      }
      const std::string key = pair.substr(0, eq);
      const std::string value = pair.substr(eq + 1);
      if (key == "P") {
        spec.params.P = static_cast<topo::Rank>(parse_int(key, value));
      } else if (key == "proto") {
        if (value == "tree") {
          spec.protocol = ProtocolKind::kCorrectedTree;
        } else if (value == "ack") {
          spec.protocol = ProtocolKind::kAckTree;
        } else if (value == "gossip") {
          spec.protocol = ProtocolKind::kGossip;
        } else {
          bad_spec("unknown protocol '" + value + "' (use tree|ack|gossip)");
        }
      } else if (key == "L") {
        spec.params.L = parse_int(key, value);
      } else if (key == "o") {
        spec.params.o = parse_int(key, value);
      } else if (key == "g") {
        spec.params.g = parse_int(key, value);
      } else if (key == "G") {
        spec.params.G = parse_int(key, value);
      } else if (key == "O") {
        spec.params.O = parse_int(key, value);
      } else if (key == "bytes") {
        spec.params.bytes = parse_int(key, value);
      } else if (key == "delay") {
        spec.correction.delay = parse_int(key, value);
      } else if (key == "sync") {
        spec.correction.sync_time = parse_int(key, value);
      } else if (key == "redundancy") {
        spec.correction.redundancy = static_cast<int>(parse_int(key, value));
      } else if (key == "gossip-rounds") {
        spec.gossip_rounds = parse_int(key, value);
      } else if (key == "gossip-time") {
        spec.gossip_time = parse_int(key, value);
      } else if (key == "rdist") {
        spec.reduce_distance = static_cast<int>(parse_int(key, value));
      } else if (key == "faults") {
        spec.faults.count = static_cast<topo::Rank>(parse_int(key, value));
      } else if (key == "f") {
        spec.faults.fraction = parse_fraction(key, value);
      } else if (key == "gap") {
        spec.faults.gap_limit = static_cast<int>(parse_int(key, value));
      } else if (key == "kill") {
        spec.faults.kill = parse_rank_list(key, value);
      } else if (key == "chaos-seed") {
        spec.faults.chaos_seed = parse_uint(key, value);
      } else if (key == "crash-frac") {
        spec.faults.crash_fraction = parse_fraction(key, value);
      } else if (key == "crash-window-us") {
        spec.faults.crash_window_us = parse_int(key, value);
      } else if (key == "drop-prob") {
        spec.faults.drop_prob = parse_fraction(key, value);
      } else if (key == "delay-prob") {
        spec.faults.delay_prob = parse_fraction(key, value);
      } else if (key == "delay-us") {
        spec.faults.delay_us = parse_int(key, value);
      } else if (key == "dup-prob") {
        spec.faults.duplicate_prob = parse_fraction(key, value);
      } else if (key == "repair") {
        spec.faults.repair = parse_int(key, value) != 0;
      } else if (key == "revive-frac") {
        spec.faults.revive_fraction = parse_fraction(key, value);
      } else if (key == "revive-after-us") {
        spec.faults.revive_after_us = parse_int(key, value);
      } else if (key == "reps") {
        spec.reps = parse_int(key, value);
      } else if (key == "warmup") {
        spec.warmup = parse_int(key, value);
      } else if (key == "seed") {
        spec.seed = parse_uint(key, value);
      } else if (key == "deadline-ms") {
        spec.deadline_ms = parse_int(key, value);
      } else if (key == "window") {
        spec.window = parse_int(key, value);
      } else if (key == "rate") {
        spec.rate = parse_fraction(key, value);
      } else if (key == "chunk") {
        spec.chunk = parse_int(key, value);
      } else if (key == "exec") {
        parse_executor(value, spec);
      } else {
        bad_spec("unknown parameter '" + key + "'");
      }
    }
  }

  spec.validate();
  return spec;
}

void RunSpec::validate() const {
  if (params.P < 1) bad_spec("P=<ranks> is required and must be >= 1");
  params.validate();
  if (reps < 1) bad_spec("reps must be >= 1");
  if (warmup < 0) bad_spec("warmup must be >= 0");
  if (faults.fraction < 0.0 || faults.fraction >= 1.0) {
    bad_spec("static fault fraction must be in [0, 1)");
  }
  for (const double p : {faults.crash_fraction, faults.drop_prob, faults.delay_prob,
                         faults.duplicate_prob}) {
    if (p < 0.0 || p > 1.0) bad_spec("chaos probabilities must be in [0, 1]");
  }
  if (faults.count < 0 || faults.count >= params.P) {
    bad_spec("static fault count must be in [0, P)");
  }
  for (const topo::Rank r : faults.kill) {
    if (r <= 0 || r >= params.P) {
      bad_spec("kill list rank " + std::to_string(r) +
               " out of range (root 0 must stay alive)");
    }
  }
  if (faults.revive_fraction < 0.0 || faults.revive_fraction > 1.0) {
    bad_spec("revive-frac must be in [0, 1]");
  }
  if (faults.revive_after_us < 0) bad_spec("revive-after-us must be >= 0");
  if (faults.repair && executor == Executor::kSim) {
    bad_spec("repair=1 persists crashes across wall-clock epochs; "
             "use exec=rt-sharded or exec=rt-tpr");
  }
  if (faults.revive_fraction > 0.0) {
    if (!faults.repair) bad_spec("revive-frac needs repair=1");
    if (faults.crash_fraction <= 0.0 && faults.kill.empty()) {
      bad_spec("revive-frac without a crash source (crash-frac or kill) never fires");
    }
  }
  if (faults.revive_after_us > 0 && faults.revive_fraction <= 0.0) {
    bad_spec("revive-after-us needs revive-frac > 0");
  }
  if (collective != Collective::kBroadcast && protocol != ProtocolKind::kCorrectedTree) {
    bad_spec("reduce/allreduce have no ack/gossip variant (drop proto=)");
  }
  if (collective == Collective::kReduce && executor != Executor::kSim) {
    bad_spec("reduce colors only the root, so runtime epochs never complete; "
             "use exec=sim or collective allreduce");
  }
  if (protocol == ProtocolKind::kGossip && faults.gap_limit > 0) {
    bad_spec("gap= placement limits need a tree protocol");
  }
  if (executor != Executor::kRtSharded &&
      (rt_locked_inbox || rt_pin || rt_mesh_capacity > 0)) {
    bad_spec("executor options ':inbox', ':pin', ':mesh-cap' apply to "
             "exec=rt-sharded only");
  }
  if (rt_mesh_capacity < 0) bad_spec("exec:mesh-cap must be >= 1");
  if (rt_locked_inbox && rt_mesh_capacity > 0) {
    bad_spec("':mesh-cap' sizes the SPSC mesh — it contradicts ':inbox'");
  }

  // --- streaming axes ---
  if (window < 1 || window > 64) bad_spec("window must be in [1, 64]");
  if (rate < 0.0) bad_spec("rate must be >= 0");
  if (chunk < 0) bad_spec("chunk must be >= 0");
  if (chunk > 0) {
    if (collective != Collective::kBroadcast || protocol == ProtocolKind::kGossip) {
      bad_spec("chunk= needs a tree broadcast (bcast, proto tree|ack)");
    }
    if (chunk_count() > proto::CorrectedTreeBroadcast::kMaxChunks) {
      bad_spec("bytes/chunk yields " + std::to_string(chunk_count()) +
               " chunks; the protocols support at most " +
               std::to_string(proto::CorrectedTreeBroadcast::kMaxChunks));
    }
  }
  if (streaming()) {
    if (collective != Collective::kBroadcast || protocol == ProtocolKind::kGossip) {
      bad_spec("streaming (window/rate) supports bcast with proto tree|ack only");
    }
    if (executor == Executor::kRtThreadPerRank) {
      bad_spec("streaming needs the windowed executor: exec=rt-sharded or exec=sim");
    }
    if (executor == Executor::kSim &&
        (faults.crash_fraction > 0.0 || faults.drop_prob > 0.0 ||
         faults.delay_prob > 0.0 || faults.duplicate_prob > 0.0)) {
      bad_spec("sim streams support kill= deaths only (chaos knobs are rt-only; "
               "per-epoch crash resampling has no sim analog)");
    }
  }
}

Scenario RunSpec::to_scenario() const {
  Scenario scenario;
  scenario.label = to_string();
  scenario.params = params;
  scenario.tree = tree;
  scenario.correction = correction;
  scenario.fault_count = faults.count;
  scenario.fault_fraction = faults.fraction;
  switch (protocol) {
    case ProtocolKind::kCorrectedTree:
      scenario.protocol = ProtocolKind::kCorrectedTree;
      break;
    case ProtocolKind::kAckTree:
      scenario.protocol = ProtocolKind::kAckTree;
      break;
    case ProtocolKind::kGossip:
      scenario.protocol = ProtocolKind::kGossip;
      scenario.gossip.correction = correction;
      if (gossip_rounds > 0) {
        scenario.gossip.budget = proto::GossipConfig::Budget::kRounds;
        scenario.gossip.gossip_rounds = gossip_rounds;
      } else {
        scenario.gossip.budget = proto::GossipConfig::Budget::kTime;
        scenario.gossip.gossip_time = gossip_time;
        scenario.gossip.correction.start = proto::CorrectionStart::kSynchronized;
        scenario.gossip.correction.sync_time = gossip_time;
      }
      break;
  }
  return scenario;
}

namespace {

/// Victim set the chaos knobs realise: explicit kills plus the sampled
/// crash schedule. The sim substrate has no wall clock, so it realises the
/// plan's epoch-1 schedule in *every* replication, with all deaths at t = 1;
/// rt samples per epoch and crash times land inside the crash window. The
/// kill= list is identical on both substrates (the parity model).
std::vector<topo::Rank> sim_chaos_victims(const RunSpec& spec) {
  std::vector<topo::Rank> victims = spec.faults.kill;
  if (spec.faults.crash_fraction > 0.0) {
    rt::ChaosOptions options;
    options.seed = spec.faults.chaos_seed;
    options.crash_fraction = spec.faults.crash_fraction;
    const rt::ChaosPlan plan(options);
    for (topo::Rank r = 1; r < spec.params.P; ++r) {
      if (plan.crash_ns(/*epoch=*/1, r) >= 0) victims.push_back(r);
    }
  }
  std::sort(victims.begin(), victims.end());
  victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
  return victims;
}

void fill_latency(RunRecord& record, const support::Samples& samples) {
  if (samples.empty()) return;
  record.latency_p50 = samples.percentile(0.5);
  record.latency_p99 = samples.percentile(0.99);
  record.latency_p999 = samples.percentile(0.999);
  record.latency_mean = samples.mean();
}

/// A model-time delay of 0 for delayed correction means "pick the substrate
/// default": two message round-trips of silence under sim, 200 µs under rt
/// — so one spec string is runnable on both substrates without naming a
/// unit-specific delay.
void default_delay(proto::CorrectionConfig& correction, const sim::LogP& params,
                   bool wall_clock) {
  if (correction.kind != proto::CorrectionKind::kDelayed || correction.delay != 0) {
    return;
  }
  correction.delay = wall_clock ? 200'000 : 2 * params.message_cost();
}

RunRecord make_record(const RunSpec& spec) {
  RunRecord record;
  record.spec = spec.to_string();
  record.executor = executor_name(spec.executor);
  record.procs = spec.params.P;
  return record;
}

/// Survivors of `faults` never colored in `result`, ascending. Requires a
/// keep_per_rank_detail run.
std::vector<topo::Rank> uncolored_survivors_of(const sim::RunResult& result,
                                               const sim::FaultSet& faults) {
  std::vector<topo::Rank> out;
  for (topo::Rank r = 0; r < result.num_procs; ++r) {
    if (!faults.always_alive(r)) continue;
    if (result.colored_at[static_cast<std::size_t>(r)] == sim::kTimeNever) {
      out.push_back(r);
    }
  }
  return out;
}

RunRecord run_sim_broadcast(const RunSpec& spec, const support::ThreadPool* pool) {
  Scenario scenario = spec.to_scenario();
  scenario.mid_run_deaths = sim_chaos_victims(spec);
  default_delay(scenario.correction, spec.params, /*wall_clock=*/false);
  default_delay(scenario.gossip.correction, spec.params, /*wall_clock=*/false);

  RunRecord record = make_record(spec);
  record.latency_unit = "ticks";
  record.workers = pool ? static_cast<std::int64_t>(pool->size()) : 1;
  record.crashed_ranks = scenario.mid_run_deaths;

  // Untimed detail replication (rep 0) for the per-rank outcome.
  {
    sim::RunOptions options;
    options.keep_per_rank_detail = true;
    const std::uint64_t rep_seed = support::derive_seed(spec.seed, 0);
    const sim::RunResult detail = run_once(scenario, rep_seed, options);
    record.uncolored_survivors =
        uncolored_survivors_of(detail, scenario_faults(scenario, rep_seed));
  }

  const auto start = Clock::now();
  record.aggregate = run_replicated(scenario, static_cast<std::size_t>(spec.reps),
                                    spec.seed, pool);
  record.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();

  record.runs = record.aggregate.runs;
  fill_latency(record, record.aggregate.quiescence_latency);
  record.messages_per_process = record.aggregate.messages_per_process.mean();
  const double total_messages = record.messages_per_process *
                                static_cast<double>(spec.params.P) *
                                static_cast<double>(record.runs);
  record.messages_per_sec =
      record.wall_seconds > 0.0 ? total_messages / record.wall_seconds : 0.0;
  record.incomplete = record.aggregate.not_fully_colored;
  record.ranks_crashed =
      static_cast<std::int64_t>(scenario.mid_run_deaths.size()) * record.runs;
  return record;
}

/// Streamed sim broadcast (PR8): ONE simulator run carries all `reps`
/// epochs, multiplexed by proto::StreamMux so up to `window` are in flight.
/// Latencies are per-epoch sojourn times in model ticks; the open-loop
/// arrival process uses the 1 tick ≙ 1 µs convention (rate in epochs/s →
/// interval 1e6/rate ticks), and the achieved/delivery rates are model-time
/// rates under the same convention — directly comparable shape-wise, not
/// magnitude-wise, to the rt wall-clock rates.
RunRecord run_sim_stream(const RunSpec& spec) {
  Scenario scenario = spec.to_scenario();
  scenario.mid_run_deaths = sim_chaos_victims(spec);  // kill= only (validated)
  proto::CorrectionConfig correction = spec.correction;
  default_delay(correction, spec.params, /*wall_clock=*/false);

  const topo::Tree tree = topo::make_tree(spec.tree, spec.params.P);
  const sim::FaultSet faults =
      scenario_faults(scenario, support::derive_seed(spec.seed, 0));

  // Chunked payloads price every wire message at `chunk` bytes.
  sim::LogP params = spec.params;
  if (spec.chunk > 0) params.bytes = std::min(spec.chunk, spec.params.bytes);
  const auto chunks = static_cast<std::int32_t>(spec.chunk_count());

  proto::StreamMuxOptions mux_options;
  mux_options.epochs = spec.reps;
  mux_options.window = static_cast<std::int32_t>(spec.window);
  mux_options.interval =
      spec.rate > 0.0 ? std::max<sim::Time>(1, std::llround(1e6 / spec.rate)) : 0;
  mux_options.excluded.assign(static_cast<std::size_t>(spec.params.P), 0);
  topo::Rank excluded_count = 0;
  for (topo::Rank r = 0; r < spec.params.P; ++r) {
    if (!faults.always_alive(r)) {
      mux_options.excluded[static_cast<std::size_t>(r)] = 1;
      ++excluded_count;
    }
  }

  proto::StreamMux mux(
      [&]() -> std::unique_ptr<sim::Protocol> {
        if (spec.protocol == ProtocolKind::kAckTree) {
          return std::make_unique<proto::AckTreeBroadcast>(tree, nullptr, chunks);
        }
        return std::make_unique<proto::CorrectedTreeBroadcast>(tree, correction, 0,
                                                               nullptr, nullptr, chunks);
      },
      mux_options);

  RunRecord record = make_record(spec);
  record.latency_unit = "ticks";
  record.workers = 1;  // one event queue; streams have no replication pool
  record.crashed_ranks = scenario.mid_run_deaths;

  sim::Simulator simulator(params, &faults);
  const auto start = Clock::now();
  const sim::RunResult result = simulator.run(mux, sim::RunOptions{});
  record.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();

  support::Samples sojourn;
  std::int64_t deliveries = 0;
  sim::Time last_retire = 0;
  for (const proto::StreamMuxEpoch& epoch : mux.epochs()) {
    record.aggregate.messages_per_process.add(static_cast<double>(epoch.sends) /
                                              static_cast<double>(spec.params.P));
    if (!epoch.complete()) {
      ++record.incomplete;  // stream drained with counted ranks uncolored
      continue;
    }
    sojourn.add(static_cast<double>(epoch.sojourn()));
    deliveries += epoch.colored;
    last_retire = std::max(last_retire, epoch.retired);
  }
  record.runs = mux.retired_count();
  fill_latency(record, sojourn);
  record.messages_per_process =
      spec.reps > 0 ? static_cast<double>(result.total_messages) /
                          static_cast<double>(spec.params.P) /
                          static_cast<double>(spec.reps)
                    : 0.0;
  record.messages_per_sec =
      record.wall_seconds > 0.0
          ? static_cast<double>(result.total_messages) / record.wall_seconds
          : 0.0;
  record.ranks_crashed =
      static_cast<std::int64_t>(scenario.mid_run_deaths.size()) * record.runs;
  record.offered_rate = spec.rate;
  const double model_seconds = static_cast<double>(last_retire) * 1e-6;
  record.achieved_rate =
      model_seconds > 0.0 ? static_cast<double>(record.runs) / model_seconds : 0.0;
  record.deliveries_per_sec =
      model_seconds > 0.0 ? static_cast<double>(deliveries) / model_seconds : 0.0;
  // Per-rank detail of epoch 0, same contract as the one-shot detail rep.
  for (topo::Rank r = 0; r < spec.params.P; ++r) {
    if (faults.always_alive(r) && !mux.colored_in(0, r)) {
      record.uncolored_survivors.push_back(r);
    }
  }
  return record;
}

RunRecord run_sim_reduction(const RunSpec& spec) {
  Scenario scenario = spec.to_scenario();  // fault axes + label only
  scenario.mid_run_deaths = sim_chaos_victims(spec);
  const topo::Tree tree = topo::make_tree(spec.tree, spec.params.P);

  RunRecord record = make_record(spec);
  record.latency_unit = "ticks";
  record.workers = 1;  // reduction reps run serially (no ReplicaPlan path yet)
  record.crashed_ranks = scenario.mid_run_deaths;

  std::vector<std::int64_t> values(static_cast<std::size_t>(spec.params.P));
  for (topo::Rank r = 0; r < spec.params.P; ++r) {
    values[static_cast<std::size_t>(r)] = r % 97;
  }

  std::int64_t total_messages = 0;
  const auto start = Clock::now();
  for (std::int64_t rep = 0; rep < spec.reps; ++rep) {
    const std::uint64_t rep_seed = support::derive_seed(spec.seed, rep);
    sim::FaultSet faults = scenario_faults(scenario, rep_seed);
    sim::Simulator simulator(spec.params, &faults);
    sim::RunOptions options;
    options.keep_per_rank_detail = rep == 0;

    sim::RunResult result;
    bool root_done = false;
    if (spec.collective == Collective::kReduce) {
      proto::CorrectedReduce protocol(tree, spec.params, values,
                                      proto::ReduceConfig{spec.reduce_distance});
      result = simulator.run(protocol, options);
      root_done = protocol.root_done();
    } else {
      proto::AllReduceConfig config;
      config.reduce.distance = spec.reduce_distance;
      config.correction = spec.correction;
      default_delay(config.correction, spec.params, /*wall_clock=*/false);
      proto::CorrectedAllReduce protocol(tree, spec.params, values, config);
      result = simulator.run(protocol, options);
      root_done = protocol.reduction_done();
    }

    ++record.runs;
    record.aggregate.add(result);
    total_messages += result.total_messages;
    if (spec.collective == Collective::kReduce) {
      // Reduce reuses coloring for root completion only, so fully_colored()
      // is meaningless; "incomplete" = the root missed the gather deadline.
      if (!root_done) ++record.incomplete;
    } else if (!result.fully_colored()) {
      ++record.incomplete;
    }
    if (rep == 0 && spec.collective == Collective::kAllreduce) {
      record.uncolored_survivors = uncolored_survivors_of(result, faults);
    }
  }
  record.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();

  fill_latency(record, record.aggregate.quiescence_latency);
  record.messages_per_process = record.aggregate.messages_per_process.mean();
  record.messages_per_sec = record.wall_seconds > 0.0
                                ? static_cast<double>(total_messages) / record.wall_seconds
                                : 0.0;
  record.ranks_crashed =
      static_cast<std::int64_t>(scenario.mid_run_deaths.size()) * record.runs;
  return record;
}

/// Static pre-start failure placement for the runtime. Mirrors the sim-side
/// sample (same RNG stream as replication 0); with gap_limit set, resamples
/// until the statically-uncolored set's largest ring gap is coverable —
/// the fig12 / rt-bench "gap-safe" placement, so coverage-bounded
/// correction completes every epoch (the paper reported full completion).
std::vector<char> static_failures(const RunSpec& spec, const topo::Tree& tree) {
  const topo::Rank procs = spec.params.P;
  std::vector<char> failed(static_cast<std::size_t>(procs), 0);
  if (spec.faults.count == 0 && spec.faults.fraction <= 0.0) return failed;

  support::Xoshiro256ss rng(support::derive_seed(spec.seed, 0));
  for (int attempt = 0;; ++attempt) {
    const sim::FaultSet faults =
        spec.faults.count > 0
            ? sim::FaultSet::random_count(procs, spec.faults.count, rng)
            : sim::FaultSet::random_fraction(procs, spec.faults.fraction, rng);
    bool acceptable = true;
    if (spec.faults.gap_limit > 0 && attempt <= 1000) {
      std::vector<char> colored(static_cast<std::size_t>(procs), 1);
      for (topo::Rank r = 1; r < procs; ++r) {
        for (topo::Rank cur = r; cur != 0; cur = tree.parent(cur)) {
          if (faults.failed_from_start(cur)) {
            colored[static_cast<std::size_t>(r)] = 0;
            break;
          }
        }
      }
      acceptable = topo::analyze_gaps(colored).max_gap <= spec.faults.gap_limit;
    }
    if (acceptable) {
      for (topo::Rank r : faults.initially_failed()) {
        failed[static_cast<std::size_t>(r)] = 1;
      }
      return failed;
    }
  }
}

RunRecord run_rt(const RunSpec& spec) {
  const topo::Tree tree = topo::make_tree(spec.tree, spec.params.P);

  rt::EngineOptions engine_options;
  engine_options.threading = spec.executor == Executor::kRtSharded
                                 ? rt::Threading::kSharded
                                 : rt::Threading::kThreadPerRank;
  engine_options.workers = spec.workers;
  if (spec.rt_locked_inbox) {
    engine_options.cross_shard = rt::CrossShard::kLockedInbox;
  }
  engine_options.pin_threads = spec.rt_pin;
  if (spec.rt_mesh_capacity > 0) {
    engine_options.mesh_capacity = static_cast<std::size_t>(spec.rt_mesh_capacity);
  }
  if (spec.deadline_ms > 0) {
    engine_options.epoch_deadline = std::chrono::milliseconds(spec.deadline_ms);
  }
  engine_options.repair = spec.faults.repair;
  rt::Engine engine(spec.params.P, static_failures(spec, tree), engine_options);

  if (spec.faults.chaos_enabled()) {
    rt::ChaosOptions chaos;
    chaos.seed = spec.faults.chaos_seed;
    chaos.crash_fraction = spec.faults.crash_fraction;
    chaos.crash_window_ns = spec.faults.crash_window_us * 1000;
    chaos.drop_prob = spec.faults.drop_prob;
    chaos.delay_prob = spec.faults.delay_prob;
    chaos.duplicate_prob = spec.faults.duplicate_prob;
    chaos.delay_ns = spec.faults.delay_us * 1000;
    chaos.revive_fraction = spec.faults.revive_fraction;
    chaos.revive_after_ns = spec.faults.revive_after_us * 1000;
    rt::ChaosPlan plan(chaos);
    for (const topo::Rank victim : spec.faults.kill) plan.kill_at_ns(victim, 0);
    engine.set_chaos(std::move(plan));
  }

  proto::CorrectionConfig correction = spec.correction;
  default_delay(correction, spec.params, /*wall_clock=*/true);

  std::vector<std::int64_t> values(static_cast<std::size_t>(spec.params.P));
  for (topo::Rank r = 0; r < spec.params.P; ++r) {
    values[static_cast<std::size_t>(r)] = r % 97;
  }
  proto::GossipConfig gossip;
  if (spec.protocol == ProtocolKind::kGossip) {
    gossip = spec.to_scenario().gossip;
    default_delay(gossip.correction, spec.params, /*wall_clock=*/true);
  }
  std::uint64_t gossip_epoch = 0;
  const auto chunks = static_cast<std::int32_t>(spec.chunk_count());

  const rt::ProtocolFactory factory = [&]() -> std::unique_ptr<sim::Protocol> {
    if (spec.collective == Collective::kAllreduce) {
      proto::AllReduceConfig config;
      config.reduce.distance = spec.reduce_distance;
      config.correction = correction;
      return std::make_unique<proto::CorrectedAllReduce>(tree, spec.params, values,
                                                         config);
    }
    switch (spec.protocol) {
      case ProtocolKind::kAckTree:
        return std::make_unique<proto::AckTreeBroadcast>(tree, nullptr, chunks);
      case ProtocolKind::kGossip: {
        gossip.seed = support::derive_seed(spec.seed, ++gossip_epoch);
        return std::make_unique<proto::CorrectedGossipBroadcast>(spec.params.P, gossip);
      }
      case ProtocolKind::kCorrectedTree:
        break;
    }
    return std::make_unique<proto::CorrectedTreeBroadcast>(tree, correction, 0, nullptr,
                                                           nullptr, chunks);
  };

  if (spec.streaming()) {
    rt::StreamOptions stream;
    stream.epochs = spec.reps;
    stream.window = static_cast<std::int32_t>(spec.window);
    stream.rate = spec.rate;
    stream.keep_rank_state = true;  // first-epoch per-rank detail, like one-shot
    if (spec.deadline_ms > 0) {
      stream.epoch_timeout = std::chrono::milliseconds(spec.deadline_ms);
    }
    const rt::StreamHarnessResult result = rt::measure_stream(engine, factory, stream);

    RunRecord record = make_record(spec);
    record.latency_unit = "us";
    record.workers = static_cast<std::int64_t>(engine.worker_threads());
    record.runs = result.epochs;
    record.wall_seconds = result.wall_seconds;
    fill_latency(record, result.sojourn_us);  // sojourn: queueing + service
    record.messages_per_process =
        result.epochs > 0 ? static_cast<double>(result.total_messages) /
                                static_cast<double>(spec.params.P) /
                                static_cast<double>(result.epochs)
                          : 0.0;
    record.messages_per_sec =
        result.wall_seconds > 0.0
            ? static_cast<double>(result.total_messages) / result.wall_seconds
            : 0.0;
    record.incomplete = result.incomplete;
    record.timeouts = result.timeouts;
    record.ranks_crashed = result.ranks_crashed;
    record.offered_rate = spec.rate;
    record.achieved_rate = result.achieved_rate();
    record.deliveries_per_sec = result.deliveries_per_sec();
    record.repairs = result.repairs;
    record.rejoins = result.rejoins;
    record.state_transfers = result.state_transfers;
    record.epochs_to_converge = result.epochs_to_converge;
    for (const rt::StreamEpoch& epoch : result.raw.epochs) {
      if (epoch.degraded()) ++record.epochs_degraded;
    }
    if (!result.raw.epochs.empty()) {
      const std::vector<rt::RankEnd>& ends = result.raw.epochs.front().rank_state;
      for (topo::Rank r = 0; r < static_cast<topo::Rank>(ends.size()); ++r) {
        if (ends[static_cast<std::size_t>(r)] == rt::RankEnd::kCrashed) {
          record.crashed_ranks.push_back(r);
        } else if (ends[static_cast<std::size_t>(r)] == rt::RankEnd::kUncolored) {
          record.uncolored_survivors.push_back(r);
        }
      }
    }
    return record;
  }

  rt::HarnessOptions harness;
  harness.warmup = spec.warmup;
  harness.iterations = spec.reps;
  if (spec.deadline_ms > 0) {
    harness.epoch_timeout = std::chrono::milliseconds(spec.deadline_ms);
  }

  rt::HarnessResult result;
  if (spec.faults.repair) {
    // Self-healing one-shot path: each epoch's protocol is sized to the live
    // membership; after a repair the tree is rebuilt over the survivors and
    // the harness remaps dense <-> stable global ranks (DESIGN.md §4i). The
    // repaired tree is cached per membership generation — rebuilds happen at
    // repair boundaries only, not every epoch.
    std::int32_t cached_generation = 0;
    std::unique_ptr<topo::Tree> repaired;
    const rt::MembershipProtocolFactory membership_factory =
        [&](const rt::MembershipView& view) -> std::unique_ptr<sim::Protocol> {
      const topo::Tree* t = &tree;
      if (!view.is_identity()) {
        if (!repaired || cached_generation != view.generation()) {
          repaired = std::make_unique<topo::Tree>(
              topo::make_survivor_tree(spec.tree, view.num_live()));
          cached_generation = view.generation();
        }
        t = repaired.get();
      }
      if (spec.collective == Collective::kAllreduce) {
        // Survivor values keyed by *global* rank: the agreed reduction after
        // a repair is the reduction over the survivors' original inputs.
        std::vector<std::int64_t> dense(static_cast<std::size_t>(view.num_live()));
        for (topo::Rank d = 0; d < view.num_live(); ++d) {
          dense[static_cast<std::size_t>(d)] = view.global_of(d) % 97;
        }
        sim::LogP live_params = spec.params;
        live_params.P = view.num_live();
        proto::AllReduceConfig config;
        config.reduce.distance = spec.reduce_distance;
        config.correction = correction;
        return std::make_unique<proto::CorrectedAllReduce>(*t, live_params, dense,
                                                           config);
      }
      switch (spec.protocol) {
        case ProtocolKind::kAckTree:
          return std::make_unique<proto::AckTreeBroadcast>(*t, nullptr, chunks);
        case ProtocolKind::kGossip: {
          gossip.seed = support::derive_seed(spec.seed, ++gossip_epoch);
          return std::make_unique<proto::CorrectedGossipBroadcast>(view.num_live(),
                                                                   gossip);
        }
        case ProtocolKind::kCorrectedTree:
          break;
      }
      return std::make_unique<proto::CorrectedTreeBroadcast>(*t, correction, 0,
                                                             nullptr, nullptr, chunks);
    };
    result = rt::measure_recovery(engine, membership_factory, harness);
  } else {
    result = rt::measure_broadcast(engine, factory, harness);
  }

  RunRecord record = make_record(spec);
  record.latency_unit = "us";
  record.workers = static_cast<std::int64_t>(engine.worker_threads());
  record.runs = result.iterations;
  record.wall_seconds = result.wall_seconds;
  record.latency_p50 = result.p50_us();
  record.latency_p99 = result.p99_us();
  record.latency_p999 = result.p999_us();
  record.latency_mean =
      result.latency_us.empty() ? 0.0 : result.latency_us.mean();
  record.messages_per_process =
      result.messages_per_process.empty() ? 0.0 : result.messages_per_process.mean();
  record.messages_per_sec = result.messages_per_sec();
  record.incomplete = result.incomplete;
  record.timeouts = result.timeouts;
  record.epochs_degraded = result.epochs_degraded;
  record.ranks_crashed = result.ranks_crashed;
  record.messages_dropped = result.messages_dropped;
  record.messages_delayed = result.messages_delayed;
  record.messages_duplicated = result.messages_duplicated;
  record.crashed_ranks = result.first.crashed_ranks;
  record.uncolored_survivors = result.first.uncolored_survivors;
  record.repairs = result.repairs;
  record.rejoins = result.rejoins;
  record.replayed_epochs = result.replayed_epochs;
  record.state_transfers = result.state_transfers;
  record.epochs_to_converge = result.epochs_to_converge;
  return record;
}

}  // namespace

RunRecord run(const RunSpec& spec, const support::ThreadPool* pool) {
  spec.validate();
  if (spec.executor != Executor::kSim) return run_rt(spec);
  if (spec.collective != Collective::kBroadcast) return run_sim_reduction(spec);
  // Chunk-only specs (window = 1, no rate) run as a trivial stream too: the
  // StreamMux path is the one that knows how to build chunked protocols.
  if (spec.streaming() || spec.chunk > 0) return run_sim_stream(spec);
  return run_sim_broadcast(spec, pool);
}

void RunRecord::write_json(support::JsonWriter& w) const {
  w.begin_object()
      .field("spec", spec)
      .field("executor", executor)
      .field("procs", static_cast<std::int64_t>(procs))
      .field("workers", workers)
      .field("runs", runs)
      .field("wall_seconds", wall_seconds, 3)
      .field("latency_unit", latency_unit)
      .field("latency_p50", latency_p50, 1)
      .field("latency_p99", latency_p99, 1)
      .field("latency_mean", latency_mean, 1)
      .field("messages_per_process", messages_per_process, 2)
      .field("messages_per_sec", messages_per_sec, 0)
      .field("incomplete", incomplete)
      .field("timeouts", timeouts)
      .field("epochs_degraded", epochs_degraded)
      .field("ranks_crashed", ranks_crashed)
      .field("messages_dropped", messages_dropped)
      .field("messages_delayed", messages_delayed)
      .field("messages_duplicated", messages_duplicated)
      // Streaming keys appended (never reordered): bench tooling reads
      // records positionally against the pre-PR8 key list.
      .field("latency_p999", latency_p999, 1)
      .field("offered_rate", offered_rate, 1)
      .field("achieved_rate", achieved_rate, 1)
      .field("deliveries_per_sec", deliveries_per_sec, 0)
      // Recovery keys appended after the streaming block, same append-only
      // contract: positional readers of older records stay correct.
      .field("repairs", repairs)
      .field("rejoins", rejoins)
      .field("replayed_epochs", replayed_epochs)
      .field("state_transfers", state_transfers)
      .field("epochs_to_converge", epochs_to_converge)
      .end_object();
}

}  // namespace ct::exp

#pragma once
// Replicated-simulation driver. A Scenario describes one broadcast
// configuration (protocol x tree x correction x fault model x LogP); the
// runner executes N seeded replications (optionally across a thread pool)
// and aggregates the paper's metrics. Every figure/table bench is a sweep
// over Scenarios.

#include <cstdint>
#include <optional>
#include <string>

#include "protocol/ack_tree.hpp"
#include "protocol/config.hpp"
#include "protocol/gossip_broadcast.hpp"
#include "protocol/tree_broadcast.hpp"
#include "sim/logp.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "topology/factory.hpp"

namespace ct::exp {

enum class ProtocolKind {
  kCorrectedTree,  ///< tree dissemination + configured correction
  kAckTree,        ///< acknowledged tree broadcast baseline
  kGossip,         ///< Corrected Gossip baseline
};

struct Scenario {
  std::string label;
  sim::LogP params{};  // P required

  ProtocolKind protocol = ProtocolKind::kCorrectedTree;
  topo::TreeSpec tree{};
  proto::CorrectionConfig correction{};
  proto::GossipConfig gossip{};  // gossip only (correction taken from here)

  /// Fault model: explicit count wins over fraction; both zero = fault-free.
  topo::Rank fault_count = 0;
  double fault_fraction = 0.0;

  /// Ranks killed at simulated time 1 in every replication, *after* the
  /// static sample above — the sim-side mirror of rt::ChaosPlan::kill_at_ns
  /// "mid-epoch" deaths (a rank's first receive completes no earlier than
  /// message_cost() >= 3, so these victims process nothing, exactly like a
  /// chaos kill at ns 0). Used by the RunSpec fault model and the sim/rt
  /// parity tests.
  std::vector<topo::Rank> mid_run_deaths;

  /// For synchronized tree correction with sync_time == 0 the runner fills
  /// in the fault-free dissemination time automatically.
  bool auto_sync_time = true;
};

/// The fault set replication `rep_seed` will run under (static sample plus
/// mid_run_deaths), exposed so callers can tell crashed ranks from uncolored
/// survivors without re-deriving the RNG stream.
sim::FaultSet scenario_faults(const Scenario& scenario, std::uint64_t rep_seed);

/// Reusable per-worker buffers for a replication stream. One plan serves any
/// sequence of replications (any scenario, any P) on one thread at a time;
/// `run_replicated` keeps one per pool worker next to its `sim::Workspace`.
/// Reusing a plan is bit-identical to constructing fresh state per
/// replication: every member follows the epoch-invalidation contract
/// documented in protocol/scratch.hpp, so a rep's setup touches O(faults)
/// slots instead of allocating ~10 O(P) buffers.
struct ReplicaPlan {
  sim::Workspace workspace;
  sim::FaultSet faults;               // resampled into per rep
  proto::TreeScratch tree;            // CorrectedTreeBroadcast per-rank state
  proto::AckScratch ack;              // AckTreeBroadcast per-rank state
  proto::CorrectionScratch correction;  // CorrectionEngine per-rank state
  proto::GossipScratch gossip;        // CorrectedGossipBroadcast per-rank state
  sim::RunResult result;              // detail vectors recycled across reps
};

/// Aggregated metrics over all replications of one scenario.
struct Aggregate {
  support::Samples coloring_latency;
  support::Samples quiescence_latency;
  support::Samples messages_per_process;
  support::Samples max_gap;         // only runs with a dissemination snapshot
  support::Samples gap_count;       // ditto
  support::Samples correction_time; // ditto
  std::int64_t runs = 0;
  std::int64_t not_fully_colored = 0;  // runs leaving live processes uncolored
  std::int64_t uncolored_total = 0;    // sum of uncolored live processes

  void add(const sim::RunResult& result);
  void merge(const Aggregate& other);
  /// Pre-sizes every Samples store for `reps` add() calls (an upper bound —
  /// some series only record a subset of runs) so the replication loop's
  /// aggregation allocates nothing (alloc_guard_test).
  void reserve(std::size_t reps);
};

/// Runs `reps` replications of `scenario`; replication i uses the RNG
/// stream derive_seed(seed, i) for faults (and gossip). Deterministic for a
/// fixed (scenario, reps, seed) regardless of the pool size: chunks are
/// stolen dynamically but partial aggregates merge in fixed chunk order, so
/// the result is byte-identical to the serial loop. Each worker reuses one
/// ReplicaPlan (workspace, fault set, protocol scratches, result buffers)
/// across its replications.
Aggregate run_replicated(const Scenario& scenario, std::size_t reps, std::uint64_t seed,
                         const support::ThreadPool* pool = nullptr);

/// Replications [rep_begin, rep_end) of the same stream: replication i
/// still uses derive_seed(seed, i) with its *global* index, so slices
/// reproduce exactly the runs the full sweep would execute and
/// concatenating slice aggregates in ascending order is byte-identical to
/// run_replicated(scenario, rep_end, seed) started at rep 0. This is the
/// multi-process sharding entry point (exp::run_replicated_mp,
/// tools/sweep_shard): each worker process runs one slice.
Aggregate run_replicated_range(const Scenario& scenario, std::size_t rep_begin,
                               std::size_t rep_end, std::uint64_t seed,
                               const support::ThreadPool* pool = nullptr);

/// Single replication, exposed for tests and detailed inspection.
sim::RunResult run_once(const Scenario& scenario, std::uint64_t rep_seed,
                        const sim::RunOptions& options = {});

/// Single replication into a caller-held plan (the sweep hot path); returns
/// plan.result. Reusing the same plan across calls is bit-identical to the
/// plain overload.
const sim::RunResult& run_once(const Scenario& scenario, std::uint64_t rep_seed,
                               const sim::RunOptions& options, ReplicaPlan& plan);

/// Global experiment scale knobs, honoring CT_PROCS / CT_REPS / CT_SEED env
/// overrides used by the bench suite (see DESIGN.md).
struct Scale {
  topo::Rank procs;
  std::size_t reps;
  std::uint64_t seed;
};
Scale default_scale(topo::Rank default_procs, std::size_t default_reps,
                    std::uint64_t default_seed = 0x5eed5eedULL);

}  // namespace ct::exp

#pragma once
// Replicated-simulation driver. A Scenario describes one broadcast
// configuration (protocol x tree x correction x fault model x LogP); the
// runner executes N seeded replications (optionally across a thread pool)
// and aggregates the paper's metrics. Every figure/table bench is a sweep
// over Scenarios.

#include <cstdint>
#include <optional>
#include <string>

#include "protocol/config.hpp"
#include "protocol/gossip_broadcast.hpp"
#include "sim/logp.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "topology/factory.hpp"

namespace ct::exp {

enum class ProtocolKind {
  kCorrectedTree,  ///< tree dissemination + configured correction
  kAckTree,        ///< acknowledged tree broadcast baseline
  kGossip,         ///< Corrected Gossip baseline
};

struct Scenario {
  std::string label;
  sim::LogP params{};  // P required

  ProtocolKind protocol = ProtocolKind::kCorrectedTree;
  topo::TreeSpec tree{};
  proto::CorrectionConfig correction{};
  proto::GossipConfig gossip{};  // gossip only (correction taken from here)

  /// Fault model: explicit count wins over fraction; both zero = fault-free.
  topo::Rank fault_count = 0;
  double fault_fraction = 0.0;

  /// For synchronized tree correction with sync_time == 0 the runner fills
  /// in the fault-free dissemination time automatically.
  bool auto_sync_time = true;
};

/// Aggregated metrics over all replications of one scenario.
struct Aggregate {
  support::Samples coloring_latency;
  support::Samples quiescence_latency;
  support::Samples messages_per_process;
  support::Samples max_gap;         // only runs with a dissemination snapshot
  support::Samples gap_count;       // ditto
  support::Samples correction_time; // ditto
  std::int64_t runs = 0;
  std::int64_t not_fully_colored = 0;  // runs leaving live processes uncolored
  std::int64_t uncolored_total = 0;    // sum of uncolored live processes

  void add(const sim::RunResult& result);
  void merge(const Aggregate& other);
};

/// Runs `reps` replications of `scenario`; replication i uses the RNG
/// stream derive_seed(seed, i) for faults (and gossip). Deterministic for a
/// fixed (scenario, reps, seed) regardless of the pool size: chunks are
/// stolen dynamically but partial aggregates merge in fixed chunk order, so
/// the result is byte-identical to the serial loop. Each worker reuses one
/// sim::Workspace across its replications.
Aggregate run_replicated(const Scenario& scenario, std::size_t reps, std::uint64_t seed,
                         const support::ThreadPool* pool = nullptr);

/// Single replication, exposed for tests and detailed inspection.
sim::RunResult run_once(const Scenario& scenario, std::uint64_t rep_seed,
                        const sim::RunOptions& options = {});

/// Global experiment scale knobs, honoring CT_PROCS / CT_REPS / CT_SEED env
/// overrides used by the bench suite (see DESIGN.md).
struct Scale {
  topo::Rank procs;
  std::size_t reps;
  std::uint64_t seed;
};
Scale default_scale(topo::Rank default_procs, std::size_t default_reps,
                    std::uint64_t default_seed = 0x5eed5eedULL);

}  // namespace ct::exp

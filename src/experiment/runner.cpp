#include "experiment/runner.hpp"

#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "protocol/ack_tree.hpp"
#include "protocol/tree_broadcast.hpp"
#include "sim/simulator.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"

namespace ct::exp {

void Aggregate::add(const sim::RunResult& result) {
  ++runs;
  if (result.coloring_latency != sim::kTimeNever) {
    coloring_latency.add(static_cast<double>(result.coloring_latency));
  }
  quiescence_latency.add(static_cast<double>(result.quiescence_latency));
  messages_per_process.add(result.messages_per_process());
  if (!result.fully_colored()) {
    ++not_fully_colored;
    uncolored_total += result.uncolored_live;
  }
  if (result.has_dissemination_snapshot) {
    max_gap.add(static_cast<double>(result.dissemination_gaps.max_gap));
    gap_count.add(static_cast<double>(result.dissemination_gaps.gap_count));
    correction_time.add(static_cast<double>(result.correction_time()));
  }
}

void Aggregate::reserve(std::size_t reps) {
  coloring_latency.reserve(reps);
  quiescence_latency.reserve(reps);
  messages_per_process.reserve(reps);
  max_gap.reserve(reps);
  gap_count.reserve(reps);
  correction_time.reserve(reps);
}

void Aggregate::merge(const Aggregate& other) {
  coloring_latency.merge(other.coloring_latency);
  quiescence_latency.merge(other.quiescence_latency);
  messages_per_process.merge(other.messages_per_process);
  max_gap.merge(other.max_gap);
  gap_count.merge(other.gap_count);
  correction_time.merge(other.correction_time);
  runs += other.runs;
  not_fully_colored += other.not_fully_colored;
  uncolored_total += other.uncolored_total;
}

namespace {

void sample_faults(const Scenario& scenario, support::Xoshiro256ss& rng,
                   sim::FaultSet& out) {
  if (scenario.fault_count > 0) {
    sim::FaultSet::sample_count_into(out, scenario.params.P, scenario.fault_count, rng);
  } else if (scenario.fault_fraction > 0.0) {
    sim::FaultSet::sample_fraction_into(out, scenario.params.P, scenario.fault_fraction,
                                        rng);
  } else {
    sim::FaultSet::sample_none_into(out, scenario.params.P);
  }
  // Mid-run deaths stack on top of the static sample; t = 1 is strictly
  // before any rank's first receive can complete (see runner.hpp).
  for (const topo::Rank victim : scenario.mid_run_deaths) out.kill_at(victim, 1);
}

/// Scenario with tree & sync_time resolved; the tree is shared across
/// replications (simulation only reads it).
struct Prepared {
  Scenario scenario;
  std::unique_ptr<topo::Tree> tree;
};

Prepared prepare(const Scenario& input) {
  Prepared prepared{input, nullptr};
  auto& scenario = prepared.scenario;
  scenario.params.validate();
  if (scenario.protocol == ProtocolKind::kGossip) return prepared;

  prepared.tree =
      std::make_unique<topo::Tree>(topo::make_tree(scenario.tree, scenario.params.P));
  if (scenario.protocol == ProtocolKind::kCorrectedTree &&
      scenario.correction.kind != proto::CorrectionKind::kNone &&
      scenario.correction.start == proto::CorrectionStart::kSynchronized &&
      scenario.correction.sync_time == 0 && scenario.auto_sync_time) {
    scenario.correction.sync_time =
        proto::fault_free_dissemination_time(*prepared.tree, scenario.params);
  }
  return prepared;
}

const sim::RunResult& run_prepared(const Prepared& prepared, std::uint64_t rep_seed,
                                   const sim::RunOptions& options, ReplicaPlan& plan) {
  const Scenario& scenario = prepared.scenario;
  support::Xoshiro256ss rng(rep_seed);
  sample_faults(scenario, rng, plan.faults);
  sim::Simulator simulator(scenario.params, &plan.faults);

  switch (scenario.protocol) {
    case ProtocolKind::kCorrectedTree: {
      proto::CorrectedTreeBroadcast protocol(*prepared.tree, scenario.correction,
                                             /*payload=*/0, &plan.tree, &plan.correction);
      simulator.run(protocol, options, plan.workspace, plan.result);
      return plan.result;
    }
    case ProtocolKind::kAckTree: {
      proto::AckTreeBroadcast protocol(*prepared.tree, &plan.ack);
      simulator.run(protocol, options, plan.workspace, plan.result);
      return plan.result;
    }
    case ProtocolKind::kGossip: {
      proto::GossipConfig config = scenario.gossip;
      config.seed = support::derive_seed(rep_seed, 0x60551b);
      proto::CorrectedGossipBroadcast protocol(scenario.params.P, config, &plan.gossip,
                                               &plan.correction);
      simulator.run(protocol, options, plan.workspace, plan.result);
      return plan.result;
    }
  }
  throw std::logic_error("unreachable protocol kind");
}

}  // namespace

sim::FaultSet scenario_faults(const Scenario& scenario, std::uint64_t rep_seed) {
  support::Xoshiro256ss rng(rep_seed);
  sim::FaultSet faults;
  sample_faults(scenario, rng, faults);
  return faults;
}

sim::RunResult run_once(const Scenario& scenario, std::uint64_t rep_seed,
                        const sim::RunOptions& options) {
  ReplicaPlan plan;
  return run_prepared(prepare(scenario), rep_seed, options, plan);
}

const sim::RunResult& run_once(const Scenario& scenario, std::uint64_t rep_seed,
                               const sim::RunOptions& options, ReplicaPlan& plan) {
  return run_prepared(prepare(scenario), rep_seed, options, plan);
}

Aggregate run_replicated(const Scenario& scenario, std::size_t reps, std::uint64_t seed,
                         const support::ThreadPool* pool) {
  return run_replicated_range(scenario, 0, reps, seed, pool);
}

Aggregate run_replicated_range(const Scenario& scenario, std::size_t rep_begin,
                               std::size_t rep_end, std::uint64_t seed,
                               const support::ThreadPool* pool) {
  const Prepared prepared = prepare(scenario);
  const std::size_t reps = rep_end > rep_begin ? rep_end - rep_begin : 0;

  if (!pool || pool->size() <= 1 || reps < 2) {
    Aggregate aggregate;
    aggregate.reserve(reps);
    ReplicaPlan plan;  // reused across every replication
    for (std::size_t rep = rep_begin; rep < rep_end; ++rep) {
      aggregate.add(run_prepared(prepared, support::derive_seed(seed, rep), {}, plan));
    }
    return aggregate;
  }

  // Work-stealing over fixed chunks: chunk k always covers the same rep
  // range, each chunk is accumulated worker-locally (one Aggregate on the
  // worker's stack — adjacent partial[] blocks would false-share cache
  // lines) and written exactly once, and partials merge in k order — so the
  // result is byte-identical to the serial loop no matter which worker ran
  // which chunk. One ReplicaPlan per worker amortises simulator, fault-set
  // and protocol-scratch allocations.
  const std::size_t workers = pool->size();
  const std::size_t chunk = support::ThreadPool::default_chunk(reps, workers);
  std::vector<Aggregate> partial((reps + chunk - 1) / chunk);
  std::vector<ReplicaPlan> plans(workers);
  pool->parallel_for_chunks(
      reps, chunk, [&](std::size_t worker, std::size_t begin, std::size_t end) {
        Aggregate local;
        for (std::size_t rep = begin; rep < end; ++rep) {
          local.add(run_prepared(prepared, support::derive_seed(seed, rep_begin + rep), {},
                                 plans[worker]));
        }
        partial[begin / chunk] = std::move(local);
      });
  Aggregate aggregate;
  aggregate.reserve(reps);
  for (const Aggregate& part : partial) aggregate.merge(part);
  return aggregate;
}

Scale default_scale(topo::Rank default_procs, std::size_t default_reps,
                    std::uint64_t default_seed) {
  support::Options env;  // no argv: env vars only
  Scale scale;
  scale.procs = static_cast<topo::Rank>(env.get_int("procs", default_procs));
  scale.reps = static_cast<std::size_t>(env.get_int("reps", static_cast<std::int64_t>(default_reps)));
  scale.seed = static_cast<std::uint64_t>(env.get_int("seed", static_cast<std::int64_t>(default_seed)));
  return scale;
}

}  // namespace ct::exp

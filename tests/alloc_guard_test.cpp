// Allocation-regression guard for the replication hot path. The ReplicaPlan
// refactor's whole point is that a steady-state replication touches reused
// buffers instead of allocating ~10 O(P) vectors; this test pins that down
// by counting global operator new calls across 100 reused-plan replications
// and failing if the per-rep count creeps above a small constant. Labeled
// `sanitize` (see tests/CMakeLists.txt) alongside the determinism suite.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "experiment/runner.hpp"

// --- Counting global allocator ------------------------------------------------
// Replaces the default operator new/delete for the whole binary. Counting is
// relaxed-atomic (the measured section below is single-threaded; the counter
// only needs to not tear). Alignment-extended overloads are not replaced —
// nothing on the measured path uses over-aligned types.

namespace {
std::atomic<std::uint64_t> g_new_calls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ct::exp {
namespace {

Scenario corrected_tree_scenario(topo::Rank procs, double fault_fraction) {
  Scenario scenario;
  scenario.params = sim::LogP{2, 1, 1, procs};
  scenario.protocol = ProtocolKind::kCorrectedTree;
  scenario.tree.kind = topo::TreeKind::kBinomialInterleaved;
  scenario.correction.kind = proto::CorrectionKind::kChecked;
  scenario.correction.start = proto::CorrectionStart::kSynchronized;
  scenario.fault_fraction = fault_fraction;
  return scenario;
}

std::uint64_t count_allocs(const Scenario& scenario, std::size_t reps) {
  const std::uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  const Aggregate aggregate = run_replicated(scenario, reps, /*seed=*/42);
  EXPECT_EQ(aggregate.runs, static_cast<std::int64_t>(reps));
  return g_new_calls.load(std::memory_order_relaxed) - before;
}

TEST(AllocGuard, SteadyStateReplicationIsAllocationBounded) {
  // A steady-state rep allocates nothing by design: the CorrectionEngine
  // comes from the scratch's reuse cache (acquire_correction_engine), the
  // aggregate's Samples are reserve()d up front, and everything O(P) —
  // workspace, event queues, fault set, protocol scratches, result detail
  // vectors including gap_sizes — comes from the reused ReplicaPlan. What
  // remains is rare high-water-mark growth in reused buffers (a rep drawing
  // more faults than any before it grows the fault vector once) — measured
  // ~0.06/rep. The budget below fails on any new per-rep allocation: even a
  // single unique_ptr per rep (the pre-PR7 engine build, ~1.2/rep) blows it
  // by 4x.
  constexpr double kMaxAllocsPerRep = 0.25;

  const Scenario scenario = corrected_tree_scenario(/*procs=*/512, /*fault_fraction=*/0.02);

  // Both measured calls pay the same one-time costs (tree build, first-rep
  // buffer growth inside the fresh plan); the difference isolates the 100
  // marginal steady-state replications.
  const std::size_t base_reps = 16;
  const std::size_t extended_reps = base_reps + 100;
  (void)count_allocs(scenario, base_reps);  // warm-up: malloc arena, lazy init
  const std::uint64_t base = count_allocs(scenario, base_reps);
  const std::uint64_t extended = count_allocs(scenario, extended_reps);

  ASSERT_GE(extended, base) << "extended run must allocate at least as much";
  const double per_rep =
      static_cast<double>(extended - base) / static_cast<double>(extended_reps - base_reps);
  RecordProperty("allocs_per_rep", std::to_string(per_rep));
  EXPECT_LE(per_rep, kMaxAllocsPerRep)
      << "steady-state replication allocates " << per_rep
      << " times per rep; the ReplicaPlan reuse contract bounds this at "
      << kMaxAllocsPerRep << " (an O(P) buffer is being rebuilt per rep)";
}

TEST(AllocGuard, ReusedPlanRunOnceSettlesToBoundedAllocations) {
  // Same property at the run_once granularity, without the Aggregate in the
  // loop: after the first rep grows the plan's buffers, further reps with
  // the same plan stay under the same small budget. run_once re-prepares the
  // scenario each call (tree build + sync-time probe), so this variant
  // drives run_prepared through a Prepared scenario only once — via
  // run_replicated with reps==1 per measurement it would re-pay the tree;
  // instead measure consecutive single reps sharing one plan through the
  // public overload and subtract a fresh-tree baseline measured separately.
  const Scenario scenario = corrected_tree_scenario(/*procs=*/256, /*fault_fraction=*/0.02);

  ReplicaPlan plan;
  (void)run_once(scenario, /*rep_seed=*/1, {}, plan);  // grow the plan's buffers
  const std::uint64_t before_a = g_new_calls.load(std::memory_order_relaxed);
  (void)run_once(scenario, /*rep_seed=*/2, {}, plan);
  const std::uint64_t reused = g_new_calls.load(std::memory_order_relaxed) - before_a;

  const std::uint64_t before_b = g_new_calls.load(std::memory_order_relaxed);
  ReplicaPlan fresh;
  (void)run_once(scenario, /*rep_seed=*/2, {}, fresh);
  const std::uint64_t cold = g_new_calls.load(std::memory_order_relaxed) - before_b;

  // Both calls rebuild the scenario (tree construction dominates both
  // counts); the reused plan must not additionally rebuild its own buffers.
  EXPECT_LT(reused, cold)
      << "a reused plan allocated as much as a cold one (reused=" << reused
      << ", cold=" << cold << ")";
}

}  // namespace
}  // namespace ct::exp

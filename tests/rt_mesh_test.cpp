// SPSC mesh suite (DESIGN.md §4f), registered under the `sanitize` ctest
// label so the tsan preset runs it. Covers the ring primitive itself
// (wrap-around, prefix-accept backpressure, a two-thread FIFO stress), the
// engine built on top of it (capacity-1 rings with the chained-send bound,
// crashed-rank discard under chaos, shutdown while rings still hold mail),
// locked-inbox vs mesh outcome equality across the six correction
// algorithms, and the EngineOptions validation the mesh added.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "experiment/run_spec.hpp"
#include "protocol/tree_broadcast.hpp"
#include "rt/engine.hpp"
#include "rt/shard_queue.hpp"
#include "support/rng.hpp"
#include "topology/factory.hpp"

namespace ct::rt {
namespace {

using topo::Rank;

Envelope make_envelope(std::int64_t payload) {
  return Envelope{
      sim::Message{.src = 0, .dst = 1, .tag = sim::tag::kTree, .payload = payload},
      /*tag=*/Envelope::make_tag(/*epoch=*/1, /*generation=*/0)};
}

proto::CorrectionConfig make_correction(proto::CorrectionKind kind) {
  proto::CorrectionConfig config;
  config.kind = kind;
  config.start = proto::CorrectionStart::kOverlapped;
  config.distance = 4;
  return config;
}

TEST(SpscRing, CapacityRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(SpscRing(0).capacity(), 1u);  // engine rejects 0; the ring clamps
  EXPECT_EQ(SpscRing(1).capacity(), 1u);
  EXPECT_EQ(SpscRing(5).capacity(), 8u);
  EXPECT_EQ(SpscRing(1024).capacity(), 1024u);
}

TEST(SpscRing, WrapAroundPreservesFifoAcrossManyGenerations) {
  SpscRing ring(8);
  std::vector<Envelope> out;
  std::int64_t next_push = 0;
  std::int64_t next_pop = 0;
  // Push in batches of 3 against capacity 8 so head/tail lap the slot
  // array hundreds of times and every offset sees both roles.
  while (next_pop < 2000) {
    Envelope batch[3];
    for (int i = 0; i < 3; ++i) batch[i] = make_envelope(next_push + i);
    next_push += static_cast<std::int64_t>(ring.push_batch(batch, 3));
    out.clear();
    ring.pop_all_into(out);
    for (const Envelope& e : out) {
      ASSERT_EQ(e.msg.payload, next_pop);
      ++next_pop;
    }
  }
  EXPECT_GE(next_push, next_pop);
}

TEST(SpscRing, FullRingAcceptsAPrefixAndResumesAfterDrain) {
  SpscRing ring(4);
  ASSERT_EQ(ring.capacity(), 4u);
  std::vector<Envelope> batch;
  for (std::int64_t i = 0; i < 6; ++i) batch.push_back(make_envelope(i));
  // A full ring accepts exactly the free prefix — the producer keeps the
  // rest staged, which is the mesh's whole backpressure story.
  EXPECT_EQ(ring.push_batch(batch.data(), batch.size()), 4u);
  EXPECT_TRUE(ring.poll());
  EXPECT_EQ(ring.push_batch(batch.data() + 4, 2), 0u);
  std::vector<Envelope> out;
  EXPECT_EQ(ring.pop_all_into(out), 4u);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].msg.payload, i);
  EXPECT_FALSE(ring.poll());
  EXPECT_EQ(ring.push_batch(batch.data() + 4, 2), 2u);
  out.clear();
  EXPECT_EQ(ring.pop_all_into(out), 2u);
  EXPECT_EQ(out[0].msg.payload, 4);
  EXPECT_EQ(out[1].msg.payload, 5);
}

TEST(SpscRing, ClearResetsBothSides) {
  SpscRing ring(2);
  const Envelope e = make_envelope(7);
  ASSERT_EQ(ring.push_batch(&e, 1), 1u);
  ring.clear();
  EXPECT_FALSE(ring.poll());
  std::vector<Envelope> out;
  EXPECT_EQ(ring.pop_all_into(out), 0u);
  EXPECT_EQ(ring.push_batch(&e, 1), 1u);  // indices restart cleanly
  EXPECT_EQ(ring.pop_all_into(out), 1u);
}

TEST(SpscRing, TwoThreadStressKeepsStrictFifo) {
  // The TSan-facing test: one producer, one consumer, a ring small enough
  // that backpressure and wrap-around fire constantly. Any missing
  // acquire/release pairing shows up as a torn payload or a data race.
  constexpr std::int64_t kTotal = 200'000;
  SpscRing ring(64);
  std::thread producer([&] {
    std::int64_t sent = 0;
    while (sent < kTotal) {
      Envelope batch[16];
      const std::int64_t n = std::min<std::int64_t>(16, kTotal - sent);
      for (std::int64_t i = 0; i < n; ++i) batch[i] = make_envelope(sent + i);
      std::size_t accepted = 0;
      while (accepted < static_cast<std::size_t>(n)) {
        const std::size_t got =
            ring.push_batch(batch + accepted,
                            static_cast<std::size_t>(n) - accepted);
        accepted += got;
        if (got == 0) std::this_thread::yield();
      }
      sent += n;
    }
  });
  std::vector<Envelope> out;
  std::int64_t received = 0;
  while (received < kTotal) {
    out.clear();
    if (ring.pop_all_into(out) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (const Envelope& e : out) {
      ASSERT_EQ(e.msg.payload, received);
      ++received;
    }
  }
  producer.join();
  EXPECT_FALSE(ring.poll());
}

TEST(MeshEngine, CapacityOneRingsCompleteUnderBackpressure) {
  // mesh_capacity=1 is the worst case: every cross-shard batch degenerates
  // to one-envelope hops and almost every send stages and retries. The
  // chained-send bound (drain work discovered while flushing is deferred,
  // not recursed into) is what keeps this from livelocking; the assertion
  // is simply that epochs still complete and color everyone.
  const Rank procs = 64;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions options;
  options.workers = 4;  // forces real cross-shard traffic even on 1 core
  options.mesh_capacity = 1;
  Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0),
                options);
  for (int epoch = 0; epoch < 6; ++epoch) {
    proto::CorrectedTreeBroadcast protocol(
        tree, make_correction(proto::CorrectionKind::kChecked));
    const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(60));
    ASSERT_FALSE(result.timed_out) << "epoch " << epoch;
    EXPECT_EQ(result.uncolored_live, 0) << "epoch " << epoch;
  }
}

TEST(MeshEngine, CrashedRankMailIsDiscardedUnderChaos) {
  // Mid-epoch crashes leave mail addressed to dead ranks in flight inside
  // the rings; the consumer must discard it (and balance the crash
  // bookkeeping) rather than deliver to a crashed rank or wedge. Tiny
  // rings keep plenty of envelopes staged at crash time.
  const Rank procs = 256;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions options;
  options.workers = 4;
  options.mesh_capacity = 4;
  options.epoch_deadline = std::chrono::seconds(5);
  Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0),
                options);
  ChaosOptions chaos;
  chaos.seed = 0x6E57u;
  chaos.crash_fraction = 0.03;
  chaos.drop_prob = 0.01;
  chaos.delay_prob = 0.01;
  chaos.delay_ns = 100'000;
  engine.set_chaos(ChaosPlan(chaos));
  std::int64_t crashes = 0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    proto::CorrectedTreeBroadcast protocol(
        tree, make_correction(proto::CorrectionKind::kChecked));
    const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(30));
    ASSERT_FALSE(result.timed_out) << "epoch " << epoch;
    EXPECT_EQ(result.uncolored_live, 0) << "epoch " << epoch;
    ASSERT_EQ(result.crashed_mid_epoch,
              static_cast<std::int32_t>(result.crashed_ranks.size()));
    crashes += result.crashed_mid_epoch;
  }
  EXPECT_GT(crashes, 0);  // 3% of 256 ranks over 12 epochs
}

TEST(MeshEngine, ShutdownAndEpochResetWithNonEmptyRings) {
  // Force a deadline expiry mid-broadcast so rings and staged buffers still
  // hold mail, then (a) run a clean epoch on the same engine — reset must
  // drop every stale-epoch leftover — and (b) end the scope with mail still
  // in flight so the destructor's shutdown path runs against non-empty
  // rings. The test passing at all (no hang, no sanitizer report) is the
  // assertion for (b).
  const Rank procs = 64;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions options;
  options.workers = 4;
  options.mesh_capacity = 2;
  options.epoch_deadline = std::chrono::milliseconds(100);
  Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0),
                options);
  ChaosPlan plan;
  const Rank victim = tree.children(0)[0];
  plan.kill_at_ns(victim, 0);
  engine.set_chaos(std::move(plan));
  {
    // No correction + a dead first child: the subtree is unreachable, so
    // the epoch must end at the deadline with traffic still queued.
    proto::CorrectedTreeBroadcast protocol(
        tree, make_correction(proto::CorrectionKind::kNone));
    const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(60));
    ASSERT_TRUE(result.timed_out);
    EXPECT_GT(result.uncolored_live, 0);
  }
  {
    // Same engine, next epoch: checked correction reaches everyone, so a
    // single stale envelope surviving the reset would surface as a wrong
    // color or a sanitizer report.
    proto::CorrectedTreeBroadcast protocol(
        tree, make_correction(proto::CorrectionKind::kChecked));
    const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(60));
    ASSERT_FALSE(result.timed_out);
    EXPECT_EQ(result.uncolored_live, 0);
    EXPECT_EQ(result.crashed_ranks, std::vector<Rank>{victim});
  }
  {
    // Leave the engine dirty again right before destruction.
    proto::CorrectedTreeBroadcast protocol(
        tree, make_correction(proto::CorrectionKind::kNone));
    const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(60));
    ASSERT_TRUE(result.timed_out);
  }
}

// --- locked inbox vs mesh: outcome equality across the six algorithms ---
//
// Spec-driven like the sim/rt parity suite (DESIGN.md §4e): the kill=
// victims die before sending anything, so the survivor-coloring outcome is
// the timing-independent coverage of the correction algorithm — identical
// no matter which cross-shard backend carried the mail. The mesh side runs
// with mesh-cap=2 so the equality also holds under heavy backpressure.

std::string ab_cell(Rank procs, const std::vector<Rank>& victims,
                    proto::CorrectionKind kind) {
  std::string spec = "bcast:binomial:";
  spec += proto::correction_kind_name(kind);
  if (kind == proto::CorrectionKind::kOpportunistic ||
      kind == proto::CorrectionKind::kOptimizedOpportunistic) {
    spec += ":4";
  }
  spec += ":overlapped@P=" + std::to_string(procs);
  spec += ",kill=";
  for (std::size_t i = 0; i < victims.size(); ++i) {
    if (i) spec += '+';
    spec += std::to_string(victims[i]);
  }
  spec += ",reps=1,warmup=0";
  return spec;
}

std::vector<Rank> pick_victims(Rank procs, int count, support::Xoshiro256ss& rng) {
  std::vector<Rank> victims;
  while (static_cast<int>(victims.size()) < count) {
    const auto v =
        static_cast<Rank>(1 + rng.below(static_cast<std::uint64_t>(procs) - 1));
    if (std::find(victims.begin(), victims.end(), v) == victims.end()) {
      victims.push_back(v);
    }
  }
  std::sort(victims.begin(), victims.end());
  return victims;
}

TEST(MeshInboxParity, SixCorrectionAlgorithmsAgreeUnderCrashes) {
  const Rank procs = 24;
  const struct {
    proto::CorrectionKind kind;
    bool completes;  // guaranteed to color every survivor -> no timeout
  } kinds[] = {
      {proto::CorrectionKind::kNone, false},
      {proto::CorrectionKind::kOpportunistic, false},
      {proto::CorrectionKind::kOptimizedOpportunistic, false},
      {proto::CorrectionKind::kChecked, true},
      {proto::CorrectionKind::kFailureProof, true},
      {proto::CorrectionKind::kDelayed, true},
  };
  support::Xoshiro256ss rng(0x3E5Du);
  for (int scenario = 0; scenario < 2; ++scenario) {
    const std::vector<Rank> victims = pick_victims(procs, 2 + scenario, rng);
    for (const auto& k : kinds) {
      const std::string cell = ab_cell(procs, victims, k.kind);
      SCOPED_TRACE(cell);
      // Coverage-bounded corrections that cannot reach someone never
      // complete; bound those cells so both backends stop at the deadline.
      const std::string deadline =
          k.completes ? std::string() : std::string("deadline-ms=400,");
      const exp::RunRecord inbox = exp::run(exp::parse_run_spec(
          cell + "," + deadline + "exec=rt-sharded:w=4:inbox"));
      const exp::RunRecord mesh = exp::run(exp::parse_run_spec(
          cell + "," + deadline + "exec=rt-sharded:w=4:mesh-cap=2"));
      EXPECT_EQ(mesh.uncolored_survivors, inbox.uncolored_survivors);
      EXPECT_EQ(mesh.crashed_ranks, inbox.crashed_ranks);
      EXPECT_EQ(inbox.crashed_ranks, victims);
      EXPECT_EQ(mesh.incomplete > 0, inbox.incomplete > 0);
    }
  }
}

// --- EngineOptions validation added with the mesh ---

TEST(MeshOptions, ZeroCapacitiesAreRejectedUpFront) {
  const std::vector<char> none(8, 0);
  EngineOptions mesh_zero;
  mesh_zero.mesh_capacity = 0;
  EXPECT_THROW(Engine(8, none, mesh_zero), std::invalid_argument);
  EngineOptions inbox_zero;
  inbox_zero.cross_shard = CrossShard::kLockedInbox;
  inbox_zero.inbox_capacity = 0;
  EXPECT_THROW(Engine(8, none, inbox_zero), std::invalid_argument);
}

TEST(MeshOptions, WorkerCountIsClampedToRanksAndOversubscriptionCap) {
  const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  {
    // More workers than ranks: no empty shards.
    EngineOptions options;
    options.workers = 64;
    Engine engine(8, std::vector<char>(8, 0), options);
    EXPECT_EQ(engine.worker_threads(), 8u);
  }
  {
    // Absurd worker counts hit the oversubscription cap instead of building
    // a gigantic S² mesh. Small rings keep the clamp test cheap.
    EngineOptions options;
    options.workers = 100000;
    options.mesh_capacity = 2;
    Engine engine(256, std::vector<char>(256, 0), options);
    EXPECT_EQ(engine.worker_threads(),
              std::min<std::size_t>(256, std::max<std::size_t>(16, 8 * hw)));
  }
  {
    // workers <= 0 falls back to hardware concurrency (clamped to P; the
    // ceiling-division slicing may merge a remainder shard, hence LE).
    EngineOptions options;
    options.workers = -3;
    Engine engine(8, std::vector<char>(8, 0), options);
    EXPECT_GE(engine.worker_threads(), 1u);
    EXPECT_LE(engine.worker_threads(), std::min<std::size_t>(8, hw));
  }
}

}  // namespace
}  // namespace ct::rt

// RunSpec layer tests (DESIGN.md §4e): the string round-trip property over
// every axis, rejection diagnostics for malformed specs, the JSON writer,
// and one tiny exp::run smoke per (executor x protocol) cell — the
// "spec-smoke" ctest label. The acceptance property of the layer is that
// one spec string runs unmodified under exec=sim and exec=rt-* and yields
// RunRecords with the identical metric key set.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "experiment/run_spec.hpp"
#include "support/json.hpp"

namespace ct::exp {
namespace {

RunSpec base_spec(topo::Rank procs = 64) {
  RunSpec spec;
  spec.params.P = procs;
  return spec;
}

// --- round-trip property -------------------------------------------------

void expect_roundtrip(const RunSpec& spec) {
  const std::string text = spec.to_string();
  SCOPED_TRACE(text);
  const RunSpec parsed = parse_run_spec(text);
  EXPECT_EQ(parsed, spec);
  // Canonical form is a fixed point.
  EXPECT_EQ(parsed.to_string(), text);
}

TEST(RunSpecRoundTrip, Defaults) { expect_roundtrip(base_spec()); }

TEST(RunSpecRoundTrip, EveryCollective) {
  for (const Collective c :
       {Collective::kBroadcast, Collective::kReduce, Collective::kAllreduce}) {
    RunSpec spec = base_spec();
    spec.collective = c;
    expect_roundtrip(spec);
  }
}

TEST(RunSpecRoundTrip, EveryExecutor) {
  for (const Executor e :
       {Executor::kSim, Executor::kRtSharded, Executor::kRtThreadPerRank}) {
    RunSpec spec = base_spec();
    spec.executor = e;
    expect_roundtrip(spec);
    if (e != Executor::kSim) {
      spec.workers = 8;
      expect_roundtrip(spec);
    }
  }
}

TEST(RunSpecRoundTrip, RtShardedCrossShardKnobs) {
  // The PR6 executor options: ':inbox' (legacy locked MPSC), ':pin'
  // (shard→core pinning) and ':mesh-cap=N' (per-pair ring capacity).
  RunSpec spec = base_spec();
  spec.executor = Executor::kRtSharded;
  spec.workers = 8;
  spec.rt_locked_inbox = true;
  expect_roundtrip(spec);
  spec.rt_pin = true;
  expect_roundtrip(spec);
  spec.rt_locked_inbox = false;
  spec.rt_mesh_capacity = 64;
  expect_roundtrip(spec);
  spec.rt_pin = false;
  spec.rt_mesh_capacity = 2;
  expect_roundtrip(spec);
}

TEST(RunSpecRoundTrip, EveryProtocol) {
  for (const ProtocolKind p : {ProtocolKind::kCorrectedTree, ProtocolKind::kAckTree,
                               ProtocolKind::kGossip}) {
    RunSpec spec = base_spec();
    spec.protocol = p;
    expect_roundtrip(spec);
  }
}

TEST(RunSpecRoundTrip, EveryTreeFamily) {
  for (const char* tree : {"binomial", "binomial-inorder", "kary:3", "kary-inorder:4",
                           "lame:2", "optimal"}) {
    RunSpec spec = base_spec();
    spec.tree = topo::parse_tree_spec(tree);
    expect_roundtrip(spec);
  }
}

TEST(RunSpecRoundTrip, EveryCorrectionKindStartAndDirection) {
  for (const proto::CorrectionKind kind :
       {proto::CorrectionKind::kNone, proto::CorrectionKind::kOpportunistic,
        proto::CorrectionKind::kOptimizedOpportunistic, proto::CorrectionKind::kChecked,
        proto::CorrectionKind::kFailureProof, proto::CorrectionKind::kDelayed}) {
    for (const proto::CorrectionStart start :
         {proto::CorrectionStart::kSynchronized, proto::CorrectionStart::kOverlapped}) {
      for (const proto::CorrectionDirections dir :
           {proto::CorrectionDirections::kBoth, proto::CorrectionDirections::kLeftOnly}) {
        RunSpec spec = base_spec();
        spec.correction.kind = kind;
        spec.correction.start = start;
        spec.correction.directions = dir;
        // The :d head token exists only for the opportunistic kinds; other
        // kinds keep the (unused) default so the round-trip is exact.
        if (kind == proto::CorrectionKind::kOpportunistic ||
            kind == proto::CorrectionKind::kOptimizedOpportunistic) {
          spec.correction.distance = 2;
        }
        expect_roundtrip(spec);
      }
    }
  }
}

TEST(RunSpecRoundTrip, AllKeyValueAxes) {
  RunSpec spec = base_spec(1024);
  spec.params.L = 7;
  spec.params.o = 2;
  spec.params.g = 3;
  spec.params.G = 1;
  spec.params.O = 1;
  spec.params.bytes = 64;
  spec.correction.kind = proto::CorrectionKind::kDelayed;
  spec.correction.delay = 123;
  spec.correction.sync_time = 55;
  spec.correction.redundancy = 3;
  spec.faults.count = 17;
  spec.faults.fraction = 0.02;
  spec.faults.gap_limit = 8;
  spec.faults.kill = {3, 9, 11};
  spec.faults.chaos_seed = 0xC0FFEE;
  spec.faults.crash_fraction = 0.015625;
  spec.faults.crash_window_us = 750;
  spec.faults.drop_prob = 0.01;
  spec.faults.delay_prob = 0.25;
  spec.faults.duplicate_prob = 0.001;
  spec.faults.delay_us = 333;
  spec.reps = 7;
  spec.warmup = 0;
  spec.seed = 42;
  spec.deadline_ms = 400;
  spec.executor = Executor::kRtSharded;
  spec.workers = 4;
  expect_roundtrip(spec);
}

TEST(RunSpecRoundTrip, GossipBudgets) {
  RunSpec spec = base_spec();
  spec.protocol = ProtocolKind::kGossip;
  spec.gossip_rounds = 9;
  expect_roundtrip(spec);
  spec.gossip_rounds = 0;
  spec.gossip_time = 60;
  expect_roundtrip(spec);
}

TEST(RunSpecRoundTrip, ReduceDistance) {
  RunSpec spec = base_spec();
  spec.collective = Collective::kAllreduce;
  spec.reduce_distance = 3;
  expect_roundtrip(spec);
}

TEST(RunSpecRoundTrip, RepairAndReviveAxes) {
  // PR9 self-healing axes: repair alone, repair + a revive schedule, and
  // the fixed-outage variant, on both rt executors.
  for (const Executor e : {Executor::kRtSharded, Executor::kRtThreadPerRank}) {
    RunSpec spec = base_spec();
    spec.executor = e;
    spec.faults.repair = true;
    expect_roundtrip(spec);
    spec.faults.chaos_seed = 0xBEEF;
    spec.faults.crash_fraction = 0.02;
    spec.faults.revive_fraction = 0.5;
    expect_roundtrip(spec);
    spec.faults.revive_fraction = 1.0;
    spec.faults.revive_after_us = 1500;
    expect_roundtrip(spec);
  }
  // kill= as the crash source works too.
  RunSpec spec = base_spec();
  spec.executor = Executor::kRtSharded;
  spec.faults.kill = {3, 9};
  spec.faults.repair = true;
  spec.faults.revive_fraction = 1.0;
  expect_roundtrip(spec);
}

TEST(RunSpecParse, AcceptsConveniences) {
  // Percent fractions, key order, aliases.
  const RunSpec a = parse_run_spec("bcast:binomial:checked:overlapped@P=256,f=2%");
  EXPECT_DOUBLE_EQ(a.faults.fraction, 0.02);
  const RunSpec b = parse_run_spec("broadcast:binomial:checked:sync@f=0.02,P=256");
  EXPECT_EQ(a.faults.fraction, b.faults.fraction);
  EXPECT_EQ(b.correction.start, proto::CorrectionStart::kSynchronized);
  const RunSpec c =
      parse_run_spec("bcast:binomial:checked:overlapped@P=8,exec=rt-thread-per-rank");
  EXPECT_EQ(c.executor, Executor::kRtThreadPerRank);
}

TEST(RunSpecParse, AcceptanceExampleSpecString) {
  const RunSpec spec = parse_run_spec(
      "bcast:binomial:checked:overlapped@P=1024,f=2%,exec=rt-sharded:w=8");
  EXPECT_EQ(spec.collective, Collective::kBroadcast);
  EXPECT_EQ(spec.correction.kind, proto::CorrectionKind::kChecked);
  EXPECT_EQ(spec.params.P, 1024);
  EXPECT_EQ(spec.executor, Executor::kRtSharded);
  EXPECT_EQ(spec.workers, 8);
}

// --- rejection diagnostics ----------------------------------------------

void expect_rejected(const std::string& text, const std::string& needle) {
  try {
    parse_run_spec(text);
    FAIL() << "expected rejection of '" << text << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message for '" << text << "' was: " << e.what();
  }
}

TEST(RunSpecParse, RejectsMalformedSpecs) {
  expect_rejected("", "not a spec");
  expect_rejected("bcast:binomial", "not a spec");
  expect_rejected("mcast:binomial:checked:overlapped@P=8", "unknown collective");
  expect_rejected("bcast:quadtree:checked:overlapped@P=8", "quadtree");
  expect_rejected("bcast:binomial:sometimes:overlapped@P=8", "sometimes");
  expect_rejected("bcast:binomial:checked:never@P=8", "correction start");
  expect_rejected("bcast:binomial:checked:overlapped:extra@P=8", "trailing token");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,zzz=1", "unknown parameter");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,reps", "key=value");
  expect_rejected("bcast:binomial:checked:overlapped@P=abc", "integer");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,f=banana", "number");
  expect_rejected("bcast:binomial:checked:overlapped@reps=3", "P=");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,exec=gpu", "unknown executor");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,exec=rt-sharded:x=2",
                  "executor option");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,exec=sim:w=2", "ThreadPool");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,exec=rt-sharded:mesh-cap=0",
                  "mesh-cap must be >= 1");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,exec=sim:inbox",
                  "rt-sharded only");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,exec=rt-tpr:pin",
                  "rt-sharded only");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,exec=rt-tpr:mesh-cap=4",
                  "rt-sharded only");
  expect_rejected(
      "bcast:binomial:checked:overlapped@P=8,exec=rt-sharded:inbox:mesh-cap=4",
      "contradicts");
}

TEST(RunSpecParse, RejectsInconsistentAxes) {
  expect_rejected("bcast:binomial:checked:overlapped@P=8,kill=0", "root");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,kill=9", "out of range");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,f=1.5", "fraction");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,drop-prob=2", "probabilities");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,reps=0", "reps");
  expect_rejected("reduce:binomial:checked:overlapped@P=8,exec=rt-sharded",
                  "exec=sim");
  expect_rejected("reduce:binomial:checked:overlapped@P=8,proto=gossip",
                  "reduce/allreduce");
  expect_rejected("bcast:binomial:checked:overlapped@P=8,proto=gossip,gap=4",
                  "tree protocol");
  // PR9 self-healing axes: repair is a wall-clock (rt) concept, and the
  // revive knobs form a dependency chain repair=1 -> revive-frac ->
  // revive-after-us with a crash source required to ever fire.
  expect_rejected("bcast:binomial:checked:overlapped@P=8,repair=1",
                  "exec=rt-sharded");
  expect_rejected(
      "bcast:binomial:checked:overlapped@P=8,revive-frac=1,crash-frac=2%,"
      "exec=rt-sharded",
      "repair=1");
  expect_rejected(
      "bcast:binomial:checked:overlapped@P=8,repair=1,revive-frac=1.5,"
      "crash-frac=2%,exec=rt-sharded",
      "revive-frac");
  expect_rejected(
      "bcast:binomial:checked:overlapped@P=8,repair=1,revive-frac=1,"
      "exec=rt-sharded",
      "crash source");
  expect_rejected(
      "bcast:binomial:checked:overlapped@P=8,repair=1,revive-after-us=100,"
      "crash-frac=2%,exec=rt-sharded",
      "revive-frac > 0");
}

// --- JSON writer ---------------------------------------------------------

TEST(JsonWriter, EscapesAndNests) {
  support::JsonWriter w;
  w.begin_object()
      .field("name", "a\"b\\c\n\t")
      .key("rows")
      .begin_array()
      .value(std::int64_t{1})
      .value(2.5, 1)
      .value(false)
      .end_array()
      .key("nested")
      .begin_object()
      .field("x", std::int64_t{-3})
      .end_object()
      .end_object();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"name\": \"a\\\"b\\\\c\\n\\t\",\n"
            "  \"rows\": [\n"
            "    1,\n"
            "    2.5,\n"
            "    false\n"
            "  ],\n"
            "  \"nested\": {\n"
            "    \"x\": -3\n"
            "  }\n"
            "}");
}

TEST(JsonWriter, ThrowsOnUnbalancedDocument) {
  support::JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.str(), std::logic_error);
}

TEST(JsonWriter, ControlCharactersEscaped) {
  EXPECT_EQ(support::JsonWriter::escape(std::string("a\x01z")), "a\\u0001z");
}

// --- exp::run smoke: one tiny cell per (executor x protocol) --------------

std::set<std::string> json_keys(const RunRecord& record) {
  support::JsonWriter w;
  record.write_json(w);
  std::set<std::string> keys;
  const std::string& text = w.str();
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t end = text.find('"', pos + 1);
    const std::string token = text.substr(pos + 1, end - pos - 1);
    if (text.compare(end + 1, 1, ":") == 0) keys.insert(token);
    pos = end + 1;
  }
  return keys;
}

TEST(SpecSmoke, SimExecutorAllProtocols) {
  for (const char* spec :
       {"bcast:binomial:checked:overlapped@P=24,kill=5,reps=2,exec=sim",
        "bcast:binomial:none:overlapped@P=24,proto=ack,reps=2,exec=sim",
        "bcast:binomial:checked:overlapped@P=24,proto=gossip,gossip-rounds=6,reps=2,"
        "exec=sim"}) {
    SCOPED_TRACE(spec);
    const RunRecord record = run(parse_run_spec(spec));
    EXPECT_EQ(record.executor, "sim");
    EXPECT_EQ(record.runs, 2);
    EXPECT_EQ(record.latency_unit, "ticks");
    EXPECT_GT(record.latency_p50, 0.0);
    EXPECT_GT(record.messages_per_process, 0.0);
  }
}

TEST(SpecSmoke, SimReduceAndAllreduce) {
  const RunRecord reduce =
      run(parse_run_spec("reduce:kary-inorder:3:checked:overlapped@P=24,reps=2"));
  EXPECT_EQ(reduce.incomplete, 0);
  EXPECT_GT(reduce.latency_p50, 0.0);

  const RunRecord allreduce = run(
      parse_run_spec("allreduce:kary-inorder:3:checked:overlapped@P=24,kill=7,reps=2"));
  EXPECT_EQ(allreduce.incomplete, 0);
  EXPECT_EQ(allreduce.crashed_ranks, std::vector<topo::Rank>{7});
  EXPECT_TRUE(allreduce.uncolored_survivors.empty());
}

TEST(SpecSmoke, RtShardedExecutorAllProtocols) {
  for (const char* spec :
       {"bcast:binomial:checked:overlapped@P=24,kill=5,reps=2,warmup=1,"
        "exec=rt-sharded:w=4",
        "bcast:binomial:none:overlapped@P=24,proto=ack,reps=2,warmup=1,"
        "exec=rt-sharded:w=4",
        "bcast:binomial:checked:overlapped@P=24,proto=gossip,gossip-rounds=6,reps=2,"
        "warmup=1,exec=rt-sharded:w=4"}) {
    SCOPED_TRACE(spec);
    const RunRecord record = run(parse_run_spec(spec));
    EXPECT_EQ(record.executor, "rt-sharded");
    EXPECT_EQ(record.runs, 2);
    EXPECT_EQ(record.latency_unit, "us");
    EXPECT_EQ(record.timeouts, 0);
    EXPECT_GT(record.latency_p50, 0.0);
  }
}

TEST(SpecSmoke, RtThreadPerRankExecutor) {
  const RunRecord record = run(parse_run_spec(
      "bcast:binomial:checked:overlapped@P=16,reps=2,warmup=1,exec=rt-tpr"));
  EXPECT_EQ(record.executor, "rt-tpr");
  EXPECT_EQ(record.runs, 2);
  EXPECT_EQ(record.incomplete, 0);
}

TEST(SpecSmoke, RtAllreduce) {
  // 1 tick = 50 µs keeps the reduce timetable comfortably ahead of real
  // thread wakeups (see DESIGN.md §4e).
  const RunRecord record = run(parse_run_spec(
      "allreduce:kary-inorder:3:checked:overlapped@P=16,L=100000,o=50000,g=50000,"
      "reps=2,warmup=1,exec=rt-sharded:w=4"));
  EXPECT_EQ(record.incomplete, 0);
  EXPECT_EQ(record.timeouts, 0);
}

TEST(SpecSmoke, RtRepairRecoveryCell) {
  // The PR9 recovery path end-to-end through the spec layer: persistent
  // crashes, boundary repair, immediate revive. kill= overrides fire at
  // ns 0 of every epoch (crash-frac would be timing-dependent: a fast
  // epoch can retire before its scheduled crash instant), so each epoch
  // deterministically kills the victims, repairs at the boundary, and
  // readmits them — the run ends converged.
  const RunRecord record = run(parse_run_spec(
      "bcast:binomial:checked:overlapped@P=96,kill=5+9,repair=1,"
      "revive-frac=1,reps=6,warmup=1,exec=rt-sharded:w=4"));
  EXPECT_EQ(record.runs, 6);
  EXPECT_EQ(record.timeouts, 0);
  EXPECT_GT(record.ranks_crashed, 0);
  EXPECT_GT(record.repairs, 0);
  EXPECT_GT(record.rejoins, 0);
  EXPECT_LE(record.epochs_to_converge, 3);
}

TEST(SpecSmoke, MetricKeysIdenticalAcrossExecutors) {
  const std::string cell = "bcast:binomial:checked:overlapped@P=24,kill=5,reps=2";
  const RunRecord sim_record = run(parse_run_spec(cell + ",exec=sim"));
  const RunRecord rt_record =
      run(parse_run_spec(cell + ",warmup=1,exec=rt-sharded:w=4"));
  EXPECT_EQ(json_keys(sim_record), json_keys(rt_record));
  // Chaos tallies exist under sim but read zero (except realised crashes).
  EXPECT_EQ(sim_record.messages_dropped, 0);
  EXPECT_EQ(sim_record.timeouts, 0);
  EXPECT_EQ(sim_record.ranks_crashed, 2);  // kill=5 realised in both reps
  // The identical victim set is realised on both substrates.
  EXPECT_EQ(sim_record.crashed_ranks, rt_record.crashed_ranks);
}

TEST(SpecSmoke, DeterministicUnderSim) {
  const char* cell =
      "bcast:binomial:opportunistic:2:overlapped@P=48,f=0.1,reps=4,seed=7";
  const RunRecord a = run(parse_run_spec(cell));
  const RunRecord b = run(parse_run_spec(cell));
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.messages_per_process, b.messages_per_process);
  EXPECT_EQ(a.uncolored_survivors, b.uncolored_survivors);
}

}  // namespace
}  // namespace ct::exp

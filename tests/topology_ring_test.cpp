// Ring arithmetic, gap analysis, and the Definition-1 interleaving verifier.

#include <gtest/gtest.h>

#include <stdexcept>

#include "topology/factory.hpp"
#include "topology/gaps.hpp"
#include "topology/interleave.hpp"
#include "topology/ring.hpp"

namespace ct::topo {
namespace {

// --- Ring ----------------------------------------------------------------------

TEST(Ring, NeighboursWrapAround) {
  const Ring ring(8);
  EXPECT_EQ(ring.right(7), 0);
  EXPECT_EQ(ring.left(0), 7);
  EXPECT_EQ(ring.right(3, 10), 5);
  EXPECT_EQ(ring.left(3, 10), 1);
  EXPECT_EQ(ring.right(2, -1), 1);  // negative steps go the other way
}

TEST(Ring, Distances) {
  const Ring ring(10);
  EXPECT_EQ(ring.distance_right(2, 5), 3);
  EXPECT_EQ(ring.distance_right(5, 2), 7);
  EXPECT_EQ(ring.distance_left(2, 5), 7);
  EXPECT_EQ(ring.distance_left(5, 2), 3);
  EXPECT_EQ(ring.distance_right(4, 4), 0);
}

TEST(Ring, BetweenRight) {
  const Ring ring(10);
  EXPECT_TRUE(ring.between_right(8, 1, 3));   // 8 -> 9 -> 0 -> 1 -> 2 -> 3
  EXPECT_TRUE(ring.between_right(8, 3, 3));   // inclusive end
  EXPECT_FALSE(ring.between_right(8, 8, 3));  // exclusive start
  EXPECT_FALSE(ring.between_right(8, 5, 3));
}

TEST(Ring, SingleProcessDegenerates) {
  const Ring ring(1);
  EXPECT_EQ(ring.right(0), 0);
  EXPECT_EQ(ring.left(0, 5), 0);
  EXPECT_THROW(Ring(0), std::invalid_argument);
}

// --- Gap analysis ----------------------------------------------------------------

std::vector<char> coloring(std::initializer_list<int> colored_ranks, Rank procs) {
  std::vector<char> c(static_cast<std::size_t>(procs), 0);
  for (int r : colored_ranks) c[static_cast<std::size_t>(r)] = 1;
  return c;
}

TEST(Gaps, FullyColoredHasNoGaps) {
  std::vector<char> all(16, 1);
  const GapStats stats = analyze_gaps(all);
  EXPECT_EQ(stats.max_gap, 0);
  EXPECT_EQ(stats.gap_count, 0);
  EXPECT_EQ(stats.uncolored, 0);
}

TEST(Gaps, SingleInteriorGap) {
  const GapStats stats = analyze_gaps(coloring({0, 1, 2, 6, 7}, 8));
  EXPECT_EQ(stats.max_gap, 3);  // {3,4,5}
  EXPECT_EQ(stats.gap_count, 1);
  EXPECT_EQ(stats.uncolored, 3);
}

TEST(Gaps, WrapAroundGapIsOneRun) {
  // Uncolored {6,7,0-is-colored?...}: colored {1,2,3}, uncolored {4,...,0}.
  const GapStats stats = analyze_gaps(coloring({1, 2, 3}, 8));
  EXPECT_EQ(stats.max_gap, 5);  // {4,5,6,7,0}
  EXPECT_EQ(stats.gap_count, 1);
}

TEST(Gaps, MultipleGapsSizes) {
  const GapStats stats = analyze_gaps(coloring({0, 2, 3, 7}, 10));
  // gaps: {1}, {4,5,6}, {8,9}
  EXPECT_EQ(stats.max_gap, 3);
  EXPECT_EQ(stats.gap_count, 3);
  EXPECT_EQ(stats.uncolored, 6);
  std::int64_t sum = 0;
  for (Rank g : stats.gap_sizes) sum += g;
  EXPECT_EQ(sum, stats.uncolored);
}

TEST(Gaps, RequiresAColoredProcess) {
  std::vector<char> none(4, 0);
  EXPECT_THROW(analyze_gaps(none), std::invalid_argument);
  EXPECT_THROW(analyze_gaps({}), std::invalid_argument);
}

TEST(Gaps, EveryNthColored) {
  // Every 2nd process colored: max gap 1.
  std::vector<char> alternating(12, 0);
  for (std::size_t i = 0; i < 12; i += 2) alternating[i] = 1;
  EXPECT_TRUE(every_nth_colored(alternating, 2));
  EXPECT_FALSE(every_nth_colored(alternating, 1));
  EXPECT_THROW(every_nth_colored(alternating, 0), std::invalid_argument);
}

TEST(Gaps, InOrderFailureMakesOneBigGap) {
  // Fig. 1a/3: failing rank 4 of the in-order binary tree (P = 7) leaves the
  // contiguous gap {5, 6}; in the interleaved tree failing rank 2 leaves two
  // gaps of size 1.
  const Tree inorder = make_kary_inorder(7, 2);
  std::vector<char> colored_inorder(7, 1);
  colored_inorder[4] = 0;  // the failed process itself stays uncolored
  for (Rank r : inorder.subtree_ranks(4)) colored_inorder[static_cast<std::size_t>(r)] = 0;
  const GapStats in_stats = analyze_gaps(colored_inorder);
  EXPECT_EQ(in_stats.max_gap, 3);
  EXPECT_EQ(in_stats.gap_count, 1);

  const Tree interleaved = make_kary_interleaved(7, 2);
  std::vector<char> colored_inter(7, 1);
  for (Rank r : interleaved.subtree_ranks(2)) colored_inter[static_cast<std::size_t>(r)] = 0;
  const GapStats inter_stats = analyze_gaps(colored_inter);
  EXPECT_EQ(inter_stats.max_gap, 1);
  EXPECT_EQ(inter_stats.gap_count, 3);  // {2}, {4}, {6}
}

// --- Definition 1 verifier --------------------------------------------------------

class InterleavedFamilyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(InterleavedFamilyTest, SatisfiesDefinition1) {
  // The paper claims interleaving "also for incomplete trees" — test both
  // full and clipped sizes.
  for (Rank procs : {1, 2, 7, 8, 16, 31, 32, 57, 64, 100}) {
    const Tree tree = make_tree(parse_tree_spec(GetParam()), procs);
    const auto violation = find_interleave_violation(tree);
    EXPECT_FALSE(violation.has_value())
        << GetParam() << " P=" << procs << ": " << violation->to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Families, InterleavedFamilyTest,
                         ::testing::Values("binomial", "kary:2", "kary:3", "kary:4",
                                           "lame:2", "lame:3", "lame:5", "optimal"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == ':') ch = '_';
                           }
                           return name;
                         });

TEST(Interleave, InOrderTreesViolateDefinition1) {
  EXPECT_FALSE(is_interleaved(make_binomial_inorder(8)));
  EXPECT_FALSE(is_interleaved(make_kary_inorder(7, 2)));
  EXPECT_FALSE(is_interleaved(make_kary_inorder(40, 3)));
  const auto violation = find_interleave_violation(make_binomial_inorder(8));
  ASSERT_TRUE(violation.has_value());
  EXPECT_FALSE(violation->to_string().empty());
}

TEST(Interleave, TrivialTreesAreInterleaved) {
  EXPECT_TRUE(is_interleaved(make_binomial_inorder(1)));
  EXPECT_TRUE(is_interleaved(make_binomial_inorder(2)));
  // A star: all pairs share only the root.
  EXPECT_TRUE(is_interleaved(Tree("star", {kNoRank, 0, 0, 0}, {{1, 2, 3}, {}, {}, {}})));
  // A chain: every adjacent pair descends from one another.
  EXPECT_TRUE(is_interleaved(Tree("chain", {kNoRank, 0, 1, 2}, {{1}, {2}, {3}, {}})));
}

TEST(Interleave, PaperExampleSubtreePairs) {
  // §3.2 worked example on Fig. 4 (right): for the subtree rooted at 1 the
  // ring pairs are (1,3), (3,5), (5,7), (7,1) and all satisfy the rule.
  const Tree tree = make_binomial_interleaved(8);
  EXPECT_EQ(tree.subtree_ranks(1), (std::vector<Rank>{1, 3, 5, 7}));
  EXPECT_EQ(tree.lca(3, 5), 1);
  EXPECT_EQ(tree.lca(5, 7), 1);
  // ... while e.g. (5,6) and (6,7), adjacent on the FULL ring, descend from
  // different children of the root — allowed because root(T_f) = 0.
  EXPECT_EQ(tree.lca(5, 6), 0);
  EXPECT_EQ(tree.lca(6, 7), 0);
  EXPECT_TRUE(is_interleaved(tree));
}

TEST(Interleave, ViolationDiagnosticsAreConsistent) {
  // For a known-violating tree, the reported witness must itself satisfy
  // the verifier's claims: the pair is inside the named subtree and its LCA
  // is a proper inner node distinct from both ranks and the subtree root.
  const Tree tree = make_kary_inorder(15, 2);
  const auto violation = find_interleave_violation(tree);
  ASSERT_TRUE(violation.has_value());
  // The reported pair really is adjacent in its subtree's ring and really
  // violates the rule.
  const auto ranks = tree.subtree_ranks(violation->subtree_root);
  EXPECT_NE(std::find(ranks.begin(), ranks.end(), violation->first), ranks.end());
  EXPECT_NE(std::find(ranks.begin(), ranks.end(), violation->second), ranks.end());
  EXPECT_EQ(tree.lca(violation->first, violation->second), violation->lca);
  EXPECT_NE(violation->lca, violation->subtree_root);
  EXPECT_NE(violation->lca, violation->first);
  EXPECT_NE(violation->lca, violation->second);
}

}  // namespace
}  // namespace ct::topo

// Tree construction tests: the exact structures from the paper's Figures
// 3-5, the closed-form/constructive cross-checks for Lamé and optimal trees
// (Eq. 1 + Eq. 2), and structural invariants for every family over a sweep
// of process counts (including non-powers: "our node numbering scheme
// maintains the interleaving ... also for incomplete trees").

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

#include "topology/factory.hpp"
#include "topology/tree.hpp"

namespace ct::topo {
namespace {

std::vector<Rank> children_of(const Tree& tree, Rank r) {
  auto span = tree.children(r);
  return {span.begin(), span.end()};
}

// --- Tree base class ----------------------------------------------------------

TEST(Tree, ValidatesSpanningStructure) {
  // 0 -> 1 -> 2 chain.
  Tree chain("chain", {kNoRank, 0, 1}, {{1}, {2}, {}});
  EXPECT_EQ(chain.num_procs(), 3);
  EXPECT_EQ(chain.parent(2), 1);
  EXPECT_EQ(chain.depth(2), 2);
  EXPECT_EQ(chain.height(), 2);
  EXPECT_EQ(chain.subtree_size(0), 3);
  EXPECT_EQ(chain.subtree_size(1), 2);
}

TEST(Tree, RejectsInconsistentParents) {
  // children say parent(2) == 0, parent array says 1.
  EXPECT_THROW(Tree("bad", {kNoRank, 0, 1}, {{1, 2}, {}, {}}), std::invalid_argument);
}

TEST(Tree, RejectsTwoParents) {
  EXPECT_THROW(Tree("bad", {kNoRank, 0, 0}, {{1, 2}, {2}, {}}), std::invalid_argument);
}

TEST(Tree, RejectsNonRootedRankZero) {
  EXPECT_THROW(Tree("bad", {0, kNoRank}, {{}, {0}}), std::invalid_argument);
}

TEST(Tree, RejectsOrphan) {
  EXPECT_THROW(Tree("bad", {kNoRank, kNoRank}, {{}, {}}), std::invalid_argument);
}

TEST(Tree, LcaAndSubtreeRanks) {
  const Tree tree = make_binomial_interleaved(8);
  // 0 -> {1,2,4}, 1 -> {3,5}, 2 -> {6}, 3 -> {7}
  EXPECT_EQ(tree.lca(3, 5), 1);
  EXPECT_EQ(tree.lca(7, 5), 1);
  EXPECT_EQ(tree.lca(6, 4), 0);
  EXPECT_EQ(tree.lca(3, 3), 3);
  EXPECT_EQ(tree.subtree_ranks(1), (std::vector<Rank>{1, 3, 5, 7}));
  EXPECT_EQ(tree.subtree_ranks(2), (std::vector<Rank>{2, 6}));
}

// --- Exact structures from the paper -------------------------------------------

TEST(KAry, Figure3InOrderBinary) {
  // Fig. 3 left: binary in-order tree, P = 7. Depth-first numbering; the
  // failure of process 4 leaves the contiguous gap {5, 6}.
  const Tree tree = make_kary_inorder(7, 2);
  EXPECT_EQ(children_of(tree, 0), (std::vector<Rank>{1, 4}));
  EXPECT_EQ(children_of(tree, 1), (std::vector<Rank>{2, 3}));
  EXPECT_EQ(children_of(tree, 4), (std::vector<Rank>{5, 6}));
  EXPECT_TRUE(children_of(tree, 5).empty());
}

TEST(KAry, Figure3InterleavedBinary) {
  // Fig. 3 right: process 4 is a child of 2 while its ring neighbours 3 and
  // 5 are children of 1.
  const Tree tree = make_kary_interleaved(7, 2);
  EXPECT_EQ(children_of(tree, 0), (std::vector<Rank>{1, 2}));
  EXPECT_EQ(children_of(tree, 1), (std::vector<Rank>{3, 5}));
  EXPECT_EQ(children_of(tree, 2), (std::vector<Rank>{4, 6}));
  EXPECT_EQ(tree.parent(4), 2);
  EXPECT_EQ(tree.parent(3), 1);
  EXPECT_EQ(tree.parent(5), 1);
}

TEST(Binomial, Figure4Interleaved) {
  // Fig. 4 right: children(r) = { r + 2^i : 2^i > r }.
  const Tree tree = make_binomial_interleaved(8);
  EXPECT_EQ(children_of(tree, 0), (std::vector<Rank>{1, 2, 4}));
  EXPECT_EQ(children_of(tree, 1), (std::vector<Rank>{3, 5}));
  EXPECT_EQ(children_of(tree, 2), (std::vector<Rank>{6}));
  EXPECT_EQ(children_of(tree, 3), (std::vector<Rank>{7}));
  EXPECT_TRUE(children_of(tree, 4).empty());
}

TEST(Binomial, Figure4InOrderHasContiguousSubtrees) {
  const Tree tree = make_binomial_inorder(8);
  // Every subtree occupies a contiguous rank interval (the defining
  // property that makes failures produce one large gap).
  for (Rank r = 0; r < tree.num_procs(); ++r) {
    const auto ranks = tree.subtree_ranks(r);
    EXPECT_EQ(ranks.back() - ranks.front() + 1, static_cast<Rank>(ranks.size()))
        << "subtree of " << r << " is not contiguous";
  }
  EXPECT_EQ(tree.height(), 3);
}

TEST(Lame, Figure5OrderThree) {
  // Lamé tree k = 3, P = 9 (Fig. 5): from Eq. 2, children(0) = {1,2,3,4,6},
  // children(1) = {5,7}, children(2) = {8}.
  const Tree tree = make_lame(9, 3);
  EXPECT_EQ(children_of(tree, 0), (std::vector<Rank>{1, 2, 3, 4, 6}));
  EXPECT_EQ(children_of(tree, 1), (std::vector<Rank>{5, 7}));
  EXPECT_EQ(children_of(tree, 2), (std::vector<Rank>{8}));
  for (Rank r = 3; r < 9; ++r) EXPECT_TRUE(children_of(tree, r).empty());
}

// --- Ready-to-send sequences (Eq. 1 and the optimal-tree recurrence) ----------

TEST(ReadyToSend, BinomialDoubles) {
  for (std::int64_t t = 0; t <= 20; ++t) {
    EXPECT_EQ(lame_ready_to_send(1, t), std::int64_t{1} << t);
  }
  EXPECT_EQ(lame_ready_to_send(1, -1), 0);
}

TEST(ReadyToSend, OrderThreeIsNarayana) {
  // R(t) = R(t-1) + R(t-3) with R(0..2) = 1: OEIS A000930.
  const std::vector<std::int64_t> expected{1, 1, 1, 2, 3, 4, 6, 9, 13, 19, 28};
  for (std::size_t t = 0; t < expected.size(); ++t) {
    EXPECT_EQ(lame_ready_to_send(3, static_cast<std::int64_t>(t)), expected[t]);
  }
}

TEST(ReadyToSend, OrderTwoIsFibonacciLike) {
  for (std::int64_t t = 2; t <= 30; ++t) {
    EXPECT_EQ(lame_ready_to_send(2, t),
              lame_ready_to_send(2, t - 1) + lame_ready_to_send(2, t - 2));
  }
}

TEST(ReadyToSend, OptimalRecurrence) {
  const std::int64_t o = 2;
  const std::int64_t L = 3;
  for (std::int64_t t = 2 * o + L; t <= 40; ++t) {
    EXPECT_EQ(optimal_ready_to_send(o, L, t),
              optimal_ready_to_send(o, L, t - o) +
                  optimal_ready_to_send(o, L, t - 2 * o - L));
  }
  EXPECT_EQ(optimal_ready_to_send(o, L, -5), 0);
  EXPECT_EQ(optimal_ready_to_send(o, L, 0), 1);
}

TEST(ReadyToSend, LameMatchesOptimalWhenKEquals2oPlusL) {
  // §3.2.3: a Lamé tree is optimal when 2o + L = k; with o = 1 both
  // sequences advance one send per step, so R coincides.
  for (std::int64_t t = 0; t <= 25; ++t) {
    EXPECT_EQ(lame_ready_to_send(3, t), optimal_ready_to_send(1, 1, t));
    EXPECT_EQ(lame_ready_to_send(4, t), optimal_ready_to_send(1, 2, t));
  }
}

// --- Constructive builder vs closed formula (Eq. 2) ---------------------------

class LameFormulaTest : public ::testing::TestWithParam<std::tuple<int, Rank>> {};

TEST_P(LameFormulaTest, ConstructiveMatchesFormula) {
  const auto [order, procs] = GetParam();
  const Tree tree = make_lame(procs, order);
  for (Rank r = 0; r < procs; ++r) {
    EXPECT_EQ(children_of(tree, r), lame_children_formula(r, procs, order))
        << "rank " << r << " order " << order << " P " << procs;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndSizes, LameFormulaTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7),
                       ::testing::Values<Rank>(1, 2, 3, 9, 16, 17, 64, 100, 257)));

class OptimalFormulaTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t, Rank>> {};

TEST_P(OptimalFormulaTest, ConstructiveMatchesFormula) {
  const auto [o, L, procs] = GetParam();
  const Tree tree = make_optimal(procs, o, L);
  for (Rank r = 0; r < procs; ++r) {
    EXPECT_EQ(children_of(tree, r), optimal_children_formula(r, procs, o, L))
        << "rank " << r << " o " << o << " L " << L << " P " << procs;
  }
}

// The slotted closed form requires L % o == 0 (see optimal_children_formula);
// the aligned grid below plus an explicit misalignment check cover both sides.
const std::vector<std::tuple<std::int64_t, std::int64_t, Rank>> kAlignedOptimalCases{
    {1, 0, 33},  {1, 1, 128}, {1, 2, 128}, {1, 5, 128}, {2, 0, 128}, {2, 2, 128},
    {2, 4, 33},  {3, 3, 128}, {3, 6, 100}, {1, 2, 1},   {1, 2, 2},   {2, 2, 8}};

INSTANTIATE_TEST_SUITE_P(ParamsAndSizes, OptimalFormulaTest,
                         ::testing::ValuesIn(kAlignedOptimalCases));

TEST(OptimalFormula, RejectsMisalignedParameters) {
  EXPECT_THROW(optimal_children_formula(0, 16, 2, 1), std::invalid_argument);
  EXPECT_THROW(optimal_children_formula(0, 16, 2, 5), std::invalid_argument);
  // The constructive builder still handles misaligned parameters.
  EXPECT_NO_THROW(make_optimal(64, 2, 1));
  EXPECT_NO_THROW(make_optimal(64, 2, 5));
}

TEST(Optimal, EqualsLameWhenParametersAlign) {
  // o = 1, L = k - 2 makes the optimal tree a Lamé tree of order k.
  for (int k : {2, 3, 5}) {
    const Tree lame = make_lame(200, k);
    const Tree optimal = make_optimal(200, 1, k - 2);
    for (Rank r = 0; r < 200; ++r) {
      EXPECT_EQ(children_of(lame, r), children_of(optimal, r)) << "k=" << k;
    }
  }
}

TEST(Binomial, InterleavedEqualsLameOrderOne) {
  const Tree binomial = make_binomial_interleaved(100);
  const Tree lame = make_lame(100, 1);
  for (Rank r = 0; r < 100; ++r) {
    EXPECT_EQ(children_of(binomial, r), children_of(lame, r));
  }
}

TEST(Binomial, InterleavedChildrenArePowersOfTwoOffsets) {
  const Tree tree = make_binomial_interleaved(300);
  for (Rank r = 0; r < 300; ++r) {
    for (Rank c : tree.children(r)) {
      const Rank delta = c - r;
      EXPECT_EQ(delta & (delta - 1), 0) << "offset not a power of two";
      EXPECT_GT(delta, r) << "2^i > r violated";  // 2^i > r (paper §3.2.2)
    }
  }
}

// --- Structural invariants for all families -----------------------------------

struct FamilyCase {
  std::string spec;
  Rank procs;
};

class TreeInvariantsTest : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(TreeInvariantsTest, SpanningAcyclicAndOrdered) {
  const auto& param = GetParam();
  const Tree tree = make_tree(parse_tree_spec(param.spec), param.procs);
  EXPECT_EQ(tree.num_procs(), param.procs);

  // Every rank appears exactly once across all child lists plus the root.
  std::set<Rank> seen{0};
  Rank total = 1;
  for (Rank r = 0; r < param.procs; ++r) {
    Rank previous = kNoRank;
    for (Rank c : tree.children(r)) {
      EXPECT_TRUE(seen.insert(c).second) << "duplicate child " << c;
      EXPECT_GT(c, r) << "interleaved numbering assigns children after parents";
      EXPECT_GT(c, previous) << "children must be in ascending send order";
      previous = c;
      ++total;
    }
  }
  EXPECT_EQ(total, param.procs);

  // Subtree sizes sum correctly and depth is consistent with parents.
  Rank size_sum = 0;
  for (Rank r = 0; r < param.procs; ++r) {
    size_sum += tree.subtree_size(r) > 0;
    if (r != 0) {
      EXPECT_EQ(tree.depth(r), tree.depth(tree.parent(r)) + 1);
    }
  }
  EXPECT_EQ(size_sum, param.procs);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, TreeInvariantsTest,
    ::testing::Values(FamilyCase{"binomial", 64}, FamilyCase{"binomial", 100},
                      FamilyCase{"binomial-inorder", 64},
                      FamilyCase{"binomial-inorder", 77}, FamilyCase{"kary:2", 127},
                      FamilyCase{"kary:4", 85}, FamilyCase{"kary:4", 200},
                      FamilyCase{"kary-inorder:3", 40}, FamilyCase{"lame:2", 97},
                      FamilyCase{"lame:3", 128}, FamilyCase{"optimal", 96},
                      FamilyCase{"binomial", 1}, FamilyCase{"lame:2", 2}),
    [](const auto& info) {
      std::string name = info.param.spec + "_" + std::to_string(info.param.procs);
      for (char& ch : name) {
        if (ch == ':' || ch == '-') ch = '_';
      }
      return name;
    });

TEST(KAry, InterleavedLevelsFillInRankOrder) {
  // Level l spans ranks [(k^l-1)/(k-1), (k^{l+1}-1)/(k-1)); children of a
  // level-l rank are exactly k^l apart (§3.2.1).
  for (int k : {2, 3, 4}) {
    const Tree tree = make_kary_interleaved(500, k);
    std::int64_t level_begin = 0;
    std::int64_t level_size = 1;
    while (level_begin < 500) {
      for (std::int64_t r = level_begin;
           r < std::min<std::int64_t>(level_begin + level_size, 500); ++r) {
        int i = 1;
        for (Rank c : tree.children(static_cast<Rank>(r))) {
          EXPECT_EQ(c, r + i * level_size) << "k=" << k << " r=" << r;
          ++i;
        }
      }
      level_begin += level_size;
      level_size *= k;
    }
  }
}

TEST(KAry, ChainForArityOne) {
  const Tree tree = make_kary_interleaved(5, 1);
  for (Rank r = 0; r + 1 < 5; ++r) {
    EXPECT_EQ(children_of(tree, r), (std::vector<Rank>{static_cast<Rank>(r + 1)}));
  }
  EXPECT_EQ(tree.height(), 4);
}

TEST(Factory, RoundTripsSpecs) {
  for (const char* spec :
       {"binomial", "binomial-inorder", "kary:4", "kary-inorder:3", "lame:2",
        "optimal"}) {
    EXPECT_EQ(parse_tree_spec(spec).to_string(), spec);
  }
}

TEST(Factory, RejectsUnknownAndMalformed) {
  EXPECT_THROW(parse_tree_spec("mystery"), std::invalid_argument);
  EXPECT_THROW(parse_tree_spec("kary:0"), std::invalid_argument);
  EXPECT_THROW(parse_tree_spec("kary:x"), std::invalid_argument);
}

TEST(Factory, BuildsNamedTrees) {
  const Tree tree = make_tree(parse_tree_spec("kary:4"), 100);
  EXPECT_EQ(tree.name(), "kary4-interleaved");
  EXPECT_EQ(tree.num_procs(), 100);
}

TEST(TreeErrors, RejectBadArguments) {
  EXPECT_THROW(make_kary_inorder(0, 2), std::invalid_argument);
  EXPECT_THROW(make_kary_interleaved(8, 0), std::invalid_argument);
  EXPECT_THROW(make_lame(8, 0), std::invalid_argument);
  EXPECT_THROW(make_optimal(8, 0, 2), std::invalid_argument);
  EXPECT_THROW(make_binomial_inorder(-1), std::invalid_argument);
}

// --- CSR build vs parent-derived reference ------------------------------------

// The CSR refactor (flat child list + offsets) must be observationally
// identical to the pre-refactor nested-vector representation. The reference
// below reconstructs every accessor from the parent array alone — the one
// input both representations share — using the documented invariants:
// children are listed in ascending rank order (== send order for every
// interleaved family and the in-order DFS families alike), depth counts the
// walk to the root, and subtree sizes accumulate along parent chains.
struct ReferenceIndex {
  std::vector<std::vector<Rank>> children;
  std::vector<int> depth;
  std::vector<Rank> subtree_size;
  int height = 0;
};

ReferenceIndex reference_from_parents(const Tree& tree) {
  const Rank procs = tree.num_procs();
  ReferenceIndex ref;
  ref.children.resize(static_cast<std::size_t>(procs));
  ref.depth.assign(static_cast<std::size_t>(procs), 0);
  ref.subtree_size.assign(static_cast<std::size_t>(procs), 1);
  // Ascending rank scan => each child list comes out already sorted.
  for (Rank r = 1; r < procs; ++r) {
    ref.children[static_cast<std::size_t>(tree.parent(r))].push_back(r);
  }
  for (Rank r = 0; r < procs; ++r) {
    int d = 0;
    for (Rank a = tree.parent(r); a != kNoRank; a = tree.parent(a)) ++d;
    ref.depth[static_cast<std::size_t>(r)] = d;
    ref.height = std::max(ref.height, d);
    for (Rank a = tree.parent(r); a != kNoRank; a = tree.parent(a)) {
      ++ref.subtree_size[static_cast<std::size_t>(a)];
    }
  }
  return ref;
}

void expect_matches_reference(const Tree& tree) {
  const ReferenceIndex ref = reference_from_parents(tree);
  ASSERT_EQ(tree.height(), ref.height) << tree.name();
  for (Rank r = 0; r < tree.num_procs(); ++r) {
    ASSERT_EQ(children_of(tree, r), ref.children[static_cast<std::size_t>(r)])
        << tree.name() << " rank " << r;
    ASSERT_EQ(tree.depth(r), ref.depth[static_cast<std::size_t>(r)])
        << tree.name() << " rank " << r;
    ASSERT_EQ(tree.subtree_size(r), ref.subtree_size[static_cast<std::size_t>(r)])
        << tree.name() << " rank " << r;
  }
}

std::vector<TreeSpec> csr_family_specs() {
  // All four families; k-ary and binomial in both numberings.
  return {parse_tree_spec("kary:2"),     parse_tree_spec("kary:3"),
          parse_tree_spec("kary-inorder:2"), parse_tree_spec("binomial"),
          parse_tree_spec("binomial-inorder"), parse_tree_spec("lame:2"),
          parse_tree_spec("lame:3"),     parse_tree_spec("optimal")};
}

TEST(TreeCsr, MatchesParentDerivedReferenceExhaustiveSmallP) {
  for (const TreeSpec& spec : csr_family_specs()) {
    for (Rank procs = 1; procs <= 48; ++procs) {
      expect_matches_reference(make_tree(spec, procs));
    }
  }
}

TEST(TreeCsr, MatchesParentDerivedReferenceAt4097) {
  // Non-power-of-two just past 2^12: exercises incomplete last levels in
  // every family at a size where offset arithmetic bugs would surface.
  for (const TreeSpec& spec : csr_family_specs()) {
    expect_matches_reference(make_tree(spec, 4097));
  }
}

TEST(TreeShapes, HeightOrdering) {
  // §4.3: "slower trees have larger height and lower average fan-out at the
  // same process count" — binomial is the slowest of the three (Fig. 7),
  // optimal the fastest.
  const Rank procs = 4096;
  const Tree binomial = make_binomial_interleaved(procs);
  const Tree lame2 = make_lame(procs, 2);
  const Tree optimal = make_optimal(procs, 1, 2);
  EXPECT_GE(binomial.height(), lame2.height());
  EXPECT_GE(lame2.height(), optimal.height());
  // ... while maximum fan-out (the root's) goes the other way around.
  EXPECT_LE(binomial.max_fanout(), lame2.max_fanout());
  EXPECT_LE(lame2.max_fanout(), optimal.max_fanout());
}

}  // namespace
}  // namespace ct::topo

// NOTE: appended suite — hierarchical (node-aware) trees.
#include "topology/hierarchical.hpp"

namespace ct::topo {
namespace {

TEST(Hierarchical, LeadersSpanTheInterNodeTree) {
  // 4 nodes x 4 ranks, binomial leader tree over nodes {0,1,2,3}:
  // leaders 0,4,8,12; node tree 0 -> {1,2}, 1 -> {3} maps to 0 -> {4,8},
  // 4 -> {12}.
  const Tree tree = make_hierarchical(16, 4, parse_tree_spec("binomial"));
  EXPECT_EQ(tree.num_procs(), 16);
  EXPECT_EQ(tree.parent(4), 0);
  EXPECT_EQ(tree.parent(8), 0);
  EXPECT_EQ(tree.parent(12), 4);
  // Members hang off their leader.
  for (Rank member : {1, 2, 3}) EXPECT_EQ(tree.parent(member), 0);
  for (Rank member : {5, 6, 7}) EXPECT_EQ(tree.parent(member), 4);
  for (Rank member : {13, 14, 15}) EXPECT_EQ(tree.parent(member), 12);
  // Remote children come before local members in the send order.
  const auto root_children = tree.children(0);
  ASSERT_EQ(root_children.size(), 5u);
  EXPECT_EQ(root_children[0], 4);
  EXPECT_EQ(root_children[1], 8);
  EXPECT_EQ(root_children[2], 1);
}

TEST(Hierarchical, HandlesPartialLastNode) {
  const Tree tree = make_hierarchical(14, 4, parse_tree_spec("binomial"));
  EXPECT_EQ(tree.num_procs(), 14);
  EXPECT_EQ(tree.parent(13), 12);   // partial node {12, 13}
  EXPECT_EQ(tree.subtree_size(0), 14);
}

TEST(Hierarchical, NodeCrashLeavesBlockGap) {
  // The locality-extreme numbering: a node failure produces one
  // node_size-sized gap (the opposite of interleaving).
  const Tree tree = make_hierarchical(32, 4, parse_tree_spec("binomial"));
  std::vector<char> colored(32, 1);
  for (Rank r : tree.subtree_ranks(8)) colored[static_cast<std::size_t>(r)] = 0;
  // Leader 8's subtree includes at least its own node block {8..11}.
  for (Rank r = 8; r < 12; ++r) EXPECT_EQ(colored[static_cast<std::size_t>(r)], 0);
}

TEST(Hierarchical, Validation) {
  EXPECT_THROW(make_hierarchical(0, 4, parse_tree_spec("binomial")),
               std::invalid_argument);
  EXPECT_THROW(make_hierarchical(16, 0, parse_tree_spec("binomial")),
               std::invalid_argument);
  // Degenerate cases: one node (pure star below rank 0), node_size 1
  // (pure leader tree).
  EXPECT_EQ(make_hierarchical(8, 8, parse_tree_spec("binomial")).max_fanout(), 7);
  const Tree pure = make_hierarchical(8, 1, parse_tree_spec("binomial"));
  const Tree binomial = make_binomial_interleaved(8);
  for (Rank r = 0; r < 8; ++r) {
    EXPECT_EQ(pure.parent(r), binomial.parent(r));
  }
}

}  // namespace
}  // namespace ct::topo

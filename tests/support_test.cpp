// Unit tests for the foundation library: RNG, statistics, tables, options,
// thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace ct::support {
namespace {

// --- RNG ---------------------------------------------------------------------

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMixDiffersAcrossSeeds) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeriveSeedGivesDistinctStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 10'000; ++stream) {
    seeds.insert(derive_seed(0xabcdef, stream));
  }
  EXPECT_EQ(seeds.size(), 10'000u);
}

TEST(Rng, XoshiroIsDeterministic) {
  Xoshiro256ss a(7);
  Xoshiro256ss b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, BelowStaysInBounds) {
  Xoshiro256ss rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeIsInclusive) {
  Xoshiro256ss rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto value = rng.range(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    saw_lo |= (value == -3);
    saw_hi |= (value == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UnitIsInHalfOpenInterval) {
  Xoshiro256ss rng(13);
  double sum = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000.0, 0.5, 0.01);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256ss rng(17);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kSamples = 80'000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  for (int count : counts) {
    EXPECT_NEAR(count, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

// --- Statistics --------------------------------------------------------------

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, EmptyAndSingle) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Samples, PercentilesExact) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

TEST(Samples, PercentileAfterLaterAdd) {
  Samples s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);  // invalidates the cached sort
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Samples, MergeCombines) {
  Samples a;
  Samples b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(Samples, ThrowsOnEmptyQueries) {
  Samples s;
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.percentile(0.5), std::logic_error);
  s.add(1.0);
  EXPECT_THROW(s.percentile(1.5), std::invalid_argument);
}

TEST(Histogram, CountsAndBounds) {
  Histogram h;
  for (std::int64_t v : {5, 1, 5, 3, 5, 1}) h.add(v);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count(5), 3u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.min_value(), 1);
  EXPECT_EQ(h.max_value(), 5);
  const auto entries = h.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, 1);
  EXPECT_EQ(entries[2].second, 3u);
}

TEST(Histogram, EmptyThrows) {
  Histogram h;
  EXPECT_THROW(h.min_value(), std::logic_error);
}

// --- Table -------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table t({"a", "long-header"});
  t.add_row({"xxxx", "1"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("long-header"), std::string::npos);
  EXPECT_NE(text.find("xxxx"), std::string::npos);
  EXPECT_NE(text.find('|'), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"p", "latency"});
  t.add_row({"1024", "42.5"});
  t.add_row({"2048", "43.5"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "p,latency\n1024,42.5\n2048,43.5\n");
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_int(-7), "-7");
  EXPECT_EQ(format_with_range(10.0, 9.0, 11.0, 1), "10.0 [9.0, 11.0]");
}

// --- Options -----------------------------------------------------------------

TEST(Options, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--procs=4096", "--reps", "100", "--quick", "pos"};
  Options opts(6, const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("procs", 0), 4096);
  EXPECT_EQ(opts.get_int("reps", 0), 100);
  EXPECT_TRUE(opts.get_flag("quick"));
  EXPECT_FALSE(opts.get_flag("full"));
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "pos");
}

TEST(Options, FallbacksApply) {
  Options opts;
  EXPECT_EQ(opts.get_int("missing", 17), 17);
  EXPECT_DOUBLE_EQ(opts.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(opts.get_string("missing", "x"), "x");
}

TEST(Options, EnvironmentBacksOptions) {
  ::setenv("CT_TEST_OPTION_XYZ", "99", 1);
  Options opts;
  EXPECT_EQ(opts.get_int("test-option-xyz", 0), 99);
  ::unsetenv("CT_TEST_OPTION_XYZ");
  EXPECT_EQ(opts.get_int("test-option-xyz", 5), 5);
}

TEST(Options, CommandLineOverridesEnvironment) {
  ::setenv("CT_PRIORITY_CHECK", "1", 1);
  const char* argv[] = {"prog", "--priority-check=2"};
  Options opts(2, const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("priority-check", 0), 2);
  ::unsetenv("CT_PRIORITY_CHECK");
}

TEST(Options, RejectsMalformedNumbers) {
  Options opts;
  opts.set("procs", "12abc");
  EXPECT_THROW(opts.get_int("procs", 0), std::invalid_argument);
}

TEST(Options, EnvNameMapping) {
  EXPECT_EQ(env_name_for("procs"), "CT_PROCS");
  EXPECT_EQ(env_name_for("fault-rate"), "CT_FAULT_RATE");
}

// --- Thread pool --------------------------------------------------------------

TEST(ThreadPool, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadFallback) {
  ThreadPool pool(1);
  std::size_t sum = 0;  // safe: serial path
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace ct::support

// Randomized configuration fuzzing: hundreds of random (tree, correction,
// LogP, fault pattern) combinations, each checked for the invariants that
// must hold regardless of configuration:
//   * the simulation terminates within an event budget (no livelock),
//   * no exceptions escape the protocol machinery,
//   * colored processes hold the root's payload (integrity),
//   * correction kinds with a guarantee (checked / failure-proof) color
//     every live process,
//   * quiescence >= coloring, message counts are sane.
// Seeded and deterministic: a failure prints the recipe to replay it.

#include <gtest/gtest.h>

#include <string>

#include "ct.hpp"  // umbrella header compile check
#include "experiment/runner.hpp"
#include "protocol/tree_broadcast.hpp"
#include "support/rng.hpp"
#include "topology/factory.hpp"

namespace ct {
namespace {

using topo::Rank;

struct FuzzConfig {
  sim::LogP params;
  topo::TreeSpec tree;
  proto::CorrectionConfig correction;
  Rank fault_count = 0;

  std::string describe() const {
    return "P=" + std::to_string(params.P) + " L=" + std::to_string(params.L) +
           " o=" + std::to_string(params.o) + " g=" + std::to_string(params.g) +
           " tree=" + tree.to_string() + " corr=" + correction.to_string() +
           " faults=" + std::to_string(fault_count);
  }
};

FuzzConfig random_config(support::Xoshiro256ss& rng) {
  FuzzConfig config;
  config.params.o = rng.range(1, 3);
  config.params.L = rng.range(0, 6);
  config.params.g = rng.range(0, config.params.o + 2);
  config.params.P = static_cast<Rank>(rng.range(2, 400));

  static const char* kTrees[] = {"binomial",         "binomial-inorder", "kary:2",
                                 "kary:3",           "kary:4",           "kary-inorder:2",
                                 "lame:2",           "lame:3",           "optimal"};
  config.tree = topo::parse_tree_spec(kTrees[rng.below(std::size(kTrees))]);

  static const proto::CorrectionKind kKinds[] = {
      proto::CorrectionKind::kNone,
      proto::CorrectionKind::kOpportunistic,
      proto::CorrectionKind::kOptimizedOpportunistic,
      proto::CorrectionKind::kChecked,
      proto::CorrectionKind::kFailureProof,
      proto::CorrectionKind::kDelayed,
  };
  config.correction.kind = kKinds[rng.below(std::size(kKinds))];
  config.correction.start = rng.chance(0.5) ? proto::CorrectionStart::kSynchronized
                                            : proto::CorrectionStart::kOverlapped;
  config.correction.distance = static_cast<int>(rng.range(1, 10));
  config.correction.directions = rng.chance(0.8)
                                     ? proto::CorrectionDirections::kBoth
                                     : proto::CorrectionDirections::kLeftOnly;
  config.correction.delay = rng.range(1, 4) * config.params.message_cost();
  config.correction.redundancy = static_cast<int>(rng.range(1, 3));

  config.fault_count = static_cast<Rank>(rng.below(
      static_cast<std::uint64_t>(std::max<Rank>(1, config.params.P / 5))));
  return config;
}

bool has_full_coloring_guarantee(const FuzzConfig& config) {
  // Checked and failure-proof guarantee full coloring for any number of
  // pre-broadcast failures — but only when covering both ring directions.
  return (config.correction.kind == proto::CorrectionKind::kChecked ||
          config.correction.kind == proto::CorrectionKind::kFailureProof) &&
         config.correction.directions == proto::CorrectionDirections::kBoth;
}

TEST(ProtocolFuzz, InvariantsHoldOverRandomConfigurations) {
  constexpr int kIterations = 300;
  constexpr std::int64_t kPayload = 0xF00D;

  for (int iteration = 0; iteration < kIterations; ++iteration) {
    support::Xoshiro256ss rng(support::derive_seed(0xF022, iteration));
    const FuzzConfig config = random_config(rng);
    SCOPED_TRACE("iteration " + std::to_string(iteration) + ": " + config.describe());

    const topo::Tree tree = topo::make_tree(config.tree, config.params.P);
    proto::CorrectionConfig correction = config.correction;
    if (correction.kind != proto::CorrectionKind::kNone &&
        correction.start == proto::CorrectionStart::kSynchronized) {
      correction.sync_time = proto::fault_free_dissemination_time(tree, config.params);
      if (correction.sync_time <= 0) {
        correction.start = proto::CorrectionStart::kOverlapped;  // P too small
      }
    }

    const sim::FaultSet faults =
        config.fault_count > 0
            ? sim::FaultSet::random_count(config.params.P, config.fault_count, rng)
            : sim::FaultSet::none(config.params.P);

    proto::CorrectedTreeBroadcast broadcast(tree, correction, kPayload);
    sim::Simulator simulator(config.params, faults);
    sim::RunOptions options;
    options.max_events = 20'000'000;  // termination budget
    options.keep_per_rank_detail = true;

    sim::RunResult result;
    ASSERT_NO_THROW(result = simulator.run(broadcast, options));

    // Structural sanity.
    EXPECT_LE(result.coloring_latency, result.quiescence_latency);
    EXPECT_GE(result.total_messages, 0);
    EXPECT_LE(result.uncolored_live, config.params.P - 1);

    // Integrity: every colored process holds the payload, uncolored ones
    // never invented one.
    for (Rank r = 0; r < config.params.P; ++r) {
      const auto slot = static_cast<std::size_t>(r);
      if (result.colored_at[slot] != sim::kTimeNever) {
        EXPECT_EQ(result.rank_data[slot], kPayload) << "rank " << r;
      } else {
        EXPECT_EQ(result.rank_data[slot], 0) << "rank " << r;
      }
    }

    // Liveness guarantees by kind.
    if (has_full_coloring_guarantee(config)) {
      EXPECT_TRUE(result.fully_colored());
    }
    if (config.fault_count == 0) {
      // Fault-free: every kind colors everyone (correction not even needed).
      EXPECT_TRUE(result.fully_colored());
      EXPECT_GE(result.total_messages, config.params.P - 1);
    }
  }
}

}  // namespace
}  // namespace ct

// LogP simulator semantics (§2.2, Fig. 2): exact event timing, send/receive
// port serialisation, FIFO receive queueing, timers, fail-stop behaviour,
// and determinism — plus the fault injector.

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/simulator.hpp"

namespace ct::sim {
namespace {

using topo::Rank;

/// Scriptable protocol for poking the engine directly in tests.
class ScriptProtocol : public Protocol {
 public:
  std::function<void(Context&)> on_begin;
  std::function<void(Context&, Rank, const Message&)> on_recv;
  std::function<void(Context&, Rank, const Message&)> on_send_done;
  std::function<void(Context&, Rank, std::int64_t)> on_timer_fn;

  void begin(Context& ctx) override {
    if (on_begin) on_begin(ctx);
  }
  void on_receive(Context& ctx, Rank me, const Message& msg) override {
    if (on_recv) on_recv(ctx, me, msg);
  }
  void on_sent(Context& ctx, Rank me, const Message& msg) override {
    if (on_send_done) on_send_done(ctx, me, msg);
  }
  void on_timer(Context& ctx, Rank me, std::int64_t id) override {
    if (on_timer_fn) on_timer_fn(ctx, me, id);
  }
};

LogP params(Time L, Time o, Time g, Rank P) { return LogP{L, o, g, P}; }

TEST(LogP, Validation) {
  EXPECT_NO_THROW(params(2, 1, 1, 4).validate());
  EXPECT_THROW(params(2, 0, 1, 4).validate(), std::invalid_argument);
  EXPECT_THROW(params(-1, 1, 1, 4).validate(), std::invalid_argument);
  EXPECT_THROW(params(2, 1, 1, 0).validate(), std::invalid_argument);
  EXPECT_EQ(params(3, 2, 1, 4).message_cost(), 7);
  EXPECT_EQ(params(3, 1, 2, 4).port_period(), 2);
}

TEST(Simulator, SingleMessageTiming) {
  // One message 0 -> 1: send overhead o, wire L, receive overhead o.
  const LogP p = params(3, 2, 1, 2);
  Time recv_time = -1;
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) { ctx.send(0, 1, 1, 0); };
  proto.on_recv = [&](Context& ctx, Rank me, const Message& msg) {
    recv_time = ctx.now();
    EXPECT_EQ(me, 1);
    EXPECT_EQ(msg.src, 0);
    ctx.mark_colored(me);
  };
  Simulator simulator(p, FaultSet::none(2));
  const RunResult result = simulator.run(proto);
  EXPECT_EQ(recv_time, 2 * p.o + p.L);  // 7
  EXPECT_EQ(result.quiescence_latency, 7);
  EXPECT_EQ(result.total_messages, 1);
}

TEST(Simulator, SendPortSerialisesByPortPeriod) {
  // Two back-to-back sends from rank 0: second receive completes one port
  // period later.
  const LogP p = params(2, 1, 1, 3);
  std::vector<Time> recv_times;
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) {
    ctx.send(0, 1, 1, 0);
    ctx.send(0, 2, 1, 0);
  };
  proto.on_recv = [&](Context& ctx, Rank, const Message&) {
    recv_times.push_back(ctx.now());
  };
  Simulator simulator(p, FaultSet::none(3));
  simulator.run(proto);
  ASSERT_EQ(recv_times.size(), 2u);
  EXPECT_EQ(recv_times[0], 4);  // 2o + L
  EXPECT_EQ(recv_times[1], 5);  // + port period
}

TEST(Simulator, GapLargerThanOverheadDelaysSends) {
  // g > o: consecutive sends are g apart, not o.
  const LogP p = params(2, 1, 3, 3);
  std::vector<Time> recv_times;
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) {
    ctx.send(0, 1, 1, 0);
    ctx.send(0, 2, 1, 0);
  };
  proto.on_recv = [&](Context& ctx, Rank, const Message&) {
    recv_times.push_back(ctx.now());
  };
  Simulator simulator(p, FaultSet::none(3));
  simulator.run(proto);
  ASSERT_EQ(recv_times.size(), 2u);
  EXPECT_EQ(recv_times[1] - recv_times[0], 3);
}

TEST(Simulator, ReceivePortQueuesFifo) {
  // Ranks 1 and 2 both send to 0 at time 0; the second arrival waits for
  // the receive port.
  const LogP p = params(2, 1, 1, 3);
  std::vector<std::pair<Rank, Time>> received;
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) {
    ctx.send(1, 0, 1, 0);
    ctx.send(2, 0, 1, 0);
  };
  proto.on_recv = [&](Context& ctx, Rank, const Message& msg) {
    received.emplace_back(msg.src, ctx.now());
  };
  Simulator simulator(p, FaultSet::none(3));
  simulator.run(proto);
  ASSERT_EQ(received.size(), 2u);
  // Both arrive at o+L = 3; first receive completes at 4, second at 5
  // (insertion order breaks the tie deterministically).
  EXPECT_EQ(received[0].second, 4);
  EXPECT_EQ(received[1].second, 5);
  EXPECT_NE(received[0].first, received[1].first);
}

TEST(Simulator, SendAndReceiveOverlapOnOneProcess) {
  // §2.2: "Send overhead can overlap with receive overhead on the same
  // process." Rank 1 starts a send at t=0 and a message arrives at t=3;
  // the receive is NOT delayed by the concurrent send.
  const LogP p = params(2, 1, 1, 3);
  Time recv_at_1 = -1;
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) {
    ctx.send(1, 2, 1, 0);  // keeps 1's send port busy
    ctx.send(0, 1, 1, 0);
  };
  proto.on_recv = [&](Context& ctx, Rank me, const Message&) {
    if (me == 1) recv_at_1 = ctx.now();
  };
  Simulator simulator(p, FaultSet::none(3));
  simulator.run(proto);
  EXPECT_EQ(recv_at_1, 4);  // 2o + L, unaffected
}

TEST(Simulator, OnSentFiresWhenPortFrees) {
  const LogP p = params(5, 2, 1, 2);
  Time sent_time = -1;
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) { ctx.send(0, 1, 7, 0); };
  proto.on_send_done = [&](Context& ctx, Rank me, const Message& msg) {
    EXPECT_EQ(me, 0);
    EXPECT_EQ(msg.tag, 7);
    sent_time = ctx.now();
  };
  Simulator simulator(p, FaultSet::none(2));
  simulator.run(proto);
  EXPECT_EQ(sent_time, p.o);
}

TEST(Simulator, ChainedSendsFromOnSent) {
  // A protocol that sends the next message from on_sent achieves exactly
  // one send per port period.
  const LogP p = params(2, 1, 1, 8);
  std::vector<Time> send_done;
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) { ctx.send(0, 1, 1, 1); };
  proto.on_send_done = [&](Context& ctx, Rank, const Message& msg) {
    send_done.push_back(ctx.now());
    if (msg.payload < 5) ctx.send(0, static_cast<Rank>(msg.payload + 1), 1, msg.payload + 1);
  };
  Simulator simulator(p, FaultSet::none(8));
  simulator.run(proto);
  ASSERT_EQ(send_done.size(), 5u);
  for (std::size_t i = 0; i < send_done.size(); ++i) {
    EXPECT_EQ(send_done[i], static_cast<Time>(i + 1));
  }
}

TEST(Simulator, TimersFireAtRequestedTime) {
  const LogP p = params(2, 1, 1, 4);
  std::vector<std::pair<Rank, Time>> fired;
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) {
    ctx.set_timer(2, 10, 42);
    ctx.set_timer(1, 5, 43);
  };
  proto.on_timer_fn = [&](Context& ctx, Rank me, std::int64_t id) {
    fired.emplace_back(me, ctx.now());
    if (id == 43) EXPECT_EQ(me, 1);
  };
  Simulator simulator(p, FaultSet::none(4));
  simulator.run(proto);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], (std::pair<Rank, Time>{1, 5}));
  EXPECT_EQ(fired[1], (std::pair<Rank, Time>{2, 10}));
}

TEST(Simulator, TimerInThePastThrows) {
  const LogP p = params(2, 1, 1, 2);
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) { ctx.set_timer(0, 5, 1); };
  proto.on_timer_fn = [](Context& ctx, Rank, std::int64_t) {
    EXPECT_THROW(ctx.set_timer(0, 1, 2), std::invalid_argument);
  };
  Simulator simulator(p, FaultSet::none(2));
  simulator.run(proto);
}

TEST(Simulator, MessagesToFailedRanksVanishSilently) {
  const LogP p = params(2, 1, 1, 3);
  int receives = 0;
  int sends_completed = 0;
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) {
    ctx.send(0, 1, 1, 0);  // 1 is dead
    ctx.send(0, 2, 1, 0);
  };
  proto.on_recv = [&](Context&, Rank, const Message&) { ++receives; };
  proto.on_send_done = [&](Context&, Rank, const Message&) { ++sends_completed; };
  Simulator simulator(p, FaultSet::from_list(3, {1}));
  const RunResult result = simulator.run(proto);
  EXPECT_EQ(receives, 1);
  // The sender pays full cost for both messages and cannot tell the
  // difference (§2.2).
  EXPECT_EQ(sends_completed, 2);
  EXPECT_EQ(result.total_messages, 2);
}

TEST(Simulator, FailedRanksNeverGetCallbacks) {
  const LogP p = params(2, 1, 1, 3);
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) {
    ctx.set_timer(1, 4, 9);
    ctx.send(0, 1, 1, 0);
    ctx.send(1, 2, 1, 0);  // enqueue attempt by a dead rank: dropped
  };
  proto.on_recv = [&](Context&, Rank me, const Message&) { EXPECT_NE(me, 1); };
  proto.on_timer_fn = [&](Context&, Rank me, std::int64_t) { EXPECT_NE(me, 1); };
  Simulator simulator(p, FaultSet::from_list(3, {1}));
  const RunResult result = simulator.run(proto);
  EXPECT_EQ(result.total_messages, 1);  // only 0 -> 1 was actually sent
}

TEST(Simulator, KillAtStopsActivityMidRun) {
  const LogP p = params(2, 1, 1, 2);
  FaultSet faults = FaultSet::none(2);
  faults.kill_at(1, 10);
  int received = 0;
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) {
    ctx.send(0, 1, 1, 0);  // receive completes at 4 < 10: delivered
  };
  proto.on_recv = [&](Context& ctx, Rank me, const Message& msg) {
    if (me == 1 && msg.payload == 0) {
      ++received;
      ctx.set_timer(1, 20, 5);  // after death: must not fire
    }
  };
  proto.on_timer_fn = [&](Context&, Rank, std::int64_t) { FAIL() << "fired after death"; };
  Simulator simulator(p, faults);
  simulator.run(proto);
  EXPECT_EQ(received, 1);
}

TEST(Simulator, ColoringLatencyTracksLastLiveColoring) {
  const LogP p = params(2, 1, 1, 3);
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) {
    ctx.mark_colored(0);
    ctx.send(0, 1, 1, 0);
    ctx.send(0, 2, 1, 0);
  };
  proto.on_recv = [](Context& ctx, Rank me, const Message&) { ctx.mark_colored(me); };
  Simulator simulator(p, FaultSet::none(3));
  const RunResult result = simulator.run(proto);
  EXPECT_EQ(result.coloring_latency, 5);
  EXPECT_EQ(result.uncolored_live, 0);
  EXPECT_TRUE(result.fully_colored());
}

TEST(Simulator, UncoloredLiveCounted) {
  const LogP p = params(2, 1, 1, 4);
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) { ctx.mark_colored(0); };
  Simulator simulator(p, FaultSet::from_list(4, {3}));
  const RunResult result = simulator.run(proto);
  EXPECT_EQ(result.uncolored_live, 2);  // ranks 1 and 2
  EXPECT_FALSE(result.fully_colored());
}

TEST(Simulator, MarkColoredIsIdempotentFirstWins) {
  const LogP p = params(2, 1, 1, 2);
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) {
    ctx.mark_colored(0);
    ctx.send(0, 1, 1, 0);
    ctx.send(0, 1, 1, 1);
  };
  proto.on_recv = [](Context& ctx, Rank me, const Message&) { ctx.mark_colored(me); };
  Simulator simulator(p, FaultSet::none(2));
  const RunResult result = simulator.run(proto);
  // Colored at first receive (4), not at the duplicate (5).
  EXPECT_EQ(result.coloring_latency, 4);
}

TEST(Simulator, CorrectionSnapshotTakenOnce) {
  const LogP p = params(2, 1, 1, 4);
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) {
    ctx.mark_colored(0);
    ctx.mark_colored(2);
    ctx.set_timer(0, 6, 1);
    ctx.set_timer(1, 8, 1);
  };
  proto.on_timer_fn = [](Context& ctx, Rank me, std::int64_t) {
    ctx.note_correction_start();
    if (me == 0) ctx.mark_colored(1);  // after the snapshot
  };
  Simulator simulator(p, FaultSet::none(4));
  const RunResult result = simulator.run(proto);
  ASSERT_TRUE(result.has_dissemination_snapshot);
  EXPECT_EQ(result.correction_start, 6);
  // Snapshot sees {0, 2} colored: two gaps of size 1.
  EXPECT_EQ(result.dissemination_gaps.max_gap, 1);
  EXPECT_EQ(result.dissemination_gaps.gap_count, 2);
}

TEST(Simulator, PerRankDetailOptIn) {
  const LogP p = params(2, 1, 1, 3);
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) {
    ctx.mark_colored(0);
    ctx.send(0, 1, 1, 0);
  };
  proto.on_recv = [](Context& ctx, Rank me, const Message&) { ctx.mark_colored(me); };
  Simulator simulator(p, FaultSet::none(3));
  RunOptions options;
  options.keep_per_rank_detail = true;
  const RunResult result = simulator.run(proto, options);
  ASSERT_EQ(result.colored_at.size(), 3u);
  EXPECT_EQ(result.colored_at[0], 0);
  EXPECT_EQ(result.colored_at[1], 4);
  EXPECT_EQ(result.colored_at[2], kTimeNever);
  ASSERT_EQ(result.sends_per_rank.size(), 3u);
  EXPECT_EQ(result.sends_per_rank[0], 1);
}

TEST(Simulator, TraceRecordsLifecycle) {
  const LogP p = params(2, 1, 1, 2);
  std::vector<TraceEvent::Kind> kinds;
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) { ctx.send(0, 1, 1, 0); };
  Simulator simulator(p, FaultSet::none(2));
  RunOptions options;
  options.trace = [&](const TraceEvent& event) { kinds.push_back(event.kind); };
  simulator.run(proto, options);
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], TraceEvent::Kind::kSendStart);
  EXPECT_EQ(kinds[1], TraceEvent::Kind::kSendDone);
  EXPECT_EQ(kinds[2], TraceEvent::Kind::kArrival);
  EXPECT_EQ(kinds[3], TraceEvent::Kind::kRecvDone);
}

TEST(Simulator, MaxEventsGuardsAgainstRunaways) {
  const LogP p = params(2, 1, 1, 2);
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) { ctx.send(0, 1, 1, 0); };
  proto.on_send_done = [](Context& ctx, Rank, const Message&) {
    ctx.send(0, 1, 1, 0);  // infinite chain
  };
  Simulator simulator(p, FaultSet::none(2));
  RunOptions options;
  options.max_events = 1000;
  EXPECT_THROW(simulator.run(proto, options), std::runtime_error);
}

TEST(Simulator, RankRangeChecked) {
  const LogP p = params(2, 1, 1, 2);
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) { ctx.send(0, 5, 1, 0); };
  Simulator simulator(p, FaultSet::none(2));
  EXPECT_THROW(simulator.run(proto), std::out_of_range);
}

TEST(Simulator, FaultSetSizeMustMatch) {
  EXPECT_THROW(Simulator(params(2, 1, 1, 4), FaultSet::none(3)), std::invalid_argument);
}

// --- FaultSet -------------------------------------------------------------------

TEST(FaultSet, NoneIsAllAlive) {
  const FaultSet faults = FaultSet::none(10);
  EXPECT_EQ(faults.failed_count(), 0);
  for (Rank r = 0; r < 10; ++r) {
    EXPECT_TRUE(faults.alive_at(r, 1'000'000));
    EXPECT_TRUE(faults.always_alive(r));
  }
}

TEST(FaultSet, RandomCountIsExactAndSparesRoot) {
  support::Xoshiro256ss rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const FaultSet faults = FaultSet::random_count(64, 10, rng);
    EXPECT_EQ(faults.failed_count(), 10);
    EXPECT_TRUE(faults.always_alive(0));
    EXPECT_EQ(faults.initially_failed().size(), 10u);
  }
}

TEST(FaultSet, RandomCountCoversWholePopulation) {
  // Over many draws with 1 failure each, every non-root rank gets hit.
  support::Xoshiro256ss rng(7);
  std::vector<int> hits(16, 0);
  for (int trial = 0; trial < 4000; ++trial) {
    const FaultSet faults = FaultSet::random_count(16, 1, rng);
    ++hits[static_cast<std::size_t>(faults.initially_failed().front())];
  }
  EXPECT_EQ(hits[0], 0);
  for (Rank r = 1; r < 16; ++r) EXPECT_GT(hits[static_cast<std::size_t>(r)], 0);
}

TEST(FaultSet, FractionRounds) {
  support::Xoshiro256ss rng(5);
  EXPECT_EQ(FaultSet::random_fraction(101, 0.10, rng).failed_count(), 10);
  EXPECT_EQ(FaultSet::random_fraction(101, 0.0, rng).failed_count(), 0);
}

TEST(FaultSet, ExtremeCount) {
  support::Xoshiro256ss rng(3);
  const FaultSet faults = FaultSet::random_count(8, 7, rng);
  EXPECT_EQ(faults.failed_count(), 7);
  EXPECT_TRUE(faults.always_alive(0));
  EXPECT_THROW(FaultSet::random_count(8, 8, rng), std::invalid_argument);
}

TEST(FaultSet, FromListValidation) {
  EXPECT_THROW(FaultSet::from_list(4, {0}), std::invalid_argument);
  EXPECT_THROW(FaultSet::from_list(4, {4}), std::invalid_argument);
  const FaultSet faults = FaultSet::from_list(4, {2, 2, 3});
  EXPECT_EQ(faults.failed_count(), 2);  // duplicates collapse
  EXPECT_TRUE(faults.failed_from_start(2));
  EXPECT_FALSE(faults.failed_from_start(1));
}

TEST(FaultSet, KillAtSemantics) {
  FaultSet faults = FaultSet::none(4);
  faults.kill_at(2, 7);
  EXPECT_TRUE(faults.alive_at(2, 6));
  EXPECT_FALSE(faults.alive_at(2, 7));
  EXPECT_FALSE(faults.failed_from_start(2));
  EXPECT_EQ(faults.failed_count(), 1);
  EXPECT_THROW(faults.kill_at(0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace ct::sim

// NOTE: appended suite — per-process timeline rendering (Fig. 5a utility).
#include "sim/timeline.hpp"

namespace ct::sim {
namespace {

TEST(Timeline, RecordsPortOccupancy) {
  const LogP p{1, 1, 1, 9};
  ScriptProtocol proto;
  proto.on_begin = [](Context& ctx) {
    ctx.send(0, 1, 1, 0);
    ctx.send(0, 2, 1, 0);
  };
  TimelineRecorder recorder(p);
  RunOptions options;
  options.trace = recorder.callback();
  Simulator simulator(p, FaultSet::none(9));
  simulator.run(proto, options);
  EXPECT_EQ(recorder.send_spans(0), 2u);
  EXPECT_EQ(recorder.recv_spans(1), 1u);
  EXPECT_EQ(recorder.recv_spans(2), 1u);
  EXPECT_EQ(recorder.send_spans(3), 0u);
  const std::string grid = recorder.render();
  EXPECT_NE(grid.find('S'), std::string::npos);
  EXPECT_NE(grid.find('R'), std::string::npos);
  // 9 rank rows + ruler + legend.
  EXPECT_EQ(std::count(grid.begin(), grid.end(), '\n'), 11);
}

TEST(Timeline, MatchesFigure5aShape) {
  // Lamé k=3, P=9, L=o=1: the root sends in slots 0..4; process 1 sends
  // for the first time at iteration 3 (§3.2.2's worked example).
  const LogP p{1, 1, 1, 9};
  const topo::Tree tree = topo::make_lame(9, 3);
  ScriptProtocol proto;
  const topo::Tree* tree_ptr = &tree;
  proto.on_begin = [tree_ptr](Context& ctx) {
    ctx.mark_colored(0);
    for (topo::Rank c : tree_ptr->children(0)) ctx.send(0, c, 1, 0);
  };
  proto.on_recv = [tree_ptr](Context& ctx, topo::Rank me, const Message&) {
    ctx.mark_colored(me);
    for (topo::Rank c : tree_ptr->children(me)) ctx.send(me, c, 1, 0);
  };
  TimelineRecorder recorder(p);
  RunOptions options;
  options.trace = recorder.callback();
  Simulator simulator(p, FaultSet::none(9));
  const RunResult result = simulator.run(proto, options);
  EXPECT_EQ(result.coloring_latency, 7);  // optimal: R(t) >= 9 first at t+2o+L
  EXPECT_EQ(recorder.send_spans(0), 5u);  // root's children: 1,2,3,4,6
  EXPECT_EQ(recorder.send_spans(1), 2u);  // 5 and 7
  EXPECT_EQ(recorder.send_spans(2), 1u);  // 8
  EXPECT_EQ(recorder.send_spans(8), 0u);
}

}  // namespace
}  // namespace ct::sim

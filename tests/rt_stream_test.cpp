// Streaming broadcast (PR8): pipelined epochs through the sharded
// executor's window slots, chunked payloads, open-loop admission, and the
// sim/rt survivor-coloring parity under mid-stream crashes. Rank counts
// stay small — the suite shares one CPU with everything else.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "experiment/run_spec.hpp"
#include "protocol/ack_tree.hpp"
#include "protocol/stream_mux.hpp"
#include "protocol/tree_broadcast.hpp"
#include "rt/harness.hpp"
#include "sim/simulator.hpp"
#include "topology/factory.hpp"

namespace ct::rt {
namespace {

using topo::Rank;

std::vector<char> no_failures(Rank procs) {
  return std::vector<char>(static_cast<std::size_t>(procs), 0);
}

proto::CorrectionConfig opportunistic(int distance) {
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kOptimizedOpportunistic;
  config.start = proto::CorrectionStart::kOverlapped;
  config.distance = distance;
  return config;
}

ProtocolFactory tree_factory(const topo::Tree& tree, proto::CorrectionConfig config,
                             std::int32_t chunks = 1) {
  return [&tree, config, chunks] {
    return std::make_unique<proto::CorrectedTreeBroadcast>(tree, config, 0, nullptr,
                                                           nullptr, chunks);
  };
}

TEST(RtStream, WindowedStreamColorsEveryEpoch) {
  const Rank procs = 24;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  Engine engine(procs, no_failures(procs));
  StreamOptions options;
  options.epochs = 12;
  options.window = 4;
  options.epoch_timeout = std::chrono::seconds(20);
  const StreamHarnessResult result =
      measure_stream(engine, tree_factory(tree, opportunistic(2)), options);
  EXPECT_EQ(result.epochs, 12);
  EXPECT_EQ(result.timeouts, 0);
  EXPECT_EQ(result.incomplete, 0);
  EXPECT_EQ(result.deliveries, 12 * procs);
  EXPECT_GT(result.deliveries_per_sec(), 0.0);
  EXPECT_GE(result.p999_us(), result.p50_us());
  // Every epoch retired after it began, and begin follows admission.
  for (const StreamEpoch& epoch : result.raw.epochs) {
    EXPECT_GE(epoch.begin_ns, epoch.admitted_ns);
    EXPECT_GT(epoch.retire_ns, epoch.begin_ns);
    EXPECT_EQ(epoch.uncolored, 0);
  }
}

TEST(RtStream, WindowOneMatchesOneShotSemantics) {
  const Rank procs = 16;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  Engine engine(procs, no_failures(procs));

  StreamOptions options;
  options.epochs = 6;
  options.window = 1;
  options.epoch_timeout = std::chrono::seconds(20);
  const StreamHarnessResult stream =
      measure_stream(engine, tree_factory(tree, opportunistic(2)), options);
  EXPECT_EQ(stream.timeouts, 0);
  EXPECT_EQ(stream.incomplete, 0);

  // The same protocol through run_epoch: identical message counts per epoch
  // — W = 1 streaming is the one-shot schedule minus the barrier bracket.
  proto::CorrectedTreeBroadcast one_shot(tree, opportunistic(2));
  const EpochResult epoch = engine.run_epoch(one_shot, std::chrono::seconds(20));
  EXPECT_FALSE(epoch.timed_out);
  for (const StreamEpoch& streamed : stream.raw.epochs) {
    EXPECT_EQ(streamed.messages, epoch.total_messages);
  }
  // W = 1 serializes: epochs retire in admission order.
  for (std::size_t i = 1; i < stream.raw.epochs.size(); ++i) {
    EXPECT_GE(stream.raw.epochs[i].begin_ns, stream.raw.epochs[i - 1].retire_ns);
  }
}

TEST(RtStream, FailedRanksAreExcludedEveryEpoch) {
  const Rank procs = 20;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  std::vector<char> failed = no_failures(procs);
  failed[3] = failed[11] = 1;
  Engine engine(procs, failed);
  StreamOptions options;
  options.epochs = 8;
  options.window = 4;
  options.epoch_timeout = std::chrono::seconds(20);
  const StreamHarnessResult result =
      measure_stream(engine, tree_factory(tree, opportunistic(4)), options);
  EXPECT_EQ(result.timeouts, 0);
  EXPECT_EQ(result.incomplete, 0);
  EXPECT_EQ(result.deliveries, 8 * (procs - 2));
}

TEST(RtStream, FullWindowBlocksArrivalsInsteadOfDropping) {
  const Rank procs = 16;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  Engine engine(procs, no_failures(procs));
  StreamOptions options;
  options.epochs = 16;
  options.window = 2;
  // Offered rate far beyond what a 16-rank broadcast sustains on this host:
  // the window saturates immediately. Backpressure must queue (block) the
  // surplus arrivals, never shed them.
  options.rate = 1e6;
  options.epoch_timeout = std::chrono::seconds(20);
  const StreamHarnessResult result =
      measure_stream(engine, tree_factory(tree, opportunistic(2)), options);
  // Every offered epoch was admitted and retired — nothing dropped.
  EXPECT_EQ(result.epochs, 16);
  EXPECT_EQ(result.timeouts, 0);
  EXPECT_EQ(result.deliveries, 16 * procs);
  std::int64_t last_epoch = -1;
  for (const StreamEpoch& epoch : result.raw.epochs) {
    EXPECT_GT(epoch.epoch, last_epoch);  // admission order, none missing
    last_epoch = epoch.epoch;
    // Scheduled times follow the offered arrival process even when
    // admission lags: sojourn >= service surfaces the queueing delay.
    EXPECT_GE(epoch.admitted_ns, epoch.scheduled_ns);
    EXPECT_GE(epoch.sojourn_ns(), epoch.service_ns());
  }
}

TEST(RtStream, ChunkedStreamDeliversAllChunksBeforeColoring) {
  const Rank procs = 12;
  const std::int32_t chunks = 5;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  Engine engine(procs, no_failures(procs));
  StreamOptions options;
  options.epochs = 6;
  options.window = 3;
  options.epoch_timeout = std::chrono::seconds(20);
  proto::CorrectionConfig none;
  none.kind = proto::CorrectionKind::kNone;
  const StreamHarnessResult result =
      measure_stream(engine, tree_factory(tree, none, chunks), options);
  EXPECT_EQ(result.timeouts, 0);
  EXPECT_EQ(result.incomplete, 0);
  // Fault-free chunked tree without correction: every tree edge carries
  // each chunk exactly once, so the wire count is chunks × the unchunked
  // count — and coloring everyone proves held-mask gating saw all chunks.
  for (const StreamEpoch& epoch : result.raw.epochs) {
    EXPECT_EQ(epoch.messages, static_cast<std::int64_t>(chunks) * (procs - 1));
  }
}

TEST(RtStream, AckTreeStreamsChunked) {
  const Rank procs = 12;
  const std::int32_t chunks = 3;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  Engine engine(procs, no_failures(procs));
  StreamOptions options;
  options.epochs = 4;
  options.window = 2;
  options.epoch_timeout = std::chrono::seconds(20);
  const StreamHarnessResult result = measure_stream(
      engine,
      [&tree, chunks] {
        return std::make_unique<proto::AckTreeBroadcast>(tree, nullptr, chunks);
      },
      options);
  EXPECT_EQ(result.timeouts, 0);
  EXPECT_EQ(result.incomplete, 0);
  // Each tree edge carries every chunk; the upward ack wave is partial —
  // the epoch retires when every rank is colored with its sends drained,
  // which can precede ancestors *reacting* to late acks (one-shot epochs
  // truncate the same tail).
  const auto edges = static_cast<std::int64_t>(procs - 1);
  for (const StreamEpoch& epoch : result.raw.epochs) {
    EXPECT_GE(epoch.messages, static_cast<std::int64_t>(chunks) * edges);
    EXPECT_LE(epoch.messages, static_cast<std::int64_t>(chunks + 1) * edges);
  }
}

TEST(RtStream, ThreadPerRankExecutorRejectsStreams) {
  const Rank procs = 4;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions engine_options;
  engine_options.threading = Threading::kThreadPerRank;
  Engine engine(procs, no_failures(procs), engine_options);
  StreamOptions options;
  options.epochs = 1;
  EXPECT_THROW(engine.run_stream(tree_factory(tree, opportunistic(1)), options),
               std::runtime_error);
}

TEST(RtStream, StreamThenOneShotEpochStaysClean) {
  const Rank procs = 16;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  Engine engine(procs, no_failures(procs));
  StreamOptions options;
  options.epochs = 5;
  options.window = 4;
  options.epoch_timeout = std::chrono::seconds(20);
  const StreamHarnessResult stream =
      measure_stream(engine, tree_factory(tree, opportunistic(2)), options);
  EXPECT_EQ(stream.timeouts, 0);
  // The engine must come back from stream mode able to run plain epochs.
  proto::CorrectedTreeBroadcast protocol(tree, opportunistic(2));
  const EpochResult epoch = engine.run_epoch(protocol, std::chrono::seconds(20));
  EXPECT_FALSE(epoch.timed_out);
  EXPECT_EQ(epoch.uncolored_live, 0);
}

TEST(RtStream, MidStreamKillsMatchSimSurvivorColoring) {
  const Rank procs = 18;
  const std::vector<Rank> victims = {5, 9};
  const topo::Tree tree = topo::make_binomial_interleaved(procs);

  // rt side: kill the victims early in every epoch of a W = 3 stream.
  Engine engine(procs, no_failures(procs));
  ChaosPlan plan;
  for (const Rank victim : victims) plan.kill_at_ns(victim, 0);
  engine.set_chaos(std::move(plan));
  StreamOptions options;
  options.epochs = 9;
  options.window = 3;
  options.keep_rank_state = true;
  options.epoch_timeout = std::chrono::seconds(20);
  const StreamHarnessResult rt_result =
      measure_stream(engine, tree_factory(tree, opportunistic(4)), options);
  EXPECT_EQ(rt_result.timeouts, 0);

  // sim side: the same spec streamed through proto::StreamMux (kill= maps
  // to FaultSet deaths at t = 1, before any first receive completes).
  exp::RunSpec spec;
  spec.tree = topo::TreeSpec{topo::TreeKind::kBinomialInterleaved};
  spec.correction = opportunistic(4);
  spec.params.P = procs;
  spec.faults.kill = victims;
  spec.window = 3;
  spec.reps = 9;
  const exp::RunRecord sim_result = exp::run(spec);
  EXPECT_EQ(sim_result.runs, 9);
  EXPECT_EQ(sim_result.incomplete, 0);
  EXPECT_TRUE(sim_result.uncolored_survivors.empty());
  EXPECT_EQ(sim_result.crashed_ranks, victims);
  EXPECT_EQ(sim_result.ranks_crashed, static_cast<std::int64_t>(victims.size()) * 9);

  // Parity: every streamed epoch colors exactly the survivors, both sides.
  for (const StreamEpoch& epoch : rt_result.raw.epochs) {
    EXPECT_EQ(epoch.crashed, static_cast<std::int32_t>(victims.size()));
    EXPECT_EQ(epoch.uncolored, 0);
    ASSERT_EQ(epoch.rank_state.size(), static_cast<std::size_t>(procs));
    for (Rank r = 0; r < procs; ++r) {
      const bool is_victim =
          std::find(victims.begin(), victims.end(), r) != victims.end();
      EXPECT_EQ(epoch.rank_state[static_cast<std::size_t>(r)],
                is_victim ? RankEnd::kCrashed : RankEnd::kColored)
          << "rank " << r;
    }
  }
}

// Direct StreamMux coverage: windowed sim streams color every survivor in
// every epoch, and the closed-loop window genuinely pipelines (later epochs
// admitted before earlier ones retire).
TEST(SimStream, StreamMuxColorsSurvivorsEveryEpoch) {
  const Rank procs = 18;
  const std::vector<Rank> victims = {5, 9};
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  sim::FaultSet faults = sim::FaultSet::none(procs);
  for (const Rank victim : victims) faults.kill_at(victim, 1);

  proto::StreamMuxOptions mux_options;
  mux_options.epochs = 9;
  mux_options.window = 3;
  mux_options.excluded.assign(static_cast<std::size_t>(procs), 0);
  for (const Rank victim : victims) {
    mux_options.excluded[static_cast<std::size_t>(victim)] = 1;
  }
  proto::StreamMux mux(
      [&] {
        return std::make_unique<proto::CorrectedTreeBroadcast>(tree, opportunistic(4));
      },
      mux_options);
  sim::Simulator simulator(sim::LogP{.P = procs}, &faults);
  simulator.run(mux, sim::RunOptions{});

  ASSERT_EQ(mux.retired_count(), 9);
  sim::Time previous_retire = -1;
  for (std::size_t e = 0; e < mux.epochs().size(); ++e) {
    const proto::StreamMuxEpoch& epoch = mux.epochs()[e];
    ASSERT_TRUE(epoch.complete());
    EXPECT_EQ(epoch.colored, procs - static_cast<Rank>(victims.size()));
    EXPECT_GE(epoch.retired, epoch.admitted);
    for (Rank r = 0; r < procs; ++r) {
      const bool is_victim =
          std::find(victims.begin(), victims.end(), r) != victims.end();
      EXPECT_EQ(mux.colored_in(static_cast<std::int64_t>(e), r), !is_victim)
          << "epoch " << e << " rank " << r;
    }
    previous_retire = std::max(previous_retire, epoch.retired);
  }
  // The window pipelines: epoch 1 and 2 were admitted at t = 0 alongside
  // epoch 0 (closed loop fills the window), not after epoch 0 retired.
  EXPECT_EQ(mux.epochs()[1].admitted, 0);
  EXPECT_EQ(mux.epochs()[2].admitted, 0);
  EXPECT_GT(mux.epochs()[0].retired, 0);
}

// Open-loop StreamMux: a rate faster than service saturates the window;
// surplus arrivals queue FIFO and every epoch is still admitted + retired.
TEST(SimStream, OpenLoopQueuesArrivalsWhenWindowFull) {
  const Rank procs = 16;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  sim::FaultSet faults = sim::FaultSet::none(procs);

  proto::StreamMuxOptions mux_options;
  mux_options.epochs = 12;
  mux_options.window = 2;
  mux_options.interval = 1;  // one arrival per tick: far beyond service rate
  proto::StreamMux mux(
      [&] {
        return std::make_unique<proto::CorrectedTreeBroadcast>(tree, opportunistic(2));
      },
      mux_options);
  sim::Simulator simulator(sim::LogP{.P = procs}, &faults);
  simulator.run(mux, sim::RunOptions{});

  ASSERT_EQ(mux.retired_count(), 12);
  for (std::size_t e = 0; e < mux.epochs().size(); ++e) {
    const proto::StreamMuxEpoch& epoch = mux.epochs()[e];
    ASSERT_TRUE(epoch.complete());
    EXPECT_EQ(epoch.scheduled, static_cast<sim::Time>(e));
    EXPECT_GE(epoch.admitted, epoch.scheduled);
    EXPECT_GE(epoch.sojourn(), epoch.service());
  }
  // Queueing delay grows down the stream once the window saturates.
  EXPECT_GT(mux.epochs().back().sojourn(), mux.epochs().front().sojourn());
}

// W = 1, bytes = 1, G = 0 sim stream reproduces the one-shot simulator run
// exactly: same quiescence-equivalent coloring, same per-epoch message count
// as an isolated replication of the identical scenario.
TEST(SimStream, WindowOneChunklessMatchesOneShotSim) {
  const Rank procs = 32;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  sim::FaultSet faults = sim::FaultSet::none(procs);

  proto::CorrectedTreeBroadcast one_shot(tree, opportunistic(2));
  sim::Simulator reference_sim(sim::LogP{.P = procs}, &faults);
  const sim::RunResult reference = reference_sim.run(one_shot, sim::RunOptions{});

  proto::StreamMuxOptions mux_options;
  mux_options.epochs = 4;
  mux_options.window = 1;
  proto::StreamMux mux(
      [&] {
        return std::make_unique<proto::CorrectedTreeBroadcast>(tree, opportunistic(2));
      },
      mux_options);
  sim::Simulator stream_sim(sim::LogP{.P = procs}, &faults);
  const sim::RunResult streamed = stream_sim.run(mux, sim::RunOptions{});

  ASSERT_EQ(mux.retired_count(), 4);
  EXPECT_EQ(streamed.total_messages, 4 * reference.total_messages);
  for (const proto::StreamMuxEpoch& epoch : mux.epochs()) {
    EXPECT_EQ(epoch.sends, reference.total_messages);
    EXPECT_EQ(epoch.colored, procs);
    // Retirement is the coloring completion of that epoch's instance.
    EXPECT_EQ(epoch.retired - epoch.admitted, reference.coloring_latency);
  }
}

}  // namespace
}  // namespace ct::rt
